// NPU offload: why the paper runs the migration policy's NN inference on
// the SoC's neural processing unit (Fig. 12).
//
// The daemon performs one inference per running application per 500 ms
// epoch. On a CPU core that cost grows linearly with the number of
// applications; the NPU processes the whole batch in one nearly
// size-independent call. This example compares the two backends, checks
// they compute identical outputs, and demonstrates the non-blocking call
// the daemon uses.
//
//	go run ./examples/npuoffload
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/npu"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)

	// The paper's deployed topology: 21 features -> 4×64 hidden -> 8 cores.
	model := nn.NewMLP(nn.PaperTopology(features.Dim(8, 2), 8), 42)
	accel := npu.New(model)
	cpu := npu.NewCPU(model)

	// The NPU-deployed model must match the host model bit for bit.
	rng := rand.New(rand.NewSource(1))
	probes := make([][]float64, 8)
	for i := range probes {
		probes[i] = make([]float64, model.InputDim())
		for j := range probes[i] {
			probes[i][j] = rng.Float64()
		}
	}
	if err := npu.Validate(accel, model, probes); err != nil {
		log.Fatalf("accelerator mismatch: %v", err)
	}
	fmt.Println("NPU outputs validated against host model ✓")

	fmt.Println("\ninference latency by batch size (one row per running app):")
	table := stats.NewTable("apps", "NPU", "CPU core", "winner")
	for _, n := range []int{1, 2, 4, 8, 12, 16} {
		a, c := accel.Latency(n), cpu.Latency(n)
		winner := "NPU"
		if c < a {
			winner = "CPU"
		}
		table.AddRow(fmt.Sprint(n), a.String(), c.String(), winner)
	}
	fmt.Print(table.String())

	// The non-blocking HiAI-style call: the daemon keeps reading counters
	// while the accelerator works.
	batch := probes
	resCh := accel.InferAsync(batch)
	fmt.Println("\nissued non-blocking inference for", len(batch), "applications...")
	res := <-resCh
	fmt.Printf("received %d rating vectors after a modelled %v\n",
		len(res.Outputs), res.Latency)
	fmt.Println("\nExpected: the CPU wins at 1-2 apps (driver overhead), the NPU")
	fmt.Println("wins from ~8 apps on and its latency stays flat — which is why")
	fmt.Println("the paper's migration overhead is constant in Fig. 12.")
}
