// Mixed workload: the paper's main experiment in miniature (Fig. 8).
//
// A Poisson stream of PARSEC- and Polybench-like applications with random
// QoS targets runs under all four techniques — TOP-IL, TOP-RL,
// GTS/ondemand, GTS/powersave — with and without a fan, and the program
// prints the temperature/QoS-violation comparison.
//
//	go run ./examples/mixedworkload
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	pipe := experiments.NewPipeline(experiments.QuickScale())
	pipe.Progress = func(msg string) { log.Print(msg) }

	const (
		jobs       = 10
		rate       = 0.1 // arrivals per second
		maxSeconds = 900.0
		instrScale = 0.15
	)

	for _, fan := range []bool{true, false} {
		cooling := "with fan"
		if !fan {
			cooling = "without fan"
		}
		fmt.Printf("\n=== mixed workload, %s ===\n", cooling)
		table := stats.NewTable("technique", "avg temp", "peak", "violations", "migrations", "throttled")
		for _, tech := range experiments.Techniques() {
			mgr, err := pipe.Manager(tech, 0)
			if err != nil {
				log.Fatal(err)
			}
			cfg := sim.DefaultConfig(fan, 25)
			engine := sim.New(cfg)
			gen := workload.NewGenerator(7, workload.MixedPool(), pipe.PeakIPS,
				0.2, 0.7, instrScale)
			engine.AddJobs(gen.Generate(jobs, rate))
			// Measure over the workload's active period.
			r := engine.RunUntil(mgr, maxSeconds, engine.Done)
			table.AddRow(tech,
				fmt.Sprintf("%.1f °C", r.AvgTemp),
				fmt.Sprintf("%.1f °C", r.PeakTemp),
				fmt.Sprintf("%d/%d", r.Violations, len(r.Apps)),
				fmt.Sprintf("%d", r.Migrations),
				fmt.Sprintf("%.0f s", r.ThrottleSeconds))
		}
		fmt.Print(table.String())
	}
	fmt.Println("\nExpected shape (paper Fig. 8): TOP-IL clearly cooler than")
	fmt.Println("GTS/ondemand at few violations; powersave coolest but most")
	fmt.Println("violations; TOP-RL similar temperature to TOP-IL but more")
	fmt.Println("violations. The ordering holds with and without the fan.")
}
