// Floorplan: deriving the thermal model from die geometry.
//
// The experiments use a hand-calibrated RC network for the HiKey970. This
// example shows the geometry path: an approximate Kirin 970 CPU-corner
// floorplan (four small A53 blocks, four large A73 blocks) is turned into
// an RC network à la compact thermal modelling, and the two models are
// compared on the paper's central thermal asymmetry — the same power is
// hotter on a LITTLE core than on a big core, and neighbours heat each
// other.
//
//	go run ./examples/floorplan
package main

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/thermal"
)

func main() {
	blocks := thermal.HiKey970Floorplan()
	fmt.Println("Kirin 970 CPU-corner floorplan (mm):")
	for _, b := range blocks {
		fmt.Printf("  %-8s at (%.2f, %.2f), %.2f × %.2f = %.2f mm²\n",
			b.Name, b.X, b.Y, b.W, b.H, b.Area())
	}

	fp, pkg := thermal.FromFloorplan(blocks, thermal.DefaultFloorplanConfig(true, 25))
	hand := thermal.HiKey970Network(true, 25)

	rise := func(n *thermal.Network, core int, w float64) float64 {
		p := make([]float64, len(n.Nodes))
		p[core] = w
		return n.SteadyState(p)[core] - 25
	}

	fmt.Println("\nsteady-state rise for 1.5 W into a single core:")
	table := stats.NewTable("core", "floorplan model", "calibrated preset")
	for _, c := range []struct {
		name string
		idx  int
	}{{"little0", 0}, {"little3", 3}, {"big0", 4}, {"big3", 7}} {
		table.AddRow(c.name,
			fmt.Sprintf("%.2f K", rise(fp, c.idx, 1.5)),
			fmt.Sprintf("%.2f K", rise(hand, c.idx, 1.5)))
	}
	fmt.Print(table.String())

	// Spatial coupling: heat big0 and look at its neighbours.
	p := make([]float64, len(fp.Nodes))
	p[4] = 3
	ss := fp.SteadyState(p)
	fmt.Println("\n3 W into big0 — neighbour temperatures (floorplan model):")
	for i, b := range blocks {
		fmt.Printf("  %-8s %.2f °C\n", b.Name, ss[i])
	}
	fmt.Printf("  package  %.2f °C\n", ss[pkg])
	fmt.Println("\nBoth models agree on the orderings the policies exploit:")
	fmt.Println("LITTLE cores run hotter per watt (smaller area), and heat")
	fmt.Println("spreads to neighbours before the far cluster.")
}
