// Single unseen applications (paper Fig. 11): each PARSEC-like benchmark —
// none of which was used to train the model — runs alone with a QoS target
// reachable at the LITTLE cluster's top VF level. TOP-IL should meet every
// target at low temperature; powersave violates almost everything except
// the memory-bound canneal; ondemand runs hot.
//
//	go run ./examples/singleapp
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)

	pipe := experiments.NewPipeline(experiments.QuickScale())
	pipe.Progress = func(msg string) { log.Print(msg) }

	res, err := pipe.Fig11SingleApp()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Render())

	fmt.Println("\nsummary per technique:")
	table := stats.NewTable("technique", "mean temp", "violating runs")
	for _, tech := range experiments.Techniques() {
		v, n := res.TotalViolations(tech)
		table.AddRow(tech,
			fmt.Sprintf("%.1f °C", res.MeanTempOf(tech)),
			fmt.Sprintf("%d/%d", v, n))
	}
	fmt.Print(table.String())
	fmt.Println("\nExpected: only TOP-IL combines zero violations with low")
	fmt.Println("temperature — on applications it has never seen (the paper's")
	fmt.Println("generalization claim).")
}
