// Custom policy: the docs/TUTORIAL.md walk-through as a runnable program.
//
// CoolFirst is a deliberately naive thermal policy — park everything on the
// LITTLE cluster at max VF and spill to big only when the die warms up. The
// program evaluates it against TOP-IL and the Linux baselines on the same
// workload and prints the comparison, demonstrating how third-party
// policies plug into the evaluation harness.
//
//	go run ./examples/custompolicy
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// CoolFirst implements sim.Manager and sim.Placer; see docs/TUTORIAL.md.
type CoolFirst struct{ env *sim.Env }

// Name implements sim.Manager.
func (c *CoolFirst) Name() string { return "cool-first" }

// Attach implements sim.Manager.
func (c *CoolFirst) Attach(env *sim.Env) { c.env = env }

// Place implements sim.Placer: start everything on a LITTLE core.
func (c *CoolFirst) Place(j workload.Job) platform.CoreID {
	little, _ := c.env.Platform().ClusterByKind(platform.Little)
	for _, core := range little.Cores {
		if !c.env.CoreOccupied(core) {
			return core
		}
	}
	return little.Cores[0]
}

// Tick implements sim.Manager: LITTLE at max, big at min; spill one
// application to a free big core whenever the sensor exceeds 45 °C.
func (c *CoolFirst) Tick(now float64) {
	c.env.SetClusterFreqIndex(0, 99) // clamped to the top level
	c.env.SetClusterFreqIndex(1, 0)
	if c.env.Temp() < 45 {
		return
	}
	big, _ := c.env.Platform().ClusterByKind(platform.Big)
	for _, a := range c.env.Apps() {
		if c.env.Platform().KindOf(a.Core) != platform.Little {
			continue
		}
		for _, core := range big.Cores {
			if !c.env.CoreOccupied(core) {
				_ = c.env.Migrate(a.ID, core)
				return
			}
		}
	}
}

func main() {
	log.SetFlags(0)
	pipe := experiments.NewPipeline(experiments.QuickScale())
	pipe.Progress = func(msg string) { log.Print(msg) }

	run := func(mgr sim.Manager) *sim.Result {
		cfg := sim.DefaultConfig(true, 25)
		engine := sim.New(cfg)
		gen := workload.NewGenerator(1, workload.MixedPool(), pipe.PeakIPS,
			0.2, 0.7, 0.15)
		engine.AddJobs(gen.Generate(10, 0.1))
		return engine.RunUntil(mgr, 600, engine.Done)
	}

	table := stats.NewTable("technique", "avg temp", "violations", "migrations", "energy")
	addRow := func(mgr sim.Manager) {
		r := run(mgr)
		table.AddRow(mgr.Name(),
			fmt.Sprintf("%.1f °C", r.AvgTemp),
			fmt.Sprintf("%d/%d", r.Violations, len(r.Apps)),
			fmt.Sprintf("%d", r.Migrations),
			fmt.Sprintf("%.0f J", r.TotalEnergyJ()))
	}

	addRow(&CoolFirst{})
	for _, tech := range experiments.Techniques() {
		mgr, err := pipe.Manager(tech, 0)
		if err != nil {
			log.Fatal(err)
		}
		addRow(mgr)
	}
	fmt.Print(table.String())
	fmt.Println("\nCoolFirst keeps the die cool but tramples QoS — compare the")
	fmt.Println("violation column against TOP-IL, which gets both right.")
}
