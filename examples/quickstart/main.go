// Quickstart: the full TOP-IL pipeline end to end, in miniature.
//
// It builds the simulated HiKey970, collects a small set of oracle traces,
// trains the IL migration model, and runs a managed two-application
// workload — the paper's motivational pair adi (big-optimal) and seidel-2d
// (LITTLE-optimal) — printing where the policy placed each application and
// the resulting temperature.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/npu"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	// 1. Design time: oracle traces + imitation learning. The pipeline
	// caches everything; QuickScale keeps this to roughly a minute.
	pipe := experiments.NewPipeline(experiments.QuickScale())
	pipe.Progress = func(msg string) { log.Print(msg) }
	models, err := pipe.Models()
	if err != nil {
		log.Fatal(err)
	}
	model := models[0]
	fmt.Printf("trained IL model: %d parameters\n", model.NumParams())

	// 2. Run time: the TOP-IL daemon — NPU-accelerated migration every
	// 500 ms plus the 50 ms DVFS control loop.
	manager := core.New(npu.New(model), core.DefaultConfig())

	cfg := sim.DefaultConfig(true, 25) // active cooling, 25 °C ambient
	engine := sim.New(cfg)

	pm := perf.Default()
	for _, name := range []string{"adi", "seidel-2d"} {
		spec, ok := workload.ByName(name)
		if !ok {
			log.Fatalf("unknown benchmark %q", name)
		}
		spec.TotalInstr = 60e9
		// QoS target: 30 % of the peak IPS on the big cluster, as in the
		// paper's motivational example.
		target := 0.3 * pm.PeakIPS(cfg.Platform, spec)
		engine.AddJob(workload.Job{Spec: spec, QoS: target})
		fmt.Printf("submitted %-10s QoS target %.2f GIPS\n", name, target/1e9)
	}

	result := engine.RunUntil(manager, 120, engine.Done)

	fmt.Printf("\nafter %.0f simulated seconds:\n", result.Duration)
	for _, a := range result.Apps {
		cluster := cfg.Platform.KindOf(a.Core)
		fmt.Printf("  %-10s finished on core %d (%v cluster), %.2f GIPS achieved\n",
			a.Name, a.Core, cluster, a.MeanIPS/1e9)
	}
	fmt.Printf("\naverage temperature: %.1f °C (peak %.1f °C)\n",
		result.AvgTemp, result.PeakTemp)
	fmt.Printf("QoS violations:      %d\n", result.Violations)
	fmt.Printf("migrations:          %d\n", result.Migrations)
	fmt.Println("\nExpected: adi on the big cluster, seidel-2d on LITTLE —")
	fmt.Println("the optimal mappings of the paper's Fig. 1, found by the NN.")

}
