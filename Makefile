# Development targets. `make check` is the default verify flow:
# build + vet + lint + full tests + race pass over the concurrent packages.

GO ?= go

.PHONY: check build vet lint test race cover fuzz conformance serve-smoke cluster-smoke online-smoke bench bench-serve

check: build vet lint test race cover

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# topil-lint enforces the repo's own invariants: determinism (detrand),
# mutex hygiene (lockcheck), unit annotations (unitcheck), process-exit
# discipline (exitcheck), chaos containment (testkitonly) and
# observability discipline (telemetrycheck). See docs/ANALYSIS.md.
lint:
	$(GO) run ./cmd/topil-lint ./...

test:
	$(GO) test ./...

# Race pass over every package that runs goroutines: the serving stack, the
# inference substrate it shares models with, and the simulation/workload/
# experiment layers. The experiments package runs with -short so the race
# detector's ~20x slowdown doesn't blow the test timeout on the full
# oracle+training pipeline; its artifact and concurrency tests still run.
race:
	$(GO) test -race ./internal/serve/... ./internal/cluster/... ./internal/npu/... \
		./internal/nn/... ./internal/workload/... ./internal/sim/... ./internal/telemetry/... \
		./internal/conformance/...
	$(GO) test -race -short ./internal/experiments/...

# Coverage gate: statement coverage of the serving, simulation, telemetry
# and testkit packages must not drop below scripts/coverage_baseline.txt.
cover:
	./scripts/coverage_gate.sh

# Short-budget fuzzing pass over every Fuzz* target (Go runs one target per
# invocation). Crashers land in testdata/fuzz/ and replay as plain tests;
# commit them. See docs/TESTING.md.
fuzz:
	$(GO) test ./internal/sim -run '^$$' -fuzz '^FuzzEngineChaos$$' -fuzztime=10s
	$(GO) test ./internal/workload -run '^$$' -fuzz '^FuzzJobEntries$$' -fuzztime=10s
	$(GO) test ./internal/cluster -run '^$$' -fuzz '^FuzzJournalReplay$$' -fuzztime=10s
	$(GO) test ./internal/conformance -run '^$$' -fuzz '^FuzzPackageManifest$$' -fuzztime=10s

# Policy-result regression gate: run the committed conformance packages
# (golden metric envelopes + /v1 schemas, docs/CONFORMANCE.md) offline at
# -j1 and -j8 — the reports must be byte-identical at any worker count.
conformance:
	./scripts/check.sh conformance

# Quick end-to-end: build the service and exercise one infer round trip.
serve-smoke:
	./scripts/check.sh smoke

# Cluster end-to-end: 3 journal-backed replicas behind the router, a
# loadgen burst, one replica SIGKILLed mid-run (zero 5xx allowed), and a
# job-store recovery check. See docs/CLUSTER.md.
cluster-smoke:
	./scripts/check.sh cluster-smoke

# Continual-learning end-to-end: one full DAgger cycle (recorded ->
# labeled -> trained -> shadow-scored -> promoted) through a live serve
# instance with real oracle labeling and a real hot swap. See
# docs/ONLINE.md.
online-smoke:
	./scripts/check.sh online-smoke

# Measure the experiment executor's parallel speedup (sequential vs -j N
# wall-clock over the multi-cell figures) into BENCH_experiments.json.
bench:
	$(GO) run ./scripts/benchexp -out BENCH_experiments.json

# Measure the serving stack's horizontal scaling (1 vs 4 device-paced
# replicas behind the router, closed-loop /v1/infer) into BENCH_serve.json.
bench-serve:
	$(GO) run ./scripts/benchserve -out BENCH_serve.json
