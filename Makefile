# Development targets. `make check` is the default verify flow:
# build + vet + full tests + race pass over the concurrent packages.

GO ?= go

.PHONY: check build vet test race serve-smoke

check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The serving subsystem is concurrency-heavy; always race-check it together
# with the inference substrate it shares models with.
race:
	$(GO) test -race ./internal/serve/... ./internal/npu/... ./internal/nn/...

# Quick end-to-end: build the service and exercise one infer round trip.
serve-smoke:
	./scripts/check.sh smoke
