// Command topil-serve runs the simulation & policy-inference service: a
// long-lived HTTP server that answers TOP-IL placement queries through a
// batched NPU-style inference frontend and executes full managed
// simulations as asynchronous jobs on a bounded worker pool.
//
//	topil-serve -addr :8080 -models artifacts
//
// Endpoints (see the README's Serving section for a full curl session):
//
//	GET    /v1/healthz     liveness
//	GET    /v1/models      models available in -models
//	POST   /v1/infer       batched inference against a named model
//	POST   /v1/sim         enqueue a simulation job (202 + job ID)
//	GET    /v1/jobs        list jobs
//	GET    /v1/jobs/{id}   poll one job
//	DELETE /v1/jobs/{id}   cancel a job
//	GET    /v1/stats       per-endpoint, batcher and worker-pool metrics
//	GET    /v1/online      continual-learning status snapshot
//	GET    /metrics        Prometheus text exposition (?format=json for JSON)
//	GET    /v1/trace       Chrome trace-event JSON of recent request spans
//
// -online MODEL turns on DAgger continual learning (docs/ONLINE.md):
// visited states from simulations and inference against MODEL are
// recorded to a durable sample log under -online-dir, labeled by the
// oracle every -train-interval, and retrained candidates are
// shadow-scored on live traffic (-shadow-window, -min-agreement) before
// an atomic hot swap with automatic rollback on telemetry regression.
//
// -pprof additionally mounts net/http/pprof under /debug/pprof/ (off by
// default: profiling endpoints can stall a loaded server and leak
// internals, so exposing them is an explicit operator decision).
//
// -store DIR journals every job transition to DIR so accepted jobs
// survive a crash: restart with the same -store and interrupted jobs
// re-execute. This is the per-replica durability layer behind
// topil-cluster (see docs/CLUSTER.md). -pace-device makes the inference
// batcher occupy the modelled NPU for each batch's device latency, so a
// replica behaves like it owns one real accelerator.
//
// On SIGINT/SIGTERM the server stops accepting work and drains: accepted
// inference requests are answered and in-flight simulation jobs run to
// completion until -drain expires, at which point they are canceled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topil-serve: ")
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "topil-serve: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		models    = flag.String("models", "artifacts", "model artifacts directory (<name>.json)")
		workers   = flag.Int("workers", runtime.NumCPU(), "simulation worker pool size")
		queueCap  = flag.Int("queue", 0, "simulation job queue capacity (default 4x workers)")
		batchMax  = flag.Int("batch", 16, "max inference batch size (one NPU wave)")
		batchWait = flag.Duration("batch-wait", 2*time.Millisecond, "max time a request waits to coalesce")
		inferCap  = flag.Int("infer-queue", 256, "pending inference submissions bound")
		drain     = flag.Duration("drain", 30*time.Second, "shutdown drain budget for in-flight jobs")
		pprof     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		storeDir  = flag.String("store", "", "durable job store directory (empty: jobs are in-memory only)")
		paceDev   = flag.Bool("pace-device", false, "occupy the modelled NPU for each batch's device latency")

		online        = flag.String("online", "", "model name to continually train on visited states (empty: off)")
		onlineDir     = flag.String("online-dir", "", "sample-log directory for -online (default <store>/online, required without -store)")
		trainInterval = flag.Duration("train-interval", 30*time.Second, "spacing between DAgger train cycles")
		shadowWindow  = flag.Int("shadow-window", 0, "shadow-scored rows required before a candidate is judged (0: gate default)")
		minAgreement  = flag.Float64("min-agreement", 0, "candidate-vs-incumbent action agreement the gate requires (0: gate default, negative: disabled)")
		onlineSeed    = flag.Int64("online-seed", 1, "seed for the continual learner's reservoir and retraining")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", flag.Args())
	}
	if *workers <= 0 {
		return fmt.Errorf("-workers must be positive")
	}
	if *batchMax <= 0 || *batchWait <= 0 || *inferCap <= 0 {
		return fmt.Errorf("-batch, -batch-wait and -infer-queue must be positive")
	}
	if info, err := os.Stat(*models); err != nil {
		return fmt.Errorf("models directory: %v", err)
	} else if !info.IsDir() {
		return fmt.Errorf("models path %s is not a directory", *models)
	}

	// One registry serves /metrics AND binds the lazy handles of the leaf
	// packages (npu, nn), so accelerator-side counters surface alongside
	// the HTTP families.
	reg := telemetry.NewRegistry()
	telemetry.Install(reg)

	// A journal-backed store makes accepted jobs survive a crash: on
	// restart over the same -store directory the runner replays the
	// journal and re-executes anything that never reached a terminal
	// state.
	var store serve.JobStore
	if *storeDir != "" {
		js, err := cluster.OpenJournalStore(*storeDir)
		if err != nil {
			return fmt.Errorf("job store: %v", err)
		}
		defer js.Close()
		store = js
		log.Printf("journaling jobs to %s", *storeDir)
	}

	var onlineCfg serve.OnlineConfig
	if *online != "" {
		dir := *onlineDir
		if dir == "" && *storeDir != "" {
			dir = *storeDir + "/online"
		}
		if dir == "" {
			return fmt.Errorf("-online needs -online-dir (or -store to derive it from)")
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("online sample-log directory: %v", err)
		}
		onlineCfg = serve.OnlineConfig{
			Enabled:       true,
			Model:         *online,
			Dir:           dir,
			TrainInterval: *trainInterval,
			ShadowWindow:  *shadowWindow,
			MinAgreement:  *minAgreement,
			Seed:          *onlineSeed,
		}
		log.Printf("continual learning on model %q (interval %v, samples in %s)",
			*online, *trainInterval, dir)
	}

	srv := serve.NewServer(serve.Config{
		ModelsDir: *models,
		Workers:   *workers,
		QueueCap:  *queueCap,
		Batch: serve.BatcherConfig{
			MaxBatch:   *batchMax,
			MaxWait:    *batchWait,
			QueueCap:   *inferCap,
			PaceDevice: *paceDev,
		},
		Store:       store,
		Telemetry:   reg,
		EnablePprof: *pprof,
		Online:      onlineCfg,
	})
	if *online != "" && srv.OnlineManager() == nil {
		return fmt.Errorf("continual learner failed to start (see log above)")
	}
	if names, err := srv.Registry().List(); err == nil {
		log.Printf("serving %d model(s) from %s: %v", len(names), *models, names)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (%d workers, batch %d/%v)",
			*addr, *workers, *batchMax, *batchWait)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	log.Printf("signal received: draining (budget %v)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	srv.Shutdown(drainCtx)
	log.Print("drained, bye")
	return <-errCh
}
