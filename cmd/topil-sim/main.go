// Command topil-sim runs one managed simulation on the simulated HiKey970
// and reports the outcome: temperature, QoS violations, CPU-time breakdown
// and migrations.
//
// Techniques: TOP-IL (requires -model from topil-train, or trains a quick
// one on the fly), TOP-RL (optionally -qtable), GTS/ondemand, GTS/powersave.
//
//	topil-sim -technique TOP-IL -model artifacts/model-1.json -jobs 12 -rate 0.1
//
// -metrics dumps the run's telemetry (Prometheus text format) to a file or
// "-" for stdout; -trace writes the run's sim-time spans as Chrome
// trace-event JSON, loadable in chrome://tracing or Perfetto.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/features"
	"repro/internal/npu"
	"repro/internal/rl"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topil-sim: ")
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "topil-sim: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		technique = flag.String("technique", "TOP-IL", "TOP-IL | TOP-RL | GTS/ondemand | GTS/powersave")
		modelPath = flag.String("model", "", "trained IL model JSON (TOP-IL)")
		qtPath    = flag.String("qtable", "", "pretrained Q-table (TOP-RL)")
		jobs      = flag.Int("jobs", 12, "number of applications")
		rate      = flag.Float64("rate", 0.1, "Poisson arrival rate (jobs/s)")
		dur       = flag.Float64("duration", 300, "simulated seconds")
		fan       = flag.Bool("fan", true, "active cooling")
		seed      = flag.Int64("seed", 1, "workload seed")
		instr     = flag.Float64("instr-scale", 0.1, "application length scaling")
		csvPath   = flag.String("csv", "", "write a 500 ms time-series CSV (temp, freqs, per-app IPS)")
		loadJobs  = flag.String("workload", "", "load a job list JSON instead of generating one")
		saveJobs  = flag.String("save-workload", "", "save the generated job list JSON")
		metrics   = flag.String("metrics", "", "dump run telemetry in Prometheus text format (\"-\" = stdout)")
		traceOut  = flag.String("trace", "", "write sim-time spans as Chrome trace-event JSON to this file")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", flag.Args())
	}
	if *jobs <= 0 || *rate <= 0 || *dur <= 0 || *instr <= 0 {
		return fmt.Errorf("-jobs, -rate, -duration and -instr-scale must be positive")
	}

	p := experiments.NewPipeline(experiments.QuickScale())
	p.Progress = func(msg string) { log.Print(msg) }

	mgr, err := buildManager(p, *technique, *modelPath, *qtPath, *seed)
	if err != nil {
		return err
	}

	cfg := sim.DefaultConfig(*fan, 25)
	cfg.Seed = *seed
	var reg *telemetry.Registry
	if *metrics != "" {
		reg = telemetry.NewRegistry()
		telemetry.Install(reg) // bind npu/nn lazy handles too
		cfg.Telemetry = reg
		cfg.PhaseClock = telemetry.NewWallClock() // per-tick phase costs
	}
	var traces *telemetry.TraceSet
	if *traceOut != "" {
		traces = telemetry.NewTraceSet()
		cfg.Tracer = traces.Tracer("sim")
	}
	e := sim.New(cfg)
	var jobList []workload.Job
	if *loadJobs != "" {
		jobList, err = workload.LoadJobs(*loadJobs)
		if err != nil {
			return err
		}
		log.Printf("loaded %d jobs from %s", len(jobList), *loadJobs)
	} else {
		gen := workload.NewGenerator(*seed, workload.MixedPool(), p.PeakIPS, 0.2, 0.7, *instr)
		jobList = gen.Generate(*jobs, *rate)
	}
	if *saveJobs != "" {
		if err := workload.SaveJobs(jobList, *saveJobs); err != nil {
			return err
		}
		log.Printf("job list saved to %s", *saveJobs)
	}
	e.AddJobs(jobList)

	log.Printf("running %s on %d jobs (rate %.2f/s, fan=%v) for %.0f s",
		mgr.Name(), len(jobList), *rate, *fan, *dur)
	var rec *sim.Recorder
	var hook func() bool
	if *csvPath != "" {
		rec = sim.NewRecorder(e.Env(), 0.5)
		hook = rec.Hook()
	}
	res := e.RunUntil(mgr, *dur, hook)
	if reg != nil {
		if err := writeMetrics(reg, *metrics); err != nil {
			return err
		}
	}
	if traces != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := traces.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		log.Printf("trace written to %s (load in chrome://tracing or Perfetto)", *traceOut)
	}
	if rec != nil {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		if err := rec.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		log.Printf("time series written to %s (%d samples)", *csvPath, len(rec.Samples))
	}

	fmt.Printf("technique:        %s\n", mgr.Name())
	fmt.Printf("avg temperature:  %.1f °C (peak %.1f)\n", res.AvgTemp, res.PeakTemp)
	fmt.Printf("QoS violations:   %d / %d apps\n", res.Violations, len(res.Apps))
	fmt.Printf("migrations:       %d\n", res.Migrations)
	fmt.Printf("throttled:        %.1f s\n", res.ThrottleSeconds)
	fmt.Printf("avg/peak util:    %.0f %% / %.0f %%\n", res.AvgUtil*100, res.PeakUtil*100)
	fmt.Printf("mgmt overhead:    %.1f ms/s\n", res.OverheadSeconds/res.Duration*1e3)
	fmt.Println("\nper-application results:")
	for _, a := range res.Apps {
		status := "ok"
		if a.Violated {
			status = "VIOLATED"
		}
		if !a.Finished {
			status += " (unfinished)"
		}
		fmt.Printf("  %-16s target %6.2f GIPS, achieved %6.2f GIPS  %s\n",
			a.Name, a.QoS/1e9, a.MeanIPS/1e9, status)
	}
	return nil
}

// writeMetrics dumps the registry in Prometheus text format to path, or to
// stdout when path is "-".
func writeMetrics(reg *telemetry.Registry, path string) error {
	if path == "-" {
		return reg.WritePrometheus(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	log.Printf("metrics written to %s", path)
	return nil
}

// buildManager assembles the requested technique, loading artifacts when
// provided and falling back to the quick pipeline otherwise.
func buildManager(p *experiments.Pipeline, technique, modelPath, qtPath string,
	seed int64) (sim.Manager, error) {
	switch technique {
	case "TOP-IL":
		if modelPath == "" {
			log.Print("no -model given: training a quick-scale model")
			return p.Manager(technique, 0)
		}
		m, err := core.LoadModel(modelPath, features.Dim(8, 2), 8)
		if err != nil {
			return nil, err
		}
		return core.New(npu.New(m), core.DefaultConfig()), nil
	case "TOP-RL":
		if qtPath == "" {
			log.Print("no -qtable given: pretraining a quick-scale policy")
			return p.Manager(technique, 0)
		}
		table, err := rl.LoadQTable(qtPath)
		if err != nil {
			return nil, err
		}
		return rl.New(table, rl.DefaultParams(), seed), nil
	default:
		return p.Manager(technique, 0)
	}
}
