// Command topil-loadgen drives a topil-serve replica or a topil-cluster
// router with synthetic /v1/infer traffic and prints a machine-readable
// report. It is the measurement half of the serving stack: the cluster
// claims throughput, shedding and failover properties, and this harness
// is how they are checked (make bench-serve, scripts/check.sh smoke).
//
//	topil-loadgen -url http://localhost:8080 -model model-1 -dim 21 \
//	    -qps 500 -duration 30s -shape burst > report.json
//
// Two generator modes:
//
//   - open (default): arrivals follow a Poisson process at the shaped
//     target rate regardless of responses — the honest way to measure a
//     server, since a slow server cannot slow the offered load. Arrivals
//     with no free in-flight slot are counted as overruns, never
//     silently dropped.
//   - closed: -concurrency workers issue requests back to back and honor
//     429/503 Retry-After hints, modelling well-behaved clients.
//
// Shapes modulate the target rate over the run: constant, burst (square
// wave between 3x and 0.25x), diurnal (sinusoid between 0.2x and 1.8x).
// The exit status is 0 as long as the run completed; interpreting error
// counts is the caller's job (report fields are documented on
// cluster.LoadReport).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "topil-loadgen: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		url      = flag.String("url", "http://localhost:8080", "target base URL (router or single replica)")
		model    = flag.String("model", "model-1", "model name for /v1/infer requests")
		dim      = flag.Int("dim", 21, "input feature dimension")
		rows     = flag.Int("rows", 1, "rows per inference request")
		qps      = flag.Float64("qps", 50, "target request rate (open mode)")
		conc     = flag.Int("concurrency", 0, "in-flight bound (open) / worker count (closed)")
		duration = flag.Duration("duration", 5*time.Second, "run length")
		mode     = flag.String("mode", cluster.ModeOpen, "open | closed")
		shape    = flag.String("shape", cluster.ShapeConstant, "constant | burst | diurnal")
		seed     = flag.Int64("seed", 1, "payload generator seed")
		out      = flag.String("o", "-", "report destination (- for stdout)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", flag.Args())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := cluster.RunLoad(ctx, cluster.LoadConfig{
		URL:         strings.TrimSuffix(*url, "/"),
		Model:       *model,
		InputDim:    *dim,
		Rows:        *rows,
		QPS:         *qps,
		Concurrency: *conc,
		Duration:    *duration,
		Mode:        *mode,
		Shape:       *shape,
		Seed:        *seed,
	})
	if err != nil {
		return err
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}
