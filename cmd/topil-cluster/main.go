// Command topil-cluster fronts N topil-serve replicas with a sharding
// router: POST /v1/infer and /v1/sim are consistent-hash routed (infer by
// model+feature key, sim by job ID), unhealthy or saturated replicas are
// skipped, and when every candidate is saturated the router sheds with
// 429 + Retry-After instead of queueing unbounded work.
//
// Two modes:
//
//	topil-cluster -n 3 -models artifacts -store-root /var/lib/topil
//	    launches 3 in-process replicas (each with its own journal
//	    directory under -store-root) and routes across them — the
//	    one-binary way to run the whole cluster.
//
//	topil-cluster -join http://10.0.0.1:8081,http://10.0.0.2:8081
//	    routes across externally managed topil-serve processes; the
//	    router holds no job state, so replicas can be restarted freely.
//
// Router endpoints mirror the replica API (see docs/CLUSTER.md), plus:
//
//	GET  /v1/cluster                    replica topology & health
//	POST /v1/replicas/{name}/drain      drain one replica via the router
//	GET  /metrics                       router-level Prometheus families
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topil-cluster: ")
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "topil-cluster: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", ":8080", "router listen address")
		join      = flag.String("join", "", "comma-separated replica base URLs (external replicas; disables -n)")
		n         = flag.Int("n", 3, "in-process replica count (ignored with -join)")
		models    = flag.String("models", "artifacts", "model artifacts directory for in-process replicas")
		storeRoot = flag.String("store-root", "", "root directory for per-replica job journals (empty: temp dir)")
		workers   = flag.Int("workers", 0, "per-replica simulation workers (default NumCPU/n, min 1)")
		queueCap  = flag.Int("queue", 0, "per-replica job queue capacity (default 4x workers)")
		paceDev   = flag.Bool("pace-device", false, "pace each replica's batcher at modelled NPU latency")
		vnodes    = flag.Int("vnodes", cluster.DefaultVnodes, "virtual nodes per replica on the hash ring")
		shedLoad  = flag.Float64("shed-load", 0, "queue-fill fraction at which a replica is skipped (default 0.95)")
		healthInt = flag.Duration("health-interval", 250*time.Millisecond, "replica health poll interval")
		fwdTO     = flag.Duration("forward-timeout", 30*time.Second, "per-attempt forward timeout")
		drain     = flag.Duration("drain", 30*time.Second, "shutdown drain budget")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", flag.Args())
	}

	reg := telemetry.NewRegistry()
	telemetry.Install(reg)

	var (
		replicas []cluster.Replica
		set      *cluster.ReplicaSet
	)
	if *join != "" {
		for i, u := range strings.Split(*join, ",") {
			u = strings.TrimSpace(strings.TrimSuffix(u, "/"))
			if u == "" {
				return fmt.Errorf("-join entry %d is empty", i)
			}
			replicas = append(replicas, cluster.Replica{
				Name: fmt.Sprintf("replica-%d", i),
				URL:  u,
			})
		}
	} else {
		if *n <= 0 {
			return fmt.Errorf("-n must be positive")
		}
		if info, err := os.Stat(*models); err != nil {
			return fmt.Errorf("models directory: %v", err)
		} else if !info.IsDir() {
			return fmt.Errorf("models path %s is not a directory", *models)
		}
		root := *storeRoot
		if root == "" {
			tmp, err := os.MkdirTemp("", "topil-cluster-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(tmp)
			root = tmp
			log.Printf("warning: -store-root not set; journals in %s do not survive this process", root)
		}
		w := *workers
		if w <= 0 {
			w = runtime.NumCPU() / *n
			if w < 1 {
				w = 1
			}
		}
		var err error
		set, err = cluster.StartReplicaSet(cluster.ReplicaSetConfig{
			N: *n,
			Serve: serve.Config{
				ModelsDir: *models,
				Workers:   w,
				QueueCap:  *queueCap,
				Batch:     serve.BatcherConfig{PaceDevice: *paceDev},
			},
			StoreRoot: root,
		})
		if err != nil {
			return fmt.Errorf("start replicas: %v", err)
		}
		defer set.Close()
		replicas = set.Replicas()
		log.Printf("started %d in-process replicas (%d workers each, journals under %s)", *n, w, root)
	}

	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Replicas:       replicas,
		Vnodes:         *vnodes,
		ShedLoad:       *shedLoad,
		HealthInterval: *healthInt,
		ForwardTimeout: *fwdTO,
		Telemetry:      reg,
	})
	if err != nil {
		return fmt.Errorf("router: %v", err)
	}
	defer rt.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: rt.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("routing on %s across %d replica(s)", *addr, len(replicas))
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	log.Printf("signal received: draining (budget %v)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if set != nil {
		set.Close()
	}
	log.Print("drained, bye")
	return <-errCh
}
