// Command topil-oracle exposes the two halves of oracle-demonstration
// generation separately, mirroring the paper's methodology where trace
// collection (hours on the board) is decoupled from the cheap QoS-target
// sweep:
//
//	topil-oracle collect -aoi adi -out traces/            # expensive
//	topil-oracle extract -traces traces/ -out dataset.json.gz [-alpha 2]
//	topil-oracle inspect -dataset dataset.json.gz
//
// collect writes one trace file per scenario; extract re-sweeps saved
// traces into a training dataset under any label configuration; inspect
// summarizes a dataset.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/oracle"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topil-oracle: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "collect":
		collect(os.Args[2:])
	case "extract":
		extract(os.Args[2:])
	case "inspect":
		inspect(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: topil-oracle collect|extract|inspect [flags]")
}

func collect(args []string) {
	fs := flag.NewFlagSet("collect", flag.ExitOnError)
	var (
		outDir    = fs.String("out", "traces", "output directory (one file per scenario)")
		aoi       = fs.String("aoi", "", "restrict AoIs to this comma-separated list (default: training set)")
		scenarios = fs.Int("scenarios", 10, "number of random scenarios (plus canonical ones)")
		seed      = fs.Int64("seed", 11, "scenario randomization seed")
		quick     = fs.Bool("quick", true, "use the quick trace configuration")
	)
	fs.Parse(args)

	pool := workload.TrainingSet()
	if *aoi != "" {
		pool = strings.Split(*aoi, ",")
	}
	cfg := oracleConfig(*quick)
	canon, err := oracle.CanonicalScenarios(pool)
	if err != nil {
		log.Fatal(err)
	}
	rnd, err := oracle.RandomScenarios(*scenarios, pool, *seed)
	if err != nil {
		log.Fatal(err)
	}
	scns := append(canon, rnd...)
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	for i, scn := range scns {
		ts, err := oracle.CollectTraces(scn, cfg)
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(*outDir, fmt.Sprintf("scenario-%03d-%s.json.gz", i, scn.AoI.Name))
		if err := oracle.SaveTraces(ts, path); err != nil {
			log.Fatal(err)
		}
		log.Printf("[%d/%d] %s: %d points -> %s",
			i+1, len(scns), scn.AoI.Name, len(ts.Points), path)
	}
}

func extract(args []string) {
	fs := flag.NewFlagSet("extract", flag.ExitOnError)
	var (
		tracesDir = fs.String("traces", "traces", "directory of collect output")
		out       = fs.String("out", "dataset.json.gz", "output dataset")
		alpha     = fs.Float64("alpha", 0, "override soft-label sensitivity α (0 = default)")
		cap       = fs.Int("cap", 0, "max examples per scenario (0 = unlimited)")
		quick     = fs.Bool("quick", true, "use the quick sweep configuration")
	)
	fs.Parse(args)

	cfg := oracleConfig(*quick)
	if *alpha > 0 {
		cfg.Alpha = *alpha
	}
	cfg.MaxExamplesPerScenario = *cap

	entries, err := filepath.Glob(filepath.Join(*tracesDir, "*.json.gz"))
	if err != nil || len(entries) == 0 {
		log.Fatalf("no trace files in %s", *tracesDir)
	}
	d := &oracle.Dataset{NumCores: 8}
	for _, path := range entries {
		ts, err := oracle.LoadTraces(path)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		exs, err := oracle.ExtractExamples(ts, cfg)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		d.Examples = append(d.Examples, exs...)
		log.Printf("%s: %d examples", filepath.Base(path), len(exs))
	}
	if err := d.Save(*out); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d examples to %s", d.Len(), *out)
}

func inspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	dataset := fs.String("dataset", "dataset.json.gz", "dataset to summarize")
	fs.Parse(args)

	d, err := oracle.Load(*dataset)
	if err != nil {
		log.Fatal(err)
	}
	st := d.ComputeStats()
	fmt.Printf("examples: %d, cores: %d, mean candidate cores: %.1f\n",
		st.Examples, d.NumCores, st.MeanFreeCores)
	fmt.Printf("labels on candidate cores: optimal %d, near-optimal %d, "+
		"suboptimal %d, infeasible %d\n",
		st.Optimal, st.NearOptimal, st.Suboptimal, st.Infeasible)
	for _, name := range d.AoINames() {
		fmt.Printf("  %-16s %6d examples\n", name, st.PerAoI[name])
	}
}

// oracleConfig returns the trace/sweep configuration.
func oracleConfig(quick bool) oracle.Config {
	cfg := oracle.DefaultConfig()
	if quick {
		cfg.LevelGrid = []int{0, 4, 8}
		cfg.WarmupSec = 10
		cfg.MeasureSec = 3
		cfg.Dt = 0.02
	}
	return cfg
}
