// Command topil-train runs the design-time pipeline of TOP-IL: it collects
// oracle traces on the simulated HiKey970, extracts training examples with
// soft labels, optionally runs the NAS grid search, trains the IL migration
// model(s), and pretrains the TOP-RL baseline's Q-table(s).
//
// Outputs (in -out, default ./artifacts):
//
//	dataset.json.gz   oracle demonstrations
//	model-<seed>.json trained IL models
//	qtable-<seed>.json.gz pretrained RL tables
//	nas.txt           grid-search report (with -nas)
//
// Use -quick for a fast smoke-scale run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topil-train: ")

	var (
		outDir    = flag.String("out", "artifacts", "output directory")
		quick     = flag.Bool("quick", false, "smoke-scale pipeline (seconds instead of minutes)")
		runNAS    = flag.Bool("nas", false, "also run the Fig. 3 topology grid search")
		scenarios = flag.Int("scenarios", 0, "override number of random oracle scenarios")
	)
	flag.Parse()

	scale := experiments.FullScale()
	if *quick {
		scale = experiments.QuickScale()
	}
	if *scenarios > 0 {
		scale.OracleScenarios = *scenarios
	}
	p := experiments.NewPipeline(scale)
	p.ArtifactsDir = *outDir // reuse partial artifacts across invocations
	p.Progress = func(msg string) { log.Print(msg) }

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	d, err := p.Dataset()
	if err != nil {
		log.Fatal(err)
	}
	dsPath := filepath.Join(*outDir, "dataset.json.gz")
	if err := d.Save(dsPath); err != nil {
		log.Fatal(err)
	}
	log.Printf("saved %d oracle examples to %s", d.Len(), dsPath)

	if *runNAS {
		res, err := p.Fig3GridSearch()
		if err != nil {
			log.Fatal(err)
		}
		nasPath := filepath.Join(*outDir, "nas.txt")
		if err := os.WriteFile(nasPath, []byte(res.Render()), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Print(res.Render())
	}

	models, err := p.Models()
	if err != nil {
		log.Fatal(err)
	}
	for i, m := range models {
		data, err := json.Marshal(m)
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(*outDir, fmt.Sprintf("model-%d.json", scale.Seeds[i]))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("saved IL model (seed %d, %d params) to %s",
			scale.Seeds[i], m.NumParams(), path)
	}

	tables, err := p.QTables()
	if err != nil {
		log.Fatal(err)
	}
	for i, tbl := range tables {
		path := filepath.Join(*outDir, fmt.Sprintf("qtable-%d.json.gz", scale.Seeds[i]))
		if err := tbl.Save(path); err != nil {
			log.Fatal(err)
		}
		log.Printf("saved RL Q-table (seed %d, %d entries) to %s",
			scale.Seeds[i], tbl.Entries(), path)
	}
	log.Print("done")
}
