// Command topil-experiments reproduces every figure of the paper's
// evaluation and prints the same rows/series the paper reports. Use -quick
// for a fast smoke run, -fig to select individual experiments, -out to
// write the text report, -csvdir to additionally export each experiment's
// data as CSV, -artifacts to cache the expensive design-time artifacts
// across invocations, -j to run each experiment's (technique × seed ×
// scenario) cells on a parallel worker pool — reports and CSV files are
// byte-identical at any -j value — and -trace to write a Chrome-loadable
// (chrome://tracing, Perfetto) span file of every simulation run in
// sim-time, likewise byte-identical at any -j value.
//
// Experiments: fig1 (motivational), fig3 (NAS), fig5 (migration overhead),
// fig7 (IL vs RL illustrative), fig8a/fig8b (main, fan / no fan, fig8b also
// prints Fig. 10), fig11 (single unseen apps), fig12 (run-time overhead),
// modeleval (model in isolation), energy (extension), ablations.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

// csvFile is one CSV artifact an experiment can emit.
type csvFile struct {
	name  string
	write func(io.Writer) error
}

// renderer is one experiment entry: name and a function producing a report
// plus optional CSV artifacts.
type renderer struct {
	name string
	run  func(p *experiments.Pipeline) (string, []csvFile, error)
}

func allExperiments() []renderer {
	return []renderer{
		{"fig1", func(p *experiments.Pipeline) (string, []csvFile, error) {
			r, err := p.Fig1Motivational()
			if err != nil {
				return "", nil, err
			}
			return r.Render(), []csvFile{{"fig1.csv", r.WriteCSV}}, nil
		}},
		{"fig3", func(p *experiments.Pipeline) (string, []csvFile, error) {
			r, err := p.Fig3GridSearch()
			if err != nil {
				return "", nil, err
			}
			return r.Render(), nil, nil
		}},
		{"fig5", func(p *experiments.Pipeline) (string, []csvFile, error) {
			r, err := p.Fig5MigrationOverhead()
			if err != nil {
				return "", nil, err
			}
			return r.Render(), []csvFile{{"fig5.csv", r.WriteCSV}}, nil
		}},
		{"fig7", func(p *experiments.Pipeline) (string, []csvFile, error) {
			r, err := p.Fig7Illustrative()
			if err != nil {
				return "", nil, err
			}
			return r.Render(), []csvFile{{"fig7.csv", r.WriteCSV}}, nil
		}},
		{"fig8a", func(p *experiments.Pipeline) (string, []csvFile, error) {
			r, err := p.Fig8Main(true)
			if err != nil {
				return "", nil, err
			}
			return r.Render(), []csvFile{{"fig8a.csv", r.WriteCSV}}, nil
		}},
		{"fig8b", func(p *experiments.Pipeline) (string, []csvFile, error) {
			r, err := p.Fig8Main(false)
			if err != nil {
				return "", nil, err
			}
			return r.Render() + "\n" + r.RenderFig10(), []csvFile{
				{"fig8b.csv", r.WriteCSV},
				{"fig10.csv", r.WriteFig10CSV},
			}, nil
		}},
		{"fig11", func(p *experiments.Pipeline) (string, []csvFile, error) {
			r, err := p.Fig11SingleApp()
			if err != nil {
				return "", nil, err
			}
			return r.Render(), []csvFile{{"fig11.csv", r.WriteCSV}}, nil
		}},
		{"fig12", func(p *experiments.Pipeline) (string, []csvFile, error) {
			r, err := p.Fig12Overhead()
			if err != nil {
				return "", nil, err
			}
			return r.Render(), []csvFile{{"fig12.csv", r.WriteCSV}}, nil
		}},
		{"modeleval", func(p *experiments.Pipeline) (string, []csvFile, error) {
			r, err := p.ModelEvaluation()
			if err != nil {
				return "", nil, err
			}
			return r.Render(), nil, nil
		}},
		{"energy", func(p *experiments.Pipeline) (string, []csvFile, error) {
			r, err := p.EnergyAnalysis()
			if err != nil {
				return "", nil, err
			}
			return r.Render(), []csvFile{{"energy.csv", r.WriteCSV}}, nil
		}},
		{"ablations", func(p *experiments.Pipeline) (string, []csvFile, error) {
			var b strings.Builder
			for _, f := range []func() (*experiments.AblationResult, error){
				p.AblationSoftLabels,
				p.AblationFreqFeatures,
				p.AblationMappingFeatures,
				p.AblationDVFSStep,
			} {
				r, err := f()
				if err != nil {
					return "", nil, err
				}
				b.WriteString(r.Render() + "\n")
			}
			return b.String(), nil, nil
		}},
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("topil-experiments: ")

	var (
		quick     = flag.Bool("quick", false, "smoke-scale experiments")
		figs      = flag.String("fig", "", "comma-separated subset (e.g. fig1,fig8a); empty = all")
		outPath   = flag.String("out", "", "also write the report to this file")
		csvDir    = flag.String("csvdir", "", "export per-experiment CSV data into this directory")
		verbose   = flag.Bool("v", false, "print pipeline progress")
		artifacts = flag.String("artifacts", "", "cache design-time artifacts (dataset/models/Q-tables) in this directory")
		jobs      = flag.Int("j", 0, "parallel run cells per experiment (0 = GOMAXPROCS); output is identical at any value")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event JSON of all simulation runs (sim-time) to this file")
	)
	flag.Parse()

	if *jobs < 0 {
		log.Fatalf("-j %d: worker count must be >= 0", *jobs)
	}
	scale := experiments.FullScale()
	if *quick {
		scale = experiments.QuickScale()
	}
	p := experiments.NewPipeline(scale)
	p.ArtifactsDir = *artifacts
	p.Workers = *jobs
	if *traceOut != "" {
		p.Traces = telemetry.NewTraceSet()
	}
	if *verbose {
		p.Progress = func(msg string) { log.Print(msg) }
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	selected := map[string]bool{}
	if *figs != "" {
		for _, f := range strings.Split(*figs, ",") {
			selected[strings.TrimSpace(f)] = true
		}
	}

	var report strings.Builder
	report.WriteString(fmt.Sprintf("TOP-IL experiment reproduction (%s scale)\n\n", scale.Name))
	for _, exp := range allExperiments() {
		if len(selected) > 0 && !selected[exp.name] {
			continue
		}
		start := time.Now()
		log.Printf("running %s ...", exp.name)
		out, csvs, err := exp.run(p)
		if err != nil {
			log.Fatalf("%s: %v", exp.name, err)
		}
		section := fmt.Sprintf("==== %s (%.1fs) ====\n%s\n", exp.name,
			time.Since(start).Seconds(), out)
		fmt.Print(section)
		report.WriteString(section)

		if *csvDir != "" {
			for _, c := range csvs {
				path := filepath.Join(*csvDir, c.name)
				f, err := os.Create(path)
				if err != nil {
					log.Fatal(err)
				}
				if err := c.write(f); err != nil {
					log.Fatalf("writing %s: %v", path, err)
				}
				if err := f.Close(); err != nil {
					log.Fatal(err)
				}
				log.Printf("wrote %s", path)
			}
		}
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(report.String()), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("report written to %s", *outPath)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := p.Traces.WriteChrome(f); err != nil {
			log.Fatalf("writing %s: %v", *traceOut, err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("trace written to %s (load in chrome://tracing or Perfetto)", *traceOut)
	}
}
