// Command topil-validate runs the reproduction's self-checks.
//
// With no flags it runs the calibration checks of the simulated platform:
// the physical invariants (frequency scaling, big/LITTLE asymmetry, leakage
// feedback, cooling ordering, engine conservation and determinism) that the
// policy comparisons rest on.
//
// With -packages it runs declarative conformance packages (see
// docs/CONFORMANCE.md): every scenario cell simulates on the experiments
// pipeline, golden metric envelopes gate the results, and packages that
// request wire-contract checks run them against a serve instance — an
// in-process one booted with a freshly trained model by default, or an
// external URL via -serve.
//
// Either mode exits 0 when everything passes and 1 otherwise.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/conformance"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/serve"
	"repro/internal/validate"
)

func main() {
	var (
		packagesDir = flag.String("packages", "",
			"run conformance packages from this directory instead of the calibration checks")
		jsonOut = flag.Bool("json", false,
			"with -packages: emit the report as JSON instead of text")
		workers = flag.Int("j", 0,
			"with -packages: simulation worker count (0 = GOMAXPROCS); reports are byte-identical at any setting")
		scaleName = flag.String("scale", "quick",
			"with -packages: experiment scale for trained artifacts (quick or full)")
		artifactsDir = flag.String("artifacts", "",
			"with -packages: cache design-time artifacts (dataset, models, Q-tables) in this directory")
		serveMode = flag.String("serve", "auto",
			"with -packages: serve instance for API checks — auto (boot in-process), off (skip), or a base URL")
		verbose = flag.Bool("v", false,
			"with -packages: print pipeline progress to stderr")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "topil-validate: unexpected arguments: %v\n", flag.Args())
		os.Exit(1)
	}
	if *packagesDir == "" {
		runCalibration()
		return
	}
	os.Exit(runPackages(*packagesDir, *jsonOut, *workers, *scaleName,
		*artifactsDir, *serveMode, *verbose))
}

// runCalibration is the classic no-flag mode.
func runCalibration() {
	results := validate.All()
	for _, r := range results {
		status := "PASS"
		if !r.OK {
			status = "FAIL"
		}
		fmt.Printf("%-4s %-40s %s\n", status, r.Name, r.Detail)
	}
	if failed := validate.Failed(results); len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "%d of %d checks failed\n", len(failed), len(results))
		os.Exit(1)
	}
	fmt.Printf("all %d checks passed\n", len(results))
}

// runPackages executes the conformance mode and returns the exit code.
func runPackages(dir string, jsonOut bool, workers int, scaleName, artifactsDir, serveMode string, verbose bool) int {
	pkgs, err := conformance.LoadDir(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	var scale experiments.Scale
	switch scaleName {
	case "quick":
		scale = experiments.QuickScale()
	case "full":
		scale = experiments.FullScale()
	default:
		fmt.Fprintf(os.Stderr, "topil-validate: unknown -scale %q (quick or full)\n", scaleName)
		return 1
	}
	p := experiments.NewPipeline(scale)
	p.Workers = workers
	p.ArtifactsDir = artifactsDir
	if verbose {
		p.Progress = func(msg string) { fmt.Fprintln(os.Stderr, "·", msg) }
	}

	ctx := context.Background()
	api, cleanup, err := resolveServe(ctx, p, pkgs, serveMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topil-validate:", err)
		return 1
	}
	if cleanup != nil {
		defer cleanup()
	}

	rep, err := conformance.Run(ctx, p, pkgs, api)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topil-validate:", err)
		return 1
	}
	if jsonOut {
		js, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "topil-validate:", err)
			return 1
		}
		fmt.Println(string(js))
	} else {
		fmt.Print(rep.Render())
	}
	if !rep.Pass {
		return 1
	}
	return 0
}

// wantsAPI reports whether any package requests wire-contract checks.
func wantsAPI(pkgs []*conformance.Package) bool {
	for _, p := range pkgs {
		if len(p.Manifest.APIChecks) > 0 {
			return true
		}
	}
	return false
}

// resolveServe maps the -serve flag to an API configuration, booting an
// in-process instance when needed. The returned cleanup (possibly nil)
// must run after the conformance run.
func resolveServe(ctx context.Context, p *experiments.Pipeline, pkgs []*conformance.Package, mode string) (*conformance.APIConfig, func(), error) {
	switch {
	case mode == "off" || !wantsAPI(pkgs):
		return nil, nil, nil
	case mode == "auto":
		return bootServe(ctx, p)
	default:
		// An external instance: not ours, so destructive checks
		// (backpressure flooding) stay off.
		return &conformance.APIConfig{BaseURL: mode}, nil, nil
	}
}

// bootServe trains (or loads) the pipeline's IL model, publishes it in a
// temporary registry directory, and serves the full /v1 surface on a
// loopback listener. Workers/QueueCap are kept small so the backpressure
// check sheds deterministically after a handful of long submissions.
func bootServe(ctx context.Context, p *experiments.Pipeline) (*conformance.APIConfig, func(), error) {
	models, err := p.Models()
	if err != nil {
		return nil, nil, err
	}
	dir, err := os.MkdirTemp("", "topil-validate-models-")
	if err != nil {
		return nil, nil, err
	}
	const modelName = "model-1"
	if err := core.SaveModel(models[0], filepath.Join(dir, modelName+".json")); err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	srv := serve.NewServer(serve.Config{ModelsDir: dir, Workers: 2, QueueCap: 4})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "topil-validate: serve:", err)
		}
	}()
	cleanup := func() {
		shCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(shCtx)
		srv.Shutdown(shCtx)
		os.RemoveAll(dir)
	}
	return &conformance.APIConfig{
		BaseURL:   "http://" + ln.Addr().String(),
		Model:     modelName,
		Dedicated: true,
	}, cleanup, nil
}
