// Command topil-validate runs the calibration self-checks of the simulated
// platform: the physical invariants (frequency scaling, big/LITTLE
// asymmetry, leakage feedback, cooling ordering, engine conservation and
// determinism) that the reproduction's policy comparisons rest on. It exits
// non-zero if any check fails.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/validate"
)

func main() {
	flag.Parse() // no flags yet; gives -h a sane answer
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "topil-validate: unexpected arguments: %v\n", flag.Args())
		os.Exit(1)
	}
	results := validate.All()
	for _, r := range results {
		status := "PASS"
		if !r.OK {
			status = "FAIL"
		}
		fmt.Printf("%-4s %-40s %s\n", status, r.Name, r.Detail)
	}
	if failed := validate.Failed(results); len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "%d of %d checks failed\n", len(failed), len(results))
		os.Exit(1)
	}
	fmt.Printf("all %d checks passed\n", len(results))
}
