package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

func validateBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "topil-validate-bin-")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "topil-validate")
		out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
		if err != nil {
			buildErr = err
			binPath = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building topil-validate: %v\n%s", buildErr, binPath)
	}
	return binPath
}

// govManifest is a governor-only package: no trained artifacts, no API
// checks, so the smoke tests stay fast and offline.
const govManifest = `{
  "schemaVersion": 1,
  "name": "smoke",
  "scenarios": [
    {
      "name": "quick",
      "durationSec": 60,
      "numJobs": 3,
      "rate": 1,
      "instrScale": 0.02,
      "techniques": ["GTS/ondemand"],
      "envelopes": [
        {
          "metric": "peakTempC",
          "technique": "GTS/ondemand",
          "min": %MIN%,
          "max": %MAX%,
          "boundary": "seed 1, 3 generated jobs, 60s, fan on"
        }
      ]
    }
  ]
}`

func writePackages(t *testing.T, min, max string) string {
	t.Helper()
	root := t.TempDir()
	dir := filepath.Join(root, "smoke")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	doc := strings.NewReplacer("%MIN%", min, "%MAX%", max).Replace(govManifest)
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return root
}

func runValidate(t *testing.T, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(validateBinary(t), args...)
	out, err := cmd.CombinedOutput()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running topil-validate: %v", err)
		}
		code = ee.ExitCode()
		if code == -1 {
			t.Fatalf("topil-validate killed: %v\n%s", err, out)
		}
	}
	return string(out), code
}

func TestSmokePackagesPass(t *testing.T) {
	root := writePackages(t, "0", "1000")
	out, code := runValidate(t, "-packages", root)
	if code != 0 {
		t.Fatalf("exit code %d, want 0\n%s", code, out)
	}
	for _, want := range []string{"package smoke: PASS", "conformance: PASS (1 package(s))"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSmokePackagesJSON(t *testing.T) {
	root := writePackages(t, "0", "1000")
	out, code := runValidate(t, "-packages", root, "-json")
	if code != 0 {
		t.Fatalf("exit code %d, want 0\n%s", code, out)
	}
	var rep struct {
		Packages []struct {
			Name string `json:"name"`
		} `json:"packages"`
		Pass bool `json:"pass"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("decoding -json report: %v\n%s", err, out)
	}
	if !rep.Pass || len(rep.Packages) != 1 || rep.Packages[0].Name != "smoke" {
		t.Fatalf("report = %+v", rep)
	}
}

// TestSmokePerturbedEnvelope pins the acceptance criterion end to end: a
// perturbed band exits 1 and the diagnostic names package, scenario and
// metric.
func TestSmokePerturbedEnvelope(t *testing.T) {
	root := writePackages(t, "-100", "-50")
	out, code := runValidate(t, "-packages", root)
	if code != 1 {
		t.Fatalf("exit code %d, want 1\n%s", code, out)
	}
	for _, want := range []string{"envelope smoke/quick: peakTempC", "FAIL"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSmokeBrokenPackage(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "broken")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"),
		[]byte(`{"schemaVersion": 9, "name": "broken", "scenarios": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := runValidate(t, "-packages", root)
	if code != 1 {
		t.Fatalf("exit code %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "manifest.json:1") || !strings.Contains(out, "unknown schema version 9") {
		t.Errorf("output lacks a file:line diagnostic:\n%s", out)
	}
}

func TestSmokeUnknownScale(t *testing.T) {
	root := writePackages(t, "0", "1000")
	out, code := runValidate(t, "-packages", root, "-scale", "galactic")
	if code != 1 {
		t.Fatalf("exit code %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, `unknown -scale "galactic"`) {
		t.Errorf("output missing scale diagnostic:\n%s", out)
	}
}

// TestSmokeClassicMode keeps the original no-flag calibration contract.
func TestSmokeClassicMode(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration checks are slow")
	}
	out, code := runValidate(t)
	if code != 0 {
		t.Fatalf("exit code %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "checks passed") {
		t.Errorf("output missing summary:\n%s", out)
	}
}
