package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// buildOnce compiles the topil-lint binary a single time per test run.
var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

func lintBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "topil-lint-bin-")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "topil-lint")
		out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
		if err != nil {
			buildErr = err
			binPath = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building topil-lint: %v\n%s", buildErr, binPath)
	}
	return binPath
}

// violations trips each of the four concurrency/lifecycle rules once.
const violations = `package w

import (
	"context"
	"net/http"
	"os"
)

func Spin() {
	go func() {
		for {
		}
	}()
}

func Fetch(ctx context.Context, url string) error {
	req, err := http.NewRequest("GET", url, nil)
	_ = req
	_ = ctx
	return err
}

func Open(path string, skip bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if skip {
		return nil
	}
	return f.Close()
}

//hot:smoke
func Hot(n int) []byte {
	return make([]byte, n)
}
`

// suppressed is the same module with every finding individually ignored.
const suppressed = `package w

import (
	"context"
	"net/http"
	"os"
)

func Spin() {
	//lint:ignore goleak process-lifetime worker for the smoke test
	go func() {
		for {
		}
	}()
}

func Fetch(ctx context.Context, url string) error {
	//lint:ignore ctxflow legacy endpoint, context plumbed separately
	req, err := http.NewRequest("GET", url, nil)
	_ = req
	_ = ctx
	return err
}

func Open(path string, skip bool) error {
	//lint:ignore closecheck handle parked in the registry on the skip path
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if skip {
		return nil
	}
	return f.Close()
}

//hot:smoke
func Hot(n int) []byte {
	//lint:ignore hotalloc one-time buffer, measured off the hot loop
	return make([]byte, n)
}
`

const clean = `package w

func Add(a, b int) int { return a + b }
`

const newRules = "goleak,ctxflow,closecheck,hotalloc"

// writeModule lays out a throwaway module for the binary to lint.
func writeModule(t *testing.T, src string) string {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"),
		[]byte("module smokemod\n\ngo 1.21\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "w.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return root
}

// runLint executes the binary in dir and returns stdout and the exit code.
func runLint(t *testing.T, dir string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(lintBinary(t), args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running topil-lint: %v", err)
		}
		code = ee.ExitCode()
		if code == -1 {
			t.Fatalf("topil-lint killed: %v\n%s", err, ee.Stderr)
		}
	}
	return string(out), code
}

// decodeReport parses the -json envelope.
func decodeReport(t *testing.T, out string) map[string]any {
	t.Helper()
	var rep map[string]any
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("decoding report: %v\n%s", err, out)
	}
	return rep
}

// rulesIn lists the distinct rules of the envelope's diagnostics.
func rulesIn(t *testing.T, rep map[string]any) map[string]int {
	t.Helper()
	diags, ok := rep["diagnostics"].([]any)
	if !ok {
		t.Fatalf("report has no diagnostics array: %v", rep)
	}
	rules := map[string]int{}
	for _, d := range diags {
		m := d.(map[string]any)
		rules[m["rule"].(string)]++
	}
	return rules
}

// TestSmokeCleanExitsZero: a clean tree exits 0 with an empty
// diagnostics array in the envelope.
func TestSmokeCleanExitsZero(t *testing.T) {
	dir := writeModule(t, clean)
	out, code := runLint(t, dir, "-json", "-rules", newRules, "-cachedir", t.TempDir(), "./...")
	if code != 0 {
		t.Fatalf("exit code %d, want 0\n%s", code, out)
	}
	rep := decodeReport(t, out)
	if n := len(rulesIn(t, rep)); n != 0 {
		t.Errorf("clean tree produced %d finding rules: %v", n, rep["diagnostics"])
	}
	for _, key := range []string{"packages", "load_seconds", "analysis_wall_seconds", "cache_hits", "cache_misses"} {
		if _, ok := rep[key]; !ok {
			t.Errorf("envelope missing %q: %v", key, rep)
		}
	}
}

// TestSmokeFindingsExitThree: each of the four new rules fires exactly
// once on the violation module, and the exit code is 3.
func TestSmokeFindingsExitThree(t *testing.T) {
	dir := writeModule(t, violations)
	out, code := runLint(t, dir, "-json", "-rules", newRules, "-cachedir", t.TempDir(), "./...")
	if code != 3 {
		t.Fatalf("exit code %d, want 3\n%s", code, out)
	}
	rules := rulesIn(t, decodeReport(t, out))
	for _, want := range []string{"goleak", "ctxflow", "closecheck", "hotalloc"} {
		if rules[want] != 1 {
			t.Errorf("rule %s fired %d times, want 1 (all: %v)", want, rules[want], rules)
		}
	}
}

// TestSmokeDiagnosticShape pins the five-key diagnostic contract inside
// the envelope.
func TestSmokeDiagnosticShape(t *testing.T) {
	dir := writeModule(t, violations)
	out, code := runLint(t, dir, "-json", "-rules", "goleak", "-cachedir", t.TempDir(), "./...")
	if code != 3 {
		t.Fatalf("exit code %d, want 3\n%s", code, out)
	}
	rep := decodeReport(t, out)
	diags := rep["diagnostics"].([]any)
	if len(diags) != 1 {
		t.Fatalf("%d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0].(map[string]any)
	if len(d) != 5 {
		t.Errorf("diagnostic has %d keys, want exactly 5 (rule/message/file/line/col): %v", len(d), d)
	}
	for _, key := range []string{"rule", "message", "file", "line", "col"} {
		if _, ok := d[key]; !ok {
			t.Errorf("diagnostic missing %q: %v", key, d)
		}
	}
}

// TestSmokeDisable: -disable removes exactly the named rules.
func TestSmokeDisable(t *testing.T) {
	dir := writeModule(t, violations)
	out, code := runLint(t, dir, "-json", "-rules", newRules,
		"-disable", "goleak,hotalloc", "-cachedir", t.TempDir(), "./...")
	if code != 3 {
		t.Fatalf("exit code %d, want 3\n%s", code, out)
	}
	rules := rulesIn(t, decodeReport(t, out))
	if rules["goleak"] != 0 || rules["hotalloc"] != 0 {
		t.Errorf("disabled rules still fired: %v", rules)
	}
	if rules["ctxflow"] != 1 || rules["closecheck"] != 1 {
		t.Errorf("remaining rules did not fire once each: %v", rules)
	}
}

// TestSmokeUnknownRuleExitsOne: operational errors exit 1.
func TestSmokeUnknownRuleExitsOne(t *testing.T) {
	dir := writeModule(t, clean)
	_, code := runLint(t, dir, "-rules", "nosuchrule", "./...")
	if code != 1 {
		t.Errorf("exit code %d, want 1", code)
	}
}

// TestSmokeSuppressionRoundTrip: //lint:ignore silences each new rule
// (exit 0), and an unused directive becomes a badignore finding.
func TestSmokeSuppressionRoundTrip(t *testing.T) {
	dir := writeModule(t, suppressed)
	out, code := runLint(t, dir, "-json", "-rules", newRules, "-cachedir", t.TempDir(), "./...")
	if code != 0 {
		t.Fatalf("suppressed module: exit code %d, want 0\n%s", code, out)
	}

	unused := clean + "\nfunc Noop() {\n\t//lint:ignore goleak nothing to suppress here\n\t_ = 0\n}\n"
	dir2 := writeModule(t, unused)
	out2, code2 := runLint(t, dir2, "-json", "-rules", newRules, "-cachedir", t.TempDir(), "./...")
	if code2 != 3 {
		t.Fatalf("unused suppression: exit code %d, want 3\n%s", code2, out2)
	}
	rules := rulesIn(t, decodeReport(t, out2))
	if rules["badignore"] != 1 {
		t.Errorf("unused suppression rules = %v, want one badignore", rules)
	}
}

// TestSmokeCacheWarm: a second identical run against the same -cachedir
// reports hits and identical diagnostics.
func TestSmokeCacheWarm(t *testing.T) {
	dir := writeModule(t, violations)
	cache := t.TempDir()
	out1, code1 := runLint(t, dir, "-json", "-rules", newRules, "-cachedir", cache, "./...")
	out2, code2 := runLint(t, dir, "-json", "-rules", newRules, "-cachedir", cache, "./...")
	if code1 != 3 || code2 != 3 {
		t.Fatalf("exit codes %d/%d, want 3/3", code1, code2)
	}
	rep1, rep2 := decodeReport(t, out1), decodeReport(t, out2)
	if rep2["cache_hits"].(float64) == 0 {
		t.Errorf("warm run reports no cache hits: %v", rep2)
	}
	d1, _ := json.Marshal(rep1["diagnostics"])
	d2, _ := json.Marshal(rep2["diagnostics"])
	if string(d1) != string(d2) {
		t.Errorf("cached diagnostics differ:\n%s\n%s", d1, d2)
	}
	if !strings.Contains(string(d1), "never exits") {
		t.Errorf("diagnostics lack the goleak message: %s", d1)
	}
}

// TestSmokeNoCacheFlag: -cache=false never reports hits even on a
// repeat run.
func TestSmokeNoCacheFlag(t *testing.T) {
	dir := writeModule(t, violations)
	runLint(t, dir, "-json", "-cache=false", "-rules", newRules, "./...")
	out, _ := runLint(t, dir, "-json", "-cache=false", "-rules", newRules, "./...")
	rep := decodeReport(t, out)
	if rep["cache_hits"].(float64) != 0 {
		t.Errorf("-cache=false still hit: %v", rep)
	}
}
