// Command topil-lint runs the repository's custom static-analysis suite
// (internal/analysis) over the given package patterns: detrand (no global
// RNG or wall clock in the deterministic packages), lockcheck (mutex copy
// and Lock/Unlock pairing hygiene), unitcheck (unit annotations on
// physical float64 fields and parameters), exitcheck (no os.Exit /
// log.Fatal / undocumented panic in library code), testkitonly (the
// fault-injection harness internal/testkit may only be imported from
// _test.go files, so chaos never ships in a production binary) and
// telemetrycheck (no expvar, no wall-clock reads fed into telemetry
// calls, Prometheus-valid metric names — outside internal/telemetry and
// cmd/).
//
// Exit status: 0 when the tree is clean, 3 when findings are reported,
// 1 on operational errors (bad pattern, unreadable files).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	flag.Usage = usage
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	rules := flag.String("rules", "all", "comma-separated rules to run (\"all\" = full suite)")
	disable := flag.String("disable", "", "comma-separated rules to skip")
	typeErrs := flag.Bool("typeerrors", false, "also print type-checker errors (analysis is best-effort without)")
	flag.Parse()

	code, err := run(flag.Args(), *rules, *disable, *jsonOut, *typeErrs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topil-lint: %v\n", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func usage() {
	fmt.Fprintf(os.Stderr, "Usage: topil-lint [flags] [patterns]\n\n")
	fmt.Fprintf(os.Stderr, "Patterns are package directories or recursive forms like ./... (default ./...).\n")
	fmt.Fprintf(os.Stderr, "Suppress a finding with `//lint:ignore <rule> <reason>` on or above its line.\n\nRules:\n")
	for _, a := range analysis.All() {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nFlags:\n")
	flag.PrintDefaults()
}

// selectAnalyzers resolves the -rules/-disable flags against the suite.
func selectAnalyzers(rules, disable string) ([]*analysis.Analyzer, error) {
	suite := analysis.All()
	var picked []*analysis.Analyzer
	if rules == "all" || rules == "" {
		picked = suite
	} else {
		for _, name := range strings.Split(rules, ",") {
			name = strings.TrimSpace(name)
			a := analysis.ByName(suite, name)
			if a == nil {
				return nil, fmt.Errorf("unknown rule %q (have: %s)", name, ruleNames(suite))
			}
			picked = append(picked, a)
		}
	}
	if disable != "" {
		skip := map[string]bool{}
		for _, name := range strings.Split(disable, ",") {
			name = strings.TrimSpace(name)
			if analysis.ByName(suite, name) == nil {
				return nil, fmt.Errorf("unknown rule %q in -disable (have: %s)", name, ruleNames(suite))
			}
			skip[name] = true
		}
		var kept []*analysis.Analyzer
		for _, a := range picked {
			if !skip[a.Name] {
				kept = append(kept, a)
			}
		}
		picked = kept
	}
	if len(picked) == 0 {
		return nil, fmt.Errorf("no rules selected")
	}
	return picked, nil
}

func ruleNames(suite []*analysis.Analyzer) string {
	names := make([]string, len(suite))
	for i, a := range suite {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

func run(patterns []string, rules, disable string, jsonOut, typeErrs bool) (int, error) {
	analyzers, err := selectAnalyzers(rules, disable)
	if err != nil {
		return 0, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		return 0, err
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return 0, err
	}
	if typeErrs {
		for _, p := range pkgs {
			for _, e := range p.TypeErrors {
				fmt.Fprintf(os.Stderr, "topil-lint: typecheck %s: %v\n", p.Path, e)
			}
		}
	}

	diags := analysis.Run(pkgs, analyzers)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			return 0, err
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
		if len(diags) > 0 {
			fmt.Printf("topil-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
	}
	if len(diags) > 0 {
		return 3, nil
	}
	return 0, nil
}
