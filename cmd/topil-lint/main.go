// Command topil-lint runs the repository's custom static-analysis suite
// (internal/analysis) over the given package patterns.
//
// Per-package rules: detrand (no global RNG or wall clock in the
// deterministic packages), lockcheck (mutex copy, Lock/Unlock and
// RLock/RUnlock pairing on every path, RLock→Lock upgrade deadlocks),
// unitcheck (unit annotations on physical float64 fields and
// parameters), exitcheck (no os.Exit / log.Fatal / undocumented panic in
// library code), testkitonly (the fault-injection harness
// internal/testkit may only be imported from _test.go files),
// telemetrycheck (no expvar, no wall-clock reads fed into telemetry
// calls, Prometheus-valid metric names), ctxflow (context.Context
// discipline: ctx first, no fresh roots in request-scoped code,
// NewRequestWithContext, cancellable channel waits) and hotalloc
// (functions annotated //hot:<reason> must be allocation-free per the
// compiler's escape analysis).
//
// Whole-program rules, resolved through the module call graph: goleak
// (every spawned goroutine has a provable exit path, including closures
// handed to spawn helpers) and closecheck (response bodies, files,
// listeners and tickers are released on every path, with ownership
// transfer across calls).
//
// Results are cached per package under -cachedir keyed on file content
// hashes, so unchanged re-runs are near-instant; -cache=false forces a
// full recompute.
//
// Exit status: 0 when the tree is clean, 3 when findings are reported,
// 1 on operational errors (bad pattern, unreadable files).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/analysis"
)

func main() {
	flag.Usage = usage
	jsonOut := flag.Bool("json", false, "emit a JSON report (diagnostics, timings, cache stats) instead of text")
	rules := flag.String("rules", "all", "comma-separated rules to run (\"all\" = full suite)")
	disable := flag.String("disable", "", "comma-separated rules to skip")
	typeErrs := flag.Bool("typeerrors", false, "also print type-checker errors (analysis is best-effort without)")
	useCache := flag.Bool("cache", true, "reuse per-package results keyed on file content hashes")
	cacheDir := flag.String("cachedir", "", "cache location (default: user cache dir/topil-lint)")
	flag.Parse()

	code, err := run(flag.Args(), options{
		rules:    *rules,
		disable:  *disable,
		jsonOut:  *jsonOut,
		typeErrs: *typeErrs,
		useCache: *useCache,
		cacheDir: *cacheDir,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "topil-lint: %v\n", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func usage() {
	fmt.Fprintf(os.Stderr, "Usage: topil-lint [flags] [patterns]\n\n")
	fmt.Fprintf(os.Stderr, "Patterns are package directories or recursive forms like ./... (default ./...).\n")
	fmt.Fprintf(os.Stderr, "Suppress a finding with `//lint:ignore <rule> <reason>` on or above its line.\n\nRules:\n")
	for _, a := range analysis.All() {
		fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nFlags:\n")
	flag.PrintDefaults()
}

// options carries the parsed command line.
type options struct {
	rules, disable    string
	jsonOut, typeErrs bool
	useCache          bool
	cacheDir          string
}

// report is the -json envelope. The diagnostics array keeps the pinned
// five-key shape; the envelope adds run metadata (scripts/check.sh reads
// analysis_wall_seconds for the lint time budget).
type report struct {
	Diagnostics         []analysis.Diagnostic `json:"diagnostics"`
	Packages            int                   `json:"packages"`
	LoadSeconds         float64               `json:"load_seconds"`
	AnalysisWallSeconds float64               `json:"analysis_wall_seconds"`
	CacheHits           int                   `json:"cache_hits"`
	CacheMisses         int                   `json:"cache_misses"`
}

// selectAnalyzers resolves the -rules/-disable flags against the suite.
func selectAnalyzers(rules, disable string) ([]*analysis.Analyzer, error) {
	suite := analysis.All()
	var picked []*analysis.Analyzer
	if rules == "all" || rules == "" {
		picked = suite
	} else {
		for _, name := range strings.Split(rules, ",") {
			name = strings.TrimSpace(name)
			a := analysis.ByName(suite, name)
			if a == nil {
				return nil, fmt.Errorf("unknown rule %q (have: %s)", name, ruleNames(suite))
			}
			picked = append(picked, a)
		}
	}
	if disable != "" {
		skip := map[string]bool{}
		for _, name := range strings.Split(disable, ",") {
			name = strings.TrimSpace(name)
			if analysis.ByName(suite, name) == nil {
				return nil, fmt.Errorf("unknown rule %q in -disable (have: %s)", name, ruleNames(suite))
			}
			skip[name] = true
		}
		var kept []*analysis.Analyzer
		for _, a := range picked {
			if !skip[a.Name] {
				kept = append(kept, a)
			}
		}
		picked = kept
	}
	if len(picked) == 0 {
		return nil, fmt.Errorf("no rules selected")
	}
	return picked, nil
}

func ruleNames(suite []*analysis.Analyzer) string {
	names := make([]string, len(suite))
	for i, a := range suite {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

func run(patterns []string, opts options) (int, error) {
	analyzers, err := selectAnalyzers(opts.rules, opts.disable)
	if err != nil {
		return 0, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		return 0, err
	}
	loadStart := time.Now()
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return 0, err
	}
	loadSecs := time.Since(loadStart).Seconds()
	if opts.typeErrs {
		for _, p := range pkgs {
			for _, e := range p.TypeErrors {
				fmt.Fprintf(os.Stderr, "topil-lint: typecheck %s: %v\n", p.Path, e)
			}
		}
	}

	cacheDir := ""
	if opts.useCache {
		cacheDir = opts.cacheDir
		if cacheDir == "" {
			cacheDir = analysis.DefaultCacheDir()
		}
	}
	analysisStart := time.Now()
	diags, stats := analysis.RunCached(pkgs, analyzers, cacheDir)
	wallSecs := time.Since(analysisStart).Seconds()

	if opts.jsonOut {
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report{
			Diagnostics:         diags,
			Packages:            len(pkgs),
			LoadSeconds:         loadSecs,
			AnalysisWallSeconds: wallSecs,
			CacheHits:           stats.Hits,
			CacheMisses:         stats.Misses,
		}); err != nil {
			return 0, err
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
		if len(diags) > 0 {
			fmt.Printf("topil-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
	}
	if len(diags) > 0 {
		return 3, nil
	}
	return 0, nil
}
