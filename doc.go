// Package repro is a from-scratch Go reproduction of "NPU-Accelerated
// Imitation Learning for Thermal Optimization of QoS-Constrained
// Heterogeneous Multi-Cores" (Rapp, Khdr, Krohmer, Henkel; DATE'22 and its
// journal extension).
//
// The paper's system — TOP-IL — minimizes the on-chip temperature of an
// Arm big.LITTLE processor under per-application QoS (IPS) targets, by
// combining imitation-learned, NPU-accelerated application migration with a
// per-cluster DVFS control loop. The original evaluation runs on a HiKey970
// board; this repository substitutes the board with a calibrated simulation
// (platform, power, RC-thermal, performance and workload models) and
// rebuilds everything above it: the oracle/training pipeline, the neural
// network and NPU model, the TOP-IL run-time, the TOP-RL baseline and the
// Linux GTS/ondemand/powersave baselines.
//
// Layout:
//
//	internal/core         TOP-IL (the paper's contribution)
//	internal/{platform,perf,power,thermal,sim,workload}  platform substrate
//	internal/{nn,npu,features,oracle}                    learning substrate
//	internal/{rl,governor}                               baselines
//	internal/experiments  every figure of the evaluation
//	internal/serve        HTTP service: batched inference + sim job pool
//	internal/analysis     custom static analysis (cmd/topil-lint)
//	internal/testkit      chaos injection + invariant/differential harness
//	cmd/...               train / simulate / reproduce-all tools
//	examples/...          runnable API demos
//
// See README.md for usage, DESIGN.md for the system inventory and
// substitution rationale, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmark harness in bench_test.go regenerates every table and figure.
// docs/ANALYSIS.md documents the repository's own lint suite (topil-lint):
// a module-wide call graph plus a CFG dataflow engine drive rules for
// determinism, mutex hygiene, goroutine exit paths, context propagation,
// resource release, zero-allocation //hot functions, physical units,
// process exit and chaos containment; `make check` runs it between vet
// and the tests under a wall-clock budget, cached per package. docs/TESTING.md
// documents the deterministic fault-injection harness (internal/testkit),
// the paper-invariant property suite, the seed-replay workflow
// (TOPIL_CHAOS_SEED), fuzzing (`make fuzz`) and the coverage gate.
package repro
