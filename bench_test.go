// Benchmark harness: one testing.B target per table/figure of the paper's
// evaluation. Each bench regenerates the corresponding experiment at quick
// scale and reports its headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. The shared design-time pipeline
// (oracle traces, IL model, RL pretraining) is built once outside the
// timers. Micro-benchmarks for the core substrate (engine tick, NN
// inference/backprop, thermal step) sit at the bottom.
package repro_test

import (
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/npu"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/workload"
)

var (
	benchOnce sync.Once
	benchPipe *experiments.Pipeline
)

// pipeline returns the shared quick-scale pipeline with the design-time
// artifacts prebuilt (outside any benchmark timer).
func pipeline(b *testing.B) *experiments.Pipeline {
	b.Helper()
	benchOnce.Do(func() {
		benchPipe = experiments.NewPipeline(experiments.QuickScale())
		if _, err := benchPipe.Models(); err != nil {
			b.Fatal(err)
		}
		if _, err := benchPipe.QTables(); err != nil {
			b.Fatal(err)
		}
	})
	return benchPipe
}

// BenchmarkTable2Features measures extraction of the paper's Table-2
// feature vector from a live platform snapshot — the per-epoch cost of the
// daemon's observation path.
func BenchmarkTable2Features(b *testing.B) {
	cfg := sim.DefaultConfig(true, 25)
	e := sim.New(cfg)
	pm := perf.Default()
	for _, name := range []string{"adi", "seidel-2d", "canneal", "ferret"} {
		spec, _ := workload.ByName(name)
		spec.TotalInstr = 1e18
		e.AddJob(workload.Job{Spec: spec, QoS: 0.3 * pm.PeakIPS(cfg.Platform, spec)})
	}
	e.Run(nil, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := features.FromEnv(e.Env())
		vs := features.Vectors(s)
		if len(vs) != 4 || len(vs[0]) != 21 {
			b.Fatal("unexpected feature shape")
		}
	}
}

// BenchmarkFig1Motivational regenerates the motivational example.
func BenchmarkFig1Motivational(b *testing.B) {
	p := pipeline(b)
	for i := 0; i < b.N; i++ {
		res, err := p.Fig1Motivational()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			adv := tempOf(res, "adi", 1, "LITTLE") - tempOf(res, "adi", 1, "big")
			b.ReportMetric(adv, "°C_adi_big_advantage")
		}
	}
}

func tempOf(r *experiments.Fig1Result, app string, scen int, mapping string) float64 {
	for _, row := range r.Rows {
		if row.App == app && row.Scenario == scen && row.Mapping == mapping {
			return row.AvgTemp
		}
	}
	return 0
}

// BenchmarkFig3GridSearch regenerates the NAS grid search.
func BenchmarkFig3GridSearch(b *testing.B) {
	p := pipeline(b)
	for i := 0; i < b.N; i++ {
		res, err := p.Fig3GridSearch()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.NAS.Best.ValLoss, "best_val_mse")
			b.ReportMetric(float64(res.NAS.Best.Depth), "best_depth")
			b.ReportMetric(float64(res.NAS.Best.Width), "best_width")
		}
	}
}

// BenchmarkFig5MigrationOverhead regenerates the worst-case migration
// overhead measurement.
func BenchmarkFig5MigrationOverhead(b *testing.B) {
	p := pipeline(b)
	for i := 0; i < b.N; i++ {
		res, err := p.Fig5MigrationOverhead()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Maximum*100, "%_max_overhead")
			b.ReportMetric(res.Average*100, "%_avg_overhead")
		}
	}
}

// BenchmarkFig7Illustrative regenerates the IL-vs-RL stability comparison.
func BenchmarkFig7Illustrative(b *testing.B) {
	p := pipeline(b)
	for i := 0; i < b.N; i++ {
		res, err := p.Fig7Illustrative()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			il, rl := 0, 0
			for _, tr := range res.Traces {
				if tr.Technique == "TOP-IL" {
					il += tr.Migrations
				} else {
					rl += tr.Migrations
				}
			}
			b.ReportMetric(float64(il), "IL_migrations")
			b.ReportMetric(float64(rl), "RL_migrations")
		}
	}
}

func benchFig8(b *testing.B, fan bool) {
	p := pipeline(b)
	for i := 0; i < b.N; i++ {
		res, err := p.Fig8Main(fan)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.MeanTempOf("GTS/ondemand")-res.MeanTempOf("TOP-IL"),
				"°C_saved_vs_ondemand")
			b.ReportMetric(res.MeanViolationsOf("TOP-RL")-res.MeanViolationsOf("TOP-IL"),
				"violations_fewer_than_RL")
		}
	}
}

// BenchmarkFig8MainFan regenerates the main experiment with active cooling.
func BenchmarkFig8MainFan(b *testing.B) { benchFig8(b, true) }

// BenchmarkFig8MainNoFan regenerates the main experiment with passive
// cooling (the cooling-generalization claim).
func BenchmarkFig8MainNoFan(b *testing.B) { benchFig8(b, false) }

// BenchmarkFig10FrequencyUsage regenerates the CPU-time-per-VF-level
// breakdown (computed from the no-fan main runs).
func BenchmarkFig10FrequencyUsage(b *testing.B) {
	p := pipeline(b)
	for i := 0; i < b.N; i++ {
		res, err := p.Fig8Main(false)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Ondemand's signature: share of big-cluster time at the top level.
			ct := res.CPUTime["GTS/ondemand"]
			total, top := 0.0, 0.0
			for _, v := range ct[1] {
				total += v
			}
			top = ct[1][len(ct[1])-1]
			if total > 0 {
				b.ReportMetric(top/total*100, "%_ondemand_big_at_max")
			}
		}
	}
}

// BenchmarkFig11SingleApp regenerates the unseen-application experiment.
func BenchmarkFig11SingleApp(b *testing.B) {
	p := pipeline(b)
	for i := 0; i < b.N; i++ {
		res, err := p.Fig11SingleApp()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			v, _ := res.TotalViolations("TOP-IL")
			pv, _ := res.TotalViolations("GTS/powersave")
			b.ReportMetric(float64(v), "IL_violating_runs")
			b.ReportMetric(float64(pv), "powersave_violating_runs")
		}
	}
}

// BenchmarkFig12Overhead regenerates the run-time overhead evaluation.
func BenchmarkFig12Overhead(b *testing.B) {
	p := pipeline(b)
	for i := 0; i < b.N; i++ {
		res, err := p.Fig12Overhead()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := res.Rows[len(res.Rows)-1]
			b.ReportMetric(last.DVFSMsPerCall, "ms_dvfs_per_call_16apps")
			b.ReportMetric(last.MigrationMsPerCall, "ms_migr_per_call_16apps")
		}
	}
}

// BenchmarkModelEvaluation regenerates the model-in-isolation evaluation.
func BenchmarkModelEvaluation(b *testing.B) {
	p := pipeline(b)
	for i := 0; i < b.N; i++ {
		res, err := p.ModelEvaluation()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.WithinOneC.Mean*100, "%_within_1C")
			b.ReportMetric(res.MeanExcess.Mean, "°C_mean_excess")
		}
	}
}

// BenchmarkAblationSoftLabels compares soft vs hard oracle labels.
func BenchmarkAblationSoftLabels(b *testing.B) {
	p := pipeline(b)
	for i := 0; i < b.N; i++ {
		res, err := p.AblationSoftLabels()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Default["within 1°C"]*100, "%_soft")
			b.ReportMetric(res.Variant["within 1°C"]*100, "%_hard")
		}
	}
}

// BenchmarkAblationFreqFeatures quantifies the f̃ feature group.
func BenchmarkAblationFreqFeatures(b *testing.B) {
	p := pipeline(b)
	for i := 0; i < b.N; i++ {
		res, err := p.AblationFreqFeatures()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Default["within 1°C"]*100, "%_with")
			b.ReportMetric(res.Variant["within 1°C"]*100, "%_without")
		}
	}
}

// BenchmarkAblationDVFSStep compares one-step vs jump-to-target DVFS.
func BenchmarkAblationDVFSStep(b *testing.B) {
	p := pipeline(b)
	for i := 0; i < b.N; i++ {
		res, err := p.AblationDVFSStep()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Default["violations"], "violations_onestep")
			b.ReportMetric(res.Variant["violations"], "violations_jump")
		}
	}
}

// BenchmarkEnergyAnalysis regenerates the energy extension experiment.
func BenchmarkEnergyAnalysis(b *testing.B) {
	p := pipeline(b)
	for i := 0; i < b.N; i++ {
		res, err := p.EnergyAnalysis()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			if row, ok := res.Row("TOP-IL"); ok {
				b.ReportMetric(row.TotalJ.Mean, "J_topil_total")
			}
		}
	}
}

// ---- substrate micro-benchmarks ----

// BenchmarkEngineTick measures the simulation engine's cost per tick with a
// realistic load (6 apps).
func BenchmarkEngineTick(b *testing.B) {
	cfg := sim.DefaultConfig(true, 25)
	e := sim.New(cfg)
	pool := []string{"adi", "canneal", "ferret", "seidel-2d", "syr2k", "dedup"}
	for _, name := range pool {
		spec, _ := workload.ByName(name)
		spec.TotalInstr = 1e18
		e.AddJob(workload.Job{Spec: spec, QoS: 1e9})
	}
	e.Run(nil, 1)
	b.ResetTimer()
	e.Run(nil, float64(b.N)*cfg.Dt)
}

// BenchmarkNNInference measures a single forward pass of the paper's 4×64
// topology.
func BenchmarkNNInference(b *testing.B) {
	m := nn.NewMLP(nn.PaperTopology(21, 8), 1)
	x := make([]float64, 21)
	for i := range x {
		x[i] = float64(i) * 0.05
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Predict(x)
	}
}

// BenchmarkNPUBatchInference measures the batched inference path (one AoI
// row per running application).
func BenchmarkNPUBatchInference(b *testing.B) {
	m := nn.NewMLP(nn.PaperTopology(21, 8), 1)
	accel := npu.New(m)
	batch := make([][]float64, 8)
	for i := range batch {
		batch[i] = make([]float64, 21)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = accel.Infer(batch)
	}
}

// BenchmarkThermalStep measures one 10 ms step of the HiKey970 RC network.
func BenchmarkThermalStep(b *testing.B) {
	n := thermal.HiKey970Network(true, 25)
	p := make([]float64, 9)
	p[5], p[6] = 2.0, 2.5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step(p, 0.01)
	}
}
