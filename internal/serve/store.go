package serve

import (
	"fmt"
	"strconv"
	"strings"
)

// JobRecord is one journaled job transition. The queued record carries the
// full request (so an interrupted job can be re-executed after a restart);
// terminal records carry the outcome. Replaying the sequence of records
// for one ID in append order reproduces the job's lifecycle.
type JobRecord struct {
	ID     string      `json:"id"`
	State  JobState    `json:"state"`
	Req    *SimRequest `json:"req,omitempty"`    // set on the queued record
	Err    string      `json:"error,omitempty"`  // set on the failed record
	Result *SimResult  `json:"result,omitempty"` // set on the done record
}

// JobStore persists job transitions so GET /v1/jobs/{id} survives a
// replica restart. Implementations must make Append durable before
// returning (the cluster layer's journal fsyncs every record) and must be
// safe for concurrent Append calls from multiple workers. Replay returns
// every surviving record in append order; a torn tail from a crash
// mid-write is truncated, not an error.
type JobStore interface {
	Append(rec JobRecord) error
	Replay() ([]JobRecord, error)
}

// recoveredJob is the folded view of one job's journal records.
type recoveredJob struct {
	id     string
	state  JobState
	req    SimRequest
	err    string
	result *SimResult
}

// foldRecords reduces a replayed journal to per-job final states in
// first-appearance order. Records without a preceding queued record (the
// queued line was lost to a torn journal) are dropped: there is no request
// to re-execute and no client holding that ID from this incarnation.
func foldRecords(recs []JobRecord) []recoveredJob {
	byID := make(map[string]*recoveredJob)
	var order []string
	for _, rec := range recs {
		j, ok := byID[rec.ID]
		if !ok {
			if rec.Req == nil {
				continue // torn journal: no request to recover
			}
			j = &recoveredJob{id: rec.ID, state: rec.State, req: *rec.Req}
			byID[rec.ID] = j
			order = append(order, rec.ID)
		}
		j.state = rec.State
		if rec.Req != nil {
			j.req = *rec.Req
		}
		if rec.Err != "" {
			j.err = rec.Err
		}
		if rec.Result != nil {
			j.result = rec.Result
		}
	}
	out := make([]recoveredJob, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return out
}

// isTerminal reports whether a state ends the job lifecycle.
func isTerminal(st JobState) bool {
	return st == StateDone || st == StateFailed || st == StateCanceled
}

// maxRunnerSeq extracts the largest runner-minted sequence number
// ("j-%06d") among the given IDs, so a recovered runner keeps minting
// fresh IDs. Externally minted IDs (the cluster router's) never collide
// with the runner's prefix and are ignored.
func maxRunnerSeq(ids []string) int {
	max := 0
	for _, id := range ids {
		rest, ok := strings.CutPrefix(id, "j-")
		if !ok {
			continue
		}
		n, err := strconv.Atoi(rest)
		if err == nil && n > max {
			max = n
		}
	}
	return max
}

// validJobID guards externally supplied job IDs (the cluster router mints
// them): URL-safe charset, bounded length, never empty.
func validJobID(id string) error {
	if id == "" || len(id) > 64 {
		return fmt.Errorf("serve: job id must be 1-64 characters")
	}
	if id == "." || id == ".." {
		return fmt.Errorf("serve: job id %q is reserved", id)
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("serve: job id %q has invalid character %q", id, r)
		}
	}
	return nil
}
