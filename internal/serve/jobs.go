package serve

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/governor"
	"repro/internal/npu"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// JobState is the lifecycle state of a simulation job.
type JobState string

// Job lifecycle: Queued -> Running -> one of Done / Failed / Canceled.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// SimRequest describes one simulation job: a workload (explicit manifest or
// generator parameters), a management policy and run settings. It is the
// body of POST /v1/sim.
type SimRequest struct {
	// Policy selects the manager: "TOP-IL", "GTS/ondemand",
	// "GTS/powersave", "GTS/schedutil" or "GTS/performance".
	Policy string `json:"policy"`
	// Model names the registry model for TOP-IL (required for TOP-IL).
	Model string `json:"model,omitempty"`
	// Backend selects TOP-IL's inference device: "npu" (default) or "cpu"
	// (the paper's no-accelerator ablation).
	Backend string `json:"backend,omitempty"`

	// Duration is the simulated time in seconds (default 60).
	Duration float64 `json:"duration,omitempty"`
	// Seed drives workload generation and simulator noise (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Fan selects active cooling (default true, the paper's training
	// setup; false exposes DTM throttling).
	Fan *bool `json:"fan,omitempty"`

	// Jobs is an explicit workload manifest (same schema as saved job
	// lists). When empty, NumJobs/Rate/InstrScale drive the generator.
	Jobs []workload.JobEntry `json:"jobs,omitempty"`
	// NumJobs is the number of generated applications (default 8).
	NumJobs int `json:"numJobs,omitempty"`
	// Rate is the Poisson arrival rate in jobs/s (default 0.1).
	Rate float64 `json:"rate,omitempty"`
	// InstrScale scales application lengths (default 0.1, quick runs).
	InstrScale float64 `json:"instrScale,omitempty"`
}

// withDefaults fills unset fields.
func (r SimRequest) withDefaults() SimRequest {
	if r.Duration == 0 {
		r.Duration = 60
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Backend == "" {
		r.Backend = "npu"
	}
	if r.NumJobs == 0 {
		r.NumJobs = 8
	}
	if r.Rate == 0 {
		r.Rate = 0.1
	}
	if r.InstrScale == 0 {
		r.InstrScale = 0.1
	}
	return r
}

// validate rejects requests that could not be run.
func (r SimRequest) validate() error {
	switch r.Policy {
	case "TOP-IL":
		if r.Model == "" {
			return fmt.Errorf("serve: policy TOP-IL requires a model name")
		}
		if r.Backend != "npu" && r.Backend != "cpu" {
			return fmt.Errorf("serve: unknown inference backend %q", r.Backend)
		}
	case "GTS/ondemand", "GTS/powersave", "GTS/schedutil", "GTS/performance":
	default:
		return fmt.Errorf("serve: unknown policy %q", r.Policy)
	}
	if r.Duration <= 0 || r.Duration > 24*3600 {
		return fmt.Errorf("serve: duration %g s out of range (0, 86400]", r.Duration)
	}
	if len(r.Jobs) == 0 {
		if r.NumJobs <= 0 || r.NumJobs > 1024 {
			return fmt.Errorf("serve: numJobs %d out of range [1, 1024]", r.NumJobs)
		}
		if r.Rate <= 0 {
			return fmt.Errorf("serve: non-positive arrival rate")
		}
		if r.InstrScale <= 0 {
			return fmt.Errorf("serve: non-positive instruction scale")
		}
	}
	return nil
}

// AppResult is the per-application outcome in a SimResult.
type AppResult struct {
	Name         string  `json:"name"`
	QoSGips      float64 `json:"qosGips"`      // GIPS, 1e9 instr/s
	AchievedGips float64 `json:"achievedGips"` // GIPS, 1e9 instr/s
	Finished     bool    `json:"finished"`
	Violated     bool    `json:"violated"`
	Core         int     `json:"core"`
}

// SimResult is the job payload built from sim.Result.
type SimResult struct {
	Technique       string      `json:"technique"`
	Duration        float64     `json:"duration"`
	AvgTemp         float64     `json:"avgTemp"`  // °C
	PeakTemp        float64     `json:"peakTemp"` // °C
	Violations      int         `json:"violations"`
	Migrations      int         `json:"migrations"`
	ThrottleSeconds float64     `json:"throttleSeconds"`
	OverheadSeconds float64     `json:"overheadSeconds"`
	AvgUtil         float64     `json:"avgUtil"`
	PeakUtil        float64     `json:"peakUtil"`
	TotalEnergyJ    float64     `json:"totalEnergyJ"`
	Apps            []AppResult `json:"apps"`
}

// newSimResult converts an engine result.
func newSimResult(technique string, res *sim.Result) *SimResult {
	out := &SimResult{
		Technique:       technique,
		Duration:        res.Duration,
		AvgTemp:         res.AvgTemp,
		PeakTemp:        res.PeakTemp,
		Violations:      res.Violations,
		Migrations:      res.Migrations,
		ThrottleSeconds: res.ThrottleSeconds,
		OverheadSeconds: res.OverheadSeconds,
		AvgUtil:         res.AvgUtil,
		PeakUtil:        res.PeakUtil,
		TotalEnergyJ:    res.TotalEnergyJ(),
	}
	for _, a := range res.Apps {
		out.Apps = append(out.Apps, AppResult{
			Name:         a.Name,
			QoSGips:      a.QoS / 1e9,
			AchievedGips: a.MeanIPS / 1e9,
			Finished:     a.Finished,
			Violated:     a.Violated,
			Core:         int(a.Core),
		})
	}
	return out
}

// Job is one tracked simulation job.
type Job struct {
	id string

	mu       sync.Mutex
	state    JobState
	req      SimRequest
	err      string
	result   *SimResult
	created  time.Time
	started  time.Time
	finished time.Time
	runCtx   context.Context
	cancel   context.CancelFunc
}

// JobSnapshot is the JSON view of a Job.
type JobSnapshot struct {
	ID       string     `json:"id"`
	State    JobState   `json:"state"`
	Policy   string     `json:"policy"`
	Model    string     `json:"model,omitempty"`
	Error    string     `json:"error,omitempty"`
	QueuedMs float64    `json:"queuedMs"`
	RunMs    float64    `json:"runMs"`
	Result   *SimResult `json:"result,omitempty"`
}

// Snapshot returns the job's current state.
func (j *Job) Snapshot() JobSnapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := JobSnapshot{
		ID:     j.id,
		State:  j.state,
		Policy: j.req.Policy,
		Model:  j.req.Model,
		Error:  j.err,
		Result: j.result,
	}
	switch j.state {
	case StateQueued:
		s.QueuedMs = ms(time.Since(j.created))
	case StateRunning:
		s.QueuedMs = ms(j.started.Sub(j.created))
		s.RunMs = ms(time.Since(j.started))
	default:
		if !j.started.IsZero() {
			s.QueuedMs = ms(j.started.Sub(j.created))
			s.RunMs = ms(j.finished.Sub(j.started))
		} else {
			s.QueuedMs = ms(j.finished.Sub(j.created))
		}
	}
	return s
}

// setState transitions the job, stamping timestamps.
func (j *Job) setState(st JobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = st
	switch st {
	case StateRunning:
		j.started = time.Now()
	case StateDone, StateFailed, StateCanceled:
		j.finished = time.Now()
	}
}

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// ErrConflict marks a submission reusing an existing job ID; the HTTP
// layer maps it to 409.
var ErrConflict = errors.New("serve: job id already exists")

// ErrDraining marks work refused because the replica is draining (POST
// /v1/drain); the HTTP layer maps it to 503 with a Retry-After hint.
var ErrDraining = errors.New("serve: draining")

// RunnerStats summarizes the worker pool for /v1/stats.
type RunnerStats struct {
	Workers   int    `json:"workers"`
	QueueCap  int    `json:"queueCap"`
	Queued    int    `json:"queued"`
	Running   int    `json:"running"`
	Done      uint64 `json:"done"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
}

// Runner executes simulation jobs on a bounded worker pool. Submissions
// beyond the queue capacity fail fast with ErrOverloaded (429 at the HTTP
// layer); Shutdown drains in-flight work.
type Runner struct {
	reg      *Registry
	workers  int
	queueCap int
	store    JobStore // nil: in-memory only

	queue chan *Job
	wg    sync.WaitGroup

	baseCtx   context.Context
	cancelAll context.CancelFunc

	mu     sync.Mutex
	closed bool
	jobs   map[string]*Job
	order  []string
	seq    int

	// hookMu guards the optional continual-learning hooks, installed after
	// construction by the server's online wiring.
	hookMu   sync.Mutex
	observe  func(model string, obs core.EpochObservation)
	onResult func(model string, res *SimResult)

	done, failed, canceled, submitted, rejected *telemetry.Counter
	running                                     *telemetry.Gauge
}

// NewRunner starts `workers` goroutines consuming a queue of `queueCap`
// pending jobs. The registry resolves TOP-IL models; tel receives the
// pool's metric families (serve_jobs_*) — nil gets a private registry,
// so Stats works for standalone runners. A non-nil store makes the pool
// durable: every state transition is journaled before it becomes
// observable, and construction replays the journal — terminal jobs are
// restored for GET /v1/jobs/{id}, interrupted (queued/running) jobs are
// re-enqueued so every accepted job still reaches a terminal state.
func NewRunner(reg *Registry, workers, queueCap int, tel *telemetry.Registry, store JobStore) *Runner {
	if workers <= 0 {
		workers = 1
	}
	if queueCap <= 0 {
		queueCap = 16
	}
	if tel == nil {
		tel = telemetry.NewRegistry()
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Runner{
		reg:       reg,
		workers:   workers,
		queueCap:  queueCap,
		store:     store,
		queue:     make(chan *Job, queueCap),
		baseCtx:   ctx,
		cancelAll: cancel,
		jobs:      make(map[string]*Job),
		done: tel.CounterVec("serve_jobs_finished_total",
			"simulation jobs by terminal state", "state").With(string(StateDone)),
		failed: tel.CounterVec("serve_jobs_finished_total",
			"simulation jobs by terminal state", "state").With(string(StateFailed)),
		canceled: tel.CounterVec("serve_jobs_finished_total",
			"simulation jobs by terminal state", "state").With(string(StateCanceled)),
		submitted: tel.Counter("serve_jobs_submitted_total",
			"simulation jobs accepted into the queue"),
		rejected: tel.Counter("serve_jobs_rejected_total",
			"simulation jobs rejected with backpressure (429)"),
		running: tel.Gauge("serve_jobs_running",
			"simulation jobs currently executing"),
	}
	tel.Gauge("serve_jobs_workers", "worker pool size").Set(float64(workers))
	tel.Gauge("serve_jobs_queue_cap", "job queue capacity").Set(float64(queueCap))
	tel.GaugeFunc("serve_jobs_queue_depth", "simulation jobs waiting for a worker",
		func() float64 { return float64(len(r.queue)) })
	r.recover()
	for i := 0; i < workers; i++ {
		r.wg.Add(1)
		go r.worker()
	}
	return r
}

// recover replays the store (when present) before the workers start:
// terminal jobs are restored as read-only snapshots, interrupted jobs are
// re-enqueued for execution. Jobs that no longer fit the queue are marked
// failed — a terminal state the journal records, so the accepted-implies-
// terminal guarantee survives even a shrunk queue capacity.
func (r *Runner) recover() {
	if r.store == nil {
		return
	}
	recs, err := r.store.Replay()
	if err != nil {
		log.Printf("serve: job store replay: %v", err)
		return
	}
	folded := foldRecords(recs)
	ids := make([]string, 0, len(folded))
	for _, rec := range folded {
		ids = append(ids, rec.id)
	}
	r.seq = maxRunnerSeq(ids)
	for _, rec := range folded {
		j := &Job{id: rec.id, req: rec.req, created: time.Now()}
		if isTerminal(rec.state) {
			j.state = rec.state
			j.err = rec.err
			j.result = rec.result
			j.finished = time.Now()
			r.jobs[j.id] = j
			r.order = append(r.order, j.id)
			continue
		}
		jobCtx, jobCancel := context.WithCancel(r.baseCtx)
		j.state = StateQueued
		j.runCtx = jobCtx
		j.cancel = jobCancel
		select {
		case r.queue <- j:
		default:
			j.state = StateFailed
			j.err = "recovery: job queue full"
			j.finished = time.Now()
			jobCancel()
			r.journal(JobRecord{ID: j.id, State: StateFailed, Err: j.err})
		}
		r.jobs[j.id] = j
		r.order = append(r.order, j.id)
	}
	if n := len(folded); n > 0 {
		log.Printf("serve: job store recovered %d job(s)", n)
	}
}

// journal appends one record to the store. Append failures after
// acceptance are logged, not fatal: the in-memory state stays correct and
// the next restart simply re-runs the affected job.
func (r *Runner) journal(rec JobRecord) {
	if r.store == nil {
		return
	}
	if err := r.store.Append(rec); err != nil {
		log.Printf("serve: job store append (%s -> %s): %v", rec.ID, rec.State, err)
	}
}

// SetObserve installs a hook receiving every inference epoch of every
// TOP-IL sim job, tagged with the job's model name — the continual
// learner's visited-state recorder. Observation slices are reused by the
// simulator; the hook must copy what it keeps.
func (r *Runner) SetObserve(fn func(model string, obs core.EpochObservation)) {
	r.hookMu.Lock()
	defer r.hookMu.Unlock()
	r.observe = fn
}

// SetOnResult installs a hook receiving every successfully completed
// TOP-IL sim result, tagged with the job's model name — the continual
// learner's live-telemetry feed.
func (r *Runner) SetOnResult(fn func(model string, res *SimResult)) {
	r.hookMu.Lock()
	defer r.hookMu.Unlock()
	r.onResult = fn
}

func (r *Runner) getObserve() func(string, core.EpochObservation) {
	r.hookMu.Lock()
	defer r.hookMu.Unlock()
	return r.observe
}

func (r *Runner) getOnResult() func(string, *SimResult) {
	r.hookMu.Lock()
	defer r.hookMu.Unlock()
	return r.onResult
}

// Submit validates and enqueues a job under a runner-minted ID, returning
// its snapshot.
func (r *Runner) Submit(req SimRequest) (JobSnapshot, error) {
	return r.SubmitID("", req)
}

// SubmitID validates and enqueues a job, returning its snapshot. A
// non-empty id is used verbatim (the cluster router mints IDs so that
// GET /v1/jobs/{id} shards to the same replica); an empty id gets a
// runner-minted one. Reusing a live ID fails with ErrConflict (409).
func (r *Runner) SubmitID(id string, req SimRequest) (JobSnapshot, error) {
	if id != "" {
		if err := validJobID(id); err != nil {
			return JobSnapshot{}, err
		}
	}
	req = req.withDefaults()
	if err := req.validate(); err != nil {
		return JobSnapshot{}, err
	}
	// Resolve the model eagerly so a bad name fails the submission, not the
	// job minutes later.
	if req.Policy == "TOP-IL" {
		if _, err := r.reg.Model(req.Model); err != nil {
			return JobSnapshot{}, err
		}
	}
	if len(req.Jobs) > 0 {
		if _, err := workload.EntriesToJobs(req.Jobs); err != nil {
			return JobSnapshot{}, err
		}
	}

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return JobSnapshot{}, ErrClosed
	}
	if id == "" {
		r.seq++
		id = fmt.Sprintf("j-%06d", r.seq)
	} else if _, exists := r.jobs[id]; exists {
		r.mu.Unlock()
		return JobSnapshot{}, fmt.Errorf("%w: %q", ErrConflict, id)
	}
	jobCtx, jobCancel := context.WithCancel(r.baseCtx)
	j := &Job{
		id:      id,
		state:   StateQueued,
		req:     req,
		created: time.Now(),
		runCtx:  jobCtx,
		cancel:  jobCancel,
	}
	select {
	case r.queue <- j:
		// Journal before the job becomes observable: a 202 implies the
		// queued record is durable. On a store failure the job is
		// canceled and never registered, so the client retries cleanly.
		if r.store != nil {
			reqCopy := req
			if err := r.store.Append(JobRecord{ID: j.id, State: StateQueued, Req: &reqCopy}); err != nil {
				r.mu.Unlock()
				jobCancel()
				return JobSnapshot{}, fmt.Errorf("serve: job store: %w", err)
			}
		}
		r.jobs[j.id] = j
		r.order = append(r.order, j.id)
		r.submitted.Inc()
		r.mu.Unlock()
		return j.Snapshot(), nil
	default:
		r.rejected.Inc()
		r.mu.Unlock()
		jobCancel()
		return JobSnapshot{}, ErrOverloaded
	}
}

// QueueDepth returns the number of jobs waiting for a worker — the signal
// behind Retry-After hints and the cluster router's load shedding.
func (r *Runner) QueueDepth() int { return len(r.queue) }

// QueueCap returns the job queue capacity.
func (r *Runner) QueueCap() int { return r.queueCap }

// Get returns a job by ID.
func (r *Runner) Get(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// List returns snapshots of every job in submission order.
func (r *Runner) List() []JobSnapshot {
	r.mu.Lock()
	ids := append([]string(nil), r.order...)
	r.mu.Unlock()
	out := make([]JobSnapshot, 0, len(ids))
	for _, id := range ids {
		if j, ok := r.Get(id); ok {
			out = append(out, j.Snapshot())
		}
	}
	return out
}

// Cancel requests cancellation of a queued or running job. Queued jobs are
// skipped by the workers; running jobs stop at the next simulator tick.
func (r *Runner) Cancel(id string) bool {
	j, ok := r.Get(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return true
}

// Stats returns a snapshot of the pool, derived from the runner's
// telemetry counters in the JSON shape /v1/stats has always served.
func (r *Runner) Stats() RunnerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := RunnerStats{
		Workers:   r.workers,
		QueueCap:  r.queueCap,
		Queued:    len(r.queue),
		Done:      uint64(r.done.Value()),
		Failed:    uint64(r.failed.Value()),
		Canceled:  uint64(r.canceled.Value()),
		Submitted: uint64(r.submitted.Value()),
		Rejected:  uint64(r.rejected.Value()),
	}
	for _, j := range r.jobs {
		if j.State() == StateRunning {
			s.Running++
		}
	}
	return s
}

// Shutdown stops accepting submissions and drains: queued and running jobs
// keep executing until done or until ctx expires, at which point they are
// canceled at the next simulator tick.
func (r *Runner) Shutdown(ctx context.Context) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		r.wg.Wait()
		return
	}
	r.closed = true
	r.mu.Unlock()
	close(r.queue)

	finished := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-ctx.Done():
		r.cancelAll()
		<-finished
	}
}

// worker consumes the queue until it is closed and drained.
func (r *Runner) worker() {
	defer r.wg.Done()
	for j := range r.queue {
		r.run(j)
	}
}

// run executes one job.
func (r *Runner) run(j *Job) {
	j.mu.Lock()
	ctx := j.runCtx
	j.mu.Unlock()
	if ctx.Err() != nil {
		j.setState(StateCanceled)
		r.count(StateCanceled)
		r.journal(JobRecord{ID: j.id, State: StateCanceled})
		return
	}
	j.setState(StateRunning)
	r.journal(JobRecord{ID: j.id, State: StateRunning})
	r.running.Add(1)
	defer r.running.Add(-1)
	res, err := r.execute(ctx, j.req)
	switch {
	case err != nil:
		j.mu.Lock()
		j.err = err.Error()
		j.mu.Unlock()
		j.setState(StateFailed)
		r.count(StateFailed)
		r.journal(JobRecord{ID: j.id, State: StateFailed, Err: err.Error()})
	case ctx.Err() != nil:
		j.setState(StateCanceled)
		r.count(StateCanceled)
		r.journal(JobRecord{ID: j.id, State: StateCanceled})
	default:
		j.mu.Lock()
		j.result = res
		j.mu.Unlock()
		j.setState(StateDone)
		r.count(StateDone)
		r.journal(JobRecord{ID: j.id, State: StateDone, Result: res})
		if fn := r.getOnResult(); fn != nil && j.req.Policy == "TOP-IL" {
			fn(j.req.Model, res)
		}
	}
}

func (r *Runner) count(st JobState) {
	switch st {
	case StateDone:
		r.done.Inc()
	case StateFailed:
		r.failed.Inc()
	case StateCanceled:
		r.canceled.Inc()
	}
}

// execute builds and runs the simulation described by req, stopping early
// when ctx is canceled.
func (r *Runner) execute(ctx context.Context, req SimRequest) (*SimResult, error) {
	fan := true
	if req.Fan != nil {
		fan = *req.Fan
	}
	cfg := sim.DefaultConfig(fan, 25)
	cfg.Seed = req.Seed
	engine := sim.New(cfg)

	mgr, err := r.manager(req, cfg)
	if err != nil {
		return nil, err
	}

	var jobs []workload.Job
	if len(req.Jobs) > 0 {
		jobs, err = workload.EntriesToJobs(req.Jobs)
		if err != nil {
			return nil, err
		}
	} else {
		pm := perf.Default()
		peak := func(spec workload.AppSpec) float64 { return pm.PeakIPS(cfg.Platform, spec) }
		gen := workload.NewGenerator(req.Seed, workload.MixedPool(), peak, 0.2, 0.7, req.InstrScale)
		jobs = gen.Generate(req.NumJobs, req.Rate)
	}
	engine.AddJobs(jobs)

	res := engine.RunUntil(mgr, req.Duration, func() bool { return ctx.Err() != nil })
	return newSimResult(mgr.Name(), res), nil
}

// manager assembles the requested policy.
func (r *Runner) manager(req SimRequest, cfg sim.Config) (sim.Manager, error) {
	switch req.Policy {
	case "TOP-IL":
		model, err := r.reg.Model(req.Model)
		if err != nil {
			return nil, err
		}
		plat := cfg.Platform
		wantIn := features.Dim(plat.NumCores(), plat.NumClusters())
		if model.InputDim() != wantIn || model.OutputDim() != plat.NumCores() {
			return nil, fmt.Errorf("serve: model %q is %d->%d, platform needs %d->%d",
				req.Model, model.InputDim(), model.OutputDim(), wantIn, plat.NumCores())
		}
		var backend npu.Backend
		if req.Backend == "cpu" {
			backend = npu.NewCPU(model)
		} else {
			backend = npu.New(model)
		}
		cc := core.DefaultConfig()
		if fn := r.getObserve(); fn != nil {
			name := req.Model
			cc.Observe = func(obs core.EpochObservation) { fn(name, obs) }
		}
		return core.New(backend, cc), nil
	case "GTS/ondemand":
		return governor.NewGTS(governor.Ondemand{UpThreshold: 0.8}), nil
	case "GTS/powersave":
		return governor.NewGTS(governor.Powersave{}), nil
	case "GTS/schedutil":
		return governor.NewGTS(governor.Schedutil{}), nil
	case "GTS/performance":
		return governor.NewGTS(governor.Performance{}), nil
	default:
		return nil, fmt.Errorf("serve: unknown policy %q", req.Policy)
	}
}
