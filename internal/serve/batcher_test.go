package serve

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/nn"
	"repro/internal/npu"
)

// countingBackend wraps a Backend and counts device invocations.
type countingBackend struct {
	npu.Backend
	calls   atomic.Int64
	release chan struct{} // when non-nil, Infer blocks until closed
}

func (c *countingBackend) Infer(batch [][]float64) [][]float64 {
	c.calls.Add(1)
	if c.release != nil {
		<-c.release
	}
	return c.Backend.Infer(batch)
}

func testModel(t *testing.T) *nn.MLP {
	t.Helper()
	return nn.NewMLP([]int{21, 32, 8}, 1)
}

func testInputs(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, 21)
		for j := range out[i] {
			out[i][j] = rng.NormFloat64()
		}
	}
	return out
}

// TestBatcherCoalesces is the acceptance test for the NPU-style frontend:
// with 16 concurrent in-flight requests the device is invoked strictly
// fewer times than there are requests, while every response matches the
// single-request Predict output.
func TestBatcherCoalesces(t *testing.T) {
	m := testModel(t)
	backend := &countingBackend{Backend: npu.New(m)}
	b := NewBatcher(backend, m.InputDim(), BatcherConfig{
		MaxBatch: 16,
		MaxWait:  50 * time.Millisecond,
		QueueCap: 64,
	})
	defer b.Close()

	const clients = 16
	inputs := testInputs(clients, 2)
	outputs := make([][]float64, clients)
	infos := make([]SubmitInfo, clients)
	errs := make([]error, clients)

	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			outputs[i], infos[i], errs[i] = b.Submit(context.Background(), inputs[i])
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		want := m.Predict(inputs[i])
		for o := range want {
			if outputs[i][o] != want[o] {
				t.Fatalf("client %d output %d: %g, want %g", i, o, outputs[i][o], want[o])
			}
		}
	}
	calls := backend.calls.Load()
	if calls >= clients {
		t.Fatalf("no coalescing: %d device calls for %d requests", calls, clients)
	}
	st := b.Stats()
	if st.Requests != clients || st.Batches != uint64(calls) {
		t.Errorf("stats = %+v, want %d requests over %d batches", st, clients, calls)
	}
	if st.LargestBatch < 2 {
		t.Errorf("largest batch %d, want >= 2", st.LargestBatch)
	}
	t.Logf("%d requests served by %d device calls (largest batch %d, mean %.1f)",
		clients, calls, st.LargestBatch, st.MeanBatch)
}

// TestBatcherFlushesOnTimer checks a lone request is not held past MaxWait.
func TestBatcherFlushesOnTimer(t *testing.T) {
	m := testModel(t)
	b := NewBatcher(npu.New(m), m.InputDim(), BatcherConfig{
		MaxBatch: 16,
		MaxWait:  time.Millisecond,
		QueueCap: 4,
	})
	defer b.Close()
	out, info, err := b.Submit(context.Background(), testInputs(1, 3)[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != m.OutputDim() {
		t.Fatalf("output dim %d, want %d", len(out), m.OutputDim())
	}
	if info.BatchSize != 1 {
		t.Errorf("batch size %d, want 1", info.BatchSize)
	}
	if st := b.Stats(); st.FlushTimer != 1 {
		t.Errorf("flushTimer = %d, want 1", st.FlushTimer)
	}
}

// TestBatcherPaceDevice pins the pacing semantics behind the cluster
// bench: with PaceDevice the wall-clock of a submission is at least the
// modelled device latency, and PaceScale stretches both the pacing and
// the reported DeviceLatency as an emulated slower accelerator.
func TestBatcherPaceDevice(t *testing.T) {
	m := testModel(t)
	dev := npu.New(m)
	base := dev.Latency(1)
	const scale = 8
	b := NewBatcher(dev, m.InputDim(), BatcherConfig{
		MaxBatch:    4,
		MaxWait:     time.Millisecond,
		QueueCap:    8,
		MaxInflight: 1,
		PaceDevice:  true,
		PaceScale:   scale,
	})
	defer b.Close()

	start := time.Now()
	_, info, err := b.Submit(context.Background(), testInputs(1, 5)[0])
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if info.DeviceLatency != scale*base {
		t.Errorf("reported device latency %v, want %v (modelled %v x %d)",
			info.DeviceLatency, scale*base, base, scale)
	}
	// The paced sleep holds results back for the scaled modelled cost;
	// allow generous scheduler slop below but require the floor.
	if elapsed < scale*base {
		t.Errorf("paced submit returned in %v, below the scaled device cost %v", elapsed, scale*base)
	}
}

// TestBatcherBackpressure fills the bounded queue against a stalled device
// and expects fail-fast ErrOverloaded, not blocking.
func TestBatcherBackpressure(t *testing.T) {
	m := testModel(t)
	backend := &countingBackend{Backend: npu.New(m), release: make(chan struct{})}
	b := NewBatcher(backend, m.InputDim(), BatcherConfig{
		MaxBatch:    1, // every request is its own batch
		MaxWait:     time.Millisecond,
		QueueCap:    2,
		MaxInflight: 1, // one stalled batch blocks the collector
	})
	in := testInputs(1, 4)[0]

	// Saturate: the collector takes requests out of the queue one at a
	// time and blocks in Infer, so keep submitting until the queue holds
	// QueueCap pending entries and the next submit is rejected.
	var rejected bool
	var wg sync.WaitGroup
	for i := 0; i < 32 && !rejected; i++ {
		_, _, err := func() ([]float64, SubmitInfo, error) {
			type res struct {
				out  []float64
				info SubmitInfo
				err  error
			}
			ch := make(chan res, 1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				o, inf, e := b.Submit(context.Background(), in)
				ch <- res{o, inf, e}
			}()
			select {
			case r := <-ch:
				return r.out, r.info, r.err
			case <-time.After(10 * time.Millisecond):
				return nil, SubmitInfo{}, nil // accepted, still waiting
			}
		}()
		if errors.Is(err, ErrOverloaded) {
			rejected = true
		}
	}
	if !rejected {
		t.Error("queue never rejected submissions under a stalled device")
	}
	close(backend.release)
	b.Close()
	wg.Wait()
	if st := b.Stats(); st.Rejected == 0 {
		t.Errorf("stats report no rejected requests: %+v", st)
	}
}

// TestBatcherCloseDrains verifies accepted requests are answered across
// shutdown and later submissions are refused.
func TestBatcherCloseDrains(t *testing.T) {
	m := testModel(t)
	b := NewBatcher(npu.New(m), m.InputDim(), BatcherConfig{
		MaxBatch: 8,
		MaxWait:  50 * time.Millisecond,
		QueueCap: 16,
	})
	inputs := testInputs(8, 5)
	var wg sync.WaitGroup
	errs := make([]error, len(inputs))
	for i := range inputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = b.Submit(context.Background(), inputs[i])
		}(i)
	}
	time.Sleep(5 * time.Millisecond) // let submissions enqueue
	b.Close()
	wg.Wait()
	for i, err := range errs {
		if err != nil && !errors.Is(err, ErrClosed) {
			t.Errorf("request %d: %v", i, err)
		}
	}
	if _, _, err := b.Submit(context.Background(), inputs[0]); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
}

// TestBatcherRejectsWrongDim guards the dispatch goroutine from panics.
func TestBatcherRejectsWrongDim(t *testing.T) {
	m := testModel(t)
	b := NewBatcher(npu.New(m), m.InputDim(), BatcherConfig{})
	defer b.Close()
	if _, _, err := b.Submit(context.Background(), []float64{1, 2, 3}); err == nil {
		t.Fatal("wrong-dimension input accepted")
	}
}

// TestBatchingLatencyProfile measures per-request wall latency at 1 and 16
// concurrent clients — the serving-side analogue of the paper's Fig. 12.
// Coalescing should keep the fan-in p95 within a small multiple of the
// single-client p95 (and far below 16×).
func TestBatchingLatencyProfile(t *testing.T) {
	m := testModel(t)
	measure := func(clients, rounds int) (p50, p95 time.Duration) {
		b := NewBatcher(npu.New(m), m.InputDim(), BatcherConfig{
			MaxBatch: 16,
			MaxWait:  2 * time.Millisecond,
			QueueCap: 256,
		})
		defer b.Close()
		var mu sync.Mutex
		var lats []time.Duration
		var wg sync.WaitGroup
		start := make(chan struct{})
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				in := testInputs(1, int64(c))[0]
				<-start
				for r := 0; r < rounds; r++ {
					t0 := time.Now()
					if _, _, err := b.Submit(context.Background(), in); err != nil {
						return
					}
					d := time.Since(t0)
					mu.Lock()
					lats = append(lats, d)
					mu.Unlock()
				}
			}(c)
		}
		close(start)
		wg.Wait()
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		if len(lats) == 0 {
			t.Fatal("no latencies measured")
		}
		return lats[len(lats)/2], lats[len(lats)*95/100]
	}

	p50one, p95one := measure(1, 50)
	p50fan, p95fan := measure(16, 50)
	t.Logf("1 client:   p50 %v  p95 %v", p50one, p95one)
	t.Logf("16 clients: p50 %v  p95 %v", p50fan, p95fan)
	if p95fan > 16*p95one+20*time.Millisecond {
		t.Errorf("fan-in p95 %v vs single-client p95 %v: no batching benefit", p95fan, p95one)
	}
}
