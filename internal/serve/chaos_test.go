package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/npu"
	"repro/internal/testkit"
)

// TestBatcherRowFaultIsolation drives the batcher over a chaos backend
// injecting per-row inference failures: affected requests fail with
// ErrInference, every other request in the same batch still receives its
// exact result — one bad request must not poison its batch.
func TestBatcherRowFaultIsolation(t *testing.T) {
	seed := testkit.SeedFromEnv(42)
	t.Logf("chaos seed %d (export %s to replay)", seed, testkit.SeedEnv)
	m := testModel(t)
	ch := testkit.NewChaos(seed)
	backend := ch.WrapBackend(npu.New(m), testkit.BackendFaults{RowErrProb: 0.5})
	b := NewBatcher(backend, m.InputDim(), BatcherConfig{
		MaxBatch: 8, MaxWait: 5 * time.Millisecond, QueueCap: 64,
	})
	defer b.Close()

	const n = 32
	inputs := testInputs(n, 7)
	errs := make([]error, n)
	outs := make([][]float64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], _, errs[i] = b.Submit(context.Background(), inputs[i])
		}(i)
	}
	wg.Wait()

	failed := 0
	for i := range errs {
		switch {
		case errs[i] == nil:
			want := m.Predict(inputs[i])
			for o := range want {
				if outs[i][o] != want[o] {
					t.Fatalf("surviving request %d corrupted: out[%d]=%g, want %g",
						i, o, outs[i][o], want[o])
				}
			}
		case errors.Is(errs[i], ErrInference):
			failed++
		default:
			t.Fatalf("request %d: unexpected error %v", i, errs[i])
		}
	}
	if injected := ch.EventCount("infer-error"); failed != injected {
		t.Errorf("%d requests failed, %d faults injected", failed, injected)
	}
	if failed == 0 || failed == n {
		t.Errorf("%d/%d failures: expected a mix at p=0.5 (seed %d)", failed, n, seed)
	}
	if st := b.Stats(); st.InferErrors != uint64(failed) || st.BatchPanics != 0 {
		t.Errorf("stats = %+v, want %d inferErrors, 0 panics", st, failed)
	}
}

// TestBatcherPanicRecovery injects whole-batch device panics: every
// affected request fails with ErrInference instead of crashing the server,
// and the batcher keeps serving and closes cleanly.
func TestBatcherPanicRecovery(t *testing.T) {
	m := testModel(t)
	ch := testkit.NewChaos(testkit.SeedFromEnv(1))
	backend := ch.WrapBackend(npu.New(m), testkit.BackendFaults{PanicProb: 1})
	b := NewBatcher(backend, m.InputDim(), BatcherConfig{
		MaxBatch: 4, MaxWait: time.Millisecond, QueueCap: 64,
	})

	const n = 12
	inputs := testInputs(n, 3)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = b.Submit(context.Background(), inputs[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrInference) {
			t.Fatalf("request %d: error %v, want ErrInference after device panic", i, err)
		}
	}
	if got := ch.EventCount("panic"); got == 0 {
		t.Fatal("no panics injected")
	}
	if st := b.Stats(); st.BatchPanics == 0 || st.InferErrors != uint64(n) {
		t.Errorf("stats = %+v, want >0 panics and %d inferErrors", st, n)
	}
	b.Close() // must not deadlock or re-panic
}

// TestBatcherContextCancelMidBatch cancels one request while its batch is
// in flight on the device: the canceled request returns promptly with the
// context error, its batch-mates still get their results, and the batcher
// drains cleanly.
func TestBatcherContextCancelMidBatch(t *testing.T) {
	m := testModel(t)
	backend := &countingBackend{Backend: npu.New(m), release: make(chan struct{})}
	b := NewBatcher(backend, m.InputDim(), BatcherConfig{
		MaxBatch: 2, MaxWait: time.Millisecond, QueueCap: 8,
	})
	defer b.Close()

	inputs := testInputs(2, 5)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var cancelErr, survivorErr error
	var survivorOut []float64

	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _, cancelErr = b.Submit(ctx, inputs[0])
	}()
	go func() {
		defer wg.Done()
		survivorOut, _, survivorErr = b.Submit(context.Background(), inputs[1])
	}()

	// Wait until the batch is actually on the (blocked) device, cancel one
	// request mid-batch, then release the device.
	for backend.calls.Load() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	// The canceled Submit must return even though the device is stuck.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	close(backend.release)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("submits did not return after cancel + release")
	}

	if !errors.Is(cancelErr, context.Canceled) {
		t.Errorf("canceled request returned %v, want context.Canceled", cancelErr)
	}
	if survivorErr != nil {
		t.Fatalf("batch-mate failed: %v", survivorErr)
	}
	want := m.Predict(inputs[1])
	for o := range want {
		if survivorOut[o] != want[o] {
			t.Fatalf("batch-mate output %d = %g, want %g", o, survivorOut[o], want[o])
		}
	}
}

// TestStatusForMapping pins the HTTP status contract for every service
// error class.
func TestStatusForMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{ErrOverloaded, http.StatusTooManyRequests},
		{ErrClosed, http.StatusServiceUnavailable},
		{ErrNotFound, http.StatusNotFound},
		{ErrInference, http.StatusBadGateway},
		{context.Canceled, 499},
		{context.DeadlineExceeded, 499},
		{errors.New("serve: some validation problem"), http.StatusBadRequest},
	}
	for _, c := range cases {
		if got := statusFor(c.err); got != c.want {
			t.Errorf("statusFor(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestServerZeroModels covers the empty-deployment startup path: a server
// over an absent artifacts directory is healthy, lists zero models,
// answers inference with 404 (not a panic or 500), drains cleanly, and
// refuses work with 503 after shutdown.
func TestServerZeroModels(t *testing.T) {
	s := NewServer(Config{
		ModelsDir: t.TempDir() + "/does-not-exist",
		Workers:   1,
		QueueCap:  2,
	})
	h := s.Handler()
	do := func(method, path, body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(method, path, strings.NewReader(body)))
		return rec
	}

	if rec := do("GET", "/v1/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	if rec := do("GET", "/v1/models", ""); rec.Code != http.StatusOK {
		t.Fatalf("models over missing dir: %d %s", rec.Code, rec.Body.String())
	}
	rec := do("POST", "/v1/infer", `{"model":"ghost","inputs":[[1,2,3]]}`)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("infer against missing model: %d %s, want 404", rec.Code, rec.Body.String())
	}
	rec = do("POST", "/v1/sim", `{"policy":"TOP-IL","model":"ghost","duration":1}`)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("sim against missing model: %d %s, want 404", rec.Code, rec.Body.String())
	}

	done := make(chan struct{})
	go func() {
		s.Shutdown(context.Background())
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("zero-model shutdown did not drain")
	}
	if rec := do("POST", "/v1/infer", `{"model":"ghost","inputs":[[1]]}`); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("infer after shutdown: %d, want 503", rec.Code)
	}
}

// TestServerSimBackpressure floods the one-worker job pool until the
// bounded queue rejects with 429, the end-to-end backpressure contract.
func TestServerSimBackpressure(t *testing.T) {
	s := NewServer(Config{ModelsDir: t.TempDir(), Workers: 1, QueueCap: 1})
	defer s.Shutdown(context.Background())
	h := s.Handler()

	body := `{"policy":"GTS/ondemand","duration":30,"seed":1,"numJobs":6,"rate":2,"instrScale":0.05}`
	accepted, rejected := 0, 0
	for i := 0; i < 12; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/sim", strings.NewReader(body)))
		switch rec.Code {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Fatalf("sim submit %d: %d %s", i, rec.Code, rec.Body.String())
		}
	}
	if accepted == 0 {
		t.Error("no job accepted")
	}
	if rejected == 0 {
		t.Error("queue never rejected: backpressure path untested")
	}
}
