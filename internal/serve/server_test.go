package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/nn"
	"repro/internal/npu"
)

// newTestServer builds a server over a temp artifacts dir with one model.
func newTestServer(t *testing.T) (*Server, *httptest.Server, *nn.MLP) {
	t.Helper()
	dir := t.TempDir()
	m := writeModel(t, dir, "model-1", []int{21, 32, 8}, 1)
	s := NewServer(Config{
		ModelsDir: dir,
		Workers:   2,
		QueueCap:  8,
		Batch:     BatcherConfig{MaxBatch: 16, MaxWait: 20 * time.Millisecond, QueueCap: 64},
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})
	return s, ts, m
}

func postJSON(t *testing.T, url string, body interface{}) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, v interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func TestServerHealthAndModels(t *testing.T) {
	_, ts, _ := newTestServer(t)

	var health HealthResponse
	resp := getJSON(t, ts.URL+"/v1/healthz", &health)
	if resp.StatusCode != http.StatusOK || health.Status != "ok" || health.Draining {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, health)
	}
	if health.Jobs.Cap <= 0 || health.Infer.Cap <= 0 {
		t.Errorf("healthz queue caps not reported: %+v", health)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("no request ID assigned")
	}

	var models struct {
		Models []string `json:"models"`
	}
	getJSON(t, ts.URL+"/v1/models", &models)
	if len(models.Models) != 1 || models.Models[0] != "model-1" {
		t.Errorf("models = %v", models.Models)
	}
}

func TestServerInfer(t *testing.T) {
	_, ts, m := newTestServer(t)
	inputs := testInputs(3, 2)
	resp, body := postJSON(t, ts.URL+"/v1/infer", InferRequest{Model: "model-1", Inputs: inputs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer: %d %s", resp.StatusCode, body)
	}
	var out InferResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Outputs) != 3 {
		t.Fatalf("%d outputs", len(out.Outputs))
	}
	for i, in := range inputs {
		want := m.Predict(in)
		for o := range want {
			if out.Outputs[i][o] != want[o] {
				t.Fatalf("output %d[%d] = %g, want %g", i, o, out.Outputs[i][o], want[o])
			}
		}
	}
	if out.DeviceLatencyUs <= 0 {
		t.Error("no device latency reported")
	}

	// Error paths: validation problems are 400, a missing model is 404.
	for _, c := range []struct {
		req  InferRequest
		want int
	}{
		{InferRequest{Model: "", Inputs: inputs}, http.StatusBadRequest},
		{InferRequest{Model: "absent", Inputs: inputs}, http.StatusNotFound},
		{InferRequest{Model: "model-1"}, http.StatusBadRequest},
		{InferRequest{Model: "model-1", Inputs: [][]float64{{1, 2}}}, http.StatusBadRequest}, // wrong dim
	} {
		resp, _ := postJSON(t, ts.URL+"/v1/infer", c.req)
		if resp.StatusCode != c.want {
			t.Errorf("request %+v -> %d, want %d", c.req, resp.StatusCode, c.want)
		}
	}
	resp, _ = postJSON(t, ts.URL+"/v1/infer", map[string]string{"bogus": "field"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field -> %d, want 400", resp.StatusCode)
	}
}

// TestServerInferCoalescing is the serve-level form of the acceptance
// criterion: 16 concurrent HTTP clients, device invoked strictly fewer
// times than requests, every response equal to single-request Predict.
func TestServerInferCoalescing(t *testing.T) {
	s, ts, m := newTestServer(t)

	// Swap in a counting backend behind the model's batcher.
	backend := &countingBackend{Backend: npu.New(m)}
	s.mu.Lock()
	s.batchers["model-1"] = NewBatcher(backend, m.InputDim(), s.cfg.Batch)
	s.mu.Unlock()

	const clients = 16
	inputs := testInputs(clients, 7)
	outputs := make([][]float64, clients)
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			data, _ := json.Marshal(InferRequest{Model: "model-1", Inputs: inputs[i : i+1]})
			resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(data))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			var out InferResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs[i] = err
				return
			}
			outputs[i] = out.Outputs[0]
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i, in := range inputs {
		want := m.Predict(in)
		for o := range want {
			if outputs[i][o] != want[o] {
				t.Fatalf("client %d output %d: %g, want %g", i, o, outputs[i][o], want[o])
			}
		}
	}
	calls := backend.calls.Load()
	if calls >= clients {
		t.Fatalf("no coalescing over HTTP: %d device calls for %d requests", calls, clients)
	}
	t.Logf("16 HTTP clients served by %d device calls", calls)
}

func TestServerSimRoundTrip(t *testing.T) {
	_, ts, _ := newTestServer(t)

	resp, body := postJSON(t, ts.URL+"/v1/sim", quickSim("GTS/ondemand"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sim: %d %s", resp.StatusCode, body)
	}
	var snap JobSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+snap.ID {
		t.Errorf("Location = %q", loc)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		var cur JobSnapshot
		r := getJSON(t, ts.URL+"/v1/jobs/"+snap.ID, &cur)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("poll: %d", r.StatusCode)
		}
		if cur.State == StateDone {
			if cur.Result == nil || cur.Result.AvgTemp <= 0 {
				t.Fatalf("done without plausible result: %+v", cur.Result)
			}
			break
		}
		if cur.State == StateFailed || cur.State == StateCanceled {
			t.Fatalf("job ended %q (%s)", cur.State, cur.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		time.Sleep(10 * time.Millisecond)
	}

	var list struct {
		Jobs []JobSnapshot `json:"jobs"`
	}
	getJSON(t, ts.URL+"/v1/jobs", &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != snap.ID {
		t.Errorf("job list = %+v", list.Jobs)
	}

	if r := getJSON(t, ts.URL+"/v1/jobs/j-999999", nil); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job -> %d, want 404", r.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/sim", SimRequest{Policy: "voodoo"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad policy -> %d, want 400", resp.StatusCode)
	}
}

func TestServerStats(t *testing.T) {
	_, ts, _ := newTestServer(t)
	// Generate some traffic first.
	postJSON(t, ts.URL+"/v1/infer", InferRequest{Model: "model-1", Inputs: testInputs(2, 9)})
	getJSON(t, ts.URL+"/v1/healthz", nil)
	getJSON(t, ts.URL+"/v1/jobs/j-404404", nil)

	var st StatsResponse
	if r := getJSON(t, ts.URL+"/v1/stats", &st); r.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", r.StatusCode)
	}
	infer := st.Endpoints["POST /v1/infer"]
	if infer.Count != 1 || infer.Latency.Count != 1 {
		t.Errorf("infer endpoint stats = %+v", infer)
	}
	if st.Endpoints["GET /v1/jobs/{id}"].Errors != 1 {
		t.Errorf("404 not counted as error: %+v", st.Endpoints["GET /v1/jobs/{id}"])
	}
	b := st.Batchers["model-1"]
	if b.Requests != 2 {
		t.Errorf("batcher stats = %+v", b)
	}
	if st.Jobs.Workers != 2 {
		t.Errorf("runner stats = %+v", st.Jobs)
	}
}

func TestServerShutdownRefusesNewWork(t *testing.T) {
	s, ts, _ := newTestServer(t)
	// Prime the batcher, then shut down.
	postJSON(t, ts.URL+"/v1/infer", InferRequest{Model: "model-1", Inputs: testInputs(1, 11)})
	s.Shutdown(context.Background())

	resp, _ := postJSON(t, ts.URL+"/v1/infer", InferRequest{Model: "model-1", Inputs: testInputs(1, 12)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("infer after shutdown -> %d, want 503", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/sim", quickSim("GTS/ondemand"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("sim after shutdown -> %d, want 503", resp.StatusCode)
	}
}
