package serve

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/npu"
)

// ErrNotFound marks a request against a model that does not exist in the
// artifacts directory; the HTTP layer maps it to 404. A server started
// over an empty (or absent) models directory is healthy — it lists zero
// models and answers inference requests with this error, never a panic.
var ErrNotFound = errors.New("serve: model not found")

// Registry loads named IL models from an artifacts directory and caches
// them. A model name maps to <dir>/<name>.json, the artifact format written
// by cmd/topil-train and core.SaveModel. Loaded models are shared, relied
// on being read-only (see the nn package's concurrency guarantee).
type Registry struct {
	dir string

	mu     sync.RWMutex
	models map[string]*nn.MLP
}

// NewRegistry creates a registry over the given artifacts directory.
func NewRegistry(dir string) *Registry {
	return &Registry{dir: dir, models: make(map[string]*nn.MLP)}
}

// validName rejects names that would escape the artifacts directory.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("serve: empty model name")
	}
	if strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		return fmt.Errorf("serve: invalid model name %q", name)
	}
	return nil
}

// Model returns the named model, loading it from disk on first use.
func (r *Registry) Model(name string) (*nn.MLP, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	r.mu.RLock()
	m := r.models[name]
	r.mu.RUnlock()
	if m != nil {
		return m, nil
	}
	// Load outside the lock; a duplicate concurrent load is harmless (last
	// writer wins, both copies are identical read-only networks).
	m, err := core.LoadModel(filepath.Join(r.dir, name+".json"), 0, 0)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
		}
		return nil, fmt.Errorf("serve: loading model %q: %w", name, err)
	}
	r.mu.Lock()
	if prev := r.models[name]; prev != nil {
		m = prev
	} else {
		r.models[name] = m
	}
	r.mu.Unlock()
	return m, nil
}

// List returns the model names available on disk (without extension),
// sorted. A missing artifacts directory is a valid zero-model deployment,
// not an error.
func (r *Registry) List() ([]string, error) {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("serve: listing models: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		names = append(names, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(names)
	return names, nil
}

// Backend returns an npu.Backend serving the named model with the NPU's
// latency semantics — the registry-backed device the Batcher and the sim
// runner hand to TOP-IL.
func (r *Registry) Backend(name string) (*ModelBackend, error) {
	m, err := r.Model(name)
	if err != nil {
		return nil, err
	}
	return &ModelBackend{name: name, dev: npu.New(m)}, nil
}

// ModelBackend adapts a registry model to npu.Backend with the NPU latency
// model (batched inference at near-constant invocation cost). It also
// offers the NPU's non-blocking call, so it satisfies npu conformance
// including InferAsync agreement.
type ModelBackend struct {
	name string
	dev  *npu.NPU
}

// Name implements npu.Backend.
func (b *ModelBackend) Name() string { return "serve/" + b.name }

// Infer implements npu.Backend.
func (b *ModelBackend) Infer(batch [][]float64) [][]float64 { return b.dev.Infer(batch) }

// Latency implements npu.Backend.
func (b *ModelBackend) Latency(batchSize int) time.Duration { return b.dev.Latency(batchSize) }

// InferAsync mirrors npu.NPU.InferAsync: a non-blocking batched inference.
func (b *ModelBackend) InferAsync(batch [][]float64) <-chan npu.Result {
	return b.dev.InferAsync(batch)
}
