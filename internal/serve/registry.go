package serve

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/npu"
)

// ErrNotFound marks a request against a model that does not exist in the
// artifacts directory; the HTTP layer maps it to 404. A server started
// over an empty (or absent) models directory is healthy — it lists zero
// models and answers inference requests with this error, never a panic.
var ErrNotFound = errors.New("serve: model not found")

// ErrVersionNotFound marks a request against a model version the registry
// does not retain (never published, or pruned). The HTTP layer maps it to
// 404 like ErrNotFound.
var ErrVersionNotFound = errors.New("serve: model version not found")

// DefaultRetainVersions is how many published versions a model chain keeps
// for rollback. The active and shadow versions are always retained on top
// of this window.
const DefaultRetainVersions = 8

// Registry loads named IL models from an artifacts directory and manages a
// monotonically versioned chain of published artifacts per model. The disk
// file seeds version 1 exactly once — a deployment directory refreshed
// behind a running server is deliberately NOT picked up (artifacts are
// immutable; new weights enter through Publish + Swap). Loaded models are
// shared, relied on being read-only (see the nn package's concurrency
// guarantee).
type Registry struct {
	dir    string
	retain int

	mu     sync.Mutex
	chains map[string]*chain
}

// chain is the version history of one model name. active/shadow are
// atomic so the per-batch Acquire on the inference hot path never takes a
// lock; mu orders Publish/Swap/prune against each other.
type chain struct {
	mu       sync.Mutex
	versions []*Artifact // retained, ascending by version
	next     int         // next version number to assign (starts at 1)
	active   atomic.Pointer[Artifact]
	shadow   atomic.Pointer[Artifact]
}

// Artifact is one immutable published model version. It implements
// npu.Backend with the NPU latency model, so a batch bound to an artifact
// keeps serving that exact version no matter what the chain does.
type Artifact struct {
	name    string
	version int
	source  string // provenance, e.g. "disk" or "online trainer cycle 3"
	model   *nn.MLP
	dev     *npu.NPU
}

// Name implements npu.Backend; the version is part of the identity.
func (a *Artifact) Name() string { return fmt.Sprintf("serve/%s@v%d", a.name, a.version) }

// Version returns the artifact's chain version (monotonic, from 1).
func (a *Artifact) Version() int { return a.version }

// Source returns the provenance string recorded at publish time.
func (a *Artifact) Source() string { return a.source }

// Model returns the underlying read-only network.
func (a *Artifact) Model() *nn.MLP { return a.model }

// Infer implements npu.Backend.
func (a *Artifact) Infer(batch [][]float64) [][]float64 { return a.dev.Infer(batch) }

// Latency implements npu.Backend.
func (a *Artifact) Latency(batchSize int) time.Duration { return a.dev.Latency(batchSize) }

// InferAsync mirrors npu.NPU.InferAsync: a non-blocking batched inference.
func (a *Artifact) InferAsync(batch [][]float64) <-chan npu.Result {
	return a.dev.InferAsync(batch)
}

// NewRegistry creates a registry over the given artifacts directory.
func NewRegistry(dir string) *Registry {
	return &Registry{dir: dir, retain: DefaultRetainVersions, chains: make(map[string]*chain)}
}

// SetRetainVersions adjusts the per-model rollback window (minimum 1).
func (r *Registry) SetRetainVersions(n int) {
	if n < 1 {
		n = 1
	}
	r.mu.Lock()
	r.retain = n
	r.mu.Unlock()
}

// validName rejects names that would escape the artifacts directory.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("serve: empty model name")
	}
	if strings.ContainsAny(name, "/\\") || strings.Contains(name, "..") {
		return fmt.Errorf("serve: invalid model name %q", name)
	}
	return nil
}

// chainFor returns (creating if needed) the chain for a valid name.
func (r *Registry) chainFor(name string) (*chain, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.chains[name]
	if c == nil {
		c = &chain{next: 1}
		r.chains[name] = c
	}
	return c, nil
}

// activeArtifact returns the chain's active artifact, seeding it from the
// disk file on first use. The disk read happens at most once per name for
// the registry's lifetime.
func (r *Registry) activeArtifact(name string) (*Artifact, error) {
	c, err := r.chainFor(name)
	if err != nil {
		return nil, err
	}
	if a := c.active.Load(); a != nil {
		return a, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if a := c.active.Load(); a != nil {
		return a, nil
	}
	m, err := core.LoadModel(filepath.Join(r.dir, name+".json"), 0, 0)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
		}
		return nil, fmt.Errorf("serve: loading model %q: %w", name, err)
	}
	a := &Artifact{name: name, version: c.next, source: "disk", model: m, dev: npu.New(m)}
	c.next++
	c.versions = append(c.versions, a)
	c.active.Store(a)
	return a, nil
}

// Model returns the named model's active version, loading the disk
// artifact on first use.
func (r *Registry) Model(name string) (*nn.MLP, error) {
	a, err := r.activeArtifact(name)
	if err != nil {
		return nil, err
	}
	return a.model, nil
}

// Publish appends new weights to the model's version chain and returns the
// assigned version number. Publishing does not change which version serves
// traffic — that is Swap — but it does prune versions beyond the retention
// window (never the active or shadow one). The new model's shape must
// match the chain's active model, so a swap can never change the wire
// contract of in-flight clients.
func (r *Registry) Publish(name string, m *nn.MLP, source string) (int, error) {
	if m == nil {
		return 0, fmt.Errorf("serve: publishing nil model for %q", name)
	}
	// Seed the chain from disk first so version numbers and shape checks
	// are anchored to the deployed artifact. A chain with no disk file is
	// still publishable (the online trainer owns the model end to end).
	if _, err := r.activeArtifact(name); err != nil && !errors.Is(err, ErrNotFound) {
		return 0, err
	}
	c, err := r.chainFor(name)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if a := c.active.Load(); a != nil {
		if m.InputDim() != a.model.InputDim() || m.OutputDim() != a.model.OutputDim() {
			return 0, fmt.Errorf("serve: model %q version shape %dx%d does not match active %dx%d",
				name, m.InputDim(), m.OutputDim(), a.model.InputDim(), a.model.OutputDim())
		}
	}
	a := &Artifact{name: name, version: c.next, source: source, model: m, dev: npu.New(m)}
	c.next++
	c.versions = append(c.versions, a)
	r.mu.Lock()
	retain := r.retain
	r.mu.Unlock()
	c.pruneLocked(retain)
	return a.version, nil
}

// pruneLocked drops the oldest versions beyond the retention window,
// keeping the active and shadow artifacts regardless of age. Callers hold
// c.mu.
func (c *chain) pruneLocked(retain int) {
	if len(c.versions) <= retain {
		return
	}
	act, sh := c.active.Load(), c.shadow.Load()
	kept := make([]*Artifact, 0, retain+2)
	drop := len(c.versions) - retain
	for i, a := range c.versions {
		if i < drop && a != act && a != sh {
			continue
		}
		kept = append(kept, a)
	}
	c.versions = kept
}

// findLocked returns the retained artifact with the given version.
func (c *chain) findLocked(version int) *Artifact {
	for _, a := range c.versions {
		if a.version == version {
			return a
		}
	}
	return nil
}

// Swap atomically makes the given retained version the active one and
// returns the previously active version (0 if none). In-flight batches
// complete against the version they acquired; batches formed after Swap
// returns bind the new one — no batch ever mixes versions. Swapping the
// current shadow version promotes it and clears the shadow slot.
func (r *Registry) Swap(name string, version int) (prev int, err error) {
	c, err := r.chainFor(name)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	a := c.findLocked(version)
	if a == nil {
		return 0, fmt.Errorf("%w: %q version %d", ErrVersionNotFound, name, version)
	}
	if p := c.active.Load(); p != nil {
		prev = p.version
	}
	c.active.Store(a)
	if c.shadow.Load() == a {
		c.shadow.Store(nil)
	}
	return prev, nil
}

// Rollback re-activates a retained prior version. It is Swap with intent:
// the online manager calls it when post-promotion telemetry regresses.
func (r *Registry) Rollback(name string, version int) (prev int, err error) {
	return r.Swap(name, version)
}

// SetShadow mirrors live traffic onto the given retained version: batches
// are re-run against it after the active results are delivered, but its
// predictions are never served. Swapping the shadowed version to active
// clears the slot.
func (r *Registry) SetShadow(name string, version int) error {
	c, err := r.chainFor(name)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	a := c.findLocked(version)
	if a == nil {
		return fmt.Errorf("%w: %q version %d", ErrVersionNotFound, name, version)
	}
	c.shadow.Store(a)
	return nil
}

// ClearShadow stops mirroring traffic for the named model.
func (r *Registry) ClearShadow(name string) {
	if c, err := r.chainFor(name); err == nil {
		c.shadow.Store(nil)
	}
}

// ActiveVersion returns the version currently serving traffic, seeding
// from disk if the chain is untouched.
func (r *Registry) ActiveVersion(name string) (int, error) {
	a, err := r.activeArtifact(name)
	if err != nil {
		return 0, err
	}
	return a.version, nil
}

// VersionInfo describes one retained artifact for status surfaces.
type VersionInfo struct {
	Version int    `json:"version"`
	Source  string `json:"source"`
	Active  bool   `json:"active"`
	Shadow  bool   `json:"shadow"`
}

// Versions lists the retained chain, ascending by version.
func (r *Registry) Versions(name string) ([]VersionInfo, error) {
	c, err := r.chainFor(name)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	act, sh := c.active.Load(), c.shadow.Load()
	out := make([]VersionInfo, 0, len(c.versions))
	for _, a := range c.versions {
		out = append(out, VersionInfo{
			Version: a.version,
			Source:  a.source,
			Active:  a == act,
			Shadow:  a == sh,
		})
	}
	return out, nil
}

// Source returns a BackendSource bound to the model's chain: each Acquire
// snapshots the active artifact, each Shadow the mirrored one. The chain
// is seeded from disk so the source is immediately servable.
func (r *Registry) Source(name string) (*ModelSource, error) {
	if _, err := r.activeArtifact(name); err != nil {
		return nil, err
	}
	c, err := r.chainFor(name)
	if err != nil {
		return nil, err
	}
	return &ModelSource{c: c}, nil
}

// ModelSource adapts a model's version chain to the Batcher's
// BackendSource: lock-free snapshots of the active and shadow artifacts.
type ModelSource struct {
	c *chain
}

// Acquire implements BackendSource.
func (s *ModelSource) Acquire() (npu.Backend, int) {
	a := s.c.active.Load()
	if a == nil {
		return nil, 0
	}
	return a, a.version
}

// Shadow implements BackendSource.
func (s *ModelSource) Shadow() (npu.Backend, int, bool) {
	a := s.c.shadow.Load()
	if a == nil {
		return nil, 0, false
	}
	return a, a.version, true
}

// List returns the model names available on disk (without extension),
// sorted. A missing artifacts directory is a valid zero-model deployment,
// not an error.
func (r *Registry) List() ([]string, error) {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("serve: listing models: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		names = append(names, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(names)
	return names, nil
}

// Backend returns an npu.Backend serving the named model with the NPU's
// latency semantics — the registry-backed device the sim runner hands to
// TOP-IL. The backend binds the active version at call time: a sim job
// keeps the model it started with even if the chain swaps mid-run. (The
// HTTP inference path uses Source instead, which re-binds per batch.)
func (r *Registry) Backend(name string) (*ModelBackend, error) {
	a, err := r.activeArtifact(name)
	if err != nil {
		return nil, err
	}
	return &ModelBackend{name: name, art: a}, nil
}

// ModelBackend adapts one bound artifact to npu.Backend with the NPU
// latency model (batched inference at near-constant invocation cost). It
// also offers the NPU's non-blocking call, so it satisfies npu conformance
// including InferAsync agreement.
type ModelBackend struct {
	name string
	art  *Artifact
}

// Name implements npu.Backend.
func (b *ModelBackend) Name() string { return "serve/" + b.name }

// Version returns the bound artifact's version.
func (b *ModelBackend) Version() int { return b.art.version }

// Infer implements npu.Backend.
func (b *ModelBackend) Infer(batch [][]float64) [][]float64 { return b.art.Infer(batch) }

// Latency implements npu.Backend.
func (b *ModelBackend) Latency(batchSize int) time.Duration { return b.art.Latency(batchSize) }

// InferAsync mirrors npu.NPU.InferAsync: a non-blocking batched inference.
func (b *ModelBackend) InferAsync(batch [][]float64) <-chan npu.Result {
	return b.art.InferAsync(batch)
}
