package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/workload"
)

// waitState polls a job until it reaches a terminal state.
func waitState(t *testing.T, r *Runner, id string, timeout time.Duration) JobSnapshot {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		j, ok := r.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		switch j.State() {
		case StateDone, StateFailed, StateCanceled:
			return j.Snapshot()
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish within %v", id, timeout)
	return JobSnapshot{}
}

// quickSim is a sub-second simulation request.
func quickSim(policy string) SimRequest {
	return SimRequest{
		Policy:     policy,
		Duration:   2,
		NumJobs:    3,
		Rate:       2,
		InstrScale: 0.02,
		Seed:       1,
	}
}

func TestRunnerGovernorJob(t *testing.T) {
	r := NewRunner(NewRegistry(t.TempDir()), 2, 8, nil, nil)
	defer r.Shutdown(context.Background())

	snap, err := r.Submit(quickSim("GTS/ondemand"))
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateQueued && snap.State != StateRunning {
		t.Errorf("fresh job in state %q", snap.State)
	}
	final := waitState(t, r, snap.ID, 30*time.Second)
	if final.State != StateDone {
		t.Fatalf("job ended %q (%s)", final.State, final.Error)
	}
	res := final.Result
	if res == nil {
		t.Fatal("done job has no result")
	}
	if res.Technique != "GTS/ondemand" {
		t.Errorf("technique %q", res.Technique)
	}
	if res.Duration <= 0 || res.AvgTemp <= 0 || len(res.Apps) != 3 {
		t.Errorf("implausible result: %+v", res)
	}
}

func TestRunnerTOPILJobWithManifest(t *testing.T) {
	dir := t.TempDir()
	// features.Dim(8 cores, 2 clusters) = 21 inputs, 8 core ratings out.
	writeModel(t, dir, "model-1", []int{21, 16, 8}, 1)
	r := NewRunner(NewRegistry(dir), 1, 4, nil, nil)
	defer r.Shutdown(context.Background())

	spec, _ := workload.ByName(workload.MixedPool()[0])
	req := SimRequest{
		Policy:   "TOP-IL",
		Model:    "model-1",
		Duration: 2,
		Jobs: []workload.JobEntry{
			{Name: spec.Name, TotalInstr: spec.TotalInstr * 0.01, QoS: 1e8, Arrival: 0},
			{Name: spec.Name, TotalInstr: spec.TotalInstr * 0.01, QoS: 1e8, Arrival: 0.5},
		},
	}
	snap, err := r.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, r, snap.ID, 30*time.Second)
	if final.State != StateDone {
		t.Fatalf("job ended %q (%s)", final.State, final.Error)
	}
	if final.Result.Technique != "TOP-IL" {
		t.Errorf("technique %q", final.Result.Technique)
	}
	if len(final.Result.Apps) != 2 {
		t.Errorf("%d app results, want 2", len(final.Result.Apps))
	}
}

func TestRunnerValidation(t *testing.T) {
	dir := t.TempDir()
	writeModel(t, dir, "tiny", []int{4, 4, 2}, 1) // wrong shape for the platform
	r := NewRunner(NewRegistry(dir), 1, 4, nil, nil)
	defer r.Shutdown(context.Background())

	cases := []SimRequest{
		{Policy: "voodoo", Duration: 1},
		{Policy: "TOP-IL", Duration: 1},                                     // no model
		{Policy: "TOP-IL", Model: "absent", Duration: 1},                    // unknown model
		{Policy: "TOP-IL", Model: "tiny", Backend: "quantum", Duration: 1},  // bad backend
		{Policy: "GTS/ondemand", Duration: -3},                              // bad duration
		{Policy: "GTS/ondemand", Duration: 1, NumJobs: -2},                  // bad count
		{Policy: "GTS/ondemand", Jobs: []workload.JobEntry{{Name: "nope"}}}, // bad manifest
	}
	for i, req := range cases {
		if _, err := r.Submit(req); err == nil {
			t.Errorf("case %d accepted: %+v", i, req)
		}
	}

	// The wrong-shape model passes submission (it loads) but fails the job.
	snap, err := r.Submit(quickSimWithModel("TOP-IL", "tiny"))
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, r, snap.ID, 10*time.Second)
	if final.State != StateFailed || final.Error == "" {
		t.Errorf("wrong-shape model: state %q error %q", final.State, final.Error)
	}
}

func quickSimWithModel(policy, model string) SimRequest {
	req := quickSim(policy)
	req.Model = model
	return req
}

func TestRunnerBackpressureAndCancel(t *testing.T) {
	r := NewRunner(NewRegistry(t.TempDir()), 1, 1, nil, nil)

	long := quickSim("GTS/powersave")
	long.Duration = 3600 // would run for minutes of wall time if not canceled

	running, err := r.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the single worker picks it up, then fill the queue.
	deadline := time.Now().Add(5 * time.Second)
	for {
		j, _ := r.Get(running.ID)
		if j.State() == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	queued, err := r.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Submit(long); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third submit = %v, want ErrOverloaded", err)
	}
	if st := r.Stats(); st.Rejected != 1 || st.Submitted != 2 {
		t.Errorf("stats = %+v", st)
	}

	// Cancel the running job directly; drain the rest with an already
	// expired context so the queued job is canceled at its first tick.
	if !r.Cancel(running.ID) {
		t.Fatal("Cancel returned false")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r.Shutdown(ctx)

	for _, id := range []string{running.ID, queued.ID} {
		j, _ := r.Get(id)
		if s := j.State(); s != StateCanceled {
			t.Errorf("job %s state %q, want canceled", id, s)
		}
	}
	if r.Cancel("j-999999") {
		t.Error("Cancel of unknown job returned true")
	}
	if _, err := r.Submit(long); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after shutdown = %v, want ErrClosed", err)
	}
}

func TestRunnerShutdownDrains(t *testing.T) {
	r := NewRunner(NewRegistry(t.TempDir()), 2, 8, nil, nil)
	ids := make([]string, 3)
	for i := range ids {
		snap, err := r.Submit(quickSim("GTS/ondemand"))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = snap.ID
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	r.Shutdown(ctx) // returns only after every job reached a terminal state
	for _, id := range ids {
		j, _ := r.Get(id)
		if s := j.State(); s != StateDone {
			t.Errorf("job %s state %q after drain, want done", id, s)
		}
	}
}
