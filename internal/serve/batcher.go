package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/npu"
	"repro/internal/telemetry"
)

// Errors returned by Batcher.Submit; the HTTP layer maps them to
// 429/503/502.
var (
	ErrOverloaded = errors.New("serve: queue full")
	ErrClosed     = errors.New("serve: shutting down")
	// ErrInference marks a device-side failure: the backend panicked on a
	// batch or returned no output for a request. It is delivered per
	// request — one faulty input never poisons the rest of its batch.
	ErrInference = errors.New("serve: inference failed")
)

// BatcherConfig tunes the coalescing frontend.
type BatcherConfig struct {
	// MaxBatch flushes a batch once this many requests are pending — the
	// NPU's wave width (npu.NPU.Lanes) is the natural choice.
	MaxBatch int
	// MaxWait bounds how long the first request of a batch waits for
	// company before the batch is flushed anyway.
	MaxWait time.Duration
	// QueueCap bounds the number of pending submissions; Submit returns
	// ErrOverloaded beyond it (backpressure instead of unbounded queueing).
	QueueCap int
	// MaxInflight bounds concurrently executing batches — the device queue
	// depth. When every slot is busy the collector stops admitting work,
	// the queue fills, and Submit starts rejecting: end-to-end
	// backpressure instead of unbounded dispatch goroutines.
	MaxInflight int
	// PaceDevice, when set, holds a batch's device slot for the modelled
	// device latency of the invocation: the batcher then behaves like a
	// replica that owns a real accelerator whose invocations occupy the
	// device, so MaxInflight bounds genuine device-level concurrency and
	// per-replica throughput saturates at the device's service rate.
	// Serving benchmarks enable this so replica counts are meaningful on
	// one machine; off by default (pure-compute batches, the historical
	// behaviour).
	PaceDevice bool
	// PaceScale emulates an accelerator PaceScale times slower than the
	// modelled NPU when PaceDevice is set: the effective device latency
	// (both the paced slot occupancy and the reported per-batch device
	// time) is Latency(batch) * PaceScale. Values <= 1 leave the modelled
	// timing untouched. Benchmarks on core-starved machines use this to
	// keep replicas device-bound, so horizontal scaling is measurable
	// where raw HTTP throughput would otherwise hide it.
	PaceScale float64
	// Registry receives the batcher's metric families (serve_batcher_*),
	// labelled by Name. Nil gets a private registry, so Stats works for
	// standalone batchers.
	Registry *telemetry.Registry
	// Name is the batcher's `model` label value (the served model's name).
	Name string
	// OnShadow, when set, receives every successfully served batch that a
	// shadow backend also scored (see BackendSource.Shadow). It is called
	// from dispatch goroutines after the active results were delivered —
	// shadow scoring never delays or alters what clients receive — and
	// must be safe for concurrent use.
	OnShadow func(ShadowBatch)
}

// BackendSource hands the batcher its inference backend per batch. Acquire
// is called exactly once per batch, so every row of a batch is served by
// the same backend version — a Swap between two batches is atomic, a Swap
// during a batch leaves that batch on the version it acquired. Both
// methods must be lock-free-fast and safe for concurrent use.
type BackendSource interface {
	// Acquire snapshots the backend serving new batches and its version.
	// A nil backend means the source has nothing active (the batch fails).
	Acquire() (npu.Backend, int)
	// Shadow snapshots the mirrored candidate, if any.
	Shadow() (npu.Backend, int, bool)
}

// fixedSource adapts a plain backend to BackendSource: version 0, no
// shadow — the unversioned single-model behaviour of NewBatcher.
type fixedSource struct{ be npu.Backend }

func (f fixedSource) Acquire() (npu.Backend, int)      { return f.be, 0 }
func (f fixedSource) Shadow() (npu.Backend, int, bool) { return nil, 0, false }

// ShadowBatch is one mirrored batch: the inputs, what the active version
// served, and what the shadow version would have answered.
type ShadowBatch struct {
	ActiveVersion int
	ShadowVersion int
	Inputs        [][]float64
	Active        [][]float64
	Shadow        [][]float64
}

// DefaultBatcherConfig returns production defaults: one NPU wave per batch
// and a wait short enough to be invisible next to the device's ≈1 ms
// invocation overhead.
func DefaultBatcherConfig() BatcherConfig {
	return BatcherConfig{MaxBatch: 16, MaxWait: 2 * time.Millisecond, QueueCap: 256, MaxInflight: 4}
}

// batchReq is one pending inference.
type batchReq struct {
	in  []float64
	out chan batchResp // buffered(1): the collector never blocks on delivery
}

// batchResp carries one request's result out of a flushed batch.
type batchResp struct {
	out       []float64
	device    time.Duration // modelled device latency of the whole batch
	batchSize int
	version   int   // model version the batch was served by
	err       error // per-request failure (wraps ErrInference)
}

// SubmitInfo reports how a request was served.
type SubmitInfo struct {
	// BatchSize is the size of the coalesced batch this request rode in.
	BatchSize int
	// DeviceLatency is the modelled accelerator cost of that batch — by the
	// paper's Fig. 12 nearly independent of BatchSize on the NPU.
	DeviceLatency time.Duration
	// ModelVersion is the registry version that served the batch (0 for
	// unversioned backends). Every row of a batch reports the same value.
	ModelVersion int
}

// Batcher coalesces concurrent inference submissions into batches, the
// serving-side analogue of the paper's batched NPU call: one non-blocking
// device invocation serves every application's query at once, so
// per-request latency stays near-constant under fan-in.
//
// A single collector goroutine gathers requests until MaxBatch are pending
// or MaxWait has elapsed since the batch opened, then hands the batch to a
// dispatch goroutine (mirroring npu.InferAsync) and immediately resumes
// collecting — inference never blocks admission.
type Batcher struct {
	src      BackendSource
	inputDim int
	cfg      BatcherConfig

	reqs chan batchReq
	quit chan struct{}
	sem  chan struct{} // in-flight batch slots

	collector sync.WaitGroup
	inflight  sync.WaitGroup

	mu     sync.Mutex
	closed bool
	stats  batcherMetrics
}

// batcherMetrics are the coalescing counters as telemetry handles. Every
// field is lock-free, so the flush path no longer serializes on the stats
// mutex; BatcherStats is derived from these at snapshot time.
type batcherMetrics struct {
	requests    *telemetry.Counter
	rejected    *telemetry.Counter
	flushFull   *telemetry.Counter
	flushTimer  *telemetry.Counter
	batchSize   *telemetry.Histogram // count = batches, max = largest, sum/count = mean
	inferErrors *telemetry.Counter   // requests failed with ErrInference
	batchPanics *telemetry.Counter   // batches whose device call panicked
	queueDepth  *telemetry.Gauge     // pending submissions, updated on queue transitions
}

// batchSizeBuckets spans one request through two NPU waves; batch sizes
// are small integers, so unit-width buckets keep the histogram exact.
var batchSizeBuckets = telemetry.LinearBuckets(1, 1, 32)

// newBatcherMetrics resolves the serve_batcher_* family handles for one
// model label.
func newBatcherMetrics(reg *telemetry.Registry, model string) batcherMetrics {
	return batcherMetrics{
		requests: reg.CounterVec("serve_batcher_requests_total",
			"inference submissions accepted into the queue", "model").With(model),
		rejected: reg.CounterVec("serve_batcher_rejected_total",
			"inference submissions rejected with backpressure (429)", "model").With(model),
		flushFull: reg.CounterVec("serve_batcher_flush_full_total",
			"batches flushed because MaxBatch requests were pending", "model").With(model),
		flushTimer: reg.CounterVec("serve_batcher_flush_timer_total",
			"batches flushed by the MaxWait timer", "model").With(model),
		batchSize: reg.HistogramVec("serve_batcher_batch_size",
			"coalesced requests per device invocation", batchSizeBuckets, "model").With(model),
		inferErrors: reg.CounterVec("serve_batcher_infer_errors_total",
			"requests failed with a device-side inference error", "model").With(model),
		batchPanics: reg.CounterVec("serve_batcher_panics_total",
			"batches whose device call panicked", "model").With(model),
		queueDepth: reg.GaugeVec("serve_batcher_queue_depth",
			"inference submissions waiting for a batch", "model").With(model),
	}
}

// BatcherStats is a point-in-time snapshot of the coalescing behaviour.
type BatcherStats struct {
	Requests     uint64  `json:"requests"`
	Rejected     uint64  `json:"rejected"`
	Batches      uint64  `json:"batches"`
	FlushFull    uint64  `json:"flushFull"`
	FlushTimer   uint64  `json:"flushTimer"`
	LargestBatch int     `json:"largestBatch"`
	MeanBatch    float64 `json:"meanBatch"`
	InferErrors  uint64  `json:"inferErrors"`
	BatchPanics  uint64  `json:"batchPanics"`
}

// NewBatcher starts a batcher over one fixed backend. inputDim guards
// submissions (the backend's model would panic on a wrong dimension deep
// inside a dispatch goroutine otherwise). Close must be called to release
// the collector.
func NewBatcher(backend npu.Backend, inputDim int, cfg BatcherConfig) *Batcher {
	if backend == nil {
		panic("serve: nil backend")
	}
	return NewBatcherSource(fixedSource{be: backend}, inputDim, cfg)
}

// NewBatcherSource starts a batcher that re-acquires its backend from src
// once per batch — the hot-swappable form. See BackendSource for the
// version-atomicity contract. Panics if src is nil (a wiring bug, not a
// runtime condition).
func NewBatcherSource(src BackendSource, inputDim int, cfg BatcherConfig) *Batcher {
	if src == nil {
		panic("serve: nil backend source")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultBatcherConfig().MaxBatch
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = DefaultBatcherConfig().MaxWait
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = DefaultBatcherConfig().QueueCap
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultBatcherConfig().MaxInflight
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	if cfg.Name == "" {
		cfg.Name = "default"
	}
	b := &Batcher{
		src:      src,
		inputDim: inputDim,
		cfg:      cfg,
		reqs:     make(chan batchReq, cfg.QueueCap),
		quit:     make(chan struct{}),
		sem:      make(chan struct{}, cfg.MaxInflight),
		stats:    newBatcherMetrics(cfg.Registry, cfg.Name),
	}
	b.collector.Add(1)
	go b.collect()
	return b
}

// Submit enqueues one input vector and blocks until its output is ready,
// the context is canceled, or the batcher shuts down. It never blocks on a
// full queue: beyond QueueCap it fails fast with ErrOverloaded.
func (b *Batcher) Submit(ctx context.Context, in []float64) ([]float64, SubmitInfo, error) {
	if b.inputDim > 0 && len(in) != b.inputDim {
		return nil, SubmitInfo{}, fmt.Errorf("serve: input dim %d, want %d", len(in), b.inputDim)
	}
	req := batchReq{in: in, out: make(chan batchResp, 1)}
	// Enqueue under the closed-check mutex: Close sets closed before
	// signalling the collector, so any request admitted here is in the
	// queue before the final drain and is guaranteed an answer.
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, SubmitInfo{}, ErrClosed
	}
	b.stats.requests.Inc()
	select {
	case b.reqs <- req:
		b.stats.queueDepth.Set(float64(len(b.reqs)))
		b.mu.Unlock()
	default:
		b.stats.rejected.Inc()
		b.mu.Unlock()
		return nil, SubmitInfo{}, ErrOverloaded
	}

	select {
	case resp := <-req.out:
		if resp.err != nil {
			return nil, SubmitInfo{BatchSize: resp.batchSize, ModelVersion: resp.version}, resp.err
		}
		return resp.out, SubmitInfo{BatchSize: resp.batchSize, DeviceLatency: resp.device,
			ModelVersion: resp.version}, nil
	case <-ctx.Done():
		// The collector will still compute and deliver into the buffered
		// channel; the result is simply discarded.
		return nil, SubmitInfo{}, ctx.Err()
	}
}

// collect is the single collector goroutine.
func (b *Batcher) collect() {
	defer b.collector.Done()
	for {
		select {
		case <-b.quit:
			b.drain()
			return
		case first := <-b.reqs:
			b.stats.queueDepth.Set(float64(len(b.reqs)))
			batch := append(make([]batchReq, 0, b.cfg.MaxBatch), first)
			timer := time.NewTimer(b.cfg.MaxWait)
			full := true
		gather:
			for len(batch) < b.cfg.MaxBatch {
				select {
				case r := <-b.reqs:
					batch = append(batch, r)
					b.stats.queueDepth.Set(float64(len(b.reqs)))
				case <-timer.C:
					full = false
					break gather
				case <-b.quit:
					timer.Stop()
					b.flush(batch, false)
					b.drain()
					return
				}
			}
			timer.Stop()
			b.flush(batch, full)
		}
	}
}

// drain serves whatever is still queued at shutdown, one final batch per
// MaxBatch requests, so no accepted submission is dropped.
func (b *Batcher) drain() {
	for {
		var batch []batchReq
		for len(batch) < b.cfg.MaxBatch {
			select {
			case r := <-b.reqs:
				batch = append(batch, r)
				b.stats.queueDepth.Set(float64(len(b.reqs)))
			default:
				goto out
			}
		}
	out:
		if len(batch) == 0 {
			return
		}
		b.flush(batch, len(batch) == b.cfg.MaxBatch)
	}
}

// flush dispatches a batch without blocking the collector, mirroring the
// non-blocking npu.InferAsync call of the paper's daemon.
func (b *Batcher) flush(batch []batchReq, full bool) {
	if full {
		b.stats.flushFull.Inc()
	} else {
		b.stats.flushTimer.Inc()
	}
	b.stats.batchSize.Observe(float64(len(batch)))

	// Acquire a device slot before dispatching; with every slot busy this
	// blocks the collector, which is what propagates backpressure to the
	// bounded queue and from there to Submit.
	b.sem <- struct{}{}
	b.inflight.Add(1)
	go func() {
		defer func() {
			<-b.sem
			b.inflight.Done()
		}()
		// One Acquire per batch: every row is served by the same backend
		// version, so a concurrent Swap can never split a batch.
		be, ver := b.src.Acquire()
		if be == nil {
			for _, r := range batch {
				r.out <- batchResp{
					err:       fmt.Errorf("%w: no active model version", ErrNotFound),
					batchSize: len(batch),
				}
			}
			b.stats.inferErrors.Add(float64(len(batch)))
			return
		}
		ins := make([][]float64, len(batch))
		for i, r := range batch {
			ins[i] = r.in
		}
		outs, err := b.runBatch(be, ins)
		modelled := be.Latency(len(batch))
		if b.cfg.PaceDevice && b.cfg.PaceScale > 1 {
			modelled = time.Duration(float64(modelled) * b.cfg.PaceScale)
		}
		var dev time.Duration
		if err == nil {
			dev = modelled
		}
		if b.cfg.PaceDevice {
			// Occupy the device for the modelled invocation cost before
			// results are delivered or the slot is released — the real
			// accelerator's timeline.
			time.Sleep(modelled)
		}
		rowErrs := 0
		for i, r := range batch {
			switch {
			case err != nil:
				rowErrs++
				r.out <- batchResp{err: err, batchSize: len(batch), version: ver}
			case i >= len(outs) || outs[i] == nil:
				rowErrs++
				r.out <- batchResp{
					err: fmt.Errorf("%w: device %s returned no output for request %d of a batch of %d",
						ErrInference, be.Name(), i, len(batch)),
					batchSize: len(batch),
					version:   ver,
				}
			default:
				r.out <- batchResp{out: outs[i], device: dev, batchSize: len(batch), version: ver}
			}
		}
		b.stats.inferErrors.Add(float64(rowErrs))
		if err != nil {
			b.stats.batchPanics.Inc()
		}
		b.mirrorShadow(ver, ins, outs, err)
	}()
}

// runBatch performs one device invocation, converting a backend panic into
// an ErrInference-wrapped error so a faulty device call fails the batch's
// requests instead of killing the server.
func (b *Batcher) runBatch(be npu.Backend, ins [][]float64) (outs [][]float64, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%w: device %s panicked on a batch of %d: %v",
				ErrInference, be.Name(), len(ins), p)
		}
	}()
	return be.Infer(ins), nil
}

// mirrorShadow re-runs a successfully served batch against the source's
// shadow backend, if one is set, and reports both answers to OnShadow. It
// runs after delivery inside the dispatch goroutine: shadow scoring costs
// device-slot time but never client latency or results. A panicking shadow
// backend is swallowed — a broken candidate must not disturb serving.
func (b *Batcher) mirrorShadow(activeVer int, ins, active [][]float64, batchErr error) {
	if b.cfg.OnShadow == nil || batchErr != nil {
		return
	}
	sh, shVer, ok := b.src.Shadow()
	if !ok {
		return
	}
	outs, err := b.runBatch(sh, ins)
	if err != nil || len(outs) != len(ins) {
		return
	}
	b.cfg.OnShadow(ShadowBatch{
		ActiveVersion: activeVer,
		ShadowVersion: shVer,
		Inputs:        ins,
		Active:        active,
		Shadow:        outs,
	})
}

// Close stops accepting submissions, serves everything already queued and
// waits for in-flight batches to finish.
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.mu.Unlock()
	close(b.quit)
	b.collector.Wait()
	b.inflight.Wait()
}

// QueueDepth returns the number of submissions waiting for a batch — the
// signal behind Retry-After hints and the cluster router's load shedding.
func (b *Batcher) QueueDepth() int { return len(b.reqs) }

// QueueCap returns the submission queue capacity.
func (b *Batcher) QueueCap() int { return b.cfg.QueueCap }

// Stats returns a snapshot of the coalescing counters, derived from the
// batcher's telemetry handles in the JSON shape /v1/stats has always
// served.
func (b *Batcher) Stats() BatcherStats {
	s := BatcherStats{
		Requests:     uint64(b.stats.requests.Value()),
		Rejected:     uint64(b.stats.rejected.Value()),
		Batches:      b.stats.batchSize.Count(),
		FlushFull:    uint64(b.stats.flushFull.Value()),
		FlushTimer:   uint64(b.stats.flushTimer.Value()),
		LargestBatch: int(b.stats.batchSize.Max()),
		InferErrors:  uint64(b.stats.inferErrors.Value()),
		BatchPanics:  uint64(b.stats.batchPanics.Value()),
	}
	if s.Batches > 0 {
		s.MeanBatch = b.stats.batchSize.Sum() / float64(s.Batches)
	}
	return s
}
