package serve

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"testing"
	"time"

	"repro/internal/conformance"
	"repro/internal/npu"
	"repro/internal/testkit"
)

// updateWire regenerates the byte-pinned wire fixtures:
//
//	go test ./internal/serve -run TestWire -update-wire
var updateWire = flag.Bool("update-wire", false, "rewrite testdata/wire fixtures")

// volatileKeys are response fields carrying wall-clock measurements or
// batching coincidences. They are normalized (not deleted — the schema
// still sees them on the raw bytes) before fixtures are compared, so the
// pinned bytes only cover the deterministic contract.
var volatileKeys = map[string]bool{
	"queuedMs": true, "runMs": true, "wallUs": true, "deviceLatencyUs": true,
	"meanMs": true, "p50Ms": true, "p95Ms": true, "maxMs": true,
	"load": true, "batches": true, "flushFull": true, "flushTimer": true,
	"largestBatch": true, "meanBatch": true, "batchSizes": true,
	"lastCycleUnix": true,
}

// normalizeWire zeroes every volatile field in a JSON document, keyed by
// name at any depth.
func normalizeWire(t *testing.T, body []byte) []byte {
	t.Helper()
	var doc interface{}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("normalizing non-JSON body: %v\n%s", err, body)
	}
	var walk func(v interface{}) interface{}
	walk = func(v interface{}) interface{} {
		switch x := v.(type) {
		case map[string]interface{}:
			for k, val := range x {
				if volatileKeys[k] {
					switch val.(type) {
					case []interface{}:
						x[k] = []interface{}{}
					default:
						x[k] = 0
					}
					continue
				}
				x[k] = walk(val)
			}
			return x
		case []interface{}:
			for i := range x {
				x[i] = walk(x[i])
			}
			return x
		default:
			return v
		}
	}
	out, err := json.MarshalIndent(walk(doc), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// checkWire validates raw bytes against a conformance schema, then pins
// the normalized form against testdata/wire/<fixture>.json.
func checkWire(t *testing.T, schema, fixture string, body []byte) {
	t.Helper()
	s, err := conformance.SchemaFor(schema)
	if err != nil {
		t.Fatalf("schema %s: %v", schema, err)
	}
	if errs := s.Validate(body); len(errs) > 0 {
		msgs := make([]string, len(errs))
		for i, e := range errs {
			msgs[i] = e.Error()
		}
		sort.Strings(msgs)
		t.Fatalf("%s violates schema %s:\n%s\nbody: %s", fixture, schema, msgs, body)
	}
	got := normalizeWire(t, body)
	path := filepath.Join("testdata", "wire", fixture+".json")
	if *updateWire {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture %s (run with -update-wire to create): %v", path, err)
	}
	if string(got) != string(want) {
		t.Errorf("wire bytes for %s drifted from the pinned fixture.\n--- got:\n%s--- want:\n%s",
			fixture, got, want)
	}
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf []byte
	b := make([]byte, 64<<10)
	for {
		n, err := resp.Body.Read(b)
		buf = append(buf, b[:n]...)
		if err != nil {
			return buf
		}
	}
}

func wireGet(t *testing.T, url string, wantStatus int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d\n%s", url, resp.StatusCode, wantStatus, body)
	}
	return body
}

// TestWireContract pins the byte shape of every happy-path /v1 response on
// one server with a deterministic request sequence.
func TestWireContract(t *testing.T) {
	_, ts, m := newTestServer(t)

	checkWire(t, "healthz", "healthz", wireGet(t, ts.URL+"/v1/healthz", http.StatusOK))
	checkWire(t, "models", "models", wireGet(t, ts.URL+"/v1/models", http.StatusOK))

	inputs := make([][]float64, 2)
	for i := range inputs {
		inputs[i] = make([]float64, m.InputDim())
		for j := range inputs[i] {
			inputs[i][j] = 0.1 * float64(i+1)
		}
	}
	resp, body := postJSON(t, ts.URL+"/v1/infer", map[string]interface{}{
		"model": "model-1", "inputs": inputs,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer: %d\n%s", resp.StatusCode, body)
	}
	checkWire(t, "infer", "infer", body)

	// Stats before the sim flow: every endpoint counter below is pinned by
	// the fixed request sequence above (job polling would make the
	// GET /v1/jobs/{id} count timing-dependent).
	checkWire(t, "stats", "stats", wireGet(t, ts.URL+"/v1/stats", http.StatusOK))

	resp, body = postJSON(t, ts.URL+"/v1/sim", map[string]interface{}{
		"policy": "GTS/ondemand", "duration": 2, "seed": 7,
		"numJobs": 2, "rate": 2, "instrScale": 0.02,
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sim: %d\n%s", resp.StatusCode, body)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/j-000001" {
		t.Fatalf("sim Location = %q", loc)
	}
	checkWire(t, "job", "job_accepted", body)

	deadline := time.Now().Add(30 * time.Second)
	for {
		body = wireGet(t, ts.URL+"/v1/jobs/j-000001", http.StatusOK)
		var snap struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(body, &snap); err != nil {
			t.Fatal(err)
		}
		if snap.State == "done" {
			break
		}
		if snap.State == "failed" || snap.State == "canceled" || time.Now().After(deadline) {
			t.Fatalf("job never finished: %s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	checkWire(t, "job", "job_done", body)
	checkWire(t, "jobs", "jobs", wireGet(t, ts.URL+"/v1/jobs", http.StatusOK))

	// No Online config on this server: /v1/online reports the zero status.
	checkWire(t, "online", "online_disabled", wireGet(t, ts.URL+"/v1/online", http.StatusOK))
}

// TestWireOnlineEnabled pins /v1/online for an idle enabled learner: the
// hour-long train interval keeps every counter at zero, so the snapshot is
// fully deterministic.
func TestWireOnlineEnabled(t *testing.T) {
	dir := t.TempDir()
	writeModel(t, dir, "model-1", []int{21, 32, 8}, 1)
	s := NewServer(Config{ModelsDir: dir, Workers: 1, QueueCap: 4, Online: OnlineConfig{
		Enabled: true, Model: "model-1", Dir: t.TempDir(),
		TrainInterval: time.Hour,
	}})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})
	if s.OnlineManager() == nil {
		t.Fatal("online learner failed to start")
	}
	checkWire(t, "online", "online_enabled", wireGet(t, ts.URL+"/v1/online", http.StatusOK))
}

// TestWireErrorNotFound pins the 404 bodies: an unknown job, and inference
// against a zero-model deployment.
func TestWireErrorNotFound(t *testing.T) {
	_, ts, _ := newTestServer(t)
	checkWire(t, "error", "err_job_not_found",
		wireGet(t, ts.URL+"/v1/jobs/j-999999", http.StatusNotFound))

	// A registry over an empty directory: every model lookup 404s.
	s := NewServer(Config{ModelsDir: t.TempDir(), Workers: 1, QueueCap: 1})
	empty := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		empty.Close()
		s.Shutdown(context.Background())
	})
	resp, body := postJSON(t, empty.URL+"/v1/infer", map[string]interface{}{
		"model": "model-1", "inputs": [][]float64{make([]float64, 21)},
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("zero-model infer: %d\n%s", resp.StatusCode, body)
	}
	checkWire(t, "error", "err_model_not_found", body)
}

// TestWireErrorBackpressure pins the 429 body and its Retry-After header:
// a one-worker, one-slot queue is flooded with heavy jobs until it sheds.
func TestWireErrorBackpressure(t *testing.T) {
	dir := t.TempDir()
	writeModel(t, dir, "model-1", []int{21, 32, 8}, 1)
	s := NewServer(Config{ModelsDir: dir, Workers: 1, QueueCap: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})
	heavy := map[string]interface{}{
		"policy": "GTS/ondemand", "duration": 3600, "seed": 1,
		"numJobs": 32, "rate": 10, "instrScale": 10,
	}
	for attempt := 0; attempt < 16; attempt++ {
		resp, body := postJSON(t, ts.URL+"/v1/sim", heavy)
		if resp.StatusCode == http.StatusAccepted {
			continue
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("flood attempt %d: status %d\n%s", attempt, resp.StatusCode, body)
		}
		ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil || ra < 1 {
			t.Fatalf("429 Retry-After = %q, want a positive integer",
				resp.Header.Get("Retry-After"))
		}
		checkWire(t, "error", "err_backpressure", body)
		return
	}
	t.Fatal("queue never shed: no 429 after 16 heavy submissions")
}

// TestWireErrorInferFault pins the 502 body: a chaos backend failing every
// row turns inference into ErrInference, surfaced as Bad Gateway.
func TestWireErrorInferFault(t *testing.T) {
	s, ts, m := newTestServer(t)

	// Plant a batcher over a fault-injecting backend under the server's
	// lock, displacing the registry-built one for model-1.
	ch := testkit.NewChaos(1)
	b := NewBatcher(ch.WrapBackend(npu.New(m), testkit.BackendFaults{RowErrProb: 1}),
		m.InputDim(), BatcherConfig{MaxBatch: 4, MaxWait: time.Millisecond, QueueCap: 8})
	s.mu.Lock()
	s.batchers["model-1"] = b
	s.mu.Unlock()

	resp, body := postJSON(t, ts.URL+"/v1/infer", map[string]interface{}{
		"model": "model-1", "inputs": [][]float64{make([]float64, m.InputDim())},
	})
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("faulted infer: %d\n%s", resp.StatusCode, body)
	}
	checkWire(t, "error", "err_infer_fault", body)
}

// TestWireFixturesCommitted guards against a fixture directory that was
// never generated (each checkWire call would individually fail, but this
// names the full expected set in one place).
func TestWireFixturesCommitted(t *testing.T) {
	want := []string{
		"err_backpressure", "err_infer_fault", "err_job_not_found",
		"err_model_not_found", "healthz", "infer", "job_accepted",
		"job_done", "jobs", "models", "online_disabled", "online_enabled",
		"stats",
	}
	for _, name := range want {
		path := filepath.Join("testdata", "wire", name+".json")
		if _, err := os.Stat(path); err != nil {
			t.Errorf("fixture %s missing: %v", path, err)
		}
	}
	entries, err := os.ReadDir(filepath.Join("testdata", "wire"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(want) {
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Errorf("testdata/wire holds %v, want exactly %s.json", names, fmt.Sprint(want))
	}
}
