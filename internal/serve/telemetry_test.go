package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// statsGolden is the exact field-name tree of /v1/stats. The endpoint is
// a public contract: renaming or dropping any of these keys breaks
// existing consumers, so the migration onto the telemetry registry must
// reproduce them verbatim.
var statsGolden = map[string][]string{
	"":          {"endpoints", "batchers", "jobs"},
	"endpoints": {"count", "errors", "faults", "latency"},
	"latency":   {"count", "meanMs", "p50Ms", "p95Ms", "maxMs"},
	"batchers": {"requests", "rejected", "batches", "flushFull", "flushTimer",
		"largestBatch", "meanBatch", "inferErrors", "batchPanics"},
	"jobs": {"workers", "queueCap", "queued", "running", "done", "failed",
		"canceled", "submitted", "rejected"},
}

// TestStatsFieldNamesGolden drives real traffic through the server and
// checks every JSON key of /v1/stats against the golden contract.
func TestStatsFieldNamesGolden(t *testing.T) {
	_, ts, m := newTestServer(t)
	in := make([]float64, m.InputDim())
	postJSON(t, ts.URL+"/v1/infer", InferRequest{Model: "model-1", Inputs: [][]float64{in}})
	postJSON(t, ts.URL+"/v1/sim", SimRequest{Policy: "GTS/powersave", Duration: 0.2})
	getJSON(t, ts.URL+"/v1/jobs", nil)
	getJSON(t, ts.URL+"/v1/does-not-exist", nil) // a 404 for the errors counter

	var raw map[string]json.RawMessage
	getJSON(t, ts.URL+"/v1/stats", &raw)
	requireKeys(t, "", raw, statsGolden[""])

	var endpoints map[string]map[string]json.RawMessage
	if err := json.Unmarshal(raw["endpoints"], &endpoints); err != nil {
		t.Fatal(err)
	}
	if len(endpoints) == 0 {
		t.Fatal("no endpoints recorded")
	}
	for route, ep := range endpoints {
		requireKeys(t, "endpoints."+route, ep, statsGolden["endpoints"])
		var lat map[string]json.RawMessage
		if err := json.Unmarshal(ep["latency"], &lat); err != nil {
			t.Fatal(err)
		}
		requireKeys(t, "endpoints."+route+".latency", lat, statsGolden["latency"])
	}

	var batchers map[string]map[string]json.RawMessage
	if err := json.Unmarshal(raw["batchers"], &batchers); err != nil {
		t.Fatal(err)
	}
	if len(batchers) != 1 {
		t.Fatalf("want 1 batcher, got %d", len(batchers))
	}
	for name, b := range batchers {
		requireKeys(t, "batchers."+name, b, statsGolden["batchers"])
	}

	var jobs map[string]json.RawMessage
	if err := json.Unmarshal(raw["jobs"], &jobs); err != nil {
		t.Fatal(err)
	}
	requireKeys(t, "jobs", jobs, statsGolden["jobs"])
}

// requireKeys demands the exact key set (no additions, no deletions).
func requireKeys(t *testing.T, path string, obj map[string]json.RawMessage, want []string) {
	t.Helper()
	for _, k := range want {
		if _, ok := obj[k]; !ok {
			t.Errorf("%s: missing key %q", path, k)
		}
	}
	if len(obj) != len(want) {
		got := make([]string, 0, len(obj))
		for k := range obj {
			got = append(got, k)
		}
		t.Errorf("%s: key set changed: got %v, want %v", path, got, want)
	}
}

// TestStatsValuesConsistent cross-checks the derived /v1/stats numbers
// against the traffic that produced them.
func TestStatsValuesConsistent(t *testing.T) {
	_, ts, m := newTestServer(t)
	in := make([]float64, m.InputDim())
	for i := 0; i < 3; i++ {
		postJSON(t, ts.URL+"/v1/infer", InferRequest{Model: "model-1", Inputs: [][]float64{in}})
	}
	getJSON(t, ts.URL+"/v1/does-not-exist", nil)

	var stats StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	b := stats.Batchers["model-1"]
	if b.Requests != 3 || b.Batches == 0 || b.LargestBatch < 1 || b.MeanBatch <= 0 {
		t.Fatalf("batcher stats inconsistent: %+v", b)
	}
	ep := stats.Endpoints["POST /v1/infer"]
	if ep.Count != 3 || ep.Latency.Count != 3 || ep.Latency.P95Ms < ep.Latency.P50Ms {
		t.Fatalf("endpoint stats inconsistent: %+v", ep)
	}
	if ep.Latency.MaxMs <= 0 || ep.Latency.MeanMs <= 0 {
		t.Fatalf("latency summary empty: %+v", ep.Latency)
	}
}

// promSample matches one Prometheus text-format sample line.
var promSample = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\n]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\n]*")*\})? (-?\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|-Inf|NaN)$`)

func TestMetricsEndpoint(t *testing.T) {
	_, ts, m := newTestServer(t)
	in := make([]float64, m.InputDim())
	postJSON(t, ts.URL+"/v1/infer", InferRequest{Model: "model-1", Inputs: [][]float64{in}})
	postJSON(t, ts.URL+"/v1/sim", SimRequest{Policy: "GTS/powersave", Duration: 0.2})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, telemetry.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "# ") {
			continue
		}
		if !promSample.MatchString(line) {
			t.Errorf("invalid Prometheus sample line: %q", line)
			continue
		}
		series[line[:strings.LastIndex(line, " ")]] = true
	}
	if len(series) < 15 {
		t.Fatalf("GET /metrics serves %d distinct series, want >= 15:\n%s", len(series), body)
	}
	for _, want := range []string{
		"serve_uptime_seconds",
		"serve_jobs_submitted_total",
		"serve_jobs_queue_depth",
		`serve_batcher_requests_total{model="model-1"}`,
		`http_requests_total{route="POST /v1/infer",class="2xx"}`,
	} {
		if !series[want] {
			t.Errorf("missing series %q in /metrics:\n%s", want, body)
		}
	}

	// JSON dump variant.
	var fams []map[string]any
	r2 := getJSON(t, ts.URL+"/metrics?format=json", &fams)
	if r2.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("json format Content-Type = %q", r2.Header.Get("Content-Type"))
	}
	if len(fams) == 0 {
		t.Fatal("JSON metrics dump empty")
	}
}

func TestTraceEndpointServesRequestSpans(t *testing.T) {
	_, ts, _ := newTestServer(t)
	getJSON(t, ts.URL+"/v1/healthz", nil)
	getJSON(t, ts.URL+"/v1/models", nil)

	var events []map[string]any
	getJSON(t, ts.URL+"/v1/trace", &events)
	var names []string
	for _, ev := range events {
		if ev["ph"] == "X" {
			names = append(names, ev["name"].(string))
		}
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "GET /v1/healthz") || !strings.Contains(joined, "GET /v1/models") {
		t.Fatalf("trace missing request spans: %v", names)
	}
}

func TestPprofOptIn(t *testing.T) {
	dir := t.TempDir()
	writeModel(t, dir, "model-1", []int{21, 32, 8}, 1)

	// Off by default.
	s := NewServer(Config{ModelsDir: dir, Workers: 1})
	ts := httptest.NewServer(s.Handler())
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof served without EnablePprof")
	}
	ts.Close()
	s.Shutdown(context.Background())

	// Mounted when enabled.
	s2 := NewServer(Config{ModelsDir: dir, Workers: 1, EnablePprof: true})
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		s2.Shutdown(context.Background())
	}()
	resp2, err := http.Get(ts2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index not served when enabled: %d", resp2.StatusCode)
	}
}

// TestSharedTelemetryRegistry checks a caller-supplied registry receives
// the server's families (the topil-serve wiring).
func TestSharedTelemetryRegistry(t *testing.T) {
	dir := t.TempDir()
	writeModel(t, dir, "model-1", []int{21, 32, 8}, 1)
	reg := telemetry.NewRegistry()
	s := NewServer(Config{ModelsDir: dir, Workers: 1, Telemetry: reg})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Shutdown(context.Background())
	}()
	if s.Telemetry() != reg {
		t.Fatal("Telemetry() must return the injected registry")
	}
	getJSON(t, ts.URL+"/v1/healthz", nil)
	deadline := time.Now().Add(2 * time.Second)
	for {
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		if strings.Contains(sb.String(), `http_requests_total{route="GET /v1/healthz",class="2xx"} 1`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("injected registry missing request counter:\n%s", sb.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
