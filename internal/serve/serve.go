// Package serve turns the TOP-IL reproduction into a long-lived service:
// trained IL models answer placement queries over HTTP and full managed
// simulations run as asynchronous jobs on a bounded worker pool.
//
// The package mirrors, on the serving side, the paper's architectural
// argument about the NPU (Fig. 12): concurrent inference requests are
// coalesced into batches by a non-blocking frontend (Batcher), so the
// per-request latency stays nearly constant under fan-in — exactly the
// property the paper attributes to batched NPU inference versus per-request
// CPU inference. The components are:
//
//	Registry   loads and caches named nn.MLP models from an artifacts
//	           directory and exposes them as npu.Backend devices.
//	Batcher    coalesces concurrent Submit calls into NPU-style batches,
//	           flushing on a max batch size or a short max-wait timer.
//	Runner     executes full sim+core/governor runs as jobs (queued /
//	           running / done / failed / canceled) on a bounded pool.
//	Server     the HTTP surface: /v1/infer, /v1/sim, /v1/jobs/{id},
//	           /v1/models, /v1/stats, /v1/healthz — with request-ID
//	           middleware, per-endpoint metrics and 429 backpressure.
//
// Everything is stdlib-only (net/http + encoding/json), matching the rest
// of the repository.
package serve
