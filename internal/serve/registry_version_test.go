package serve

import (
	"errors"
	"testing"

	"repro/internal/nn"
)

// TestRegistryIgnoresRefreshedDiskArtifact pins the immutability contract:
// a deployment directory refreshed behind a running server must NOT be
// picked up mid-flight. New weights enter only through Publish + Swap.
func TestRegistryIgnoresRefreshedDiskArtifact(t *testing.T) {
	dir := t.TempDir()
	writeModel(t, dir, "model-1", []int{21, 16, 8}, 1)
	r := NewRegistry(dir)
	m1, err := r.Model("model-1")
	if err != nil {
		t.Fatal(err)
	}

	// Overwrite the artifact on disk with different weights (same shape).
	writeModel(t, dir, "model-1", []int{21, 16, 8}, 99)
	again, err := r.Model("model-1")
	if err != nil {
		t.Fatal(err)
	}
	if again != m1 {
		t.Fatal("registry re-read a refreshed disk artifact mid-flight")
	}
	if v, err := r.ActiveVersion("model-1"); err != nil || v != 1 {
		t.Fatalf("ActiveVersion = %d, %v; want 1", v, err)
	}
	b, err := r.Backend("model-1")
	if err != nil {
		t.Fatal(err)
	}
	if b.Version() != 1 {
		t.Fatalf("Backend bound version %d, want 1", b.Version())
	}
	in := testInputs(1, 4)
	if got, want := b.Infer(in)[0], m1.Predict(in[0]); len(got) != len(want) {
		t.Fatalf("output dim %d, want %d", len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatal("backend serves weights other than the first-loaded artifact")
			}
		}
	}
}

func TestRegistryPublishSwapRollback(t *testing.T) {
	dir := t.TempDir()
	writeModel(t, dir, "model-1", []int{21, 16, 8}, 1)
	r := NewRegistry(dir)

	v2, err := r.Publish("model-1", nn.NewMLP([]int{21, 16, 8}, 2), "test cycle 1")
	if err != nil {
		t.Fatal(err)
	}
	if v2 != 2 {
		t.Fatalf("first publish got version %d, want 2 (disk is 1)", v2)
	}
	// Publish does not change what serves.
	if v, _ := r.ActiveVersion("model-1"); v != 1 {
		t.Fatalf("active after publish = %d, want 1", v)
	}

	prev, err := r.Swap("model-1", v2)
	if err != nil {
		t.Fatal(err)
	}
	if prev != 1 {
		t.Fatalf("Swap returned prev %d, want 1", prev)
	}
	if v, _ := r.ActiveVersion("model-1"); v != 2 {
		t.Fatalf("active after swap = %d, want 2", v)
	}

	// Rollback to the retained version 1.
	if prev, err = r.Rollback("model-1", 1); err != nil || prev != 2 {
		t.Fatalf("Rollback = (%d, %v), want (2, nil)", prev, err)
	}
	if v, _ := r.ActiveVersion("model-1"); v != 1 {
		t.Fatalf("active after rollback = %d, want 1", v)
	}

	// Unknown versions surface the typed error.
	if _, err := r.Swap("model-1", 77); !errors.Is(err, ErrVersionNotFound) {
		t.Fatalf("Swap to unknown version: %v, want ErrVersionNotFound", err)
	}
	if err := r.SetShadow("model-1", 77); !errors.Is(err, ErrVersionNotFound) {
		t.Fatalf("SetShadow to unknown version: %v, want ErrVersionNotFound", err)
	}

	// Shape-mismatched weights are rejected at publish time.
	if _, err := r.Publish("model-1", nn.NewMLP([]int{5, 4, 8}, 3), "bad"); err == nil {
		t.Fatal("publish accepted a model with a different input dim")
	}
	if _, err := r.Publish("model-1", nn.NewMLP([]int{21, 4, 4}, 3), "bad"); err == nil {
		t.Fatal("publish accepted a model with a different output dim")
	}
}

func TestRegistryShadowLifecycle(t *testing.T) {
	dir := t.TempDir()
	writeModel(t, dir, "model-1", []int{21, 16, 8}, 1)
	r := NewRegistry(dir)
	v2, err := r.Publish("model-1", nn.NewMLP([]int{21, 16, 8}, 2), "candidate")
	if err != nil {
		t.Fatal(err)
	}
	src, err := r.Source("model-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := src.Shadow(); ok {
		t.Fatal("shadow set before SetShadow")
	}
	if err := r.SetShadow("model-1", v2); err != nil {
		t.Fatal(err)
	}
	if _, v, ok := src.Shadow(); !ok || v != v2 {
		t.Fatalf("Shadow() = (v%d, %v), want (v%d, true)", v, ok, v2)
	}
	// Active snapshot unaffected by shadowing.
	if _, v := src.Acquire(); v != 1 {
		t.Fatalf("Acquire() binds v%d, want v1", v)
	}
	// Promoting the shadowed version clears the slot.
	if _, err := r.Swap("model-1", v2); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := src.Shadow(); ok {
		t.Fatal("shadow slot survived promotion of the shadowed version")
	}
	if _, v := src.Acquire(); v != v2 {
		t.Fatalf("Acquire() binds v%d after promotion, want v%d", v, v2)
	}

	r.SetShadow("model-1", 1)
	r.ClearShadow("model-1")
	if _, _, ok := src.Shadow(); ok {
		t.Fatal("ClearShadow left the slot set")
	}
}

func TestRegistryRetention(t *testing.T) {
	dir := t.TempDir()
	writeModel(t, dir, "model-1", []int{21, 16, 8}, 1)
	r := NewRegistry(dir)
	r.SetRetainVersions(3)
	for i := 0; i < 6; i++ {
		if _, err := r.Publish("model-1", nn.NewMLP([]int{21, 16, 8}, int64(10+i)), "test"); err != nil {
			t.Fatal(err)
		}
	}
	vs, err := r.Versions("model-1")
	if err != nil {
		t.Fatal(err)
	}
	// Active v1 is kept beyond the window of 3.
	if len(vs) != 4 {
		t.Fatalf("retained %d versions (%v), want 4 (window 3 + active)", len(vs), vs)
	}
	if vs[0].Version != 1 || !vs[0].Active {
		t.Fatalf("oldest retained %+v, want active v1", vs[0])
	}
	for _, v := range vs[1:] {
		if v.Version < 5 {
			t.Fatalf("version %d survived pruning with window 3", v.Version)
		}
	}
	// A pruned version is gone for good.
	if _, err := r.Swap("model-1", 2); !errors.Is(err, ErrVersionNotFound) {
		t.Fatalf("Swap to pruned version: %v, want ErrVersionNotFound", err)
	}
}

// TestRegistryPublishWithoutDiskArtifact covers chains the online trainer
// owns end to end: no disk file, first publish is version 1, Swap
// activates it.
func TestRegistryPublishWithoutDiskArtifact(t *testing.T) {
	r := NewRegistry(t.TempDir())
	v, err := r.Publish("fresh", nn.NewMLP([]int{21, 16, 8}, 1), "online")
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("first publish version %d, want 1", v)
	}
	if _, err := r.ActiveVersion("fresh"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ActiveVersion before swap: %v, want ErrNotFound", err)
	}
	if _, err := r.Swap("fresh", v); err != nil {
		t.Fatal(err)
	}
	if av, err := r.ActiveVersion("fresh"); err != nil || av != 1 {
		t.Fatalf("ActiveVersion after swap = (%d, %v), want (1, nil)", av, err)
	}
}
