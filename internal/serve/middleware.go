package serve

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log"
	"net/http"
	"sync/atomic"
	"time"
)

// requestIDHeader carries the per-request correlation ID; an incoming value
// is respected (gateway-assigned IDs propagate), otherwise one is minted.
const requestIDHeader = "X-Request-Id"

// jobIDHeader carries a router-minted job ID on POST /v1/sim: the cluster
// router assigns IDs so the job shards deterministically and later
// GET /v1/jobs/{id} calls hash to the same replica.
const jobIDHeader = "X-Job-Id"

// idPrefix distinguishes IDs minted by different server instances.
var idPrefix = func() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "serve"
	}
	return hex.EncodeToString(b[:])
}()

var idCounter atomic.Uint64

// newRequestID mints a process-unique request ID.
func newRequestID() string {
	return fmt.Sprintf("%s-%06d", idPrefix, idCounter.Add(1))
}

// statusWriter records the status code written by a handler.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps a handler with the service middleware stack: request-ID
// assignment, per-endpoint metrics (count, error classes, latency
// histogram) keyed by the mux pattern, and panic containment (a handler
// panic becomes a 500 and a counted fault, not a dead connection).
func (s *Server) instrument(pattern string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(requestIDHeader)
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set(requestIDHeader, id)

		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		span := s.tracer.Start(pattern)
		defer func() {
			if p := recover(); p != nil {
				log.Printf("serve: %s %s [%s]: panic: %v", r.Method, r.URL.Path, id, p)
				if sw.status == 0 {
					http.Error(sw, "internal error", http.StatusInternalServerError)
				}
			}
			span.End()
			s.metrics.Record(pattern, sw.status, time.Since(start))
		}()
		h(sw, r)
	}
}
