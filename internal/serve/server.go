package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// maxBodyBytes bounds request bodies (a 1024-job manifest fits easily).
const maxBodyBytes = 8 << 20

// Config assembles a Server.
type Config struct {
	// ModelsDir is the artifacts directory holding <name>.json models.
	ModelsDir string
	// Workers sizes the simulation worker pool (default runtime.NumCPU()).
	Workers int
	// QueueCap bounds the simulation job queue (default 4×Workers).
	QueueCap int
	// Batch tunes the inference coalescing frontend.
	Batch BatcherConfig
	// Store, when non-nil, makes the job pool durable: every job state
	// transition is journaled through it and construction replays the
	// journal, so GET /v1/jobs/{id} survives a replica restart (see
	// internal/cluster's JournalStore).
	Store JobStore
	// Telemetry receives every metric family the server and its batchers
	// and job pool produce, and backs GET /metrics. Nil gets a private
	// registry (metrics still work, just not shared with the process
	// default).
	Telemetry *telemetry.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/ — opt-in,
	// since profiling endpoints do not belong on an open port by default.
	EnablePprof bool
	// TraceSpans bounds the wall-time request trace ring served by
	// GET /v1/trace (default 4096; oldest spans are dropped beyond it).
	TraceSpans int
	// Online configures DAgger-style continual imitation learning with
	// shadow-evaluated hot swaps (see internal/online and docs/ONLINE.md).
	Online OnlineConfig
}

// Server is the HTTP service: model registry + batching inference frontend
// + simulation job runner, with per-endpoint metrics.
type Server struct {
	cfg     Config
	reg     *Registry
	runner  *Runner
	metrics *Metrics
	tel     *telemetry.Registry
	tracer  *telemetry.Tracer // wall-time request spans, bounded ring
	clock   telemetry.Clock   // wall clock, origin = server start

	// draining is the replica-mode drain flag: set by POST /v1/drain, it
	// refuses new work with 503 + Retry-After while reads and in-flight
	// jobs keep being served, and is reported by GET /v1/healthz so a
	// router stops routing here.
	draining atomic.Bool

	// online is the continual-learning runtime (nil when disabled).
	online *onlineState

	mu       sync.Mutex
	batchers map[string]*Batcher
	closed   bool
}

// NewServer creates a server over the given configuration.
func NewServer(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4 * cfg.Workers
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	if cfg.TraceSpans <= 0 {
		cfg.TraceSpans = 4096
	}
	clock := telemetry.NewWallClock()
	tracer := telemetry.NewTracer(clock)
	tracer.SetMaxSpans(cfg.TraceSpans)
	reg := NewRegistry(cfg.ModelsDir)
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		runner:   NewRunner(reg, cfg.Workers, cfg.QueueCap, cfg.Telemetry, cfg.Store),
		metrics:  NewMetrics(cfg.Telemetry),
		tel:      cfg.Telemetry,
		tracer:   tracer,
		clock:    clock,
		batchers: make(map[string]*Batcher),
	}
	// The uptime gauge reads the server's injected wall clock rather than
	// calling time.Now at scrape — the same clock-injection discipline the
	// deterministic packages use with sim time.
	cfg.Telemetry.GaugeFunc("serve_uptime_seconds",
		"seconds since the server was constructed", clock.Now)
	if cfg.Online.Enabled {
		// A misconfigured learner must not take serving down with it: log,
		// serve without it, and let the operator notice via GET /v1/online
		// (enabled=false) or OnlineManager() == nil.
		if err := s.startOnline(); err != nil {
			log.Printf("serve: online learning disabled: %v", err)
		}
	}
	return s
}

// Telemetry exposes the server's metric registry (used by topil-serve and
// tests).
func (s *Server) Telemetry() *telemetry.Registry { return s.tel }

// Registry exposes the model registry (used by conformance tests).
func (s *Server) Registry() *Registry { return s.reg }

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	route("GET /v1/healthz", s.handleHealthz)
	route("POST /v1/drain", s.handleDrain)
	route("GET /v1/models", s.handleModels)
	route("POST /v1/infer", s.handleInfer)
	route("POST /v1/sim", s.handleSim)
	route("GET /v1/jobs", s.handleJobs)
	route("GET /v1/jobs/{id}", s.handleJob)
	route("DELETE /v1/jobs/{id}", s.handleCancelJob)
	route("GET /v1/online", s.handleOnline)
	route("GET /v1/stats", s.handleStats)
	route("GET /v1/trace", s.handleTrace)
	route("GET /metrics", s.handleMetrics)
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Shutdown drains the service: the inference frontends serve what they have
// accepted, and the job runner finishes in-flight simulations until ctx
// expires (then cancels them at the next simulator tick).
func (s *Server) Shutdown(ctx context.Context) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	batchers := make([]*Batcher, 0, len(s.batchers))
	for _, b := range s.batchers {
		batchers = append(batchers, b)
	}
	s.mu.Unlock()
	for _, b := range batchers {
		b.Close()
	}
	s.runner.Shutdown(ctx)
	// After the runner drains: in-flight sim jobs record visited states
	// until they finish, so the sample log must outlive them.
	s.closeOnline()
}

// batcherFor returns (creating on first use) the per-model batcher. All
// requests against one model share one batcher — that is what lets
// independent clients coalesce into one device invocation.
func (s *Server) batcherFor(name string) (*Batcher, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if b := s.batchers[name]; b != nil {
		s.mu.Unlock()
		return b, nil
	}
	s.mu.Unlock()

	// The batcher binds its backend per batch through the registry's
	// version chain: a Swap takes effect at the next batch boundary, so
	// in-flight batches complete against the version they acquired and no
	// batch ever mixes versions.
	src, err := s.reg.Source(name)
	if err != nil {
		return nil, err
	}
	model, err := s.reg.Model(name)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if b := s.batchers[name]; b != nil {
		return b, nil
	}
	bcfg := s.cfg.Batch
	bcfg.Registry = s.tel
	bcfg.Name = name
	if s.online != nil && name == s.online.model {
		mgr := s.online.manager
		bcfg.OnShadow = func(sb ShadowBatch) {
			mgr.ObserveShadow(sb.ActiveVersion, sb.ShadowVersion, sb.Active, sb.Shadow)
		}
	}
	b := NewBatcherSource(src, model.InputDim(), bcfg)
	s.batchers[name] = b
	return b, nil
}

// --- handlers ---

// QueueHealth reports one bounded queue's fill in GET /v1/healthz.
type QueueHealth struct {
	Depth int `json:"depth"`
	Cap   int `json:"cap"`
}

// fill returns the queue's fill fraction in [0, 1].
func (q QueueHealth) fill() float64 {
	if q.Cap <= 0 {
		return 0
	}
	return float64(q.Depth) / float64(q.Cap)
}

// HealthResponse is the body of GET /v1/healthz: liveness plus the
// backpressure signals a cluster router sheds load on. Load is the worst
// queue-fill fraction in [0, 1].
type HealthResponse struct {
	Status   string      `json:"status"` // "ok" | "draining"
	Draining bool        `json:"draining"`
	Jobs     QueueHealth `json:"jobs"`
	Infer    QueueHealth `json:"infer"`
	Running  int         `json:"running"`
	Load     float64     `json:"load"`
}

// health assembles the current health snapshot.
func (s *Server) health() HealthResponse {
	h := HealthResponse{
		Status:   "ok",
		Draining: s.draining.Load(),
		Jobs:     QueueHealth{Depth: s.runner.QueueDepth(), Cap: s.runner.QueueCap()},
		Running:  s.runner.Stats().Running,
	}
	if h.Draining {
		h.Status = "draining"
	}
	s.mu.Lock()
	for _, b := range s.batchers {
		h.Infer.Depth += b.QueueDepth()
		h.Infer.Cap += b.QueueCap()
	}
	s.mu.Unlock()
	if h.Infer.Cap == 0 {
		// No batcher instantiated yet: report the configured bound so the
		// router's fill fractions are meaningful from the first poll.
		h.Infer.Cap = s.cfg.Batch.QueueCap
		if h.Infer.Cap <= 0 {
			h.Infer.Cap = DefaultBatcherConfig().QueueCap
		}
	}
	h.Load = h.Jobs.fill()
	if f := h.Infer.fill(); f > h.Load {
		h.Load = f
	}
	return h
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.health())
}

// handleDrain is the replica-side drain protocol: the first POST flips the
// server into draining (new POST /v1/infer and /v1/sim get 503 with a
// Retry-After hint; reads and in-flight jobs keep being served) and every
// POST returns the current health, so draining is idempotent and
// observable. A router drains a replica before retiring it.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	s.draining.Store(true)
	writeJSON(w, http.StatusOK, s.health())
}

// retryAfterSeconds derives the Retry-After hint from a queue's fill: an
// empty queue suggests an immediate retry (1 s floor), a full one the cap
// of 5 s — enough spread for closed-loop clients to desynchronize.
func retryAfterSeconds(depth, cap int) int {
	if cap <= 0 || depth < 0 {
		return 1
	}
	if depth > cap {
		depth = cap
	}
	return 1 + (4*depth)/cap
}

// writeRetryError writes an error response carrying a Retry-After header —
// the 429/503 contract: every shed response tells the client when to come
// back, derived from current queue depth.
func writeRetryError(w http.ResponseWriter, status int, err error, retryAfter int) {
	if retryAfter < 1 {
		retryAfter = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfter))
	writeError(w, status, err)
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	names, err := s.reg.List()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if names == nil {
		names = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"models": names})
}

// InferRequest is the body of POST /v1/infer.
type InferRequest struct {
	Model string `json:"model"`
	// Inputs holds one feature vector per inference. Each row is submitted
	// to the shared batcher individually, so rows coalesce with concurrent
	// requests from other clients.
	Inputs [][]float64 `json:"inputs"`
}

// InferResponse is the body of a successful POST /v1/infer.
type InferResponse struct {
	Model   string      `json:"model"`
	Outputs [][]float64 `json:"outputs"`
	// BatchSizes reports, per input row, the size of the coalesced device
	// batch that served it (>1 means coalescing with other requests).
	BatchSizes []int `json:"batchSizes"`
	// DeviceLatencyUs is the modelled NPU cost of the largest batch any
	// row rode in — the paper's near-constant invocation cost.
	DeviceLatencyUs float64 `json:"deviceLatencyUs"`
	WallUs          float64 `json:"wallUs"`
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	var req InferRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Model == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: missing model name"))
		return
	}
	if len(req.Inputs) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: empty inputs"))
		return
	}
	if len(req.Inputs) > 4096 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: %d inputs exceed the 4096 limit", len(req.Inputs)))
		return
	}
	if s.draining.Load() {
		writeRetryError(w, http.StatusServiceUnavailable, ErrDraining, 2)
		return
	}
	b, err := s.batcherFor(req.Model)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}

	start := time.Now()
	resp := InferResponse{
		Model:      req.Model,
		Outputs:    make([][]float64, len(req.Inputs)),
		BatchSizes: make([]int, len(req.Inputs)),
	}
	errs := make([]error, len(req.Inputs))
	var wg sync.WaitGroup
	var devMu sync.Mutex
	for i, in := range req.Inputs {
		wg.Add(1)
		go func(i int, in []float64) {
			defer wg.Done()
			out, info, err := b.Submit(r.Context(), in)
			if err != nil {
				errs[i] = err
				return
			}
			resp.Outputs[i] = out
			resp.BatchSizes[i] = info.BatchSize
			devMu.Lock()
			if us := float64(info.DeviceLatency) / float64(time.Microsecond); us > resp.DeviceLatencyUs {
				resp.DeviceLatencyUs = us
			}
			devMu.Unlock()
		}(i, in)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			if errors.Is(err, ErrOverloaded) {
				writeRetryError(w, statusFor(err), err,
					retryAfterSeconds(b.QueueDepth(), b.QueueCap()))
				return
			}
			writeError(w, statusFor(err), err)
			return
		}
	}
	resp.WallUs = float64(time.Since(start)) / float64(time.Microsecond)
	if s.online != nil && req.Model == s.online.model {
		s.online.recordInfer(req.Inputs, resp.Outputs)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleOnline serves the continual learner's status snapshot; when the
// learner is disabled it reports the zero status with enabled=false.
func (s *Server) handleOnline(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.onlineStatus())
}

func (s *Server) handleSim(w http.ResponseWriter, r *http.Request) {
	var req SimRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if s.draining.Load() {
		writeRetryError(w, http.StatusServiceUnavailable, ErrDraining, 2)
		return
	}
	// A router-minted job ID (consistent-hash sharding key) is honored so
	// GET /v1/jobs/{id} lands on the same replica.
	snap, err := s.runner.SubmitID(r.Header.Get(jobIDHeader), req)
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			writeRetryError(w, statusFor(err), err,
				retryAfterSeconds(s.runner.QueueDepth(), s.runner.QueueCap()))
			return
		}
		writeError(w, statusFor(err), err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+snap.ID)
	writeJSON(w, http.StatusAccepted, snap)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.runner.List()
	if jobs == nil {
		jobs = []JobSnapshot{}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"jobs": jobs})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.runner.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no such job"))
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.runner.Cancel(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no such job"))
		return
	}
	j, _ := s.runner.Get(id)
	writeJSON(w, http.StatusOK, j.Snapshot())
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	Endpoints map[string]EndpointSnapshot `json:"endpoints"`
	Batchers  map[string]BatcherStats     `json:"batchers"`
	Jobs      RunnerStats                 `json:"jobs"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	batchers := make(map[string]BatcherStats, len(s.batchers))
	for name, b := range s.batchers {
		batchers[name] = b.Stats()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, StatsResponse{
		Endpoints: s.metrics.Snapshot(),
		Batchers:  batchers,
		Jobs:      s.runner.Stats(),
	})
}

// handleMetrics serves the telemetry registry: Prometheus text exposition
// by default, the JSON dump with ?format=json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		_ = s.tel.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", telemetry.ContentType)
	_ = s.tel.WritePrometheus(w)
}

// handleTrace serves the bounded wall-time request-span ring as a Chrome
// trace (chrome://tracing, ui.perfetto.dev). Timestamps are seconds since
// server start on the injected wall clock.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	ts := telemetry.NewTraceSet()
	dst := ts.Tracer("serve")
	spans, _ := s.tracer.Spans()
	for _, sp := range spans {
		if sp.Dur <= 0 {
			dst.InstantAt(sp.Name, sp.Start)
			continue
		}
		dst.StartAt(sp.Name, sp.Start).EndAt(sp.Start + sp.Dur)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = ts.WriteChrome(w)
}

// --- helpers ---

// statusFor maps service errors to HTTP statuses: backpressure to 429,
// shutdown to 503, unknown models to 404, device-side inference failures
// to 502, everything else (validation) to 400.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed), errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrConflict):
		return http.StatusConflict
	case errors.Is(err, ErrNotFound), errors.Is(err, ErrVersionNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrInference):
		return http.StatusBadGateway
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusBadRequest
	}
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
