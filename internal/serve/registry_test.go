package serve

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/npu"
)

// writeModel saves a model into dir under name.json and returns it.
func writeModel(t *testing.T, dir, name string, sizes []int, seed int64) *nn.MLP {
	t.Helper()
	m := nn.NewMLP(sizes, seed)
	if err := core.SaveModel(m, filepath.Join(dir, name+".json")); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRegistryLoadCacheList(t *testing.T) {
	dir := t.TempDir()
	want := writeModel(t, dir, "model-1", []int{21, 16, 8}, 1)
	writeModel(t, dir, "model-2", []int{21, 16, 8}, 2)

	r := NewRegistry(dir)
	m, err := r.Model("model-1")
	if err != nil {
		t.Fatal(err)
	}
	if m.NumParams() != want.NumParams() {
		t.Errorf("loaded model has %d params, want %d", m.NumParams(), want.NumParams())
	}
	again, err := r.Model("model-1")
	if err != nil {
		t.Fatal(err)
	}
	if again != m {
		t.Error("second load returned a different instance (cache miss)")
	}

	names, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "model-1" || names[1] != "model-2" {
		t.Errorf("List() = %v, want [model-1 model-2]", names)
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	r := NewRegistry(t.TempDir())
	for _, name := range []string{"", "../evil", "a/b", `a\b`, "x..y"} {
		if _, err := r.Model(name); err == nil {
			t.Errorf("Model(%q) accepted", name)
		}
	}
	if _, err := r.Model("absent"); err == nil {
		t.Error("Model of a missing file accepted")
	}
}

// TestRegistryBackendConformance runs the npu Backend contract over the
// registry-backed serving device, including InferAsync agreement.
func TestRegistryBackendConformance(t *testing.T) {
	dir := t.TempDir()
	m := writeModel(t, dir, "model-1", []int{21, 32, 8}, 3)
	r := NewRegistry(dir)
	b, err := r.Backend("model-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := npu.Conformance(b, m, testInputs(6, 4)); err != nil {
		t.Fatal(err)
	}
	if b.Name() != "serve/model-1" {
		t.Errorf("backend name %q", b.Name())
	}
}
