package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/nn"
	"repro/internal/online"
	"repro/internal/workload"
)

// passLabeler labels every sim-origin sample with a one-hot of its action
// — an instant stand-in for the oracle in integration tests.
type passLabeler struct{}

func (passLabeler) Label(s online.Sample) ([]float64, bool, error) {
	if s.Origin != online.OriginSim {
		return nil, false, nil
	}
	y := make([]float64, 8)
	y[s.Action%8] = 1
	return y, true, nil
}

// settableReplay scripts the promotion-gate replay metrics.
type settableReplay struct {
	mu sync.Mutex
	m  online.ReplayMetrics
}

func (r *settableReplay) set(m online.ReplayMetrics) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m = m
}

func (r *settableReplay) fn(_ *nn.MLP, _ int64) (online.ReplayMetrics, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m, nil
}

// onlineTestServer builds a server with the continual learner wired to
// instant fakes (labeling and retraining are real pipeline steps, just
// cheap), plus an httptest frontend.
func onlineTestServer(t *testing.T, replay online.ReplayFunc) (*Server, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	writeModel(t, dir, "policy", []int{21, 16, 8}, 1)
	s := NewServer(Config{
		ModelsDir: dir,
		Workers:   2,
		QueueCap:  8,
		Online: OnlineConfig{
			Enabled:       true,
			Model:         "policy",
			Dir:           t.TempDir(),
			TrainInterval: 2 * time.Millisecond,
			ShadowWindow:  2,
			MinNewSamples: 1,
			Seed:          7,
			Labeler:       passLabeler{},
			Train: func(incumbent *nn.MLP, ds nn.Dataset, seed int64) (*nn.MLP, error) {
				return incumbent.Clone(), nil
			},
			Replay: replay,
		},
	})
	if s.OnlineManager() == nil {
		t.Fatal("online learner not running")
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// onlineStatusOf fetches and decodes GET /v1/online.
func onlineStatusOf(t *testing.T, ts *httptest.Server) online.Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/online")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/online = %d", resp.StatusCode)
	}
	var st online.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// runOnlineSim submits a short TOP-IL sim against the online model and
// waits for it to finish.
func runOnlineSim(t *testing.T, ts *httptest.Server, seed int64) {
	t.Helper()
	body, _ := json.Marshal(map[string]interface{}{
		"policy":   "TOP-IL",
		"model":    "policy",
		"duration": 3,
		"seed":     seed,
		"jobs": []workload.JobEntry{
			{Name: "adi", TotalInstr: 1e12, QoS: 1e9, Arrival: 0},
			{Name: "seidel-2d", TotalInstr: 1e12, QoS: 1e9, Arrival: 0},
		},
	})
	resp, err := http.Post(ts.URL+"/v1/sim", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/sim = %d", resp.StatusCode)
	}
	var snap JobSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		jr, err := http.Get(ts.URL + "/v1/jobs/" + snap.ID)
		if err != nil {
			t.Fatal(err)
		}
		var js JobSnapshot
		err = json.NewDecoder(jr.Body).Decode(&js)
		jr.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch js.State {
		case StateDone:
			return
		case StateFailed, StateCanceled:
			t.Fatalf("sim job ended %s: %s", js.State, js.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("sim job did not finish")
}

// inferOnce sends one infer batch against the online model.
func inferOnce(t *testing.T, ts *httptest.Server) {
	t.Helper()
	row := make([]float64, 21)
	row[0] = 0.5
	body, _ := json.Marshal(InferRequest{Model: "policy", Inputs: [][]float64{row, row}})
	resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/infer = %d", resp.StatusCode)
	}
}

// waitOnline polls /v1/online until cond holds.
func waitOnline(t *testing.T, ts *httptest.Server, what string, cond func(online.Status) bool) online.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var st online.Status
	for time.Now().Before(deadline) {
		st = onlineStatusOf(t, ts)
		if cond(st) {
			return st
		}
		time.Sleep(3 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; last status %+v", what, st)
	return st
}

// TestServerOnlineLifecycle drives the full continual-learning cycle over
// HTTP: a sim job records visited states, the loop labels and retrains,
// infer traffic shadow-scores the candidate, the gate promotes it, a
// second candidate with a strict baseline is promoted and then rolled
// back when live telemetry regresses past it.
func TestServerOnlineLifecycle(t *testing.T) {
	replay := &settableReplay{}
	// Generous baseline: no live result can regress past it, so the first
	// promotion sticks.
	replay.set(online.ReplayMetrics{ViolationFrac: 2.0, PeakTemp: 1e6})
	s, ts := onlineTestServer(t, replay.fn)
	defer s.Shutdown(t.Context())

	if st := onlineStatusOf(t, ts); !st.Enabled || st.Model != "policy" || st.ActiveVersion != 1 {
		t.Fatalf("initial status: %+v", st)
	}

	// Recorded → labeled → trained: the sim job feeds the recorder, the
	// loop retrains and stages v2 as shadow.
	runOnlineSim(t, ts, 1)
	st := waitOnline(t, ts, "candidate v2", func(st online.Status) bool {
		return st.CandidateVersion == 2
	})
	if st.SamplesRecorded == 0 || st.SamplesLabeled == 0 || st.TrainCycles == 0 {
		t.Fatalf("pipeline counters empty: %+v", st)
	}

	// Shadow → promoted: live infer traffic mirrors onto the candidate;
	// identical weights agree 100%, the replay gate passes, v2 goes live.
	for i := 0; i < 200; i++ {
		inferOnce(t, ts)
		if onlineStatusOf(t, ts).Promotions >= 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	st = waitOnline(t, ts, "promotion of v2", func(st online.Status) bool {
		return st.Promotions == 1 && st.ActiveVersion == 2
	})
	if st.PreviousVersion != 1 || st.CandidateVersion != 0 {
		t.Fatalf("post-promotion status: %+v", st)
	}

	// Auto-rollback on injected regression: the next candidate is promoted
	// against an impossible baseline, so the first live telemetry report
	// (every real sim result has violationFrac >= 0 > -1) rolls back.
	replay.set(online.ReplayMetrics{ViolationFrac: -1, PeakTemp: -100})
	runOnlineSim(t, ts, 2)
	waitOnline(t, ts, "candidate v3", func(st online.Status) bool {
		return st.CandidateVersion == 3
	})
	for i := 0; i < 200; i++ {
		inferOnce(t, ts)
		if onlineStatusOf(t, ts).Promotions >= 2 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	st = waitOnline(t, ts, "rollback to v2", func(st online.Status) bool {
		return st.Rollbacks == 1 && st.ActiveVersion == 2
	})
	if st.Promotions != 2 {
		t.Fatalf("post-rollback status: %+v", st)
	}

	// The infer path records visited states too (origin "infer" — skipped
	// by the labeler but journaled).
	if st.SamplesSkipped == 0 {
		t.Fatalf("infer-path states not recorded: %+v", st)
	}
}

// TestServerOnlineDisabledStatus pins the disabled-mode /v1/online shape.
func TestServerOnlineDisabledStatus(t *testing.T) {
	dir := t.TempDir()
	writeModel(t, dir, "policy", []int{21, 16, 8}, 1)
	s := NewServer(Config{ModelsDir: dir, Workers: 1, QueueCap: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(t.Context())
	if s.OnlineManager() != nil {
		t.Fatal("learner running without Online.Enabled")
	}
	st := onlineStatusOf(t, ts)
	if st.Enabled || st.Model != "" || st.ActiveVersion != 0 {
		t.Fatalf("disabled status: %+v", st)
	}
}

// TestServerOnlineBadConfigDoesNotKillServing pins the degradation mode:
// a misconfigured learner logs and disables itself; serving works.
func TestServerOnlineBadConfigDoesNotKillServing(t *testing.T) {
	dir := t.TempDir()
	writeModel(t, dir, "policy", []int{21, 16, 8}, 1)
	s := NewServer(Config{
		ModelsDir: dir, Workers: 1, QueueCap: 2,
		Online: OnlineConfig{Enabled: true}, // missing Model and Dir
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(t.Context())
	if s.OnlineManager() != nil {
		t.Fatal("misconfigured learner started anyway")
	}
	inferOnce(t, ts)
	if st := onlineStatusOf(t, ts); st.Enabled {
		t.Fatalf("bad config reports enabled: %+v", st)
	}
}

// TestServerOnlineTrainFailureKeepsServing is the serve-layer face of the
// trainer fault-injection satellite: a labeler that always errors plus a
// trainer that always panics never stop /v1/infer from answering and
// never swap the model, while failures surface in /v1/online.
func TestServerOnlineTrainFailureKeepsServing(t *testing.T) {
	dir := t.TempDir()
	writeModel(t, dir, "policy", []int{21, 16, 8}, 1)
	s := NewServer(Config{
		ModelsDir: dir,
		Workers:   2,
		QueueCap:  8,
		Online: OnlineConfig{
			Enabled:       true,
			Model:         "policy",
			Dir:           t.TempDir(),
			TrainInterval: 2 * time.Millisecond,
			MinNewSamples: 1,
			Seed:          7,
			Labeler:       passLabeler{},
			Train: func(incumbent *nn.MLP, ds nn.Dataset, seed int64) (*nn.MLP, error) {
				panic("injected trainer fault")
			},
			Replay: (&settableReplay{}).fn,
		},
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	defer s.Shutdown(t.Context())

	runOnlineSim(t, ts, 3)
	waitOnline(t, ts, "first train failure", func(st online.Status) bool {
		return st.TrainFailures >= 1
	})
	// Fresh samples trigger another attempt; it fails again, serving stays up.
	runOnlineSim(t, ts, 4)
	st := waitOnline(t, ts, "second train failure", func(st online.Status) bool {
		return st.TrainFailures >= 2
	})
	if st.ActiveVersion != 1 || st.CandidateVersion != 0 || st.Promotions != 0 {
		t.Fatalf("failed retrains touched the model: %+v", st)
	}
	// Serving is unaffected throughout.
	for i := 0; i < 5; i++ {
		inferOnce(t, ts)
	}
	if st := onlineStatusOf(t, ts); st.ActiveVersion != 1 {
		t.Fatalf("active version moved: %+v", st)
	}
}
