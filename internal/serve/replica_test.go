package serve

// Replica-mode tests: the drain protocol, Retry-After on shed responses,
// router-minted job IDs and the durable job-store contract (journaling +
// recovery) that internal/cluster builds on.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// memStore is an in-memory JobStore for unit tests; the durable file
// implementation (and its crash tests) live in internal/cluster.
type memStore struct {
	mu   sync.Mutex
	recs []JobRecord
	fail bool
}

func (s *memStore) Append(rec JobRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail {
		return errors.New("memStore: append disabled")
	}
	s.recs = append(s.recs, rec)
	return nil
}

func (s *memStore) Replay() ([]JobRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]JobRecord(nil), s.recs...), nil
}

// quickSim is a sim request that completes in well under a second.
func quickSimReq() SimRequest {
	return SimRequest{Policy: "GTS/ondemand", Duration: 1, NumJobs: 1, Rate: 2, InstrScale: 0.01}
}

func waitTerminal(t *testing.T, r *Runner, id string) JobSnapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := r.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if isTerminal(j.State()) {
			return j.Snapshot()
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobSnapshot{}
}

func TestRunnerJournalsTransitions(t *testing.T) {
	store := &memStore{}
	r := NewRunner(NewRegistry(t.TempDir()), 1, 4, nil, store)
	snap, err := r.SubmitID("c-test-0001", quickSimReq())
	if err != nil {
		t.Fatal(err)
	}
	if snap.ID != "c-test-0001" {
		t.Fatalf("submitted ID not honored: %q", snap.ID)
	}
	final := waitTerminal(t, r, snap.ID)
	if final.State != StateDone {
		t.Fatalf("job state = %s (%s)", final.State, final.Error)
	}
	r.Shutdown(context.Background())

	recs, _ := store.Replay()
	var states []JobState
	for _, rec := range recs {
		if rec.ID == snap.ID {
			states = append(states, rec.State)
		}
	}
	want := []JobState{StateQueued, StateRunning, StateDone}
	if len(states) != len(want) {
		t.Fatalf("journal states = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("journal states = %v, want %v", states, want)
		}
	}
	if recs[0].Req == nil || recs[0].Req.Policy != "GTS/ondemand" {
		t.Errorf("queued record lacks the request: %+v", recs[0])
	}
	if recs[len(recs)-1].Result == nil {
		t.Errorf("done record lacks the result")
	}
}

func TestRunnerRecoversFromStore(t *testing.T) {
	store := &memStore{}
	// Simulate a crashed replica's journal: one finished job, one that was
	// mid-flight (queued record only) when the process died.
	reqDone := quickSimReq()
	store.recs = []JobRecord{
		{ID: "c-a-0001", State: StateQueued, Req: &reqDone},
		{ID: "c-a-0001", State: StateRunning},
		{ID: "c-a-0001", State: StateDone, Result: &SimResult{Technique: "GTS/ondemand"}},
		{ID: "c-a-0002", State: StateQueued, Req: &reqDone},
		{ID: "c-a-0002", State: StateRunning},
	}
	r := NewRunner(NewRegistry(t.TempDir()), 1, 4, nil, store)
	defer r.Shutdown(context.Background())

	j, ok := r.Get("c-a-0001")
	if !ok || j.State() != StateDone {
		t.Fatalf("terminal job not restored: ok=%v", ok)
	}
	if snap := j.Snapshot(); snap.Result == nil || snap.Result.Technique != "GTS/ondemand" {
		t.Errorf("restored result missing: %+v", snap)
	}
	// The interrupted job must be re-executed to a terminal state.
	final := waitTerminal(t, r, "c-a-0002")
	if final.State != StateDone {
		t.Fatalf("interrupted job state = %s (%s)", final.State, final.Error)
	}
	// Runner-minted IDs must not collide with anything recovered.
	snap, err := r.Submit(quickSimReq())
	if err != nil {
		t.Fatal(err)
	}
	if snap.ID == "c-a-0001" || snap.ID == "c-a-0002" {
		t.Fatalf("recovered ID re-minted: %s", snap.ID)
	}
}

func TestRunnerSeqAdvancesPastRecoveredIDs(t *testing.T) {
	store := &memStore{}
	req := quickSimReq()
	store.recs = []JobRecord{
		{ID: "j-000041", State: StateQueued, Req: &req},
		{ID: "j-000041", State: StateDone, Result: &SimResult{}},
	}
	r := NewRunner(NewRegistry(t.TempDir()), 1, 4, nil, store)
	defer r.Shutdown(context.Background())
	snap, err := r.Submit(quickSimReq())
	if err != nil {
		t.Fatal(err)
	}
	if snap.ID != "j-000042" {
		t.Fatalf("post-recovery mint = %s, want j-000042", snap.ID)
	}
}

func TestSubmitIDConflictAndValidation(t *testing.T) {
	r := NewRunner(NewRegistry(t.TempDir()), 1, 4, nil, nil)
	defer r.Shutdown(context.Background())
	if _, err := r.SubmitID("dup-1", quickSimReq()); err != nil {
		t.Fatal(err)
	}
	_, err := r.SubmitID("dup-1", quickSimReq())
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("duplicate ID error = %v, want ErrConflict", err)
	}
	if statusFor(err) != http.StatusConflict {
		t.Errorf("conflict status = %d", statusFor(err))
	}
	for _, bad := range []string{"a/b", "..", strings.Repeat("x", 65), "a b"} {
		if _, err := r.SubmitID(bad, quickSimReq()); err == nil {
			t.Errorf("job ID %q accepted", bad)
		}
	}
}

func TestSubmitFailsWhenStoreFails(t *testing.T) {
	store := &memStore{fail: true}
	r := NewRunner(NewRegistry(t.TempDir()), 1, 4, nil, store)
	defer r.Shutdown(context.Background())
	if _, err := r.Submit(quickSimReq()); err == nil {
		t.Fatal("submission succeeded without a durable queued record")
	}
	if len(r.List()) != 0 {
		t.Errorf("unjournaled job is observable: %v", r.List())
	}
}

func TestDrainProtocol(t *testing.T) {
	_, ts, _ := newTestServer(t)

	resp, _ := postJSON(t, ts.URL+"/v1/drain", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: %d", resp.StatusCode)
	}
	var health HealthResponse
	getJSON(t, ts.URL+"/v1/healthz", &health)
	if !health.Draining || health.Status != "draining" {
		t.Fatalf("healthz after drain: %+v", health)
	}

	// New work is refused with 503 + Retry-After; reads still work.
	resp, _ = postJSON(t, ts.URL+"/v1/sim", quickSimReq())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("sim while draining: %d", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("draining 503 Retry-After = %q", resp.Header.Get("Retry-After"))
	}
	resp, _ = postJSON(t, ts.URL+"/v1/infer", InferRequest{Model: "model-1", Inputs: testInputs(1, 3)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("infer while draining: %d", resp.StatusCode)
	}
	if getJSON(t, ts.URL+"/v1/jobs", nil).StatusCode != http.StatusOK {
		t.Error("reads refused while draining")
	}
}

func TestOverloadCarriesRetryAfter(t *testing.T) {
	// One worker, capacity-1 queue: the first slow job occupies the
	// worker, the second fills the queue, the third is shed with 429.
	dir := t.TempDir()
	writeModel(t, dir, "model-1", []int{21, 32, 8}, 1)
	s := NewServer(Config{ModelsDir: dir, Workers: 1, QueueCap: 1})
	defer s.Shutdown(context.Background())
	// Heavy enough that the worker stays busy for seconds of wall time
	// (the engine simulates small workloads far faster than real time).
	slow := SimRequest{Policy: "GTS/ondemand", Duration: 86400, NumJobs: 512, Rate: 100, InstrScale: 100}
	if _, err := s.runner.Submit(slow); err != nil {
		t.Fatal(err)
	}
	// Let the single worker dequeue and start the hour-long job, then fill
	// the queue behind it so the next submission must be shed.
	time.Sleep(100 * time.Millisecond)
	for i := 0; i < 3; i++ {
		if _, err := s.runner.Submit(slow); errors.Is(err, ErrOverloaded) {
			break
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, _ := postJSON(t, ts.URL+"/v1/sim", quickSimReq())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded sim: %d", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 5 {
		t.Fatalf("429 Retry-After = %q, want 1..5", resp.Header.Get("Retry-After"))
	}
	// Drain budget exceeded on purpose: cancel the stuck jobs.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	s.Shutdown(ctx)
}

func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct{ depth, cap, want int }{
		{0, 16, 1}, {8, 16, 3}, {16, 16, 5}, {32, 16, 5}, {0, 0, 1}, {-1, 16, 1},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.depth, c.cap); got != c.want {
			t.Errorf("retryAfterSeconds(%d, %d) = %d, want %d", c.depth, c.cap, got, c.want)
		}
	}
}

func TestFoldRecordsTornJournal(t *testing.T) {
	req := quickSimReq()
	recs := []JobRecord{
		{ID: "a", State: StateQueued, Req: &req},
		{ID: "b", State: StateRunning}, // queued record lost: dropped
		{ID: "a", State: StateRunning},
	}
	folded := foldRecords(recs)
	if len(folded) != 1 || folded[0].id != "a" || folded[0].state != StateRunning {
		t.Fatalf("folded = %+v", folded)
	}
}
