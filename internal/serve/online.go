package serve

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/online"
)

// OnlineConfig wires internal/online's DAgger continual learner into the
// server: visited states from sim jobs and the infer path are recorded to
// a durable sample log, a background loop labels them via the oracle and
// retrains the model, and candidates are shadow-scored on live traffic
// before an atomic hot swap.
type OnlineConfig struct {
	// Enabled turns the continual learner on.
	Enabled bool
	// Model is the registry model to continually train. Required.
	Model string
	// Dir is the sample-log directory. Required.
	Dir string
	// TrainInterval spaces DAgger cycles (default 30s).
	TrainInterval time.Duration
	// ShadowWindow is the number of shadow-scored rows required before a
	// candidate is judged (default online.DefaultGate().Window).
	ShadowWindow int
	// MinAgreement is the candidate-vs-incumbent action agreement the gate
	// requires (default online.DefaultGate().MinAgreement; negative
	// disables the agreement check).
	MinAgreement float64
	// MinNewSamples gates retraining on fresh labeled examples per cycle.
	MinNewSamples int
	// SampleCap bounds the durable sample reservoir.
	SampleCap int
	// Seed drives the learner's seeded randomness.
	Seed int64
	// Labeler overrides the expert (default: the oracle on
	// online.QuickLabelConfig()).
	Labeler online.Labeler
	// Train overrides the retraining step (tests, fault injection).
	Train online.TrainFunc
	// Replay overrides the promotion-gate replay.
	Replay online.ReplayFunc
}

// onlineState is the server's continual-learning runtime.
type onlineState struct {
	model   string
	manager *online.Manager
	log     *online.SampleLog
	loop    *online.Loop

	// Latest live telemetry for the rollback monitor: the most recent
	// completed TOP-IL sim result against the online model.
	mu       sync.Mutex
	haveLive bool
	liveViol float64
	livePeak float64
}

// registryPublisher adapts the server's versioned model registry to
// online.Publisher for one model name.
type registryPublisher struct {
	reg  *Registry
	name string
}

func (p registryPublisher) Publish(m *nn.MLP, source string) (int, error) {
	return p.reg.Publish(p.name, m, source)
}
func (p registryPublisher) Swap(version int) (int, error) { return p.reg.Swap(p.name, version) }
func (p registryPublisher) SetShadow(version int) error   { return p.reg.SetShadow(p.name, version) }
func (p registryPublisher) ClearShadow()                  { p.reg.ClearShadow(p.name) }
func (p registryPublisher) ActiveVersion() (int, error)   { return p.reg.ActiveVersion(p.name) }
func (p registryPublisher) ActiveModel() (*nn.MLP, error) { return p.reg.Model(p.name) }

// startOnline builds the continual learner described by s.cfg.Online and
// hooks it into the job runner. Called from NewServer.
func (s *Server) startOnline() error {
	oc := s.cfg.Online
	if oc.Model == "" {
		return fmt.Errorf("serve: online learning requires a model name")
	}
	if oc.Dir == "" {
		return fmt.Errorf("serve: online learning requires a sample-log directory")
	}
	sampleLog, err := online.OpenSampleLog(oc.Dir, oc.SampleCap, oc.Seed)
	if err != nil {
		return err
	}
	labeler := oc.Labeler
	if labeler == nil {
		labeler = online.NewOracleLabeler(online.QuickLabelConfig())
	}
	mgr, err := online.NewManager(online.ManagerConfig{
		Model:         oc.Model,
		Publisher:     registryPublisher{reg: s.reg, name: oc.Model},
		Labeler:       labeler,
		Log:           sampleLog,
		Seed:          oc.Seed,
		MinNewSamples: oc.MinNewSamples,
		Train:         oc.Train,
		Replay:        oc.Replay,
		Gate:          online.GateConfig{Window: oc.ShadowWindow, MinAgreement: oc.MinAgreement},
		Metrics:       online.NewMetrics(s.tel, oc.Model),
	})
	if err != nil {
		sampleLog.Close()
		return err
	}
	st := &onlineState{model: oc.Model, manager: mgr, log: sampleLog}
	st.loop = online.StartLoop(online.LoopConfig{
		Interval:  oc.TrainInterval,
		Manager:   mgr,
		Telemetry: st.liveTelemetry,
		OnError:   func(err error) { log.Printf("serve: online: %v", err) },
	})
	s.online = st
	// Sim jobs against the online model feed the recorder; completed runs
	// feed live QoS/thermal telemetry to the rollback monitor.
	s.runner.SetObserve(st.observeSim)
	s.runner.SetOnResult(st.recordResult)
	return nil
}

// OnlineManager exposes the continual learner (nil when disabled) for
// tests and the smoke driver.
func (s *Server) OnlineManager() *online.Manager {
	if s.online == nil {
		return nil
	}
	return s.online.manager
}

// onlineStatus is the /v1/online snapshot; a disabled learner reports the
// zero status with enabled=false.
func (s *Server) onlineStatus() online.Status {
	if s.online == nil {
		return online.Status{}
	}
	return s.online.manager.Status()
}

// closeOnline stops the training loop and releases the sample log.
func (s *Server) closeOnline() {
	if s.online == nil {
		return
	}
	s.online.loop.Close()
	if err := s.online.log.Close(); err != nil {
		log.Printf("serve: online sample log close: %v", err)
	}
}

// observeSim records every inference epoch of a sim job against the online
// model: one visited state per application-of-interest row, tagged with
// the scenario context the oracle labeler needs. Observation slices are
// reused by the simulator, so everything is copied here.
func (o *onlineState) observeSim(model string, obs core.EpochObservation) {
	if model != o.model {
		return
	}
	for k := range obs.Rows {
		aoi := obs.Apps[k]
		s := online.Sample{
			Origin:       online.OriginSim,
			AoI:          aoi.Name,
			Features:     append([]float64(nil), obs.Rows[k]...),
			Action:       obs.Chosen[k],
			QoS:          aoi.QoS,
			ClusterFreqs: append([]float64(nil), obs.ClusterFreqs...),
		}
		for j, a := range obs.Apps {
			if j == k {
				continue
			}
			s.Background = append(s.Background, online.BackgroundRef{
				Name: a.Name, Core: int(a.Core),
			})
		}
		if err := o.manager.Record(s); err != nil {
			log.Printf("serve: online record: %v", err)
			return
		}
	}
}

// recordInfer records the infer path's visited states (carrying no
// scenario context — the labeler skips them, but the state distribution is
// journaled alongside the policy's chosen actions).
func (o *onlineState) recordInfer(inputs, outputs [][]float64) {
	for i := range inputs {
		if outputs[i] == nil {
			continue
		}
		s := online.Sample{
			Origin:   online.OriginInfer,
			Features: append([]float64(nil), inputs[i]...),
			Action:   argmaxRow(outputs[i]),
		}
		if err := o.manager.Record(s); err != nil {
			log.Printf("serve: online record: %v", err)
			return
		}
	}
}

// argmaxRow returns the index of the largest rating (first on ties).
func argmaxRow(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

// recordResult folds a completed TOP-IL sim result against the online
// model into the live-telemetry window the rollback monitor polls.
func (o *onlineState) recordResult(model string, res *SimResult) {
	if model != o.model || res == nil || len(res.Apps) == 0 {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.haveLive = true
	o.liveViol = float64(res.Violations) / float64(len(res.Apps))
	o.livePeak = res.PeakTemp
}

// liveTelemetry is the loop's rollback-monitor probe.
func (o *onlineState) liveTelemetry() (violationFrac, peakTemp float64, ok bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.liveViol, o.livePeak, o.haveLive
}
