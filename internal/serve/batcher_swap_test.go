package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/npu"
)

// stampBackend answers every row with its version stamp — any mixed-version
// batch would deliver a row whose stamp disagrees with SubmitInfo.
type stampBackend struct{ version int }

func (s *stampBackend) Name() string { return "test/stamp" }

func (s *stampBackend) Infer(batch [][]float64) [][]float64 {
	out := make([][]float64, len(batch))
	for i := range batch {
		out[i] = []float64{float64(s.version)}
	}
	return out
}

func (s *stampBackend) Latency(int) time.Duration { return 0 }

// swapSource is a BackendSource whose active (and optional shadow) backend
// can be swapped atomically, like the registry's ModelSource.
type swapSource struct {
	active atomic.Pointer[stampBackend]
	shadow atomic.Pointer[stampBackend]
}

func (s *swapSource) Acquire() (npu.Backend, int) {
	a := s.active.Load()
	return a, a.version
}

func (s *swapSource) Shadow() (npu.Backend, int, bool) {
	sh := s.shadow.Load()
	if sh == nil {
		return nil, 0, false
	}
	return sh, sh.version, true
}

// TestBatcherNoMixedBatchesAcrossSwaps hammers concurrent inference across
// several hot swaps under -race: every delivered row must carry the stamp
// of the version SubmitInfo reports — no batch is ever split between
// versions, no request is dropped.
func TestBatcherNoMixedBatchesAcrossSwaps(t *testing.T) {
	src := &swapSource{}
	src.active.Store(&stampBackend{version: 1})
	b := NewBatcherSource(src, 0, BatcherConfig{
		MaxBatch: 8, MaxWait: 200 * time.Microsecond, QueueCap: 4096, MaxInflight: 4,
	})
	defer b.Close()

	const clients = 16
	const perClient = 300
	const total = clients * perClient
	var served [total]int32 // version that served each request
	var done atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			for i := 0; i < perClient; i++ {
				out, info, err := b.Submit(context.Background(), []float64{1})
				if err != nil {
					t.Errorf("client %d request %d: %v", c, i, err)
					return
				}
				if info.ModelVersion < 1 || info.ModelVersion > 4 {
					t.Errorf("served by version %d, want 1..4", info.ModelVersion)
					return
				}
				if int(out[0]) != info.ModelVersion {
					t.Errorf("row stamped v%d but SubmitInfo says v%d — mixed batch",
						int(out[0]), info.ModelVersion)
					return
				}
				served[c*perClient+i] = int32(info.ModelVersion)
				done.Add(1)
			}
		}(c)
	}

	// Three hot swaps interleaved with the hammer: each waits until a
	// quarter of the load has been served, so every version serves traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for v := 2; v <= 4; v++ {
			for done.Load() < int64(total*(v-1)/4) {
				time.Sleep(50 * time.Microsecond)
			}
			src.active.Store(&stampBackend{version: v})
		}
	}()
	close(start)
	wg.Wait()

	versions := map[int32]int{}
	for _, v := range served {
		versions[v]++
	}
	if versions[0] > 0 {
		t.Fatalf("%d requests unserved", versions[0])
	}
	if len(versions) < 2 {
		t.Fatalf("only versions %v observed; swaps did not interleave with the load", versions)
	}
}

// TestBatcherShadowMirroring checks the mirror path: the shadow backend
// scores the same inputs, its predictions reach OnShadow, and what clients
// receive is always the active version's answer.
func TestBatcherShadowMirroring(t *testing.T) {
	src := &swapSource{}
	src.active.Store(&stampBackend{version: 3})
	src.shadow.Store(&stampBackend{version: 7})

	var mu sync.Mutex
	var got []ShadowBatch
	b := NewBatcherSource(src, 0, BatcherConfig{
		MaxBatch: 4, MaxWait: 100 * time.Microsecond, QueueCap: 64, MaxInflight: 2,
		OnShadow: func(sb ShadowBatch) {
			mu.Lock()
			got = append(got, sb)
			mu.Unlock()
		},
	})

	for i := 0; i < 20; i++ {
		out, info, err := b.Submit(context.Background(), []float64{float64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if int(out[0]) != 3 || info.ModelVersion != 3 {
			t.Fatalf("client got stamp %v from v%d — shadow predictions served", out, info.ModelVersion)
		}
	}
	b.Close() // waits for in-flight dispatches, so every mirror has fired

	mu.Lock()
	defer mu.Unlock()
	if len(got) == 0 {
		t.Fatal("no shadow batches observed")
	}
	rows := 0
	for _, sb := range got {
		if sb.ActiveVersion != 3 || sb.ShadowVersion != 7 {
			t.Fatalf("shadow batch versions %d/%d, want 3/7", sb.ActiveVersion, sb.ShadowVersion)
		}
		if len(sb.Inputs) != len(sb.Active) || len(sb.Inputs) != len(sb.Shadow) {
			t.Fatalf("ragged shadow batch: %d inputs, %d active, %d shadow",
				len(sb.Inputs), len(sb.Active), len(sb.Shadow))
		}
		for i := range sb.Inputs {
			if int(sb.Active[i][0]) != 3 || int(sb.Shadow[i][0]) != 7 {
				t.Fatal("shadow batch rows carry wrong stamps")
			}
		}
		rows += len(sb.Inputs)
	}
	if rows != 20 {
		t.Fatalf("shadow scored %d rows, want all 20", rows)
	}
}

// TestBatcherShadowPanicIsolated: a broken candidate must not disturb
// serving — the active answers still flow, OnShadow simply never fires.
func TestBatcherShadowPanicIsolated(t *testing.T) {
	src := &swapSource{}
	src.active.Store(&stampBackend{version: 1})
	src.shadow.Store(&stampBackend{version: -1}) // see panicShadow below
	b := NewBatcherSource(&panicShadow{swapSource: src}, 0, BatcherConfig{
		MaxBatch: 4, MaxWait: 100 * time.Microsecond, QueueCap: 64, MaxInflight: 2,
		OnShadow: func(ShadowBatch) { t.Error("OnShadow fired for a panicking shadow") },
	})
	defer b.Close()
	for i := 0; i < 8; i++ {
		out, _, err := b.Submit(context.Background(), []float64{1})
		if err != nil {
			t.Fatal(err)
		}
		if int(out[0]) != 1 {
			t.Fatalf("active answer corrupted: %v", out)
		}
	}
}

// panicShadow serves the active backend normally but hands out a shadow
// that panics on Infer.
type panicShadow struct{ *swapSource }

func (p *panicShadow) Shadow() (npu.Backend, int, bool) { return panicBackend{}, 99, true }

type panicBackend struct{}

func (panicBackend) Name() string                  { return "test/panic" }
func (panicBackend) Infer([][]float64) [][]float64 { panic("candidate broken") }
func (panicBackend) Latency(int) time.Duration     { return 0 }
