package serve

import (
	"sort"
	"sync"
	"time"
)

// latencyBuckets are the histogram bucket upper bounds. Exponential spacing
// from 50 µs to ~26 s covers both the sub-millisecond inference path and
// multi-second simulation jobs with bounded memory.
var latencyBuckets = func() []time.Duration {
	var b []time.Duration
	for d := 50 * time.Microsecond; d < 30*time.Second; d *= 2 {
		b = append(b, d)
	}
	return b
}()

// Histogram is a fixed-bucket latency histogram safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	counts []uint64
	over   uint64 // observations above the last bucket
	total  uint64
	sum    time.Duration
	max    time.Duration
}

// NewHistogram creates an empty histogram over latencyBuckets.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, len(latencyBuckets))}
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.total++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	i := sort.Search(len(latencyBuckets), func(i int) bool { return d <= latencyBuckets[i] })
	if i == len(latencyBuckets) {
		h.over++
		return
	}
	h.counts[i]++
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the containing bucket. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	rank := q * float64(h.total)
	cum := 0.0
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			lo := time.Duration(0)
			if i > 0 {
				lo = latencyBuckets[i-1]
			}
			hi := latencyBuckets[i]
			frac := (rank - cum) / float64(c)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum = next
	}
	return h.max
}

// Snapshot returns the aggregate counters.
func (h *Histogram) Snapshot() HistogramSnapshot {
	p50 := h.Quantile(0.50)
	p95 := h.Quantile(0.95)
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.total, MaxMs: ms(h.max), P50Ms: ms(p50), P95Ms: ms(p95)}
	if h.total > 0 {
		s.MeanMs = ms(h.sum / time.Duration(h.total))
	}
	return s
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// HistogramSnapshot is the JSON form of a Histogram.
type HistogramSnapshot struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"meanMs"`
	P50Ms  float64 `json:"p50Ms"`
	P95Ms  float64 `json:"p95Ms"`
	MaxMs  float64 `json:"maxMs"`
}

// EndpointStats accumulates per-endpoint request counters.
type EndpointStats struct {
	mu      sync.Mutex
	count   uint64
	errors  uint64 // 4xx
	faults  uint64 // 5xx
	latency *Histogram
}

// EndpointSnapshot is the JSON form of EndpointStats.
type EndpointSnapshot struct {
	Count   uint64            `json:"count"`
	Errors  uint64            `json:"errors"`
	Faults  uint64            `json:"faults"`
	Latency HistogramSnapshot `json:"latency"`
}

// Metrics tracks request statistics per endpoint pattern.
type Metrics struct {
	mu        sync.Mutex
	endpoints map[string]*EndpointStats
}

// NewMetrics creates an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{endpoints: make(map[string]*EndpointStats)}
}

// endpoint returns (creating on demand) the stats for a pattern.
func (m *Metrics) endpoint(pattern string) *EndpointStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.endpoints[pattern]
	if s == nil {
		s = &EndpointStats{latency: NewHistogram()}
		m.endpoints[pattern] = s
	}
	return s
}

// Record registers one served request.
func (m *Metrics) Record(pattern string, status int, d time.Duration) {
	s := m.endpoint(pattern)
	s.mu.Lock()
	s.count++
	switch {
	case status >= 500:
		s.faults++
	case status >= 400:
		s.errors++
	}
	s.mu.Unlock()
	s.latency.Observe(d)
}

// Snapshot returns all endpoint counters keyed by pattern.
func (m *Metrics) Snapshot() map[string]EndpointSnapshot {
	m.mu.Lock()
	patterns := make([]string, 0, len(m.endpoints))
	for p := range m.endpoints {
		patterns = append(patterns, p)
	}
	m.mu.Unlock()
	out := make(map[string]EndpointSnapshot, len(patterns))
	for _, p := range patterns {
		s := m.endpoint(p)
		lat := s.latency.Snapshot()
		s.mu.Lock()
		out[p] = EndpointSnapshot{Count: s.count, Errors: s.errors, Faults: s.faults, Latency: lat}
		s.mu.Unlock()
	}
	return out
}
