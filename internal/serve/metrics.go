package serve

import (
	"time"

	"repro/internal/telemetry"
)

// latencyBuckets are the request-latency histogram bounds in seconds:
// exponential spacing from 50 µs to ~26 s covers both the sub-millisecond
// inference path and multi-second simulation jobs with bounded memory.
var latencyBuckets = telemetry.ExpBuckets(50e-6, 2, 20)

// ms converts a duration to fractional milliseconds for JSON snapshots.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// secToMs converts seconds (the registry's base unit) to milliseconds.
func secToMs(s float64) float64 { return s * 1e3 }

// HistogramSnapshot is the JSON latency summary in /v1/stats, derived
// from a telemetry.Histogram at snapshot time.
type HistogramSnapshot struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"meanMs"`
	P50Ms  float64 `json:"p50Ms"`
	P95Ms  float64 `json:"p95Ms"`
	MaxMs  float64 `json:"maxMs"`
}

// histogramSnapshot summarizes a registry histogram of seconds.
func histogramSnapshot(h *telemetry.Histogram) HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.Count(),
		P50Ms: secToMs(h.Quantile(0.50)),
		P95Ms: secToMs(h.Quantile(0.95)),
		MaxMs: secToMs(h.Max()),
	}
	if s.Count > 0 {
		s.MeanMs = secToMs(h.Sum() / float64(s.Count))
	}
	return s
}

// EndpointSnapshot is the per-endpoint JSON block of /v1/stats.
type EndpointSnapshot struct {
	Count   uint64            `json:"count"`
	Errors  uint64            `json:"errors"`
	Faults  uint64            `json:"faults"`
	Latency HistogramSnapshot `json:"latency"`
}

// Metrics tracks request statistics per endpoint pattern. It is a thin
// view over two telemetry families —
//
//	http_requests_total{route,class}
//	http_request_duration_seconds{route}
//
// — shared between the Prometheus exposition on GET /metrics and the
// legacy JSON on GET /v1/stats, which Snapshot rebuilds in its original
// shape. The previous package-private histogram (a linear bucket scan
// under one mutex, serializing every request's Record) is gone: telemetry
// histograms use atomic per-bucket counters.
type Metrics struct {
	requests *telemetry.CounterVec
	latency  *telemetry.HistogramVec
}

// NewMetrics creates the request metrics over the given registry. A nil
// registry gets a private one, so the snapshot path works standalone.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &Metrics{
		requests: reg.CounterVec("http_requests_total",
			"served requests by route and status class", "route", "class"),
		latency: reg.HistogramVec("http_request_duration_seconds",
			"request latency by route", latencyBuckets, "route"),
	}
}

// statusClass buckets an HTTP status into its class label.
func statusClass(status int) string {
	switch status / 100 {
	case 1:
		return "1xx"
	case 2:
		return "2xx"
	case 3:
		return "3xx"
	case 4:
		return "4xx"
	case 5:
		return "5xx"
	default:
		return "other"
	}
}

// Record registers one served request.
func (m *Metrics) Record(pattern string, status int, d time.Duration) {
	if d < 0 {
		d = 0
	}
	m.requests.With(pattern, statusClass(status)).Inc()
	m.latency.With(pattern).Observe(d.Seconds())
}

// Snapshot returns all endpoint counters keyed by pattern, in the JSON
// shape /v1/stats has always served.
func (m *Metrics) Snapshot() map[string]EndpointSnapshot {
	out := make(map[string]EndpointSnapshot)
	m.latency.Each(func(labels []string, h *telemetry.Histogram) {
		route := labels[0]
		s := out[route]
		s.Latency = histogramSnapshot(h)
		out[route] = s
	})
	m.requests.Each(func(labels []string, c *telemetry.Counter) {
		route, class := labels[0], labels[1]
		s := out[route]
		n := uint64(c.Value())
		s.Count += n
		switch class {
		case "4xx":
			s.Errors += n
		case "5xx":
			s.Faults += n
		}
		out[route] = s
	})
	return out
}
