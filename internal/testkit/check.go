package testkit

import (
	"fmt"
	"math"

	"repro/internal/features"
	"repro/internal/platform"
	"repro/internal/sim"
)

// CheckContext is the state handed to a Check: the run's configuration
// (whose Thermal network is the live engine network), the policy-facing
// environment, and — for Final checks only — the finished Result.
type CheckContext struct {
	Cfg    sim.Config
	Env    *sim.Env
	Result *sim.Result // nil during per-tick checks
}

// Check is one reusable invariant. Tick runs periodically during a
// simulation (nil = final-only), Final runs once on the Result (nil =
// tick-only). Check instances may be stateful (closures tracking history),
// so obtain a fresh suite from InvariantChecks per run.
type Check struct {
	Name string
	Doc  string

	Tick  func(*CheckContext) error
	Final func(*CheckContext) error
}

// noiseSlackC returns the sensor-reading tolerance in °C implied by the
// configured sensor noise: six standard deviations plus a small epsilon.
func noiseSlackC(cfg sim.Config) float64 {
	return 6*cfg.SensorNoise + 1e-6
}

// InvariantChecks returns a fresh instance of the paper-invariant suite.
// Every check encodes a property the paper's claims rest on; the suite is
// run against the fig-suite scenarios (internal/experiments) and against
// adversarial chaos runs, where "the happy path holds" is not evidence.
func InvariantChecks() []Check {
	return []Check{
		tempBounded(),
		freqLadder(),
		mappingPartition(),
		sensorTracksNetwork(),
		progressSane(),
		energyAccounting(),
		utilBounded(),
		throttleBounded(),
		violationsConsistent(),
		qosMonotoneVF(),
		permutationEquivariant(),
	}
}

// tempBounded: temperatures stay finite, above ambient (cooling can never
// push a passive die below its environment) and below silicon limits.
func tempBounded() Check {
	const meltC = 200.0
	return Check{
		Name: "temp-bounded",
		Doc:  "sensor and network temperatures are finite, >= ambient, < 200 °C",
		Tick: func(c *CheckContext) error {
			slack := noiseSlackC(c.Cfg)
			t := c.Env.Temp()
			if math.IsNaN(t) || math.IsInf(t, 0) {
				return fmt.Errorf("sensor temperature %v not finite", t)
			}
			if t < c.Cfg.Thermal.TAmb-slack || t > meltC+slack {
				return fmt.Errorf("sensor %.2f °C outside [ambient %.2f, %.0f]",
					t, c.Cfg.Thermal.TAmb, meltC)
			}
			for i := range c.Cfg.Thermal.Nodes {
				v := c.Cfg.Thermal.Temp(i)
				if math.IsNaN(v) || v < c.Cfg.Thermal.TAmb-1e-6 || v > meltC {
					return fmt.Errorf("node %d at %.2f °C outside [ambient %.2f, %.0f]",
						i, v, c.Cfg.Thermal.TAmb, meltC)
				}
			}
			return nil
		},
		Final: func(c *CheckContext) error {
			r := c.Result
			if math.IsNaN(r.AvgTemp) || math.IsNaN(r.PeakTemp) {
				return fmt.Errorf("NaN result temperatures")
			}
			if r.Duration > 0 && r.PeakTemp < r.AvgTemp-1e-9 {
				return fmt.Errorf("peak %.3f °C below average %.3f °C", r.PeakTemp, r.AvgTemp)
			}
			return nil
		},
	}
}

// freqLadder: the per-cluster requested VF level never leaves the OPP
// table, no matter what a (possibly chaotic) manager requested.
func freqLadder() Check {
	return Check{
		Name: "freq-ladder",
		Doc:  "per-cluster requested VF level stays inside the OPP table",
		Tick: func(c *CheckContext) error {
			for ci, cl := range c.Env.Platform().Clusters {
				idx := c.Env.ClusterFreqIndex(ci)
				if idx < 0 || idx >= cl.NumOPPs() {
					return fmt.Errorf("cluster %d at VF level %d, ladder [0,%d)",
						ci, idx, cl.NumOPPs())
				}
				f := c.Env.ClusterFreq(ci)
				if f < cl.MinFreq()-1 || f > cl.MaxFreq()+1 {
					return fmt.Errorf("cluster %d at %.0f Hz outside [%.0f, %.0f]",
						ci, f, cl.MinFreq(), cl.MaxFreq())
				}
			}
			return nil
		},
	}
}

// mappingPartition: every running application is mapped to exactly one
// core, and the per-core occupancy lists agree with the per-app view —
// migrations must never duplicate or lose an application.
func mappingPartition() Check {
	return Check{
		Name: "mapping-partition",
		Doc:  "running applications partition across cores (no loss, no duplication)",
		Tick: func(c *CheckContext) error {
			apps := c.Env.Apps()
			fromApps := map[sim.AppID]int{}
			for _, a := range apps {
				if _, dup := fromApps[a.ID]; dup {
					return fmt.Errorf("app %d appears twice in Apps()", a.ID)
				}
				fromApps[a.ID] = int(a.Core)
			}
			seen := 0
			for ci := 0; ci < c.Env.Platform().NumCores(); ci++ {
				for _, id := range c.Env.AppsOnCore(platform.CoreID(ci)) {
					core, ok := fromApps[id]
					if !ok {
						return fmt.Errorf("core %d lists unknown app %d", ci, id)
					}
					if core != ci {
						return fmt.Errorf("app %d on core list %d but reports core %d", id, ci, core)
					}
					seen++
				}
			}
			if seen != len(apps) {
				return fmt.Errorf("core lists hold %d apps, Apps() reports %d", seen, len(apps))
			}
			return nil
		},
	}
}

// sensorTracksNetwork: the sensor reading is the network's hottest node
// modulo configured noise — it cannot invent temperatures. The sample is
// up to one sensor period stale, so the upper bound is the larger of the
// current and previously observed network maxima plus a small transient
// slack (the check is stateful; skip the first observation, which has no
// history to bound staleness against).
func sensorTracksNetwork() Check {
	prevMax := 0.0
	first := true
	return Check{
		Name: "sensor-tracks-network",
		Doc:  "the 20 Hz sensor reading stays within noise slack of the network's hottest node",
		Tick: func(c *CheckContext) error {
			slack := noiseSlackC(c.Cfg) + 0.5
			max := c.Cfg.Thermal.Max()
			bound := max
			if !first && prevMax > bound {
				bound = prevMax
			}
			skip := first
			prevMax, first = max, false
			t := c.Env.Temp()
			if t < c.Cfg.Thermal.TAmb-slack {
				return fmt.Errorf("sensor %.2f °C below ambient %.2f °C - %.2f",
					t, c.Cfg.Thermal.TAmb, slack)
			}
			if !skip && t > bound+slack {
				return fmt.Errorf("sensor %.2f °C above network maximum %.2f °C + %.2f",
					t, bound, slack)
			}
			return nil
		},
	}
}

// progressSane: per-application observables are finite and non-negative,
// and an application's lifetime never runs backwards. Stateful.
func progressSane() Check {
	lastSince := map[sim.AppID]float64{}
	return Check{
		Name: "progress-sane",
		Doc:  "per-app IPS/L2DPS finite and >= 0; lifetimes monotone",
		Tick: func(c *CheckContext) error {
			for _, a := range c.Env.Apps() {
				if a.IPS < 0 || math.IsNaN(a.IPS) || a.L2DPS < 0 || math.IsNaN(a.L2DPS) {
					return fmt.Errorf("app %d (%s): IPS %g L2DPS %g", a.ID, a.Name, a.IPS, a.L2DPS)
				}
				if prev, ok := lastSince[a.ID]; ok && a.SinceStart < prev-1e-9 {
					return fmt.Errorf("app %d lifetime went backwards: %g -> %g",
						a.ID, prev, a.SinceStart)
				}
				lastSince[a.ID] = a.SinceStart
			}
			return nil
		},
		Final: func(c *CheckContext) error {
			for _, a := range c.Result.Apps {
				if a.MeanIPS < 0 || math.IsNaN(a.MeanIPS) {
					return fmt.Errorf("app %s: mean IPS %g", a.Name, a.MeanIPS)
				}
				if a.ActiveSecs < 0 {
					return fmt.Errorf("app %s: negative active time %g s", a.Name, a.ActiveSecs)
				}
			}
			return nil
		},
	}
}

// energyAccounting: energy is non-negative, includes the always-on uncore
// floor, and busy core-time never exceeds platform capacity.
func energyAccounting() Check {
	return Check{
		Name: "energy-accounting",
		Doc:  "energy >= uncore floor, per-cluster energies >= 0, CPU time <= capacity",
		Final: func(c *CheckContext) error {
			r := c.Result
			for ci, e := range r.EnergyJ {
				if e < 0 || math.IsNaN(e) {
					return fmt.Errorf("cluster %d energy %g J", ci, e)
				}
			}
			if r.UncoreEnergyJ < 0 {
				return fmt.Errorf("uncore energy %g J", r.UncoreEnergyJ)
			}
			floor := c.Cfg.Power.Uncore * r.Duration
			if r.TotalEnergyJ() < floor-1e-6 {
				return fmt.Errorf("total energy %.6f J below uncore floor %.6f J",
					r.TotalEnergyJ(), floor)
			}
			cap := r.Duration*float64(c.Env.Platform().NumCores()) + 1e-6
			if got := r.TotalCPUTime(); got > cap {
				return fmt.Errorf("busy core-time %.6f s exceeds capacity %.6f s", got, cap)
			}
			for _, lv := range r.CPUTime {
				for _, v := range lv {
					if v < 0 {
						return fmt.Errorf("negative CPU-time bucket %g s", v)
					}
				}
			}
			return nil
		},
	}
}

// utilBounded: utilization is a fraction of cores.
func utilBounded() Check {
	return Check{
		Name: "util-bounded",
		Doc:  "0 <= AvgUtil <= PeakUtil <= 1",
		Final: func(c *CheckContext) error {
			r := c.Result
			if r.AvgUtil < 0 || r.PeakUtil > 1+1e-9 || r.AvgUtil > r.PeakUtil+1e-9 {
				return fmt.Errorf("utilization out of order: avg %g peak %g", r.AvgUtil, r.PeakUtil)
			}
			return nil
		},
	}
}

// throttleBounded: DTM cannot throttle for longer than the run (plus one
// DTM period of bookkeeping granularity).
func throttleBounded() Check {
	return Check{
		Name: "throttle-bounded",
		Doc:  "0 <= ThrottleSeconds <= Duration + one DTM period",
		Final: func(c *CheckContext) error {
			r := c.Result
			if r.ThrottleSeconds < 0 || r.ThrottleSeconds > r.Duration+c.Cfg.DTM.Period+1e-9 {
				return fmt.Errorf("throttle time %g s over a %g s run", r.ThrottleSeconds, r.Duration)
			}
			if r.OverheadSeconds < 0 || r.OverheadSeconds > r.Duration+1e-9 {
				return fmt.Errorf("overhead %g s over a %g s run", r.OverheadSeconds, r.Duration)
			}
			return nil
		},
	}
}

// violationsConsistent: the violation counter equals the per-app flags.
func violationsConsistent() Check {
	return Check{
		Name: "violations-consistent",
		Doc:  "Result.Violations recounts Apps[].Violated; ViolationFrac in [0,1]",
		Final: func(c *CheckContext) error {
			r := c.Result
			n := 0
			for _, a := range r.Apps {
				if a.Violated {
					n++
				}
			}
			if n != r.Violations {
				return fmt.Errorf("violations %d, per-app flags count %d", r.Violations, n)
			}
			if f := r.ViolationFrac(); f < 0 || f > 1 {
				return fmt.Errorf("violation fraction %g", f)
			}
			return nil
		},
	}
}

// qosMonotoneVF: raising a QoS target never lowers the VF step chosen by
// the Eq. 1 frequency estimator the DVFS loop is built on — the
// metamorphic property behind "the 50 ms loop converges to the minimum
// satisfying level". Checked against the platform's real OPP tables over
// a deterministic grid of operating points.
func qosMonotoneVF() Check {
	return Check{
		Name: "qos-monotone-vf",
		Doc:  "Eq. 1: the estimated minimum VF step is monotone in the QoS target",
		Final: func(c *CheckContext) error {
			for ci, cl := range c.Env.Platform().Clusters {
				freqs := make([]float64, cl.NumOPPs())
				for i := range freqs {
					freqs[i] = cl.FreqAt(i)
				}
				for _, fCur := range []float64{freqs[0], freqs[len(freqs)/2], freqs[len(freqs)-1]} {
					for _, ips := range []float64{2e8, 8e8, 2e9} {
						prev := -1.0
						for frac := 0.05; frac <= 2.0; frac += 0.05 {
							target := frac * ips
							f, _ := features.EstimateMinFreq(freqs, fCur, ips, target)
							if f < prev {
								return fmt.Errorf(
									"cluster %d: raising QoS to %.3g IPS lowered the VF estimate %.0f -> %.0f Hz (fCur %.0f, ips %.3g)",
									ci, target, prev, f, fCur, ips)
							}
							prev = f
						}
					}
				}
			}
			return nil
		},
	}
}

// permutationEquivariant: the migration model's feature rows depend only
// on which applications run where, not on AoI enumeration order — so
// permuting the AoI ordering permutes the batch rows exactly. Verified on
// the live snapshot whenever at least two applications run.
func permutationEquivariant() Check {
	return Check{
		Name: "permutation-equivariant",
		Doc:  "feature batch rows are equivariant under AoI reordering",
		Tick: func(c *CheckContext) error {
			s := features.FromEnv(c.Env)
			if len(s.Apps) < 2 {
				return nil
			}
			base := features.Vectors(s)
			// Deterministic rotation: app i takes slot (i+1) mod n.
			perm := s
			perm.Apps = make([]features.AppState, len(s.Apps))
			n := len(s.Apps)
			for i, a := range s.Apps {
				perm.Apps[(i+1)%n] = a
			}
			rot := features.Vectors(perm)
			for i := range s.Apps {
				want, got := base[i], rot[(i+1)%n]
				if len(want) != len(got) {
					return fmt.Errorf("row %d: dim %d vs %d after permutation", i, len(want), len(got))
				}
				for k := range want {
					if want[k] != got[k] {
						return fmt.Errorf("row %d feature %d: %g != %g after AoI reordering",
							i, k, want[k], got[k])
					}
				}
			}
			return nil
		},
	}
}
