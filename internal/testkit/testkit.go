// Package testkit is the repository's deterministic-testing subsystem:
// seeded fault injection ("chaos") for the inference backend, the serving
// layer and the simulated workload, plus reusable property checks encoding
// the paper's invariants, and differential runners that prove replay
// equality across worker counts and inference backends.
//
// Everything is driven by an explicit *rand.Rand, never the process-global
// source, so a failure sequence replays byte-identically from its seed:
// a chaos run is reproduced with
//
//	TOPIL_CHAOS_SEED=42 go test ./internal/...
//
// and every injected fault is appended to an ordered event log whose
// rendering is part of the golden contract (see EventLog).
//
// The package is test infrastructure by policy, not just by convention:
// the repository's own linter (topil-lint's testkitonly rule) rejects any
// import of internal/testkit from a non-test file outside this package,
// so chaos can never leak into production binaries.
package testkit

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
)

// SeedEnv is the environment variable consulted by SeedFromEnv, the
// seed-replay workflow documented in docs/TESTING.md.
const SeedEnv = "TOPIL_CHAOS_SEED"

// SeedFromEnv returns the chaos seed to use: the integer value of
// TOPIL_CHAOS_SEED when set and parseable, else def. Tests log the seed
// they ran with, so any failure is replayed by exporting the variable.
func SeedFromEnv(def int64) int64 {
	v := os.Getenv(SeedEnv)
	if v == "" {
		return def
	}
	seed, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return def
	}
	return seed
}

// Event is one injected fault, recorded in injection order. Events carry
// no wall-clock time — only the deterministic sequence number and whatever
// simulated-time or call-count detail the injector provides — so the log
// of a seeded run is byte-identical across invocations and machines.
type Event struct {
	Seq    int    // injection order, starting at 0
	Source string // which injector fired ("backend", "stream", "manager", "config")
	Kind   string // fault class ("latency-spike", "infer-error", "drop", ...)
	Detail string // deterministic human-readable context
}

// String renders one event in the canonical log form.
func (e Event) String() string {
	return fmt.Sprintf("%04d %s/%s %s", e.Seq, e.Source, e.Kind, e.Detail)
}

// Chaos is a seeded fault injector. One Chaos instance owns one RNG stream
// and one event log; the Wrap* constructors hand out fault-injecting
// wrappers that all draw from it. Methods are safe for concurrent use (the
// serving layer calls backends from multiple dispatch goroutines), but the
// event order — and hence the golden log — is deterministic only when the
// wrapped components are driven from a single goroutine, as the simulation
// engine does. Concurrent tests assert on counts, not order.
type Chaos struct {
	mu     sync.Mutex
	rng    *rand.Rand
	seed   int64
	events []Event
}

// NewChaos creates a chaos injector from an explicit seed.
func NewChaos(seed int64) *Chaos {
	return &Chaos{rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed returns the seed the injector was created with (for failure logs).
func (c *Chaos) Seed() int64 { return c.seed }

// roll draws one uniform variate and reports whether it falls below p.
// Callers must hold c.mu. A non-positive probability consumes no
// randomness, so disabled fault classes do not shift the RNG stream of
// enabled ones.
func (c *Chaos) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	return c.rng.Float64() < p
}

// record appends an event. Callers must hold c.mu.
func (c *Chaos) record(source, kind, format string, args ...interface{}) {
	c.events = append(c.events, Event{
		Seq:    len(c.events),
		Source: source,
		Kind:   kind,
		Detail: fmt.Sprintf(format, args...),
	})
}

// Events returns a copy of the injected-fault log in injection order.
func (c *Chaos) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// EventCount returns the number of events of the given kind ("" = all).
func (c *Chaos) EventCount(kind string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if kind == "" {
		return len(c.events)
	}
	n := 0
	for _, e := range c.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// EventLog renders the full event log as one newline-terminated string —
// the byte-exact artifact compared by the golden replay tests.
func (c *Chaos) EventLog() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "chaos seed=%d events=%d\n", c.seed, len(c.events))
	for _, e := range c.events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
