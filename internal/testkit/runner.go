package testkit

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/sim"
	"repro/internal/workload"
)

// CheckedRun describes one simulation to execute under invariant checks.
type CheckedRun struct {
	Cfg      sim.Config
	Jobs     []workload.Job
	Manager  sim.Manager
	Duration float64 // seconds (default 10)
	// EveryTicks is the per-tick check cadence; default one manager
	// period (ManagerPeriod/Dt ticks).
	EveryTicks int
	// Checks to enforce; nil means InvariantChecks().
	Checks []Check
}

// RunChecked executes the simulation while enforcing the invariant suite:
// Tick checks run every EveryTicks simulation ticks (the run stops at the
// first violation), Final checks run on the Result. The Result is returned
// even when a check fails, so callers can include it in failure output.
func RunChecked(run CheckedRun) (*sim.Result, error) {
	if run.Duration <= 0 {
		run.Duration = 10
	}
	if run.EveryTicks <= 0 {
		run.EveryTicks = int(math.Round(run.Cfg.ManagerPeriod / run.Cfg.Dt))
		if run.EveryTicks < 1 {
			run.EveryTicks = 1
		}
	}
	checks := run.Checks
	if checks == nil {
		checks = InvariantChecks()
	}

	eng := sim.New(run.Cfg)
	eng.AddJobs(run.Jobs)
	ctx := &CheckContext{Cfg: run.Cfg, Env: eng.Env()}

	var checkErr error
	ticks := 0
	res := eng.RunUntil(run.Manager, run.Duration, func() bool {
		ticks++
		if ticks%run.EveryTicks != 0 {
			return false
		}
		for i := range checks {
			if checks[i].Tick == nil {
				continue
			}
			if err := checks[i].Tick(ctx); err != nil {
				checkErr = fmt.Errorf("invariant %q at t=%.3f s: %w",
					checks[i].Name, ctx.Env.Now(), err)
				return true
			}
		}
		return false
	})
	if checkErr != nil {
		return res, checkErr
	}
	ctx.Result = res
	for i := range checks {
		if checks[i].Final == nil {
			continue
		}
		if err := checks[i].Final(ctx); err != nil {
			return res, fmt.Errorf("invariant %q (final): %w", checks[i].Name, err)
		}
	}
	return res, nil
}

// MapOrdered runs fn over every input on `workers` goroutines and returns
// the results in input order — the deterministic-reduction shape the
// differential -j1/-jN tests rely on: whatever the scheduling, the reduced
// output must be identical.
func MapOrdered[T, R any](workers int, inputs []T, fn func(i int, in T) R) []R {
	if workers < 1 {
		workers = 1
	}
	out := make([]R, len(inputs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = fn(i, inputs[i])
			}
		}()
	}
	for i := range inputs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}
