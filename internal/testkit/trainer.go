package testkit

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/nn"
	"repro/internal/online"
)

// TrainerFaults configures the continual-learning fault classes injected
// by WrapLabeler and WrapTrain. Probabilities are fractions in [0,1]; zero
// disables the class without consuming randomness.
type TrainerFaults struct {
	// LabelErrProb is the per-query probability that the DAgger expert
	// returns an error — a crashed oracle simulation. Fraction in [0,1].
	LabelErrProb float64
	// LabelPanicProb is the per-query probability that the expert panics,
	// exercising the training loop's recovery path. Fraction in [0,1].
	LabelPanicProb float64
	// TrainErrProb is the per-cycle probability that retraining returns an
	// error — a diverged fit. Fraction in [0,1].
	TrainErrProb float64
	// TrainPanicProb is the per-cycle probability that retraining panics —
	// a bug in the optimizer. Fraction in [0,1].
	TrainPanicProb float64
}

// chaosLabeler injects expert-query faults in front of an inner labeler.
type chaosLabeler struct {
	inner  online.Labeler
	chaos  *Chaos
	faults TrainerFaults
}

// WrapLabeler returns a fault-injecting view of the DAgger expert, drawing
// faults from c's RNG stream. Injected panics are the fault itself, not an
// API misuse; the online manager must absorb both classes without swapping
// a model or blocking serving.
func (c *Chaos) WrapLabeler(inner online.Labeler, f TrainerFaults) online.Labeler {
	return &chaosLabeler{inner: inner, chaos: c, faults: f}
}

// Label implements online.Labeler. Panics when the injector's RNG fires
// the LabelPanicProb class — the panic IS the injected fault, and the
// online manager's recovery path must absorb it.
func (l *chaosLabeler) Label(s online.Sample) ([]float64, bool, error) {
	c := l.chaos
	c.mu.Lock()
	if c.roll(l.faults.LabelPanicProb) {
		c.record("trainer", "label-panic", "seq=%d", s.Seq)
		c.mu.Unlock()
		panic("testkit: injected labeler fault")
	}
	if c.roll(l.faults.LabelErrProb) {
		c.record("trainer", "label-error", "seq=%d", s.Seq)
		c.mu.Unlock()
		return nil, false, fmt.Errorf("testkit: injected label error (seq %d)", s.Seq)
	}
	c.mu.Unlock()
	return l.inner.Label(s)
}

// WrapTrain returns a fault-injecting view of the retraining step, drawing
// faults from c's RNG stream. The returned TrainFunc panics when the
// TrainPanicProb class fires — the panic is the injected fault itself,
// exercising the manager's train-recovery path.
func (c *Chaos) WrapTrain(inner online.TrainFunc, f TrainerFaults) online.TrainFunc {
	return func(incumbent *nn.MLP, ds nn.Dataset, seed int64) (*nn.MLP, error) {
		c.mu.Lock()
		if c.roll(f.TrainPanicProb) {
			c.record("trainer", "train-panic", "rows=%d", ds.Len())
			c.mu.Unlock()
			panic("testkit: injected training fault")
		}
		if c.roll(f.TrainErrProb) {
			c.record("trainer", "train-error", "rows=%d", ds.Len())
			c.mu.Unlock()
			return nil, fmt.Errorf("testkit: injected training error (%d rows)", ds.Len())
		}
		c.mu.Unlock()
		return inner(incumbent, ds, seed)
	}
}

// CorruptSampleTail simulates a crash mid-append on an online sample log:
// it overwrites the final n bytes of dir's journal with garbage that can
// never carry a valid checksum. online.OpenSampleLog must recover every
// record before the torn tail and drop the rest.
func CorruptSampleTail(dir string, n int) error {
	path := filepath.Join(dir, "samples.log")
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	if int64(n) > fi.Size() {
		n = int(fi.Size())
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	garbage := make([]byte, n)
	for i := range garbage {
		garbage[i] = 0xff
	}
	if _, err := f.WriteAt(garbage, fi.Size()-int64(n)); err != nil {
		return err
	}
	return f.Sync()
}
