package testkit

import (
	"time"

	"repro/internal/npu"
)

// BackendFaults configures the fault classes injected by WrapBackend.
// Probabilities are fractions in [0,1]; zero disables the class without
// consuming randomness.
type BackendFaults struct {
	// RowErrProb is the per-row probability that an inference result is
	// replaced by a nil row — the batcher-visible encoding of a transient
	// per-request device failure (see serve.ErrInference). Fraction [0,1].
	RowErrProb float64
	// PanicProb is the per-batch probability that the device call panics
	// ("driver fault"), exercising the serving layer's recovery path.
	// Fraction in [0,1].
	PanicProb float64
	// SpikeProb is the per-call probability that the modelled device
	// latency is multiplied by SpikeFactor — a DMA/driver latency spike.
	// Fraction in [0,1].
	SpikeProb float64
	// SpikeFactor scales the latency during a spike (dimensionless,
	// default 10 when a spike fires with a factor <= 1).
	SpikeFactor float64
}

// ChaosBackend wraps an npu.Backend with seeded fault injection. It is
// safe for concurrent use like every Backend, but deterministic event
// order requires single-goroutine callers (the simulation engine).
type ChaosBackend struct {
	inner  npu.Backend
	chaos  *Chaos
	faults BackendFaults
}

// WrapBackend returns a fault-injecting view of inner, drawing faults
// from c's RNG stream.
func (c *Chaos) WrapBackend(inner npu.Backend, f BackendFaults) *ChaosBackend {
	if f.SpikeFactor <= 1 {
		f.SpikeFactor = 10
	}
	return &ChaosBackend{inner: inner, chaos: c, faults: f}
}

// Name implements npu.Backend.
func (b *ChaosBackend) Name() string { return "chaos/" + b.inner.Name() }

// Infer implements npu.Backend. Injected per-row failures surface as nil
// output rows (the contract the serving batcher maps to per-request
// errors); injected device faults surface as panics after the fault is
// logged, so even a crashing replay reproduces its event log. Panics here
// are the injected fault itself, not an API misuse.
func (b *ChaosBackend) Infer(batch [][]float64) [][]float64 {
	outs := b.inner.Infer(batch)
	c := b.chaos
	c.mu.Lock()
	if c.roll(b.faults.PanicProb) {
		c.record("backend", "panic", "batch=%d", len(batch))
		c.mu.Unlock()
		panic("testkit: injected device fault")
	}
	for i := range outs {
		if c.roll(b.faults.RowErrProb) {
			c.record("backend", "infer-error", "row=%d of %d", i, len(batch))
			outs[i] = nil
		}
	}
	c.mu.Unlock()
	return outs
}

// Latency implements npu.Backend, occasionally injecting a spike.
func (b *ChaosBackend) Latency(batchSize int) time.Duration {
	base := b.inner.Latency(batchSize)
	c := b.chaos
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.roll(b.faults.SpikeProb) {
		spiked := time.Duration(float64(base) * b.faults.SpikeFactor)
		c.record("backend", "latency-spike", "batch=%d %v->%v", batchSize, base, spiked)
		return spiked
	}
	return base
}
