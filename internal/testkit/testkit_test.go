package testkit_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/npu"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/testkit"
	"repro/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// chaosDefaultSeed pins the golden event log; override at replay time with
// TOPIL_CHAOS_SEED (the golden comparison is skipped for non-default seeds).
const chaosDefaultSeed = 42

// testJobs builds a short deterministic open-system workload.
func testJobs(seed int64, n int) []workload.Job {
	cfg := sim.DefaultConfig(false, 25)
	pm := perf.Default()
	gen := workload.NewGenerator(seed, workload.MixedPool(), func(s workload.AppSpec) float64 {
		return pm.PeakIPS(cfg.Platform, s)
	}, 0.2, 0.6, 0.01)
	return gen.Generate(n, 2)
}

// testModel builds a small deterministic migration model for the HiKey970.
func testModel(seed int64) *nn.MLP {
	cfg := sim.DefaultConfig(false, 25)
	dim := features.Dim(cfg.Platform.NumCores(), cfg.Platform.NumClusters())
	return nn.NewMLP([]int{dim, 16, cfg.Platform.NumCores()}, seed)
}

// chaosEventLog runs the canonical chaos scenario — TOP-IL on a wrapped NPU
// backend under stream, manager and config faults — and returns the event
// log. The whole simulation stack sits between the seed and the log, so
// byte equality across invocations is a strong determinism statement.
func chaosEventLog(seed int64) string {
	ch := testkit.NewChaos(seed)
	cfg := ch.PerturbConfig(sim.DefaultConfig(false, 25), testkit.ConfigFaults{NoiseProb: 0.5})
	jobs := ch.PerturbJobs(testJobs(1, 10), testkit.StreamFaults{
		DropProb: 0.15, DupProb: 0.15, JitterSec: 0.3,
	})
	backend := ch.WrapBackend(npu.New(testModel(7)), testkit.BackendFaults{SpikeProb: 0.3})
	mgr := ch.WrapManager(core.New(backend, core.DefaultConfig()), testkit.ManagerFaults{
		ClampProb: 0.05, OverheadSpikeProb: 0.1,
	})
	eng := sim.New(cfg)
	eng.AddJobs(jobs)
	eng.Run(mgr, 5)
	return ch.EventLog()
}

func TestChaosGoldenReplay(t *testing.T) {
	seed := testkit.SeedFromEnv(chaosDefaultSeed)
	t.Logf("chaos seed %d (export %s to replay a failure)", seed, testkit.SeedEnv)

	a, b := chaosEventLog(seed), chaosEventLog(seed)
	if a != b {
		t.Fatalf("same seed, different event logs:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
	if !strings.HasPrefix(a, "chaos seed=") || strings.Count(a, "\n") < 2 {
		t.Fatalf("chaos scenario injected no faults:\n%s", a)
	}

	if seed != chaosDefaultSeed {
		t.Skipf("non-default seed %d: skipping golden comparison", seed)
	}
	golden := filepath.Join("testdata", "chaos_seed42.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(a), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run GoldenReplay -update ./internal/testkit`): %v", err)
	}
	if string(want) != a {
		t.Errorf("event log deviates from golden file %s:\n--- got\n%s--- want\n%s", golden, a, want)
	}
}

func TestChaosReplayAcrossWorkers(t *testing.T) {
	seeds := []int64{1, 2, 3, 5, 8, 13}
	run := func(workers int) []string {
		return testkit.MapOrdered(workers, seeds, func(_ int, s int64) string {
			return chaosEventLog(s)
		})
	}
	j1, j8 := run(1), run(8)
	for i := range seeds {
		if j1[i] != j8[i] {
			t.Errorf("seed %d: -j1 and -j8 event logs differ:\n--- j1\n%s--- j8\n%s",
				seeds[i], j1[i], j8[i])
		}
	}
}

func TestSeedFromEnv(t *testing.T) {
	t.Setenv(testkit.SeedEnv, "1234")
	if got := testkit.SeedFromEnv(7); got != 1234 {
		t.Errorf("SeedFromEnv = %d, want 1234", got)
	}
	t.Setenv(testkit.SeedEnv, "not-a-number")
	if got := testkit.SeedFromEnv(7); got != 7 {
		t.Errorf("SeedFromEnv with garbage = %d, want default 7", got)
	}
	t.Setenv(testkit.SeedEnv, "")
	if got := testkit.SeedFromEnv(7); got != 7 {
		t.Errorf("SeedFromEnv unset = %d, want default 7", got)
	}
}

func TestPerturbJobsContract(t *testing.T) {
	jobs := testJobs(3, 20)
	orig := append([]workload.Job(nil), jobs...)

	ch := testkit.NewChaos(9)
	out := ch.PerturbJobs(jobs, testkit.StreamFaults{DropProb: 0.3, DupProb: 0.3, JitterSec: 0.5})

	for i := range jobs {
		if jobs[i].Arrival != orig[i].Arrival || jobs[i].QoS != orig[i].QoS ||
			jobs[i].Spec.Name != orig[i].Spec.Name {
			t.Fatalf("PerturbJobs modified its input at %d", i)
		}
	}
	for i := 1; i < len(out); i++ {
		if out[i].Arrival < out[i-1].Arrival {
			t.Fatalf("output not sorted: arrival %g after %g", out[i].Arrival, out[i-1].Arrival)
		}
	}
	for _, j := range out {
		if j.Arrival < 0 {
			t.Fatalf("negative arrival %g", j.Arrival)
		}
	}
	drops, dups := ch.EventCount("drop"), ch.EventCount("dup")
	if len(out) != len(jobs)-drops+dups {
		t.Errorf("len(out)=%d, want %d - %d drops + %d dups", len(out), len(jobs), drops, dups)
	}
	if drops == 0 && dups == 0 {
		t.Error("expected some drops/dups at p=0.3 over 20 jobs")
	}
}

func TestPerturbJobsNoFaultsIsIdentity(t *testing.T) {
	jobs := testJobs(4, 10)
	ch := testkit.NewChaos(1)
	out := ch.PerturbJobs(jobs, testkit.StreamFaults{})
	if len(out) != len(jobs) {
		t.Fatalf("len=%d, want %d", len(out), len(jobs))
	}
	for i := range jobs {
		if out[i].Arrival != jobs[i].Arrival || out[i].Spec.Name != jobs[i].Spec.Name {
			t.Fatalf("job %d changed with all faults disabled", i)
		}
	}
	if n := ch.EventCount(""); n != 0 {
		t.Errorf("%d events injected with all faults disabled", n)
	}
}

// TestDisabledFaultsDontShiftStream pins the roll() contract: a disabled
// fault class draws no randomness, so enabling it at probability zero must
// not change which faults the enabled classes inject.
func TestDisabledFaultsDontShiftStream(t *testing.T) {
	jobs := testJobs(5, 20)
	run := func(f testkit.StreamFaults) string {
		ch := testkit.NewChaos(77)
		ch.PerturbJobs(jobs, f)
		return ch.EventLog()
	}
	only := run(testkit.StreamFaults{DropProb: 0.4})
	mixed := run(testkit.StreamFaults{DropProb: 0.4, DupProb: 0, JitterSec: 0})
	if only != mixed {
		t.Errorf("zero-probability classes shifted the RNG stream:\n--- drop only\n%s--- with zeros\n%s",
			only, mixed)
	}
}

func TestEventLogFormat(t *testing.T) {
	ch := testkit.NewChaos(5)
	if got := ch.EventLog(); got != "chaos seed=5 events=0\n" {
		t.Errorf("empty log = %q", got)
	}
	ev := testkit.Event{Seq: 3, Source: "backend", Kind: "panic", Detail: "batch=4"}
	if got, want := ev.String(), "0003 backend/panic batch=4"; got != want {
		t.Errorf("Event.String() = %q, want %q", got, want)
	}
}

func TestMapOrdered(t *testing.T) {
	in := make([]int, 100)
	for i := range in {
		in[i] = i
	}
	for _, workers := range []int{0, 1, 4, 16} {
		out := testkit.MapOrdered(workers, in, func(i, v int) int { return v * v })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d]=%d, want %d", workers, i, v, i*i)
			}
		}
	}
	if got := testkit.MapOrdered(4, nil, func(i, v int) int { return v }); len(got) != 0 {
		t.Errorf("empty input produced %d results", len(got))
	}
}
