package testkit_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/governor"
	"repro/internal/npu"
	"repro/internal/sim"
	"repro/internal/testkit"
)

func TestInvariantSuiteShape(t *testing.T) {
	checks := testkit.InvariantChecks()
	if len(checks) < 8 {
		t.Fatalf("suite has %d checks, the paper-invariant contract requires >= 8", len(checks))
	}
	seen := map[string]bool{}
	for _, c := range checks {
		if c.Name == "" || c.Doc == "" {
			t.Errorf("check %+v lacks name or doc", c)
		}
		if seen[c.Name] {
			t.Errorf("duplicate check name %q", c.Name)
		}
		seen[c.Name] = true
		if c.Tick == nil && c.Final == nil {
			t.Errorf("check %q has neither Tick nor Final", c.Name)
		}
	}
}

// TestRunCheckedGTS runs the full invariant suite over an ordinary GTS run.
func TestRunCheckedGTS(t *testing.T) {
	_, err := testkit.RunChecked(testkit.CheckedRun{
		Cfg:      sim.DefaultConfig(false, 25),
		Jobs:     testJobs(2, 8),
		Manager:  governor.NewGTS(governor.Ondemand{UpThreshold: 0.8}),
		Duration: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunCheckedUnderChaos asserts the engine's invariants hold even under
// injected faults: the chaos layer may corrupt decisions, never physics.
func TestRunCheckedUnderChaos(t *testing.T) {
	seed := testkit.SeedFromEnv(11)
	t.Logf("chaos seed %d (export %s to replay)", seed, testkit.SeedEnv)
	ch := testkit.NewChaos(seed)
	cfg := ch.PerturbConfig(sim.DefaultConfig(false, 25), testkit.ConfigFaults{NoiseProb: 1})
	jobs := ch.PerturbJobs(testJobs(2, 10), testkit.StreamFaults{
		DropProb: 0.1, DupProb: 0.2, JitterSec: 0.2,
	})
	backend := ch.WrapBackend(npu.New(testModel(3)), testkit.BackendFaults{SpikeProb: 0.2})
	mgr := ch.WrapManager(core.New(backend, core.DefaultConfig()), testkit.ManagerFaults{
		ClampProb: 0.1, OverheadSpikeProb: 0.1,
	})
	res, err := testkit.RunChecked(testkit.CheckedRun{
		Cfg: cfg, Jobs: jobs, Manager: mgr, Duration: 5,
	})
	if err != nil {
		t.Fatalf("invariant broken under chaos (seed %d): %v", seed, err)
	}
	if res.Duration <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
}

func TestRunCheckedReportsTickViolation(t *testing.T) {
	boom := errors.New("boom")
	_, err := testkit.RunChecked(testkit.CheckedRun{
		Cfg:      sim.DefaultConfig(false, 25),
		Jobs:     testJobs(2, 4),
		Manager:  governor.NewGTS(governor.Powersave{}),
		Duration: 2,
		Checks: []testkit.Check{{
			Name: "always-fails",
			Doc:  "fails on the first tick to exercise error plumbing",
			Tick: func(*testkit.CheckContext) error { return boom },
		}},
	})
	if err == nil || !errors.Is(err, boom) || !strings.Contains(err.Error(), "always-fails") {
		t.Fatalf("tick violation not reported: %v", err)
	}
}

func TestRunCheckedReportsFinalViolation(t *testing.T) {
	_, err := testkit.RunChecked(testkit.CheckedRun{
		Cfg:      sim.DefaultConfig(false, 25),
		Jobs:     testJobs(2, 4),
		Manager:  governor.NewGTS(governor.Powersave{}),
		Duration: 2,
		Checks: []testkit.Check{{
			Name: "final-fails",
			Doc:  "fails in the final pass to exercise error plumbing",
			Final: func(c *testkit.CheckContext) error {
				if c.Result == nil {
					return errors.New("final check ran without a result")
				}
				return errors.New("deliberate final failure")
			},
		}},
	})
	if err == nil || !strings.Contains(err.Error(), "final-fails") {
		t.Fatalf("final violation not reported: %v", err)
	}
}

// TestEnergyAdditivity pins the paper invariant that energy is additive
// across chunked runs: simulating T seconds in one RunUntil call or in
// three chunks must integrate to bit-identical totals (same tick sequence,
// same accumulation order).
func TestEnergyAdditivity(t *testing.T) {
	build := func() *sim.Engine {
		cfg := sim.DefaultConfig(false, 25)
		cfg.Seed = 21
		e := sim.New(cfg)
		e.AddJobs(testJobs(6, 8))
		return e
	}
	whole := build().Run(nil, 6)

	eng := build()
	eng.Run(nil, 2)
	eng.Run(nil, 2)
	chunked := eng.Run(nil, 2)

	if whole.TotalEnergyJ() <= 0 {
		t.Fatalf("non-positive total energy %g J", whole.TotalEnergyJ())
	}
	if whole.TotalEnergyJ() != chunked.TotalEnergyJ() {
		t.Errorf("energy not additive across chunks: %.12g J vs %.12g J",
			whole.TotalEnergyJ(), chunked.TotalEnergyJ())
	}
	if whole.UncoreEnergyJ != chunked.UncoreEnergyJ {
		t.Errorf("uncore energy differs: %.12g J vs %.12g J",
			whole.UncoreEnergyJ, chunked.UncoreEnergyJ)
	}
	if whole.AvgTemp != chunked.AvgTemp || whole.PeakTemp != chunked.PeakTemp {
		t.Errorf("temperatures differ across chunking: avg %g/%g peak %g/%g",
			whole.AvgTemp, chunked.AvgTemp, whole.PeakTemp, chunked.PeakTemp)
	}
	if whole.Duration != chunked.Duration {
		t.Errorf("durations differ: %g vs %g", whole.Duration, chunked.Duration)
	}
}
