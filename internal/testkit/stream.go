package testkit

import (
	"sort"

	"repro/internal/workload"
)

// StreamFaults configures arrival-stream perturbation: the open-system
// job trace is corrupted the way a flaky submission path would — jobs
// vanish, arrive twice, or arrive off-schedule. Probabilities are
// fractions in [0,1].
type StreamFaults struct {
	// DropProb is the per-job probability of silently losing the job.
	// Fraction in [0,1].
	DropProb float64
	// DupProb is the per-job probability of a duplicated submission; the
	// duplicate arrives DupDelaySec after the original. Fraction in [0,1].
	DupProb float64
	// DupDelaySec offsets duplicated arrivals (seconds, default 0.25).
	DupDelaySec float64
	// JitterSec perturbs every surviving arrival uniformly within
	// ±JitterSec (seconds, clamped at zero).
	JitterSec float64
}

// PerturbJobs returns a corrupted copy of jobs: drops, duplications and
// arrival jitter drawn from the chaos RNG, with every fault logged. The
// result is re-sorted by arrival time (the engine's AddJobs contract) and
// the input slice is never modified.
func (c *Chaos) PerturbJobs(jobs []workload.Job, f StreamFaults) []workload.Job {
	if f.DupDelaySec <= 0 {
		f.DupDelaySec = 0.25
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]workload.Job, 0, len(jobs))
	for i, j := range jobs {
		if c.roll(f.DropProb) {
			c.record("stream", "drop", "job=%d %s t=%.3f", i, j.Spec.Name, j.Arrival)
			continue
		}
		if f.JitterSec > 0 {
			d := (c.rng.Float64()*2 - 1) * f.JitterSec
			j.Arrival += d
			if j.Arrival < 0 {
				j.Arrival = 0
			}
			c.record("stream", "jitter", "job=%d %s %+0.3fs -> t=%.3f", i, j.Spec.Name, d, j.Arrival)
		}
		out = append(out, j)
		if c.roll(f.DupProb) {
			dup := j
			dup.Arrival += f.DupDelaySec
			c.record("stream", "dup", "job=%d %s t=%.3f", i, dup.Spec.Name, dup.Arrival)
			out = append(out, dup)
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Arrival < out[b].Arrival })
	return out
}
