package testkit

import (
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ManagerFaults configures the faults injected around a wrapped
// sim.Manager's Tick. Probabilities are fractions in [0,1].
type ManagerFaults struct {
	// ClampProb is the per-cluster, per-tick probability that the VF
	// level requested by the inner manager is clamped one step down — a
	// DVFS transition that did not complete (busy PMIC, vendor cap).
	// Fraction in [0,1].
	ClampProb float64
	// OverheadSpikeProb is the per-tick probability of charging an
	// unexpected management-overhead spike of OverheadSpikeSec to core 0
	// (a daemon hiccup: page fault, scheduler preemption). Fraction [0,1].
	OverheadSpikeProb float64
	// OverheadSpikeSec is the duration of one injected overhead spike in
	// seconds (default 0.005).
	OverheadSpikeSec float64
}

// ChaosManager wraps a sim.Manager, passing every call through and
// injecting ManagerFaults after each Tick. Use WrapManager, which
// preserves the inner manager's optional sim.Placer implementation.
type ChaosManager struct {
	inner  sim.Manager
	chaos  *Chaos
	faults ManagerFaults
	env    *sim.Env
}

// WrapManager returns a fault-injecting view of inner. The returned
// manager implements sim.Placer exactly when inner does, so engine
// placement behaviour is unchanged.
func (c *Chaos) WrapManager(inner sim.Manager, f ManagerFaults) sim.Manager {
	if f.OverheadSpikeSec <= 0 {
		f.OverheadSpikeSec = 0.005
	}
	m := &ChaosManager{inner: inner, chaos: c, faults: f}
	if p, ok := inner.(sim.Placer); ok {
		return &chaosPlacer{ChaosManager: m, placer: p}
	}
	return m
}

// Name implements sim.Manager.
func (m *ChaosManager) Name() string { return "chaos/" + m.inner.Name() }

// Attach implements sim.Manager.
func (m *ChaosManager) Attach(env *sim.Env) {
	m.env = env
	m.inner.Attach(env)
}

// Tick implements sim.Manager: run the inner policy, then corrupt its
// actuation per ManagerFaults.
func (m *ChaosManager) Tick(now float64) {
	m.inner.Tick(now)
	c := m.chaos
	plat := m.env.Platform()
	c.mu.Lock()
	for ci := 0; ci < plat.NumClusters(); ci++ {
		if !c.roll(m.faults.ClampProb) {
			continue
		}
		idx := m.env.ClusterFreqIndex(ci)
		if idx == 0 {
			continue
		}
		c.record("manager", "dvfs-clamp", "t=%.2f cluster=%d level %d->%d", now, ci, idx, idx-1)
		m.env.SetClusterFreqIndex(ci, idx-1)
	}
	spike := c.roll(m.faults.OverheadSpikeProb)
	if spike {
		c.record("manager", "overhead-spike", "t=%.2f +%.3fs", now, m.faults.OverheadSpikeSec)
	}
	c.mu.Unlock()
	if spike {
		m.env.ChargeOverhead(m.faults.OverheadSpikeSec)
	}
}

// chaosPlacer adds the sim.Placer passthrough for inner managers that
// place their own arrivals.
type chaosPlacer struct {
	*ChaosManager
	placer sim.Placer
}

// Place implements sim.Placer by delegating to the inner manager.
func (m *chaosPlacer) Place(job workload.Job) platform.CoreID {
	return m.placer.Place(job)
}

// ConfigFaults configures simulation-config perturbation. Probabilities
// are fractions in [0,1].
type ConfigFaults struct {
	// NoiseProb is the probability that the run executes with a noisy
	// temperature sensor. Fraction in [0,1].
	NoiseProb float64
	// NoiseStdDevC is the injected sensor noise's standard deviation in
	// °C (default 1.5). The engine applies it from its own seeded RNG at
	// the 20 Hz sensor cadence, so bursts of consecutive bad samples
	// occur naturally and deterministically.
	NoiseStdDevC float64
}

// PerturbConfig returns cfg with chaos applied: with NoiseProb the sensor
// noise is switched on (a noise burst regime for the whole run). The
// decision is drawn from the chaos RNG and logged.
func (c *Chaos) PerturbConfig(cfg sim.Config, f ConfigFaults) sim.Config {
	if f.NoiseStdDevC <= 0 {
		f.NoiseStdDevC = 1.5
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.roll(f.NoiseProb) {
		cfg.SensorNoise = f.NoiseStdDevC
		c.record("config", "sensor-noise", "stddev=%.2f", f.NoiseStdDevC)
	}
	return cfg
}
