package testkit

import "sort"

// ReplicaKill is one scheduled replica crash in a chaos run: at AtMs
// milliseconds into the run, replica index Replica is killed abruptly;
// when RestartAfterMs is positive it is restarted that many milliseconds
// after the kill. All times are integer milliseconds of wall schedule —
// the plan itself carries no clock, so a seeded plan is byte-identical
// across runs and machines (the detrand discipline).
type ReplicaKill struct {
	AtMs           int // kill time, ms after the run starts
	Replica        int // replica index in [0, replicas)
	RestartAfterMs int // restart delay after the kill; 0 = stays dead
}

// ReplicaKillPlan draws `kills` replica crashes spread over a run of
// windowMs milliseconds against `replicas` replicas. Kills are drawn
// uniformly over the middle 80% of the window (a kill at t=0 tests
// nothing, one at the very end races run teardown), sorted by time, and
// recorded in the chaos event log in schedule order. Restarts land
// between 10% and 50% of the window after their kill.
//
// The plan never assigns two kills to the same replica — each crash
// exercises an independent journal — so kills is capped at replicas.
func (c *Chaos) ReplicaKillPlan(replicas, kills, windowMs int) []ReplicaKill {
	if replicas <= 0 || kills <= 0 || windowMs <= 0 {
		return nil
	}
	if kills > replicas {
		kills = replicas
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	lo := windowMs / 10
	span := windowMs - 2*lo
	if span < 1 {
		span = 1
	}
	victims := c.rng.Perm(replicas)[:kills]
	plan := make([]ReplicaKill, kills)
	for i := 0; i < kills; i++ {
		plan[i] = ReplicaKill{
			AtMs:           lo + c.rng.Intn(span),
			Replica:        victims[i],
			RestartAfterMs: windowMs/10 + c.rng.Intn(maxInt(windowMs*2/5, 1)),
		}
	}
	sort.Slice(plan, func(a, b int) bool {
		if plan[a].AtMs != plan[b].AtMs {
			return plan[a].AtMs < plan[b].AtMs
		}
		return plan[a].Replica < plan[b].Replica
	})
	for _, k := range plan {
		c.record("cluster", "replica-kill", "t=+%dms replica=%d restart=+%dms",
			k.AtMs, k.Replica, k.RestartAfterMs)
	}
	return plan
}

// maxInt returns the larger of two ints.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
