package testkit

import (
	"reflect"
	"testing"
)

func TestReplicaKillPlanDeterministic(t *testing.T) {
	a := NewChaos(7).ReplicaKillPlan(3, 2, 5000)
	b := NewChaos(7).ReplicaKillPlan(3, 2, 5000)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different plans:\n%v\n%v", a, b)
	}
	ca, cb := NewChaos(7), NewChaos(7)
	ca.ReplicaKillPlan(3, 2, 5000)
	cb.ReplicaKillPlan(3, 2, 5000)
	if ca.EventLog() != cb.EventLog() {
		t.Fatalf("same seed, different event logs:\n%s\n%s", ca.EventLog(), cb.EventLog())
	}
	if c := NewChaos(8).ReplicaKillPlan(3, 2, 5000); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestReplicaKillPlanBounds(t *testing.T) {
	plan := NewChaos(1).ReplicaKillPlan(4, 9, 10000)
	if len(plan) != 4 {
		t.Fatalf("kills not capped at replicas: %d", len(plan))
	}
	seen := map[int]bool{}
	last := -1
	for _, k := range plan {
		if k.Replica < 0 || k.Replica >= 4 {
			t.Errorf("replica out of range: %+v", k)
		}
		if seen[k.Replica] {
			t.Errorf("replica %d killed twice", k.Replica)
		}
		seen[k.Replica] = true
		if k.AtMs < 1000 || k.AtMs >= 9000 {
			t.Errorf("kill outside the middle 80%%: %+v", k)
		}
		if k.AtMs < last {
			t.Errorf("plan not sorted by time: %v", plan)
		}
		last = k.AtMs
		if k.RestartAfterMs < 1000 {
			t.Errorf("restart delay under 10%% of window: %+v", k)
		}
	}
	if NewChaos(1).ReplicaKillPlan(0, 1, 100) != nil {
		t.Error("degenerate plan not nil")
	}
	if got := NewChaos(1).EventLog(); got != "chaos seed=1 events=0\n" {
		t.Errorf("unexpected baseline log %q", got)
	}
}
