package testkit

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sim"
	"repro/internal/workload"
)

// FP16Tol is the relative tolerance implied by an fp16 mantissa
// (2^-10): the bound used when diffing traces of a quantized model
// against its fp32 original (dimensionless).
const FP16Tol = 1.0 / 1024

// Scenario is one named, fully-seeded simulation setup for differential
// runs. NewManager must build a fresh manager per invocation — managers
// are stateful, and a differential run executes the scenario repeatedly.
type Scenario struct {
	Name       string
	Cfg        sim.Config
	Jobs       []workload.Job
	NewManager func() sim.Manager // nil = unmanaged run
	Duration   float64            // seconds (default 10)
	// SamplePeriod is the trace sampling period in seconds (default 0.25).
	SamplePeriod float64
}

// TraceScenario executes the scenario once and renders its sampled time
// series plus final result into the canonical trace string. Two runs of
// an identical scenario in the same binary must produce byte-identical
// traces — that is the determinism contract the differential tests pin.
// The scenario's thermal network is reset to ambient first, so a Scenario
// value can be traced repeatedly; it must not be traced concurrently with
// itself (the network pointer is shared state).
func TraceScenario(s Scenario) string {
	if s.Duration <= 0 {
		s.Duration = 10
	}
	if s.SamplePeriod <= 0 {
		s.SamplePeriod = 0.25
	}
	s.Cfg.Thermal.Reset()
	eng := sim.New(s.Cfg)
	eng.AddJobs(s.Jobs)
	rec := sim.NewRecorder(eng.Env(), s.SamplePeriod)
	var m sim.Manager
	if s.NewManager != nil {
		m = s.NewManager()
	}
	res := eng.RunUntil(m, s.Duration, rec.Hook())
	return FormatTrace(rec.Samples, res)
}

// FormatTrace renders recorder samples and a final result as one
// newline-terminated string of space-separated key=value tokens, the
// format DiffTraces understands.
func FormatTrace(samples []sim.Sample, res *sim.Result) string {
	var b strings.Builder
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }
	for _, s := range samples {
		fmt.Fprintf(&b, "t=%.3f temp=%s busy=%d ov=%s freq=", s.Time, g(s.Temp), s.Busy, g(s.Overhead))
		for i, idx := range s.FreqIdx {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(idx))
		}
		for _, a := range s.Apps {
			fmt.Fprintf(&b, " %s@%d ips=%s", a.Name, a.Core, g(a.IPS))
		}
		b.WriteByte('\n')
	}
	if res != nil {
		fmt.Fprintf(&b, "result avgT=%s peakT=%s energy=%s viol=%d migr=%d throttle=%s overhead=%s\n",
			g(res.AvgTemp), g(res.PeakTemp), g(res.TotalEnergyJ()),
			res.Violations, res.Migrations, g(res.ThrottleSeconds), g(res.OverheadSeconds))
	}
	return b.String()
}

// DiffTraces compares two traces token by token. With tol == 0 the traces
// must be byte-identical. With tol > 0, key=value tokens whose values both
// parse as floats may differ by a relative tolerance of tol (relative to
// max(1, |a|, |b|)); all other tokens must still match exactly, so
// structural divergence (mappings, VF levels, counts) is never excused by
// a numeric tolerance. The returned error pinpoints the first divergence.
func DiffTraces(a, b string, tol float64) error {
	if tol <= 0 {
		if a != b {
			la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
			for i := 0; i < len(la) || i < len(lb); i++ {
				va, vb := lineAt(la, i), lineAt(lb, i)
				if va != vb {
					return fmt.Errorf("trace line %d differs:\n  a: %s\n  b: %s", i+1, va, vb)
				}
			}
			return fmt.Errorf("traces differ (same lines, different bytes)")
		}
		return nil
	}
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	if len(la) != len(lb) {
		return fmt.Errorf("trace lengths differ: %d vs %d lines", len(la), len(lb))
	}
	for i := range la {
		fa, fb := strings.Fields(la[i]), strings.Fields(lb[i])
		if len(fa) != len(fb) {
			return fmt.Errorf("trace line %d: %d vs %d tokens:\n  a: %s\n  b: %s",
				i+1, len(fa), len(fb), la[i], lb[i])
		}
		for k := range fa {
			if fa[k] == fb[k] {
				continue
			}
			if !tokensClose(fa[k], fb[k], tol) {
				return fmt.Errorf("trace line %d token %d: %q vs %q exceeds tol %g",
					i+1, k+1, fa[k], fb[k], tol)
			}
		}
	}
	return nil
}

// lineAt returns lines[i] or a placeholder past the end.
func lineAt(lines []string, i int) string {
	if i < len(lines) {
		return lines[i]
	}
	return "<missing>"
}

// tokensClose reports whether two key=value tokens agree up to a relative
// tolerance on float values. Non-float values never agree here (the exact
// comparison already failed).
func tokensClose(a, b string, tol float64) bool {
	ka, va, oka := strings.Cut(a, "=")
	kb, vb, okb := strings.Cut(b, "=")
	if !oka || !okb || ka != kb {
		return false
	}
	x, errA := strconv.ParseFloat(va, 64)
	y, errB := strconv.ParseFloat(vb, 64)
	if errA != nil || errB != nil {
		return false
	}
	d := x - y
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if ax := abs(x); ax > scale {
		scale = ax
	}
	if ay := abs(y); ay > scale {
		scale = ay
	}
	return d <= tol*scale
}

// abs avoids importing math for one call site.
func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
