package testkit_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/governor"
	"repro/internal/npu"
	"repro/internal/sim"
	"repro/internal/testkit"
)

// diffScenarios builds the differential scenario set: the paper's policies
// over one seeded workload each.
func diffScenarios() []testkit.Scenario {
	topil := func(seed int64) func() sim.Manager {
		return func() sim.Manager {
			return core.New(npu.New(testModel(seed)), core.DefaultConfig())
		}
	}
	return []testkit.Scenario{
		{
			Name: "gts-ondemand", Cfg: sim.DefaultConfig(false, 25), Jobs: testJobs(1, 8),
			NewManager: func() sim.Manager { return governor.NewGTS(governor.Ondemand{UpThreshold: 0.8}) },
			Duration:   4,
		},
		{
			Name: "gts-powersave", Cfg: sim.DefaultConfig(true, 25), Jobs: testJobs(2, 8),
			NewManager: func() sim.Manager { return governor.NewGTS(governor.Powersave{}) },
			Duration:   4,
		},
		{
			Name: "topil-npu", Cfg: sim.DefaultConfig(false, 25), Jobs: testJobs(3, 8),
			NewManager: topil(7), Duration: 4,
		},
	}
}

func TestTraceReplayByteIdentical(t *testing.T) {
	for _, s := range diffScenarios() {
		a, b := testkit.TraceScenario(s), testkit.TraceScenario(s)
		if err := testkit.DiffTraces(a, b, 0); err != nil {
			t.Errorf("%s: two runs of the same scenario diverge: %v", s.Name, err)
		}
		if strings.Count(a, "\n") < 5 {
			t.Errorf("%s: suspiciously short trace:\n%s", s.Name, a)
		}
	}
}

// TestWorkersDifferential replays the scenario set through the ordered
// worker pool at -j1 and -j8 and demands byte-identical traces: worker
// scheduling must never leak into results.
func TestWorkersDifferential(t *testing.T) {
	scenarios := diffScenarios()
	run := func(workers int) []string {
		return testkit.MapOrdered(workers, scenarios, func(_ int, s testkit.Scenario) string {
			return testkit.TraceScenario(s)
		})
	}
	j1, j8 := run(1), run(8)
	for i, s := range scenarios {
		if err := testkit.DiffTraces(j1[i], j8[i], 0); err != nil {
			t.Errorf("%s: -j1 vs -j8 traces diverge: %v", s.Name, err)
		}
	}
}

// TestBackendDifferential replays one TOP-IL scenario through the NPU and
// CPU inference backends. Both compute bit-identical outputs from the same
// model; with overhead accounting disabled, the only remaining difference
// is the latency model, which then must not influence the simulation.
func TestBackendDifferential(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.ChargeOverhead = false // latency models differ; dynamics must not
	scen := func(backend func() npu.Backend) testkit.Scenario {
		return testkit.Scenario{
			Name: "topil-backend-diff", Cfg: sim.DefaultConfig(false, 25), Jobs: testJobs(4, 8),
			NewManager: func() sim.Manager { return core.New(backend(), cfg) },
			Duration:   4,
		}
	}
	a := testkit.TraceScenario(scen(func() npu.Backend { return npu.New(testModel(9)) }))
	b := testkit.TraceScenario(scen(func() npu.Backend { return npu.NewCPU(testModel(9)) }))
	if err := testkit.DiffTraces(a, b, 0); err != nil {
		t.Errorf("CPU and NPU backends diverge: %v", err)
	}
}

// TestFP16Differential replays TOP-IL with the fp32 model and its
// fp16-quantized deployment and compares traces within FP16Tol — plus the
// direct output-deviation bound on feature-like probes.
func TestFP16Differential(t *testing.T) {
	model := testModel(9)

	probes := make([][]float64, 32)
	dim := model.Sizes()[0]
	for i := range probes {
		probes[i] = make([]float64, dim)
		for k := range probes[i] {
			probes[i][k] = float64((i*31+k*17)%97) / 97
		}
	}
	// Per-output deviations accumulate one rounding per layer, so the
	// bound is a small multiple of FP16Tol — and must stay far below the
	// migration hysteresis for quantization to never flip a decision.
	outTol := core.DefaultConfig().Hysteresis / 10
	maxDiff, err := npu.ValidateQuantized(model, probes, outTol)
	if err != nil {
		t.Fatalf("fp16 deviation above tolerance: %v", err)
	}
	t.Logf("max fp16 output deviation: %g (tol %g)", maxDiff, outTol)

	cfg := core.DefaultConfig()
	cfg.ChargeOverhead = false
	scen := func(m func() npu.Backend) testkit.Scenario {
		return testkit.Scenario{
			Name: "topil-fp16-diff", Cfg: sim.DefaultConfig(false, 25), Jobs: testJobs(5, 8),
			NewManager: func() sim.Manager { return core.New(m(), cfg) },
			Duration:   4,
		}
	}
	a := testkit.TraceScenario(scen(func() npu.Backend { return npu.New(model) }))
	b := testkit.TraceScenario(scen(func() npu.Backend { return npu.New(npu.QuantizeFP16(model)) }))
	if err := testkit.DiffTraces(a, b, testkit.FP16Tol); err != nil {
		t.Errorf("fp16 deployment diverges beyond tolerance: %v", err)
	}
}

func TestDiffTracesTolerance(t *testing.T) {
	a := "t=0.250 temp=31.5 busy=2 freq=3,1 adi@4 ips=1.5e9\n"
	if err := testkit.DiffTraces(a, a, 0); err != nil {
		t.Errorf("identical traces reported as diverging: %v", err)
	}

	b := strings.Replace(a, "temp=31.5", "temp=31.501", 1)
	if err := testkit.DiffTraces(a, b, 0); err == nil {
		t.Error("byte mode missed a numeric difference")
	}
	if err := testkit.DiffTraces(a, b, testkit.FP16Tol); err != nil {
		t.Errorf("in-tolerance numeric difference rejected: %v", err)
	}
	big := strings.Replace(a, "temp=31.5", "temp=39.9", 1)
	if err := testkit.DiffTraces(a, big, testkit.FP16Tol); err == nil {
		t.Error("out-of-tolerance numeric difference accepted")
	}

	structural := strings.Replace(a, "adi@4", "adi@5", 1)
	if err := testkit.DiffTraces(a, structural, 1e9); err == nil {
		t.Error("structural (mapping) difference excused by numeric tolerance")
	}
	freq := strings.Replace(a, "freq=3,1", "freq=3,2", 1)
	if err := testkit.DiffTraces(a, freq, 1e9); err == nil {
		t.Error("VF-level difference excused by numeric tolerance")
	}
	if err := testkit.DiffTraces(a, a+"extra\n", testkit.FP16Tol); err == nil {
		t.Error("length difference accepted")
	}
}
