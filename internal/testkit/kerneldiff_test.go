package testkit_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/governor"
	"repro/internal/npu"
	"repro/internal/sim"
	"repro/internal/testkit"
	"repro/internal/thermal"
)

// kernelScenarios builds the fig-style differential set with the given
// thermal kernel: the paper's policy spread (throughput governor, powersave
// governor, TOP-IL) over seeded workloads, fan on and off. Each call builds
// fresh configs — sim.DefaultConfig allocates a fresh thermal network, so
// the two sides of a differential never share kernel state.
func kernelScenarios(kernel thermal.Kernel, fanOnly bool) []testkit.Scenario {
	withKernel := func(fan bool) sim.Config {
		cfg := sim.DefaultConfig(fan, 25)
		cfg.ThermalKernel = kernel
		return cfg
	}
	topil := func(seed int64) func() sim.Manager {
		return func() sim.Manager {
			return core.New(npu.New(testModel(seed)), core.DefaultConfig())
		}
	}
	s := []testkit.Scenario{
		{
			Name: "kernel-gts-ondemand-fan", Cfg: withKernel(true), Jobs: testJobs(11, 8),
			NewManager: func() sim.Manager { return governor.NewGTS(governor.Ondemand{UpThreshold: 0.8}) },
			Duration:   4,
		},
		{
			Name: "kernel-gts-powersave-fan", Cfg: withKernel(true), Jobs: testJobs(12, 8),
			NewManager: func() sim.Manager { return governor.NewGTS(governor.Powersave{}) },
			Duration:   4,
		},
		{
			Name: "kernel-topil-fan", Cfg: withKernel(true), Jobs: testJobs(13, 8),
			NewManager: topil(7), Duration: 4,
		},
	}
	if !fanOnly {
		s = append(s,
			testkit.Scenario{
				Name: "kernel-gts-ondemand-nofan", Cfg: withKernel(false), Jobs: testJobs(14, 8),
				NewManager: func() sim.Manager { return governor.NewGTS(governor.Ondemand{UpThreshold: 0.8}) },
				Duration:   4,
			},
			testkit.Scenario{
				Name: "kernel-topil-nofan", Cfg: withKernel(false), Jobs: testJobs(15, 8),
				NewManager: topil(8), Duration: 4,
			},
		)
	}
	return s
}

// TestKernelDifferentialFloat64 is the gate for the propagator rewrite: the
// precomputed float64 kernel must reproduce the retained naive Euler
// reference byte for byte over the full scenario spread — and do so through
// the worker pool at -j1 and -j8, so neither the kernel nor its per-network
// caching leaks scheduling into results.
func TestKernelDifferentialFloat64(t *testing.T) {
	for _, workers := range []int{1, 8} {
		prop := testkit.MapOrdered(workers, kernelScenarios(thermal.KernelPropagator, false),
			func(_ int, s testkit.Scenario) string { return testkit.TraceScenario(s) })
		ref := testkit.MapOrdered(workers, kernelScenarios(thermal.KernelReference, false),
			func(_ int, s testkit.Scenario) string { return testkit.TraceScenario(s) })
		names := kernelScenarios(thermal.KernelPropagator, false)
		for i := range names {
			if err := testkit.DiffTraces(prop[i], ref[i], 0); err != nil {
				t.Errorf("-j%d %s: propagator vs reference kernel diverge: %v",
					workers, names[i].Name, err)
			}
			if strings.Count(prop[i], "\n") < 5 {
				t.Errorf("%s: suspiciously short trace:\n%s", names[i].Name, prop[i])
			}
		}
	}
}

// TestKernelDifferentialFloat32 bounds the reduced-precision variant: the
// float32 kernel may drift in temperature-valued tokens within a small
// relative tolerance, but must never flip anything structural (mappings, VF
// levels, violation or migration counts). The set is restricted to fan-on
// scenarios, which stay clear of the DTM thresholds — near a threshold a
// sub-tolerance temperature difference legitimately flips discrete
// throttling decisions, which is exactly what this gate must not excuse.
func TestKernelDifferentialFloat32(t *testing.T) {
	const tol = 2e-3 // ~2 float32 ulps at 25–90 °C, well below any threshold margin
	prop := kernelScenarios(thermal.KernelPropagator, true)
	f32 := kernelScenarios(thermal.KernelFloat32, true)
	for i := range prop {
		a, b := testkit.TraceScenario(prop[i]), testkit.TraceScenario(f32[i])
		if err := testkit.DiffTraces(a, b, tol); err != nil {
			t.Errorf("%s: float32 kernel beyond tolerance: %v", prop[i].Name, err)
		}
		if a == b {
			t.Errorf("%s: float32 trace is byte-identical to float64 — kernel switch had no effect", prop[i].Name)
		}
	}
}
