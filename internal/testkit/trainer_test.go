package testkit

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/nn"
	"repro/internal/online"
)

// stubLabeler is an always-succeeding DAgger expert: a one-hot of the
// recorded action.
type stubLabeler struct{ dim int }

func (l stubLabeler) Label(s online.Sample) ([]float64, bool, error) {
	y := make([]float64, l.dim)
	y[s.Action%l.dim] = 1
	return y, true, nil
}

// stubPublisher is a minimal in-memory online.Publisher that counts swaps.
type stubPublisher struct {
	mu     sync.Mutex
	models map[int]*nn.MLP
	active int
	next   int
	swaps  int
	shadow int
}

func newStubPublisher(incumbent *nn.MLP) *stubPublisher {
	return &stubPublisher{models: map[int]*nn.MLP{1: incumbent}, active: 1, next: 2}
}

func (p *stubPublisher) Publish(m *nn.MLP, source string) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v := p.next
	p.next++
	p.models[v] = m
	return v, nil
}

func (p *stubPublisher) Swap(version int) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.models[version] == nil {
		return 0, fmt.Errorf("stub: no version %d", version)
	}
	prev := p.active
	p.active = version
	p.swaps++
	return prev, nil
}

func (p *stubPublisher) SetShadow(version int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.shadow = version
	return nil
}

func (p *stubPublisher) ClearShadow() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.shadow = 0
}

func (p *stubPublisher) ActiveVersion() (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active, nil
}

func (p *stubPublisher) ActiveModel() (*nn.MLP, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.models[p.active], nil
}

func (p *stubPublisher) state() (active, swaps int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active, p.swaps
}

// trainerFixture builds a manager over a chaos-wrapped expert and trainer.
func trainerFixture(t *testing.T, c *Chaos, f TrainerFaults) (*online.Manager, *stubPublisher) {
	t.Helper()
	log, err := online.OpenSampleLog(t.TempDir(), 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	incumbent := nn.NewMLP([]int{4, 8, 3}, 1)
	pub := newStubPublisher(incumbent)
	passTrain := func(inc *nn.MLP, ds nn.Dataset, seed int64) (*nn.MLP, error) {
		return inc.Clone(), nil
	}
	mgr, err := online.NewManager(online.ManagerConfig{
		Model:         "m",
		Publisher:     pub,
		Labeler:       c.WrapLabeler(stubLabeler{dim: 3}, f),
		Log:           log,
		Seed:          5,
		MinNewSamples: 1,
		Train:         c.WrapTrain(passTrain, f),
		Metrics:       online.NewMetrics(nil, "m"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return mgr, pub
}

func recordSamples(t *testing.T, mgr *online.Manager, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		s := online.Sample{
			Origin:   online.OriginInfer,
			Features: []float64{float64(i), 1, 2, 3},
			Action:   i % 3,
		}
		if err := mgr.Record(s); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTrainerFaultsFailedRetrainNeverSwaps drives full DAgger cycles with
// a trainer that always fails (one seed panics, another errors): every
// cycle surfaces via online_train_failures, no candidate is staged, and
// the active model never swaps.
func TestTrainerFaultsFailedRetrainNeverSwaps(t *testing.T) {
	for _, tc := range []struct {
		name   string
		faults TrainerFaults
		kind   string
	}{
		{"panic", TrainerFaults{TrainPanicProb: 1}, "train-panic"},
		{"error", TrainerFaults{TrainErrProb: 1}, "train-error"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := NewChaos(SeedFromEnv(11))
			t.Logf("chaos seed %d (replay: %s=%d)", c.Seed(), SeedEnv, c.Seed())
			mgr, pub := trainerFixture(t, c, tc.faults)
			for i := 0; i < 3; i++ {
				recordSamples(t, mgr, 2)
				if err := mgr.RunCycle(int64(100 + i)); err == nil {
					t.Fatalf("cycle %d: injected %s did not surface as an error", i, tc.kind)
				}
			}
			st := mgr.Status()
			if st.TrainFailures != 3 {
				t.Fatalf("TrainFailures = %d, want 3", st.TrainFailures)
			}
			if st.CandidateVersion != 0 {
				t.Fatalf("failed retrain staged candidate v%d", st.CandidateVersion)
			}
			if active, swaps := pub.state(); active != 1 || swaps != 0 {
				t.Fatalf("failed retrain moved the model: active v%d after %d swap(s)", active, swaps)
			}
			if got := c.EventCount(tc.kind); got != 3 {
				t.Fatalf("%d %s events, want 3", got, tc.kind)
			}
			// Serving keeps answering from the incumbent throughout.
			if m, err := pub.ActiveModel(); err != nil || m == nil {
				t.Fatalf("incumbent unavailable after failed retrains: %v", err)
			}
		})
	}
}

// TestTrainerFaultsLabelerFailures injects expert errors and panics: both
// count as label failures, neither reaches the dataset, and a cycle with
// no usable labels never trains.
func TestTrainerFaultsLabelerFailures(t *testing.T) {
	for _, tc := range []struct {
		name   string
		faults TrainerFaults
		kind   string
	}{
		{"error", TrainerFaults{LabelErrProb: 1}, "label-error"},
		{"panic", TrainerFaults{LabelPanicProb: 1}, "label-panic"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := NewChaos(SeedFromEnv(13))
			t.Logf("chaos seed %d (replay: %s=%d)", c.Seed(), SeedEnv, c.Seed())
			mgr, pub := trainerFixture(t, c, tc.faults)
			recordSamples(t, mgr, 4)
			if err := mgr.RunCycle(50); err != nil {
				t.Fatalf("label faults must not fail the cycle: %v", err)
			}
			st := mgr.Status()
			if st.LabelFailures != 4 {
				t.Fatalf("LabelFailures = %d, want 4", st.LabelFailures)
			}
			if st.DatasetSize != 0 || st.TrainCycles != 0 {
				t.Fatalf("faulted labels reached training: dataset %d, cycles %d",
					st.DatasetSize, st.TrainCycles)
			}
			if active, swaps := pub.state(); active != 1 || swaps != 0 {
				t.Fatalf("label faults moved the model: active v%d after %d swap(s)", active, swaps)
			}
			if got := c.EventCount(tc.kind); got != 4 {
				t.Fatalf("%d %s events, want 4", got, tc.kind)
			}
		})
	}
}

// TestCorruptSampleTailRecovery crashes an append mid-line: reopening the
// log must recover every record before the torn tail, drop the rest, and
// keep accepting appends.
func TestCorruptSampleTailRecovery(t *testing.T) {
	dir := t.TempDir()
	log, err := online.OpenSampleLog(dir, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		s := online.Sample{Origin: online.OriginInfer, Features: []float64{float64(i)}, Action: i}
		if _, err := log.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	if err := CorruptSampleTail(dir, 10); err != nil {
		t.Fatal(err)
	}
	re, err := online.OpenSampleLog(dir, 64, 1)
	if err != nil {
		t.Fatalf("reopening a torn log must recover, got %v", err)
	}
	defer re.Close()
	n := re.Len()
	if n == 0 || n >= 8 {
		t.Fatalf("recovered %d samples, want a non-empty strict prefix of 8", n)
	}
	for _, s := range re.Since(0) {
		if len(s.Features) != 1 || s.Features[0] != float64(s.Seq-1) {
			t.Fatalf("recovered sample %d corrupted: %+v", s.Seq, s)
		}
	}
	if _, err := re.Append(online.Sample{Origin: online.OriginInfer, Features: []float64{9}, Action: 1}); err != nil {
		t.Fatalf("append after tail recovery: %v", err)
	}
}
