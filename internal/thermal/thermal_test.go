package thermal

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStartsAtAmbient(t *testing.T) {
	n := HiKey970Network(true, 25)
	for i, v := range n.Temps() {
		if v != 25 {
			t.Errorf("node %d starts at %g, want 25", i, v)
		}
	}
	if n.Max() != 25 {
		t.Errorf("Max = %g, want 25", n.Max())
	}
}

func TestZeroPowerStaysAtAmbient(t *testing.T) {
	n := HiKey970Network(true, 25)
	p := make([]float64, 9)
	n.Step(p, 100)
	for i, v := range n.Temps() {
		if math.Abs(v-25) > 1e-9 {
			t.Errorf("node %d drifted to %g with zero power", i, v)
		}
	}
}

func TestStepConvergesToSteadyState(t *testing.T) {
	n := HiKey970Network(true, 25)
	p := make([]float64, 9)
	p[6] = 3.0 // one hot big core
	p[PkgNode] = 0.5
	want := n.SteadyState(p)
	// Simulate long enough for the slow package time constant (~50 s).
	for i := 0; i < 600; i++ {
		n.Step(p, 1)
	}
	for i, v := range n.Temps() {
		if math.Abs(v-want[i]) > 0.1 {
			t.Errorf("node %d: transient %g vs steady state %g", i, v, want[i])
		}
	}
}

func TestSteadyStateSuperposition(t *testing.T) {
	// The network is linear: steady state of a+b equals sum of responses
	// above ambient.
	n := HiKey970Network(false, 25)
	pa := make([]float64, 9)
	pb := make([]float64, 9)
	pa[0], pb[7] = 1.0, 2.0
	sum := make([]float64, 9)
	for i := range sum {
		sum[i] = pa[i] + pb[i]
	}
	ta, tb, tsum := n.SteadyState(pa), n.SteadyState(pb), n.SteadyState(sum)
	for i := range tsum {
		if got, want := tsum[i]-25, (ta[i]-25)+(tb[i]-25); math.Abs(got-want) > 1e-6 {
			t.Errorf("node %d: superposition violated: %g vs %g", i, got, want)
		}
	}
}

func TestFanCoolsBetter(t *testing.T) {
	p := make([]float64, 9)
	p[5], p[6] = 2.5, 2.5
	p[PkgNode] = 0.5
	fan := HiKey970Network(true, 25).SteadyState(p)
	noFan := HiKey970Network(false, 25).SteadyState(p)
	if noFan[PkgNode] <= fan[PkgNode]+5 {
		t.Errorf("package: no-fan %g vs fan %g, want clearly hotter without fan",
			noFan[PkgNode], fan[PkgNode])
	}
	for i := 0; i < 8; i++ {
		if noFan[i] <= fan[i] {
			t.Errorf("core %d not hotter without fan", i)
		}
	}
}

func TestSpatialCoupling(t *testing.T) {
	// Heating core 4 must raise the temperature of its idle neighbour
	// core 5 above a distant core's rise... all cores share the package,
	// so compare neighbour vs far core on the other cluster.
	n := HiKey970Network(true, 25)
	p := make([]float64, 9)
	p[4] = 3
	ss := n.SteadyState(p)
	if ss[5] <= ss[0] {
		t.Errorf("neighbour core5 (%g) not hotter than far core0 (%g)", ss[5], ss[0])
	}
	if ss[4] <= ss[5] {
		t.Errorf("heated core (%g) not hottest (%g)", ss[4], ss[5])
	}
}

func TestTemporalInertia(t *testing.T) {
	// After a short burst the package must remain warm: temperature
	// depends on history (heat capacity), unlike power.
	n := HiKey970Network(true, 25)
	p := make([]float64, 9)
	p[6] = 4
	for i := 0; i < 30; i++ {
		n.Step(p, 1)
	}
	hot := n.Temp(PkgNode)
	zero := make([]float64, 9)
	n.Step(zero, 5)
	after := n.Temp(PkgNode)
	if after <= 25.5 {
		t.Errorf("package cooled to %g within 5 s, heat capacity too small", after)
	}
	if after >= hot {
		t.Errorf("package did not cool at all: %g -> %g", hot, after)
	}
}

func TestBigCoreRunsHotter(t *testing.T) {
	// Same power into a big core vs a LITTLE core: the LITTLE core has a
	// higher vertical resistance so it gets hotter per watt.
	n := HiKey970Network(true, 25)
	p := make([]float64, 9)
	p[0] = 1.5
	ssL := n.SteadyState(p)
	p[0] = 0
	p[4] = 1.5
	ssB := n.SteadyState(p)
	if ssL[0] <= ssB[4] {
		t.Errorf("LITTLE core per-watt rise (%g) should exceed big's (%g) (thinner core)",
			ssL[0], ssB[4])
	}
}

func TestResetAndSetTemps(t *testing.T) {
	n := HiKey970Network(true, 25)
	p := make([]float64, 9)
	p[4] = 3
	n.Step(p, 10)
	if n.Max() <= 25 {
		t.Fatal("network did not heat up")
	}
	n.Reset()
	for i, v := range n.Temps() {
		if v != 25 {
			t.Errorf("node %d not reset: %g", i, v)
		}
	}
	warm := make([]float64, 9)
	for i := range warm {
		warm[i] = 40
	}
	n.SetTemps(warm)
	if n.Temp(3) != 40 {
		t.Errorf("SetTemps not applied: %g", n.Temp(3))
	}
}

func TestStepStabilityProperty(t *testing.T) {
	// For any bounded power input, temperatures must remain bounded
	// between ambient and the hotspot implied by total power through the
	// worst resistance chain — i.e. the integrator must not diverge.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := HiKey970Network(r.Intn(2) == 0, 25)
		p := make([]float64, 9)
		total := 0.0
		for i := range p {
			p[i] = r.Float64() * 4
			total += p[i]
		}
		for s := 0; s < 50; s++ {
			n.Step(p, 0.01+r.Float64()*2)
		}
		upper := 25 + total*(9+4) + 1 // R_amb + worst vertical resistance
		for _, v := range n.Temps() {
			if v < 25-1e-6 || v > upper || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	n := HiKey970Network(true, 25)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("short power vector", func() { n.Step(make([]float64, 3), 1) })
	mustPanic("zero dt", func() { n.Step(make([]float64, 9), 0) })
	mustPanic("self coupling", func() { n.AddCoupling(1, 1, 0.1) })
	mustPanic("negative conductance", func() { n.AddCoupling(0, 1, -0.1) })
	mustPanic("negative ambient", func() { n.SetAmbientCoupling(0, -1) })
	mustPanic("bad SetTemps", func() { n.SetTemps([]float64{1}) })
	mustPanic("bad steady state", func() { n.SteadyState([]float64{1}) })
	mustPanic("singular network", func() {
		iso := NewNetwork([]Node{{Name: "a", Cap: 1}}, 25)
		iso.SteadyState([]float64{1})
	})
}

func TestCalibrationSanity(t *testing.T) {
	// Two busy big cores at ~2.5 W each plus uncore: with fan the package
	// should settle in the 40-60 °C band the paper reports for loaded
	// operation; without fan clearly hotter but below silicon limits.
	p := make([]float64, 9)
	p[4], p[5], p[PkgNode] = 2.5, 2.5, 0.5
	fan := HiKey970Network(true, 25).SteadyState(p)
	noFan := HiKey970Network(false, 25).SteadyState(p)
	if fan[PkgNode] < 40 || fan[PkgNode] > 60 {
		t.Errorf("fan package steady state = %.1f, want 40-60 °C", fan[PkgNode])
	}
	if noFan[PkgNode] < 60 || noFan[PkgNode] > 95 {
		t.Errorf("no-fan package steady state = %.1f, want 60-95 °C", noFan[PkgNode])
	}
}

func TestTempsReturnsCopy(t *testing.T) {
	n := HiKey970Network(true, 25)
	ts := n.Temps()
	ts[0] = 999
	if n.Temp(0) == 999 {
		t.Error("Temps returned the live internal slice")
	}
}

func TestTempsInto(t *testing.T) {
	n := HiKey970Network(true, 25)
	p := make([]float64, 9)
	p[4] = 3
	n.Step(p, 10)
	dst := make([]float64, len(n.Nodes))
	n.TempsInto(dst)
	for i, v := range n.Temps() {
		if dst[i] != v {
			t.Errorf("node %d: TempsInto %g != Temps %g", i, dst[i], v)
		}
	}
	// Writing through the buffer must not touch network state.
	dst[4] = -1
	if n.Temp(4) == -1 {
		t.Error("TempsInto aliased internal state")
	}
	defer func() {
		if recover() == nil {
			t.Error("short buffer: expected panic")
		}
	}()
	n.TempsInto(make([]float64, 2))
}

func TestStepAndTempsIntoDoNotAllocate(t *testing.T) {
	n := HiKey970Network(true, 25)
	p := make([]float64, 9)
	p[4], p[6] = 2, 3
	dst := make([]float64, len(n.Nodes))
	n.Step(p, 0.01) // warm the lazy stableStep cache
	allocs := testing.AllocsPerRun(100, func() {
		n.Step(p, 0.01)
		n.TempsInto(dst)
	})
	if allocs != 0 {
		t.Errorf("Step+TempsInto allocate %.1f objects per tick, want 0", allocs)
	}
}

func BenchmarkNetworkStep(b *testing.B) {
	n := HiKey970Network(true, 25)
	p := make([]float64, 9)
	p[4], p[6], p[PkgNode] = 2, 3, 0.5
	n.Step(p, 0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step(p, 0.01)
	}
}
