package thermal

import (
	"fmt"
	"math"
)

// Floorplan support: derive an RC network from die geometry instead of
// hand-picked conductances, in the spirit of compact thermal models such as
// HotSpot. Each rectangular block becomes one node; lateral conductances
// follow shared edge length and center distance, vertical conductance and
// heat capacity follow block area. The hand-calibrated HiKey970Network
// remains the default for experiments; the floorplan path exists to justify
// its parameters and to model other chips.

// Block is one rectangular floorplan unit (dimensions in millimetres).
type Block struct {
	Name string
	X, Y float64 // lower-left corner, mm
	W, H float64 // width and height, mm
}

// Area returns the block area in mm².
func (b Block) Area() float64 { return b.W * b.H }

// center returns the block's center coordinates.
func (b Block) center() (float64, float64) { return b.X + b.W/2, b.Y + b.H/2 }

// sharedEdge returns the length (mm) of the boundary shared by two blocks,
// 0 if they only touch at a corner or are apart. Blocks are assumed
// non-overlapping.
func sharedEdge(a, b Block) float64 {
	const eps = 1e-9
	// Vertical adjacency (a right edge touching b left edge, either order).
	if math.Abs((a.X+a.W)-b.X) < eps || math.Abs((b.X+b.W)-a.X) < eps {
		lo := math.Max(a.Y, b.Y)
		hi := math.Min(a.Y+a.H, b.Y+b.H)
		if hi > lo {
			return hi - lo
		}
	}
	// Horizontal adjacency.
	if math.Abs((a.Y+a.H)-b.Y) < eps || math.Abs((b.Y+b.H)-a.Y) < eps {
		lo := math.Max(a.X, b.X)
		hi := math.Min(a.X+a.W, b.X+b.W)
		if hi > lo {
			return hi - lo
		}
	}
	return 0
}

// FloorplanConfig holds the material/package parameters of the compact
// model.
type FloorplanConfig struct {
	// KLateral is the effective lateral conductance per unit
	// (edge length / center distance), in W/K. It lumps silicon
	// conductivity and die thickness.
	KLateral float64
	// KVerticalPerArea is the block-to-package conductance per mm², W/(K·mm²).
	KVerticalPerArea float64
	// CapPerArea is the per-block heat capacity per mm², J/(K·mm²). It
	// lumps silicon and the immediately attached package mass.
	CapPerArea float64
	// PkgCap is the package/board node heat capacity, J/K.
	PkgCap float64
	// PkgToAmb is the package-to-ambient convection conductance, W/K.
	PkgToAmb float64
	// TAmb is the ambient temperature, °C.
	TAmb float64
}

// DefaultFloorplanConfig returns parameters calibrated so that the
// HiKey970Floorplan reproduces the hand-tuned HiKey970Network's behaviour:
// with a fan, ≈4 K/W package-to-ambient.
func DefaultFloorplanConfig(fan bool, tAmb float64) FloorplanConfig {
	cfg := FloorplanConfig{
		KLateral:         0.35,
		KVerticalPerArea: 0.25,
		CapPerArea:       0.075,
		PkgCap:           12,
		PkgToAmb:         0.25,
		TAmb:             tAmb,
	}
	if !fan {
		cfg.PkgToAmb = 0.11
	}
	return cfg
}

// FromFloorplan builds an RC network with one node per block plus a final
// package node (index len(blocks), exposed by the returned pkg index).
// Blocks must not overlap; only adjacency (shared edges) produces lateral
// coupling. It panics on an empty floorplan, a block with non-positive
// size, or overlapping blocks: floorplans are static data, so a malformed
// one is a programming error.
func FromFloorplan(blocks []Block, cfg FloorplanConfig) (n *Network, pkg int) {
	if len(blocks) == 0 {
		panic("thermal: empty floorplan")
	}
	for i, b := range blocks {
		if b.W <= 0 || b.H <= 0 {
			panic(fmt.Sprintf("thermal: block %d (%s) has non-positive size", i, b.Name))
		}
	}
	for i := range blocks {
		for j := i + 1; j < len(blocks); j++ {
			if overlap(blocks[i], blocks[j]) {
				panic(fmt.Sprintf("thermal: blocks %s and %s overlap",
					blocks[i].Name, blocks[j].Name))
			}
		}
	}

	nodes := make([]Node, len(blocks)+1)
	for i, b := range blocks {
		nodes[i] = Node{Name: b.Name, Cap: cfg.CapPerArea * b.Area()}
	}
	pkg = len(blocks)
	nodes[pkg] = Node{Name: "package", Cap: cfg.PkgCap}

	n = NewNetwork(nodes, cfg.TAmb)
	for i, b := range blocks {
		n.AddCoupling(i, pkg, cfg.KVerticalPerArea*b.Area())
		for j := i + 1; j < len(blocks); j++ {
			edge := sharedEdge(b, blocks[j])
			if edge <= 0 {
				continue
			}
			xi, yi := b.center()
			xj, yj := blocks[j].center()
			dist := math.Hypot(xi-xj, yi-yj)
			n.AddCoupling(i, j, cfg.KLateral*edge/dist)
		}
	}
	n.SetAmbientCoupling(pkg, cfg.PkgToAmb)
	return n, pkg
}

// overlap reports whether two blocks' interiors intersect.
func overlap(a, b Block) bool {
	const eps = 1e-9
	return a.X+a.W > b.X+eps && b.X+b.W > a.X+eps &&
		a.Y+a.H > b.Y+eps && b.Y+b.H > a.Y+eps
}

// HiKey970Floorplan returns an approximate Kirin 970 CPU-corner floorplan:
// four A53 cores (~1 mm² each) in a row, four A73 cores (~2 mm² each) in a
// row above them. Blocks 0-3 are the LITTLE cores, 4-7 the big cores,
// matching the engine's core numbering.
func HiKey970Floorplan() []Block {
	blocks := make([]Block, 8)
	for i := 0; i < 4; i++ {
		blocks[i] = Block{
			Name: fmt.Sprintf("little%d", i),
			X:    float64(i) * 1.0, Y: 0, W: 1.0, H: 1.0,
		}
	}
	for i := 0; i < 4; i++ {
		blocks[4+i] = Block{
			Name: fmt.Sprintf("big%d", i),
			X:    float64(i) * 1.45, Y: 1.0, W: 1.45, H: 1.4,
		}
	}
	return blocks
}
