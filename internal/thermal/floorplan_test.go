package thermal

import (
	"math"
	"testing"
)

func TestSharedEdge(t *testing.T) {
	a := Block{Name: "a", X: 0, Y: 0, W: 1, H: 1}
	cases := []struct {
		name string
		b    Block
		want float64
	}{
		{"right neighbour", Block{X: 1, Y: 0, W: 1, H: 1}, 1},
		{"right partial", Block{X: 1, Y: 0.5, W: 1, H: 1}, 0.5},
		{"top neighbour", Block{X: 0, Y: 1, W: 2, H: 1}, 1},
		{"corner only", Block{X: 1, Y: 1, W: 1, H: 1}, 0},
		{"apart", Block{X: 3, Y: 0, W: 1, H: 1}, 0},
	}
	for _, c := range cases {
		if got := sharedEdge(a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: edge = %g, want %g", c.name, got, c.want)
		}
		// Symmetry.
		if got := sharedEdge(c.b, a); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s (swapped): edge = %g, want %g", c.name, got, c.want)
		}
	}
}

func TestFromFloorplanBasics(t *testing.T) {
	blocks := HiKey970Floorplan()
	if len(blocks) != 8 {
		t.Fatalf("blocks = %d", len(blocks))
	}
	n, pkg := FromFloorplan(blocks, DefaultFloorplanConfig(true, 25))
	if pkg != 8 || len(n.Nodes) != 9 {
		t.Fatalf("pkg=%d nodes=%d", pkg, len(n.Nodes))
	}
	// Big blocks have larger capacity than LITTLE blocks.
	if n.Nodes[4].Cap <= n.Nodes[0].Cap {
		t.Errorf("big cap %g not above LITTLE cap %g", n.Nodes[4].Cap, n.Nodes[0].Cap)
	}
}

func TestFloorplanReproducesCalibratedBehaviour(t *testing.T) {
	// The geometry-derived network must show the same qualitative
	// behaviour as the hand-calibrated preset.
	fp, _ := FromFloorplan(HiKey970Floorplan(), DefaultFloorplanConfig(true, 25))
	hand := HiKey970Network(true, 25)

	probe := func(n *Network, core int, w float64) float64 {
		p := make([]float64, len(n.Nodes))
		p[core] = w
		return n.SteadyState(p)[core] - 25
	}
	// 1. LITTLE cores rise more per watt than big cores (smaller area).
	if probe(fp, 0, 1) <= probe(fp, 4, 1) {
		t.Error("floorplan: LITTLE per-watt rise not above big's")
	}
	// 2. Neighbour coupling: heating big0 (node 4) warms big1 (node 5)
	// more than the distant little3.
	p := make([]float64, 9)
	p[4] = 3
	ss := fp.SteadyState(p)
	if ss[5] <= ss[3] {
		t.Errorf("floorplan: neighbour %g not hotter than distant %g", ss[5], ss[3])
	}
	// 3. Per-watt core rises within 2.5x of the hand-calibrated preset.
	for _, core := range []int{0, 4} {
		f, h := probe(fp, core, 1.5), probe(hand, core, 1.5)
		if ratio := f / h; ratio < 0.4 || ratio > 2.5 {
			t.Errorf("core %d: floorplan rise %g vs calibrated %g (ratio %g)",
				core, f, h, ratio)
		}
	}
}

func TestFloorplanFanMatters(t *testing.T) {
	p := make([]float64, 9)
	p[4], p[5] = 2, 2
	fan, _ := FromFloorplan(HiKey970Floorplan(), DefaultFloorplanConfig(true, 25))
	noFan, _ := FromFloorplan(HiKey970Floorplan(), DefaultFloorplanConfig(false, 25))
	if noFan.SteadyState(p)[8] <= fan.SteadyState(p)[8] {
		t.Error("passive cooling not hotter than active")
	}
}

func TestFromFloorplanPanics(t *testing.T) {
	cfg := DefaultFloorplanConfig(true, 25)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("empty", func() { FromFloorplan(nil, cfg) })
	mustPanic("zero size", func() {
		FromFloorplan([]Block{{Name: "x", W: 0, H: 1}}, cfg)
	})
	mustPanic("overlap", func() {
		FromFloorplan([]Block{
			{Name: "a", X: 0, Y: 0, W: 2, H: 2},
			{Name: "b", X: 1, Y: 1, W: 2, H: 2},
		}, cfg)
	})
}

func TestFloorplanUsableBySimulation(t *testing.T) {
	// The floorplan network slots into the same integration loop.
	n, pkg := FromFloorplan(HiKey970Floorplan(), DefaultFloorplanConfig(true, 25))
	p := make([]float64, len(n.Nodes))
	p[6] = 3
	p[pkg] = 0.5
	// The package time constant is ~50 s; integrate well past it.
	for i := 0; i < 800; i++ {
		n.Step(p, 0.5)
	}
	want := n.SteadyState(p)
	for i, v := range n.Temps() {
		if math.Abs(v-want[i]) > 0.5 {
			t.Errorf("node %d: %g vs steady %g", i, v, want[i])
		}
	}
}
