package thermal

// This file implements the precomputed RC propagator kernel.
//
// Derivation. One forward-Euler substep of length h is, per node i,
//
//	T'_i = T_i + h/C_i · (u_i + gAmb_i·(TAmb − T_i) + Σ_j g_ij·(T_j − T_i))
//
// which in matrix form is the affine update
//
//	T' = A·T + B·u + c
//	A_ij = h·g_ij/C_i (i≠j),  A_ii = 1 − h·(gAmb_i + Σ_j g_ij)/C_i
//	B    = diag(h/C_i)
//	c_i  = h/C_i · gAmb_i · TAmb
//
// G, C, TAmb and the substep h are fixed between AddCoupling /
// SetAmbientCoupling / SetAmbient mutations, so A, B and c are
// precomputed once. Power is held constant over a tick, so the k substeps
// of one tick collapse into a single affine update
//
//	T(+dt) = A^k·T + S·(B·u + c),   S = Σ_{m<k} A^m
//
// computed by repeated squaring: composing two collapsed updates
// (P1, S1) and (P2, S2) gives (P2·P1, P2·S1 + S2), so A^k and S build in
// O(log k) matrix multiplies. The collapsed update is applied as a tight
// alloc-free matvec over flat row-major float64 arrays — no [][]float64
// pointer chasing, no per-element zero checks, one multiply-add per
// matrix entry.
//
// Numerical contract: for k == 1 the kernel performs bit-for-bit the same
// float64 operations as the naive per-substep reference (stepReference),
// because P, Q, r are then exactly A, diag(B), c and both evaluate rows
// in the same order — the differential gates in internal/testkit pin
// byte-identical float64 traces on this. For k > 1 the collapse
// reassociates the substep recurrence, so kernel and reference agree only
// to rounding (~1e-12 relative); every fig-suite configuration has k == 1
// (dt = 10 ms against a ≥ 27 ms stability step). The float32 kernel
// converts state and power per tick and accumulates in float32; it is
// gated by a tolerance-band differential check, never byte identity.

// Kernel selects the integration kernel Step uses. The zero value is the
// default float64 propagator.
type Kernel int

const (
	// KernelPropagator is the default: the collapsed float64 propagator
	// applied as a flat matvec.
	KernelPropagator Kernel = iota
	// KernelFloat32 applies the propagator in float32 arithmetic
	// (roughly half the memory traffic; ~1e-5 relative temperature
	// error). Gate deployments behind the testkit tolerance diff.
	KernelFloat32
	// KernelReference is the naive per-substep dense Euler stepper,
	// rebuilt from G, C and TAmb on every call. It exists as the
	// differential-gate reference and for tests; it is allocation-heavy
	// and must not be used on hot paths.
	KernelReference
)

// SetKernel selects the integration kernel for subsequent Step calls and
// invalidates the cached propagator.
func (n *Network) SetKernel(k Kernel) {
	n.kernel = k
	n.prop = nil
}

// ActiveKernel returns the kernel selected via SetKernel.
func (n *Network) ActiveKernel() Kernel { return n.kernel }

// propagator is the cached collapsed update for one (dt, TAmb, topology)
// combination: T' = P·T + Q·u + r with all matrices flat row-major.
type propagator struct {
	dt    float64 // tick length the cache was built for (s)
	tAmb  float64 // ambient the drive vector bakes in (°C)
	steps int     // substeps collapsed into P
	nn    int     // node count

	p     []float64 // nn×nn collapsed transition A^k
	qDiag []float64 // steps==1 fast path: diagonal input map h/C_i
	q     []float64 // steps>1: nn×nn dense input map S·B (nil when steps==1)
	r     []float64 // collapsed ambient drive S·c

	// steps==1 sparse form of A: RC networks couple each node to a handful
	// of neighbours, so most of a row is exactly zero. Skipping a zero
	// entry removes an `acc += 0·t_j` addition, which leaves the running
	// sum bit-identical (adding ±0 to a float is the identity away from
	// the signed-zero corner no physical temperature reaches), so the CSR
	// matvec preserves the byte-identity contract with the reference.
	rowPtr []int32
	colIdx []int32
	vals   []float64

	tNew []float64 // matvec output scratch
	d    []float64 // steps>1 scratch: Q·u + r for this tick

	// float32 mirrors, built only under KernelFloat32.
	p32, q32         []float32
	qDiag32, r32     []float32
	t32, u32, tNew32 []float32
}

// eulerMatrices builds the per-substep affine update (A, bDiag, c) for
// substep length h. It is the single place defining the arithmetic that
// produces the matrix entries, shared by the propagator build and the
// reference stepper so both see bit-identical values.
func (n *Network) eulerMatrices(h float64) (a []float64, bDiag, c []float64) {
	nn := len(n.Nodes)
	a = make([]float64, nn*nn)
	bDiag = make([]float64, nn)
	c = make([]float64, nn)
	for i := 0; i < nn; i++ {
		hc := h / n.Nodes[i].Cap
		sum := n.gAmb[i]
		for j := 0; j < nn; j++ {
			sum += n.g[i][j]
			a[i*nn+j] = hc * n.g[i][j]
		}
		a[i*nn+i] = 1 - hc*sum
		bDiag[i] = hc
		c[i] = hc * n.gAmb[i] * n.TAmb
	}
	return a, bDiag, c
}

// buildPropagator constructs and caches the collapsed update for tick
// length dt. Cold path: it runs only after topology/ambient/kernel/dt
// changes and may allocate freely.
func (n *Network) buildPropagator(dt float64) *propagator {
	nn := len(n.Nodes)
	h := n.stableStep()
	steps := substepsFor(dt, h)
	hs := dt / float64(steps)
	a, bDiag, c := n.eulerMatrices(hs)

	pr := &propagator{
		dt: dt, tAmb: n.TAmb, steps: steps, nn: nn,
		tNew: make([]float64, nn),
	}
	if steps == 1 {
		// Exactly one substep: the collapsed update IS the substep, so
		// the kernel stays bit-identical to the reference stepper. Compress
		// A to CSR (ascending column order keeps the accumulation order).
		pr.p, pr.qDiag, pr.r = a, bDiag, c
		pr.rowPtr = make([]int32, nn+1)
		for i := 0; i < nn; i++ {
			for j := 0; j < nn; j++ {
				if v := a[i*nn+j]; v != 0 {
					pr.colIdx = append(pr.colIdx, int32(j))
					pr.vals = append(pr.vals, v)
				}
			}
			pr.rowPtr[i+1] = int32(len(pr.vals))
		}
	} else {
		p, s := collapse(a, nn, steps)
		// Q = S·B with diagonal B scales S's columns; r = S·c.
		q := make([]float64, nn*nn)
		r := make([]float64, nn)
		for i := 0; i < nn; i++ {
			acc := 0.0
			for j := 0; j < nn; j++ {
				q[i*nn+j] = s[i*nn+j] * bDiag[j]
				acc += s[i*nn+j] * c[j]
			}
			r[i] = acc
		}
		pr.p, pr.q, pr.r = p, q, r
		pr.d = make([]float64, nn)
	}
	if n.kernel == KernelFloat32 {
		pr.p32 = toF32(pr.p)
		pr.q32 = toF32(pr.q)
		pr.qDiag32 = toF32(pr.qDiag)
		pr.r32 = toF32(pr.r)
		pr.t32 = make([]float32, nn)
		pr.u32 = make([]float32, nn)
		pr.tNew32 = make([]float32, nn)
	}
	n.prop = pr
	return pr
}

func toF32(v []float64) []float32 {
	if v == nil {
		return nil
	}
	out := make([]float32, len(v))
	for i, x := range v {
		out[i] = float32(x)
	}
	return out
}

// collapse returns (A^k, Σ_{m<k} A^m) by repeated squaring. Updates
// compose as (P2, S2)∘(P1, S1) = (P2·P1, P2·S1 + S2): applying the pair
// means T → P·T + S·d for the per-substep drive d = B·u + c.
func collapse(a []float64, nn, k int) (p, s []float64) {
	p = identity(nn)           // accumulator: zero substeps
	s = make([]float64, nn*nn) // Σ over zero substeps = 0
	baseP := append([]float64(nil), a...)
	baseS := identity(nn) // one substep: S = I
	for k > 0 {
		if k&1 == 1 {
			// acc = base ∘ acc
			s = matAdd(matMul(baseP, s, nn), baseS)
			p = matMul(baseP, p, nn)
		}
		k >>= 1
		if k > 0 {
			baseS = matAdd(matMul(baseP, baseS, nn), baseS)
			baseP = matMul(baseP, baseP, nn)
		}
	}
	return p, s
}

func identity(nn int) []float64 {
	m := make([]float64, nn*nn)
	for i := 0; i < nn; i++ {
		m[i*nn+i] = 1
	}
	return m
}

func matMul(a, b []float64, nn int) []float64 {
	out := make([]float64, nn*nn)
	for i := 0; i < nn; i++ {
		for l := 0; l < nn; l++ {
			ail := a[i*nn+l]
			if ail == 0 {
				continue
			}
			for j := 0; j < nn; j++ {
				out[i*nn+j] += ail * b[l*nn+j]
			}
		}
	}
	return out
}

func matAdd(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// step applies the collapsed float64 update in place: t ← P·t + Q·u + r.
// Row evaluation order (drive term, then P·t accumulation, then input
// term) matches stepReference exactly — see the numerical contract above.
//
//hot:per-simulation-tick
func (pr *propagator) step(t, u []float64) {
	nn := pr.nn
	p := pr.p
	out := pr.tNew
	if pr.steps == 1 {
		qd := pr.qDiag
		rp, ci, vs := pr.rowPtr, pr.colIdx, pr.vals
		for i := 0; i < nn; i++ {
			acc := pr.r[i]
			for k := rp[i]; k < rp[i+1]; k++ {
				acc += vs[k] * t[ci[k]]
			}
			acc += qd[i] * u[i]
			out[i] = acc
		}
		copy(t, out)
		return
	}
	// Collapsed multi-substep form: d = Q·u + r once per tick, then one
	// transition matvec.
	d := pr.d
	q := pr.q
	for i := 0; i < nn; i++ {
		acc := pr.r[i]
		row := q[i*nn : i*nn+nn]
		for j, uj := range u {
			acc += row[j] * uj
		}
		d[i] = acc
	}
	for i := 0; i < nn; i++ {
		acc := d[i]
		row := p[i*nn : i*nn+nn]
		for j, tj := range t {
			acc += row[j] * tj
		}
		out[i] = acc
	}
	copy(t, out)
}

// step32 is the float32 variant: state and power convert in and out each
// tick (the float64 slice in Network stays the master state), and the
// matvec accumulates in float32.
//
//hot:per-simulation-tick
func (pr *propagator) step32(t, u []float64) {
	nn := pr.nn
	t32, u32, out := pr.t32, pr.u32, pr.tNew32
	for i := 0; i < nn; i++ {
		t32[i] = float32(t[i])
		u32[i] = float32(u[i])
	}
	p := pr.p32
	if pr.steps == 1 {
		qd := pr.qDiag32
		for i := 0; i < nn; i++ {
			acc := pr.r32[i]
			row := p[i*nn : i*nn+nn]
			for j, tj := range t32 {
				acc += row[j] * tj
			}
			acc += qd[i] * u32[i]
			out[i] = acc
		}
	} else {
		q := pr.q32
		for i := 0; i < nn; i++ {
			acc := pr.r32[i]
			row := q[i*nn : i*nn+nn]
			for j, uj := range u32 {
				acc += row[j] * uj
			}
			for j, tj := range t32 {
				acc += p[i*nn+j] * tj
			}
			out[i] = acc
		}
	}
	for i := 0; i < nn; i++ {
		t[i] = float64(out[i])
	}
}

// stepReference is the retained naive Euler stepper: it rebuilds the
// per-substep matrices from G, C and TAmb on every call and applies the k
// substeps one by one with freshly allocated scratch. It is the
// bit-level reference for the k == 1 kernel (same row evaluation order)
// and the rounding-level reference for collapsed k > 1 updates. Test and
// gate use only — it allocates on every call.
func (n *Network) stepReference(power []float64, dt float64) {
	nn := len(n.Nodes)
	h := n.stableStep()
	steps := substepsFor(dt, h)
	hs := dt / float64(steps)
	a, bDiag, c := n.eulerMatrices(hs)
	tNew := make([]float64, nn)
	for s := 0; s < steps; s++ {
		for i := 0; i < nn; i++ {
			acc := c[i]
			row := a[i*nn : i*nn+nn]
			for j, tj := range n.t {
				acc += row[j] * tj
			}
			acc += bDiag[i] * power[i]
			tNew[i] = acc
		}
		copy(n.t, tNew)
	}
}
