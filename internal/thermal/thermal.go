// Package thermal implements a lumped RC thermal network of the chip and
// package, reproducing the two effects that the paper argues distinguish
// temperature from power/energy optimization:
//
//   - spatial: heat transfer between cores and through the package couples
//     every core's temperature to every other core's power, and
//   - temporal: heat capacities make temperature depend on the entire power
//     history, not only the current configuration.
//
// The network is a set of nodes (one per core plus a package node), each
// with a heat capacity, connected by thermal conductances to each other and
// to the ambient. The fan of the paper's active-cooling setup is modelled
// as a larger package-to-ambient conductance.
package thermal

import "fmt"

// Node is one thermal node of the network.
type Node struct {
	Name string
	Cap  float64 // heat capacity in J/K
}

// Network is a lumped RC thermal model. Temperatures are in °C, powers in
// W, conductances in W/K.
//
// Stepping semantics: the network advances by subdivided forward Euler,
// expressed in matrix form as the affine per-substep update
// T' = A·T + B·u + c (see propagator.go for the derivation). Step applies
// a cached, collapsed form of that update; the Kernel selects between the
// default float64 propagator, a float32 variant, and the naive per-substep
// Euler reference retained for differential gates.
type Network struct {
	Nodes []Node
	// TAmb is the ambient temperature in °C. It may be set before the
	// first Step; afterwards use SetAmbient so the cached propagator is
	// rebuilt (Step also self-heals on a direct field write, at the cost
	// of a rebuild).
	TAmb float64

	g    [][]float64 // symmetric node-to-node conductances
	gAmb []float64   // node-to-ambient conductances
	t    []float64   // current temperatures

	kernel Kernel      // integration kernel selected via SetKernel
	prop   *propagator // cached collapsed update; nil after mutations

	// maxStep is the largest integration step (s) guaranteeing forward-
	// Euler stability; computed lazily from capacities and conductances.
	maxStep float64
}

// NewNetwork creates a network with all nodes at ambient temperature and no
// couplings.
func NewNetwork(nodes []Node, tAmb float64) *Network {
	n := len(nodes)
	g := make([][]float64, n)
	for i := range g {
		g[i] = make([]float64, n)
	}
	t := make([]float64, n)
	for i := range t {
		t[i] = tAmb
	}
	return &Network{
		Nodes: nodes,
		TAmb:  tAmb,
		g:     g,
		gAmb:  make([]float64, n),
		t:     t,
	}
}

// AddCoupling adds a thermal conductance of g W/K between nodes i and j.
// It panics on self-coupling or a negative conductance.
func (n *Network) AddCoupling(i, j int, g float64) {
	if i == j {
		panic("thermal: self coupling")
	}
	if g < 0 {
		panic("thermal: negative conductance")
	}
	n.g[i][j] += g
	n.g[j][i] += g
	n.maxStep = 0
	n.prop = nil
}

// SetAmbientCoupling sets the conductance from node i to ambient (W/K).
// It panics on a negative conductance.
func (n *Network) SetAmbientCoupling(i int, g float64) {
	if g < 0 {
		panic("thermal: negative conductance")
	}
	n.gAmb[i] = g
	n.maxStep = 0
	n.prop = nil
}

// SetAmbient changes the ambient temperature (°C) and invalidates the
// cached propagator, whose drive vector bakes in the ambient term. Node
// temperatures are left untouched.
func (n *Network) SetAmbient(tAmbC float64) {
	n.TAmb = tAmbC
	n.prop = nil
}

// panicMsg keeps panic's interface conversion out of the //hot callers:
// even a constant message counts against the zero-allocation gate. It
// always panics with msg.
//
//go:noinline
func panicMsg(msg string) { panic(msg) }

// panicPowerLen keeps the formatting allocation out of the //hot Step:
// fmt.Sprintf arguments escape, and the gate must only see the live path.
//
//go:noinline
func panicPowerLen(got, want int) {
	panic(fmt.Sprintf("thermal: power vector length %d, want %d", got, want))
}

// stableStep returns a forward-Euler step below the stability limit
// dt < C_i / ΣG_i for every node.
//
//hot:per-simulation-tick
func (n *Network) stableStep() float64 {
	if n.maxStep > 0 {
		return n.maxStep
	}
	best := 1.0
	for i := range n.Nodes {
		sum := n.gAmb[i]
		for j := range n.Nodes {
			sum += n.g[i][j]
		}
		if sum <= 0 {
			continue
		}
		if dt := 0.5 * n.Nodes[i].Cap / sum; dt < best {
			best = dt
		}
	}
	n.maxStep = best
	return best
}

// Substeps returns the number of forward-Euler substeps Step subdivides dt
// into: ceil(dt / stableStep), where a dt that is an exact multiple of the
// stability step uses exactly dt/stableStep substeps (no spurious extra
// subdivision). It panics on a non-positive dt.
func (n *Network) Substeps(dt float64) int {
	if dt <= 0 {
		panicMsg("thermal: non-positive dt")
	}
	return substepsFor(dt, n.stableStep())
}

// substepsFor is the substep-count rule shared by the kernels: the
// smallest k with dt/k ≤ h. The truncate-then-check form makes exact
// multiples of h (dt = k·h) use exactly k substeps instead of k+1.
func substepsFor(dt, h float64) int {
	steps := int(dt / h)
	if float64(steps)*h < dt {
		steps++ // fractional ratio: round up to stay under the limit
	}
	if steps < 1 {
		steps = 1
	}
	return steps
}

// Step advances the network by dt seconds with the given per-node power
// injection (W), held constant over the tick. It subdivides dt internally
// to stay within the explicit integration stability limit and applies the
// substeps through the cached propagator of the selected kernel (see
// propagator.go); the cache rebuilds automatically after coupling,
// ambient, kernel, or dt changes. It panics on a power vector of the
// wrong length or a non-positive dt.
//
//hot:per-simulation-tick
func (n *Network) Step(power []float64, dt float64) {
	if len(power) != len(n.Nodes) {
		panicPowerLen(len(power), len(n.Nodes))
	}
	if dt <= 0 {
		panicMsg("thermal: non-positive dt")
	}
	if n.kernel == KernelReference {
		n.stepReference(power, dt)
		return
	}
	pr := n.prop
	if pr == nil || pr.dt != dt || pr.tAmb != n.TAmb {
		pr = n.buildPropagator(dt) // cold path: mutation or new dt
	}
	if n.kernel == KernelFloat32 {
		pr.step32(n.t, power)
		return
	}
	pr.step(n.t, power)
}

// Temps returns a copy of the current node temperatures in °C. Hot paths
// that cannot afford the allocation should use TempsInto with a reused
// buffer instead.
func (n *Network) Temps() []float64 { return append([]float64(nil), n.t...) }

// TempsInto copies the current node temperatures in °C into dst without
// allocating. It panics on a length mismatch: callers size the buffer from
// len(Nodes) once, so a mismatch is a programming error.
func (n *Network) TempsInto(dst []float64) {
	if len(dst) != len(n.t) {
		panic("thermal: temperature buffer length mismatch")
	}
	copy(dst, n.t)
}

// TempsView returns the live node-temperature slice in °C without copying.
// The slice aliases network state: callers must treat it as read-only and
// must not retain it across mutations of the network from other
// goroutines. It exists for the per-tick fused power→thermal→sensor path,
// where even a 9-element copy per tick is measurable.
func (n *Network) TempsView() []float64 { return n.t }

// Temp returns the temperature of node i.
func (n *Network) Temp(i int) float64 { return n.t[i] }

// Max returns the hottest node temperature.
func (n *Network) Max() float64 {
	m := n.t[0]
	for _, v := range n.t[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Reset returns all nodes to ambient temperature.
func (n *Network) Reset() {
	for i := range n.t {
		n.t[i] = n.TAmb
	}
}

// SetTemps overwrites the node temperatures in °C (e.g. to start an
// experiment from a warmed-up state). It panics on a length mismatch.
func (n *Network) SetTemps(t []float64) {
	if len(t) != len(n.t) {
		panic("thermal: temperature vector length mismatch")
	}
	copy(n.t, t)
}

// SteadyState solves for the equilibrium temperatures (°C) under constant
// per-node power (W), without modifying the network state. It performs
// Gaussian elimination on the conductance matrix; the system is strictly
// diagonally dominant as long as every node has a path to ambient. It
// panics on a power vector of the wrong length or a singular network
// (a node with no path to ambient).
func (n *Network) SteadyState(power []float64) []float64 {
	if len(power) != len(n.Nodes) {
		panic("thermal: power vector length mismatch")
	}
	size := len(n.Nodes)
	// Build A·T = b with A[i][i] = gAmb[i] + Σ_j g[i][j],
	// A[i][j] = -g[i][j], b[i] = P[i] + gAmb[i]·TAmb.
	a := make([][]float64, size)
	b := make([]float64, size)
	for i := 0; i < size; i++ {
		a[i] = make([]float64, size)
		diag := n.gAmb[i]
		for j := 0; j < size; j++ {
			diag += n.g[i][j]
			a[i][j] = -n.g[i][j]
		}
		a[i][i] = diag
		b[i] = power[i] + n.gAmb[i]*n.TAmb
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < size; col++ {
		piv := col
		for r := col + 1; r < size; r++ {
			if abs(a[r][col]) > abs(a[piv][col]) {
				piv = r
			}
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		if a[col][col] == 0 {
			panic("thermal: singular network (node without path to ambient)")
		}
		for r := col + 1; r < size; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < size; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	t := make([]float64, size)
	for i := size - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < size; j++ {
			sum -= a[i][j] * t[j]
		}
		t[i] = sum / a[i][i]
	}
	return t
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// --- HiKey970 floorplan preset ---

// PkgNode is the index of the package node in networks built by HiKey970Network.
const PkgNode = 8

// HiKey970Network builds the thermal model of the HiKey970: eight core
// nodes (0-3 LITTLE, 4-7 big) coupled laterally within each cluster and
// vertically into a shared package/board node, which convects to ambient.
// fan selects the active-cooling setup used for oracle trace collection;
// without a fan the package-to-ambient resistance roughly doubles,
// reproducing the paper's passive-cooling generalization experiment.
func HiKey970Network(fan bool, tAmb float64) *Network {
	nodes := make([]Node, 9)
	for i := 0; i < 4; i++ {
		nodes[i] = Node{Name: fmt.Sprintf("little%d", i), Cap: 0.05}
	}
	for i := 4; i < 8; i++ {
		nodes[i] = Node{Name: fmt.Sprintf("big%d", i-4), Cap: 0.15}
	}
	nodes[PkgNode] = Node{Name: "package", Cap: 12}
	n := NewNetwork(nodes, tAmb)

	// Vertical: core to package. Big cores have larger area, hence better
	// conduction into the package; the LITTLE cores' lower power density
	// keeps their per-watt rise only moderately above the big cores'.
	for i := 0; i < 4; i++ {
		n.SetAmbientCoupling(i, 0) // cores reach ambient only via the package
		n.AddCoupling(i, PkgNode, 0.40)
	}
	for i := 4; i < 8; i++ {
		n.AddCoupling(i, PkgNode, 0.50)
	}
	// Lateral: neighbouring cores within a cluster.
	for _, pair := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}, {6, 7}} {
		n.AddCoupling(pair[0], pair[1], 0.20)
	}
	// Weak coupling across the cluster boundary.
	n.AddCoupling(3, 4, 0.10)

	// Package to ambient: convection, improved by the fan.
	if fan {
		n.SetAmbientCoupling(PkgNode, 0.25) // ≈4 K/W
	} else {
		n.SetAmbientCoupling(PkgNode, 0.11) // ≈9 K/W
	}
	return n
}

// TriClusterNetwork builds a thermal model for the platform.TriCluster
// preset: four LITTLE nodes (0-3), two mid nodes (4-5), two big nodes
// (6-7) and a package node (index 8, same as PkgNode).
func TriClusterNetwork(fan bool, tAmb float64) *Network {
	nodes := make([]Node, 9)
	for i := 0; i < 4; i++ {
		nodes[i] = Node{Name: fmt.Sprintf("little%d", i), Cap: 0.04}
	}
	for i := 4; i < 6; i++ {
		nodes[i] = Node{Name: fmt.Sprintf("mid%d", i-4), Cap: 0.10}
	}
	for i := 6; i < 8; i++ {
		nodes[i] = Node{Name: fmt.Sprintf("big%d", i-6), Cap: 0.16}
	}
	nodes[PkgNode] = Node{Name: "package", Cap: 12}
	n := NewNetwork(nodes, tAmb)
	for i := 0; i < 4; i++ {
		n.AddCoupling(i, PkgNode, 0.38)
	}
	for i := 4; i < 6; i++ {
		n.AddCoupling(i, PkgNode, 0.45)
	}
	for i := 6; i < 8; i++ {
		n.AddCoupling(i, PkgNode, 0.52)
	}
	for _, pair := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {4, 5}, {6, 7}, {3, 4}, {5, 6}} {
		n.AddCoupling(pair[0], pair[1], 0.18)
	}
	if fan {
		n.SetAmbientCoupling(PkgNode, 0.25)
	} else {
		n.SetAmbientCoupling(PkgNode, 0.11)
	}
	return n
}
