package thermal

import (
	"math"
	"testing"
)

// twoNode builds a network with a known stability step: node 0 has
// Cap = 1 J/K and 2 W/K to ambient plus 0.5 W/K to node 1, so
// maxStep = 0.5·1/2.5 = 0.2 s exactly (binary-representable).
func twoNode() *Network {
	n := NewNetwork([]Node{{Name: "a", Cap: 1}, {Name: "b", Cap: 4}}, 25)
	n.SetAmbientCoupling(0, 2)
	n.SetAmbientCoupling(1, 0.5)
	n.AddCoupling(0, 1, 0.5)
	return n
}

// TestSubstepCounts is the regression test for the substep boundary bug:
// a dt that is an exact multiple of the stability step must use exactly
// dt/h substeps, not one more (the old code computed int(dt/h)+1, taking
// a spurious extra substep — and a finer h — on exact ratios).
func TestSubstepCounts(t *testing.T) {
	n := twoNode()
	if h := n.stableStep(); h != 0.2 {
		t.Fatalf("stable step = %g, want 0.2", h)
	}
	cases := []struct {
		dt   float64
		want int
	}{
		{0.2, 1},  // dt == h exactly: one substep, not two
		{0.4, 2},  // exact multiple: dt/h substeps
		{0.8, 4},  // exact multiple
		{0.1, 1},  // below the limit: single substep
		{0.3, 2},  // fractional ratio 1.5: round up
		{0.5, 3},  // fractional ratio 2.5: round up
		{0.41, 3}, // just above an exact multiple: round up
		{10, 50},  // long dt, exact ratio
	}
	for _, c := range cases {
		if got := n.Substeps(c.dt); got != c.want {
			t.Errorf("Substeps(%g) = %d, want %d", c.dt, got, c.want)
		}
	}

	defer func() {
		if recover() == nil {
			t.Error("Substeps(0): expected panic")
		}
	}()
	n.Substeps(0)
}

// TestKernelMatchesReferenceBitwise pins the numerical contract: with a
// single substep per tick (every fig-suite configuration), the propagator
// kernel and the naive per-substep reference produce bit-identical
// temperatures over a long, feedback-free power schedule.
func TestKernelMatchesReferenceBitwise(t *testing.T) {
	for _, fan := range []bool{true, false} {
		fast := HiKey970Network(fan, 25)
		ref := HiKey970Network(fan, 25)
		ref.SetKernel(KernelReference)
		if s := fast.Substeps(0.01); s != 1 {
			t.Fatalf("fig-suite dt: %d substeps, want 1", s)
		}
		p := make([]float64, 9)
		for tick := 0; tick < 2000; tick++ {
			for i := range p {
				p[i] = float64((tick*7+i*13)%11) * 0.3
			}
			fast.Step(p, 0.01)
			ref.Step(p, 0.01)
		}
		for i := range fast.t {
			if fast.t[i] != ref.t[i] {
				t.Errorf("fan=%v node %d: kernel %v != reference %v (diff %g)",
					fan, i, fast.t[i], ref.t[i], fast.t[i]-ref.t[i])
			}
		}
	}
}

// TestCollapsedMatchesIterated checks the repeated-squaring collapse
// against stepping the substeps one by one: for k > 1 the results must
// agree to rounding (the collapse reassociates the recurrence, so exact
// equality is not expected).
func TestCollapsedMatchesIterated(t *testing.T) {
	for _, dt := range []float64{0.4, 0.5, 1.0, 10} { // k = 2, 3, 5, 50
		fast := twoNode()
		ref := twoNode()
		ref.SetKernel(KernelReference)
		p := []float64{3, 1}
		for tick := 0; tick < 200; tick++ {
			fast.Step(p, dt)
			ref.Step(p, dt)
		}
		for i := range fast.t {
			diff := math.Abs(fast.t[i] - ref.t[i])
			scale := math.Max(1, math.Abs(ref.t[i]))
			if diff/scale > 1e-11 {
				t.Errorf("dt=%g node %d: collapsed %v vs iterated %v (rel %g)",
					dt, i, fast.t[i], ref.t[i], diff/scale)
			}
		}
	}
}

// TestPropagatorSteadyState: under constant power the kernel must
// converge to the equilibrium the linear solve predicts, for both a
// single-substep and a collapsed multi-substep tick.
func TestPropagatorSteadyState(t *testing.T) {
	for _, dt := range []float64{0.01, 0.5} {
		n := HiKey970Network(true, 25)
		p := make([]float64, 9)
		p[4], p[6], p[PkgNode] = 2, 3, 0.5
		want := n.SteadyState(p)
		for i := 0; i < int(3000/dt); i++ {
			n.Step(p, dt)
		}
		for i := range want {
			if math.Abs(n.t[i]-want[i]) > 1e-6 {
				t.Errorf("dt=%g node %d: %v, steady state %v", dt, i, n.t[i], want[i])
			}
		}
	}
}

// TestPropagatorInvalidation: coupling, ambient-coupling, kernel, and
// ambient mutations must all rebuild the cache — including a direct TAmb
// field write, which Step self-heals on.
func TestPropagatorInvalidation(t *testing.T) {
	p := []float64{2, 1}

	// SetAmbient and a direct TAmb write must behave identically.
	a, b := twoNode(), twoNode()
	a.Step(p, 0.1) // both warm their caches at TAmb = 25
	b.Step(p, 0.1)
	a.SetAmbient(35)
	b.TAmb = 35 // bypasses the invalidation; Step must self-heal
	a.Step(p, 0.1)
	b.Step(p, 0.1)
	for i := range a.t {
		if a.t[i] != b.t[i] {
			t.Errorf("node %d: SetAmbient %v != direct TAmb write %v", i, a.t[i], b.t[i])
		}
	}

	// Mutating the topology after stepping must match a fresh network
	// built with the same final topology and identical step history.
	mutated := twoNode()
	fresh := twoNode()
	mutated.Step(p, 0.1)
	fresh.Step(p, 0.1)
	mutated.AddCoupling(0, 1, 0.25)
	fresh.AddCoupling(0, 1, 0.25)
	mutated.SetAmbientCoupling(1, 0.75)
	fresh.SetAmbientCoupling(1, 0.75)
	mutated.Step(p, 0.1)
	fresh.Step(p, 0.1)
	for i := range mutated.t {
		if mutated.t[i] != fresh.t[i] {
			t.Errorf("node %d: mutated %v != fresh %v", i, mutated.t[i], fresh.t[i])
		}
	}

	// Kernel switches must invalidate too: switching to the reference and
	// back must keep producing propagator results.
	k := twoNode()
	k.Step(p, 0.1)
	k.SetKernel(KernelReference)
	k.Step(p, 0.1)
	k.SetKernel(KernelPropagator)
	k.Step(p, 0.1)
	ref := twoNode()
	ref.Step(p, 0.1)
	ref.Step(p, 0.1)
	ref.Step(p, 0.1)
	for i := range k.t {
		if k.t[i] != ref.t[i] {
			t.Errorf("node %d after kernel round-trip: %v, want %v", i, k.t[i], ref.t[i])
		}
	}
}

// TestFloat32KernelTolerance: the float32 kernel must track the float64
// kernel within single-precision accumulation error and stay
// deterministic across repeated runs.
func TestFloat32KernelTolerance(t *testing.T) {
	run := func() *Network {
		n := HiKey970Network(true, 25)
		n.SetKernel(KernelFloat32)
		p := make([]float64, 9)
		p[4], p[6], p[PkgNode] = 2.5, 3.5, 0.5
		for i := 0; i < 5000; i++ {
			n.Step(p, 0.01)
		}
		return n
	}
	f32a, f32b := run(), run()
	for i := range f32a.t {
		if f32a.t[i] != f32b.t[i] {
			t.Errorf("node %d: float32 kernel nondeterministic: %v vs %v", i, f32a.t[i], f32b.t[i])
		}
	}

	f64 := HiKey970Network(true, 25)
	p := make([]float64, 9)
	p[4], p[6], p[PkgNode] = 2.5, 3.5, 0.5
	for i := 0; i < 5000; i++ {
		f64.Step(p, 0.01)
	}
	for i := range f64.t {
		rel := math.Abs(f32a.t[i]-f64.t[i]) / math.Max(1, math.Abs(f64.t[i]))
		if rel > 1e-3 {
			t.Errorf("node %d: float32 %v vs float64 %v (rel %g)", i, f32a.t[i], f64.t[i], rel)
		}
	}
}

// TestPropagatorKIsOne documents the premise the byte-identical
// differential gates rest on: both platform presets integrate a 10 ms
// tick in a single substep.
func TestPropagatorKIsOne(t *testing.T) {
	for name, n := range map[string]*Network{
		"hikey-fan":   HiKey970Network(true, 25),
		"hikey-nofan": HiKey970Network(false, 25),
		"tri-fan":     TriClusterNetwork(true, 25),
		"tri-nofan":   TriClusterNetwork(false, 25),
	} {
		if s := n.Substeps(0.01); s != 1 {
			t.Errorf("%s: %d substeps at dt=10ms, want 1", name, s)
		}
	}
}

// BenchmarkNetworkStepCollapsed measures the collapsed multi-substep
// path (dt = 0.5 s ⇒ 16 substeps folded into one matvec).
func BenchmarkNetworkStepCollapsed(b *testing.B) {
	n := HiKey970Network(true, 25)
	p := make([]float64, 9)
	p[4], p[6], p[PkgNode] = 2, 3, 0.5
	n.Step(p, 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Step(p, 0.5)
	}
}
