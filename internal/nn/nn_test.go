package nn

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMLPShapes(t *testing.T) {
	m := NewMLP([]int{21, 64, 64, 8}, 1)
	if m.InputDim() != 21 || m.OutputDim() != 8 {
		t.Fatalf("dims = %d,%d", m.InputDim(), m.OutputDim())
	}
	want := 21*64 + 64 + 64*64 + 64 + 64*8 + 8
	if got := m.NumParams(); got != want {
		t.Errorf("NumParams = %d, want %d", got, want)
	}
	out := m.Predict(make([]float64, 21))
	if len(out) != 8 {
		t.Errorf("output len = %d", len(out))
	}
}

func TestNewMLPPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("single layer", func() { NewMLP([]int{3}, 0) })
	mustPanic("zero width", func() { NewMLP([]int{3, 0, 2}, 0) })
	mustPanic("bad input dim", func() { NewMLP([]int{3, 2}, 0).Predict([]float64{1}) })
}

func TestSeededInitDeterministic(t *testing.T) {
	a := NewMLP([]int{4, 8, 2}, 7)
	b := NewMLP([]int{4, 8, 2}, 7)
	c := NewMLP([]int{4, 8, 2}, 8)
	x := []float64{0.1, -0.2, 0.3, 0.4}
	pa, pb, pc := a.Predict(x), b.Predict(x), c.Predict(x)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed produced different networks")
		}
	}
	same := true
	for i := range pa {
		if pa[i] != pc[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical networks")
	}
}

// numericalGradientCheck verifies backprop against finite differences.
func TestBackpropGradientCheck(t *testing.T) {
	m := NewMLP([]int{3, 5, 2}, 3)
	x := []float64{0.5, -1.2, 0.8}
	y := []float64{0.3, -0.7}

	gw := [][]float64{make([]float64, len(m.weights[0])), make([]float64, len(m.weights[1]))}
	gb := [][]float64{make([]float64, len(m.biases[0])), make([]float64, len(m.biases[1]))}
	m.backprop(x, y, gw, gb)

	loss := func() float64 {
		out := m.Predict(x)
		s := 0.0
		for o := range out {
			d := out[o] - y[o]
			s += d * d
		}
		return s / float64(len(out))
	}
	const h = 1e-6
	check := func(param []float64, grad []float64, name string) {
		for i := range param {
			orig := param[i]
			param[i] = orig + h
			lp := loss()
			param[i] = orig - h
			lm := loss()
			param[i] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-grad[i]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("%s[%d]: analytic %g vs numeric %g", name, i, grad[i], num)
			}
		}
	}
	check(m.weights[0], gw[0], "w0")
	check(m.weights[1], gw[1], "w1")
	check(m.biases[0], gb[0], "b0")
	check(m.biases[1], gb[1], "b1")
}

// synthDataset builds a learnable nonlinear mapping.
func synthDataset(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	var d Dataset
	for i := 0; i < n; i++ {
		x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		y := []float64{
			math.Max(0, x[0]) + 0.5*x[1],
			x[0]*x[1] - x[2],
		}
		d.X = append(d.X, x)
		d.Y = append(d.Y, y)
	}
	return d
}

func TestTrainingLearns(t *testing.T) {
	full := synthDataset(800, 1)
	train, val := full.Split(0.2, 2)
	m := NewMLP([]int{3, 32, 32, 2}, 3)
	before := m.Loss(val)
	res, err := m.Train(train, val, TrainConfig{MaxEpochs: 60, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	after := m.Loss(val)
	if after >= before/4 {
		t.Errorf("training barely improved: %g -> %g", before, after)
	}
	if after > 0.05 {
		t.Errorf("final validation loss %g, want < 0.05", after)
	}
	if res.Epochs == 0 || len(res.ValHistory) != res.Epochs {
		t.Errorf("inconsistent result bookkeeping: %+v", res)
	}
}

func TestEarlyStoppingRestoresBest(t *testing.T) {
	full := synthDataset(300, 5)
	train, val := full.Split(0.3, 6)
	m := NewMLP([]int{3, 16, 2}, 7)
	res, err := m.Train(train, val, TrainConfig{MaxEpochs: 500, Patience: 5, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	got := m.Loss(val)
	if math.Abs(got-res.BestValLoss) > 1e-9 {
		t.Errorf("model loss %g does not match best val loss %g (restore failed)",
			got, res.BestValLoss)
	}
	if !res.StoppedEarly && res.Epochs == 500 {
		t.Log("training ran to MaxEpochs; early stopping not exercised (acceptable but unusual)")
	}
}

func TestTrainValidatesShapes(t *testing.T) {
	m := NewMLP([]int{3, 4, 2}, 0)
	bad := Dataset{X: [][]float64{{1, 2}}, Y: [][]float64{{1, 2}}}
	if _, err := m.Train(bad, Dataset{}, TrainConfig{MaxEpochs: 1}); err == nil {
		t.Error("expected error for wrong input dim")
	}
	badY := Dataset{X: [][]float64{{1, 2, 3}}, Y: [][]float64{{1}}}
	if _, err := m.Train(badY, Dataset{}, TrainConfig{MaxEpochs: 1}); err == nil {
		t.Error("expected error for wrong target dim")
	}
	if _, err := m.Train(Dataset{}, Dataset{}, TrainConfig{MaxEpochs: 1}); err == nil {
		t.Error("expected error for empty training set")
	}
	mismatch := Dataset{X: [][]float64{{1, 2, 3}}, Y: nil}
	if _, err := m.Train(mismatch, Dataset{}, TrainConfig{MaxEpochs: 1}); err == nil {
		t.Error("expected error for X/Y length mismatch")
	}
}

func TestSplitPartitions(t *testing.T) {
	d := synthDataset(100, 9)
	train, val := d.Split(0.25, 10)
	if train.Len()+val.Len() != 100 {
		t.Fatalf("split sizes %d+%d != 100", train.Len(), val.Len())
	}
	if val.Len() != 25 {
		t.Errorf("val size = %d, want 25", val.Len())
	}
	// Deterministic given seed.
	t2, _ := d.Split(0.25, 10)
	for i := range train.X {
		if &train.X[i][0] != &t2.X[i][0] {
			t.Fatal("split not deterministic")
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	m := NewMLP([]int{21, 64, 64, 64, 64, 8}, 11)
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back MLP
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 21)
	for i := range x {
		x[i] = float64(i) * 0.1
	}
	a, b := m.Predict(x), back.Predict(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output %d differs after round trip", i)
		}
	}
}

func TestUnmarshalRejectsMalformed(t *testing.T) {
	var m MLP
	cases := []string{
		`{"sizes":[2],"weights":[],"biases":[]}`,
		`{"sizes":[2,3],"weights":[[1,2,3]],"biases":[[1,2,3]]}`, // wrong weight count
		`{"sizes":[2,3],"weights":[[1,2,3,4,5,6]],"biases":[[1]]}`,
		`not json`,
	}
	for _, c := range cases {
		if err := json.Unmarshal([]byte(c), &m); err == nil {
			t.Errorf("accepted malformed model: %s", c)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewMLP([]int{2, 3, 1}, 1)
	c := m.Clone()
	m.weights[0][0] += 100
	x := []float64{1, 1}
	if m.Predict(x)[0] == c.Predict(x)[0] {
		t.Error("clone shares storage with original")
	}
}

func TestGridSearchFindsCapacity(t *testing.T) {
	// A linear target: every topology should fit it; grid search must
	// return all candidates with finite losses and a valid best.
	full := synthDataset(200, 13)
	train, val := full.Split(0.3, 14)
	res, err := GridSearch(train, val, 3, 2,
		[]int{1, 2}, []int{4, 8},
		TrainConfig{MaxEpochs: 20, Patience: 5, Seed: 15}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 4 {
		t.Fatalf("candidates = %d, want 4", len(res.Candidates))
	}
	bestSeen := math.Inf(1)
	for _, c := range res.Candidates {
		if math.IsNaN(c.ValLoss) || math.IsInf(c.ValLoss, 0) {
			t.Errorf("candidate (%d,%d): bad loss %g", c.Depth, c.Width, c.ValLoss)
		}
		if c.ValLoss < bestSeen {
			bestSeen = c.ValLoss
		}
	}
	if res.Best.ValLoss != bestSeen {
		t.Errorf("Best.ValLoss = %g, want %g", res.Best.ValLoss, bestSeen)
	}
}

func TestGridSearchRejectsBadGrid(t *testing.T) {
	if _, err := GridSearch(Dataset{}, Dataset{}, 3, 2, nil, []int{4}, TrainConfig{}, 0); err == nil {
		t.Error("empty depth grid accepted")
	}
	if _, err := GridSearch(Dataset{}, Dataset{}, 3, 2, []int{0}, []int{4}, TrainConfig{}, 0); err == nil {
		t.Error("zero depth accepted")
	}
}

func TestPaperTopology(t *testing.T) {
	sizes := PaperTopology(21, 8)
	want := []int{21, 64, 64, 64, 64, 8}
	if len(sizes) != len(want) {
		t.Fatalf("len = %d", len(sizes))
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Errorf("sizes[%d] = %d, want %d", i, sizes[i], want[i])
		}
	}
}

func TestPredictDeterministicProperty(t *testing.T) {
	m := NewMLP([]int{4, 8, 3}, 21)
	f := func(a, b, c, d float64) bool {
		x := []float64{clip(a), clip(b), clip(c), clip(d)}
		p, q := m.Predict(x), m.Predict(x)
		for i := range p {
			if p[i] != q[i] || math.IsNaN(p[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func clip(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	if x > 10 {
		return 10
	}
	if x < -10 {
		return -10
	}
	return x
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	full := synthDataset(200, 21)
	train, val := full.Split(0.2, 22)
	norm := func(m *MLP) float64 {
		s := 0.0
		for l := range m.weights {
			for _, w := range m.weights[l] {
				s += w * w
			}
		}
		return math.Sqrt(s)
	}
	plain := NewMLP([]int{3, 16, 2}, 23)
	decayed := NewMLP([]int{3, 16, 2}, 23)
	if _, err := plain.Train(train, val, TrainConfig{MaxEpochs: 30, Seed: 24}); err != nil {
		t.Fatal(err)
	}
	if _, err := decayed.Train(train, val, TrainConfig{
		MaxEpochs: 30, Seed: 24, WeightDecay: 0.5}); err != nil {
		t.Fatal(err)
	}
	if norm(decayed) >= norm(plain) {
		t.Errorf("weight decay did not shrink weights: %g vs %g",
			norm(decayed), norm(plain))
	}
}

func TestGradClipStillLearns(t *testing.T) {
	full := synthDataset(300, 25)
	train, val := full.Split(0.2, 26)
	m := NewMLP([]int{3, 16, 2}, 27)
	before := m.Loss(val)
	if _, err := m.Train(train, val, TrainConfig{
		MaxEpochs: 40, Seed: 28, GradClip: 0.5}); err != nil {
		t.Fatal(err)
	}
	if after := m.Loss(val); after >= before/2 {
		t.Errorf("clipped training barely improved: %g -> %g", before, after)
	}
}

func TestClipGradientsBoundsNorm(t *testing.T) {
	gw := [][]float64{{3, 4}}
	gb := [][]float64{{0}}
	clipGradients(gw, gb, 1.0) // norm was 5
	if n := math.Hypot(gw[0][0], gw[0][1]); math.Abs(n-1.0) > 1e-9 {
		t.Errorf("clipped norm = %g, want 1", n)
	}
	// Below the bound: untouched.
	gw2 := [][]float64{{0.1, 0.2}}
	clipGradients(gw2, [][]float64{{0}}, 1.0)
	if gw2[0][0] != 0.1 || gw2[0][1] != 0.2 {
		t.Error("in-bound gradients modified")
	}
}
