package nn

import (
	"math/rand"
	"sync"
	"testing"
)

// TestConcurrentPredict hammers one shared model with Predict and
// PredictBatch from many goroutines and checks every result against a
// single-threaded baseline. Run with -race: it is the executable form of
// the package's concurrency guarantee (forward passes are read-only), which
// the serve batcher depends on.
func TestConcurrentPredict(t *testing.T) {
	m := NewMLP([]int{21, 64, 64, 8}, 1)
	rng := rand.New(rand.NewSource(2))
	const nInputs = 32
	inputs := make([][]float64, nInputs)
	for i := range inputs {
		inputs[i] = make([]float64, 21)
		for j := range inputs[i] {
			inputs[i][j] = rng.NormFloat64()
		}
	}
	want := make([][]float64, nInputs)
	for i, x := range inputs {
		want[i] = m.Predict(x)
	}

	const goroutines = 16
	const rounds = 50
	var wg sync.WaitGroup
	errCh := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % nInputs
				var got []float64
				if r%2 == 0 {
					got = m.Predict(inputs[i])
				} else {
					got = m.PredictBatch(inputs[i : i+1])[0]
				}
				for o := range want[i] {
					if got[o] != want[i][o] {
						select {
						case errCh <- "concurrent Predict diverged from baseline":
						default:
						}
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	if msg, ok := <-errCh; ok {
		t.Fatal(msg)
	}
}
