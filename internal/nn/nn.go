// Package nn implements the fully-connected neural network used by TOP-IL:
// dense layers with ReLU activations and a linear output layer, trained
// with mini-batch Adam on an MSE loss, with exponentially decaying learning
// rate and early stopping — the exact setup of the paper's Section "IL
// Model Creation and Training". A grid-search NAS (nas.go) selects the
// topology (the paper finds 4 hidden layers × 64 neurons).
//
// Only the standard library is used; the implementation favours clarity and
// determinism (seeded initialization) over raw speed, which is sufficient
// for the ~20k-example datasets of this problem.
package nn

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/telemetry"
)

// forwardPasses counts inference forward passes process-wide. A lazy
// handle binds to the default registry only when a binary installs one;
// uninstalled it is a few nanoseconds and zero allocations, so the
// deterministic hot path stays clean (counting has no time base, which is
// why this passes detrand where a clock read would not).
var forwardPasses = telemetry.LazyCounter{Name: "nn_forward_passes_total",
	Help: "MLP inference forward passes (Predict and PredictBatch rows)"}

// MLP is a multi-layer perceptron with ReLU hidden activations and a linear
// output layer.
//
// Concurrency: Predict, PredictBatch and the other read-only accessors
// never mutate the network (forward passes allocate their own activation
// buffers), so a trained MLP may be shared by any number of goroutines —
// the serving layer's batcher depends on this. The guarantee holds only
// while no goroutine concurrently mutates parameters (training, MapParams,
// CopyFrom, UnmarshalJSON); mutate a Clone instead.
type MLP struct {
	sizes   []int       // layer widths, including input and output
	weights [][]float64 // weights[l][o*in+i], layer l maps sizes[l] -> sizes[l+1]
	biases  [][]float64
}

// NewMLP creates a network with the given layer sizes (input, hidden...,
// output), initialized with He-scaled Gaussian weights from the seeded RNG.
// It panics on fewer than two layers or a non-positive width: topology is
// fixed at design time, so a bad one is a programming error.
func NewMLP(sizes []int, seed int64) *MLP {
	if len(sizes) < 2 {
		panic("nn: need at least input and output layer")
	}
	for _, s := range sizes {
		if s <= 0 {
			panic("nn: non-positive layer size")
		}
	}
	rng := rand.New(rand.NewSource(seed))
	m := &MLP{sizes: append([]int(nil), sizes...)}
	for l := 0; l+1 < len(sizes); l++ {
		in, out := sizes[l], sizes[l+1]
		w := make([]float64, in*out)
		std := math.Sqrt(2 / float64(in))
		for i := range w {
			w[i] = rng.NormFloat64() * std
		}
		m.weights = append(m.weights, w)
		m.biases = append(m.biases, make([]float64, out))
	}
	return m
}

// Sizes returns the layer widths (copy).
func (m *MLP) Sizes() []int { return append([]int(nil), m.sizes...) }

// InputDim returns the expected input vector length.
func (m *MLP) InputDim() int { return m.sizes[0] }

// OutputDim returns the output vector length.
func (m *MLP) OutputDim() int { return m.sizes[len(m.sizes)-1] }

// NumParams returns the total number of trainable parameters.
func (m *MLP) NumParams() int {
	n := 0
	for l := range m.weights {
		n += len(m.weights[l]) + len(m.biases[l])
	}
	return n
}

// Predict runs a forward pass for a single input. It panics if the input
// dimension does not match the network's input layer.
func (m *MLP) Predict(x []float64) []float64 {
	if len(x) != m.sizes[0] {
		panic(fmt.Sprintf("nn: input dim %d, want %d", len(x), m.sizes[0]))
	}
	forwardPasses.Inc()
	act := append([]float64(nil), x...)
	last := len(m.weights) - 1
	for l := range m.weights {
		act = m.layerForward(l, act, l != last)
	}
	return act
}

// PredictBatch runs forward passes for several inputs.
func (m *MLP) PredictBatch(xs [][]float64) [][]float64 {
	out := make([][]float64, len(xs))
	for i, x := range xs {
		out[i] = m.Predict(x)
	}
	return out
}

// layerForward computes layer l's output; relu selects the activation.
func (m *MLP) layerForward(l int, in []float64, relu bool) []float64 {
	inN, outN := m.sizes[l], m.sizes[l+1]
	w, b := m.weights[l], m.biases[l]
	out := make([]float64, outN)
	for o := 0; o < outN; o++ {
		sum := b[o]
		row := w[o*inN : (o+1)*inN]
		for i, v := range in {
			sum += row[i] * v
		}
		if relu && sum < 0 {
			sum = 0
		}
		out[o] = sum
	}
	return out
}

// forwardTrace runs a forward pass retaining all activations for backprop.
// acts[0] is the input, acts[L] the output (pre-activation values are not
// needed separately because ReLU's gradient can be derived from the
// post-activation sign).
func (m *MLP) forwardTrace(x []float64) [][]float64 {
	acts := make([][]float64, len(m.sizes))
	acts[0] = x
	last := len(m.weights) - 1
	for l := range m.weights {
		acts[l+1] = m.layerForward(l, acts[l], l != last)
	}
	return acts
}

// backprop computes parameter gradients for one sample, accumulating into
// gw/gb, and returns the sample's MSE loss. target must have OutputDim
// entries.
func (m *MLP) backprop(x, target []float64, gw, gb [][]float64) float64 {
	acts := m.forwardTrace(x)
	out := acts[len(acts)-1]
	n := float64(len(out))
	// delta = dL/d(pre-activation) at the output (linear): 2(y-t)/n.
	delta := make([]float64, len(out))
	loss := 0.0
	for o := range out {
		d := out[o] - target[o]
		loss += d * d
		delta[o] = 2 * d / n
	}
	loss /= n

	for l := len(m.weights) - 1; l >= 0; l-- {
		inN := m.sizes[l]
		in := acts[l]
		w := m.weights[l]
		for o, d := range delta {
			gb[l][o] += d
			row := gw[l][o*inN : (o+1)*inN]
			for i, v := range in {
				row[i] += d * v
			}
		}
		if l == 0 {
			break
		}
		// Propagate delta through layer l and the ReLU of layer l-1's
		// output (acts[l] are post-ReLU: zero entries had negative
		// pre-activations, so their gradient is zero).
		prev := make([]float64, inN)
		for o, d := range delta {
			row := w[o*inN : (o+1)*inN]
			for i := range prev {
				prev[i] += d * row[i]
			}
		}
		for i := range prev {
			if acts[l][i] <= 0 {
				prev[i] = 0
			}
		}
		delta = prev
	}
	return loss
}

// Clone returns a deep copy of the network.
func (m *MLP) Clone() *MLP {
	c := &MLP{sizes: append([]int(nil), m.sizes...)}
	for l := range m.weights {
		c.weights = append(c.weights, append([]float64(nil), m.weights[l]...))
		c.biases = append(c.biases, append([]float64(nil), m.biases[l]...))
	}
	return c
}

// MapParams applies f to every weight and bias in place — e.g. to emulate
// the precision of a deployment target.
func (m *MLP) MapParams(f func(float64) float64) {
	for l := range m.weights {
		for i := range m.weights[l] {
			m.weights[l][i] = f(m.weights[l][i])
		}
		for i := range m.biases[l] {
			m.biases[l][i] = f(m.biases[l][i])
		}
	}
}

// CopyFrom overwrites this network's parameters with src's; it panics on
// a topology mismatch.
func (m *MLP) CopyFrom(src *MLP) {
	if len(m.sizes) != len(src.sizes) {
		panic("nn: CopyFrom topology mismatch")
	}
	for i := range m.sizes {
		if m.sizes[i] != src.sizes[i] {
			panic("nn: CopyFrom topology mismatch")
		}
	}
	for l := range m.weights {
		copy(m.weights[l], src.weights[l])
		copy(m.biases[l], src.biases[l])
	}
}

// mlpJSON is the serialization schema.
type mlpJSON struct {
	Sizes   []int       `json:"sizes"`
	Weights [][]float64 `json:"weights"`
	Biases  [][]float64 `json:"biases"`
}

// MarshalJSON implements json.Marshaler.
func (m *MLP) MarshalJSON() ([]byte, error) {
	return json.Marshal(mlpJSON{Sizes: m.sizes, Weights: m.weights, Biases: m.biases})
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *MLP) UnmarshalJSON(data []byte) error {
	var j mlpJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if len(j.Sizes) < 2 || len(j.Weights) != len(j.Sizes)-1 || len(j.Biases) != len(j.Sizes)-1 {
		return fmt.Errorf("nn: malformed model JSON")
	}
	for l := 0; l+1 < len(j.Sizes); l++ {
		if len(j.Weights[l]) != j.Sizes[l]*j.Sizes[l+1] || len(j.Biases[l]) != j.Sizes[l+1] {
			return fmt.Errorf("nn: layer %d shape mismatch", l)
		}
	}
	m.sizes = j.Sizes
	m.weights = j.Weights
	m.biases = j.Biases
	return nil
}
