package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/telemetry"
)

// trainEpochs counts training epochs process-wide (see forwardPasses in
// nn.go for the lazy-binding rationale).
var trainEpochs = telemetry.LazyCounter{Name: "nn_train_epochs_total",
	Help: "MLP training epochs completed"}

// Dataset is a supervised learning dataset: X[i] is a feature vector,
// Y[i] the target vector.
type Dataset struct {
	X [][]float64
	Y [][]float64
}

// Len returns the number of examples.
func (d Dataset) Len() int { return len(d.X) }

// Validate checks shape consistency against the given dimensions.
func (d Dataset) Validate(inDim, outDim int) error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("nn: %d inputs vs %d targets", len(d.X), len(d.Y))
	}
	for i := range d.X {
		if len(d.X[i]) != inDim {
			return fmt.Errorf("nn: example %d: input dim %d, want %d", i, len(d.X[i]), inDim)
		}
		if len(d.Y[i]) != outDim {
			return fmt.Errorf("nn: example %d: target dim %d, want %d", i, len(d.Y[i]), outDim)
		}
	}
	return nil
}

// Split partitions the dataset into training and validation parts after a
// seeded shuffle; frac is the validation fraction.
func (d Dataset) Split(frac float64, seed int64) (train, val Dataset) {
	idx := rand.New(rand.NewSource(seed)).Perm(d.Len())
	nVal := int(float64(d.Len()) * frac)
	for k, i := range idx {
		if k < nVal {
			val.X = append(val.X, d.X[i])
			val.Y = append(val.Y, d.Y[i])
		} else {
			train.X = append(train.X, d.X[i])
			train.Y = append(train.Y, d.Y[i])
		}
	}
	return train, val
}

// TrainConfig holds the hyper-parameters of the paper: Adam with an
// exponentially decaying learning rate 0.01·0.95^epoch, MSE loss, early
// stopping with a patience of 20 epochs.
type TrainConfig struct {
	LR0       float64 // initial learning rate (default 0.01)
	LRDecay   float64 // per-epoch decay factor (default 0.95)
	MaxEpochs int     // default 200
	Patience  int     // early-stopping patience in epochs (default 20)
	BatchSize int     // default 128
	Seed      int64   // shuffling seed

	// WeightDecay adds decoupled L2 regularization (AdamW-style): weights
	// shrink by lr·WeightDecay per update. 0 disables it (the paper does
	// not regularize; early stopping is its only capacity control).
	WeightDecay float64
	// GradClip bounds the per-batch gradient L2 norm; 0 disables.
	GradClip float64

	Verbose func(epoch int, trainLoss, valLoss float64)
}

// defaults fills unset fields.
func (c TrainConfig) defaults() TrainConfig {
	if c.LR0 == 0 {
		c.LR0 = 0.01
	}
	if c.LRDecay == 0 {
		c.LRDecay = 0.95
	}
	if c.MaxEpochs == 0 {
		c.MaxEpochs = 200
	}
	if c.Patience == 0 {
		c.Patience = 20
	}
	if c.BatchSize == 0 {
		c.BatchSize = 128
	}
	return c
}

// TrainResult reports the outcome of a training run.
type TrainResult struct {
	Epochs       int
	TrainLoss    float64 // last epoch's training loss
	BestValLoss  float64
	StoppedEarly bool
	TrainHistory []float64
	ValHistory   []float64
}

// adamState holds the Adam moment estimates mirroring the model parameters.
type adamState struct {
	mw, vw [][]float64
	mb, vb [][]float64
	t      int
}

func newAdamState(m *MLP) *adamState {
	s := &adamState{}
	for l := range m.weights {
		s.mw = append(s.mw, make([]float64, len(m.weights[l])))
		s.vw = append(s.vw, make([]float64, len(m.weights[l])))
		s.mb = append(s.mb, make([]float64, len(m.biases[l])))
		s.vb = append(s.vb, make([]float64, len(m.biases[l])))
	}
	return s
}

const (
	adamBeta1 = 0.9
	adamBeta2 = 0.999
	adamEps   = 1e-8
)

// apply performs one Adam update given averaged gradients.
func (s *adamState) apply(m *MLP, gw, gb [][]float64, lr float64) {
	s.t++
	c1 := 1 - math.Pow(adamBeta1, float64(s.t))
	c2 := 1 - math.Pow(adamBeta2, float64(s.t))
	upd := func(p, g, mo, ve []float64) {
		for i := range p {
			mo[i] = adamBeta1*mo[i] + (1-adamBeta1)*g[i]
			ve[i] = adamBeta2*ve[i] + (1-adamBeta2)*g[i]*g[i]
			mh := mo[i] / c1
			vh := ve[i] / c2
			p[i] -= lr * mh / (math.Sqrt(vh) + adamEps)
		}
	}
	for l := range m.weights {
		upd(m.weights[l], gw[l], s.mw[l], s.vw[l])
		upd(m.biases[l], gb[l], s.mb[l], s.vb[l])
	}
}

// Train fits the model on train, monitoring val for early stopping. The
// model is left with the parameters of the best validation epoch.
func (m *MLP) Train(train, val Dataset, cfg TrainConfig) (TrainResult, error) {
	cfg = cfg.defaults()
	if err := train.Validate(m.InputDim(), m.OutputDim()); err != nil {
		return TrainResult{}, err
	}
	if err := val.Validate(m.InputDim(), m.OutputDim()); err != nil {
		return TrainResult{}, err
	}
	if train.Len() == 0 {
		return TrainResult{}, fmt.Errorf("nn: empty training set")
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	adam := newAdamState(m)
	gw := make([][]float64, len(m.weights))
	gb := make([][]float64, len(m.weights))
	for l := range m.weights {
		gw[l] = make([]float64, len(m.weights[l]))
		gb[l] = make([]float64, len(m.biases[l]))
	}

	best := m.Clone()
	bestVal := math.Inf(1)
	sinceBest := 0
	res := TrainResult{BestValLoss: bestVal}

	order := make([]int, train.Len())
	for i := range order {
		order[i] = i
	}

	for epoch := 0; epoch < cfg.MaxEpochs; epoch++ {
		trainEpochs.Inc()
		lr := cfg.LR0 * math.Pow(cfg.LRDecay, float64(epoch))
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

		epochLoss := 0.0
		for start := 0; start < len(order); start += cfg.BatchSize {
			endIdx := start + cfg.BatchSize
			if endIdx > len(order) {
				endIdx = len(order)
			}
			for l := range gw {
				clearSlice(gw[l])
				clearSlice(gb[l])
			}
			batchLoss := 0.0
			for _, i := range order[start:endIdx] {
				batchLoss += m.backprop(train.X[i], train.Y[i], gw, gb)
			}
			n := float64(endIdx - start)
			for l := range gw {
				scaleSlice(gw[l], 1/n)
				scaleSlice(gb[l], 1/n)
			}
			if cfg.GradClip > 0 {
				clipGradients(gw, gb, cfg.GradClip)
			}
			adam.apply(m, gw, gb, lr)
			if cfg.WeightDecay > 0 {
				decay := 1 - lr*cfg.WeightDecay
				if decay < 0 {
					decay = 0
				}
				for l := range m.weights {
					scaleSlice(m.weights[l], decay)
				}
			}
			epochLoss += batchLoss
		}
		epochLoss /= float64(train.Len())

		valLoss := epochLoss
		if val.Len() > 0 {
			valLoss = m.Loss(val)
		}
		res.TrainHistory = append(res.TrainHistory, epochLoss)
		res.ValHistory = append(res.ValHistory, valLoss)
		res.Epochs = epoch + 1
		res.TrainLoss = epochLoss
		if cfg.Verbose != nil {
			cfg.Verbose(epoch, epochLoss, valLoss)
		}

		if valLoss < bestVal {
			bestVal = valLoss
			best.CopyFrom(m)
			sinceBest = 0
		} else {
			sinceBest++
			if sinceBest >= cfg.Patience {
				res.StoppedEarly = true
				break
			}
		}
	}
	m.CopyFrom(best)
	res.BestValLoss = bestVal
	return res, nil
}

// Loss returns the mean MSE of the model over the dataset.
func (m *MLP) Loss(d Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	total := 0.0
	for i := range d.X {
		out := m.Predict(d.X[i])
		s := 0.0
		for o := range out {
			diff := out[o] - d.Y[i][o]
			s += diff * diff
		}
		total += s / float64(len(out))
	}
	return total / float64(d.Len())
}

// clipGradients rescales all gradients so their global L2 norm is at most
// maxNorm.
func clipGradients(gw, gb [][]float64, maxNorm float64) {
	sum := 0.0
	for l := range gw {
		for _, g := range gw[l] {
			sum += g * g
		}
		for _, g := range gb[l] {
			sum += g * g
		}
	}
	norm := math.Sqrt(sum)
	if norm <= maxNorm || norm == 0 {
		return
	}
	f := maxNorm / norm
	for l := range gw {
		scaleSlice(gw[l], f)
		scaleSlice(gb[l], f)
	}
}

func clearSlice(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

func scaleSlice(s []float64, f float64) {
	for i := range s {
		s[i] *= f
	}
}
