package nn

import (
	"fmt"
	"sort"
)

// NASCandidate is one evaluated topology of the grid search.
type NASCandidate struct {
	Depth   int // number of hidden layers
	Width   int // neurons per hidden layer
	ValLoss float64
	Params  int
}

// NASResult is the outcome of the topology grid search (the paper's Fig. 3:
// depth × width grid; best found at 4 hidden layers × 64 neurons).
type NASResult struct {
	Candidates []NASCandidate // sorted by (Depth, Width)
	Best       NASCandidate
}

// GridSearch trains one model per (depth, width) combination on train,
// evaluating on val, and returns every candidate's validation loss. All
// models share the same seed so the comparison isolates topology.
func GridSearch(train, val Dataset, inDim, outDim int,
	depths, widths []int, cfg TrainConfig, seed int64) (NASResult, error) {
	if len(depths) == 0 || len(widths) == 0 {
		return NASResult{}, fmt.Errorf("nn: empty NAS grid")
	}
	var res NASResult
	res.Best.ValLoss = -1
	for _, d := range depths {
		for _, w := range widths {
			if d <= 0 || w <= 0 {
				return NASResult{}, fmt.Errorf("nn: invalid NAS grid entry (%d,%d)", d, w)
			}
			sizes := make([]int, 0, d+2)
			sizes = append(sizes, inDim)
			for i := 0; i < d; i++ {
				sizes = append(sizes, w)
			}
			sizes = append(sizes, outDim)
			m := NewMLP(sizes, seed)
			tr, err := m.Train(train, val, cfg)
			if err != nil {
				return NASResult{}, err
			}
			cand := NASCandidate{Depth: d, Width: w, ValLoss: tr.BestValLoss, Params: m.NumParams()}
			res.Candidates = append(res.Candidates, cand)
			if res.Best.ValLoss < 0 || cand.ValLoss < res.Best.ValLoss {
				res.Best = cand
			}
		}
	}
	sort.Slice(res.Candidates, func(i, j int) bool {
		if res.Candidates[i].Depth != res.Candidates[j].Depth {
			return res.Candidates[i].Depth < res.Candidates[j].Depth
		}
		return res.Candidates[i].Width < res.Candidates[j].Width
	})
	return res, nil
}

// PaperTopology returns the layer sizes the paper's NAS selected: four
// hidden layers with 64 neurons each.
func PaperTopology(inDim, outDim int) []int {
	return []int{inDim, 64, 64, 64, 64, outDim}
}
