package features

import "repro/internal/sim"

// Batch precomputes the AoI-independent aggregates of a Snapshot so that
// building the feature rows for all n running applications costs
// O(n·(cores+clusters)) instead of the O(n²·clusters) of calling VectorInto
// per AoI:
//
//   - fmin caches each application's Eq. (1) minimum-frequency estimate
//     (it does not depend on which application is the AoI);
//   - per cluster, the maximum of fmin over the cluster's applications is
//     kept together with its multiplicity and the runner-up, so the
//     "required frequency without the AoI" of Eq. (2) is the top value —
//     or the runner-up when the AoI alone attains it;
//   - occ counts applications per core, so background occupancy is a
//     counter compare instead of a rescan of every application.
//
// Max and occupancy are order-independent, so every row is bit-identical
// to the per-AoI VectorInto path (pinned by TestBatchMatchesVectorInto).
// The one assumption is that app IDs in the Snapshot are unique — the
// per-AoI path excludes the AoI by ID, the batched one by index — which
// holds for snapshots built by FromEnv and by the oracle.
type Batch struct {
	s    Snapshot
	fmin []float64 // per-app Eq. (1) estimate on its own cluster
	top1 []float64 // per-cluster max of fmin (-1 when the cluster is empty)
	n1   []int     // multiplicity of top1
	top2 []float64 // per-cluster runner-up strictly below top1 (-1 if none)
	occ  []int     // per-core application counts (AoI included)
}

// Reset recomputes the aggregates for s, reusing the Batch's backing
// storage. The Snapshot's slices are referenced, not copied: they must stay
// unchanged until the next Reset.
func (b *Batch) Reset(s Snapshot) {
	b.s = s
	b.fmin = resizeFloats(b.fmin, len(s.Apps))
	b.top1 = resizeFloats(b.top1, len(s.Clusters))
	b.top2 = resizeFloats(b.top2, len(s.Clusters))
	b.n1 = resizeInts(b.n1, len(s.Clusters))
	b.occ = resizeInts(b.occ, s.NumCores)
	for ci := range s.Clusters {
		b.top1[ci], b.n1[ci], b.top2[ci] = -1, 0, -1
	}
	for c := range b.occ {
		b.occ[c] = 0
	}
	for i, a := range s.Apps {
		cs := s.Clusters[a.Cluster]
		f, _ := EstimateMinFreq(cs.Freqs, cs.Freq, a.IPS, a.QoS)
		b.fmin[i] = f
		b.occ[a.Core]++
		switch {
		case f > b.top1[a.Cluster]:
			b.top2[a.Cluster] = b.top1[a.Cluster]
			b.top1[a.Cluster] = f
			b.n1[a.Cluster] = 1
		case f == b.top1[a.Cluster]:
			b.n1[a.Cluster]++
		case f > b.top2[a.Cluster]:
			b.top2[a.Cluster] = f
		}
	}
}

// Len returns the number of applications in the underlying snapshot.
func (b *Batch) Len() int { return len(b.s.Apps) }

// VectorInto builds the feature vector for the AoI at index aoi of the
// Reset snapshot into dst (length Dim), without heap allocation and
// bit-identical to VectorInto(dst, s, aoi). It panics on an out-of-range
// index or a buffer of the wrong length.
//
//hot:per-epoch-inference-path
func (b *Batch) VectorInto(dst []float64, aoi int) {
	s := b.s
	if aoi < 0 || aoi >= len(s.Apps) {
		panicAoIRange(aoi, len(s.Apps))
	}
	if len(dst) != Dim(s.NumCores, len(s.Clusters)) {
		panicMsg("features: feature buffer length mismatch")
	}
	a := s.Apps[aoi]
	ratios := dst[3+s.NumCores : 3+s.NumCores+len(s.Clusters)]
	for ci, cs := range s.Clusters {
		req := b.top1[ci]
		if ci == a.Cluster && b.n1[ci] == 1 && b.fmin[aoi] == req {
			req = b.top2[ci] // the AoI alone attains the max: exclude it
		}
		if req < cs.Freqs[0] {
			req = cs.Freqs[0] // empty background defaults to the lowest OPP
		}
		ratios[ci] = req / cs.Freq
	}
	utils := dst[UtilOffset(s.NumCores, len(s.Clusters)):]
	for c := range utils {
		n := b.occ[c]
		if c == a.Core {
			n--
		}
		if n > 0 {
			utils[c] = 1
		} else {
			utils[c] = 0
		}
	}
	AssembleInto(dst, a.IPS, a.L2DPS, a.Core, s.NumCores, a.QoS, ratios, utils)
}

// Occupancy returns the number of applications currently mapped to core c
// (including any AoI), as counted by the last Reset.
func (b *Batch) Occupancy(c int) int { return b.occ[c] }

func resizeFloats(v []float64, n int) []float64 {
	if cap(v) < n {
		return make([]float64, n)
	}
	return v[:n]
}

func resizeInts(v []int, n int) []int {
	if cap(v) < n {
		return make([]int, n)
	}
	return v[:n]
}

// FromEnvInto refills dst from the live simulation environment, reusing
// dst's backing slices; views is caller-owned scratch for the intermediate
// application list (pass the previous call's return value to stop
// allocating). The content is identical to FromEnv's.
func FromEnvInto(dst *Snapshot, env *sim.Env, views []sim.AppView) []sim.AppView {
	plat := env.Platform()
	dst.NumCores = plat.NumCores()
	if cap(dst.Clusters) < len(plat.Clusters) {
		dst.Clusters = make([]ClusterState, len(plat.Clusters))
	}
	dst.Clusters = dst.Clusters[:len(plat.Clusters)]
	for ci, c := range plat.Clusters {
		cs := &dst.Clusters[ci]
		if len(cs.Freqs) != c.NumOPPs() {
			cs.Freqs = make([]float64, c.NumOPPs())
		}
		for i := range cs.Freqs {
			cs.Freqs[i] = c.FreqAt(i)
		}
		cs.Freq = env.ClusterFreq(ci)
	}
	views = env.AppsInto(views)
	dst.Apps = dst.Apps[:0]
	for _, a := range views {
		dst.Apps = append(dst.Apps, AppState{
			ID:      a.ID,
			Core:    int(a.Core),
			Cluster: plat.ClusterIndexOf(a.Core),
			IPS:     a.IPS,
			L2DPS:   a.L2DPS,
			QoS:     a.QoS,
		})
	}
	return views
}
