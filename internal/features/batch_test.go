package features

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// randomSnapshot builds a snapshot exercising the branches the batched path
// must reproduce: fmin ties (duplicated IPS/QoS pairs), empty clusters,
// target<=0 and no-throughput (q<=0) apps, and unreachable targets.
func randomSnapshot(rng *rand.Rand) Snapshot {
	numClusters := 1 + rng.Intn(3)
	coresPer := 2 + rng.Intn(3)
	s := Snapshot{NumCores: numClusters * coresPer}
	for ci := 0; ci < numClusters; ci++ {
		nf := 2 + rng.Intn(5)
		freqs := make([]float64, nf)
		f := 0.3e9 + rng.Float64()*0.5e9
		for i := range freqs {
			freqs[i] = f
			f += 0.1e9 + rng.Float64()*0.5e9
		}
		s.Clusters = append(s.Clusters, ClusterState{
			Freqs: freqs,
			Freq:  freqs[rng.Intn(nf)],
		})
	}
	n := rng.Intn(13)
	for i := 0; i < n; i++ {
		ci := rng.Intn(numClusters)
		a := AppState{
			ID:      sim.AppID(i),
			Core:    ci*coresPer + rng.Intn(coresPer),
			Cluster: ci,
			IPS:     rng.Float64() * 2e9,
			L2DPS:   rng.Float64() * 5e7,
			QoS:     rng.Float64() * 2e9,
		}
		switch rng.Intn(6) {
		case 0:
			a.QoS = 0 // target<=0: Eq. (1) returns the lowest level
		case 1:
			a.IPS = 0 // no throughput info: conservative max, ok=false
		case 2:
			a.QoS = 100e9 // unreachable: highest level, ok=false
		case 3:
			if len(s.Apps) > 0 {
				// Duplicate an earlier app's operating point (possibly
				// cross-cluster) to force fmin ties at the cluster max.
				p := s.Apps[rng.Intn(len(s.Apps))]
				a.IPS, a.QoS = p.IPS, p.QoS
			}
		}
		s.Apps = append(s.Apps, a)
	}
	return s
}

// TestBatchMatchesVectorInto pins the batched feature path's contract: for
// every app of every snapshot, Batch.VectorInto produces bit-for-bit the
// row that the O(n²) per-AoI VectorInto produces.
func TestBatchMatchesVectorInto(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var b Batch // reused across snapshots to exercise Reset's resizing
	for trial := 0; trial < 500; trial++ {
		s := randomSnapshot(rng)
		b.Reset(s)
		if b.Len() != len(s.Apps) {
			t.Fatalf("trial %d: Batch.Len %d != %d apps", trial, b.Len(), len(s.Apps))
		}
		dim := Dim(s.NumCores, len(s.Clusters))
		got := make([]float64, dim)
		want := make([]float64, dim)
		for aoi := range s.Apps {
			b.VectorInto(got, aoi)
			VectorInto(want, s, aoi)
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("trial %d aoi %d feature %d: batched %v != direct %v\napp %+v",
						trial, aoi, k, got[k], want[k], s.Apps[aoi])
				}
			}
			for c := 0; c < s.NumCores; c++ {
				occ := 0
				for _, a := range s.Apps {
					if a.Core == c {
						occ++
					}
				}
				if b.Occupancy(c) != occ {
					t.Fatalf("trial %d: Occupancy(%d) = %d, want %d", trial, c, b.Occupancy(c), occ)
				}
			}
		}
	}
}

// TestVectorsMatchesPerAoI guards the Vectors rewrite over Batch against
// the direct per-row construction.
func TestVectorsMatchesPerAoI(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 100; trial++ {
		s := randomSnapshot(rng)
		got := Vectors(s)
		if len(got) != len(s.Apps) {
			t.Fatalf("trial %d: %d rows for %d apps", trial, len(got), len(s.Apps))
		}
		for i := range got {
			if want := Vector(s, i); !reflect.DeepEqual(got[i], want) {
				t.Fatalf("trial %d row %d: %v != %v", trial, i, got[i], want)
			}
		}
	}
}

// TestBatchPanics pins the same guard behavior as the per-AoI path.
func TestBatchPanics(t *testing.T) {
	var b Batch
	b.Reset(snap())
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	dim := Dim(8, 2)
	mustPanic("bad AoI", func() { b.VectorInto(make([]float64, dim), 9) })
	mustPanic("negative AoI", func() { b.VectorInto(make([]float64, dim), -1) })
	mustPanic("short buffer", func() { b.VectorInto(make([]float64, dim-1), 0) })
}

// TestFromEnvIntoMatchesFromEnv checks that the reusing capture path fills
// exactly the snapshot FromEnv builds, including on reuse with a stale
// larger app list in the destination.
func TestFromEnvIntoMatchesFromEnv(t *testing.T) {
	cfg := sim.DefaultConfig(true, 25)
	e := sim.New(cfg)
	for i, name := range []string{"adi", "gemm", "atax"} {
		spec, _ := workload.ByName(name)
		spec.TotalInstr = 1e18
		e.AddJob(workload.Job{Spec: spec, QoS: 1e9, Arrival: float64(i) * 0.2})
	}
	e.Run(&freqPin{little: 8, big: 8}, 1)

	var dst Snapshot
	var views []sim.AppView
	// Pre-fill with stale state so reuse has something to overwrite.
	views = FromEnvInto(&dst, e.Env(), views)
	e.Run(nil, 0.5)
	views = FromEnvInto(&dst, e.Env(), views)
	want := FromEnv(e.Env())
	if !reflect.DeepEqual(dst, want) {
		t.Fatalf("FromEnvInto snapshot differs from FromEnv:\n got %+v\nwant %+v", dst, want)
	}
	if len(views) != len(want.Apps) {
		t.Fatalf("views length %d != %d apps", len(views), len(want.Apps))
	}
}

// TestBatchSteadyStateAllocs pins the alloc-free reuse contract of the
// whole per-epoch batch path: capture + Reset + all rows.
func TestBatchSteadyStateAllocs(t *testing.T) {
	cfg := sim.DefaultConfig(true, 25)
	e := sim.New(cfg)
	for i, name := range []string{"adi", "gemm", "atax", "bicg"} {
		spec, _ := workload.ByName(name)
		spec.TotalInstr = 1e18
		e.AddJob(workload.Job{Spec: spec, QoS: 1e9, Arrival: float64(i) * 0.1})
	}
	e.Run(&freqPin{little: 8, big: 8}, 1)

	var dst Snapshot
	var views []sim.AppView
	var b Batch
	var rows [][]float64
	warm := func() {
		views = FromEnvInto(&dst, e.Env(), views)
		b.Reset(dst)
		dim := Dim(dst.NumCores, len(dst.Clusters))
		for len(rows) < b.Len() {
			rows = append(rows, make([]float64, dim))
		}
		for i := 0; i < b.Len(); i++ {
			b.VectorInto(rows[i], i)
		}
	}
	warm()
	if allocs := testing.AllocsPerRun(100, warm); allocs != 0 {
		t.Fatalf("steady-state batch path allocates %v times per epoch", allocs)
	}
}
