// Package features implements the feature vector of the paper's Table 2 —
// the input of the IL migration model — and the frequency estimators of
// Eqs. (1) and (2).
//
// Per application of interest (AoI), the 21 features (for 8 cores and 2
// clusters) are:
//
//	(a) AoI characteristics: current QoS (IPS), L2D accesses per second,
//	    current mapping as a one-hot over all cores;
//	(b) the AoI's QoS target (IPS);
//	(c) background: per-cluster estimated required VF level if the AoI
//	    were not running, normalized by the cluster's current VF level,
//	    and the per-core utilizations.
//
// The same code builds the vector at design time (from oracle traces, via a
// Snapshot assembled by the oracle) and at run time (from the live Env), so
// the model sees identical distributions in both.
package features

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// ipsScale normalizes IPS-valued features to roughly unit range.
const ipsScale = 1e9

// l2dScale normalizes the L2D-access-rate feature. L2D rates are an order
// of magnitude below IPS; scaling them to unit range matters because this
// feature carries the memory-boundedness signal that separates big-cluster-
// friendly from LITTLE-friendly applications near QoS-feasibility
// boundaries.
const l2dScale = 1e8

// ClusterState is the policy-visible state of one DVFS domain.
type ClusterState struct {
	Freqs []float64 // available frequencies, ascending (Hz)
	Freq  float64   // current frequency (Hz)
}

// AppState is the policy-visible state of one running application.
type AppState struct {
	ID      sim.AppID
	Core    int
	Cluster int     // index into Snapshot.Clusters
	IPS     float64 // current QoS (windowed IPS)
	L2DPS   float64 // windowed L2D accesses per second
	QoS     float64 // QoS target (IPS)
}

// Snapshot is a platform state sufficient to build feature vectors for
// every running application.
//
// The core-utilization features are derived from Apps as *background*
// occupancy — whether a core hosts any application other than the AoI. The
// paper's training data defines them the same way (free cores read 0 even
// while the AoI occupies one of them), so the run-time path must match.
type Snapshot struct {
	NumCores int
	Clusters []ClusterState
	Apps     []AppState
}

// FromEnv captures a Snapshot from the live simulation environment — the
// run-time path of the paper's daemon (perf API + /proc + cpufreq).
func FromEnv(env *sim.Env) Snapshot {
	plat := env.Platform()
	s := Snapshot{NumCores: plat.NumCores()}
	for ci, c := range plat.Clusters {
		freqs := make([]float64, c.NumOPPs())
		for i := range freqs {
			freqs[i] = c.FreqAt(i)
		}
		s.Clusters = append(s.Clusters, ClusterState{Freqs: freqs, Freq: env.ClusterFreq(ci)})
	}
	for _, a := range env.Apps() {
		s.Apps = append(s.Apps, AppState{
			ID:      a.ID,
			Core:    int(a.Core),
			Cluster: plat.ClusterIndexOf(a.Core),
			IPS:     a.IPS,
			L2DPS:   a.L2DPS,
			QoS:     a.QoS,
		})
	}
	return s
}

// Dim returns the feature vector length for a platform with the given core
// and cluster counts: QoS, L2D, one-hot mapping, QoS target, per-cluster
// frequency ratios, per-core utilizations.
func Dim(numCores, numClusters int) int {
	return 3 + 2*numCores + numClusters
}

// UtilOffset returns the index of the first core-utilization feature within
// a vector built by Assemble/Vector.
func UtilOffset(numCores, numClusters int) int {
	return 3 + numCores + numClusters
}

// EstimateMinFreq implements Eq. (1): the minimum frequency from freqs
// (ascending, Hz) at which application performance, linearly scaled from
// the current frequency fCur (Hz) and current IPS q (instr/s), reaches the
// target Q. ok is false if even the highest frequency falls short (the
// estimate then returns that highest frequency). It panics on an empty
// frequency list: every cluster has at least one OPP by construction.
func EstimateMinFreq(freqs []float64, fCur, q, target float64) (float64, bool) {
	if len(freqs) == 0 {
		panic("features: empty frequency list")
	}
	if target <= 0 {
		return freqs[0], true
	}
	if fCur <= 0 || q <= 0 {
		// No throughput information yet (e.g. app just arrived):
		// conservatively demand the highest level.
		return freqs[len(freqs)-1], false
	}
	for _, f := range freqs {
		if q*f/fCur >= target {
			return f, true
		}
	}
	return freqs[len(freqs)-1], false
}

// RequiredFreqWithout implements Eq. (2): the estimated VF level cluster
// `cluster` must hold to keep all background applications (everything
// except aoiID) at their QoS targets. With no background on the cluster it
// returns the lowest frequency.
func RequiredFreqWithout(s Snapshot, cluster int, aoiID sim.AppID) float64 {
	cs := s.Clusters[cluster]
	req := cs.Freqs[0]
	for _, a := range s.Apps {
		if a.ID == aoiID || a.Cluster != cluster {
			continue
		}
		f, _ := EstimateMinFreq(cs.Freqs, cs.Freq, a.IPS, a.QoS)
		if f > req {
			req = f
		}
	}
	return req
}

// Vector builds the feature vector for the AoI at index aoi in s.Apps.
// It panics on an out-of-range index. Hot paths that cannot afford the
// allocation use VectorInto with a reused buffer.
func Vector(s Snapshot, aoi int) []float64 {
	dst := make([]float64, Dim(s.NumCores, len(s.Clusters)))
	VectorInto(dst, s, aoi)
	return dst
}

// VectorInto builds the feature vector for the AoI at index aoi in s.Apps
// into dst, which must have length Dim(s.NumCores, len(s.Clusters)). The
// per-cluster ratio and per-core utilization scratch live inside dst
// itself (the layout reserves their segments), so the call performs no
// heap allocation — this is the once-per-app-per-epoch runtime path of
// the paper's daemon. It panics on an out-of-range index or a buffer of
// the wrong length.
//
//hot:per-epoch-inference-path
func VectorInto(dst []float64, s Snapshot, aoi int) {
	if aoi < 0 || aoi >= len(s.Apps) {
		panicAoIRange(aoi, len(s.Apps))
	}
	if len(dst) != Dim(s.NumCores, len(s.Clusters)) {
		panicMsg("features: feature buffer length mismatch")
	}
	a := s.Apps[aoi]
	ratios := dst[3+s.NumCores : 3+s.NumCores+len(s.Clusters)]
	for ci, cs := range s.Clusters {
		ratios[ci] = RequiredFreqWithout(s, ci, a.ID) / cs.Freq
	}
	utils := dst[UtilOffset(s.NumCores, len(s.Clusters)):]
	BackgroundOccupancyInto(utils, s, a.ID)
	AssembleInto(dst, a.IPS, a.L2DPS, a.Core, s.NumCores, a.QoS, ratios, utils)
}

// panicMsg keeps panic's interface conversion out of the //hot callers:
// even a constant message counts against the zero-allocation gate. It
// always panics with msg.
//
//go:noinline
func panicMsg(msg string) { panic(msg) }

// panicAoIRange keeps the formatting allocation out of the //hot callers:
// fmt.Sprintf arguments escape, and the gate must only see the live path.
//
//go:noinline
func panicAoIRange(aoi, n int) {
	panic(fmt.Sprintf("features: AoI index %d out of range [0,%d)", aoi, n))
}

// Assemble builds the raw feature vector from its components: ips and the
// QoS target in instr/s, l2dps in accesses per second, freqRatios
// dimensionless (required/current per cluster). It is the single place
// defining feature order and scaling, shared by the run-time path (Vector)
// and the design-time oracle, so both produce identical distributions.
// It panics on an out-of-range AoI core or a utilization vector whose
// length differs from numCores.
func Assemble(ips, l2dps float64, aoiCore, numCores int, qosTarget float64,
	freqRatios, utils []float64) []float64 {
	v := make([]float64, Dim(numCores, len(freqRatios)))
	AssembleInto(v, ips, l2dps, aoiCore, numCores, qosTarget, freqRatios, utils)
	return v
}

// AssembleInto is Assemble writing into a caller-owned buffer of length
// Dim(numCores, len(freqRatios)); it performs no heap allocation. The
// freqRatios and utils arguments may alias their own segments of dst
// (VectorInto relies on this to stay scratch-free).
//
//hot:per-epoch-inference-path
func AssembleInto(dst []float64, ips, l2dps float64, aoiCore, numCores int,
	qosTarget float64, freqRatios, utils []float64) {
	if aoiCore < 0 || aoiCore >= numCores {
		panicCoreRange(aoiCore, numCores)
	}
	if len(utils) != numCores {
		panicMsg("features: utilization vector length mismatch")
	}
	if len(dst) != Dim(numCores, len(freqRatios)) {
		panicMsg("features: feature buffer length mismatch")
	}
	// (a) AoI characteristics.
	dst[0] = ips / ipsScale
	dst[1] = l2dps / l2dScale
	for c := 0; c < numCores; c++ {
		if c == aoiCore {
			dst[2+c] = 1
		} else {
			dst[2+c] = 0
		}
	}
	// (b) QoS target.
	dst[2+numCores] = qosTarget / ipsScale
	// (c) background: required per-cluster frequency without the AoI,
	// relative to the current frequency, and per-core occupancy.
	copy(dst[3+numCores:], freqRatios)
	copy(dst[3+numCores+len(freqRatios):], utils)
}

// panicCoreRange keeps the formatting allocation out of the //hot callers.
//
//go:noinline
func panicCoreRange(core, n int) {
	panic(fmt.Sprintf("features: AoI core %d out of range [0,%d)", core, n))
}

// Describe renders a feature vector as a human-readable multi-line string
// for debugging tools and logs. numCores/numClusters define the layout
// (they must match the vector's Dim).
func Describe(v []float64, numCores, numClusters int) string {
	if len(v) != Dim(numCores, numClusters) {
		return fmt.Sprintf("features: vector of %d values does not match %d cores / %d clusters",
			len(v), numCores, numClusters)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "AoI QoS (current):  %.3f GIPS\n", v[0])
	fmt.Fprintf(&b, "AoI L2D accesses:   %.3f (×1e8/s)\n", v[1])
	core := -1
	for c := 0; c < numCores; c++ {
		if v[2+c] == 1 {
			core = c
		}
	}
	fmt.Fprintf(&b, "AoI current core:   %d\n", core)
	fmt.Fprintf(&b, "AoI QoS target:     %.3f GIPS\n", v[2+numCores])
	for ci := 0; ci < numClusters; ci++ {
		fmt.Fprintf(&b, "f̃(cluster %d)/f:     %.3f\n", ci, v[3+numCores+ci])
	}
	b.WriteString("background cores:   ")
	off := UtilOffset(numCores, numClusters)
	for c := 0; c < numCores; c++ {
		if v[off+c] != 0 {
			fmt.Fprintf(&b, "%d ", c)
		}
	}
	b.WriteString("\n")
	return b.String()
}

// BackgroundOccupancy returns the per-core utilization features: 1 if the
// core hosts any application other than aoiID, else 0.
func BackgroundOccupancy(s Snapshot, aoiID sim.AppID) []float64 {
	util := make([]float64, s.NumCores)
	BackgroundOccupancyInto(util, s, aoiID)
	return util
}

// BackgroundOccupancyInto fills dst (length s.NumCores) with the per-core
// utilization features without allocating. It panics on a length mismatch.
//
//hot:per-epoch-inference-path
func BackgroundOccupancyInto(dst []float64, s Snapshot, aoiID sim.AppID) {
	if len(dst) != s.NumCores {
		panicMsg("features: utilization buffer length mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for _, b := range s.Apps {
		if b.ID != aoiID {
			dst[b.Core] = 1
		}
	}
}

// Vectors builds the feature matrix with one row per running application —
// the batch the daemon sends to the NPU (each application as the AoI once).
// It shares the Eq. (1)/(2) aggregates across rows via Batch, so the matrix
// costs O(n·(cores+clusters)) instead of O(n²·clusters).
func Vectors(s Snapshot) [][]float64 {
	var b Batch
	b.Reset(s)
	out := make([][]float64, len(s.Apps))
	for i := range out {
		out[i] = make([]float64, Dim(s.NumCores, len(s.Clusters)))
		b.VectorInto(out[i], i)
	}
	return out
}
