package features

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func snap() Snapshot {
	littleFreqs := []float64{509e6, 1018e6, 1402e6, 1844e6}
	bigFreqs := []float64{682e6, 1210e6, 1844e6, 2362e6}
	return Snapshot{
		NumCores: 8,
		Clusters: []ClusterState{
			{Freqs: littleFreqs, Freq: 1402e6},
			{Freqs: bigFreqs, Freq: 1210e6},
		},
		Apps: []AppState{
			{ID: 0, Core: 3, Cluster: 0, IPS: 0.4e9, L2DPS: 3e6, QoS: 0.35e9},
			{ID: 1, Core: 6, Cluster: 1, IPS: 1.2e9, L2DPS: 9e6, QoS: 1.0e9},
			{ID: 2, Core: 5, Cluster: 1, IPS: 0.9e9, L2DPS: 5e6, QoS: 0.8e9},
		},
	}
}

func TestDimMatchesPaper(t *testing.T) {
	if got := Dim(8, 2); got != 21 {
		t.Fatalf("Dim(8,2) = %d, want 21 (Table 2)", got)
	}
}

func TestVectorLayout(t *testing.T) {
	s := snap()
	v := Vector(s, 0)
	if len(v) != 21 {
		t.Fatalf("feature vector length = %d, want 21", len(v))
	}
	// [0] current QoS, [1] L2D, [2..9] one-hot, [10] target,
	// [11..12] freq ratios, [13..20] utilizations.
	if v[0] != 0.4 {
		t.Errorf("current QoS feature = %g, want 0.4 (GIPS)", v[0])
	}
	if v[1] != 3e6/1e8 {
		t.Errorf("L2D feature = %g", v[1])
	}
	for c := 0; c < 8; c++ {
		want := 0.0
		if c == 3 {
			want = 1
		}
		if v[2+c] != want {
			t.Errorf("one-hot[%d] = %g, want %g", c, v[2+c], want)
		}
	}
	if v[10] != 0.35 {
		t.Errorf("QoS target feature = %g, want 0.35", v[10])
	}
	// Utilization features exclude the AoI (paper Fig.: the AoI's own
	// core reads 0): apps 1 and 2 occupy cores 6 and 5.
	wantUtil := []float64{0, 0, 0, 0, 0, 1, 1, 0}
	for c := 0; c < 8; c++ {
		if v[13+c] != wantUtil[c] {
			t.Errorf("util[%d] = %g, want %g", c, v[13+c], wantUtil[c])
		}
	}
}

func TestBackgroundOccupancyExcludesAoI(t *testing.T) {
	s := snap()
	u := BackgroundOccupancy(s, 1) // AoI = app on core 6
	want := []float64{0, 0, 0, 1, 0, 1, 0, 0}
	for c := range want {
		if u[c] != want[c] {
			t.Errorf("occupancy[%d] = %g, want %g", c, u[c], want[c])
		}
	}
}

func TestEstimateMinFreq(t *testing.T) {
	freqs := []float64{509e6, 1018e6, 1402e6, 1844e6}
	// Running at 1402 MHz with 0.4 GIPS; target 0.35 GIPS is already met
	// at 1402·0.35/0.4 = 1227 MHz → lowest level ≥ that would be 1402,
	// but linear scaling says 1018 gives 0.29 < 0.35, so expect 1402.
	f, ok := EstimateMinFreq(freqs, 1402e6, 0.4e9, 0.35e9)
	if !ok || f != 1402e6 {
		t.Errorf("EstimateMinFreq = %g,%v, want 1402 MHz,true", f, ok)
	}
	// Lower target reachable at the bottom level.
	f, ok = EstimateMinFreq(freqs, 1402e6, 0.4e9, 0.1e9)
	if !ok || f != 509e6 {
		t.Errorf("low target: %g,%v, want 509 MHz,true", f, ok)
	}
	// Unreachable target.
	f, ok = EstimateMinFreq(freqs, 1402e6, 0.4e9, 10e9)
	if ok || f != 1844e6 {
		t.Errorf("unreachable: %g,%v, want 1844 MHz,false", f, ok)
	}
	// Zero target is satisfied at the lowest level.
	if f, ok = EstimateMinFreq(freqs, 1402e6, 0.4e9, 0); !ok || f != 509e6 {
		t.Errorf("zero target: %g,%v", f, ok)
	}
	// No throughput info yet: conservative max.
	if f, ok = EstimateMinFreq(freqs, 1402e6, 0, 1e9); ok || f != 1844e6 {
		t.Errorf("no info: %g,%v, want max,false", f, ok)
	}
}

func TestRequiredFreqWithout(t *testing.T) {
	s := snap()
	// Cluster 1 (big, at 1210 MHz) hosts apps 1 (1.2 GIPS, target 1.0)
	// and 2 (0.9 GIPS, target 0.8). Without app 1, only app 2 remains:
	// linear scaling: needs f ≥ 1210·0.8/0.9 = 1076 → level 1210 MHz.
	got := RequiredFreqWithout(s, 1, 1)
	if got != 1210e6 {
		t.Errorf("required freq without AoI = %g, want 1210 MHz", got)
	}
	// Without app 0, cluster 0 has no other apps: lowest level.
	if got := RequiredFreqWithout(s, 0, 0); got != 509e6 {
		t.Errorf("empty cluster requirement = %g, want 509 MHz", got)
	}
	// For an AoI on the other cluster, both background apps count:
	// app 1 needs 1210·1.0/1.2 = 1008 → 1210.
	if got := RequiredFreqWithout(s, 1, 0); got != 1210e6 {
		t.Errorf("cross-cluster requirement = %g", got)
	}
}

func TestFreqRatioFeatures(t *testing.T) {
	s := snap()
	v := Vector(s, 1) // AoI = app 1 on big
	// LITTLE requirement without AoI: app 0 needs 1402·0.35/0.4 = 1227 →
	// 1402; ratio to current 1402 = 1.
	if math.Abs(v[11]-1.0) > 1e-9 {
		t.Errorf("LITTLE ratio = %g, want 1.0", v[11])
	}
	// big requirement without AoI: app 2 → 1210; ratio 1210/1210 = 1.
	if math.Abs(v[12]-1.0) > 1e-9 {
		t.Errorf("big ratio = %g, want 1.0", v[12])
	}
	// Remove app 2; now big requirement without app 1 is the min level.
	s2 := snap()
	s2.Apps = s2.Apps[:2]
	v2 := Vector(s2, 1)
	if want := 682e6 / 1210e6; math.Abs(v2[12]-want) > 1e-9 {
		t.Errorf("big ratio with empty background = %g, want %g", v2[12], want)
	}
}

func TestVectorsOnePerApp(t *testing.T) {
	s := snap()
	vs := Vectors(s)
	if len(vs) != 3 {
		t.Fatalf("rows = %d, want 3", len(vs))
	}
	// Each row's one-hot must point at that app's core.
	cores := []int{3, 6, 5}
	for i, v := range vs {
		for c := 0; c < 8; c++ {
			want := 0.0
			if c == cores[i] {
				want = 1
			}
			if v[2+c] != want {
				t.Errorf("row %d one-hot[%d] = %g", i, c, v[2+c])
			}
		}
	}
}

func TestVectorPanics(t *testing.T) {
	s := snap()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("bad AoI", func() { Vector(s, 9) })
	mustPanic("negative AoI", func() { Vector(s, -1) })
	mustPanic("empty freqs", func() { EstimateMinFreq(nil, 1e9, 1e9, 1e9) })
}

func TestFromEnvMatchesLiveState(t *testing.T) {
	cfg := sim.DefaultConfig(true, 25)
	e := sim.New(cfg)
	spec, _ := workload.ByName("adi")
	spec.TotalInstr = 1e18
	e.AddJob(workload.Job{Spec: spec, QoS: 1e9, Arrival: 0})
	e.Run(&freqPin{little: 8, big: 8}, 1)

	s := FromEnv(e.Env())
	if s.NumCores != 8 || len(s.Clusters) != 2 {
		t.Fatalf("snapshot shape: %d cores, %d clusters", s.NumCores, len(s.Clusters))
	}
	if len(s.Apps) != 1 {
		t.Fatalf("snapshot apps = %d", len(s.Apps))
	}
	a := s.Apps[0]
	if a.QoS != 1e9 || a.IPS <= 0 || a.L2DPS <= 0 {
		t.Errorf("snapshot app state: %+v", a)
	}
	if s.Clusters[0].Freq != 1844e6 || s.Clusters[1].Freq != 2362e6 {
		t.Errorf("snapshot freqs: %g, %g", s.Clusters[0].Freq, s.Clusters[1].Freq)
	}
	v := Vector(s, 0)
	if len(v) != 21 {
		t.Errorf("live feature vector length = %d", len(v))
	}
}

// freqPin pins both clusters to fixed levels.
type freqPin struct {
	env         *sim.Env
	little, big int
}

func (m *freqPin) Name() string        { return "freq-pin" }
func (m *freqPin) Attach(env *sim.Env) { m.env = env }
func (m *freqPin) Tick(now float64) {
	m.env.SetClusterFreqIndex(0, m.little)
	m.env.SetClusterFreqIndex(1, m.big)
}

func TestDescribe(t *testing.T) {
	s := snap()
	v := Vector(s, 0)
	out := Describe(v, 8, 2)
	for _, want := range []string{"current core:   3", "QoS target:     0.350", "background cores:   5 6"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q in:\n%s", want, out)
		}
	}
	if out := Describe(v[:5], 8, 2); !strings.Contains(out, "does not match") {
		t.Error("Describe accepted wrong-length vector")
	}
}
