package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCatalogValid(t *testing.T) {
	for _, s := range Catalog() {
		if err := s.Validate(); err != nil {
			t.Errorf("catalog entry invalid: %v", err)
		}
	}
}

func TestCatalogSortedAndComplete(t *testing.T) {
	cat := Catalog()
	// 9 polybench-like + 8 parsec-like used by the paper's experiments,
	// plus 5 extra polybench-like and 4 extra parsec-like library entries.
	if len(cat) != 26 {
		t.Fatalf("catalog size = %d, want 26", len(cat))
	}
	for i := 1; i < len(cat); i++ {
		if cat[i-1].Name >= cat[i].Name {
			t.Errorf("catalog not sorted at %d: %s >= %s", i, cat[i-1].Name, cat[i].Name)
		}
	}
}

func TestSetsDisjointAndKnown(t *testing.T) {
	seen := map[string]string{}
	add := func(set string, names []string) {
		for _, n := range names {
			if _, ok := ByName(n); !ok {
				t.Errorf("%s: %q not in catalog", set, n)
			}
			if prev, dup := seen[n]; dup {
				t.Errorf("%q in both %s and %s", n, prev, set)
			}
			seen[n] = set
		}
	}
	add("training", TrainingSet())
	add("heldout", HeldOutSet())
	add("unseen", UnseenSet())
	if len(TrainingSet()) != 7 {
		t.Errorf("training set size = %d, want 7", len(TrainingSet()))
	}
	if len(UnseenSet()) != 8 {
		t.Errorf("unseen set size = %d, want 8", len(UnseenSet()))
	}
}

func TestTrainingSetIsPhaseFree(t *testing.T) {
	for _, n := range append(TrainingSet(), HeldOutSet()...) {
		s, _ := ByName(n)
		if s.HasPhases() {
			t.Errorf("%s: training/held-out benchmark must be phase-free", n)
		}
	}
}

func TestMixedPoolMatchesPaper(t *testing.T) {
	pool := MixedPool()
	if len(pool) != 16 {
		t.Fatalf("mixed pool size = %d, want 16", len(pool))
	}
	want := map[string]bool{"jacobi-2d": true, "canneal": true, "adi": true, "swaptions": true}
	for _, n := range pool {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Errorf("mixed pool missing %v", want)
	}
}

func TestPhaseAtCycles(t *testing.T) {
	s, _ := ByName("dedup") // phases of 2e9 instructions each
	p0, p1 := s.Phases[0], s.Phases[1]
	tests := []struct {
		executed float64
		want     Phase
	}{
		{0, p0},
		{1.9e9, p0},
		{2.1e9, p1},
		{3.9e9, p1},
		{4.1e9, p0}, // wrapped around
		{6.5e9, p1},
	}
	for _, tt := range tests {
		got := s.PhaseAt(tt.executed)
		if got != tt.want {
			t.Errorf("PhaseAt(%g): got IPCBig=%g, want IPCBig=%g",
				tt.executed, got.IPCBig, tt.want.IPCBig)
		}
	}
}

func TestPhaseAtSinglePhase(t *testing.T) {
	s, _ := ByName("adi")
	for _, x := range []float64{0, 1e9, 1e12} {
		if got := s.PhaseAt(x); got != s.Phases[0] {
			t.Errorf("PhaseAt(%g) changed for single-phase app", x)
		}
	}
}

func TestPhaseAtProperty(t *testing.T) {
	s, _ := ByName("facesim")
	f := func(raw float64) bool {
		executed := math.Abs(raw)
		if math.IsNaN(executed) || math.IsInf(executed, 0) {
			return true
		}
		got := s.PhaseAt(executed)
		for _, p := range s.Phases {
			if got == p {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	good := Phase{IPCBig: 2, IPCLittle: 1, MPKI: 1, L2APKI: 4, Instr: 1e9}
	cases := []struct {
		name string
		spec AppSpec
	}{
		{"empty name", AppSpec{Phases: []Phase{good}, TotalInstr: 1e9}},
		{"no phases", AppSpec{Name: "x", TotalInstr: 1e9}},
		{"zero total", AppSpec{Name: "x", Phases: []Phase{good}}},
		{"zero IPC", AppSpec{Name: "x", TotalInstr: 1e9,
			Phases: []Phase{{IPCLittle: 1, MPKI: 1, L2APKI: 1, Instr: 1e9}}}},
		{"negative MPKI", AppSpec{Name: "x", TotalInstr: 1e9,
			Phases: []Phase{{IPCBig: 1, IPCLittle: 1, MPKI: -1, Instr: 1e9}}}},
		{"multi-phase zero instr", AppSpec{Name: "x", TotalInstr: 1e9,
			Phases: []Phase{good, {IPCBig: 1, IPCLittle: 1}}}},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid spec", c.name)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	peak := func(AppSpec) float64 { return 4e9 }
	a := NewGenerator(7, MixedPool(), peak, 0.2, 0.7, 1).Generate(20, 0.1)
	b := NewGenerator(7, MixedPool(), peak, 0.2, 0.7, 1).Generate(20, 0.1)
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("job counts = %d,%d", len(a), len(b))
	}
	for i := range a {
		if a[i].Spec.Name != b[i].Spec.Name || a[i].QoS != b[i].QoS || a[i].Arrival != b[i].Arrival {
			t.Fatalf("job %d differs between equal-seeded generators", i)
		}
	}
	c := NewGenerator(8, MixedPool(), peak, 0.2, 0.7, 1).Generate(20, 0.1)
	same := true
	for i := range a {
		if a[i].Spec.Name != c[i].Spec.Name || a[i].Arrival != c[i].Arrival {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestGeneratorProperties(t *testing.T) {
	peak := func(AppSpec) float64 { return 4e9 }
	g := NewGenerator(3, MixedPool(), peak, 0.2, 0.7, 0.5)
	jobs := g.Generate(50, 0.2)
	prev := -1.0
	for i, j := range jobs {
		if j.Arrival < prev {
			t.Fatalf("job %d: arrivals not sorted", i)
		}
		prev = j.Arrival
		if j.QoS < 0.2*4e9-1 || j.QoS > 0.7*4e9+1 {
			t.Errorf("job %d: QoS %g outside configured fraction range", i, j.QoS)
		}
		full, _ := ByName(j.Spec.Name)
		if j.Spec.TotalInstr != full.TotalInstr*0.5 {
			t.Errorf("job %d: instruction scaling not applied", i)
		}
	}
	// Mean inter-arrival should be near 1/rate = 5 s.
	mean := jobs[len(jobs)-1].Arrival / float64(len(jobs)-1)
	if mean < 2 || mean > 10 {
		t.Errorf("mean inter-arrival = %.1f s, want near 5 s", mean)
	}
}

func TestGeneratorPanicsOnBadConfig(t *testing.T) {
	peak := func(AppSpec) float64 { return 4e9 }
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("bad qos range", func() { NewGenerator(1, MixedPool(), peak, 0.9, 0.2, 1) })
	mustPanic("qos >= 1", func() { NewGenerator(1, MixedPool(), peak, 0.5, 1.0, 1) })
	mustPanic("bad scale", func() { NewGenerator(1, MixedPool(), peak, 0.2, 0.7, 0) })
	mustPanic("bad rate", func() {
		NewGenerator(1, MixedPool(), peak, 0.2, 0.7, 1).Generate(5, 0)
	})
	mustPanic("unknown pool entry", func() {
		NewGenerator(1, []string{"nope"}, peak, 0.2, 0.7, 1).Generate(1, 1)
	})
}
