package workload

import (
	"encoding/json"
	"fmt"
	"os"
)

// jobJSON is the on-disk form of a Job: benchmarks are stored by name plus
// the (possibly scaled) instruction count, so saved workloads survive
// catalog recalibrations of per-phase parameters.
type jobJSON struct {
	Name       string  `json:"name"`
	TotalInstr float64 `json:"totalInstr"`
	QoS        float64 `json:"qos"`
	Arrival    float64 `json:"arrival"`
}

// SaveJobs writes a job list as JSON for reproducible experiments.
func SaveJobs(jobs []Job, path string) error {
	out := make([]jobJSON, len(jobs))
	for i, j := range jobs {
		out[i] = jobJSON{
			Name:       j.Spec.Name,
			TotalInstr: j.Spec.TotalInstr,
			QoS:        j.QoS,
			Arrival:    j.Arrival,
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadJobs reads a job list written by SaveJobs, resolving benchmarks
// against the current catalog.
func LoadJobs(path string) ([]Job, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var in []jobJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("workload: parsing %s: %w", path, err)
	}
	jobs := make([]Job, 0, len(in))
	for i, j := range in {
		spec, ok := ByName(j.Name)
		if !ok {
			return nil, fmt.Errorf("workload: %s: job %d: unknown benchmark %q", path, i, j.Name)
		}
		if j.TotalInstr <= 0 {
			return nil, fmt.Errorf("workload: %s: job %d: bad instruction count", path, i)
		}
		spec.TotalInstr = j.TotalInstr
		jobs = append(jobs, Job{Spec: spec, QoS: j.QoS, Arrival: j.Arrival})
	}
	return jobs, nil
}
