package workload

import (
	"encoding/json"
	"fmt"
	"os"
)

// JobEntry is the serialized form of a Job: benchmarks are stored by name
// plus the (possibly scaled) instruction count, so saved workloads survive
// catalog recalibrations of per-phase parameters. It is exported so other
// layers (files, HTTP manifests) share one schema.
type JobEntry struct {
	Name       string  `json:"name"`
	TotalInstr float64 `json:"totalInstr"`
	QoS        float64 `json:"qos"`
	Arrival    float64 `json:"arrival"`
}

// JobsToEntries converts a job list to its serialized form.
func JobsToEntries(jobs []Job) []JobEntry {
	out := make([]JobEntry, len(jobs))
	for i, j := range jobs {
		out[i] = JobEntry{
			Name:       j.Spec.Name,
			TotalInstr: j.Spec.TotalInstr,
			QoS:        j.QoS,
			Arrival:    j.Arrival,
		}
	}
	return out
}

// EntriesToJobs resolves serialized entries against the current benchmark
// catalog.
func EntriesToJobs(entries []JobEntry) ([]Job, error) {
	jobs := make([]Job, 0, len(entries))
	for i, e := range entries {
		spec, ok := ByName(e.Name)
		if !ok {
			return nil, fmt.Errorf("workload: job %d: unknown benchmark %q", i, e.Name)
		}
		if e.TotalInstr <= 0 {
			return nil, fmt.Errorf("workload: job %d: bad instruction count", i)
		}
		spec.TotalInstr = e.TotalInstr
		if e.QoS < 0 {
			return nil, fmt.Errorf("workload: job %d: negative QoS target", i)
		}
		if e.Arrival < 0 {
			return nil, fmt.Errorf("workload: job %d: negative arrival time", i)
		}
		jobs = append(jobs, Job{Spec: spec, QoS: e.QoS, Arrival: e.Arrival})
	}
	return jobs, nil
}

// SaveJobs writes a job list as JSON for reproducible experiments.
func SaveJobs(jobs []Job, path string) error {
	data, err := json.MarshalIndent(JobsToEntries(jobs), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadJobs reads a job list written by SaveJobs, resolving benchmarks
// against the current catalog.
func LoadJobs(path string) ([]Job, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var in []JobEntry
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("workload: parsing %s: %w", path, err)
	}
	jobs, err := EntriesToJobs(in)
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w", path, err)
	}
	return jobs, nil
}
