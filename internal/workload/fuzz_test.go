package workload

import (
	"encoding/json"
	"testing"
)

// FuzzJobEntries fuzzes the arrival-manifest parsing path shared by saved
// workload files and HTTP sim requests: arbitrary JSON must either be
// rejected with an error or resolve into a job list that is internally
// consistent and survives a serialize/parse round trip. Parsing must never
// panic — manifests cross a trust boundary at the serve layer.
func FuzzJobEntries(f *testing.F) {
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"name":"adi","totalInstr":4e9,"qos":2e8,"arrival":0}]`))
	f.Add([]byte(`[{"name":"canneal","totalInstr":1e9,"qos":0,"arrival":1.5},
		{"name":"syr2k","totalInstr":2e9,"qos":9e8,"arrival":0.25}]`))
	f.Add([]byte(`[{"name":"ghost","totalInstr":1e9}]`))      // unknown benchmark
	f.Add([]byte(`[{"name":"adi","totalInstr":-1}]`))         // bad instruction count
	f.Add([]byte(`[{"name":"adi","totalInstr":1,"qos":-3}]`)) // negative QoS
	f.Add([]byte(`[{"name":"adi","totalInstr":1e999}]`))      // float overflow
	f.Add([]byte(`{"name":"adi"}`))                           // not a list
	f.Add([]byte(`[{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var entries []JobEntry
		if err := json.Unmarshal(data, &entries); err != nil {
			return // malformed JSON: rejected upstream, nothing to check
		}
		jobs, err := EntriesToJobs(entries)
		if err != nil {
			return // invalid manifest: rejected with an error, not a panic
		}
		if len(jobs) != len(entries) {
			t.Fatalf("%d entries resolved to %d jobs", len(entries), len(jobs))
		}
		for i, j := range jobs {
			if err := j.Spec.Validate(); err != nil {
				t.Fatalf("job %d: accepted spec fails validation: %v", i, err)
			}
			if j.QoS < 0 || j.Arrival < 0 {
				t.Fatalf("job %d: accepted with QoS %g, arrival %g", i, j.QoS, j.Arrival)
			}
		}
		// Round trip: re-serializing the accepted jobs reproduces the
		// entries exactly, and the result parses again.
		back := JobsToEntries(jobs)
		for i := range back {
			if back[i] != entries[i] {
				t.Fatalf("entry %d: round trip %+v != %+v", i, back[i], entries[i])
			}
		}
		if _, err := EntriesToJobs(back); err != nil {
			t.Fatalf("round-tripped manifest rejected: %v", err)
		}
	})
}
