package workload

import (
	"os"
	"path/filepath"
	"testing"
)

func TestJobsSaveLoadRoundTrip(t *testing.T) {
	peak := func(AppSpec) float64 { return 4e9 }
	jobs := NewGenerator(9, MixedPool(), peak, 0.2, 0.7, 0.5).Generate(12, 0.1)
	path := filepath.Join(t.TempDir(), "jobs.json")
	if err := SaveJobs(jobs, path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadJobs(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(jobs) {
		t.Fatalf("loaded %d jobs, want %d", len(back), len(jobs))
	}
	for i := range jobs {
		if jobs[i].Spec.Name != back[i].Spec.Name ||
			jobs[i].Spec.TotalInstr != back[i].Spec.TotalInstr ||
			jobs[i].QoS != back[i].QoS ||
			jobs[i].Arrival != back[i].Arrival {
			t.Fatalf("job %d differs after round trip:\n%+v\n%+v", i, jobs[i], back[i])
		}
		// Phases come from the live catalog.
		if len(back[i].Spec.Phases) == 0 {
			t.Fatalf("job %d lost phases", i)
		}
	}
}

func TestLoadJobsErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadJobs(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := LoadJobs(bad); err == nil {
		t.Error("malformed JSON accepted")
	}
	unknown := filepath.Join(dir, "unknown.json")
	os.WriteFile(unknown, []byte(`[{"name":"nope","totalInstr":1,"qos":1,"arrival":0}]`), 0o644)
	if _, err := LoadJobs(unknown); err == nil {
		t.Error("unknown benchmark accepted")
	}
	zero := filepath.Join(dir, "zero.json")
	os.WriteFile(zero, []byte(`[{"name":"adi","totalInstr":0,"qos":1,"arrival":0}]`), 0o644)
	if _, err := LoadJobs(zero); err == nil {
		t.Error("zero instruction count accepted")
	}
}
