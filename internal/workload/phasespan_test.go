package workload

import (
	"math"
	"math/rand"
	"testing"
)

// TestPhaseSpanAtConsistent checks the PhaseSpanAt contract the engine's
// perf cache relies on: the returned phase equals PhaseAt(executed), and
// for every executed' inside [executed, end) PhaseAt still returns that
// same phase — including executed' values crawling right up to the bound.
func TestPhaseSpanAtConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, spec := range catalog {
		name := spec.Name
		for trial := 0; trial < 400; trial++ {
			executed := rng.Float64() * 3 * spec.TotalInstr
			ph, end := spec.PhaseSpanAt(executed)
			if got := spec.PhaseAt(executed); got != ph {
				t.Fatalf("%s executed=%v: PhaseSpanAt phase %+v != PhaseAt %+v",
					name, executed, ph, got)
			}
			if math.IsInf(end, 1) {
				if len(spec.Phases) != 1 {
					t.Fatalf("%s: infinite span on a %d-phase spec", name, len(spec.Phases))
				}
				continue
			}
			if end < executed {
				t.Fatalf("%s executed=%v: span end %v before start", name, executed, end)
			}
			for _, frac := range []float64{0, 0.25, 0.5, 0.9, 0.999, 0.999999} {
				x := executed + frac*(end-executed)
				if x >= end {
					continue
				}
				if got := spec.PhaseAt(x); got != ph {
					t.Fatalf("%s executed=%v x=%v (end %v): phase changed inside span",
						name, executed, x, end)
				}
			}
		}
	}
}
