// Package workload models the applications executed on the platform and the
// open-system workload generator.
//
// The paper evaluates with PARSEC and Polybench binaries on a real board.
// Those binaries cannot run here, so each benchmark is substituted by an
// analytic application model with the characteristics that matter to the
// management policies: per-cluster IPC (how much the application benefits
// from the big cluster's out-of-order execution), L2 miss rate (memory-
// boundedness, i.e. DVFS sensitivity) and L2 access rate (the L2D
// performance counter the policies observe). PARSEC-like applications have
// execution phases; Polybench-like applications are phase-free, matching
// the paper's constraint that training-data benchmarks have constant QoS.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Phase is one execution phase of an application. Within a phase the
// application behaves stationarily.
type Phase struct {
	IPCBig    float64 // instructions per cycle on a big core (no memory stalls)
	IPCLittle float64 // instructions per cycle on a LITTLE core
	MPKI      float64 // L2 misses per kilo-instruction (drives memory stall time)
	L2APKI    float64 // L2 data-cache accesses per kilo-instruction (observable counter)
	Instr     float64 // instructions in one pass through this phase
}

// AppSpec is the static description of a benchmark application.
type AppSpec struct {
	Name       string
	Phases     []Phase
	TotalInstr float64 // instructions until completion
}

// PhaseAt returns the phase active after `executed` instructions. Phases
// repeat cyclically until TotalInstr is reached.
func (s AppSpec) PhaseAt(executed float64) Phase {
	if len(s.Phases) == 1 {
		return s.Phases[0]
	}
	var cycle float64
	for _, p := range s.Phases {
		cycle += p.Instr
	}
	pos := executed
	if cycle > 0 {
		// Position within the current cycle.
		n := int(pos / cycle)
		pos -= float64(n) * cycle
	}
	for _, p := range s.Phases {
		if pos < p.Instr {
			return p
		}
		pos -= p.Instr
	}
	return s.Phases[len(s.Phases)-1]
}

// PhaseSpanAt returns PhaseAt(executed) together with a conservative span
// bound: for every executed' in [executed, end), PhaseAt(executed') returns
// the same phase. The bound lets per-tick callers cache phase-derived
// quantities and refresh only on (or slightly before) a phase boundary; it
// deliberately undershoots the true boundary by a margin that dominates the
// float rounding in PhaseAt's cyclic position arithmetic, so a cache keyed
// on it can never serve a stale phase — early refreshes re-query the ground
// truth and are merely redundant.
func (s AppSpec) PhaseSpanAt(executed float64) (Phase, float64) {
	if len(s.Phases) == 1 {
		return s.Phases[0], math.Inf(1)
	}
	var cycle float64
	for _, p := range s.Phases {
		cycle += p.Instr
	}
	pos := executed
	if cycle > 0 {
		n := int(pos / cycle)
		pos -= float64(n) * cycle
	}
	for _, p := range s.Phases {
		if pos < p.Instr {
			// The margin is far above the few-ulp error of recomputing the
			// cyclic position at a later `executed`, and far below the
			// billions-of-instructions phase lengths of real specs.
			end := executed + (p.Instr - pos) - (1 + 1e-9*math.Abs(executed))
			if end < executed {
				end = executed // degenerate short phase: refresh every call
			}
			return p, end
		}
		pos -= p.Instr
	}
	return s.Phases[len(s.Phases)-1], executed
}

// HasPhases reports whether the application exhibits phase behaviour.
func (s AppSpec) HasPhases() bool { return len(s.Phases) > 1 }

// Validate checks internal consistency of the spec.
func (s AppSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: spec with empty name")
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("workload: %s: no phases", s.Name)
	}
	if s.TotalInstr <= 0 {
		return fmt.Errorf("workload: %s: TotalInstr = %g", s.Name, s.TotalInstr)
	}
	for i, p := range s.Phases {
		if p.IPCBig <= 0 || p.IPCLittle <= 0 {
			return fmt.Errorf("workload: %s phase %d: non-positive IPC", s.Name, i)
		}
		if p.MPKI < 0 || p.L2APKI < 0 {
			return fmt.Errorf("workload: %s phase %d: negative cache rate", s.Name, i)
		}
		if len(s.Phases) > 1 && p.Instr <= 0 {
			return fmt.Errorf("workload: %s phase %d: non-positive Instr", s.Name, i)
		}
	}
	return nil
}

// catalog holds every modelled benchmark. Polybench-like applications are
// single-phase (constant behaviour, usable for oracle trace collection);
// PARSEC-like applications are multi-phase and serve as unseen applications
// in the evaluation, exactly as in the paper.
var catalog = []AppSpec{
	// ---- Polybench-like (phase-free) ----
	// adi strongly benefits from out-of-order execution: the paper's
	// motivational example shows it needs LITTLE@1.8 GHz but only
	// big@0.7 GHz for a QoS target of 30 % of its big-peak IPS.
	{Name: "adi", TotalInstr: 40e9,
		Phases: []Phase{{IPCBig: 2.0, IPCLittle: 0.75, MPKI: 0.5, L2APKI: 4}}},
	{Name: "fdtd-2d", TotalInstr: 36e9,
		Phases: []Phase{{IPCBig: 1.6, IPCLittle: 1.0, MPKI: 3.0, L2APKI: 12}}},
	{Name: "floyd-warshall", TotalInstr: 44e9,
		Phases: []Phase{{IPCBig: 1.8, IPCLittle: 0.85, MPKI: 1.0, L2APKI: 6}}},
	{Name: "gramschmidt", TotalInstr: 38e9,
		Phases: []Phase{{IPCBig: 1.9, IPCLittle: 0.95, MPKI: 1.5, L2APKI: 8}}},
	{Name: "heat-3d", TotalInstr: 34e9,
		Phases: []Phase{{IPCBig: 1.5, IPCLittle: 1.05, MPKI: 4.0, L2APKI: 14}}},
	{Name: "jacobi-2d", TotalInstr: 36e9,
		Phases: []Phase{{IPCBig: 1.55, IPCLittle: 1.0, MPKI: 3.5, L2APKI: 13}}},
	// seidel-2d barely benefits from out-of-order execution (loop-carried
	// dependences serialize it); the paper's example maps it to LITTLE.
	{Name: "seidel-2d", TotalInstr: 40e9,
		Phases: []Phase{{IPCBig: 1.3, IPCLittle: 1.1, MPKI: 2.0, L2APKI: 9}}},
	{Name: "syr2k", TotalInstr: 42e9,
		Phases: []Phase{{IPCBig: 2.1, IPCLittle: 0.9, MPKI: 0.8, L2APKI: 5}}},
	{Name: "covariance", TotalInstr: 38e9,
		Phases: []Phase{{IPCBig: 1.7, IPCLittle: 1.0, MPKI: 2.5, L2APKI: 10}}},

	// ---- PARSEC-like (phased, unseen by training) ----
	{Name: "blackscholes", TotalInstr: 44e9, Phases: []Phase{
		{IPCBig: 2.2, IPCLittle: 1.0, MPKI: 0.3, L2APKI: 3, Instr: 4e9},
		{IPCBig: 1.9, IPCLittle: 0.9, MPKI: 0.6, L2APKI: 4, Instr: 3e9},
	}},
	{Name: "bodytrack", TotalInstr: 40e9, Phases: []Phase{
		{IPCBig: 1.7, IPCLittle: 0.9, MPKI: 2.0, L2APKI: 8, Instr: 3e9},
		{IPCBig: 1.4, IPCLittle: 1.0, MPKI: 5.0, L2APKI: 15, Instr: 2e9},
		{IPCBig: 1.8, IPCLittle: 0.95, MPKI: 1.5, L2APKI: 7, Instr: 3e9},
	}},
	// canneal is memory-intensive: its performance depends only weakly on
	// the VF level (the paper notes it is the only application meeting its
	// QoS under powersave).
	{Name: "canneal", TotalInstr: 30e9, Phases: []Phase{
		{IPCBig: 1.5, IPCLittle: 1.0, MPKI: 12, L2APKI: 30, Instr: 4e9},
		{IPCBig: 1.3, IPCLittle: 0.95, MPKI: 10, L2APKI: 26, Instr: 4e9},
	}},
	// dedup alternates memory-heavy and compute-heavy phases; with periodic
	// migration this produces the paper's "negative overhead" artefact.
	{Name: "dedup", TotalInstr: 38e9, Phases: []Phase{
		{IPCBig: 1.6, IPCLittle: 0.9, MPKI: 6.0, L2APKI: 18, Instr: 2e9},
		{IPCBig: 2.0, IPCLittle: 0.95, MPKI: 1.0, L2APKI: 5, Instr: 2e9},
	}},
	{Name: "facesim", TotalInstr: 42e9, Phases: []Phase{
		{IPCBig: 1.8, IPCLittle: 0.9, MPKI: 2.0, L2APKI: 9, Instr: 3e9},
		{IPCBig: 1.5, IPCLittle: 1.0, MPKI: 4.5, L2APKI: 14, Instr: 2e9},
		{IPCBig: 2.0, IPCLittle: 0.95, MPKI: 0.8, L2APKI: 5, Instr: 3e9},
	}},
	{Name: "ferret", TotalInstr: 40e9, Phases: []Phase{
		{IPCBig: 1.9, IPCLittle: 0.9, MPKI: 1.2, L2APKI: 6, Instr: 4e9},
		{IPCBig: 1.6, IPCLittle: 1.0, MPKI: 3.0, L2APKI: 11, Instr: 3e9},
	}},
	{Name: "fluidanimate", TotalInstr: 36e9, Phases: []Phase{
		{IPCBig: 1.7, IPCLittle: 1.0, MPKI: 3.5, L2APKI: 12, Instr: 3e9},
		{IPCBig: 1.5, IPCLittle: 1.05, MPKI: 5.0, L2APKI: 16, Instr: 2e9},
	}},
	{Name: "swaptions", TotalInstr: 46e9, Phases: []Phase{
		{IPCBig: 2.3, IPCLittle: 1.05, MPKI: 0.2, L2APKI: 2},
	}},
	{Name: "streamcluster", TotalInstr: 34e9, Phases: []Phase{
		{IPCBig: 1.4, IPCLittle: 0.95, MPKI: 8.0, L2APKI: 22, Instr: 3e9},
		{IPCBig: 1.6, IPCLittle: 1.0, MPKI: 5.0, L2APKI: 15, Instr: 2e9},
	}},
	{Name: "x264", TotalInstr: 44e9, Phases: []Phase{
		{IPCBig: 2.1, IPCLittle: 0.95, MPKI: 1.0, L2APKI: 6, Instr: 3e9},
		{IPCBig: 1.7, IPCLittle: 0.9, MPKI: 2.5, L2APKI: 10, Instr: 2e9},
		{IPCBig: 2.2, IPCLittle: 1.0, MPKI: 0.6, L2APKI: 4, Instr: 2e9},
	}},
	{Name: "vips", TotalInstr: 40e9, Phases: []Phase{
		{IPCBig: 1.8, IPCLittle: 0.95, MPKI: 2.2, L2APKI: 9, Instr: 4e9},
		{IPCBig: 1.6, IPCLittle: 1.0, MPKI: 3.8, L2APKI: 13, Instr: 3e9},
	}},
	{Name: "raytrace", TotalInstr: 42e9, Phases: []Phase{
		{IPCBig: 2.0, IPCLittle: 0.9, MPKI: 1.5, L2APKI: 7, Instr: 5e9},
		{IPCBig: 1.8, IPCLittle: 0.95, MPKI: 2.2, L2APKI: 9, Instr: 3e9},
	}},

	// ---- additional Polybench-like kernels (phase-free) ----
	{Name: "gemm", TotalInstr: 46e9,
		Phases: []Phase{{IPCBig: 2.2, IPCLittle: 0.95, MPKI: 0.6, L2APKI: 4}}},
	{Name: "atax", TotalInstr: 30e9,
		Phases: []Phase{{IPCBig: 1.45, IPCLittle: 1.0, MPKI: 5.5, L2APKI: 17}}},
	{Name: "bicg", TotalInstr: 30e9,
		Phases: []Phase{{IPCBig: 1.5, IPCLittle: 1.0, MPKI: 5.0, L2APKI: 16}}},
	{Name: "cholesky", TotalInstr: 40e9,
		Phases: []Phase{{IPCBig: 1.9, IPCLittle: 0.9, MPKI: 1.2, L2APKI: 6}}},
	{Name: "doitgen", TotalInstr: 36e9,
		Phases: []Phase{{IPCBig: 1.75, IPCLittle: 1.0, MPKI: 2.2, L2APKI: 9}}},
}

// Catalog returns all modelled benchmarks, sorted by name.
func Catalog() []AppSpec {
	out := make([]AppSpec, len(catalog))
	copy(out, catalog)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName looks up a benchmark by name.
func ByName(name string) (AppSpec, bool) {
	for _, s := range catalog {
		if s.Name == name {
			return s, true
		}
	}
	return AppSpec{}, false
}

// TrainingSet returns the names of the seven phase-free benchmarks used for
// oracle trace collection and model training (the paper trains on Polybench
// except jacobi-2d).
func TrainingSet() []string {
	return []string{"adi", "fdtd-2d", "floyd-warshall", "gramschmidt",
		"heat-3d", "seidel-2d", "syr2k"}
}

// HeldOutSet returns the phase-free benchmarks excluded from training, used
// for the model-in-isolation evaluation (test AoIs).
func HeldOutSet() []string { return []string{"jacobi-2d", "covariance"} }

// UnseenSet returns the PARSEC-like phased applications never used in
// training; the paper's single-application experiments use only these.
func UnseenSet() []string {
	return []string{"blackscholes", "bodytrack", "canneal", "dedup",
		"facesim", "ferret", "fluidanimate", "swaptions"}
}

// MixedPool returns the 16 application names of the paper's main mixed
// workload experiment (8 PARSEC + 8 Polybench).
func MixedPool() []string {
	return append([]string{"adi", "fdtd-2d", "floyd-warshall", "gramschmidt",
		"heat-3d", "jacobi-2d", "seidel-2d", "syr2k"}, UnseenSet()...)
}

// Job is one application instance in an open-system workload: a benchmark,
// its QoS target (IPS) and its arrival time.
type Job struct {
	Spec    AppSpec
	QoS     float64 // QoS target in instructions per second
	Arrival float64 // seconds from experiment start
}

// Generator produces randomized open-system workloads with Poisson arrivals,
// as in the paper's main experiment.
type Generator struct {
	rng *rand.Rand
	// QoSFor maps a benchmark to its QoS target. Typically a random
	// fraction of the application's peak IPS on the big cluster; the
	// fraction range is configured via QoSFrac.
	peakIPS  func(AppSpec) float64
	pool     []string
	qosLo    float64
	qosHi    float64
	scaleRun float64 // scales TotalInstr (to shorten experiments)
}

// NewGenerator creates a workload generator.
//
// peakIPS must return the application's maximum achievable IPS (highest VF
// level on the big cluster, alone on a core); QoS targets are drawn
// uniformly from [qosLo, qosHi] of that peak. instrScale scales each
// application's instruction count (1.0 = full length). It panics on a QoS
// fraction range outside (0,1) or a non-positive instruction scale.
func NewGenerator(seed int64, pool []string, peakIPS func(AppSpec) float64,
	qosLo, qosHi, instrScale float64) *Generator {
	if qosLo <= 0 || qosHi < qosLo || qosHi >= 1 {
		panic(fmt.Sprintf("workload: invalid QoS fraction range [%g,%g]", qosLo, qosHi))
	}
	if instrScale <= 0 {
		panic("workload: non-positive instruction scale")
	}
	return &Generator{
		rng:      rand.New(rand.NewSource(seed)),
		peakIPS:  peakIPS,
		pool:     pool,
		qosLo:    qosLo,
		qosHi:    qosHi,
		scaleRun: instrScale,
	}
}

// Generate draws n jobs with exponential inter-arrival times at the given
// arrival rate (jobs per second), sorted by arrival time. It panics on a
// non-positive rate or a pool naming an unknown benchmark.
func (g *Generator) Generate(n int, rate float64) []Job {
	if rate <= 0 {
		panic("workload: non-positive arrival rate")
	}
	jobs := make([]Job, 0, n)
	t := 0.0
	for i := 0; i < n; i++ {
		name := g.pool[g.rng.Intn(len(g.pool))]
		spec, ok := ByName(name)
		if !ok {
			panic("workload: unknown benchmark in pool: " + name)
		}
		spec.TotalInstr *= g.scaleRun
		frac := g.qosLo + g.rng.Float64()*(g.qosHi-g.qosLo)
		jobs = append(jobs, Job{
			Spec:    spec,
			QoS:     frac * g.peakIPS(spec),
			Arrival: t,
		})
		t += g.rng.ExpFloat64() / rate
	}
	return jobs
}
