package governor

import (
	"testing"

	"repro/internal/perf"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestOndemandLevels(t *testing.T) {
	o := Ondemand{UpThreshold: 0.8}
	if got := o.Level(1.0, 9); got != 8 {
		t.Errorf("full util: level %d, want 8", got)
	}
	if got := o.Level(0.85, 9); got != 8 {
		t.Errorf("above threshold: level %d, want 8", got)
	}
	if got := o.Level(0, 9); got != 0 {
		t.Errorf("idle: level %d, want 0", got)
	}
	mid := o.Level(0.4, 9)
	if mid <= 0 || mid >= 8 {
		t.Errorf("mid util: level %d, want interior", mid)
	}
	// Defaulted threshold.
	if got := (Ondemand{}).Level(0.9, 9); got != 8 {
		t.Errorf("default threshold: level %d, want 8", got)
	}
}

func TestPowersaveAndPerformance(t *testing.T) {
	if got := (Powersave{}).Level(1.0, 9); got != 0 {
		t.Errorf("powersave level %d, want 0", got)
	}
	if got := (Performance{}).Level(0, 9); got != 8 {
		t.Errorf("performance level %d, want 8", got)
	}
}

func addApps(e *sim.Engine, names []string, qosFrac float64) {
	pm := perf.Default()
	plat := platform.HiKey970()
	for _, n := range names {
		spec, _ := workload.ByName(n)
		spec.TotalInstr = 1e18
		e.AddJob(workload.Job{Spec: spec, QoS: qosFrac * pm.PeakIPS(plat, spec)})
	}
}

func TestGTSFavorsBigCluster(t *testing.T) {
	sc := sim.DefaultConfig(true, 25)
	e := sim.New(sc)
	addApps(e, []string{"adi", "seidel-2d", "syr2k"}, 0.3)
	mgr := NewGTS(Ondemand{UpThreshold: 0.8})
	e.Run(mgr, 10)
	for _, a := range e.Env().Apps() {
		if sc.Platform.KindOf(a.Core) != platform.Big {
			t.Errorf("%s on %v cluster; GTS should favor big for busy tasks",
				a.Name, sc.Platform.KindOf(a.Core))
		}
	}
}

func TestGTSSpreadsLoad(t *testing.T) {
	sc := sim.DefaultConfig(true, 25)
	e := sim.New(sc)
	addApps(e, []string{"adi", "seidel-2d", "syr2k", "heat-3d",
		"fdtd-2d", "gramschmidt"}, 0.2)
	mgr := NewGTS(Ondemand{})
	e.Run(mgr, 10)
	occ := map[platform.CoreID]int{}
	for _, a := range e.Env().Apps() {
		occ[a.Core]++
	}
	for c, n := range occ {
		if n > 1 {
			t.Errorf("core %d hosts %d apps despite free cores", c, n)
		}
	}
}

func TestOndemandRunsHot(t *testing.T) {
	// GTS/ondemand pushes the big cluster to the top VF level whenever
	// applications run — the paper's Fig. 10 observation.
	sc := sim.DefaultConfig(true, 25)
	e := sim.New(sc)
	addApps(e, []string{"adi", "syr2k"}, 0.3)
	mgr := NewGTS(Ondemand{UpThreshold: 0.8})
	e.Run(mgr, 10)
	if got := e.Env().ClusterFreqIndex(1); got != 8 {
		t.Errorf("big cluster at level %d under load, want 8", got)
	}
}

func TestPowersaveColdButViolating(t *testing.T) {
	run := func(policy FreqPolicy) *sim.Result {
		sc := sim.DefaultConfig(true, 25)
		e := sim.New(sc)
		addApps(e, []string{"adi", "syr2k", "gramschmidt"}, 0.4)
		return e.Run(NewGTS(policy), 60)
	}
	ond := run(Ondemand{UpThreshold: 0.8})
	psv := run(Powersave{})
	if psv.AvgTemp >= ond.AvgTemp {
		t.Errorf("powersave avg %0.1f not cooler than ondemand %0.1f",
			psv.AvgTemp, ond.AvgTemp)
	}
	if psv.Violations <= ond.Violations {
		t.Errorf("powersave violations %d <= ondemand %d; compute-bound apps must suffer",
			psv.Violations, ond.Violations)
	}
	if ond.Violations > 0 {
		t.Errorf("ondemand violated %d QoS targets at moderate load", ond.Violations)
	}
}

func TestGTSIdleClustersAtMinFreq(t *testing.T) {
	sc := sim.DefaultConfig(true, 25)
	e := sim.New(sc)
	mgr := NewGTS(Ondemand{})
	e.Run(mgr, 2)
	if e.Env().ClusterFreqIndex(0) != 0 || e.Env().ClusterFreqIndex(1) != 0 {
		t.Errorf("idle clusters at levels %d/%d, want 0/0",
			e.Env().ClusterFreqIndex(0), e.Env().ClusterFreqIndex(1))
	}
}

func TestNewGTSPanicsOnNilPolicy(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewGTS(nil)
}

func TestGTSNames(t *testing.T) {
	if got := NewGTS(Ondemand{}).Name(); got != "GTS/ondemand" {
		t.Errorf("name = %q", got)
	}
	if got := NewGTS(Powersave{}).Name(); got != "GTS/powersave" {
		t.Errorf("name = %q", got)
	}
}

func TestGTSUpMigratesToIdleBigCore(t *testing.T) {
	// An app placed on a LITTLE core must be pulled up to an idle big
	// core by the rebalancer.
	sc := sim.DefaultConfig(true, 25)
	e := sim.New(sc)
	spec, _ := workload.ByName("adi")
	spec.TotalInstr = 1e18
	e.AddJob(workload.Job{Spec: spec, QoS: 1e8})
	mgr := &littleThenGTS{gts: NewGTS(Ondemand{})}
	e.Run(mgr, 2)
	apps := e.Env().Apps()
	if len(apps) != 1 {
		t.Fatal("app missing")
	}
	if sc.Platform.KindOf(apps[0].Core) != platform.Big {
		t.Errorf("app still on %v after rebalancing", sc.Platform.KindOf(apps[0].Core))
	}
}

// littleThenGTS forces initial placement onto LITTLE, then delegates to GTS.
type littleThenGTS struct {
	gts *GTS
}

func (m *littleThenGTS) Name() string        { return "little-then-gts" }
func (m *littleThenGTS) Attach(env *sim.Env) { m.gts.Attach(env) }
func (m *littleThenGTS) Tick(now float64)    { m.gts.Tick(now) }
func (m *littleThenGTS) Place(j workload.Job) platform.CoreID {
	return 2 // LITTLE core
}

func TestGTSBalancesOverload(t *testing.T) {
	// Ten apps on eight cores: max-min occupancy must settle within 1.
	sc := sim.DefaultConfig(true, 25)
	e := sim.New(sc)
	names := append(workload.TrainingSet(), "canneal", "dedup", "ferret")
	for _, n := range names[:10] {
		spec, _ := workload.ByName(n)
		spec.TotalInstr = 1e18
		e.AddJob(workload.Job{Spec: spec, QoS: 1e8})
	}
	e.Run(NewGTS(Ondemand{}), 5)
	occ := make(map[platform.CoreID]int)
	for _, a := range e.Env().Apps() {
		occ[a.Core]++
	}
	min, max := 99, 0
	for c := platform.CoreID(0); c < 8; c++ {
		n := occ[c]
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max-min > 1 {
		t.Errorf("imbalance %d-%d after rebalancing", min, max)
	}
}

func TestSchedutilLevels(t *testing.T) {
	s := Schedutil{}
	if got := s.Level(1.0, 9); got != 8 {
		t.Errorf("full util: %d, want 8", got)
	}
	if got := s.Level(0.9, 9); got != 8 {
		t.Errorf("0.9 util (×1.25 > 1): %d, want 8", got)
	}
	if got := s.Level(0, 9); got != 0 {
		t.Errorf("idle: %d, want 0", got)
	}
	mid := s.Level(0.4, 9) // 1.25·0.4 = 0.5 → idx 4
	if mid != 4 {
		t.Errorf("0.4 util: %d, want 4", mid)
	}
	// Monotone in utilization.
	prev := -1
	for u := 0.0; u <= 1.0; u += 0.05 {
		l := s.Level(u, 9)
		if l < prev {
			t.Fatalf("schedutil not monotone at util %.2f", u)
		}
		prev = l
	}
}

func TestGTSSchedutilRuns(t *testing.T) {
	sc := sim.DefaultConfig(true, 25)
	e := sim.New(sc)
	addApps(e, []string{"adi", "syr2k"}, 0.3)
	res := e.Run(NewGTS(Schedutil{}), 30)
	if res.Violations > 0 {
		t.Errorf("schedutil violated %d targets at moderate load", res.Violations)
	}
}
