// Package governor implements the state-of-the-practice Linux/Android
// baselines of the paper: the GTS (global task scheduling) scheduler for
// big.LITTLE, paired with the ondemand or powersave cpufreq governors.
//
// These policies are QoS-oblivious and application-characteristic-oblivious
// by design — that is precisely the gap the paper's TOP-IL fills — but they
// are implemented faithfully: GTS migrates compute-hungry applications to
// the big cluster and load-balances, ondemand scales frequency with
// utilization, powersave pins the lowest VF level.
package governor

import (
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/workload"
)

// FreqPolicy selects a VF level for one cluster from its utilization — the
// cpufreq governor abstraction.
type FreqPolicy interface {
	Name() string
	// Level returns the desired VF level index given the cluster's
	// maximum per-core utilization in [0,1] and its ladder size.
	Level(util float64, numOPPs int) int
}

// Ondemand scales the VF level with utilization: above UpThreshold it jumps
// to the maximum (the classic ondemand behaviour), below it the frequency
// is proportional to load.
type Ondemand struct {
	// UpThreshold is the utilization above which the maximum level is
	// selected (Linux default 95 %, vendor configs commonly 80 %).
	UpThreshold float64
}

// Name implements FreqPolicy.
func (o Ondemand) Name() string { return "ondemand" }

// Level implements FreqPolicy.
func (o Ondemand) Level(util float64, numOPPs int) int {
	up := o.UpThreshold
	if up <= 0 {
		up = 0.8
	}
	if util >= up {
		return numOPPs - 1
	}
	idx := int(util / up * float64(numOPPs-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= numOPPs {
		idx = numOPPs - 1
	}
	return idx
}

// Powersave always selects the lowest VF level, regardless of performance.
type Powersave struct{}

// Name implements FreqPolicy.
func (Powersave) Name() string { return "powersave" }

// Level implements FreqPolicy.
func (Powersave) Level(util float64, numOPPs int) int { return 0 }

// Schedutil scales frequency proportionally to utilization with the
// kernel's 25 % headroom (f = 1.25 · util · f_max), the successor of
// ondemand in mainline Linux. Not part of the paper's comparison; included
// for baseline breadth.
type Schedutil struct{}

// Name implements FreqPolicy.
func (Schedutil) Name() string { return "schedutil" }

// Level implements FreqPolicy.
func (Schedutil) Level(util float64, numOPPs int) int {
	target := 1.25 * util
	if target >= 1 {
		return numOPPs - 1
	}
	idx := int(target * float64(numOPPs))
	if idx >= numOPPs {
		idx = numOPPs - 1
	}
	return idx
}

// Performance always selects the highest VF level (included for
// completeness; not part of the paper's comparison).
type Performance struct{}

// Name implements FreqPolicy.
func (Performance) Name() string { return "performance" }

// Level implements FreqPolicy.
func (Performance) Level(util float64, numOPPs int) int { return numOPPs - 1 }

// GTS is the scheduler+governor manager. It implements sim.Manager and
// sim.Placer.
type GTS struct {
	policy FreqPolicy
	env    *sim.Env

	// RebalancePeriod is the scheduler's load-balancing interval.
	RebalancePeriod float64
	nextRebalance   float64
}

// NewGTS pairs the GTS scheduler with a frequency policy. It panics on a
// nil policy: a governor without a frequency law is a programming error.
func NewGTS(policy FreqPolicy) *GTS {
	if policy == nil {
		panic("governor: nil frequency policy")
	}
	return &GTS{policy: policy, RebalancePeriod: 0.1}
}

// Name implements sim.Manager.
func (g *GTS) Name() string { return "GTS/" + g.policy.Name() }

// Attach implements sim.Manager.
func (g *GTS) Attach(env *sim.Env) {
	g.env = env
	g.nextRebalance = 0
}

// Place implements sim.Placer: GTS classifies our always-runnable
// benchmark processes as performance-hungry and wakes them on the big
// cluster when it has an idle core, else on the least-loaded core.
func (g *GTS) Place(job workload.Job) platform.CoreID {
	return g.pickCore(-1)
}

// pickCore returns the GTS target core for a (re)placement, ignoring the
// occupancy contribution of `self` (an AppID, or -1 for new arrivals):
// the least-occupied big core if it beats everything, else the globally
// least-occupied core, big cluster first on ties.
func (g *GTS) pickCore(self sim.AppID) platform.CoreID {
	plat := g.env.Platform()
	best := platform.CoreID(-1)
	bestN := 1 << 30
	bestBig := false
	for c := 0; c < plat.NumCores(); c++ {
		core := platform.CoreID(c)
		n := 0
		for _, id := range g.env.AppsOnCore(core) {
			if id != self {
				n++
			}
		}
		isBig := plat.KindOf(core) == platform.Big
		if n < bestN || (n == bestN && isBig && !bestBig) {
			best, bestN, bestBig = core, n, isBig
		}
	}
	return best
}

// Tick implements sim.Manager: apply the frequency policy each tick and
// rebalance the task placement at the scheduler period.
func (g *GTS) Tick(now float64) {
	plat := g.env.Platform()
	for ci, cl := range plat.Clusters {
		util := 0.0
		for _, c := range cl.Cores {
			if u := g.env.CoreUtil(c); u > util {
				util = u
			}
		}
		g.env.SetClusterFreqIndex(ci, g.policy.Level(util, cl.NumOPPs()))
	}
	if now >= g.nextRebalance-1e-9 {
		g.nextRebalance = now + g.RebalancePeriod
		g.rebalance()
	}
}

// rebalance performs GTS-style load balancing: up-migrate a busy task to an
// idle big core, and even out queue lengths (move from the most crowded
// core to the least crowded when the imbalance exceeds one task).
func (g *GTS) rebalance() {
	plat := g.env.Platform()
	apps := g.env.Apps()
	if len(apps) == 0 {
		return
	}
	occ := make([]int, plat.NumCores())
	for _, a := range apps {
		occ[a.Core]++
	}

	// Up-migration: fill idle big cores from LITTLE cores.
	bigCl, _ := plat.ClusterByKind(platform.Big)
	for _, bc := range bigCl.Cores {
		if occ[bc] != 0 {
			continue
		}
		// Busiest LITTLE core with at least one task.
		var victim *sim.AppView
		victimOcc := 0
		for i := range apps {
			a := &apps[i]
			if plat.KindOf(a.Core) != platform.Little {
				continue
			}
			if occ[a.Core] > victimOcc {
				victim, victimOcc = a, occ[a.Core]
			}
		}
		if victim == nil {
			break
		}
		if g.env.Migrate(victim.ID, bc) == nil {
			occ[victim.Core]--
			occ[bc]++
			victim.Core = bc
		}
	}

	// Queue-length balancing across all cores.
	for iter := 0; iter < len(apps); iter++ {
		maxC, minC := 0, 0
		for c := 1; c < len(occ); c++ {
			if occ[c] > occ[maxC] {
				maxC = c
			}
			if occ[c] < occ[minC] {
				minC = c
			}
		}
		if occ[maxC]-occ[minC] <= 1 {
			break
		}
		for i := range apps {
			a := &apps[i]
			if int(a.Core) == maxC {
				if g.env.Migrate(a.ID, platform.CoreID(minC)) == nil {
					occ[maxC]--
					occ[minC]++
					a.Core = platform.CoreID(minC)
				}
				break
			}
		}
	}
}
