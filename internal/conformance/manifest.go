package conformance

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/workload"
)

// ManifestVersion is the schema version this build reads. Packages carry
// the version explicitly so a future format change fails loudly instead of
// silently misreading old packages.
const ManifestVersion = 1

// Manifest is the versioned root of a conformance package: a named set of
// scenarios, each pairing techniques × backends with golden metric
// envelopes, plus the /v1 API checks the package requests.
type Manifest struct {
	SchemaVersion int    `json:"schemaVersion"`
	Name          string `json:"name"`
	Description   string `json:"description,omitempty"`

	// Scenarios are run independently; each is one simulated workload.
	Scenarios []Scenario `json:"scenarios"`

	// APIChecks names live /v1 wire-contract checks to run against a
	// serve instance (see APICheckNames). Empty means none: offline-only
	// packages stay runnable without a server.
	APIChecks []string `json:"apiChecks,omitempty"`
}

// Scenario describes one simulated workload cell matrix: every listed
// technique runs on every applicable backend under identical platform,
// cooling, seed and arrival settings.
type Scenario struct {
	Name string `json:"name"`

	// Fan selects active cooling (default true, the paper's training
	// setup; false exposes DTM throttling).
	Fan *bool `json:"fan,omitempty"`
	// AmbientC is the ambient temperature in °C (default 25).
	AmbientC float64 `json:"ambientC,omitempty"`
	// ThermalKernel selects the integration kernel: "" or "propagator"
	// (the default precomputed kernel), "float32" (the reduced-precision
	// variant), or "reference" (the naive Euler stepper).
	ThermalKernel string `json:"thermalKernel,omitempty"`

	// Seed drives workload generation and simulator noise (default 1).
	Seed int64 `json:"seed,omitempty"`
	// DurationSec is the simulated-time cap in seconds (required).
	DurationSec float64 `json:"durationSec"`

	// Jobs is an explicit arrival manifest (same schema as saved job
	// lists and POST /v1/sim). When empty, NumJobs/Rate/InstrScale drive
	// the generator over the mixed pool.
	Jobs []workload.JobEntry `json:"jobs,omitempty"`
	// NumJobs is the number of generated applications (default 8).
	NumJobs int `json:"numJobs,omitempty"`
	// Rate is the Poisson arrival rate in jobs per second (default 0.1).
	Rate float64 `json:"rate,omitempty"`
	// InstrScale scales application lengths (default 0.1).
	InstrScale float64 `json:"instrScale,omitempty"`

	// Techniques lists the policies to run (see TechniqueNames).
	Techniques []string `json:"techniques"`
	// Backends lists the inference backends for techniques that infer
	// (TOP-IL): "npu", "cpu", "fp16". Default ["npu"]. Techniques
	// without an inference step run once with backend "-".
	Backends []string `json:"backends,omitempty"`

	// Envelopes are the golden metric bands checked after the runs.
	Envelopes []Envelope `json:"envelopes"`
}

// Envelope pins one metric of one technique (× backend) inside an explicit
// tolerance band. Boundary documents the band's applicability — the
// workload, seed and settings it was measured under — so a failure outside
// that boundary reads as "re-measure", not "regression".
type Envelope struct {
	// Metric names the pinned quantity (see MetricNames).
	Metric string `json:"metric"`
	// Technique must be listed in the scenario's Techniques.
	Technique string `json:"technique"`
	// Backend is a backend name or "*" (default) for every backend the
	// technique runs on.
	Backend string `json:"backend,omitempty"`
	// Min and Max bound the accepted value, inclusive on both ends.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Boundary is the mandatory applicability note.
	Boundary string `json:"boundary"`
}

// Package is one loaded conformance package.
type Package struct {
	// Dir is the package directory (holding manifest.json).
	Dir      string
	Manifest Manifest
}

// File returns the package's manifest path.
func (p *Package) File() string { return filepath.Join(p.Dir, "manifest.json") }

// TechniqueNames lists the policies a scenario may run.
func TechniqueNames() []string {
	return []string{"TOP-IL", "TOP-RL", "GTS/ondemand", "GTS/powersave", "GTS/performance"}
}

// BackendNames lists the inference backends a scenario may select: the
// modelled NPU, the CPU fallback (the paper's no-accelerator ablation),
// and the fp16-quantized model on the NPU.
func BackendNames() []string { return []string{"npu", "cpu", "fp16"} }

// MetricNames lists the envelope metrics, sorted.
func MetricNames() []string {
	names := make([]string, 0, len(metricDoc))
	for n := range metricDoc {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// metricDoc maps each envelope metric to its unit and meaning.
var metricDoc = map[string]string{
	"peakTempC":     "peak sensor temperature over the run, °C",
	"avgTempC":      "time-averaged sensor temperature, °C",
	"qosViolations": "applications finishing below their QoS target",
	"energyJ":       "total energy over the run, J",
	"migrations":    "application migrations",
	"throttleSec":   "seconds with DTM throttling active",
}

// kernelNames are the accepted thermalKernel spellings.
var kernelNames = map[string]bool{
	"": true, "propagator": true, "float32": true, "reference": true,
}

// fan reports the scenario's cooling setting with its default applied.
func (s *Scenario) fan() bool { return s.Fan == nil || *s.Fan }

// withDefaults fills unset scenario fields (mirroring POST /v1/sim).
func (s Scenario) withDefaults() Scenario {
	if s.AmbientC == 0 {
		s.AmbientC = 25
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.NumJobs == 0 {
		s.NumJobs = 8
	}
	if s.Rate == 0 {
		s.Rate = 0.1
	}
	if s.InstrScale == 0 {
		s.InstrScale = 0.1
	}
	if len(s.Backends) == 0 {
		s.Backends = []string{"npu"}
	}
	return s
}

// Diag is one manifest diagnostic, anchored at a file position.
type Diag struct {
	File string
	Line int // 1-based; 0 when no position is known
	Path string
	Msg  string
}

func (d Diag) Error() string {
	pos := d.File
	if d.Line > 0 {
		pos = fmt.Sprintf("%s:%d", d.File, d.Line)
	}
	if d.Path != "" {
		return fmt.Sprintf("%s: %s: %s", pos, d.Path, d.Msg)
	}
	return fmt.Sprintf("%s: %s", pos, d.Msg)
}

// diagList joins diagnostics into one error, one per line.
type diagList []Diag

func (ds diagList) Error() string {
	lines := make([]string, len(ds))
	for i, d := range ds {
		lines[i] = d.Error()
	}
	return strings.Join(lines, "\n")
}

// LoadPackage reads and validates one package directory. Every problem is
// reported as a file:line diagnostic; a bad package never panics.
func LoadPackage(dir string) (*Package, error) {
	file := filepath.Join(dir, "manifest.json")
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, fmt.Errorf("conformance: %w", err)
	}
	m, diags := ParseManifest(file, data)
	if len(diags) > 0 {
		return nil, diagList(diags)
	}
	if base := filepath.Base(dir); m.Name != base {
		return nil, diagList{{File: file, Line: 1,
			Msg: fmt.Sprintf("package name %q does not match directory %q", m.Name, base)}}
	}
	return &Package{Dir: dir, Manifest: *m}, nil
}

// LoadDir loads every package under root (any directory containing a
// manifest.json), sorted by name. Diagnostics from all bad packages are
// aggregated so one broken package does not mask another.
func LoadDir(root string) ([]*Package, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("conformance: %w", err)
	}
	var pkgs []*Package
	var diags diagList
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
			continue
		}
		p, err := LoadPackage(dir)
		if err != nil {
			if ds, ok := err.(diagList); ok {
				diags = append(diags, ds...)
				continue
			}
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	if len(diags) > 0 {
		return nil, diags
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("conformance: no packages under %s", root)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Manifest.Name < pkgs[j].Manifest.Name })
	return pkgs, nil
}

// ParseManifest decodes and validates manifest bytes, returning every
// diagnostic found. The file name only labels diagnostics; no I/O happens
// here (the fuzz target drives this function directly).
func ParseManifest(file string, data []byte) (*Manifest, []Diag) {
	lines := newLineIndex(data)
	var m Manifest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, []Diag{{File: file, Line: lines.lineOf(decodeErrOffset(err, data)),
			Msg: "manifest: " + err.Error()}}
	}
	// A second document after the manifest object means a torn or
	// concatenated file; reject rather than silently ignoring the tail.
	if dec.More() {
		return nil, []Diag{{File: file, Line: lines.lineOf(dec.InputOffset()),
			Msg: "manifest: trailing data after the manifest object"}}
	}
	offsets := manifestOffsets(data)
	diags := validateManifest(file, &m, offsets, lines)
	if len(diags) > 0 {
		return nil, diags
	}
	return &m, nil
}

// validateManifest applies the semantic rules, anchoring each diagnostic at
// the offending scenario or envelope.
func validateManifest(file string, m *Manifest, offsets map[string]int64, lines lineIndex) []Diag {
	var diags []Diag
	add := func(path, format string, args ...interface{}) {
		line := 1
		if off, ok := offsets[path]; ok {
			line = lines.lineOf(off)
		}
		diags = append(diags, Diag{File: file, Line: line, Path: path,
			Msg: fmt.Sprintf(format, args...)})
	}

	if m.SchemaVersion != ManifestVersion {
		add("", "unknown schema version %d (this build reads version %d)",
			m.SchemaVersion, ManifestVersion)
	}
	if !validName(m.Name) {
		add("", "package name %q must be non-empty lowercase [a-z0-9-]", m.Name)
	}
	if len(m.Scenarios) == 0 {
		add("", "package has no scenarios")
	}
	for _, c := range m.APIChecks {
		if !apiCheckKnown(c) {
			add("", "unknown API check %q (have %s)", c, strings.Join(APICheckNames(), ", "))
		}
	}

	techniques := toSet(TechniqueNames())
	backends := toSet(BackendNames())
	seen := map[string]bool{}
	for si := range m.Scenarios {
		sc := &m.Scenarios[si]
		path := fmt.Sprintf("scenarios[%d]", si)
		if !validName(sc.Name) {
			add(path, "scenario name %q must be non-empty lowercase [a-z0-9-]", sc.Name)
		} else if seen[sc.Name] {
			add(path, "duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if sc.DurationSec <= 0 || sc.DurationSec > 24*3600 {
			add(path, "durationSec %g out of range (0, 86400]", sc.DurationSec)
		}
		if !kernelNames[sc.ThermalKernel] {
			add(path, "unknown thermalKernel %q (\"\", propagator, float32, reference)", sc.ThermalKernel)
		}
		if sc.AmbientC < -50 || sc.AmbientC > 100 {
			add(path, "ambientC %g implausible", sc.AmbientC)
		}
		if len(sc.Jobs) == 0 {
			if sc.NumJobs < 0 || sc.NumJobs > 1024 {
				add(path, "numJobs %d out of range [0, 1024]", sc.NumJobs)
			}
			if sc.Rate < 0 || sc.InstrScale < 0 {
				add(path, "negative rate or instrScale")
			}
		} else if _, err := workload.EntriesToJobs(sc.Jobs); err != nil {
			add(path, "jobs manifest: %v", err)
		}
		if len(sc.Techniques) == 0 {
			add(path, "scenario lists no techniques")
		}
		scTechniques := map[string]bool{}
		for _, tech := range sc.Techniques {
			if !techniques[tech] {
				add(path, "unknown technique %q (have %s)", tech, strings.Join(TechniqueNames(), ", "))
			}
			if scTechniques[tech] {
				add(path, "duplicate technique %q", tech)
			}
			scTechniques[tech] = true
		}
		scBackends := map[string]bool{"*": true, "-": true}
		for _, b := range sc.Backends {
			if !backends[b] {
				add(path, "unknown backend %q (have %s)", b, strings.Join(BackendNames(), ", "))
			}
			scBackends[b] = true
		}
		if len(sc.Backends) == 0 {
			scBackends["npu"] = true // the default backend is addressable
		}
		for ei := range sc.Envelopes {
			env := &sc.Envelopes[ei]
			epath := fmt.Sprintf("%s.envelopes[%d]", path, ei)
			if _, ok := metricDoc[env.Metric]; !ok {
				add(epath, "unknown metric %q (have %s)", env.Metric, strings.Join(MetricNames(), ", "))
			}
			if !scTechniques[env.Technique] {
				add(epath, "envelope technique %q is not run by scenario %q", env.Technique, sc.Name)
			}
			if env.Backend != "" && !scBackends[env.Backend] {
				add(epath, "envelope backend %q is not run by scenario %q", env.Backend, sc.Name)
			}
			if math.IsNaN(env.Min) || math.IsNaN(env.Max) ||
				math.IsInf(env.Min, 0) || math.IsInf(env.Max, 0) {
				add(epath, "tolerance band [%g, %g] must be finite", env.Min, env.Max)
			} else if env.Min > env.Max {
				add(epath, "tolerance band [%g, %g] is empty (min > max)", env.Min, env.Max)
			}
			if strings.TrimSpace(env.Boundary) == "" {
				add(epath, "envelope has no applicability boundary note")
			}
		}
	}
	return diags
}

// validName accepts the lowercase-kebab identifiers used for package and
// scenario names.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '-' && r != '.' {
			return false
		}
	}
	return true
}

func toSet(names []string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

// --- file positions ---

// lineIndex maps byte offsets to 1-based line numbers.
type lineIndex []int64 // starting offset of each line

func newLineIndex(data []byte) lineIndex {
	idx := lineIndex{0}
	for i, b := range data {
		if b == '\n' {
			idx = append(idx, int64(i)+1)
		}
	}
	return idx
}

func (ix lineIndex) lineOf(offset int64) int {
	if offset < 0 {
		return 1
	}
	n := sort.Search(len(ix), func(i int) bool { return ix[i] > offset })
	return n // lines are 1-based; n is the count of starts <= offset
}

// decodeErrOffset extracts the byte offset of a JSON decode error, or -1.
func decodeErrOffset(err error, data []byte) int64 {
	switch e := err.(type) {
	case *json.SyntaxError:
		return e.Offset - 1
	case *json.UnmarshalTypeError:
		return e.Offset - 1
	}
	return -1
}

// manifestOffsets walks the raw token stream recording the byte offset of
// every array element under "scenarios" and "envelopes", keyed by the same
// paths validateManifest uses ("scenarios[0]", "scenarios[0].envelopes[2]").
// Best-effort: on any token error the partial map is returned and
// diagnostics fall back to line 1.
func manifestOffsets(data []byte) map[string]int64 {
	out := map[string]int64{}
	dec := json.NewDecoder(bytes.NewReader(data))
	type frame struct {
		isObject bool
		key      string // key owning the container (for arrays/objects)
		index    int    // next element index in an array
		path     string // path prefix of elements inside this container
	}
	var stack []frame
	var pendingKey string
	for {
		tok, err := dec.Token()
		if err != nil {
			return out
		}
		// For a delimiter, InputOffset now sits just past it; the token
		// itself starts one byte earlier.
		off := dec.InputOffset() - 1
		top := func() *frame {
			if len(stack) == 0 {
				return nil
			}
			return &stack[len(stack)-1]
		}
		switch t := tok.(type) {
		case json.Delim:
			switch t {
			case '{', '[':
				parent := top()
				path := ""
				if parent != nil {
					if parent.isObject {
						switch {
						case len(stack) == 1 && pendingKey == "scenarios":
							path = "scenarios"
						case strings.HasPrefix(parent.path, "scenarios[") &&
							!strings.Contains(parent.path, "envelopes") && pendingKey == "envelopes":
							path = parent.path + ".envelopes"
						}
					} else {
						elem := fmt.Sprintf("%s[%d]", parent.path, parent.index)
						parent.index++
						if parent.path != "" {
							out[elem] = off
						}
						path = elem
					}
				}
				stack = append(stack, frame{isObject: t == '{', key: pendingKey, path: path})
				pendingKey = ""
			case '}', ']':
				stack = stack[:len(stack)-1]
			}
		case string:
			if f := top(); f != nil && f.isObject && pendingKey == "" {
				pendingKey = t
				continue
			}
			// A string value (or array element): consume the pending key.
			if f := top(); f != nil && !f.isObject {
				f.index++
			}
			pendingKey = ""
		default:
			if f := top(); f != nil && !f.isObject {
				f.index++
			}
			pendingKey = ""
		}
	}
}
