package conformance

import (
	"embed"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// schemaFS embeds the /v1 wire-contract schemas. One file per response
// shape; the "error" schema covers every error body (404 zero-model, 429
// backpressure, 502 per-row fault) — the status code and headers are
// asserted by the checker, not the schema.
//
//go:embed schemas/*.json
var schemaFS embed.FS

var (
	schemaMu   sync.Mutex
	schemaOnce map[string]*Schema
)

// SchemaNames lists the embedded wire-contract schemas, sorted. It panics
// if the embedded schema directory is unreadable, which go:embed makes
// impossible in a well-formed build.
func SchemaNames() []string {
	entries, err := schemaFS.ReadDir("schemas")
	if err != nil { // embed is compile-time; unreachable
		panic(fmt.Sprintf("conformance: embedded schemas: %v", err))
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(names)
	return names
}

// SchemaFor returns the compiled wire-contract schema with the given name
// (e.g. "healthz", "infer", "job", "jobs", "models", "stats", "cluster",
// "error"). Compilation is cached; unknown names error.
func SchemaFor(name string) (*Schema, error) {
	schemaMu.Lock()
	defer schemaMu.Unlock()
	if schemaOnce == nil {
		schemaOnce = make(map[string]*Schema)
	}
	if s, ok := schemaOnce[name]; ok {
		return s, nil
	}
	data, err := schemaFS.ReadFile("schemas/" + name + ".json")
	if err != nil {
		return nil, fmt.Errorf("conformance: no wire schema %q (have %s)",
			name, strings.Join(SchemaNames(), ", "))
	}
	s, err := CompileSchema(data)
	if err != nil {
		return nil, fmt.Errorf("conformance: schema %q: %w", name, err)
	}
	schemaOnce[name] = s
	return s, nil
}

// MustSchema is SchemaFor for the embedded set, panicking on unknown names.
// The embedded schemas are compiled (and therefore verified) by the package
// tests, so a panic here marks a programming error, not an input error.
func MustSchema(name string) *Schema {
	s, err := SchemaFor(name)
	if err != nil {
		panic(err)
	}
	return s
}
