package conformance

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/serve"
)

// bootAPIServer runs a real serve instance with one saved model and a
// deliberately tiny job queue, so the backpressure check sheds after a
// handful of heavy submissions.
func bootAPIServer(t *testing.T) APIConfig {
	t.Helper()
	dir := t.TempDir()
	m := nn.NewMLP([]int{defaultInputDim(), 16, 8}, 1)
	if err := core.SaveModel(m, filepath.Join(dir, "model-1.json")); err != nil {
		t.Fatal(err)
	}
	s := serve.NewServer(serve.Config{ModelsDir: dir, Workers: 1, QueueCap: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})
	return APIConfig{
		BaseURL:   ts.URL,
		Model:     "model-1",
		InputDim:  m.InputDim(),
		Dedicated: true,
	}
}

func resultMap(t *testing.T, results []APIResult) map[string]APIResult {
	t.Helper()
	out := make(map[string]APIResult, len(results))
	for _, r := range results {
		if _, dup := out[r.Check]; dup {
			t.Fatalf("duplicate result for check %q", r.Check)
		}
		out[r.Check] = r
	}
	return out
}

// TestRunAPIChecksAll drives every wire-contract check against a live
// instance; each must pass (none skipped on a dedicated server with a
// model).
func TestRunAPIChecksAll(t *testing.T) {
	cfg := bootAPIServer(t)
	results := RunAPIChecks(context.Background(), cfg, nil)
	if len(results) != len(APICheckNames()) {
		t.Fatalf("got %d results, want %d", len(results), len(APICheckNames()))
	}
	for i, r := range results {
		if r.Check != APICheckNames()[i] {
			t.Errorf("result %d is %q, want %q (table order)", i, r.Check, APICheckNames()[i])
		}
		if !r.OK || r.Skipped {
			t.Errorf("check %s: ok=%v skipped=%v detail=%s", r.Check, r.OK, r.Skipped, r.Detail)
		}
	}
}

// TestRunAPIChecksSubset runs a named subset; unrequested checks must not
// appear, and order stays the table's regardless of the input order.
func TestRunAPIChecksSubset(t *testing.T) {
	cfg := bootAPIServer(t)
	results := RunAPIChecks(context.Background(), cfg, []string{"models", "healthz"})
	if len(results) != 2 || results[0].Check != "healthz" || results[1].Check != "models" {
		t.Fatalf("subset results = %+v", results)
	}
	for _, r := range results {
		if !r.OK {
			t.Errorf("check %s failed: %s", r.Check, r.Detail)
		}
	}
}

// TestRunAPIChecksBoundaries pins the applicability boundaries: no model
// skips the inference check, a shared (non-dedicated) instance skips the
// destructive backpressure flood.
func TestRunAPIChecksBoundaries(t *testing.T) {
	cfg := bootAPIServer(t)
	cfg.Dedicated = false
	m := resultMap(t, RunAPIChecks(context.Background(), cfg, []string{"backpressure"}))
	if r := m["backpressure"]; !r.Skipped || !r.OK {
		t.Errorf("backpressure on shared instance = %+v, want skipped", r)
	}

	cfg2 := bootAPIServer(t)
	cfg2.Model = ""
	m = resultMap(t, RunAPIChecks(context.Background(), cfg2, []string{"infer"}))
	if r := m["infer"]; !r.Skipped || !r.OK {
		t.Errorf("infer without a model = %+v, want skipped", r)
	}
}

// TestRunAPIChecksSchemaViolation points the checks at a server whose
// responses are valid JSON but violate the wire schemas: every check must
// fail (not panic, not pass).
func TestRunAPIChecksSchemaViolation(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"unexpected": true}`))
	}))
	t.Cleanup(bad.Close)
	cfg := APIConfig{BaseURL: bad.URL, Model: "model-1", Dedicated: true}
	for _, r := range RunAPIChecks(context.Background(), cfg, nil) {
		if r.OK && !r.Skipped {
			t.Errorf("check %s passed against a schema-violating server: %s", r.Check, r.Detail)
		}
	}
}

// TestRunAPIChecksDown points the checks at a closed port: every check
// fails with a transport error.
func TestRunAPIChecksDown(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	cfg := APIConfig{BaseURL: dead.URL, Model: "model-1", Dedicated: true}
	for _, r := range RunAPIChecks(context.Background(), cfg, []string{"healthz", "stats"}) {
		if r.OK {
			t.Errorf("check %s passed against a dead server", r.Check)
		}
		if r.Detail == "" {
			t.Errorf("check %s carries no failure detail", r.Check)
		}
	}
}

// TestRunUnknownCheckName: unknown names are rejected at manifest load; at
// the API layer they are simply ignored, never invented.
func TestRunUnknownCheckName(t *testing.T) {
	cfg := bootAPIServer(t)
	results := RunAPIChecks(context.Background(), cfg, []string{"healthz", "no-such-check"})
	if len(results) != 1 || results[0].Check != "healthz" {
		t.Fatalf("results = %+v, want healthz only", results)
	}
	if apiCheckKnown("no-such-check") {
		t.Error("apiCheckKnown accepted an unknown name")
	}
}
