package conformance

import (
	"encoding/json"
	"testing"
	"unicode/utf8"
)

// FuzzPackageManifest drives the manifest parser with arbitrary bytes. The
// invariants: ParseManifest never panics, a manifest it accepts survives a
// re-marshal round trip and stays accepted, and every diagnostic carries the
// file label with a positive line number.
func FuzzPackageManifest(f *testing.F) {
	// The valid base manifest and targeted corruptions of it: torn files,
	// an unknown schema version, out-of-range tolerance bands, duplicate
	// scenarios, junk bytes. testdata/fuzz/FuzzPackageManifest holds more.
	f.Add([]byte(goodManifest))
	f.Add([]byte(goodManifest[:len(goodManifest)/3]))
	f.Add([]byte(`{"schemaVersion": 42, "name": "x", "scenarios": []}`))
	f.Add([]byte(`{"schemaVersion": 1, "name": "b", "scenarios": [{"name": "s",
		"durationSec": 5, "techniques": ["TOP-RL"], "envelopes": [
		{"metric": "energyJ", "technique": "TOP-RL", "min": 9, "max": 1, "boundary": "b"}]}]}`))
	f.Add([]byte("{}"))
	f.Add([]byte("null"))
	f.Add([]byte("[1,2,3]"))
	f.Add([]byte("\x00\xff\xfe"))
	f.Add([]byte(goodManifest + goodManifest))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, diags := ParseManifest("fuzz.json", data)
		for _, d := range diags {
			if d.File != "fuzz.json" {
				t.Fatalf("diagnostic lost its file label: %+v", d)
			}
			if d.Line < 1 {
				t.Fatalf("diagnostic line %d < 1: %+v", d.Line, d)
			}
			if !utf8.ValidString(d.Error()) {
				t.Fatalf("diagnostic is not valid UTF-8: %q", d.Error())
			}
		}
		if m == nil {
			if len(diags) == 0 {
				t.Fatal("nil manifest with no diagnostics")
			}
			return
		}
		if len(diags) != 0 {
			t.Fatalf("manifest returned alongside diagnostics %v", diags)
		}
		// Round trip: an accepted manifest re-encodes to an accepted
		// manifest with the same identity.
		re, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		m2, diags2 := ParseManifest("fuzz.json", re)
		if len(diags2) != 0 {
			t.Fatalf("round trip rejected: %v\nre-encoded: %s", diagList(diags2), re)
		}
		if m2.Name != m.Name || len(m2.Scenarios) != len(m.Scenarios) {
			t.Fatalf("round trip changed identity: %+v vs %+v", m, m2)
		}
	})
}
