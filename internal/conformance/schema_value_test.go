package conformance

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestJSONEqual(t *testing.T) {
	mustParse := func(doc string) interface{} {
		dec := json.NewDecoder(strings.NewReader(doc))
		dec.UseNumber()
		var v interface{}
		if err := dec.Decode(&v); err != nil {
			t.Fatalf("parsing %s: %v", doc, err)
		}
		return v
	}
	cases := []struct {
		a, b string
		eq   bool
	}{
		{`1`, `1.0`, true}, // representation-independent numbers
		{`1`, `2`, false},
		{`1`, `"1"`, false},
		{`"x"`, `"x"`, true},
		{`true`, `true`, true},
		{`true`, `false`, false},
		{`null`, `null`, true},
		{`null`, `0`, false},
		{`[1, 2]`, `[1, 2.0]`, true},
		{`[1, 2]`, `[2, 1]`, false},
		{`[1]`, `[1, 1]`, false},
		{`{"a": 1, "b": [true]}`, `{"b": [true], "a": 1}`, true},
		{`{"a": 1}`, `{"a": 2}`, false},
		{`{"a": 1}`, `{"a": 1, "b": 2}`, false},
		{`{"a": 1}`, `[1]`, false},
	}
	for _, c := range cases {
		if got := jsonEqual(mustParse(c.a), mustParse(c.b)); got != c.eq {
			t.Errorf("jsonEqual(%s, %s) = %v, want %v", c.a, c.b, got, c.eq)
		}
	}
}

func TestTypeNameAndAsFloat(t *testing.T) {
	names := []struct {
		v    interface{}
		want string
	}{
		{map[string]interface{}{}, "object"},
		{[]interface{}{}, "array"},
		{"s", "string"},
		{true, "boolean"},
		{nil, "null"},
		{float64(3), "number"},
		{struct{}{}, "struct {}"}, // non-JSON value falls back to Go's %T
	}
	for _, c := range names {
		if got := typeName(c.v); got != c.want {
			t.Errorf("typeName(%#v) = %q, want %q", c.v, got, c.want)
		}
	}

	if f, ok := asFloat(3); !ok || f != 3 {
		t.Errorf("asFloat(int 3) = %v, %v", f, ok)
	}
	if _, ok := asFloat("3"); ok {
		t.Error("asFloat accepted a string")
	}
}
