package conformance

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goodManifest is a minimal valid package manifest used as the base of the
// negative-path table; each test case perturbs one aspect of it.
const goodManifest = `{
  "schemaVersion": 1,
  "name": "demo",
  "description": "negative-path base",
  "scenarios": [
    {
      "name": "quick",
      "durationSec": 10,
      "techniques": ["GTS/ondemand"],
      "envelopes": [
        {
          "metric": "peakTempC",
          "technique": "GTS/ondemand",
          "min": 20,
          "max": 120,
          "boundary": "seed 1, 8 generated jobs, fan on"
        }
      ]
    }
  ],
  "apiChecks": ["healthz"]
}`

func TestParseManifestAcceptsGood(t *testing.T) {
	m, diags := ParseManifest("manifest.json", []byte(goodManifest))
	if len(diags) > 0 {
		t.Fatalf("valid manifest rejected: %v", diagList(diags))
	}
	if m.Name != "demo" || len(m.Scenarios) != 1 {
		t.Fatalf("decoded manifest %+v", m)
	}
	sc := m.Scenarios[0].withDefaults()
	if sc.Seed != 1 || sc.NumJobs != 8 || len(sc.Backends) != 1 || sc.Backends[0] != "npu" {
		t.Fatalf("withDefaults = %+v", sc)
	}
	if !sc.fan() {
		t.Fatal("fan should default to true")
	}
}

func TestParseManifestNegativePaths(t *testing.T) {
	cases := []struct {
		name string
		doc  string // full doc, or a replacement applied to goodManifest
		old  string
		want []string // substrings of the joined diagnostics
	}{
		{
			name: "torn-file",
			doc:  goodManifest[:len(goodManifest)/2],
			want: []string{"manifest.json:", "unexpected EOF"},
		},
		{
			name: "trailing-data",
			doc:  goodManifest + "\n{\"second\": true}",
			want: []string{"trailing data after the manifest object"},
		},
		{
			name: "unknown-field",
			old:  `"description": "negative-path base",`,
			doc:  `"description": "x", "bogusField": 1,`,
			want: []string{`unknown field "bogusField"`},
		},
		{
			name: "unknown-schema-version",
			old:  `"schemaVersion": 1`,
			doc:  `"schemaVersion": 99`,
			want: []string{"unknown schema version 99", "reads version 1"},
		},
		{
			name: "bad-package-name",
			old:  `"name": "demo"`,
			doc:  `"name": "Demo Pkg"`,
			want: []string{`package name "Demo Pkg" must be non-empty lowercase`},
		},
		{
			name: "no-scenarios",
			old: `"scenarios": [
    {
      "name": "quick",
      "durationSec": 10,
      "techniques": ["GTS/ondemand"],
      "envelopes": [
        {
          "metric": "peakTempC",
          "technique": "GTS/ondemand",
          "min": 20,
          "max": 120,
          "boundary": "seed 1, 8 generated jobs, fan on"
        }
      ]
    }
  ]`,
			doc:  `"scenarios": []`,
			want: []string{"package has no scenarios"},
		},
		{
			name: "bad-duration",
			old:  `"durationSec": 10`,
			doc:  `"durationSec": -3`,
			want: []string{"scenarios[0]", "durationSec -3 out of range"},
		},
		{
			name: "bad-kernel",
			old:  `"durationSec": 10,`,
			doc:  `"durationSec": 10, "thermalKernel": "warp",`,
			want: []string{`unknown thermalKernel "warp"`},
		},
		{
			name: "bad-ambient",
			old:  `"durationSec": 10,`,
			doc:  `"durationSec": 10, "ambientC": 400,`,
			want: []string{"ambientC 400 implausible"},
		},
		{
			name: "unknown-technique",
			old:  `"techniques": ["GTS/ondemand"]`,
			doc:  `"techniques": ["GTS/ondemand", "TOP-XL"]`,
			want: []string{`unknown technique "TOP-XL"`},
		},
		{
			name: "duplicate-technique",
			old:  `"techniques": ["GTS/ondemand"]`,
			doc:  `"techniques": ["GTS/ondemand", "GTS/ondemand"]`,
			want: []string{`duplicate technique "GTS/ondemand"`},
		},
		{
			name: "unknown-backend",
			old:  `"techniques": ["GTS/ondemand"],`,
			doc:  `"techniques": ["GTS/ondemand"], "backends": ["tpu"],`,
			want: []string{`unknown backend "tpu"`},
		},
		{
			name: "bad-jobs-manifest",
			old:  `"durationSec": 10,`,
			doc:  `"durationSec": 10, "jobs": [{"name": "no-such-bench", "totalInstr": 1, "qos": 1, "arrival": 0}],`,
			want: []string{"jobs manifest:", `unknown benchmark "no-such-bench"`},
		},
		{
			name: "unknown-metric",
			old:  `"metric": "peakTempC"`,
			doc:  `"metric": "vibes"`,
			want: []string{"scenarios[0].envelopes[0]", `unknown metric "vibes"`},
		},
		{
			name: "envelope-technique-not-run",
			old: `"technique": "GTS/ondemand",
          "min"`,
			doc: `"technique": "TOP-IL",
          "min"`,
			want: []string{`envelope technique "TOP-IL" is not run by scenario "quick"`},
		},
		{
			name: "envelope-backend-not-run",
			old:  `"min": 20`,
			doc:  `"backend": "fp16", "min": 20`,
			want: []string{`envelope backend "fp16" is not run by scenario "quick"`},
		},
		{
			name: "empty-band",
			old: `"min": 20,
          "max": 120`,
			doc: `"min": 120,
          "max": 20`,
			want: []string{"tolerance band [120, 20] is empty"},
		},
		{
			name: "infinite-band",
			old: `"min": 20,
          "max": 120`,
			doc: `"min": 20,
          "max": 1e999`,
			want: []string{"manifest:"}, // decode-level: JSON numbers must be finite
		},
		{
			name: "missing-boundary",
			old:  `"boundary": "seed 1, 8 generated jobs, fan on"`,
			doc:  `"boundary": "  "`,
			want: []string{"no applicability boundary note"},
		},
		{
			name: "unknown-api-check",
			old:  `"apiChecks": ["healthz"]`,
			doc:  `"apiChecks": ["teleport"]`,
			want: []string{`unknown API check "teleport"`},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			doc := tc.doc
			if tc.old != "" {
				if !strings.Contains(goodManifest, tc.old) {
					t.Fatalf("base manifest lost the anchor %q", tc.old)
				}
				doc = strings.Replace(goodManifest, tc.old, tc.doc, 1)
			}
			m, diags := ParseManifest("manifest.json", []byte(doc))
			if len(diags) == 0 {
				t.Fatalf("accepted (%+v), want diagnostics %v", m, tc.want)
			}
			joined := diagList(diags).Error()
			for _, w := range tc.want {
				if !strings.Contains(joined, w) {
					t.Errorf("diagnostics %q\n  missing %q", joined, w)
				}
			}
		})
	}
}

// TestDiagnosticLines pins the file:line anchoring: a scenario-level problem
// must point at the scenario's opening brace, an envelope-level problem at
// the envelope's.
func TestDiagnosticLines(t *testing.T) {
	doc := "{\n" + // line 1
		`  "schemaVersion": 1,` + "\n" + // 2
		`  "name": "demo",` + "\n" + // 3
		`  "scenarios": [` + "\n" + // 4
		`    {` + "\n" + // 5 <- scenarios[0]
		`      "name": "BAD NAME",` + "\n" + // 6
		`      "durationSec": 10,` + "\n" + // 7
		`      "techniques": ["GTS/ondemand"],` + "\n" + // 8
		`      "envelopes": [` + "\n" + // 9
		`        {"metric": "peakTempC", "technique": "GTS/ondemand",` + "\n" + // 10 <- envelopes[0]
		`         "min": 20, "max": 120, "boundary": "b"},` + "\n" + // 11
		`        {"metric": "nope", "technique": "GTS/ondemand",` + "\n" + // 12 <- envelopes[1]
		`         "min": 0, "max": 1, "boundary": "b"}` + "\n" + // 13
		`      ]` + "\n" +
		`    }` + "\n" +
		`  ]` + "\n" +
		`}`
	_, diags := ParseManifest("pkg/manifest.json", []byte(doc))
	if len(diags) != 2 {
		t.Fatalf("diags = %v, want 2", diagList(diags))
	}
	wantPos := map[string]string{
		"scenarios[0]":              "pkg/manifest.json:5",
		"scenarios[0].envelopes[1]": "pkg/manifest.json:12",
	}
	for _, d := range diags {
		want, ok := wantPos[d.Path]
		if !ok {
			t.Errorf("unexpected diagnostic path %q (%s)", d.Path, d.Error())
			continue
		}
		if !strings.HasPrefix(d.Error(), want+":") {
			t.Errorf("diagnostic %q should be anchored at %s", d.Error(), want)
		}
	}
}

func TestLoadPackageAndDir(t *testing.T) {
	root := t.TempDir()
	write := func(pkg, doc string) {
		dir := filepath.Join(root, pkg)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("demo", goodManifest)

	p, err := LoadPackage(filepath.Join(root, "demo"))
	if err != nil {
		t.Fatalf("LoadPackage: %v", err)
	}
	if p.Manifest.Name != "demo" || !strings.HasSuffix(p.File(), "demo/manifest.json") {
		t.Fatalf("package = %+v, file = %s", p.Manifest, p.File())
	}

	// A directory whose name disagrees with the manifest is rejected:
	// package identity must be stable under both spellings.
	write("renamed", goodManifest)
	if _, err := LoadPackage(filepath.Join(root, "renamed")); err == nil ||
		!strings.Contains(err.Error(), `does not match directory "renamed"`) {
		t.Fatalf("renamed package: err = %v", err)
	}
	if err := os.RemoveAll(filepath.Join(root, "renamed")); err != nil {
		t.Fatal(err)
	}

	// LoadDir aggregates diagnostics across broken packages instead of
	// stopping at the first.
	write("broken-a", strings.Replace(goodManifest, `"name": "demo"`, `"name": "broken-a", "schemaVersion": 2`, 1))
	write("broken-b", "{")
	_, err = LoadDir(root)
	if err == nil {
		t.Fatal("LoadDir accepted broken packages")
	}
	for _, want := range []string{"broken-a/manifest.json", "broken-b/manifest.json"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("LoadDir error %q missing %q", err, want)
		}
	}
	if err := os.RemoveAll(filepath.Join(root, "broken-a")); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(filepath.Join(root, "broken-b")); err != nil {
		t.Fatal(err)
	}

	pkgs, err := LoadDir(root)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Manifest.Name != "demo" {
		t.Fatalf("LoadDir = %v", pkgs)
	}

	// An empty root is an error, not a silent no-op "pass".
	empty := t.TempDir()
	if _, err := LoadDir(empty); err == nil || !strings.Contains(err.Error(), "no packages") {
		t.Fatalf("empty root: err = %v", err)
	}
}

func TestNameCatalogs(t *testing.T) {
	if got := TechniqueNames(); len(got) != 5 || got[0] != "TOP-IL" {
		t.Fatalf("TechniqueNames = %v", got)
	}
	if got := BackendNames(); len(got) != 3 {
		t.Fatalf("BackendNames = %v", got)
	}
	metrics := MetricNames()
	if len(metrics) != len(metricDoc) {
		t.Fatalf("MetricNames = %v", metrics)
	}
	for i := 1; i < len(metrics); i++ {
		if metrics[i-1] >= metrics[i] {
			t.Fatalf("MetricNames not sorted: %v", metrics)
		}
	}
	checks := APICheckNames()
	if len(checks) == 0 || checks[0] != "healthz" {
		t.Fatalf("APICheckNames = %v", checks)
	}
	for _, c := range checks {
		if !apiCheckKnown(c) {
			t.Errorf("apiCheckKnown(%q) = false", c)
		}
	}
	if apiCheckKnown("nope") {
		t.Error(`apiCheckKnown("nope") = true`)
	}
}
