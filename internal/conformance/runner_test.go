package conformance

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// writeTestPackage materializes a governor-only package (no training, so
// the test runs in well under a second).
func writeTestPackage(t *testing.T, root, name string, wideBands bool) {
	t.Helper()
	min, max := 0.0, 1e6
	if !wideBands {
		// A deliberately perturbed envelope: no simulated run peaks below
		// freezing, so this band must fail.
		min, max = -100.0, -50.0
	}
	m := Manifest{
		SchemaVersion: ManifestVersion,
		Name:          name,
		Scenarios: []Scenario{{
			Name:        "quick",
			DurationSec: 60,
			NumJobs:     3,
			Rate:        1,
			InstrScale:  0.02,
			Techniques:  []string{"GTS/ondemand", "GTS/powersave"},
			Envelopes: []Envelope{
				{Metric: "peakTempC", Technique: "GTS/ondemand", Min: min, Max: max,
					Boundary: "seed 1, 3 generated jobs, 60s, fan on"},
				{Metric: "energyJ", Technique: "GTS/powersave", Min: 0, Max: 1e9,
					Boundary: "seed 1, 3 generated jobs, 60s, fan on"},
			},
		}},
		APIChecks: []string{"healthz"},
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRunGovernorPackage(t *testing.T) {
	root := t.TempDir()
	writeTestPackage(t, root, "gov-pass", true)
	pkgs, err := LoadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	p := experiments.NewPipeline(experiments.QuickScale())
	rep, err := Run(context.Background(), p, pkgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("report failed:\n%s", rep.Render())
	}
	pr := rep.Packages[0]
	if len(pr.Scenarios) != 1 || len(pr.Scenarios[0].Cells) != 2 {
		t.Fatalf("cells = %+v", pr.Scenarios)
	}
	for _, c := range pr.Scenarios[0].Cells {
		if c.Backend != "-" {
			t.Errorf("governor cell backend = %q, want -", c.Backend)
		}
		if c.Metrics["peakTempC"] <= 0 || c.Metrics["energyJ"] <= 0 {
			t.Errorf("cell %s metrics implausible: %+v", c.Technique, c.Metrics)
		}
	}
	// The offline run reports requested API checks as skipped, not failed.
	if len(pr.API) != 1 || !pr.API[0].Skipped || !pr.API[0].OK {
		t.Fatalf("offline API results = %+v", pr.API)
	}
}

// TestRunPerturbedEnvelopeFails pins the acceptance criterion: a perturbed
// envelope fails with a diagnostic naming the package, scenario and metric.
func TestRunPerturbedEnvelopeFails(t *testing.T) {
	root := t.TempDir()
	writeTestPackage(t, root, "gov-fail", false)
	pkgs, err := LoadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	p := experiments.NewPipeline(experiments.QuickScale())
	rep, err := Run(context.Background(), p, pkgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatalf("perturbed envelope passed:\n%s", rep.Render())
	}
	text := rep.Render()
	for _, want := range []string{
		"envelope gov-fail/quick: peakTempC GTS/ondemand[-]",
		"band [-100, -50] FAIL",
		"boundary: seed 1, 3 generated jobs, 60s, fan on",
		"package gov-fail: FAIL",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

// TestRunDeterministicAcrossWorkers pins the -j1 == -j8 byte-identity the
// make conformance target relies on.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	root := t.TempDir()
	writeTestPackage(t, root, "gov-det", true)
	pkgs, err := LoadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	var renders [][]byte
	for _, workers := range []int{1, 8} {
		p := experiments.NewPipeline(experiments.QuickScale())
		p.Workers = workers
		rep, err := Run(context.Background(), p, pkgs, nil)
		if err != nil {
			t.Fatal(err)
		}
		js, err := rep.JSON()
		if err != nil {
			t.Fatal(err)
		}
		renders = append(renders, append([]byte(rep.Render()), js...))
	}
	if !bytes.Equal(renders[0], renders[1]) {
		t.Fatalf("reports differ between -j1 and -j8:\n--- j1:\n%s\n--- j8:\n%s",
			renders[0], renders[1])
	}
}
