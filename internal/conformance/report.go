package conformance

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Report is the outcome of one conformance run. Every field is derived
// from deterministic inputs (seeded simulations, ordered reductions) — no
// timestamps or wall-clock durations — so the rendered report is
// byte-identical across runs and worker counts.
type Report struct {
	Packages []PackageReport `json:"packages"`
	Pass     bool            `json:"pass"`
}

// PackageReport is one package's outcome.
type PackageReport struct {
	Name      string           `json:"name"`
	Scenarios []ScenarioReport `json:"scenarios"`
	// API holds wire-contract check results, present only when the
	// package requests checks.
	API  []APIResult `json:"api,omitempty"`
	Pass bool        `json:"pass"`
}

// ScenarioReport is one scenario's outcome: the measured cells and the
// envelope verdicts over them.
type ScenarioReport struct {
	Name   string          `json:"name"`
	Cells  []CellReport    `json:"cells"`
	Checks []EnvelopeCheck `json:"checks"`
	Pass   bool            `json:"pass"`
}

// CellReport is one (technique, backend) simulation cell's metrics.
type CellReport struct {
	Technique string `json:"technique"`
	// Backend is "-" for techniques without an inference step.
	Backend string `json:"backend"`
	// Metrics maps MetricNames to measured values (encoding/json sorts
	// map keys, keeping the JSON form deterministic).
	Metrics map[string]float64 `json:"metrics"`
}

// EnvelopeCheck is one envelope applied to one matching cell.
type EnvelopeCheck struct {
	Metric    string  `json:"metric"`
	Technique string  `json:"technique"`
	Backend   string  `json:"backend"`
	Value     float64 `json:"value"`
	Min       float64 `json:"min"`
	Max       float64 `json:"max"`
	Boundary  string  `json:"boundary"`
	OK        bool    `json:"ok"`
}

// JSON renders the report as indented JSON (the -json form).
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Render prints the deterministic text report. Failures name the package,
// scenario and metric so a red run reads without opening the manifest.
func (r *Report) Render() string {
	var b strings.Builder
	for pi := range r.Packages {
		p := &r.Packages[pi]
		fmt.Fprintf(&b, "package %s: %s\n", p.Name, passStr(p.Pass))
		for si := range p.Scenarios {
			s := &p.Scenarios[si]
			fmt.Fprintf(&b, "  scenario %s: %s\n", s.Name, passStr(s.Pass))
			for _, c := range s.Cells {
				fmt.Fprintf(&b, "    cell %s[%s]:", c.Technique, c.Backend)
				for _, m := range MetricNames() {
					fmt.Fprintf(&b, " %s=%.6g", m, c.Metrics[m])
				}
				b.WriteString("\n")
			}
			for _, c := range s.Checks {
				verdict := "ok"
				if !c.OK {
					verdict = fmt.Sprintf("FAIL (boundary: %s)", c.Boundary)
				}
				fmt.Fprintf(&b, "    envelope %s/%s: %s %s[%s] = %.6g, band [%g, %g] %s\n",
					p.Name, s.Name, c.Metric, c.Technique, c.Backend,
					c.Value, c.Min, c.Max, verdict)
			}
		}
		for _, a := range p.API {
			state := "ok"
			if a.Skipped {
				state = "skip"
			} else if !a.OK {
				state = "FAIL"
			}
			fmt.Fprintf(&b, "  api %s: %s (%s)\n", a.Check, state, a.Detail)
		}
	}
	fmt.Fprintf(&b, "conformance: %s (%d package(s))\n", passStr(r.Pass), len(r.Packages))
	return b.String()
}

func passStr(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}
