// Package conformance implements the repository's packaged
// conformance-and-regression pipeline: declarative test packages — a
// versioned manifest naming scenarios (app mix, technique, backend, fan
// mode), JSON Schemas pinning every /v1 response shape, and golden metric
// envelopes (peak temperature, QoS violations, energy within explicit
// tolerance bands per technique × backend) — plus a runner that executes
// packages against any policy on any backend and emits a deterministic
// pass/fail report. cmd/topil-validate drives it via the -packages flag;
// `make conformance` is the regression gate. See docs/CONFORMANCE.md.
package conformance

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Schema is a compiled JSON Schema (a deliberately small subset — see
// CompileSchema). It validates values decoded by encoding/json into
// interface{} trees: map[string]interface{}, []interface{}, string,
// float64, bool, nil.
type Schema struct {
	root map[string]interface{} // the whole document, for local $ref
	node map[string]interface{} // this schema's own object
}

// CompileSchema parses a schema document. The supported subset is what the
// /v1 wire contract needs:
//
//	type (string or list), required, properties,
//	additionalProperties (bool or schema), items, enum, const,
//	minimum, maximum, $ref (local "#/..." pointers only), $defs
//
// Unsupported keywords are rejected at compile time rather than silently
// ignored, so a schema cannot appear stricter than it is.
func CompileSchema(data []byte) (*Schema, error) {
	var doc map[string]interface{}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.UseNumber()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("conformance: schema: %w", err)
	}
	s := &Schema{root: doc, node: doc}
	if err := s.check(doc, "#"); err != nil {
		return nil, err
	}
	return s, nil
}

// supportedKeywords is the compile-time allowlist. "description" is
// documentation and ignored at validation time.
var supportedKeywords = map[string]bool{
	"type": true, "required": true, "properties": true,
	"additionalProperties": true, "items": true, "enum": true,
	"const": true, "minimum": true, "maximum": true,
	"$ref": true, "$defs": true, "description": true,
}

// check walks a schema object rejecting unsupported keywords and dangling
// local references.
func (s *Schema) check(node map[string]interface{}, path string) error {
	for k, v := range node {
		if !supportedKeywords[k] {
			return fmt.Errorf("conformance: schema %s: unsupported keyword %q", path, k)
		}
		switch k {
		case "$ref":
			ref, ok := v.(string)
			if !ok || !strings.HasPrefix(ref, "#/") {
				return fmt.Errorf("conformance: schema %s: $ref must be a local \"#/\" pointer", path)
			}
			if _, err := s.resolve(ref); err != nil {
				return fmt.Errorf("conformance: schema %s: %w", path, err)
			}
		case "properties", "$defs":
			m, ok := v.(map[string]interface{})
			if !ok {
				return fmt.Errorf("conformance: schema %s: %s must be an object", path, k)
			}
			for name, sub := range m {
				subm, ok := sub.(map[string]interface{})
				if !ok {
					return fmt.Errorf("conformance: schema %s/%s/%s: not an object", path, k, name)
				}
				if err := s.check(subm, path+"/"+k+"/"+name); err != nil {
					return err
				}
			}
		case "items":
			m, ok := v.(map[string]interface{})
			if !ok {
				return fmt.Errorf("conformance: schema %s: items must be an object", path)
			}
			if err := s.check(m, path+"/items"); err != nil {
				return err
			}
		case "additionalProperties":
			switch ap := v.(type) {
			case bool:
			case map[string]interface{}:
				if err := s.check(ap, path+"/additionalProperties"); err != nil {
					return err
				}
			default:
				return fmt.Errorf("conformance: schema %s: additionalProperties must be a bool or schema", path)
			}
		}
	}
	return nil
}

// resolve follows a local "#/a/b" pointer inside the root document.
func (s *Schema) resolve(ref string) (map[string]interface{}, error) {
	cur := interface{}(s.root)
	for _, part := range strings.Split(strings.TrimPrefix(ref, "#/"), "/") {
		m, ok := cur.(map[string]interface{})
		if !ok {
			return nil, fmt.Errorf("bad $ref %q", ref)
		}
		cur, ok = m[part]
		if !ok {
			return nil, fmt.Errorf("dangling $ref %q", ref)
		}
	}
	m, ok := cur.(map[string]interface{})
	if !ok {
		return nil, fmt.Errorf("$ref %q does not point at a schema object", ref)
	}
	return m, nil
}

// Validate checks raw JSON bytes against the schema and returns every
// violation, each prefixed with a JSON path like $.jobs[0].state. A nil
// slice means the document conforms.
func (s *Schema) Validate(data []byte) []error {
	var v interface{}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.UseNumber()
	if err := dec.Decode(&v); err != nil {
		return []error{fmt.Errorf("$: not valid JSON: %w", err)}
	}
	return s.ValidateValue(v)
}

// ValidateValue checks an already-decoded JSON value (json.Number for
// numbers when decoded with UseNumber; plain float64 also accepted).
func (s *Schema) ValidateValue(v interface{}) []error {
	var errs []error
	s.validate(s.node, v, "$", &errs)
	return errs
}

func (s *Schema) validate(node map[string]interface{}, v interface{}, path string, errs *[]error) {
	if ref, ok := node["$ref"].(string); ok {
		target, err := s.resolve(ref)
		if err != nil { // unreachable after CompileSchema, kept for safety
			*errs = append(*errs, fmt.Errorf("%s: %v", path, err))
			return
		}
		s.validate(target, v, path, errs)
		return
	}
	if want, ok := node["type"]; ok && !typeMatches(want, v) {
		*errs = append(*errs, fmt.Errorf("%s: is %s, want %v", path, typeName(v), typeList(want)))
		return
	}
	if enum, ok := node["enum"].([]interface{}); ok {
		found := false
		for _, e := range enum {
			if jsonEqual(e, v) {
				found = true
				break
			}
		}
		if !found {
			*errs = append(*errs, fmt.Errorf("%s: %v not in enum %v", path, jsonText(v), jsonText(enum)))
		}
	}
	if c, ok := node["const"]; ok && !jsonEqual(c, v) {
		*errs = append(*errs, fmt.Errorf("%s: %v != const %v", path, jsonText(v), jsonText(c)))
	}
	if n, ok := asFloat(v); ok {
		if min, have := asFloat(node["minimum"]); have && n < min {
			*errs = append(*errs, fmt.Errorf("%s: %g below minimum %g", path, n, min))
		}
		if max, have := asFloat(node["maximum"]); have && n > max {
			*errs = append(*errs, fmt.Errorf("%s: %g above maximum %g", path, n, max))
		}
	}
	switch val := v.(type) {
	case map[string]interface{}:
		props, _ := node["properties"].(map[string]interface{})
		if req, ok := node["required"].([]interface{}); ok {
			for _, r := range req {
				name, _ := r.(string)
				if _, present := val[name]; !present {
					*errs = append(*errs, fmt.Errorf("%s: missing required property %q", path, name))
				}
			}
		}
		// Deterministic error order: walk properties sorted by name.
		names := make([]string, 0, len(val))
		for name := range val {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			sub, known := props[name]
			if known {
				s.validate(sub.(map[string]interface{}), val[name], path+"."+name, errs)
				continue
			}
			switch ap := node["additionalProperties"].(type) {
			case bool:
				if !ap {
					*errs = append(*errs, fmt.Errorf("%s: unexpected property %q", path, name))
				}
			case map[string]interface{}:
				s.validate(ap, val[name], path+"."+name, errs)
			}
		}
	case []interface{}:
		if items, ok := node["items"].(map[string]interface{}); ok {
			for i, elem := range val {
				s.validate(items, elem, fmt.Sprintf("%s[%d]", path, i), errs)
			}
		}
	}
}

// typeMatches implements the JSON Schema "type" keyword, including the
// integer/number distinction.
func typeMatches(want interface{}, v interface{}) bool {
	switch w := want.(type) {
	case string:
		return typeIs(w, v)
	case []interface{}:
		for _, t := range w {
			if name, ok := t.(string); ok && typeIs(name, v) {
				return true
			}
		}
	}
	return false
}

func typeIs(name string, v interface{}) bool {
	switch name {
	case "object":
		_, ok := v.(map[string]interface{})
		return ok
	case "array":
		_, ok := v.([]interface{})
		return ok
	case "string":
		_, ok := v.(string)
		return ok
	case "boolean":
		_, ok := v.(bool)
		return ok
	case "null":
		return v == nil
	case "number":
		_, ok := asFloat(v)
		return ok
	case "integer":
		n, ok := asFloat(v)
		return ok && n == math.Trunc(n) && !math.IsInf(n, 0)
	}
	return false
}

func typeName(v interface{}) string {
	switch v.(type) {
	case map[string]interface{}:
		return "object"
	case []interface{}:
		return "array"
	case string:
		return "string"
	case bool:
		return "boolean"
	case nil:
		return "null"
	case json.Number, float64:
		return "number"
	}
	return fmt.Sprintf("%T", v)
}

func typeList(want interface{}) interface{} {
	return want
}

// asFloat widens json.Number / float64 / int into a float64.
func asFloat(v interface{}) (float64, bool) {
	switch n := v.(type) {
	case json.Number:
		f, err := n.Float64()
		return f, err == nil
	case float64:
		return n, true
	case int:
		return float64(n), true
	}
	return 0, false
}

// jsonEqual compares two decoded JSON values, treating numerically equal
// numbers as equal regardless of representation.
func jsonEqual(a, b interface{}) bool {
	if fa, ok := asFloat(a); ok {
		fb, ok := asFloat(b)
		return ok && fa == fb
	}
	switch av := a.(type) {
	case string:
		bv, ok := b.(string)
		return ok && av == bv
	case bool:
		bv, ok := b.(bool)
		return ok && av == bv
	case nil:
		return b == nil
	case []interface{}:
		bv, ok := b.([]interface{})
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if !jsonEqual(av[i], bv[i]) {
				return false
			}
		}
		return true
	case map[string]interface{}:
		bv, ok := b.(map[string]interface{})
		if !ok || len(av) != len(bv) {
			return false
		}
		for k := range av {
			if !jsonEqual(av[k], bv[k]) {
				return false
			}
		}
		return true
	}
	return false
}

// jsonText renders a decoded value compactly for error messages.
func jsonText(v interface{}) string {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("%v", v)
	}
	return string(b)
}
