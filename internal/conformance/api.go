package conformance

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/features"
)

// defaultInputDim is the feature width of the paper platform (8 cores in
// 2 clusters), used when APIConfig.InputDim is unset.
func defaultInputDim() int { return features.Dim(8, 2) }

// APIConfig points the wire-contract checks at a live serve instance.
type APIConfig struct {
	// BaseURL is the instance root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Model names a registry model used by the infer check; empty skips
	// inference checks.
	Model string
	// InputDim is the model's feature-vector width (the platform default
	// when zero).
	InputDim int
	// Dedicated marks an instance owned by this run. Destructive checks
	// (backpressure flooding) only run against dedicated instances —
	// their applicability boundary excludes shared deployments.
	Dedicated bool
	// Client overrides the HTTP client (default: 30 s timeout).
	Client *http.Client
}

func (c APIConfig) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// APIResult is the outcome of one wire-contract check.
type APIResult struct {
	Check   string `json:"check"`
	OK      bool   `json:"ok"`
	Skipped bool   `json:"skipped,omitempty"`
	Detail  string `json:"detail"`
}

// apiCheck is one named wire-contract probe. It returns a human detail on
// success; skipped marks checks whose applicability boundary excludes this
// configuration (see docs/CONFORMANCE.md).
type apiCheck struct {
	name string
	run  func(ctx context.Context, cfg APIConfig) (detail string, skipped bool, err error)
}

// apiChecks is the ordered check table. Order is fixed so reports are
// deterministic.
var apiChecks = []apiCheck{
	{"healthz", checkHealthz},
	{"models", checkModels},
	{"infer", checkInfer},
	{"sim", checkSim},
	{"jobs", checkJobs},
	{"stats", checkStats},
	{"online", checkOnline},
	{"notFound", checkNotFound},
	{"backpressure", checkBackpressure},
}

// APICheckNames lists every wire-contract check, in execution order.
func APICheckNames() []string {
	names := make([]string, len(apiChecks))
	for i, c := range apiChecks {
		names[i] = c.name
	}
	return names
}

func apiCheckKnown(name string) bool {
	for _, c := range apiChecks {
		if c.name == name {
			return true
		}
	}
	return false
}

// RunAPIChecks executes the named checks (all of them when names is empty)
// against the configured instance, in table order regardless of the input
// order, and returns one result per check.
func RunAPIChecks(ctx context.Context, cfg APIConfig, names []string) []APIResult {
	want := toSet(names)
	var out []APIResult
	for _, c := range apiChecks {
		if len(names) > 0 && !want[c.name] {
			continue
		}
		detail, skipped, err := c.run(ctx, cfg)
		r := APIResult{Check: c.name, OK: err == nil, Skipped: skipped, Detail: detail}
		if err != nil {
			r.Detail = err.Error()
		}
		out = append(out, r)
	}
	return out
}

// getChecked GETs a path, requiring the status and validating the body
// against the named wire schema.
func getChecked(ctx context.Context, cfg APIConfig, path string, wantStatus int, schema string) ([]byte, *http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.BaseURL+path, nil)
	if err != nil {
		return nil, nil, err
	}
	return doChecked(cfg, req, path, wantStatus, schema)
}

// postChecked POSTs a JSON body, requiring the status and validating the
// response against the named wire schema.
func postChecked(ctx context.Context, cfg APIConfig, path string, body interface{}, wantStatus int, schema string) ([]byte, *http.Response, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.BaseURL+path, bytes.NewReader(data))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return doChecked(cfg, req, path, wantStatus, schema)
}

func doChecked(cfg APIConfig, req *http.Request, path string, wantStatus int, schema string) ([]byte, *http.Response, error) {
	resp, err := cfg.client().Do(req)
	if err != nil {
		return nil, nil, fmt.Errorf("%s %s: %w", req.Method, path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, resp, fmt.Errorf("%s %s: reading body: %w", req.Method, path, err)
	}
	if resp.StatusCode != wantStatus {
		return body, resp, fmt.Errorf("%s %s: status %d, want %d (body %.200s)",
			req.Method, path, resp.StatusCode, wantStatus, body)
	}
	if err := validateWire(schema, body); err != nil {
		return body, resp, fmt.Errorf("%s %s: %w", req.Method, path, err)
	}
	return body, resp, nil
}

// validateWire checks bytes against a named wire schema, folding every
// violation into one error.
func validateWire(schema string, body []byte) error {
	s, err := SchemaFor(schema)
	if err != nil {
		return err
	}
	errs := s.Validate(body)
	if len(errs) == 0 {
		return nil
	}
	msgs := make([]string, len(errs))
	for i, e := range errs {
		msgs[i] = e.Error()
	}
	sort.Strings(msgs)
	return fmt.Errorf("schema %q: %s", schema, strings.Join(msgs, "; "))
}

// --- individual checks ---

func checkHealthz(ctx context.Context, cfg APIConfig) (string, bool, error) {
	body, _, err := getChecked(ctx, cfg, "/v1/healthz", http.StatusOK, "healthz")
	if err != nil {
		return "", false, err
	}
	var h struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		return "", false, err
	}
	return "status " + h.Status, false, nil
}

func checkModels(ctx context.Context, cfg APIConfig) (string, bool, error) {
	body, _, err := getChecked(ctx, cfg, "/v1/models", http.StatusOK, "models")
	if err != nil {
		return "", false, err
	}
	var m struct {
		Models []string `json:"models"`
	}
	if err := json.Unmarshal(body, &m); err != nil {
		return "", false, err
	}
	if cfg.Model != "" {
		found := false
		for _, name := range m.Models {
			if name == cfg.Model {
				found = true
			}
		}
		if !found {
			return "", false, fmt.Errorf("model %q not in registry listing %v", cfg.Model, m.Models)
		}
	}
	return fmt.Sprintf("%d model(s)", len(m.Models)), false, nil
}

func checkInfer(ctx context.Context, cfg APIConfig) (string, bool, error) {
	if cfg.Model == "" {
		return "no model configured", true, nil
	}
	dim := cfg.InputDim
	if dim <= 0 {
		dim = defaultInputDim()
	}
	reqBody := map[string]interface{}{
		"model":  cfg.Model,
		"inputs": [][]float64{make([]float64, dim), make([]float64, dim)},
	}
	body, _, err := postChecked(ctx, cfg, "/v1/infer", reqBody, http.StatusOK, "infer")
	if err != nil {
		return "", false, err
	}
	var resp struct {
		Outputs [][]float64 `json:"outputs"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return "", false, err
	}
	if len(resp.Outputs) != 2 {
		return "", false, fmt.Errorf("2 input rows produced %d output rows", len(resp.Outputs))
	}
	return "2 rows inferred", false, nil
}

// simRequest is the quick deterministic job the sim/jobs/backpressure
// checks submit: a governor policy, so no model artifact is required.
func simRequest(duration float64) map[string]interface{} {
	return map[string]interface{}{
		"policy":     "GTS/ondemand",
		"duration":   duration,
		"numJobs":    2,
		"rate":       2,
		"instrScale": 0.02,
	}
}

// floodRequest is the backpressure payload: many long applications, so the
// simulated run keeps a worker busy for seconds of wall time (a light job
// list would finish at e.Done almost instantly and the queue would never
// fill).
func floodRequest() map[string]interface{} {
	return map[string]interface{}{
		"policy":     "GTS/ondemand",
		"duration":   3600,
		"numJobs":    32,
		"rate":       10,
		"instrScale": 10,
	}
}

func checkSim(ctx context.Context, cfg APIConfig) (string, bool, error) {
	body, resp, err := postChecked(ctx, cfg, "/v1/sim", simRequest(2), http.StatusAccepted, "job")
	if err != nil {
		return "", false, err
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/jobs/") {
		return "", false, fmt.Errorf("202 Location %q does not point at /v1/jobs/", loc)
	}
	var snap struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		return "", false, err
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		body, _, err := getChecked(ctx, cfg, "/v1/jobs/"+snap.ID, http.StatusOK, "job")
		if err != nil {
			return "", false, err
		}
		var cur struct {
			State  string          `json:"state"`
			Error  string          `json:"error"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(body, &cur); err != nil {
			return "", false, err
		}
		switch cur.State {
		case "done":
			if len(cur.Result) == 0 {
				return "", false, fmt.Errorf("job %s done without a result", snap.ID)
			}
			return "job " + snap.ID + " done", false, nil
		case "failed", "canceled":
			return "", false, fmt.Errorf("job %s ended %s: %s", snap.ID, cur.State, cur.Error)
		}
		if time.Now().After(deadline) {
			return "", false, fmt.Errorf("job %s still %s after 60s", snap.ID, cur.State)
		}
		select {
		case <-ctx.Done():
			return "", false, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func checkJobs(ctx context.Context, cfg APIConfig) (string, bool, error) {
	body, _, err := getChecked(ctx, cfg, "/v1/jobs", http.StatusOK, "jobs")
	if err != nil {
		return "", false, err
	}
	var resp struct {
		Jobs []json.RawMessage `json:"jobs"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return "", false, err
	}
	return fmt.Sprintf("%d job(s) listed", len(resp.Jobs)), false, nil
}

func checkStats(ctx context.Context, cfg APIConfig) (string, bool, error) {
	_, _, err := getChecked(ctx, cfg, "/v1/stats", http.StatusOK, "stats")
	if err != nil {
		return "", false, err
	}
	return "stats shape ok", false, nil
}

func checkOnline(ctx context.Context, cfg APIConfig) (string, bool, error) {
	body, _, err := getChecked(ctx, cfg, "/v1/online", http.StatusOK, "online")
	if err != nil {
		return "", false, err
	}
	var st struct {
		Enabled       bool   `json:"enabled"`
		Model         string `json:"model"`
		ActiveVersion int    `json:"activeVersion"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return "", false, err
	}
	if !st.Enabled {
		return "continual learning disabled", false, nil
	}
	return fmt.Sprintf("model %q active v%d", st.Model, st.ActiveVersion), false, nil
}

func checkNotFound(ctx context.Context, cfg APIConfig) (string, bool, error) {
	_, _, err := getChecked(ctx, cfg, "/v1/jobs/conformance-no-such-job",
		http.StatusNotFound, "error")
	if err != nil {
		return "", false, err
	}
	return "404 body conforms", false, nil
}

// checkBackpressure floods POST /v1/sim with long jobs until the instance
// sheds with 429, then validates the error body and Retry-After header and
// cancels everything it submitted. Applicability boundary: dedicated
// instances only — flooding a shared deployment would shed real traffic.
func checkBackpressure(ctx context.Context, cfg APIConfig) (string, bool, error) {
	if !cfg.Dedicated {
		return "requires a dedicated instance (would shed real traffic)", true, nil
	}
	var accepted []string
	defer func() {
		for _, id := range accepted {
			req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
				cfg.BaseURL+"/v1/jobs/"+id, nil)
			if err != nil {
				continue
			}
			if resp, err := cfg.client().Do(req); err == nil {
				io.Copy(io.Discard, resp.Body) //nolint — drain for reuse
				resp.Body.Close()
			}
		}
	}()
	for attempt := 0; attempt < 64; attempt++ {
		body, resp, err := postChecked(ctx, cfg, "/v1/sim", floodRequest(),
			http.StatusAccepted, "job")
		if resp != nil && resp.StatusCode == http.StatusTooManyRequests {
			if err := validateWire("error", body); err != nil {
				return "", false, fmt.Errorf("429 body: %w", err)
			}
			ra := resp.Header.Get("Retry-After")
			secs, convErr := strconv.Atoi(ra)
			if convErr != nil || secs < 1 {
				return "", false, fmt.Errorf("429 Retry-After %q is not a positive integer", ra)
			}
			return fmt.Sprintf("shed after %d accepted job(s), Retry-After %ds",
				len(accepted), secs), false, nil
		}
		if err != nil {
			return "", false, err
		}
		var snap struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &snap); err != nil {
			return "", false, err
		}
		accepted = append(accepted, snap.ID)
	}
	return "", false, fmt.Errorf("no 429 after 64 long submissions — queue bound not enforced?")
}
