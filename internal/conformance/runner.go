package conformance

import (
	"context"
	"fmt"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// cell is one (package, scenario, technique, backend) simulation to run.
type cell struct {
	pkg, scenario      int // indexes into the package/scenario lists
	technique, backend string
	sc                 Scenario // scenario with defaults applied
}

// Run executes the packages' scenarios on the pipeline's run matrix and,
// when api is non-nil, the requested wire-contract checks against the
// configured serve instance, and reduces everything into one Report.
//
// Determinism: cells are enumerated in manifest order, dispatched via
// experiments.RunMatrix (ordered reduction), and every simulated metric is
// seeded — so the report bytes are identical at any Pipeline.Workers
// setting. With api == nil, requested API checks are reported as skipped
// (offline run), which keeps the offline report deterministic too.
func Run(ctx context.Context, p *experiments.Pipeline, pkgs []*Package, api *APIConfig) (*Report, error) {
	var cells []cell
	needIL, needRL := false, false
	for pi, pkg := range pkgs {
		for si, sc := range pkg.Manifest.Scenarios {
			sc = sc.withDefaults()
			for _, tech := range sc.Techniques {
				switch tech {
				case "TOP-IL":
					needIL = true
				case "TOP-RL":
					needRL = true
				}
				for _, backend := range cellBackends(tech, sc.Backends) {
					cells = append(cells, cell{pkg: pi, scenario: si,
						technique: tech, backend: backend, sc: sc})
				}
			}
		}
	}

	// Warm only the artifacts the cells actually use: governor-only
	// packages stay runnable in milliseconds, without training a model.
	if needIL {
		if _, err := p.Models(); err != nil {
			return nil, err
		}
	}
	if needRL {
		if _, err := p.QTables(); err != nil {
			return nil, err
		}
	}

	specs := make([]experiments.RunSpec[map[string]float64], len(cells))
	for i, c := range cells {
		c := c
		tag := fmt.Sprintf("%s/%s/%s[%s]", pkgs[c.pkg].Manifest.Name,
			c.sc.Name, c.technique, c.backend)
		specs[i] = experiments.RunSpec[map[string]float64]{
			Tag: tag,
			Run: func() (map[string]float64, error) { return runCell(p, c) },
		}
	}
	results, err := experiments.RunMatrix(p, "conformance", specs)
	if err != nil {
		return nil, err
	}

	report := &Report{Pass: true}
	for pi, pkg := range pkgs {
		pr := PackageReport{Name: pkg.Manifest.Name, Pass: true}
		for si, sc := range pkg.Manifest.Scenarios {
			sr := ScenarioReport{Name: sc.Name, Pass: true}
			for ci, c := range cells {
				if c.pkg != pi || c.scenario != si {
					continue
				}
				sr.Cells = append(sr.Cells, CellReport{Technique: c.technique,
					Backend: c.backend, Metrics: results[ci].Value})
			}
			for _, env := range sc.Envelopes {
				checks := applyEnvelope(env, sr.Cells)
				if len(checks) == 0 {
					// Validation guarantees the technique runs; an empty
					// match still means the envelope pins nothing — fail
					// loudly rather than reporting a vacuous pass.
					checks = []EnvelopeCheck{{Metric: env.Metric,
						Technique: env.Technique, Backend: envBackend(env),
						Min: env.Min, Max: env.Max, Boundary: env.Boundary}}
				}
				for _, c := range checks {
					if !c.OK {
						sr.Pass = false
					}
					sr.Checks = append(sr.Checks, c)
				}
			}
			if !sr.Pass {
				pr.Pass = false
			}
			pr.Scenarios = append(pr.Scenarios, sr)
		}
		if len(pkg.Manifest.APIChecks) > 0 {
			pr.API = runPackageAPI(ctx, api, pkg.Manifest.APIChecks)
			for _, a := range pr.API {
				if !a.OK {
					pr.Pass = false
				}
			}
		}
		if !pr.Pass {
			report.Pass = false
		}
		report.Packages = append(report.Packages, pr)
	}
	return report, nil
}

// cellBackends resolves the backends one technique runs on: only TOP-IL
// has an inference step; everything else runs once as "-".
func cellBackends(technique string, backends []string) []string {
	if technique == "TOP-IL" {
		return backends
	}
	return []string{"-"}
}

// runCell executes one simulation cell and reduces it to the metric map.
func runCell(p *experiments.Pipeline, c cell) (map[string]float64, error) {
	mgr, err := p.ManagerOn(c.technique, 0, cellManagerBackend(c))
	if err != nil {
		return nil, err
	}
	cfg := sim.DefaultConfig(c.sc.fan(), c.sc.AmbientC)
	cfg.Seed = c.sc.Seed
	switch c.sc.ThermalKernel {
	case "float32":
		cfg.ThermalKernel = thermal.KernelFloat32
	case "reference":
		cfg.ThermalKernel = thermal.KernelReference
	}
	e := sim.New(cfg)
	var jobs []workload.Job
	if len(c.sc.Jobs) > 0 {
		jobs, err = workload.EntriesToJobs(c.sc.Jobs)
		if err != nil {
			return nil, err
		}
	} else {
		gen := workload.NewGenerator(c.sc.Seed, workload.MixedPool(), p.PeakIPS,
			0.2, 0.7, c.sc.InstrScale)
		jobs = gen.Generate(c.sc.NumJobs, c.sc.Rate)
	}
	e.AddJobs(jobs)
	r := e.RunUntil(mgr, c.sc.DurationSec, e.Done)
	return metricsOf(r), nil
}

// cellManagerBackend maps the report-level backend label to ManagerOn's
// argument ("-" marks a technique without an inference step).
func cellManagerBackend(c cell) string {
	if c.technique == "TOP-IL" {
		return c.backend
	}
	return "-"
}

// metricsOf reduces a sim result to the envelope metric map (see
// metricDoc for units).
func metricsOf(r *sim.Result) map[string]float64 {
	return map[string]float64{
		"peakTempC":     r.PeakTemp,
		"avgTempC":      r.AvgTemp,
		"qosViolations": float64(r.Violations),
		"energyJ":       r.TotalEnergyJ(),
		"migrations":    float64(r.Migrations),
		"throttleSec":   r.ThrottleSeconds,
	}
}

// applyEnvelope checks one envelope against every matching cell.
func applyEnvelope(env Envelope, cells []CellReport) []EnvelopeCheck {
	var out []EnvelopeCheck
	for _, c := range cells {
		if c.Technique != env.Technique {
			continue
		}
		if b := envBackend(env); b != "*" && b != c.Backend {
			continue
		}
		v := c.Metrics[env.Metric]
		out = append(out, EnvelopeCheck{Metric: env.Metric,
			Technique: env.Technique, Backend: c.Backend,
			Value: v, Min: env.Min, Max: env.Max, Boundary: env.Boundary,
			OK: v >= env.Min && v <= env.Max})
	}
	return out
}

// envBackend resolves an envelope's backend selector ("" means "*").
func envBackend(env Envelope) string {
	if env.Backend == "" {
		return "*"
	}
	return env.Backend
}

// runPackageAPI resolves one package's requested checks. A nil config
// (offline run) reports every requested check as skipped, keeping the
// report deterministic without a server.
func runPackageAPI(ctx context.Context, api *APIConfig, names []string) []APIResult {
	if api == nil {
		out := make([]APIResult, len(names))
		for i, n := range names {
			out[i] = APIResult{Check: n, OK: true, Skipped: true,
				Detail: "offline run (no serve instance configured)"}
		}
		return out
	}
	return RunAPIChecks(ctx, *api, names)
}
