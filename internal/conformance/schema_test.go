package conformance

import (
	"strings"
	"testing"
)

func mustCompile(t *testing.T, src string) *Schema {
	t.Helper()
	s, err := CompileSchema([]byte(src))
	if err != nil {
		t.Fatalf("CompileSchema: %v", err)
	}
	return s
}

func TestSchemaBasicTypes(t *testing.T) {
	s := mustCompile(t, `{
		"type": "object",
		"required": ["a", "b"],
		"additionalProperties": false,
		"properties": {
			"a": {"type": "string"},
			"b": {"type": "integer", "minimum": 0, "maximum": 10},
			"c": {"type": ["number", "null"]},
			"d": {"enum": ["x", "y"]},
			"e": {"type": "array", "items": {"type": "boolean"}}
		}
	}`)
	cases := []struct {
		name string
		doc  string
		want []string // substrings of expected errors; empty = valid
	}{
		{"valid", `{"a":"s","b":3,"c":null,"d":"x","e":[true]}`, nil},
		{"missing-required", `{"a":"s"}`, []string{`missing required property "b"`}},
		{"wrong-type", `{"a":1,"b":3}`, []string{"$.a: is number, want string"}},
		{"not-integer", `{"a":"s","b":3.5}`, []string{"$.b: is number, want integer"}},
		{"below-min", `{"a":"s","b":-1}`, []string{"below minimum 0"}},
		{"above-max", `{"a":"s","b":11}`, []string{"above maximum 10"}},
		{"bad-enum", `{"a":"s","b":1,"d":"z"}`, []string{`not in enum`}},
		{"extra-prop", `{"a":"s","b":1,"zz":0}`, []string{`unexpected property "zz"`}},
		{"bad-item", `{"a":"s","b":1,"e":[true,3]}`, []string{"$.e[1]: is number, want boolean"}},
		{"not-json", `{`, []string{"not valid JSON"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := s.Validate([]byte(tc.doc))
			if len(tc.want) == 0 {
				if len(errs) != 0 {
					t.Fatalf("unexpected errors: %v", errs)
				}
				return
			}
			if len(errs) == 0 {
				t.Fatalf("document accepted, want errors %v", tc.want)
			}
			joined := ""
			for _, e := range errs {
				joined += e.Error() + "\n"
			}
			for _, w := range tc.want {
				if !strings.Contains(joined, w) {
					t.Errorf("errors %q missing %q", joined, w)
				}
			}
		})
	}
}

func TestSchemaRefAndDefs(t *testing.T) {
	s := mustCompile(t, `{
		"type": "object",
		"properties": {"q": {"$ref": "#/$defs/queue"}},
		"$defs": {
			"queue": {
				"type": "object",
				"required": ["depth"],
				"properties": {"depth": {"type": "integer"}}
			}
		}
	}`)
	if errs := s.Validate([]byte(`{"q":{"depth":1}}`)); len(errs) != 0 {
		t.Fatalf("valid ref'd doc rejected: %v", errs)
	}
	errs := s.Validate([]byte(`{"q":{}}`))
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), `$.q: missing required property "depth"`) {
		t.Fatalf("ref'd violation not surfaced: %v", errs)
	}
}

func TestSchemaAdditionalPropertiesSchema(t *testing.T) {
	s := mustCompile(t, `{
		"type": "object",
		"additionalProperties": {"type": "integer"}
	}`)
	if errs := s.Validate([]byte(`{"x":1,"y":2}`)); len(errs) != 0 {
		t.Fatalf("map of ints rejected: %v", errs)
	}
	if errs := s.Validate([]byte(`{"x":"s"}`)); len(errs) != 1 {
		t.Fatalf("map with string value accepted: %v", errs)
	}
}

func TestSchemaCompileRejectsUnsupported(t *testing.T) {
	cases := []string{
		`{"oneOf": [{"type": "string"}]}`,
		`{"type": "object", "properties": {"a": {"patternProperties": {}}}}`,
		`{"$ref": "http://example.com/remote"}`,
		`{"$ref": "#/$defs/missing"}`,
		`{"items": "nope"}`,
	}
	for _, src := range cases {
		if _, err := CompileSchema([]byte(src)); err == nil {
			t.Errorf("CompileSchema accepted %s", src)
		}
	}
}

// TestEmbeddedSchemasCompile compiles every shipped wire-contract schema,
// so a malformed or unsupported schema file fails here rather than at the
// first conformance run.
func TestEmbeddedSchemasCompile(t *testing.T) {
	names := SchemaNames()
	want := []string{"cluster", "error", "healthz", "infer", "job", "jobs", "models", "online", "stats"}
	if len(names) != len(want) {
		t.Fatalf("schemas = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("schemas = %v, want %v", names, want)
		}
		if _, err := SchemaFor(n); err != nil {
			t.Errorf("SchemaFor(%q): %v", n, err)
		}
	}
	if _, err := SchemaFor("nope"); err == nil {
		t.Error("SchemaFor accepted an unknown name")
	}
}

func TestMustSchemaPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustSchema did not panic on an unknown name")
		}
	}()
	MustSchema("definitely-not-a-schema")
}
