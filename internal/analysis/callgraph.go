package analysis

// callgraph.go builds a module-wide call graph over go/types: static calls
// resolve directly, interface-method calls resolve by class-hierarchy
// analysis (every module type implementing the interface contributes its
// method), and calls through local function-valued variables resolve by
// tracking which function literals or named functions flow into the
// variable. The graph is deliberately sound-but-incomplete: targets
// outside the analysed packages (stdlib, dynamic values with no tracked
// flow) are represented by Unresolved call sites, and analyzers must
// degrade gracefully there (docs/ANALYSIS.md spells out each boundary).

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// A Program is the whole-program view shared by interprocedural analyzers:
// the loaded packages plus the call graph spanning them. The driver builds
// it once per Run and hands it to every Pass.
type Program struct {
	Pkgs  []*Package
	Graph *CallGraph
}

// A FuncNode is one function in the call graph: a declared function or
// method (Decl/Obj set) or a function literal (Lit set).
type FuncNode struct {
	// Name is a stable human-readable identifier:
	// "pkg.Func", "(pkg.T).Method", "(*pkg.T).Method" or "pkg.Func$2"
	// for the 2nd literal (preorder) inside pkg.Func.
	Name string
	Pkg  *Package
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Obj  *types.Func

	// Out and In are the call sites leaving and entering this node.
	Out []*CallSite
	In  []*CallSite
}

// Body returns the function body, or nil for bodiless declarations.
func (f *FuncNode) Body() *ast.BlockStmt {
	if f.Lit != nil {
		return f.Lit.Body
	}
	if f.Decl != nil {
		return f.Decl.Body
	}
	return nil
}

// Type returns the function's signature AST.
func (f *FuncNode) Type() *ast.FuncType {
	if f.Lit != nil {
		return f.Lit.Type
	}
	return f.Decl.Type
}

// A CallSite is one call expression attributed to its innermost enclosing
// function, with the module-internal targets it may reach.
type CallSite struct {
	Caller *FuncNode
	Call   *ast.CallExpr
	// Callees lists the resolved module-internal targets (one for static
	// calls, possibly several for interface or closure calls).
	Callees []*FuncNode
	// Unresolved is set when the call may additionally reach targets the
	// graph cannot see: external functions, untracked function values,
	// or interface implementations outside the module.
	Unresolved bool
	// Go and Defer mark `go f()` and `defer f()` sites.
	Go    bool
	Defer bool
}

// A CallGraph spans every function of the analysed packages.
type CallGraph struct {
	Nodes []*FuncNode

	byObj map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode
	// varFlows tracks, per function-typed variable, which function nodes
	// were observed flowing into it (assignments and initialisations
	// anywhere in the analysed packages).
	varFlows map[*types.Var][]*FuncNode
	// sites indexes every recorded call site by its expression, so
	// analyzers can resolve callees for an arbitrary *ast.CallExpr.
	sites map[*ast.CallExpr]*CallSite
	// named collects every non-interface named type of the module for CHA.
	named []types.Type

	// mu guards the lazy caches below: packages are analysed in parallel
	// and share one graph.
	mu          sync.Mutex
	cha         map[chaKey][]*FuncNode
	spawnedOnce sync.Once
	spawned     map[*FuncNode]map[int]bool
}

type chaKey struct {
	iface  *types.Interface
	method string
}

// NodeOf returns the graph node for a declared function/method object.
func (cg *CallGraph) NodeOf(obj *types.Func) *FuncNode { return cg.byObj[obj] }

// NodeOfLit returns the graph node for a function literal.
func (cg *CallGraph) NodeOfLit(lit *ast.FuncLit) *FuncNode { return cg.byLit[lit] }

// SiteOf returns the recorded call site for a call expression, or nil for
// calls the graph did not record (builtins, conversions).
func (cg *CallGraph) SiteOf(call *ast.CallExpr) *CallSite { return cg.sites[call] }

// BuildProgram constructs the whole-program view for a set of packages.
func BuildProgram(pkgs []*Package) *Program {
	cg := &CallGraph{
		byObj:    map[*types.Func]*FuncNode{},
		byLit:    map[*ast.FuncLit]*FuncNode{},
		varFlows: map[*types.Var][]*FuncNode{},
		sites:    map[*ast.CallExpr]*CallSite{},
		cha:      map[chaKey][]*FuncNode{},
	}
	// Pass 1: index every function declaration and literal, and every
	// named type (for interface resolution).
	for _, pkg := range pkgs {
		cg.indexPackage(pkg)
	}
	// Pass 2: record function-value flows into variables (closure
	// tracking), then resolve every call site.
	for _, pkg := range pkgs {
		cg.collectFlows(pkg)
	}
	for _, pkg := range pkgs {
		cg.resolvePackage(pkg)
	}
	return &Program{Pkgs: pkgs, Graph: cg}
}

func (cg *CallGraph) indexPackage(pkg *Package) {
	if pkg.Types != nil {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if _, isIface := tn.Type().Underlying().(*types.Interface); isIface {
				continue
			}
			cg.named = append(cg.named, tn.Type())
		}
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			node := &FuncNode{Pkg: pkg, Decl: fd}
			if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				node.Obj = obj
				node.Name = graphFuncName(obj)
				cg.byObj[obj] = node
			} else {
				node.Name = pkg.Path + "." + fd.Name.Name
			}
			cg.Nodes = append(cg.Nodes, node)
			// Literals nested in this declaration, in preorder.
			counter := 0
			parent := node
			ast.Inspect(fd, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					counter++
					ln := &FuncNode{
						Name: fmt.Sprintf("%s$%d", parent.Name, counter),
						Pkg:  pkg,
						Lit:  lit,
					}
					cg.byLit[lit] = ln
					cg.Nodes = append(cg.Nodes, ln)
				}
				return true
			})
		}
	}
}

// graphFuncName renders a deterministic name for a declared function object.
func graphFuncName(obj *types.Func) string {
	sig, _ := obj.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		recv := sig.Recv().Type()
		return "(" + types.TypeString(recv, nil) + ")." + obj.Name()
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}

// collectFlows records which functions flow into function-typed variables:
// `f := func() {...}`, `var f = helper`, `f = t.method` and later
// reassignments all register their sources under the variable's object.
func (cg *CallGraph) collectFlows(pkg *Package) {
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return
		}
		for _, fn := range cg.funcValue(pkg, rhs, nil) {
			cg.varFlows[v] = append(cg.varFlows[v], fn)
		}
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) == len(st.Rhs) {
					for i := range st.Lhs {
						record(st.Lhs[i], st.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(st.Names) == len(st.Values) {
					for i := range st.Names {
						record(st.Names[i], st.Values[i])
					}
				}
			}
			return true
		})
	}
}

// funcValue resolves an expression to the function nodes it may denote:
// literals, named functions, method values, and (one level of) variables
// previously recorded by collectFlows.
func (cg *CallGraph) funcValue(pkg *Package, e ast.Expr, seen map[*types.Var]bool) []*FuncNode {
	switch v := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		if n := cg.byLit[v]; n != nil {
			return []*FuncNode{n}
		}
	case *ast.Ident:
		switch obj := pkg.Info.Uses[v].(type) {
		case *types.Func:
			if n := cg.byObj[obj]; n != nil {
				return []*FuncNode{n}
			}
		case *types.Var:
			if seen == nil {
				seen = map[*types.Var]bool{}
			}
			if seen[obj] {
				return nil
			}
			seen[obj] = true
			return cg.varFlows[obj]
		}
	case *ast.SelectorExpr:
		// Method value (t.Method) or package-qualified function (pkg.F).
		if sel, ok := pkg.Info.Selections[v]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				if n := cg.byObj[fn]; n != nil {
					return []*FuncNode{n}
				}
			}
		} else if fn, ok := pkg.Info.Uses[v.Sel].(*types.Func); ok {
			if n := cg.byObj[fn]; n != nil {
				return []*FuncNode{n}
			}
		}
	}
	return nil
}

func (cg *CallGraph) resolvePackage(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			cg.resolveBody(pkg, fd)
		}
	}
}

// resolveBody attributes every call in decl (and its nested literals) to
// the innermost enclosing function node.
func (cg *CallGraph) resolveBody(pkg *Package, decl *ast.FuncDecl) {
	var walk func(owner *FuncNode, n ast.Node)
	walk = func(owner *FuncNode, n ast.Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch v := x.(type) {
			case *ast.FuncLit:
				// A literal's calls belong to the literal, not to owner.
				if child := cg.byLit[v]; child != nil {
					walk(child, v.Body)
				}
				return false
			case *ast.GoStmt:
				cg.addSite(pkg, owner, v.Call, true, false)
				// Arguments and the callee expression still get their
				// ordinary treatment below via the nested CallExpr visit;
				// suppress double-adding the spawn call itself.
				for _, arg := range v.Call.Args {
					walk(owner, arg)
				}
				walk(owner, v.Call.Fun)
				return false
			case *ast.DeferStmt:
				cg.addSite(pkg, owner, v.Call, false, true)
				for _, arg := range v.Call.Args {
					walk(owner, arg)
				}
				walk(owner, v.Call.Fun)
				return false
			case *ast.CallExpr:
				cg.addSite(pkg, owner, v, false, false)
			}
			return true
		})
	}
	obj, ok := pkg.Info.Defs[decl.Name].(*types.Func)
	if !ok {
		return // type error; degrade
	}
	node := cg.byObj[obj]
	if node == nil {
		return
	}
	walk(node, decl.Body)
}

// addSite resolves one call expression and links the edge.
func (cg *CallGraph) addSite(pkg *Package, caller *FuncNode, call *ast.CallExpr, isGo, isDefer bool) {
	// Conversions (T(x)) are not calls.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	site := &CallSite{Caller: caller, Call: call, Go: isGo, Defer: isDefer}
	fun := ast.Unparen(call.Fun)
	switch fn := fun.(type) {
	case *ast.FuncLit:
		if n := cg.byLit[fn]; n != nil {
			site.Callees = []*FuncNode{n}
		}
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fn].(type) {
		case *types.Builtin:
			return // panic, append, ... — not graph edges
		case *types.Func:
			if n := cg.byObj[obj]; n != nil {
				site.Callees = []*FuncNode{n}
			} else {
				site.Unresolved = true // external function
			}
		case *types.Var:
			if flows := cg.varFlows[obj]; len(flows) > 0 {
				site.Callees = flows
			} else {
				site.Unresolved = true // untracked function value
			}
		default:
			site.Unresolved = true
		}
	case *ast.SelectorExpr:
		sel, ok := pkg.Info.Selections[fn]
		if !ok {
			// Package-qualified call: pkg.F(...).
			if obj, ok := pkg.Info.Uses[fn.Sel].(*types.Func); ok {
				if n := cg.byObj[obj]; n != nil {
					site.Callees = []*FuncNode{n}
				} else {
					site.Unresolved = true
				}
			} else {
				site.Unresolved = true
			}
			break
		}
		obj, ok := sel.Obj().(*types.Func)
		if !ok {
			// Calling a func-typed struct field: untracked.
			site.Unresolved = true
			break
		}
		if iface, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
			site.Callees = cg.implementations(iface, obj.Name())
			site.Unresolved = true // implementations outside the module
		} else if n := cg.byObj[obj]; n != nil {
			site.Callees = []*FuncNode{n}
		} else {
			site.Unresolved = true // external method
		}
	default:
		site.Unresolved = true
	}
	if len(site.Callees) == 0 && !site.Unresolved {
		return // builtin-like: nothing to record
	}
	cg.sites[call] = site
	caller.Out = append(caller.Out, site)
	for _, callee := range site.Callees {
		callee.In = append(callee.In, site)
	}
}

// implementations performs class-hierarchy analysis: every named module
// type whose method set (value or pointer) satisfies iface contributes its
// implementation of the named method.
func (cg *CallGraph) implementations(iface *types.Interface, method string) []*FuncNode {
	cg.mu.Lock()
	defer cg.mu.Unlock()
	key := chaKey{iface, method}
	if nodes, ok := cg.cha[key]; ok {
		return nodes
	}
	var out []*FuncNode
	for _, t := range cg.named {
		ptr := types.NewPointer(t)
		if !types.Implements(t, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, nil, method)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if n := cg.byObj[fn]; n != nil {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	cg.cha[key] = out
	return out
}

// ArgFuncs resolves the function values passed as arguments to a call:
// the result maps argument index to the function nodes that may flow in.
func (cg *CallGraph) ArgFuncs(pkg *Package, call *ast.CallExpr) map[int][]*FuncNode {
	var out map[int][]*FuncNode
	for i, arg := range call.Args {
		if fns := cg.funcValue(pkg, arg, nil); len(fns) > 0 {
			if out == nil {
				out = map[int][]*FuncNode{}
			}
			out[i] = fns
		}
	}
	return out
}

// paramIndex returns the index of the parameter that id denotes in fn's
// signature, or -1.
func paramIndex(pkg *Package, fn *FuncNode, id *ast.Ident) int {
	obj := pkg.Info.Uses[id]
	if obj == nil {
		return -1
	}
	params := fn.Type().Params
	if params == nil {
		return -1
	}
	i := 0
	for _, field := range params.List {
		for _, name := range field.Names {
			if pkg.Info.Defs[name] == obj {
				return i
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	return -1
}

// Dump renders the graph as sorted "caller -> callee" lines (with [go] /
// [defer] markers), the golden format used by the call-graph tests.
func (cg *CallGraph) Dump() string {
	var lines []string
	for _, n := range cg.Nodes {
		for _, site := range n.Out {
			mark := ""
			if site.Go {
				mark = " [go]"
			} else if site.Defer {
				mark = " [defer]"
			}
			if len(site.Callees) == 0 {
				lines = append(lines, fmt.Sprintf("%s -> ?%s", n.Name, mark))
				continue
			}
			for _, c := range site.Callees {
				suffix := mark
				if site.Unresolved {
					suffix += " [+external]"
				}
				lines = append(lines, fmt.Sprintf("%s -> %s%s", n.Name, c.Name, suffix))
			}
		}
	}
	sort.Strings(lines)
	// Dedup: two sites calling the same target render identically.
	var out []string
	for _, l := range lines {
		if len(out) == 0 || out[len(out)-1] != l {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n") + "\n"
}

// SpawnedParams computes (once, lazily), for every function node, the set
// of parameter indices that the function (transitively) launches as a
// goroutine: `go f()` where f is a parameter, or passing a parameter
// onward to another spawn helper. goleak uses this to check goroutine
// bodies at the call site that supplies them.
func (cg *CallGraph) SpawnedParams() map[*FuncNode]map[int]bool {
	cg.spawnedOnce.Do(func() { cg.spawned = cg.computeSpawnedParams() })
	return cg.spawned
}

func (cg *CallGraph) computeSpawnedParams() map[*FuncNode]map[int]bool {
	out := map[*FuncNode]map[int]bool{}
	mark := func(fn *FuncNode, i int) bool {
		if out[fn] == nil {
			out[fn] = map[int]bool{}
		}
		if out[fn][i] {
			return false
		}
		out[fn][i] = true
		return true
	}
	// Direct: go param().
	for _, fn := range cg.Nodes {
		body := fn.Body()
		if body == nil {
			continue
		}
		ast.Inspect(body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(gs.Call.Fun).(*ast.Ident); ok {
				if i := paramIndex(fn.Pkg, fn, id); i >= 0 {
					mark(fn, i)
				}
			}
			return true
		})
	}
	// Transitive: passing a parameter to a helper that spawns it.
	for changed := true; changed; {
		changed = false
		for _, fn := range cg.Nodes {
			for _, site := range fn.Out {
				for _, callee := range site.Callees {
					spawned := out[callee]
					if len(spawned) == 0 {
						continue
					}
					for ai, arg := range site.Call.Args {
						if !spawned[ai] {
							continue
						}
						if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
							if pi := paramIndex(fn.Pkg, fn, id); pi >= 0 && mark(fn, pi) {
								changed = true
							}
						}
					}
				}
			}
		}
	}
	return out
}
