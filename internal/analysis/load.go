package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Loader parses and type-checks packages of the enclosing module without
// shelling out to the go tool: module-internal imports are resolved against
// the directory tree rooted at go.mod, everything else (the standard
// library) through the compiler-independent source importer. This keeps the
// engine runnable in sandboxed CI with nothing but GOROOT sources present.
type Loader struct {
	Fset *token.FileSet

	modPath string // module path from go.mod ("repro")
	modRoot string // directory containing go.mod
	std     types.ImporterFrom
	cache   map[string]*Package // keyed by directory
}

// NewLoader locates the enclosing module starting from dir (usually ".").
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, mod, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	return &Loader{
		Fset:    token.NewFileSet(),
		modPath: mod,
		modRoot: root,
		std:     importer.ForCompiler(token.NewFileSet(), "source", nil).(types.ImporterFrom),
		cache:   make(map[string]*Package),
	}, nil
}

// findModule walks upward until it sees a go.mod and returns its directory
// and module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Load expands the given patterns and returns the matched packages sorted
// by import path. A pattern is either a directory path ("./internal/sim",
// possibly absolute) or a recursive form ending in "/..." which walks
// subdirectories, skipping testdata, hidden directories and directories
// without non-test Go files.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			if rest == "." || rest == "" {
				rest = "."
			}
			err := filepath.WalkDir(rest, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != rest && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					dirs[path] = true
				}
				return nil
			})
			if err != nil {
				return nil, fmt.Errorf("analysis: walking %s: %w", pat, err)
			}
			continue
		}
		if !hasGoFiles(pat) {
			return nil, fmt.Errorf("analysis: no Go files in %s", pat)
		}
		dirs[pat] = true
	}

	var pkgs []*Package
	for dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// hasGoFiles reports whether dir holds at least one non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// pathFor derives the import path of a directory: module-relative when the
// directory lies under the module root, the cleaned path otherwise.
func (l *Loader) pathFor(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return filepath.ToSlash(filepath.Clean(dir))
	}
	if rel, err := filepath.Rel(l.modRoot, abs); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			return l.modPath
		}
		return l.modPath + "/" + filepath.ToSlash(rel)
	}
	return filepath.ToSlash(abs)
}

// loadDir parses and type-checks the package in dir (cached).
func (l *Loader) loadDir(dir string) (*Package, error) {
	key, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.cache[key]; ok {
		return pkg, nil
	}
	// Parse under the canonical absolute directory so a package reached
	// both via pattern walk and via import gets identical positions.
	dir = key

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	pkg := &Package{
		Path:  l.pathFor(dir),
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
	}
	// Register before type-checking so import cycles cannot recurse
	// forever (invalid Go, but the linter must not hang on it).
	l.cache[key] = pkg

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer:                 (*loaderImporter)(l),
		FakeImportC:              true,
		Error:                    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		DisableUnusedImportCheck: true,
	}
	// Check never returns a fatal error with a collecting Error func; the
	// (possibly incomplete) package is still usable for analysis.
	tpkg, _ := conf.Check(pkg.Path, l.Fset, files, info)
	pkg.Types = tpkg
	pkg.Info = info
	pkg.collectIgnores()
	return pkg, nil
}

// loaderImporter routes module-internal import paths to the Loader and
// everything else to the source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		pkg, err := l.loadDir(filepath.Join(l.modRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("analysis: %s did not type-check", path)
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
