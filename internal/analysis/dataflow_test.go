package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"sort"
	"testing"
)

// parseFuncBody parses src (a complete file) and returns the body of the
// first function declaration. The CFG builder tolerates a nil *types.Info,
// so no type checking is needed here.
func parseFuncBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), "t.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fd.Body
		}
	}
	t.Fatal("no function in source")
	return nil
}

// assignLattice is a may-assign analysis for the solver tests: the fact is
// the set of variable names that may have been assigned on some path.
type assignLattice struct{}

func (assignLattice) Entry() Fact { return map[string]bool{} }

func (assignLattice) Clone(f Fact) Fact {
	out := map[string]bool{}
	for k, v := range f.(map[string]bool) {
		out[k] = v
	}
	return out
}

func (assignLattice) Transfer(n ast.Node, f Fact) Fact {
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				f.(map[string]bool)[id.Name] = true
			}
		}
	}
	return f
}

func (l assignLattice) Join(a, b Fact) Fact {
	out := l.Clone(a).(map[string]bool)
	for k := range b.(map[string]bool) {
		out[k] = true
	}
	return out
}

func (assignLattice) Equal(a, b Fact) bool {
	return reflect.DeepEqual(a, b)
}

func names(f Fact) []string {
	var out []string
	for k := range f.(map[string]bool) {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestForwardDiamond checks Join across an if/else: assignments from both
// arms must be visible after the merge.
func TestForwardDiamond(t *testing.T) {
	body := parseFuncBody(t, `package p
func f(c bool) {
	a := 1
	if c {
		b := 2
		_ = b
	} else {
		d := 3
		_ = d
	}
	e := a
	_ = e
}`)
	g := BuildCFG(body, nil)
	in := Forward(g, assignLattice{})
	exit, ok := in[g.Exit]
	if !ok {
		t.Fatal("exit block unreachable")
	}
	// The exit fact is the block-entry fact of Exit, i.e. everything
	// assigned on some path through the function.
	want := []string{"a", "b", "d", "e"}
	if got := names(exit); !reflect.DeepEqual(got, want) {
		t.Errorf("may-assign at exit = %v, want %v", got, want)
	}
}

// TestForwardLoop checks the worklist revisits the loop header until the
// back edge stabilizes: body assignments must reach the header fact.
func TestForwardLoop(t *testing.T) {
	body := parseFuncBody(t, `package p
func g(n int) {
	total := 0
	for i := 0; i < n; i++ {
		total = total + i
	}
	_ = total
}`)
	g := BuildCFG(body, nil)
	in := Forward(g, assignLattice{})
	exit, ok := in[g.Exit]
	if !ok {
		t.Fatal("exit block unreachable")
	}
	for _, v := range []string{"total", "i"} {
		if !exit.(map[string]bool)[v] {
			t.Errorf("may-assign at exit missing %q (back edge not propagated); got %v",
				v, names(exit))
		}
	}
	// The loop condition block joins entry and back-edge facts; find it
	// (the block whose Cond is the i < n comparison) and demand the loop
	// body's assignment arrived there.
	found := false
	for _, b := range g.Blocks {
		if b.Cond == nil {
			continue
		}
		if bin, ok := b.Cond.(*ast.BinaryExpr); ok && bin.Op == token.LSS {
			found = true
			f := in[b]
			if f == nil || !f.(map[string]bool)["total"] {
				t.Errorf("loop header fact %v lacks body assignment", names(f))
			}
		}
	}
	if !found {
		t.Fatal("no loop condition block in CFG")
	}
}

// nilLattice tracks whether p is proven non-nil, refined only by
// TransferCond on `p != nil` / `p == nil` branches.
type nilLattice struct{ assignLattice }

func (nilLattice) Entry() Fact { return map[string]bool{} }

func (l nilLattice) TransferCond(cond ast.Expr, isTrue bool, f Fact) Fact {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return f
	}
	id, ok := bin.X.(*ast.Ident)
	if !ok {
		return f
	}
	if nilIdent, ok := bin.Y.(*ast.Ident); !ok || nilIdent.Name != "nil" {
		return f
	}
	// p != nil on the true edge, or p == nil on the false edge → non-nil.
	if (bin.Op == token.NEQ) == isTrue {
		f.(map[string]bool)[id.Name] = true
	} else {
		delete(f.(map[string]bool), id.Name)
	}
	return f
}

// TestTransferCond checks branch-edge refinement: the dereferencing
// return sees p proven non-nil, the other return does not.
func TestTransferCond(t *testing.T) {
	body := parseFuncBody(t, `package p
func h(p *int) int {
	if p != nil {
		return *p
	}
	return 0
}`)
	g := BuildCFG(body, nil)
	lat := nilLattice{}
	in := Forward(g, lat)
	checked := 0
	for _, b := range g.Blocks {
		if b.Return == nil {
			continue
		}
		f, ok := in[b]
		if !ok {
			t.Fatalf("return block %d unreachable", b.Index)
		}
		nonNil := f.(map[string]bool)["p"]
		_, derefs := b.Return.Results[0].(*ast.StarExpr)
		if derefs && !nonNil {
			t.Error("dereferencing return not proven non-nil on the true edge")
		}
		if !derefs && nonNil {
			t.Error("fallthrough return wrongly proven non-nil")
		}
		checked++
	}
	if checked != 2 {
		t.Fatalf("checked %d return blocks, want 2", checked)
	}
}

// TestWalkVisitsOnce checks the reporting pass: every CFG node is visited
// exactly once, with the converged entry fact in force.
func TestWalkVisitsOnce(t *testing.T) {
	body := parseFuncBody(t, `package p
func f(c bool) {
	a := 1
	if c {
		a = 2
	}
	_ = a
}`)
	g := BuildCFG(body, nil)
	lat := assignLattice{}
	in := Forward(g, lat)
	seen := map[ast.Node]int{}
	blocks := 0
	Walk(g, lat, in, func(n ast.Node, before Fact) {
		seen[n]++
		if before == nil {
			t.Error("visit received a nil fact on a reachable block")
		}
	}, func(b *Block, out Fact) {
		blocks++
	})
	total := 0
	for n, c := range seen {
		if c != 1 {
			t.Errorf("node %T visited %d times, want 1", n, c)
		}
		total++
	}
	if total == 0 {
		t.Fatal("Walk visited no nodes")
	}
	if blocks == 0 {
		t.Fatal("Walk called blockEnd for no blocks")
	}
}

// TestCFGShape pins the structural invariants analyzers rely on: branch
// blocks carry Cond with true/false successor order, return blocks carry
// Return and do not fall off, loops close a back edge, and panic blocks
// terminate.
func TestCFGShape(t *testing.T) {
	body := parseFuncBody(t, `package p
func f(c bool, n int) int {
	if c {
		return 1
	}
	for i := 0; i < n; i++ {
		if i > 10 {
			panic("big")
		}
	}
	return 0
}`)
	g := BuildCFG(body, nil)

	var conds, returns, panics, backEdges int
	for _, b := range g.Blocks {
		if b.Cond != nil {
			conds++
			if len(b.Succs) != 2 {
				t.Errorf("branch block %d has %d successors, want 2", b.Index, len(b.Succs))
			}
		}
		if b.Return != nil {
			returns++
			if g.FallsOff(b) {
				t.Errorf("return block %d reported as falling off", b.Index)
			}
		}
		if b.Panics {
			panics++
		}
		for _, s := range b.Succs {
			if s.Index < b.Index && s != g.Exit {
				backEdges++
			}
		}
	}
	if conds != 3 {
		t.Errorf("found %d branch blocks, want 3 (two ifs and the loop condition)", conds)
	}
	if returns != 2 {
		t.Errorf("found %d return blocks, want 2", returns)
	}
	if panics != 1 {
		t.Errorf("found %d panic blocks, want 1", panics)
	}
	if backEdges == 0 {
		t.Error("loop produced no back edge")
	}
}
