package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// DeterministicPackages lists the internal/<name> segments whose packages
// must be bit-reproducible: the simulation substrate, the learning stack
// and the policies. Given identical seeds, these packages must produce
// identical oracle traces, training runs and figures — so wall-clock reads
// and the process-global RNG are banned; randomness must flow from an
// explicitly seeded *rand.Rand handed in by the caller.
var DeterministicPackages = []string{
	"sim", "nn", "oracle", "rl", "workload", "thermal", "power",
	"platform", "governor", "features", "core", "testkit", "online",
}

// DetrandExemptFiles are the designated clock-boundary files inside
// deterministic packages, keyed by their "internal/<pkg>/<file>" path
// suffix. Each package gets at most one: the file where wall-clock time
// enters and is converted to an explicit value every other file receives
// as input (e.g. online's training loop reads time.Now once per tick and
// hands RunCycle a plain unix timestamp). Keep this list painfully short —
// an exemption here is a standing invitation to nondeterminism.
var DetrandExemptFiles = []string{
	"internal/online/loop.go",
}

// detrandExempt reports whether filename (in OS form) is one of the
// exempt clock-boundary files. Matched as a path suffix, so fixture trees
// mirroring the layout under testdata are exempt too.
func detrandExempt(filename string) bool {
	name := filepath.ToSlash(filename)
	for _, e := range DetrandExemptFiles {
		if name == e || strings.HasSuffix(name, "/"+e) {
			return true
		}
	}
	return false
}

// detrandAllowed are the math/rand selectors that do NOT touch the global
// source: constructors and type names used to build or declare explicit,
// seeded generators.
var detrandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
	"Rand": true, "Source": true, "Source64": true,
	"Zipf": true, "PCG": true, "ChaCha8": true,
}

// DetRand returns the determinism analyzer.
func DetRand() *Analyzer {
	a := &Analyzer{
		Name: "detrand",
		Doc: "forbid global math/rand, crypto/rand and wall-clock reads (time.Now, " +
			"time.Since) in the deterministic packages internal/{" +
			strings.Join(DeterministicPackages, ",") + "}; randomness must come " +
			"from an explicit seeded *rand.Rand",
	}
	a.Run = runDetRand
	return a
}

// isDeterministic reports whether the package path names one of the
// deterministic packages, i.e. contains consecutive segments
// "internal/<name>". This also matches fixture trees that mirror the
// layout under testdata.
func isDeterministic(path string) bool {
	segs := strings.Split(path, "/")
	for i := 0; i+1 < len(segs); i++ {
		if segs[i] != "internal" {
			continue
		}
		for _, name := range DeterministicPackages {
			if segs[i+1] == name {
				return true
			}
		}
	}
	return false
}

func runDetRand(pass *Pass) {
	if !isDeterministic(pass.Pkg.Path) {
		return
	}
	for _, f := range pass.Pkg.Files {
		if detrandExempt(pass.Pkg.Fset.Position(f.Pos()).Filename) {
			continue
		}
		// Map the local names of the sensitive imports in this file.
		locals := map[string]string{} // local ident -> import path
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			switch path {
			case "math/rand", "math/rand/v2", "crypto/rand", "time":
			default:
				continue
			}
			name := path[strings.LastIndex(path, "/")+1:]
			if path == "math/rand/v2" {
				name = "rand"
			}
			if imp.Name != nil {
				name = imp.Name.Name
			}
			if name == "_" || name == "." {
				continue
			}
			locals[name] = path
		}
		if len(locals) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			path, ok := locals[ident.Name]
			if !ok {
				return true
			}
			// When type info resolved this ident, require it to be the
			// package name (not a shadowing local variable).
			if obj := pass.Pkg.Info.Uses[ident]; obj != nil {
				if _, isPkg := obj.(*types.PkgName); !isPkg {
					return true
				}
			}
			name := sel.Sel.Name
			switch path {
			case "math/rand", "math/rand/v2":
				if !detrandAllowed[name] {
					pass.Reportf(sel.Pos(),
						"%s.%s uses the process-global RNG; thread a seeded *rand.Rand through instead",
						ident.Name, name)
				}
			case "crypto/rand":
				pass.Reportf(sel.Pos(),
					"crypto/rand (%s.%s) is non-deterministic; deterministic packages must use a seeded *rand.Rand",
					ident.Name, name)
			case "time":
				if name == "Now" || name == "Since" {
					pass.Reportf(sel.Pos(),
						"%s.%s reads the wall clock; deterministic packages must take time as simulated input",
						ident.Name, name)
				}
			}
			return true
		})
	}
}
