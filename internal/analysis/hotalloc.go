package analysis

// hotalloc.go: functions annotated with a `//hot` doc-comment directive are
// gated to zero heap allocations. The analyzer shells out to the real
// compiler — `go build -gcflags=-m` — and maps the escape-analysis
// diagnostics ("X escapes to heap", "moved to heap: X") back onto the line
// ranges of the annotated functions. Anything the compiler would allocate
// inside a //hot function is a finding at the allocating line.
//
// This is the one analyzer that runs a subprocess: escape analysis is a
// whole-compiler activity that cannot be reproduced faithfully from
// go/types alone, and a cheaper approximation would drift from what the
// binary actually does. The build cache makes repeat runs cheap — the
// compiler replays recorded diagnostics without recompiling.
//
// Applicability boundary (docs/ANALYSIS.md): the gate is per-line, not
// per-call-path — an allocation on a cold error branch inside a //hot
// function still counts (hoist it into a `//go:noinline` cold helper).
// If the `go` tool is unavailable or the package does not compile, the
// analyzer degrades to silence rather than guessing. Allocations performed
// by callees are the callees' business: annotate them //hot too if they
// are on the hot path.

import (
	"bufio"
	"bytes"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// HotAlloc returns the zero-allocation-gate analyzer.
func HotAlloc() *Analyzer {
	return &Analyzer{
		Name: "hotalloc",
		Doc: "functions with a //hot doc-comment directive must be free of " +
			"heap allocations, verified against the compiler's own escape " +
			"analysis (go build -gcflags=-m); hoist allocations out of the " +
			"hot path or move them to a cold //go:noinline helper",
		Run: runHotAlloc,
	}
}

// hotRange is the file span of one //hot function.
type hotRange struct {
	name      string
	file      string // absolute path
	from, to  int    // inclusive line range
	tokenFile *token.File
}

func runHotAlloc(pass *Pass) {
	hots := hotFunctions(pass)
	if len(hots) == 0 {
		return
	}
	for _, diag := range escapeDiagnostics(pass.Pkg.Dir) {
		for _, h := range hots {
			if diag.file != h.file || diag.line < h.from || diag.line > h.to {
				continue
			}
			pass.Reportf(posAt(h.tokenFile, diag.line, diag.col),
				"//hot function %s allocates: %s; hot paths must be allocation-free (hoist the allocation or move it to a cold //go:noinline helper)",
				h.name, diag.detail)
			break
		}
	}
}

// hotFunctions collects the //hot-annotated declarations of the package.
// The directive is a doc-comment line that is exactly `//hot`, optionally
// followed by ':' and a rationale.
func hotFunctions(pass *Pass) []hotRange {
	var out []hotRange
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				continue
			}
			if !hasHotDirective(fd.Doc) {
				continue
			}
			start := pass.Pkg.Fset.Position(fd.Pos())
			end := pass.Pkg.Fset.Position(fd.End())
			out = append(out, hotRange{
				name:      fd.Name.Name,
				file:      start.Filename,
				from:      start.Line,
				to:        end.Line,
				tokenFile: pass.Pkg.Fset.File(file.Pos()),
			})
		}
	}
	return out
}

func hasHotDirective(doc *ast.CommentGroup) bool {
	for _, c := range doc.List {
		text := c.Text
		if text == "//hot" || strings.HasPrefix(text, "//hot:") || strings.HasPrefix(text, "//hot ") {
			return true
		}
	}
	return false
}

// posAt synthesizes a token.Pos for a (line, col) pair inside tf, so the
// finding lands on the allocating line (and //lint:ignore directives there
// suppress it).
func posAt(tf *token.File, line, col int) token.Pos {
	if tf == nil || line < 1 || line > tf.LineCount() {
		return token.NoPos
	}
	p := tf.LineStart(line)
	return p + token.Pos(col-1)
}

// escapeDiag is one allocation the compiler reported.
type escapeDiag struct {
	file      string // absolute path
	line, col int
	detail    string
}

// escapeDiagnostics builds the package in dir with -gcflags=-m and parses
// the escape-analysis output. The compiler prints diagnostics to stderr
// with paths relative to the package directory; a failed build yields
// whatever diagnostics were emitted before the failure (typically none).
func escapeDiagnostics(dir string) []escapeDiag {
	cmd := exec.Command("go", "build", "-gcflags=-m", ".")
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	_ = cmd.Run() // degrade to whatever output exists
	var out []escapeDiag
	sc := bufio.NewScanner(&stderr)
	for sc.Scan() {
		line := sc.Text()
		d, ok := parseEscapeLine(dir, line)
		if ok {
			out = append(out, d)
		}
	}
	return out
}

// parseEscapeLine extracts an allocation diagnostic from one -m line:
//
//	./thermal.go:42:17: new(Network) escapes to heap
//	./model.go:12:2: moved to heap: buf
//
// Lines about inlining, leaking params, or anything else are ignored.
func parseEscapeLine(dir, line string) (escapeDiag, bool) {
	if !strings.HasSuffix(line, "escapes to heap") && !strings.Contains(line, "moved to heap:") {
		return escapeDiag{}, false
	}
	// <path>:<line>:<col>: <detail>
	parts := strings.SplitN(line, ":", 4)
	if len(parts) != 4 {
		return escapeDiag{}, false
	}
	ln, err1 := strconv.Atoi(parts[1])
	col, err2 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil {
		return escapeDiag{}, false
	}
	file := parts[0]
	if !filepath.IsAbs(file) {
		file = filepath.Join(dir, file)
	}
	return escapeDiag{
		file:   filepath.Clean(file),
		line:   ln,
		col:    col,
		detail: strings.TrimSpace(parts[3]),
	}, true
}
