package analysis

// dataflow.go is a small forward dataflow framework: a worklist solver
// over the per-function CFGs of cfg.go. An analyzer supplies a Lattice
// (abstract state + transfer function); the solver computes a fixpoint of
// block-entry facts, and Walk replays one deterministic pass over every
// reachable block so the analyzer can report with converged facts in hand.
// Reports must happen in Walk, never in Transfer: Transfer runs an
// unbounded number of times during the fixpoint iteration.

import "go/ast"

// A Fact is one analyzer's abstract state at a program point. nil means
// "unreachable" and never flows through Transfer or Join.
type Fact = any

// A Lattice defines one forward dataflow problem. Facts must form a
// finite-height lattice under Join for the solver to terminate.
type Lattice interface {
	// Entry returns the fact at function entry.
	Entry() Fact
	// Clone returns an independent copy; the solver always hands Transfer
	// a private clone, so Transfer may mutate its argument freely.
	Clone(Fact) Fact
	// Transfer applies the effect of one CFG node and returns the
	// resulting fact (conventionally its — possibly mutated — argument).
	Transfer(n ast.Node, f Fact) Fact
	// Join merges the facts of two converging edges into a new fact;
	// it must not mutate either argument.
	Join(a, b Fact) Fact
	// Equal reports whether two facts are indistinguishable (fixpoint test).
	Equal(a, b Fact) bool
}

// A CondLattice additionally refines facts along branch edges: after the
// condition cond evaluates, the true edge sees TransferCond(cond, true, f)
// and the false edge TransferCond(cond, false, f). f is a private clone.
type CondLattice interface {
	Lattice
	TransferCond(cond ast.Expr, isTrue bool, f Fact) Fact
}

// Forward solves the dataflow problem to fixpoint and returns the entry
// fact of every reachable block. Blocks absent from the map are
// unreachable.
func Forward(g *CFG, lat Lattice) map[*Block]Fact {
	cond, hasCond := lat.(CondLattice)
	in := map[*Block]Fact{g.Entry: lat.Entry()}
	queued := make([]bool, len(g.Blocks))
	work := []*Block{g.Entry}
	queued[g.Entry.Index] = true

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false

		f := lat.Clone(in[b])
		for _, n := range b.Nodes {
			f = lat.Transfer(n, f)
		}
		for i, s := range b.Succs {
			sf := lat.Clone(f)
			if hasCond && b.Cond != nil && i < 2 {
				sf = cond.TransferCond(b.Cond, i == 0, sf)
			}
			prev, ok := in[s]
			if !ok {
				in[s] = sf
			} else {
				joined := lat.Join(prev, sf)
				if lat.Equal(prev, joined) {
					continue
				}
				in[s] = joined
			}
			if !queued[s.Index] {
				queued[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// Walk replays one pass over every reachable block in index order with the
// converged facts from Forward: visit observes the fact in force *before*
// each node, and blockEnd (optional) the fact after the block's last node.
// This is where analyzers report — each node is visited exactly once.
func Walk(g *CFG, lat Lattice, in map[*Block]Fact,
	visit func(n ast.Node, before Fact), blockEnd func(b *Block, out Fact)) {
	for _, b := range g.Blocks {
		entry, ok := in[b]
		if !ok {
			continue // unreachable
		}
		f := lat.Clone(entry)
		for _, n := range b.Nodes {
			if visit != nil {
				visit(n, f)
			}
			f = lat.Transfer(n, f)
		}
		if blockEnd != nil {
			blockEnd(b, f)
		}
	}
}
