package analysis

import (
	"go/ast"
	"regexp"
)

// UnitCheck returns the physical-unit annotation analyzer.
//
// The Eq. 1 DVFS arithmetic divides frequencies by IPS ratios, the power
// model multiplies V²f, and the thermal model integrates W into °C — all
// as bare float64s. A silently mismatched unit (MHz where Hz is expected)
// produces numbers that look plausible and are wrong by 10⁶. The rule:
// every exported float64 struct field and every exported-function float64
// parameter whose name matches a physical-quantity pattern (Freq, Temp,
// Power, Voltage, Energy, IPS, Latency) must carry a unit, either in the
// name itself (FreqHz, TotalEnergyJ, DeviceLatencyUs) or as a comment on
// the field (`Freq float64 // Hz`) or in the function's doc comment, as
// internal/platform models.
func UnitCheck() *Analyzer {
	a := &Analyzer{
		Name: "unitcheck",
		Doc: "require unit annotations (// Hz, // W, // °C, ... or a unit-bearing " +
			"name like FreqHz) on exported float64 struct fields and exported-function " +
			"parameters named like physical quantities (Freq/Temp/Power/Voltage/Energy/IPS/Latency)",
	}
	a.Run = runUnitCheck
	return a
}

// quantityPat matches identifiers that name a physical quantity.
var quantityPat = regexp.MustCompile(`(?i)(freq|temp|power|voltage|energy|ips|latency)`)

// nameUnitPat matches identifiers whose spelling already carries a unit
// suffix at a camel-case boundary, e.g. FreqHz, freqMHz, TotalEnergyJ,
// powerW, tempC, DeviceLatencyUs. The boundary (a lowercase letter before
// the suffix) keeps acronym tails like MeanIPS from passing as "seconds".
var nameUnitPat = regexp.MustCompile(`[a-z](Hz|KHz|MHz|GHz|MW|KW|W|MV|V|MJ|KJ|J|C|K|Ns|Us|Ms|Sec|S|Joules|Watts|Volts|Celsius|Kelvin|Ratios?|Fracs?|Norm)$`)

// commentUnitPat matches unit vocabulary inside a comment: SI symbols,
// spelled-out units, rates, and explicit dimensionless declarations.
var commentUnitPat = regexp.MustCompile(`(?i)(hz\b|\b[mk]?w\b|watts?\b|\b[m]?v\b|volts?\b|\b[mk]?j\b|joules?\b|°c|celsius|kelvin|\bc\b|\bk\b|deg(rees)?\.? ?c\b|\bips\b|instr|per[ -]sec|/ ?s(ec)?\b|seconds?\b|\b[mnµu]?s\b|fraction|ratio|normali[sz]ed|dimensionless|unitless|\[0, ?1\])`)

// hasNameUnit reports whether the identifier itself ends in a unit.
func hasNameUnit(name string) bool {
	return nameUnitPat.MatchString(name)
}

// hasCommentUnit reports whether any of the comment groups mentions a unit.
func hasCommentUnit(groups ...*ast.CommentGroup) bool {
	for _, g := range groups {
		if g != nil && commentUnitPat.MatchString(g.Text()) {
			return true
		}
	}
	return false
}

// isFloat64Expr matches the syntactic types float64 and []float64.
func isFloat64Expr(e ast.Expr) bool {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name == "float64"
	case *ast.ArrayType:
		return isFloat64Expr(t.Elt)
	}
	return false
}

func runUnitCheck(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					checkStructFields(pass, st)
				}
			case *ast.FuncDecl:
				checkFuncParams(pass, d)
			}
		}
	}
}

// checkStructFields requires a unit on every exported quantity-named
// float64 field. The unit may live in the field name, the trailing line
// comment, or the doc comment above the field.
func checkStructFields(pass *Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if !isFloat64Expr(field.Type) {
			continue
		}
		for _, name := range field.Names {
			if !ast.IsExported(name.Name) || !quantityPat.MatchString(name.Name) {
				continue
			}
			if hasNameUnit(name.Name) || hasCommentUnit(field.Comment, field.Doc) {
				continue
			}
			pass.Reportf(name.Pos(),
				"exported field %s is a physical quantity but declares no unit; add one to the name (e.g. %sHz) or a comment (e.g. `// Hz`, `// W`, `// °C`)",
				name.Name, name.Name)
		}
	}
}

// checkFuncParams requires a unit for quantity-named float64 parameters of
// exported functions and methods: in the parameter name or anywhere in the
// function's doc comment (which conventionally spells out the contract).
func checkFuncParams(pass *Pass, fd *ast.FuncDecl) {
	if !ast.IsExported(fd.Name.Name) || fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		if !isFloat64Expr(field.Type) {
			continue
		}
		for _, name := range field.Names {
			if !quantityPat.MatchString(name.Name) {
				continue
			}
			if hasNameUnit(name.Name) || hasCommentUnit(fd.Doc) {
				continue
			}
			pass.Reportf(name.Pos(),
				"parameter %s of exported %s is a physical quantity but neither its name nor the doc comment states a unit",
				name.Name, fd.Name.Name)
		}
	}
}
