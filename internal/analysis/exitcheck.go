package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ExitCheck returns the process-exit discipline analyzer.
//
// Library code must report failures as errors and leave process control to
// the binaries: os.Exit and log.Fatal* skip deferred cleanup (the serve
// drain path relies on defers) and make code untestable, so they are
// confined to package main. panic is reserved for programmer-error
// invariants — and then the enclosing function's doc comment must say so
// (as platform.New does: "New panics otherwise because a malformed
// platform is a programming error"), so the contract is visible at the
// call site documentation, not just in the stack trace.
func ExitCheck() *Analyzer {
	a := &Analyzer{
		Name: "exitcheck",
		Doc: "forbid os.Exit and log.Fatal* outside package main, and panic in " +
			"library code unless the enclosing function's doc comment documents " +
			"the panic as an invariant violation",
	}
	a.Run = runExitCheck
	return a
}

func runExitCheck(pass *Pass) {
	isMain := len(pass.Pkg.Files) > 0 && pass.Pkg.Files[0].Name.Name == "main"
	for _, f := range pass.Pkg.Files {
		// Resolve the local names of os and log in this file.
		locals := map[string]string{}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path != "os" && path != "log" {
				continue
			}
			name := path
			if imp.Name != nil {
				name = imp.Name.Name
			}
			if name != "_" && name != "." {
				locals[name] = path
			}
		}

		// Walk declarations so every node can be attributed to its
		// enclosing function declaration (for doc-comment lookup).
		for _, decl := range f.Decls {
			fd, _ := decl.(*ast.FuncDecl)
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					if fun.Name == "panic" && !isMain && !isBuiltinShadowed(pass, fun) {
						if !panicDocumented(fd) {
							pass.Reportf(call.Pos(),
								"panic in library code: document the invariant in %s's doc comment (\"... panics if ...\") or return an error",
								funcName(fd))
						}
					}
				case *ast.SelectorExpr:
					ident, ok := fun.X.(*ast.Ident)
					if !ok {
						return true
					}
					path, ok := locals[ident.Name]
					if !ok || isMain {
						return true
					}
					if obj := pass.Pkg.Info.Uses[ident]; obj != nil {
						if _, isPkg := obj.(*types.PkgName); !isPkg {
							return true
						}
					}
					sel := fun.Sel.Name
					if path == "os" && sel == "Exit" {
						pass.Reportf(call.Pos(),
							"os.Exit in library code skips deferred cleanup; return an error and let package main exit")
					}
					if path == "log" && (sel == "Fatal" || sel == "Fatalf" || sel == "Fatalln") {
						pass.Reportf(call.Pos(),
							"log.%s in library code exits the process; return an error and let package main decide",
							sel)
					}
				}
				return true
			})
		}
	}
}

// panicDocumented reports whether the function's doc comment mentions the
// panic contract.
func panicDocumented(fd *ast.FuncDecl) bool {
	if fd == nil || fd.Doc == nil {
		return false
	}
	return strings.Contains(strings.ToLower(fd.Doc.Text()), "panic")
}

// funcName names the enclosing declaration for the diagnostic.
func funcName(fd *ast.FuncDecl) string {
	if fd == nil {
		return "the enclosing declaration"
	}
	return fd.Name.Name
}

// isBuiltinShadowed reports whether this use of `panic` resolves to a
// user-defined object rather than the builtin.
func isBuiltinShadowed(pass *Pass, ident *ast.Ident) bool {
	obj := pass.Pkg.Info.Uses[ident]
	if obj == nil {
		return false // unresolved: assume the builtin
	}
	_, isBuiltin := obj.(*types.Builtin)
	return !isBuiltin
}
