package analysis

// goleak.go: every `go` statement must start a goroutine with a provable
// exit path. The analyzer resolves spawn targets through the module call
// graph — function literals, named functions, closures bound to local
// variables, and (interprocedurally) arguments handed to spawn helpers
// that launch their parameters — and then checks each goroutine body:
//
//   - an unconditionally-infinite loop (`for {}` / `for true {}`) must
//     contain a statement that leaves it: return, break (binding to that
//     loop), a labeled break/goto, or panic;
//   - `for range` over a time.Ticker/time.Timer channel (or time.Tick)
//     must contain such an exit too, because those channels are never
//     closed — the range alone can never terminate;
//   - `select {}` with no cases blocks forever and is always a finding.
//
// Applicability boundary (see docs/ANALYSIS.md): the check proves the
// *loop* can be left, not that the goroutine terminates — a condition
// loop (`for ctx.Err() == nil`), a range over an ordinary channel (closed
// by its producer) and a blocking receive are all trusted. Spawns the
// graph cannot resolve (interface methods, external callbacks, untracked
// function values) are skipped, not reported.

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// GoLeak returns the goroutine-exit analyzer.
func GoLeak() *Analyzer {
	return &Analyzer{
		Name: "goleak",
		Doc: "every `go` statement must start a goroutine with a provable exit " +
			"path: infinite loops and ticker-channel ranges inside the spawned " +
			"function (resolved through the call graph, including closures " +
			"passed to spawn helpers) must contain a return/break/goto",
		Run:          runGoLeak,
		NeedsProgram: true,
	}
}

func runGoLeak(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	cg := pass.Prog.Graph
	spawnHelpers := cg.SpawnedParams()

	for _, node := range cg.Nodes {
		if node.Pkg != pass.Pkg {
			continue
		}
		for _, site := range node.Out {
			if site.Go {
				// Direct spawn: check every resolved target body.
				for _, callee := range site.Callees {
					checkGoroutine(pass, site.Call.Pos(), callee)
				}
				continue
			}
			// Interprocedural: this call hands function values to a helper
			// that launches them (`go param()` somewhere downstream).
			for _, callee := range site.Callees {
				spawned := spawnHelpers[callee]
				if len(spawned) == 0 {
					continue
				}
				for ai := range site.Call.Args {
					if !spawned[ai] {
						continue
					}
					for _, fn := range cg.funcValue(pass.Pkg, site.Call.Args[ai], nil) {
						checkGoroutine(pass, site.Call.Args[ai].Pos(), fn)
					}
				}
			}
		}
	}
}

// checkGoroutine inspects one goroutine body for loops with no exit path.
// pos is the spawn site (the `go` call or the helper argument), where the
// finding is reported.
func checkGoroutine(pass *Pass, pos token.Pos, fn *FuncNode) {
	body := fn.Body()
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch loop := n.(type) {
		case *ast.FuncLit:
			return false // its own spawn sites are checked separately
		case *ast.ForStmt:
			if isInfiniteCond(loop.Cond) && !loopHasExit(loop.Body, loop) {
				reportGoLeak(pass, pos, fn, loop.Pos(),
					"an infinite for loop with no exit path (no return, break or goto)")
			}
		case *ast.RangeStmt:
			if isTickerChan(pass.Pkg, loop.X) && !loopHasExit(loop.Body, loop) {
				reportGoLeak(pass, pos, fn, loop.Pos(),
					"a range over a ticker channel, which is never closed, with no exit path")
			}
		case *ast.SelectStmt:
			if len(loop.Body.List) == 0 {
				reportGoLeak(pass, pos, fn, loop.Pos(), "an empty select{}, which blocks forever")
			}
		}
		return true
	})
}

func reportGoLeak(pass *Pass, pos token.Pos, fn *FuncNode, loopPos token.Pos, what string) {
	p := pass.Pkg.Fset.Position(loopPos)
	pass.Reportf(pos,
		"goroutine %s never exits: %s at %s:%d; add a quit/ctx.Done() case or bound the loop",
		fn.Name, what, filepath.Base(p.Filename), p.Line)
}

// isInfiniteCond reports whether a for condition can never become false:
// absent, the `true` literal, or a constant-true expression.
func isInfiniteCond(cond ast.Expr) bool {
	if cond == nil {
		return true
	}
	if id, ok := ast.Unparen(cond).(*ast.Ident); ok && id.Name == "true" {
		return true
	}
	return false
}

// loopHasExit reports whether the loop body contains a statement that
// leaves the loop: a return, a break binding to this loop, any labeled
// break or goto (approximated as an exit — it may only reach an inner
// label, which under-reports but never false-positives), or a panic.
// Nested function literals are opaque.
func loopHasExit(body *ast.BlockStmt, loop ast.Stmt) bool {
	exit := false
	// depth counts the break-scopes (for/range/switch/select) between the
	// inspected statement and the loop, so unlabeled breaks bind correctly.
	var walk func(n ast.Stmt, depth int)
	walkAll := func(list []ast.Stmt, depth int) {
		for _, s := range list {
			walk(s, depth)
		}
	}
	walk = func(n ast.Stmt, depth int) {
		if exit || n == nil {
			return
		}
		switch s := n.(type) {
		case *ast.ReturnStmt:
			exit = true
		case *ast.BranchStmt:
			switch s.Tok {
			case token.BREAK:
				if depth == 0 || s.Label != nil {
					exit = true
				}
			case token.GOTO:
				exit = true // may leave the loop; trusted
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					exit = true
				}
			}
		case *ast.BlockStmt:
			walkAll(s.List, depth)
		case *ast.IfStmt:
			walk(s.Init, depth)
			walk(s.Body, depth)
			walk(s.Else, depth)
		case *ast.ForStmt:
			walk(s.Body, depth+1)
		case *ast.RangeStmt:
			walk(s.Body, depth+1)
		case *ast.SwitchStmt:
			for _, cl := range s.Body.List {
				walkAll(cl.(*ast.CaseClause).Body, depth+1)
			}
		case *ast.TypeSwitchStmt:
			for _, cl := range s.Body.List {
				walkAll(cl.(*ast.CaseClause).Body, depth+1)
			}
		case *ast.SelectStmt:
			for _, cl := range s.Body.List {
				walkAll(cl.(*ast.CommClause).Body, depth+1)
			}
		case *ast.LabeledStmt:
			walk(s.Stmt, depth)
		}
	}
	walkAll(body.List, 0)
	return exit
}

// isTickerChan reports whether x denotes a channel that is never closed by
// the runtime: the C field of a time.Ticker or time.Timer, or the result
// of time.Tick.
func isTickerChan(pkg *Package, x ast.Expr) bool {
	switch v := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		if v.Sel.Name != "C" {
			return false
		}
		tv, ok := pkg.Info.Types[v.X]
		if !ok {
			return false
		}
		t := tv.Type
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == "time" &&
			(obj.Name() == "Ticker" || obj.Name() == "Timer")
	case *ast.CallExpr:
		if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
			if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok {
				return fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Tick"
			}
		}
	}
	return false
}
