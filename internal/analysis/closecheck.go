package analysis

// closecheck.go: resources that expose Close/Stop must be released on every
// path of the function that acquired them — including error and failover
// paths. The analyzer tracks acquisitions through the dataflow framework
// (one CFG per function, a map of variable → resource state as the fact)
// and reports any resource still open when a path reaches a return or
// falls off the end of the function.
//
// Tracked origins and their release calls:
//
//	(*http.Client).Do, http.Get/Head/Post/PostForm  → resp.Body.Close()
//	os.Open/OpenFile/Create/CreateTemp              → f.Close()
//	net.Listen/ListenTCP/ListenUnix                 → ln.Close()
//	time.NewTicker                                  → t.Stop()
//
// A resource stops being this function's problem when ownership provably
// transfers: it is returned, stored into a composite/field/global, sent on
// a channel, captured by a function literal, or passed to a callee that
// (per a one-hop call-graph summary) releases or keeps it. The error
// companion of an acquisition is understood: on the `err != nil` branch of
// `resp, err := client.Do(req)` the response is nil by contract and needs
// no Close.
//
// Applicability boundary (docs/ANALYSIS.md): tracking is per-variable and
// flow-sensitive but not alias-aware — copying the resource into a second
// variable counts as an ownership transfer, not a tracked alias. Resources
// acquired into struct fields are not tracked (their lifetime belongs to
// the struct's Close). Callees outside the module are trusted to release
// what they are handed.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CloseCheck returns the resource-release analyzer.
func CloseCheck() *Analyzer {
	return &Analyzer{
		Name: "closecheck",
		Doc: "resources with Close/Stop (http response bodies, files, " +
			"listeners, tickers) must be released on every path, including " +
			"error and failover paths; ownership transfers (return, store, " +
			"releasing callee) discharge the obligation",
		Run:          runCloseCheck,
		NeedsProgram: true,
	}
}

// Resource states, ordered so Join can take the maximum: a path where the
// resource is still open dominates any path where it is discharged.
const (
	resNil     = iota // error-branch contract: the resource was never live
	resHandled        // closed, stopped, or ownership transferred
	resOpen           // live and this function's responsibility
)

// A resource is one tracked acquisition.
type resource struct {
	state  int
	kind   string     // "body", "file", "listener", "ticker"
	origin token.Pos  // the acquiring call, where findings are reported
	what   string     // human description for the message
	errVar *types.Var // companion error assigned by the same statement
}

// closeFact maps each tracked variable to its resource state.
type closeFact map[*types.Var]*resource

// closeLattice implements CondLattice for resource tracking.
type closeLattice struct {
	pass *Pass
	cg   *CallGraph
}

func (l *closeLattice) Entry() Fact { return closeFact{} }

func (l *closeLattice) Clone(f Fact) Fact {
	out := closeFact{}
	for v, r := range f.(closeFact) {
		cp := *r
		out[v] = &cp
	}
	return out
}

func (l *closeLattice) Equal(a, b Fact) bool {
	x, y := a.(closeFact), b.(closeFact)
	if len(x) != len(y) {
		return false
	}
	for v, r := range x {
		s, ok := y[v]
		if !ok || s.state != r.state {
			return false
		}
	}
	return true
}

// Join merges two paths: a resource open on either side stays open
// (max over the state order); one tracked on only one side keeps its
// sole record.
func (l *closeLattice) Join(a, b Fact) Fact {
	x, y := a.(closeFact), b.(closeFact)
	out := l.Clone(x).(closeFact)
	for v, r := range y {
		if have, ok := out[v]; ok {
			if r.state > have.state {
				have.state = r.state
			}
		} else {
			cp := *r
			out[v] = &cp
		}
	}
	return out
}

func (l *closeLattice) Transfer(n ast.Node, f Fact) Fact {
	fact := f.(closeFact)
	switch s := n.(type) {
	case *ast.AssignStmt:
		l.transferEscapes(s, fact)
		l.transferAcquire(s, fact)
		return fact
	case *ast.DeferStmt:
		l.transferDefer(s, fact)
		return fact
	}
	l.transferEscapes(n, fact)
	return fact
}

// TransferCond refines facts along branch edges: after `if err != nil`
// (true edge) the resources whose companion error is err are nil by the
// acquiring API's contract; likewise `if v == nil` for the resource itself.
func (l *closeLattice) TransferCond(cond ast.Expr, isTrue bool, f Fact) Fact {
	fact := f.(closeFact)
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return fact
	}
	var operand ast.Expr
	switch {
	case isNilIdent(bin.Y):
		operand = bin.X
	case isNilIdent(bin.X):
		operand = bin.Y
	default:
		return fact
	}
	// Does this edge assert the operand IS nil?
	var operandNil bool
	switch bin.Op {
	case token.EQL:
		operandNil = isTrue
	case token.NEQ:
		operandNil = !isTrue
	default:
		return fact
	}
	id, ok := ast.Unparen(operand).(*ast.Ident)
	if !ok {
		return fact
	}
	obj, _ := l.pass.Pkg.Info.Uses[id].(*types.Var)
	if obj == nil {
		return fact
	}
	for v, r := range fact {
		if r.state != resOpen {
			continue
		}
		// Edge where err is non-nil: the companion resource never became
		// live (the acquiring APIs return a nil resource alongside an error).
		if r.errVar == obj && !operandNil {
			r.state = resNil
		}
		// Edge where the resource itself is nil.
		if v == obj && operandNil {
			r.state = resNil
		}
	}
	return fact
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// transferAcquire registers new resources from `v, err := origin(...)`
// style assignments.
func (l *closeLattice) transferAcquire(s *ast.AssignStmt, fact closeFact) {
	if len(s.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	kind, what := l.origin(call)
	if kind == "" {
		return
	}
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	v := l.defOrUse(id)
	if v == nil {
		return
	}
	var errVar *types.Var
	if len(s.Lhs) == 2 {
		if eid, ok := s.Lhs[1].(*ast.Ident); ok && eid.Name != "_" {
			errVar = l.defOrUse(eid)
		}
	}
	fact[v] = &resource{
		state:  resOpen,
		kind:   kind,
		origin: call.Pos(),
		what:   what,
		errVar: errVar,
	}
}

// origin classifies a call as a resource acquisition, returning the
// resource kind and a description ("" when not an origin).
func (l *closeLattice) origin(call *ast.CallExpr) (kind, what string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	info := l.pass.Pkg.Info
	// Method origin: (*http.Client).Do.
	if selection, ok := info.Selections[sel]; ok {
		fn, ok := selection.Obj().(*types.Func)
		if ok && fn.Pkg() != nil && fn.Pkg().Path() == "net/http" && fn.Name() == "Do" {
			return "body", "http response (Body must be closed)"
		}
		return "", ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	switch fn.Pkg().Path() {
	case "net/http":
		switch fn.Name() {
		case "Get", "Head", "Post", "PostForm":
			return "body", "http response (Body must be closed)"
		}
	case "os":
		switch fn.Name() {
		case "Open", "OpenFile", "Create", "CreateTemp":
			return "file", "file"
		}
	case "net":
		switch fn.Name() {
		case "Listen", "ListenTCP", "ListenUnix":
			return "listener", "listener"
		}
	case "time":
		if fn.Name() == "NewTicker" {
			return "ticker", "ticker (Stop releases its timer)"
		}
	}
	return "", ""
}

// transferDefer discharges resources released by a defer: the release runs
// at function exit on every path that executed this statement.
func (l *closeLattice) transferDefer(s *ast.DeferStmt, fact closeFact) {
	// defer v.Close() / defer resp.Body.Close() / defer t.Stop().
	if v := l.releaseTarget(s.Call, fact); v != nil {
		fact[v].state = resHandled
		return
	}
	// defer func() { ...; v.Close(); ... }() — scan the closure body for
	// direct releases, then fall through: a capture is a transfer anyway,
	// and `defer cleanup(f)` consults the callee like any call.
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if v := l.releaseTarget(call, fact); v != nil {
					fact[v].state = resHandled
				}
			}
			return true
		})
	}
	l.transferEscapes(s.Call, fact)
}

// releaseTarget returns the tracked variable a call releases, or nil:
// v.Close(), t.Stop(), resp.Body.Close().
func (l *closeLattice) releaseTarget(call *ast.CallExpr, fact closeFact) *types.Var {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	name := sel.Sel.Name
	if name != "Close" && name != "Stop" {
		return nil
	}
	base := ast.Unparen(sel.X)
	// resp.Body.Close(): unwrap the Body selector.
	if inner, ok := base.(*ast.SelectorExpr); ok && inner.Sel.Name == "Body" {
		base = ast.Unparen(inner.X)
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := l.pass.Pkg.Info.Uses[id].(*types.Var)
	if v == nil {
		return nil
	}
	if r, ok := fact[v]; ok {
		// A body resource is only discharged via resp.Body.Close() (or the
		// generic Close on kinds that define it).
		if r.kind == "ticker" && name != "Stop" {
			return nil
		}
		if r.kind != "ticker" && name != "Close" {
			return nil
		}
		return v
	}
	return nil
}

// transferEscapes discharges resources whose ownership leaves this
// function within node n: direct release calls, returns, stores, channel
// sends, address-taking, closure capture, alias assignment, or passing to
// a callee that takes responsibility. Reads through the resource (selector
// bases like resp.StatusCode) and nil comparisons are not transfers.
func (l *closeLattice) transferEscapes(n ast.Node, fact closeFact) {
	if n == nil || len(fact) == 0 {
		return
	}
	info := l.pass.Pkg.Info
	ast.Inspect(n, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.CallExpr:
			// Release call on a tracked variable.
			if tv := l.releaseTarget(v, fact); tv != nil {
				fact[tv].state = resHandled
				return false
			}
			// Tracked variables passed as plain-ident arguments consult the
			// callee; other argument shapes recurse. The callee expression
			// recurses too (a method receiver is a read, handled below; a
			// closure capture is a transfer, handled by the Ident case).
			l.transferEscapes(v.Fun, fact)
			for i, arg := range v.Args {
				id, ok := ast.Unparen(arg).(*ast.Ident)
				if !ok {
					l.transferEscapes(arg, fact)
					continue
				}
				av, _ := info.Uses[id].(*types.Var)
				if av == nil {
					continue
				}
				r, ok := fact[av]
				if !ok || r.state != resOpen {
					continue
				}
				if l.calleeTakesOwnership(v, i) {
					r.state = resHandled
				}
			}
			return false
		case *ast.BinaryExpr:
			// Comparisons never transfer ownership (`resp == nil`,
			// `f != old`); other binary operators cannot involve resources.
			return false
		case *ast.SelectorExpr:
			// v.Field / v.Method — a read through the resource.
			if _, ok := ast.Unparen(v.X).(*ast.Ident); ok {
				return false
			}
			return true
		case *ast.Ident:
			// Any other appearance of the tracked variable transfers
			// ownership: return value, composite literal, send, assignment
			// alias, &v, capture in a function literal.
			av, _ := info.Uses[v].(*types.Var)
			if av == nil {
				return true
			}
			if r, ok := fact[av]; ok && r.state == resOpen {
				r.state = resHandled
			}
			return true
		}
		return true
	})
}

// calleeTakesOwnership reports whether passing a resource as argument i of
// call discharges the caller's obligation: external callees are trusted;
// module-internal callees are consulted via a one-hop summary (does the
// callee release the parameter, defer its release, return it, store it, or
// hand it onward?).
func (l *closeLattice) calleeTakesOwnership(call *ast.CallExpr, argIdx int) bool {
	site := l.cg.SiteOf(call)
	if site == nil || site.Unresolved || len(site.Callees) == 0 {
		return true // external or untracked: trust it
	}
	for _, callee := range site.Callees {
		if releasesParam(l.cg, callee, argIdx, map[paramKey]bool{}) {
			return true
		}
	}
	return false
}

type paramKey struct {
	fn  *FuncNode
	idx int
}

// releasesParam reports whether fn releases (or takes ownership of) its
// argIdx-th parameter. The scan is syntactic over the callee body:
// param.Close()/Stop()/Body.Close() (direct or deferred), returning the
// parameter, assigning it anywhere, capturing it, or forwarding it to
// another function that does (recursion is memoised; cycles resolve
// optimistically — a mutually recursive releaser is still a releaser).
func releasesParam(cg *CallGraph, fn *FuncNode, argIdx int, seen map[paramKey]bool) bool {
	key := paramKey{fn, argIdx}
	if done, ok := seen[key]; ok {
		return done
	}
	seen[key] = true // optimistic: cycles count as releasing
	body := fn.Body()
	if body == nil {
		seen[key] = true
		return true // bodiless (external linkname etc.): trust
	}
	// Find the parameter object.
	params := fn.Type().Params
	if params == nil {
		seen[key] = false
		return false
	}
	var param *types.Var
	i := 0
	for _, field := range params.List {
		for _, name := range field.Names {
			if i == argIdx {
				param, _ = fn.Pkg.Info.Defs[name].(*types.Var)
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	if param == nil {
		seen[key] = false
		return false
	}
	result := false
	ast.Inspect(body, func(x ast.Node) bool {
		if result {
			return false
		}
		switch v := x.(type) {
		case *ast.CallExpr:
			// param.Close() / param.Stop() / param.Body.Close().
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok &&
				(sel.Sel.Name == "Close" || sel.Sel.Name == "Stop") {
				base := ast.Unparen(sel.X)
				if inner, ok := base.(*ast.SelectorExpr); ok && inner.Sel.Name == "Body" {
					base = ast.Unparen(inner.X)
				}
				if id, ok := base.(*ast.Ident); ok && fn.Pkg.Info.Uses[id] == param {
					result = true
					return false
				}
			}
			// Forwarded to another function in the matching position.
			for ai, arg := range v.Args {
				id, ok := ast.Unparen(arg).(*ast.Ident)
				if !ok || fn.Pkg.Info.Uses[id] != param {
					continue
				}
				site := cg.SiteOf(v)
				if site == nil || site.Unresolved || len(site.Callees) == 0 {
					result = true // handed to an external callee: trusted
					return false
				}
				for _, callee := range site.Callees {
					if releasesParam(cg, callee, ai, seen) {
						result = true
						return false
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range v.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok && fn.Pkg.Info.Uses[id] == param {
					result = true // ownership returns to the caller's caller
					return false
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range v.Rhs {
				if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && fn.Pkg.Info.Uses[id] == param {
					result = true // stored: the store's owner releases it
					return false
				}
			}
		case *ast.CompositeLit:
			for _, elt := range v.Elts {
				e := elt
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if id, ok := ast.Unparen(e).(*ast.Ident); ok && fn.Pkg.Info.Uses[id] == param {
					result = true
					return false
				}
			}
		}
		return true
	})
	seen[key] = result
	return result
}

func (l *closeLattice) defOrUse(id *ast.Ident) *types.Var {
	info := l.pass.Pkg.Info
	if obj, ok := info.Defs[id].(*types.Var); ok {
		return obj
	}
	obj, _ := info.Uses[id].(*types.Var)
	return obj
}

func runCloseCheck(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkCloseBody(pass, fn.Body)
				}
			case *ast.FuncLit:
				// Each literal is its own scope for acquisitions; keep
				// descending so literals nested inside it get their own
				// analysis too.
				checkCloseBody(pass, fn.Body)
			}
			return true
		})
	}
}

// checkCloseBody runs the resource lattice over one function body and
// reports resources still open when a path leaves the function.
func checkCloseBody(pass *Pass, body *ast.BlockStmt) {
	var cg *CallGraph
	if pass.Prog != nil {
		cg = pass.Prog.Graph
	}
	if cg == nil {
		return
	}
	lat := &closeLattice{pass: pass, cg: cg}
	g := BuildCFG(body, pass.Pkg.Info)
	in := Forward(g, lat)
	reported := map[token.Pos]bool{}
	reportOpen := func(fact closeFact, where string) {
		for _, r := range fact {
			if r.state != resOpen || reported[r.origin] {
				continue
			}
			reported[r.origin] = true
			pass.Reportf(r.origin,
				"%s is not released on every path (%s without Close/Stop); release it on error and failover paths too",
				r.what, where)
		}
	}
	Walk(g, lat, in,
		func(n ast.Node, before Fact) {
			if ret, ok := n.(*ast.ReturnStmt); ok {
				// Apply the return's own effects (returning the resource is
				// a transfer) to a private copy before judging it.
				f := lat.Clone(before).(closeFact)
				lat.transferEscapes(ret, f)
				reportOpen(f, "a return path leaves it open")
			}
		},
		func(b *Block, out Fact) {
			if g.FallsOff(b) {
				reportOpen(out.(closeFact), "it is still open at the end of the function")
			}
		})
}
