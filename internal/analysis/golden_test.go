package analysis

import (
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runGolden loads testdata/src/<dir> and checks the produced diagnostics
// against `// want "substring"` comments: every line carrying a want
// comment must produce a diagnostic containing the substring, and no
// diagnostic may appear on a line without one. Multiple want comments on
// one line demand multiple diagnostics.
func runGolden(t *testing.T, dir string, analyzers ...*Analyzer) {
	t.Helper()
	root := filepath.Join("testdata", "src", dir)
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(root + "/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages under %s", root)
	}
	diags := Run(pkgs, analyzers)

	// Collect want expectations from the raw comments of every file.
	wantPat := regexp.MustCompile(`// want "([^"]+)"`)
	type key struct {
		file string
		line int
	}
	wants := map[key][]string{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantPat.FindAllStringSubmatch(c.Text, -1) {
						pos := pkg.Fset.Position(c.Pos())
						rel := relPath(t, pos.Filename)
						wants[key{rel, pos.Line}] = append(wants[key{rel, pos.Line}], m[1])
					}
				}
			}
		}
	}

	matched := map[key]int{}
	for _, d := range diags {
		k := key{d.File, d.Line}
		exp := wants[k]
		if matched[k] < len(exp) && strings.Contains(d.Message, exp[matched[k]]) {
			matched[k]++
			continue
		}
		// Allow out-of-order matching of several wants on one line.
		found := false
		for _, w := range exp {
			if strings.Contains(d.Message, w) {
				matched[k]++
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	for k, exp := range wants {
		if matched[k] < len(exp) {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none",
				k.file, k.line, exp)
		}
	}
}

// relPath mirrors the driver's diagnostic path relativization.
func relPath(t *testing.T, file string) string {
	t.Helper()
	if !filepath.IsAbs(file) {
		return file
	}
	wd, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	rel, err := filepath.Rel(wd, file)
	if err != nil {
		return file
	}
	return rel
}

func TestDetRandGolden(t *testing.T)   { runGolden(t, "detrand", DetRand()) }
func TestLockCheckGolden(t *testing.T) { runGolden(t, "lockcheck", LockCheck()) }
func TestUnitCheckGolden(t *testing.T) { runGolden(t, "unitcheck", UnitCheck()) }
func TestExitCheckGolden(t *testing.T) { runGolden(t, "exitcheck", ExitCheck()) }

func TestTestkitOnlyGolden(t *testing.T) { runGolden(t, "testkitonly", TestkitOnly()) }

func TestTelemetryCheckGolden(t *testing.T) { runGolden(t, "telemetrycheck", TelemetryCheck()) }

func TestGoLeakGolden(t *testing.T)     { runGolden(t, "goleak", GoLeak()) }
func TestCtxFlowGolden(t *testing.T)    { runGolden(t, "ctxflow", CtxFlow()) }
func TestCloseCheckGolden(t *testing.T) { runGolden(t, "closecheck", CloseCheck()) }

// TestHotAllocGolden shells out to `go build -gcflags=-m`; skip when the
// toolchain is unavailable (the analyzer itself degrades the same way).
func TestHotAllocGolden(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	runGolden(t, "hotalloc", HotAlloc())
}
