package analysis

import "strings"

// TestkitOnly returns the chaos-containment analyzer. internal/testkit is
// the deterministic fault-injection harness: it wraps backends, managers
// and workloads with injectable faults. Those wrappers must never be
// constructible from production code, so any import of the package outside
// _test.go files (which this engine never loads) or testkit itself is a
// finding.
func TestkitOnly() *Analyzer {
	a := &Analyzer{
		Name: "testkitonly",
		Doc: "forbid non-test imports of internal/testkit: the fault-injection " +
			"harness may only be used from _test.go files or from within " +
			"internal/testkit itself, so injected chaos can never ship in a " +
			"production binary",
	}
	a.Run = runTestkitOnly
	return a
}

// isTestkitPath reports whether the import path names the testkit package,
// i.e. contains consecutive segments "internal/testkit". This also matches
// fixture trees mirroring the layout under testdata.
func isTestkitPath(path string) bool {
	segs := strings.Split(path, "/")
	for i := 0; i+1 < len(segs); i++ {
		if segs[i] == "internal" && segs[i+1] == "testkit" {
			return true
		}
	}
	return false
}

func runTestkitOnly(pass *Pass) {
	if isTestkitPath(pass.Pkg.Path) {
		return
	}
	// The loader parses only non-test sources, so every import seen here is
	// one a production binary would link.
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if isTestkitPath(path) {
				pass.Reportf(imp.Pos(),
					"%s imported outside _test.go files; fault injection must stay out of production binaries",
					path)
			}
		}
	}
}
