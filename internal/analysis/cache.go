package analysis

// cache.go is the per-package result cache: RunCached short-circuits
// analysis of packages whose inputs are byte-identical to a previous run.
// The cache key covers everything a result can depend on — the engine
// version, the Go toolchain (hotalloc parses the compiler's own escape
// output), the analyzer selection, and the content hashes of the
// package's files. When any selected analyzer requests the whole-program
// view, the key additionally covers every file of the load: call-graph
// facts (spawn helpers, ownership transfer) can change when *other*
// packages change, so the conservative key invalidates everything on any
// edit. Unchanged re-runs — CI retries, back-to-back check.sh — hit on
// every package.
//
// Entries store post-suppression diagnostics with absolute positions;
// finalize relativizes them exactly like fresh results. All cache I/O is
// best-effort: unreadable or corrupt entries count as misses, write
// failures are ignored, and a run with an empty cacheDir never touches
// the filesystem.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
)

// cacheVersion invalidates every entry when the engine's semantics
// change; bump it alongside analyzer behavior changes.
const cacheVersion = "topil-lint-cache-v1"

// CacheStats reports cache effectiveness for one RunCached call.
type CacheStats struct {
	Hits   int `json:"cache_hits"`
	Misses int `json:"cache_misses"`
}

// cachedDiag is the serialized form of one diagnostic: the absolute
// position is kept so a hit replays through finalize unchanged.
type cachedDiag struct {
	Rule    string `json:"rule"`
	Message string `json:"message"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
}

// DefaultCacheDir returns the conventional cache location
// (os.UserCacheDir()/topil-lint), or "" when the platform reports none —
// callers treat "" as "cache disabled".
func DefaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "topil-lint")
}

// RunCached is Run with a per-package result cache under cacheDir. An
// empty cacheDir disables caching entirely (every package is a miss and
// nothing is written).
func RunCached(pkgs []*Package, analyzers []*Analyzer, cacheDir string) ([]Diagnostic, CacheStats) {
	var stats CacheStats
	if cacheDir == "" {
		stats.Misses = len(pkgs)
		return Run(pkgs, analyzers), stats
	}

	progHash := ""
	for _, a := range analyzers {
		if a.NeedsProgram {
			progHash = programHash(pkgs)
			break
		}
	}

	keys := make([]string, len(pkgs))
	skip := make([]bool, len(pkgs))
	perPkg := make([][]Diagnostic, len(pkgs))
	for i, p := range pkgs {
		key, err := packageKey(p, analyzers, progHash)
		if err != nil {
			stats.Misses++
			continue // unhashable (file vanished mid-run): recompute
		}
		keys[i] = key
		if ds, ok := readCacheEntry(cacheDir, key); ok {
			perPkg[i], skip[i] = ds, true
			stats.Hits++
		} else {
			stats.Misses++
		}
	}

	fresh := runAll(pkgs, analyzers, skip)
	for i := range pkgs {
		if skip[i] {
			continue
		}
		perPkg[i] = fresh[i]
		if keys[i] != "" {
			writeCacheEntry(cacheDir, keys[i], fresh[i])
		}
	}

	var diags []Diagnostic
	for _, d := range perPkg {
		diags = append(diags, d...)
	}
	finalize(diags)
	return diags, stats
}

// packageKey derives the cache key of one package under one analyzer
// selection. progHash is non-empty when whole-program analyzers run.
func packageKey(p *Package, analyzers []*Analyzer, progHash string) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n%s/%s\n", cacheVersion, runtime.Version(), runtime.GOOS, runtime.GOARCH)
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	sort.Strings(names)
	for _, n := range names {
		io.WriteString(h, n+",")
	}
	fmt.Fprintf(h, "\n%s\n%s\n", p.Path, progHash)
	fh, err := filesHash(p)
	if err != nil {
		return "", err
	}
	io.WriteString(h, fh)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// filesHash hashes the package's source files (name + content), in
// stable file order.
func filesHash(p *Package) (string, error) {
	h := sha256.New()
	for _, name := range sourceFiles(p) {
		data, err := os.ReadFile(name)
		if err != nil {
			return "", err
		}
		sum := sha256.Sum256(data)
		fmt.Fprintf(h, "%s %s\n", filepath.Base(name), hex.EncodeToString(sum[:]))
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// sourceFiles lists the absolute file names behind p.Files, sorted.
func sourceFiles(p *Package) []string {
	var names []string
	for _, f := range p.Files {
		names = append(names, p.Fset.Position(f.Pos()).Filename)
	}
	sort.Strings(names)
	return names
}

// programHash covers every file of every package in the load: the
// conservative dependency closure for whole-program analyzers.
func programHash(pkgs []*Package) string {
	entries := make([]string, 0, len(pkgs))
	for _, p := range pkgs {
		fh, err := filesHash(p)
		if err != nil {
			fh = "unhashable:" + p.Path
		}
		entries = append(entries, p.Path+" "+fh)
	}
	sort.Strings(entries)
	h := sha256.New()
	for _, e := range entries {
		io.WriteString(h, e+"\n")
	}
	return hex.EncodeToString(h.Sum(nil))
}

// readCacheEntry loads and revives one package's diagnostics; any
// problem reads as a miss.
func readCacheEntry(cacheDir, key string) ([]Diagnostic, bool) {
	data, err := os.ReadFile(cachePath(cacheDir, key))
	if err != nil {
		return nil, false
	}
	var stored []cachedDiag
	if err := json.Unmarshal(data, &stored); err != nil {
		return nil, false
	}
	diags := make([]Diagnostic, len(stored))
	for i, c := range stored {
		diags[i] = Diagnostic{
			Rule:    c.Rule,
			Message: c.Message,
			Position: token.Position{
				Filename: c.File,
				Line:     c.Line,
				Column:   c.Col,
			},
		}
	}
	return diags, true
}

// writeCacheEntry persists one package's diagnostics, atomically enough
// for a cache (rename over a temp file); failures are silent.
func writeCacheEntry(cacheDir, key string, diags []Diagnostic) {
	stored := make([]cachedDiag, len(diags))
	for i, d := range diags {
		stored[i] = cachedDiag{
			Rule:    d.Rule,
			Message: d.Message,
			File:    d.Position.Filename,
			Line:    d.Position.Line,
			Col:     d.Position.Column,
		}
	}
	data, err := json.Marshal(stored)
	if err != nil {
		return
	}
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(cacheDir, "entry-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, cachePath(cacheDir, key)); err != nil {
		os.Remove(name)
	}
}

func cachePath(cacheDir, key string) string {
	return filepath.Join(cacheDir, key+".json")
}
