package analysis

// ctxflow.go: request-scoped code must thread context.Context correctly.
// Four rules, all per-function over go/types:
//
//  1. A context.Context parameter must come first (right after the
//     receiver), matching the stdlib convention — mixed orders make it
//     too easy to drop the caller's deadline on the floor.
//  2. Request-scoped functions (those that receive a ctx or an
//     *http.Request) must not mint fresh roots with context.Background()
//     or context.TODO(): deriving from the incoming context is what makes
//     cancellation and deadlines propagate. Detaching intentionally is a
//     //lint:ignore with a reason.
//  3. http.NewRequest produces a context-less request; use
//     http.NewRequestWithContext so the caller's cancellation reaches the
//     transport.
//  4. Inside a function that receives a ctx, a blocking channel send or
//     receive outside any select cannot be interrupted; wrap it in a
//     select that also consults ctx.Done(). Likewise an (*os.File).Sync —
//     a journal fsync on the request path — must be preceded by a
//     cancellation consult (ctx.Err() or ctx.Done()) in the same function.
//
// Applicability boundary (docs/ANALYSIS.md): the analyzer reasons about
// one function at a time; it cannot see a context stashed in a struct
// field, nor prove that a channel operation is non-blocking (a buffered
// channel with guaranteed capacity still gets flagged — suppress with a
// reason if the invariant holds). Lifecycle roots (constructors, mains,
// background daemons without a ctx parameter) are deliberately outside
// the rules: no ctx parameter, no obligations.

import (
	"go/ast"
	"go/types"
)

// CtxFlow returns the context-propagation analyzer.
func CtxFlow() *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc: "context.Context parameters come first; request-scoped code " +
			"(ctx or *http.Request in scope) must not call " +
			"context.Background()/TODO(); http.NewRequest must be " +
			"NewRequestWithContext; blocking channel ops and fsyncs in " +
			"ctx-bearing functions must consult cancellation",
		Run: runCtxFlow,
	}
}

func runCtxFlow(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkCtxFunc(pass, fn.Type, fn.Body)
				}
			case *ast.FuncLit:
				checkCtxFunc(pass, fn.Type, fn.Body)
				return false // checkCtxFunc recurses into nested literals
			}
			return true
		})
	}
}

// isContextType matches the context.Context interface type.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isHTTPRequestPtr matches *net/http.Request.
func isHTTPRequestPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

// ctxParams classifies the parameter list: the index of the first
// context.Context parameter (-1 if none), whether any *http.Request
// parameter exists, and the ctx parameter objects (for consult checks).
func ctxParams(pass *Pass, ft *ast.FuncType) (ctxIndex int, hasReq bool, ctxVars map[types.Object]bool) {
	ctxIndex = -1
	if ft.Params == nil {
		return
	}
	i := 0
	for _, field := range ft.Params.List {
		tv, ok := pass.Pkg.Info.Types[field.Type]
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if ok && isContextType(tv.Type) {
			if ctxIndex < 0 {
				ctxIndex = i
			}
			for _, name := range field.Names {
				if obj := pass.Pkg.Info.Defs[name]; obj != nil {
					if ctxVars == nil {
						ctxVars = map[types.Object]bool{}
					}
					ctxVars[obj] = true
				}
			}
		}
		if ok && isHTTPRequestPtr(tv.Type) {
			hasReq = true
		}
		i += n
	}
	return
}

// checkCtxFunc applies the four rules to one function. Nested literals
// are visited here (rules 2–4 depend on the *enclosing* signature, and a
// literal inside a request-scoped function inherits its obligations only
// if it captures the ctx — we analyse each literal against its own
// signature instead, the conservative per-function boundary).
func checkCtxFunc(pass *Pass, ft *ast.FuncType, body *ast.BlockStmt) {
	ctxIndex, hasReq, ctxVars := ctxParams(pass, ft)

	// Rule 1: ctx must be the first parameter.
	if ctxIndex > 0 {
		pass.Reportf(ft.Params.Pos(),
			"context.Context must be the first parameter (found at position %d); keep ctx first so call sites never drop it",
			ctxIndex+1)
	}

	requestScoped := ctxIndex >= 0 || hasReq

	// consultPositions collects where ctx.Done()/ctx.Err() are consulted
	// (for the fsync-ordering rule).
	var consults []int

	// First pass: find cancellation consults.
	if len(ctxVars) > 0 {
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Done" && sel.Sel.Name != "Err") {
				return true
			}
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if obj := pass.Pkg.Info.Uses[id]; obj != nil && ctxVars[obj] {
					consults = append(consults, pass.Pkg.Fset.Position(call.Pos()).Offset)
				}
			}
			return true
		})
	}
	consultedBefore := func(pos int) bool {
		for _, c := range consults {
			if c < pos {
				return true
			}
		}
		return false
	}

	// Second pass: the rules themselves. selectDepth tracks whether we are
	// lexically inside a select statement (comm clauses and their bodies):
	// a send/receive that is a select comm is by construction cancellable
	// when a Done case exists, and flagging case bodies separately would
	// double-report the same wait point.
	var walk func(n ast.Node, inSelect bool)
	walk = func(n ast.Node, inSelect bool) {
		if n == nil {
			return
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			checkCtxFunc(pass, s.Type, s.Body)
			return
		case *ast.SelectStmt:
			for _, cl := range s.Body.List {
				cc := cl.(*ast.CommClause)
				if cc.Comm != nil {
					walk(cc.Comm, true)
				}
				for _, b := range cc.Body {
					walk(b, true)
				}
			}
			return
		case *ast.CallExpr:
			checkCtxCall(pass, s, requestScoped, ctxVars, consultedBefore)
		case *ast.SendStmt:
			if len(ctxVars) > 0 && !inSelect {
				pass.Reportf(s.Pos(),
					"blocking channel send in a ctx-bearing function outside select; use `select { case ch <- v: case <-ctx.Done(): }`")
			}
		case *ast.UnaryExpr:
			if s.Op.String() == "<-" && len(ctxVars) > 0 && !inSelect && !isDoneChan(pass, ctxVars, s.X) {
				pass.Reportf(s.Pos(),
					"blocking channel receive in a ctx-bearing function outside select; use `select { case v := <-ch: case <-ctx.Done(): }`")
			}
		}
		for _, c := range childNodes(n) {
			walk(c, inSelect)
		}
	}
	walk(body, false)
}

// checkCtxCall enforces rules 2 (no fresh roots in request-scoped code),
// 3 (NewRequestWithContext) and the fsync half of rule 4.
func checkCtxCall(pass *Pass, call *ast.CallExpr, requestScoped bool,
	ctxVars map[types.Object]bool, consultedBefore func(int) bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	// Method calls: (*os.File).Sync ordering in ctx-bearing functions.
	if selection, ok := pass.Pkg.Info.Selections[sel]; ok {
		if len(ctxVars) > 0 && sel.Sel.Name == "Sync" {
			if fn, ok := selection.Obj().(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "os" {
				if !consultedBefore(pass.Pkg.Fset.Position(call.Pos()).Offset) {
					pass.Reportf(call.Pos(),
						"fsync on the request path without consulting cancellation first; check ctx.Err() before paying the sync cost")
				}
			}
		}
		return
	}
	// Package-qualified calls.
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "context":
		if requestScoped && (fn.Name() == "Background" || fn.Name() == "TODO") {
			pass.Reportf(call.Pos(),
				"context.%s() in request-scoped code severs cancellation; derive from the incoming context (use //lint:ignore ctxflow <reason> for an intentional detach)",
				fn.Name())
		}
	case "net/http":
		if fn.Name() == "NewRequest" {
			pass.Reportf(call.Pos(),
				"http.NewRequest builds a context-less request; use http.NewRequestWithContext so cancellation reaches the transport")
		}
	}
}

// isDoneChan reports whether e is ctx.Done() for a known ctx variable —
// receiving from it *is* the cancellation consult.
func isDoneChan(pass *Pass, ctxVars map[types.Object]bool, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Pkg.Info.Uses[id]
	return obj != nil && ctxVars[obj]
}

// childNodes returns the direct AST children of n (a minimal generic
// walker; ast.Inspect cannot carry the inSelect flag).
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	firstLevel := true
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if firstLevel {
			firstLevel = false
			return true
		}
		out = append(out, c)
		return false
	})
	return out
}
