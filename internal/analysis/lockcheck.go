package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockCheck returns the mutex-hygiene analyzer. It enforces two families
// of invariants on every package:
//
//   - No copies: types whose value (transitively) contains a sync.Mutex or
//     sync.RWMutex must not be used as value receivers, passed or returned
//     by value, or copied by assignment — a copied lock guards nothing.
//   - No leaks: every mu.Lock()/RLock() must be released in the acquiring
//     function, either by a defer or by an Unlock on every return path.
//     Functions that hand a held lock to their caller (or release one the
//     caller acquired) are the exception and must say so with
//     //lint:ignore lockcheck <reason>.
func LockCheck() *Analyzer {
	a := &Analyzer{
		Name: "lockcheck",
		Doc: "forbid value receivers, by-value parameters and copies of types " +
			"containing sync.Mutex/sync.RWMutex, and require every Lock/RLock " +
			"to be paired with an Unlock via defer or on all return paths of " +
			"the acquiring function",
	}
	a.Run = runLockCheck
	return a
}

func runLockCheck(pass *Pass) {
	lc := &lockChecker{pass: pass, seen: map[types.Type]bool{}}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			lc.checkReceiver(fd)
			lc.checkSignature(fd.Type)
			if fd.Body != nil {
				lc.checkBody(fd.Body)
			}
		}
		// Copy checks walk everything, including expressions outside
		// function bodies (package-level var initialisers).
		ast.Inspect(f, lc.checkCopies)
		// Function literals get the same body analysis as declarations.
		ast.Inspect(f, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				lc.checkSignature(fl.Type)
				lc.checkBody(fl.Body)
			}
			return true
		})
	}
}

type lockChecker struct {
	pass *Pass
	seen map[types.Type]bool // containsLock memo
}

// containsLock reports whether a value of type t transitively embeds a
// sync.Mutex or sync.RWMutex, so that copying the value copies lock state.
func (lc *lockChecker) containsLock(t types.Type) bool {
	if t == nil {
		return false
	}
	if v, ok := lc.seen[t]; ok {
		return v
	}
	lc.seen[t] = false // break reference cycles
	result := false
	switch u := t.(type) {
	case *types.Named:
		if obj := u.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			if obj.Name() == "Mutex" || obj.Name() == "RWMutex" {
				result = true
				break
			}
		}
		result = lc.containsLock(u.Underlying())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lc.containsLock(u.Field(i).Type()) {
				result = true
				break
			}
		}
	case *types.Array:
		result = lc.containsLock(u.Elem())
	}
	lc.seen[t] = result
	return result
}

// typeOf resolves the type of e, or nil when type-checking failed there.
func (lc *lockChecker) typeOf(e ast.Expr) types.Type {
	if tv, ok := lc.pass.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// checkReceiver flags value receivers on lock-containing types.
func (lc *lockChecker) checkReceiver(fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return
	}
	field := fd.Recv.List[0]
	t := lc.typeOf(field.Type)
	if t == nil {
		return
	}
	if _, isPtr := t.(*types.Pointer); isPtr {
		return
	}
	if lc.containsLock(t) {
		lc.pass.Reportf(field.Pos(),
			"method %s has a value receiver of type %s which contains a mutex; use a pointer receiver",
			fd.Name.Name, types.TypeString(t, types.RelativeTo(lc.pass.Pkg.Types)))
	}
}

// checkSignature flags by-value lock-containing parameters and results.
func (lc *lockChecker) checkSignature(ft *ast.FuncType) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := lc.typeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.(*types.Pointer); isPtr {
				continue
			}
			if lc.containsLock(t) {
				lc.pass.Reportf(field.Pos(),
					"%s of type %s contains a mutex and is passed by value; use a pointer",
					what, types.TypeString(t, types.RelativeTo(lc.pass.Pkg.Types)))
			}
		}
	}
	check(ft.Params, "parameter")
	check(ft.Results, "result")
}

// fresh reports whether e denotes a brand-new value (no prior lock state
// to copy): composite literals, calls, conversions and parenthesised
// forms thereof.
func fresh(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CompositeLit, *ast.CallExpr:
		return true
	case *ast.ParenExpr:
		return fresh(v.X)
	}
	return false
}

// checkCopies flags assignments and range clauses that copy lock state.
// (By-value parameters and results are reported at the signature instead,
// so call sites and returns are not double-flagged here.)
func (lc *lockChecker) checkCopies(n ast.Node) bool {
	report := func(e ast.Expr, t types.Type) {
		lc.pass.Reportf(e.Pos(),
			"copies lock state: value of type %s contains a mutex; copy a pointer instead",
			types.TypeString(t, types.RelativeTo(lc.pass.Pkg.Types)))
	}
	switch st := n.(type) {
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			if fresh(rhs) {
				continue
			}
			if t := lc.typeOf(rhs); t != nil && lc.containsLock(t) {
				report(rhs, t)
			}
		}
	case *ast.GenDecl:
		for _, spec := range st.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, rhs := range vs.Values {
				if fresh(rhs) {
					continue
				}
				if t := lc.typeOf(rhs); t != nil && lc.containsLock(t) {
					report(rhs, t)
				}
			}
		}
	case *ast.RangeStmt:
		if st.Value != nil {
			t := lc.typeOf(st.Value)
			if t == nil {
				// A `for _, v := range xs` value lands in Defs, not Types.
				if id, ok := st.Value.(*ast.Ident); ok {
					if obj := lc.pass.Pkg.Info.Defs[id]; obj != nil {
						t = obj.Type()
					}
				}
			}
			if t != nil && lc.containsLock(t) {
				report(st.Value, t)
			}
		}
	}
	return true
}

// ---- Lock/Unlock pairing ------------------------------------------------

// lockOpKind classifies the four sync (R)Lock/(R)Unlock methods.
type lockOpKind int

const (
	opLock lockOpKind = iota
	opUnlock
	opRLock
	opRUnlock
	opTryLock
)

// lockOp matches a call like x.mu.Lock() where the method genuinely comes
// from package sync (directly or via embedding), returning a stable key
// for the lock expression. ok is false for anything else.
func (lc *lockChecker) lockOp(call *ast.CallExpr) (key string, kind lockOpKind, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock":
		kind = opLock
	case "Unlock":
		kind = opUnlock
	case "RLock":
		kind = opRLock
	case "RUnlock":
		kind = opRUnlock
	case "TryLock", "TryRLock":
		kind = opTryLock
	default:
		return "", 0, false
	}
	selection, found := lc.pass.Pkg.Info.Selections[sel]
	if !found {
		// Unresolved (type error) or package-qualified: not a method call.
		return "", 0, false
	}
	obj := selection.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", 0, false
	}
	key = types.ExprString(sel.X)
	if kind == opRLock || kind == opRUnlock {
		key += "/R"
	}
	return key, kind, true
}

// lockState is the abstract state of the pairing analysis: which lock keys
// are held, which have a pending deferred release, and which are managed
// by the caller (first seen being unlocked, a documented handoff pattern —
// those keys are exempt in this function).
type lockState struct {
	held     map[string]token.Pos
	deferred map[string]bool
	external map[string]bool
}

func newLockState() *lockState {
	return &lockState{
		held:     map[string]token.Pos{},
		deferred: map[string]bool{},
		external: map[string]bool{},
	}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	for k := range s.external {
		c.external[k] = true
	}
	return c
}

// lockLattice plugs the pairing analysis into the shared dataflow
// framework (cfg.go + dataflow.go): a lock counts as held only if held on
// every path into a point (Join intersects), while defers and
// caller-managed marks persist if any path set them (Join unions).
type lockLattice struct {
	lc *lockChecker
}

func (l *lockLattice) Entry() Fact       { return newLockState() }
func (l *lockLattice) Clone(f Fact) Fact { return f.(*lockState).clone() }

func (l *lockLattice) Transfer(n ast.Node, f Fact) Fact {
	st := f.(*lockState)
	switch s := n.(type) {
	case *ast.DeferStmt:
		l.lc.applyDefer(s, st)
	case *ast.GoStmt:
		// The spawned goroutine has its own discipline; literals are
		// analysed separately.
	default:
		forEachCall(n, func(call *ast.CallExpr) { l.lc.applyCall(call, st) })
	}
	return st
}

func (l *lockLattice) Join(a, b Fact) Fact {
	x, y := a.(*lockState), b.(*lockState)
	out := newLockState()
	for k, pos := range x.held {
		if _, ok := y.held[k]; ok {
			out.held[k] = pos
		}
	}
	for k := range x.deferred {
		out.deferred[k] = true
	}
	for k := range y.deferred {
		out.deferred[k] = true
	}
	for k := range x.external {
		out.external[k] = true
	}
	for k := range y.external {
		out.external[k] = true
	}
	return out
}

func (l *lockLattice) Equal(a, b Fact) bool {
	x, y := a.(*lockState), b.(*lockState)
	if len(x.held) != len(y.held) || len(x.deferred) != len(y.deferred) || len(x.external) != len(y.external) {
		return false
	}
	for k, pos := range x.held {
		if y.held[k] != pos {
			return false
		}
	}
	for k := range x.deferred {
		if !y.deferred[k] {
			return false
		}
	}
	for k := range x.external {
		if !y.external[k] {
			return false
		}
	}
	return true
}

// forEachCall visits every call expression inside n in preorder, without
// descending into nested function literals (they are analysed separately).
func forEachCall(n ast.Node, fn func(*ast.CallExpr)) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch c := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			fn(c)
		}
		return true
	})
}

// checkBody runs the pairing analysis over one function body on the shared
// CFG/dataflow core. Nested function literals are skipped here;
// runLockCheck analyses them separately with their own state.
func (lc *lockChecker) checkBody(body *ast.BlockStmt) {
	g := BuildCFG(body, lc.pass.Pkg.Info)
	lat := &lockLattice{lc: lc}
	in := Forward(g, lat)

	reported := map[token.Pos]bool{}
	leak := func(s *lockState, where string) {
		for k, pos := range s.held {
			if s.deferred[k] || s.external[k] || reported[pos] {
				continue
			}
			reported[pos] = true
			lc.pass.Reportf(pos,
				"%s is not released %s; unlock on every path or defer the unlock (use //lint:ignore lockcheck for intentional handoff)",
				lockName(k), where)
		}
	}
	Walk(g, lat, in,
		func(n ast.Node, before Fact) {
			st := before.(*lockState)
			if _, ok := n.(*ast.ReturnStmt); ok {
				leak(st, "on a return path")
				return
			}
			if _, ok := n.(*ast.DeferStmt); ok {
				return
			}
			if _, ok := n.(*ast.GoStmt); ok {
				return
			}
			// Deadlock reports need the state *before* the call; the
			// fixpoint has converged, so this fires exactly once per site.
			cur := st.clone()
			forEachCall(n, func(call *ast.CallExpr) {
				key, kind, ok := lc.lockOp(call)
				if ok && kind == opLock && !cur.external[key] {
					if _, already := cur.held[key]; already {
						lc.pass.Reportf(call.Pos(), "%s is already held here; this Lock deadlocks", lockName(key))
					}
					if _, read := cur.held[key+"/R"]; read && !cur.external[key+"/R"] {
						lc.pass.Reportf(call.Pos(),
							"%s is still held here; upgrading an RLock to a Lock deadlocks with concurrent readers — release the RLock first",
							lockName(key+"/R"))
					}
				}
				lc.applyCall(call, cur)
			})
		},
		func(b *Block, out Fact) {
			if g.FallsOff(b) {
				leak(out.(*lockState), "by the end of the function")
			}
		})
}

// lockName renders a state key back into the source-level call.
func lockName(key string) string {
	if k, ok := cutSuffix(key, "/R"); ok {
		return k + ".RLock()"
	}
	return key + ".Lock()"
}

func cutSuffix(s, suffix string) (string, bool) {
	if len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix {
		return s[:len(s)-len(suffix)], true
	}
	return s, false
}

// applyDefer records deferred releases: a direct defer mu.Unlock(), or a
// deferred function literal that releases somewhere in its body.
func (lc *lockChecker) applyDefer(s *ast.DeferStmt, st *lockState) {
	if key, kind, ok := lc.lockOp(s.Call); ok && (kind == opUnlock || kind == opRUnlock) {
		st.deferred[key] = true
		return
	}
	if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if key, kind, ok := lc.lockOp(call); ok && (kind == opUnlock || kind == opRUnlock) {
					st.deferred[key] = true
				}
			}
			return true
		})
	}
}

// applyCall updates the state for a (potential) lock operation. Reporting
// happens in checkBody's Walk pass, never here: this runs repeatedly
// during the fixpoint iteration.
func (lc *lockChecker) applyCall(call *ast.CallExpr, st *lockState) {
	key, kind, ok := lc.lockOp(call)
	if !ok {
		return
	}
	switch kind {
	case opLock, opRLock:
		st.held[key] = call.Pos()
	case opUnlock, opRUnlock:
		if _, ok := st.held[key]; !ok && !st.deferred[key] {
			// Releasing a lock this function never took: the caller
			// manages it. Exempt the key for the rest of the walk.
			st.external[key] = true
			return
		}
		delete(st.held, key)
	case opTryLock:
		// Conditional acquisition; exempt the key rather than guess.
		st.external[key] = true
	}
}
