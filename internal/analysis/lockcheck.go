package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockCheck returns the mutex-hygiene analyzer. It enforces two families
// of invariants on every package:
//
//   - No copies: types whose value (transitively) contains a sync.Mutex or
//     sync.RWMutex must not be used as value receivers, passed or returned
//     by value, or copied by assignment — a copied lock guards nothing.
//   - No leaks: every mu.Lock()/RLock() must be released in the acquiring
//     function, either by a defer or by an Unlock on every return path.
//     Functions that hand a held lock to their caller (or release one the
//     caller acquired) are the exception and must say so with
//     //lint:ignore lockcheck <reason>.
func LockCheck() *Analyzer {
	a := &Analyzer{
		Name: "lockcheck",
		Doc: "forbid value receivers, by-value parameters and copies of types " +
			"containing sync.Mutex/sync.RWMutex, and require every Lock/RLock " +
			"to be paired with an Unlock via defer or on all return paths of " +
			"the acquiring function",
	}
	a.Run = runLockCheck
	return a
}

func runLockCheck(pass *Pass) {
	lc := &lockChecker{pass: pass, seen: map[types.Type]bool{}}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			lc.checkReceiver(fd)
			lc.checkSignature(fd.Type)
			if fd.Body != nil {
				lc.checkBody(fd.Body)
			}
		}
		// Copy checks walk everything, including expressions outside
		// function bodies (package-level var initialisers).
		ast.Inspect(f, lc.checkCopies)
		// Function literals get the same body analysis as declarations.
		ast.Inspect(f, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				lc.checkSignature(fl.Type)
				lc.checkBody(fl.Body)
			}
			return true
		})
	}
}

type lockChecker struct {
	pass *Pass
	seen map[types.Type]bool // containsLock memo
}

// containsLock reports whether a value of type t transitively embeds a
// sync.Mutex or sync.RWMutex, so that copying the value copies lock state.
func (lc *lockChecker) containsLock(t types.Type) bool {
	if t == nil {
		return false
	}
	if v, ok := lc.seen[t]; ok {
		return v
	}
	lc.seen[t] = false // break reference cycles
	result := false
	switch u := t.(type) {
	case *types.Named:
		if obj := u.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			if obj.Name() == "Mutex" || obj.Name() == "RWMutex" {
				result = true
				break
			}
		}
		result = lc.containsLock(u.Underlying())
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lc.containsLock(u.Field(i).Type()) {
				result = true
				break
			}
		}
	case *types.Array:
		result = lc.containsLock(u.Elem())
	}
	lc.seen[t] = result
	return result
}

// typeOf resolves the type of e, or nil when type-checking failed there.
func (lc *lockChecker) typeOf(e ast.Expr) types.Type {
	if tv, ok := lc.pass.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// checkReceiver flags value receivers on lock-containing types.
func (lc *lockChecker) checkReceiver(fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return
	}
	field := fd.Recv.List[0]
	t := lc.typeOf(field.Type)
	if t == nil {
		return
	}
	if _, isPtr := t.(*types.Pointer); isPtr {
		return
	}
	if lc.containsLock(t) {
		lc.pass.Reportf(field.Pos(),
			"method %s has a value receiver of type %s which contains a mutex; use a pointer receiver",
			fd.Name.Name, types.TypeString(t, types.RelativeTo(lc.pass.Pkg.Types)))
	}
}

// checkSignature flags by-value lock-containing parameters and results.
func (lc *lockChecker) checkSignature(ft *ast.FuncType) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := lc.typeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.(*types.Pointer); isPtr {
				continue
			}
			if lc.containsLock(t) {
				lc.pass.Reportf(field.Pos(),
					"%s of type %s contains a mutex and is passed by value; use a pointer",
					what, types.TypeString(t, types.RelativeTo(lc.pass.Pkg.Types)))
			}
		}
	}
	check(ft.Params, "parameter")
	check(ft.Results, "result")
}

// fresh reports whether e denotes a brand-new value (no prior lock state
// to copy): composite literals, calls, conversions and parenthesised
// forms thereof.
func fresh(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CompositeLit, *ast.CallExpr:
		return true
	case *ast.ParenExpr:
		return fresh(v.X)
	}
	return false
}

// checkCopies flags assignments and range clauses that copy lock state.
// (By-value parameters and results are reported at the signature instead,
// so call sites and returns are not double-flagged here.)
func (lc *lockChecker) checkCopies(n ast.Node) bool {
	report := func(e ast.Expr, t types.Type) {
		lc.pass.Reportf(e.Pos(),
			"copies lock state: value of type %s contains a mutex; copy a pointer instead",
			types.TypeString(t, types.RelativeTo(lc.pass.Pkg.Types)))
	}
	switch st := n.(type) {
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			if fresh(rhs) {
				continue
			}
			if t := lc.typeOf(rhs); t != nil && lc.containsLock(t) {
				report(rhs, t)
			}
		}
	case *ast.GenDecl:
		for _, spec := range st.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, rhs := range vs.Values {
				if fresh(rhs) {
					continue
				}
				if t := lc.typeOf(rhs); t != nil && lc.containsLock(t) {
					report(rhs, t)
				}
			}
		}
	case *ast.RangeStmt:
		if st.Value != nil {
			t := lc.typeOf(st.Value)
			if t == nil {
				// A `for _, v := range xs` value lands in Defs, not Types.
				if id, ok := st.Value.(*ast.Ident); ok {
					if obj := lc.pass.Pkg.Info.Defs[id]; obj != nil {
						t = obj.Type()
					}
				}
			}
			if t != nil && lc.containsLock(t) {
				report(st.Value, t)
			}
		}
	}
	return true
}

// ---- Lock/Unlock pairing ------------------------------------------------

// lockOpKind classifies the four sync (R)Lock/(R)Unlock methods.
type lockOpKind int

const (
	opLock lockOpKind = iota
	opUnlock
	opRLock
	opRUnlock
	opTryLock
)

// lockOp matches a call like x.mu.Lock() where the method genuinely comes
// from package sync (directly or via embedding), returning a stable key
// for the lock expression. ok is false for anything else.
func (lc *lockChecker) lockOp(call *ast.CallExpr) (key string, kind lockOpKind, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock":
		kind = opLock
	case "Unlock":
		kind = opUnlock
	case "RLock":
		kind = opRLock
	case "RUnlock":
		kind = opRUnlock
	case "TryLock", "TryRLock":
		kind = opTryLock
	default:
		return "", 0, false
	}
	selection, found := lc.pass.Pkg.Info.Selections[sel]
	if !found {
		// Unresolved (type error) or package-qualified: not a method call.
		return "", 0, false
	}
	obj := selection.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", 0, false
	}
	key = types.ExprString(sel.X)
	if kind == opRLock || kind == opRUnlock {
		key += "/R"
	}
	return key, kind, true
}

// lockState is the abstract state of the pairing walker: which lock keys
// are held, which have a pending deferred release, and which are managed
// by the caller (first seen being unlocked, a documented handoff pattern —
// those keys are exempt in this function).
type lockState struct {
	held       map[string]token.Pos
	deferred   map[string]bool
	external   map[string]bool
	terminated bool
}

func newLockState() *lockState {
	return &lockState{
		held:     map[string]token.Pos{},
		deferred: map[string]bool{},
		external: map[string]bool{},
	}
}

func (s *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	for k := range s.external {
		c.external[k] = true
	}
	c.terminated = s.terminated
	return c
}

// merge combines the states of alternative branches: a lock counts as held
// only if held on every live branch (leaks are reported at returns inside
// the branches themselves), while defers and caller-managed marks persist
// if any branch set them.
func merge(states ...*lockState) *lockState {
	var live []*lockState
	for _, s := range states {
		if s != nil && !s.terminated {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		s := newLockState()
		s.terminated = true
		return s
	}
	out := live[0].clone()
	for k, pos := range live[0].held {
		heldEverywhere := true
		for _, s := range live[1:] {
			if _, ok := s.held[k]; !ok {
				heldEverywhere = false
				break
			}
		}
		if !heldEverywhere {
			delete(out.held, k)
		} else {
			out.held[k] = pos
		}
	}
	for _, s := range live[1:] {
		for k := range s.deferred {
			out.deferred[k] = true
		}
		for k := range s.external {
			out.external[k] = true
		}
	}
	return out
}

// checkBody runs the pairing walker over one function body. Nested
// function literals are skipped here; runLockCheck analyses them
// separately with their own state.
func (lc *lockChecker) checkBody(body *ast.BlockStmt) {
	reported := map[token.Pos]bool{}
	leak := func(s *lockState, where string) {
		for k, pos := range s.held {
			if s.deferred[k] || s.external[k] || reported[pos] {
				continue
			}
			reported[pos] = true
			lc.pass.Reportf(pos,
				"%s is not released %s; unlock on every path or defer the unlock (use //lint:ignore lockcheck for intentional handoff)",
				lockName(k), where)
		}
	}
	final := lc.walkStmts(body.List, newLockState(), leak)
	if !final.terminated {
		leak(final, "by the end of the function")
	}
}

// lockName renders a state key back into the source-level call.
func lockName(key string) string {
	if k, ok := cutSuffix(key, "/R"); ok {
		return k + ".RLock()"
	}
	return key + ".Lock()"
}

func cutSuffix(s, suffix string) (string, bool) {
	if len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix {
		return s[:len(s)-len(suffix)], true
	}
	return s, false
}

// walkStmts interprets a statement list, tracking lock state. leak is
// called at every exit point with the state at that point.
func (lc *lockChecker) walkStmts(stmts []ast.Stmt, st *lockState, leak func(*lockState, string)) *lockState {
	for _, stmt := range stmts {
		st = lc.walkStmt(stmt, st, leak)
		if st.terminated {
			break
		}
	}
	return st
}

func (lc *lockChecker) walkStmt(stmt ast.Stmt, st *lockState, leak func(*lockState, string)) *lockState {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		return lc.walkStmts(s.List, st, leak)

	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			lc.applyCall(call, st)
		}

	case *ast.DeferStmt:
		if key, kind, ok := lc.lockOp(s.Call); ok && (kind == opUnlock || kind == opRUnlock) {
			st.deferred[key] = true
			break
		}
		// defer func() { ...; mu.Unlock() }() also releases.
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if key, kind, ok := lc.lockOp(call); ok && (kind == opUnlock || kind == opRUnlock) {
						st.deferred[key] = true
					}
				}
				return true
			})
		}

	case *ast.ReturnStmt:
		leak(st, "on a return path")
		st = st.clone()
		st.terminated = true
		return st

	case *ast.IfStmt:
		if s.Init != nil {
			st = lc.walkStmt(s.Init, st, leak)
		}
		then := lc.walkStmts(s.Body.List, st.clone(), leak)
		els := st.clone()
		if s.Else != nil {
			els = lc.walkStmt(s.Else, st.clone(), leak)
		}
		return merge(then, els)

	case *ast.ForStmt:
		if s.Init != nil {
			st = lc.walkStmt(s.Init, st, leak)
		}
		// The body must be lock-neutral across iterations; reports inside
		// still fire. After the loop, keep the entry state (conservative:
		// a `for {}` with break is treated as falling through).
		lc.walkStmts(s.Body.List, st.clone(), leak)
		return st

	case *ast.RangeStmt:
		lc.walkStmts(s.Body.List, st.clone(), leak)
		return st

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var init ast.Stmt
		var clauses []ast.Stmt
		hasDefault := false
		switch sw := stmt.(type) {
		case *ast.SwitchStmt:
			init, clauses = sw.Init, sw.Body.List
		case *ast.TypeSwitchStmt:
			init, clauses = sw.Init, sw.Body.List
		case *ast.SelectStmt:
			clauses, hasDefault = sw.Body.List, true // select blocks until some case runs
		}
		if init != nil {
			st = lc.walkStmt(init, st, leak)
		}
		outs := []*lockState{}
		for _, cl := range clauses {
			var body []ast.Stmt
			switch c := cl.(type) {
			case *ast.CaseClause:
				if c.List == nil {
					hasDefault = true
				}
				body = c.Body
			case *ast.CommClause:
				body = c.Body
			}
			outs = append(outs, lc.walkStmts(body, st.clone(), leak))
		}
		if !hasDefault || len(clauses) == 0 {
			outs = append(outs, st.clone()) // no case may match
		}
		return merge(outs...)

	case *ast.BranchStmt:
		// break/continue/goto leave the linear walk; treat as terminated
		// so no spurious end-of-function leak is reported.
		st = st.clone()
		st.terminated = true
		return st

	case *ast.LabeledStmt:
		return lc.walkStmt(s.Stmt, st, leak)

	case *ast.GoStmt:
		// The spawned goroutine has its own discipline; literals are
		// analysed separately.
	}
	return st
}

// applyCall updates the state for a (potential) lock operation.
func (lc *lockChecker) applyCall(call *ast.CallExpr, st *lockState) {
	key, kind, ok := lc.lockOp(call)
	if !ok {
		return
	}
	switch kind {
	case opLock, opRLock:
		if _, already := st.held[key]; already && kind == opLock && !st.external[key] {
			lc.pass.Reportf(call.Pos(), "%s is already held here; this Lock deadlocks", lockName(key))
		}
		st.held[key] = call.Pos()
	case opUnlock, opRUnlock:
		if _, ok := st.held[key]; !ok && !st.deferred[key] {
			// Releasing a lock this function never took: the caller
			// manages it. Exempt the key for the rest of the walk.
			st.external[key] = true
			return
		}
		delete(st.held, key)
	case opTryLock:
		// Conditional acquisition; exempt the key rather than guess.
		st.external[key] = true
	}
}
