package analysis

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// TestDriverFixtureJSON runs the full suite over a known-bad fixture tree
// and asserts the JSON diagnostics end to end: one finding per rule, the
// badignore reports for a malformed and an unused directive, stable
// ordering, and the exact serialized field set.
func TestDriverFixtureJSON(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("testdata/src/fixture/...")
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, All())

	fixture := filepath.Join("testdata", "src", "fixture", "internal", "sim", "fixture.go")
	want := []struct {
		rule    string
		line    int
		message string // substring
	}{
		{"unitcheck", 14, "declares no unit"},
		{"lockcheck", 19, "not released"},
		{"detrand", 20, "reads the wall clock"},
		{"exitcheck", 26, "skips deferred cleanup"},
		{"badignore", 32, "suppresses nothing"},
		{"badignore", 38, "needs a rule name"},
	}
	if len(diags) != len(want) {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(want))
	}
	for i, w := range want {
		d := diags[i]
		if d.Rule != w.rule || d.Line != w.line || d.File != fixture ||
			!strings.Contains(d.Message, w.message) {
			t.Errorf("diag[%d] = %s, want rule=%s line=%d message~%q",
				i, d, w.rule, w.line, w.message)
		}
	}

	// The JSON form must expose exactly rule/message/file/line/col — the
	// contract cmd/topil-lint -json prints and CI consumers parse.
	raw, err := json.Marshal(diags)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	for i, m := range decoded {
		if len(m) != 5 {
			t.Errorf("diag[%d] JSON has keys %v, want exactly rule/message/file/line/col", i, keys(m))
		}
		for _, k := range []string{"rule", "message", "file", "line", "col"} {
			if _, ok := m[k]; !ok {
				t.Errorf("diag[%d] JSON missing key %q", i, k)
			}
		}
	}
	if decoded[0]["file"] != fixture || decoded[0]["rule"] != "unitcheck" {
		t.Errorf("diag[0] JSON = %v, want file=%s rule=unitcheck", decoded[0], fixture)
	}
}

// TestRuleSelection checks ByName and that an ignore for a disabled rule is
// not reported as unused (the rule might fire in a fuller run).
func TestRuleSelection(t *testing.T) {
	if a := ByName(All(), "detrand"); a == nil || a.Name != "detrand" {
		t.Fatalf("ByName(detrand) = %v", a)
	}
	if a := ByName(All(), "nosuchrule"); a != nil {
		t.Fatalf("ByName(nosuchrule) = %v, want nil", a)
	}

	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("testdata/src/fixture/...")
	if err != nil {
		t.Fatal(err)
	}
	// Run only exitcheck: the unused `//lint:ignore detrand` must not be
	// flagged because detrand is not in the active suite, while the
	// malformed directive always is.
	diags := Run(pkgs, []*Analyzer{ExitCheck()})
	var rules []string
	for _, d := range diags {
		rules = append(rules, d.Rule)
	}
	if len(diags) != 2 || diags[0].Rule != "exitcheck" || diags[1].Rule != "badignore" ||
		!strings.Contains(diags[1].Message, "needs a rule name") {
		t.Fatalf("exitcheck-only run produced %v, want [exitcheck badignore(malformed)]", rules)
	}
}

func keys(m map[string]any) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return ks
}
