package analysis

// cfg.go builds per-function control-flow graphs. The CFG is the substrate
// of the shared dataflow framework (dataflow.go): lockcheck's original
// branch-aware interpreter was generalized into BuildCFG + Forward so that
// every path-sensitive analyzer (lockcheck, closecheck) reasons over the
// same graph instead of hand-rolling statement walkers.
//
// Granularity: blocks carry leaf statements and control expressions in
// execution order. Statements that own nested bodies (if/for/range/switch/
// select) are never appended whole — only their scrutinee expression is
// (the if condition, the for condition, the range operand, the switch tag,
// the select comm statement), so a transfer function never sees the same
// code twice. Function literals are opaque values here; analyzers visit
// their bodies as separate functions.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// A Block is a straight-line run of nodes with explicit successor edges.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block

	// Cond, when non-nil, is the branch condition evaluated at the end of
	// this block: Succs[0] is the true edge and Succs[1] (if present) the
	// false edge.
	Cond ast.Expr
	// Return is set when the block ends with an explicit return.
	Return *ast.ReturnStmt
	// Panics is set when the block ends with a call to the panic builtin.
	Panics bool
}

// A CFG is the control-flow graph of one function body. Exit is a
// synthetic empty block: return blocks, panic blocks and the final
// fall-off-the-end block all flow into it.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

// FallsOff reports whether b reaches Exit by running past the last
// statement of the function (not via return or panic).
func (g *CFG) FallsOff(b *Block) bool {
	if b.Return != nil || b.Panics {
		return false
	}
	for _, s := range b.Succs {
		if s == g.Exit {
			return true
		}
	}
	return false
}

// BuildCFG constructs the control-flow graph for one function body.
// info may be nil; it is only used to recognize the panic builtin with
// type information (the name is matched syntactically otherwise).
func BuildCFG(body *ast.BlockStmt, info *types.Info) *CFG {
	b := &cfgBuilder{
		g:      &CFG{},
		info:   info,
		labels: map[string]*Block{},
	}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.stmtList(body.List)
	b.edge(b.cur, b.g.Exit) // fall off the end
	for _, pg := range b.gotos {
		if target, ok := b.labels[pg.label]; ok {
			b.edge(pg.from, target)
		} else {
			b.edge(pg.from, b.g.Exit) // dangling goto: invalid Go, stay safe
		}
	}
	return b.g
}

type pendingGoto struct {
	from  *Block
	label string
}

// loopCtx records the break/continue targets of one enclosing loop,
// switch or select statement.
type loopCtx struct {
	label     string
	breakTo   *Block
	continues *Block // nil for switch/select (no continue target)
}

type cfgBuilder struct {
	g     *CFG
	info  *types.Info
	cur   *Block
	loops []loopCtx
	// label pending for the next loop/switch/select statement.
	pendingLabel string
	labels       map[string]*Block
	gotos        []pendingGoto
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// start makes blk the current block.
func (b *cfgBuilder) start(blk *Block) { b.cur = blk }

// add appends a node to the current block.
func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// takeLabel consumes the label pending for the statement being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findLoop resolves a break/continue target: the innermost context, or the
// one carrying the label.
func (b *cfgBuilder) findLoop(label string, needContinue bool) *loopCtx {
	for i := len(b.loops) - 1; i >= 0; i-- {
		lc := &b.loops[i]
		if needContinue && lc.continues == nil {
			continue
		}
		if label == "" || lc.label == label {
			return lc
		}
	}
	return nil
}

func (b *cfgBuilder) stmtList(stmts []ast.Stmt) {
	for _, s := range stmts {
		b.stmt(s)
	}
}

// isPanicCall recognizes a call to the panic builtin.
func (b *cfgBuilder) isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	if b.info != nil {
		if obj, ok := b.info.Uses[id]; ok {
			_, builtin := obj.(*types.Builtin)
			return builtin
		}
	}
	return true
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(st.List)

	case *ast.ExprStmt:
		b.add(st)
		if b.isPanicCall(st.X) {
			b.cur.Panics = true
			b.edge(b.cur, b.g.Exit)
			b.start(b.newBlock()) // unreachable continuation
		}

	case *ast.ReturnStmt:
		b.add(st)
		b.cur.Return = st
		b.edge(b.cur, b.g.Exit)
		b.start(b.newBlock())

	case *ast.IfStmt:
		if st.Init != nil {
			b.stmt(st.Init)
		}
		b.add(st.Cond)
		condBlk := b.cur
		condBlk.Cond = st.Cond
		after := b.newBlock()

		then := b.newBlock()
		b.edge(condBlk, then)
		b.start(then)
		b.stmtList(st.Body.List)
		b.edge(b.cur, after)

		if st.Else != nil {
			els := b.newBlock()
			b.edge(condBlk, els)
			b.start(els)
			b.stmt(st.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(condBlk, after)
		}
		b.start(after)

	case *ast.ForStmt:
		label := b.takeLabel()
		if st.Init != nil {
			b.stmt(st.Init)
		}
		head := b.newBlock()
		after := b.newBlock()
		b.edge(b.cur, head)
		if lbl := label; lbl != "" {
			b.labels[lbl] = head
		}
		body := b.newBlock()
		post := head
		if st.Post != nil {
			post = b.newBlock()
		}

		b.start(head)
		if st.Cond != nil {
			b.add(st.Cond)
			head = b.cur // cond may not split blocks, but keep current
			head.Cond = st.Cond
			b.edge(head, body)
			b.edge(head, after)
		} else {
			b.edge(b.cur, body)
		}

		b.loops = append(b.loops, loopCtx{label: label, breakTo: after, continues: post})
		b.start(body)
		b.stmtList(st.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(b.cur, post)
		if st.Post != nil {
			b.start(post)
			b.stmt(st.Post)
			b.edge(b.cur, head)
		}
		b.start(after)

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		after := b.newBlock()
		b.edge(b.cur, head)
		if label != "" {
			b.labels[label] = head
		}
		b.start(head)
		b.add(st.X) // the ranged operand is evaluated at the head
		b.edge(head, after)
		body := b.newBlock()
		b.edge(head, body)

		b.loops = append(b.loops, loopCtx{label: label, breakTo: after, continues: head})
		b.start(body)
		b.stmtList(st.Body.List)
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(b.cur, head)
		b.start(after)

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		label := b.takeLabel()
		var init ast.Stmt
		var scrutinee ast.Node
		var clauses []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			init, scrutinee, clauses = sw.Init, sw.Tag, sw.Body.List
		case *ast.TypeSwitchStmt:
			init, scrutinee, clauses = sw.Init, sw.Assign, sw.Body.List
		}
		if init != nil {
			b.stmt(init)
		}
		if scrutinee != nil {
			b.add(scrutinee)
		}
		head := b.cur
		after := b.newBlock()

		// Pre-create clause blocks so fallthrough can target the next one.
		blocks := make([]*Block, len(clauses))
		hasDefault := false
		for i, cl := range clauses {
			blocks[i] = b.newBlock()
			b.edge(head, blocks[i])
			if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			b.edge(head, after) // no case may match
		}
		b.loops = append(b.loops, loopCtx{label: label, breakTo: after})
		for i, cl := range clauses {
			cc := cl.(*ast.CaseClause)
			b.start(blocks[i])
			var next *Block
			if i+1 < len(blocks) {
				next = blocks[i+1]
			}
			b.caseBody(cc.Body, next, after)
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.start(after)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		after := b.newBlock()
		b.loops = append(b.loops, loopCtx{label: label, breakTo: after})
		for _, cl := range st.Body.List {
			cc := cl.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(head, blk)
			b.start(blk)
			if cc.Comm != nil {
				b.add(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, after)
		}
		b.loops = b.loops[:len(b.loops)-1]
		// A select with no cases blocks forever; otherwise some case runs,
		// so there is deliberately no head->after skip edge.
		if len(st.Body.List) == 0 {
			b.edge(head, b.g.Exit)
		}
		b.start(after)

	case *ast.BranchStmt:
		label := ""
		if st.Label != nil {
			label = st.Label.Name
		}
		switch st.Tok {
		case token.BREAK:
			if lc := b.findLoop(label, false); lc != nil {
				b.edge(b.cur, lc.breakTo)
			} else {
				b.edge(b.cur, b.g.Exit)
			}
		case token.CONTINUE:
			if lc := b.findLoop(label, true); lc != nil {
				b.edge(b.cur, lc.continues)
			} else {
				b.edge(b.cur, b.g.Exit)
			}
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
		case token.FALLTHROUGH:
			// Handled by caseBody; a stray fallthrough is invalid Go.
		}
		b.start(b.newBlock()) // unreachable continuation

	case *ast.LabeledStmt:
		name := st.Label.Name
		switch st.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = name
			b.stmt(st.Stmt)
		default:
			target := b.newBlock()
			b.labels[name] = target
			b.edge(b.cur, target)
			b.start(target)
			b.stmt(st.Stmt)
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Leaf statements: assignments, declarations, inc/dec, send, go,
		// defer. They carry no nested control flow bodies of their own
		// (function literals are opaque values).
		b.add(s)
	}
}

// caseBody builds one switch case body; fallthrough (always the last
// statement of a case) jumps to next, everything else exits to after.
func (b *cfgBuilder) caseBody(body []ast.Stmt, next, after *Block) {
	for _, s := range body {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
			if next != nil {
				b.edge(b.cur, next)
			}
			b.start(b.newBlock())
			return
		}
		b.stmt(s)
	}
	b.edge(b.cur, after)
}
