package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// metricConstructors are the internal/telemetry calls whose first argument
// is a metric family name and must therefore match the Prometheus data
// model ([a-zA-Z_:][a-zA-Z0-9_:]*).
var metricConstructors = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterVec": true, "GaugeVec": true, "HistogramVec": true,
	"GaugeFunc": true,
}

// TelemetryCheck returns the observability-discipline analyzer.
func TelemetryCheck() *Analyzer {
	a := &Analyzer{
		Name: "telemetrycheck",
		Doc: "enforce observability discipline outside internal/telemetry and cmd/: " +
			"no expvar (the repo has one metrics registry), no time.Now/time.Since " +
			"fed directly into telemetry calls (timestamps must flow through an " +
			"injected telemetry.Clock so deterministic packages can trace in " +
			"sim-time), and metric names passed to registry constructors must " +
			"match the Prometheus charset [a-zA-Z_:][a-zA-Z0-9_:]*",
	}
	a.Run = runTelemetryCheck
	return a
}

// isTelemetryPath reports whether the import path names the telemetry
// package itself, i.e. contains consecutive segments "internal/telemetry".
// This also matches fixture trees mirroring the layout under testdata.
func isTelemetryPath(path string) bool {
	segs := strings.Split(path, "/")
	for i := 0; i+1 < len(segs); i++ {
		if segs[i] == "internal" && segs[i+1] == "telemetry" {
			return true
		}
	}
	return false
}

// isCmdPath reports whether the package lives under a cmd/ tree. Binaries
// wire wall-clocks and trace files together, so the rule exempts them.
func isCmdPath(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "cmd" {
			return true
		}
	}
	return false
}

func runTelemetryCheck(pass *Pass) {
	if isTelemetryPath(pass.Pkg.Path) || isCmdPath(pass.Pkg.Path) {
		return
	}
	for _, f := range pass.Pkg.Files {
		telemetryLocals, timeLocals := telemetryImports(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, isTelemetry := telemetryCallee(pass, call, telemetryLocals)
			if !isTelemetry {
				return true
			}
			for _, arg := range call.Args {
				checkNoClockRead(pass, arg, timeLocals)
			}
			if metricConstructors[name] && len(call.Args) > 0 {
				checkMetricName(pass, call.Args[0])
			}
			return true
		})
	}
}

// telemetryImports maps the file-local names of the telemetry and time
// imports, and reports any expvar import as a finding on the spot.
func telemetryImports(pass *Pass, f *ast.File) (telemetryLocals, timeLocals map[string]bool) {
	telemetryLocals = map[string]bool{}
	timeLocals = map[string]bool{}
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		switch {
		case path == "expvar":
			pass.Reportf(imp.Pos(),
				"expvar bypasses the telemetry registry; export metrics through internal/telemetry instead")
		case isTelemetryPath(path) && name != "_" && name != ".":
			telemetryLocals[name] = true
		case path == "time" && name != "_" && name != ".":
			timeLocals[name] = true
		}
	}
	return telemetryLocals, timeLocals
}

// telemetryCallee resolves whether call invokes a function or method of the
// telemetry package, returning the callee's bare name. Resolution prefers
// type information (catching method calls like reg.Counter or h.Observe);
// when the type checker could not resolve the selector, it degrades to the
// syntactic pattern telemetry.<Name> using the file's import names.
func telemetryCallee(pass *Pass, call *ast.CallExpr, telemetryLocals map[string]bool) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if obj := pass.Pkg.Info.Uses[sel.Sel]; obj != nil {
		if pkg := obj.Pkg(); pkg != nil && isTelemetryPath(pkg.Path()) {
			return sel.Sel.Name, true
		}
		return "", false
	}
	if ident, ok := sel.X.(*ast.Ident); ok && telemetryLocals[ident.Name] {
		return sel.Sel.Name, true
	}
	return "", false
}

// checkNoClockRead walks one telemetry-call argument looking for wall-clock
// reads. Function literals are deliberately NOT descended into: a closure
// handed to GaugeFunc is evaluated at scrape time by the collector, which
// is the exporter's (wall-time) context, not the instrumented package's.
func checkNoClockRead(pass *Pass, arg ast.Expr, timeLocals map[string]bool) {
	ast.Inspect(arg, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok || !timeLocals[ident.Name] {
			return true
		}
		if obj := pass.Pkg.Info.Uses[ident]; obj != nil {
			if _, isPkg := obj.(*types.PkgName); !isPkg {
				return true
			}
		}
		if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
			pass.Reportf(sel.Pos(),
				"%s.%s fed into a telemetry call; inject a telemetry.Clock so timestamps follow the package's time base",
				ident.Name, sel.Sel.Name)
		}
		return true
	})
}

// checkMetricName validates a literal metric family name against the
// Prometheus data model. Non-literal names are skipped: they are resolved
// at runtime, where telemetry.Registry panics on an invalid name.
func checkMetricName(pass *Pass, arg ast.Expr) {
	lit, ok := arg.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	name, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if !validMetricName(name) {
		pass.Reportf(lit.Pos(),
			"metric name %q does not match the Prometheus charset [a-zA-Z_:][a-zA-Z0-9_:]*", name)
	}
}

// validMetricName mirrors telemetry.ValidName without importing the
// package (the analyzer must stay dependency-free).
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' || r == ':':
		case r >= '0' && r <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}
