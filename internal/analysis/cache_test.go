package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// writeTempModule lays out a throwaway module and returns its root.
func writeTempModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.21\n"
	for name, content := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// loadTempModule freshly parses the module (no loader reuse, so edits
// between runs are observed).
func loadTempModule(t *testing.T, root string) []*Package {
	t.Helper()
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(root + "/...")
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

func diagStrings(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.String()
	}
	return out
}

const leakyLock = `package a

import "sync"

var mu sync.Mutex

func Leak() {
	mu.Lock()
}
`

// TestRunCachedRoundTrip checks the hit/miss lifecycle: first run misses
// and populates, an identical run hits with identical diagnostics, and
// an edit invalidates the entry.
func TestRunCachedRoundTrip(t *testing.T) {
	root := writeTempModule(t, map[string]string{"a/a.go": leakyLock})
	cacheDir := filepath.Join(t.TempDir(), "cache")
	analyzers := []*Analyzer{LockCheck()}

	first, stats := RunCached(loadTempModule(t, root), analyzers, cacheDir)
	if stats.Hits != 0 || stats.Misses == 0 {
		t.Fatalf("first run: stats = %+v, want 0 hits and >0 misses", stats)
	}
	if len(first) != 1 {
		t.Fatalf("first run: %d diagnostics, want 1 (the leaked lock); got %v",
			len(first), diagStrings(first))
	}

	second, stats := RunCached(loadTempModule(t, root), analyzers, cacheDir)
	if stats.Misses != 0 || stats.Hits == 0 {
		t.Fatalf("unchanged re-run: stats = %+v, want all hits", stats)
	}
	if got, want := diagStrings(second), diagStrings(first); !equalStrings(got, want) {
		t.Errorf("cached diagnostics differ:\n got %v\nwant %v", got, want)
	}

	// Fixing the file must invalidate the entry and clear the finding.
	fixed := leakyLock + "\nfunc Unleak() { mu.Unlock() }\n"
	if err := os.WriteFile(filepath.Join(root, "a", "a.go"), []byte(fixed), 0o644); err != nil {
		t.Fatal(err)
	}
	third, stats := RunCached(loadTempModule(t, root), analyzers, cacheDir)
	if stats.Hits != 0 {
		t.Errorf("post-edit run: stats = %+v, want no hits", stats)
	}
	if len(third) != 1 {
		t.Errorf("post-edit run: %d diagnostics, want 1 (leak unchanged); got %v",
			len(third), diagStrings(third))
	}
}

// TestRunCachedProgramHash checks the whole-program key: with a
// NeedsProgram analyzer selected, editing ANY package invalidates every
// package's entry (call-graph facts cross package boundaries).
func TestRunCachedProgramHash(t *testing.T) {
	root := writeTempModule(t, map[string]string{
		"a/a.go": "package a\n\nfunc A() {}\n",
		"b/b.go": "package b\n\nfunc B() {}\n",
	})
	cacheDir := filepath.Join(t.TempDir(), "cache")
	analyzers := []*Analyzer{GoLeak()}

	_, stats := RunCached(loadTempModule(t, root), analyzers, cacheDir)
	if stats.Misses != 2 {
		t.Fatalf("first run: stats = %+v, want 2 misses", stats)
	}
	_, stats = RunCached(loadTempModule(t, root), analyzers, cacheDir)
	if stats.Hits != 2 {
		t.Fatalf("unchanged re-run: stats = %+v, want 2 hits", stats)
	}

	if err := os.WriteFile(filepath.Join(root, "b", "b.go"),
		[]byte("package b\n\nfunc B() {}\n\nfunc B2() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stats = RunCached(loadTempModule(t, root), analyzers, cacheDir)
	if stats.Hits != 0 || stats.Misses != 2 {
		t.Errorf("post-edit run: stats = %+v, want 0 hits / 2 misses (conservative program key)", stats)
	}
}

// TestRunCachedDisabled checks that an empty cacheDir never touches the
// filesystem and reports every package as a miss.
func TestRunCachedDisabled(t *testing.T) {
	root := writeTempModule(t, map[string]string{"a/a.go": leakyLock})
	pkgs := loadTempModule(t, root)
	diags, stats := RunCached(pkgs, []*Analyzer{LockCheck()}, "")
	if stats.Hits != 0 || stats.Misses != len(pkgs) {
		t.Errorf("stats = %+v, want 0 hits / %d misses", stats, len(pkgs))
	}
	if len(diags) != 1 {
		t.Errorf("%d diagnostics, want 1", len(diags))
	}
}

// TestRunCachedCorruptEntry checks that a mangled cache file degrades to
// a miss instead of failing or returning garbage.
func TestRunCachedCorruptEntry(t *testing.T) {
	root := writeTempModule(t, map[string]string{"a/a.go": leakyLock})
	cacheDir := filepath.Join(t.TempDir(), "cache")
	analyzers := []*Analyzer{LockCheck()}

	first, _ := RunCached(loadTempModule(t, root), analyzers, cacheDir)
	entries, err := os.ReadDir(cacheDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("cache not populated: %v (%d entries)", err, len(entries))
	}
	for _, e := range entries {
		if err := os.WriteFile(filepath.Join(cacheDir, e.Name()), []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	second, stats := RunCached(loadTempModule(t, root), analyzers, cacheDir)
	if stats.Hits != 0 {
		t.Errorf("corrupt entries hit: stats = %+v", stats)
	}
	if got, want := diagStrings(second), diagStrings(first); !equalStrings(got, want) {
		t.Errorf("recomputed diagnostics differ:\n got %v\nwant %v", got, want)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
