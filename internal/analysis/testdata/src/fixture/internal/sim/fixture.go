// Package sim is a deliberately bad fixture for the driver test: its
// import path ends in internal/sim so every rule of the suite applies.
package sim

import (
	"os"
	"sync"
	"time"
)

// State carries a mutex and an unannotated physical quantity.
type State struct {
	mu   sync.Mutex
	Temp float64
}

// Sample reads the wall clock and leaks the lock on return.
func Sample(s *State) float64 {
	s.mu.Lock()
	_ = time.Now()
	return s.Temp
}

// Abort exits directly from library code.
func Abort() {
	os.Exit(3)
}

// Reset carries an unused suppression: nothing on this line or the next
// violates detrand.
func Reset(s *State) {
	//lint:ignore detrand nothing here actually needs this
	s.Temp = 0
}

// Broken carries a malformed directive (no rule, no reason).
func Broken(s *State) {
	//lint:ignore
	s.Temp = 1
}
