package lockcheck

// LockAndHand intentionally returns with the lock held: the caller must
// release it. The directive documents the handoff.
func LockAndHand(c *Counter) {
	//lint:ignore lockcheck caller releases via unlockOnly (documented handoff)
	c.mu.Lock()
	c.n++
}
