// Package lockcheck is a fixture exercising the mutex-hygiene analyzer.
package lockcheck

import "sync"

// Counter holds a mutex; copying it copies lock state.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Wrapper embeds a lock-bearing struct transitively.
type Wrapper struct {
	inner Counter
}

// ByValue has a value receiver on a mutex-bearing type.
func (c Counter) ByValue() int { // want "value receiver"
	return c.n
}

// ByPointer is the correct form.
func (c *Counter) ByPointer() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// TakesByValue copies the lock through a parameter.
func TakesByValue(c Counter) {} // want "passed by value"

// TakesWrapped copies a transitively lock-bearing struct.
func TakesWrapped(w Wrapper) {} // want "passed by value"

// TakesPointer is fine.
func TakesPointer(c *Counter) {}

// CopyAssign copies an existing value by assignment.
func CopyAssign(c *Counter) {
	cp := *c // want "copies lock state"
	cp.n++
	fresh := Counter{} // composite literal: brand new, no copied state
	fresh.n++
}

// RangeCopy copies each element into the loop variable.
func RangeCopy(cs []Counter) {
	for _, c := range cs { // want "copies lock state"
		_ = c.n
	}
	for i := range cs { // index form is fine
		cs[i].n++
	}
}

// LeakNoUnlock never releases.
func LeakNoUnlock(c *Counter) {
	c.mu.Lock() // want "not released"
	c.n++
}

// LeakOnEarlyReturn misses the unlock on one return path.
func LeakOnEarlyReturn(c *Counter, bail bool) int {
	c.mu.Lock() // want "not released"
	if bail {
		return 0
	}
	c.n++
	c.mu.Unlock()
	return c.n
}

// BranchUnlockOK releases on every path without defer.
func BranchUnlockOK(c *Counter, bail bool) int {
	c.mu.Lock()
	if bail {
		c.mu.Unlock()
		return 0
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// DeferOK releases via defer.
func DeferOK(c *Counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// DeferClosureOK releases inside a deferred function literal.
func DeferClosureOK(c *Counter) int {
	c.mu.Lock()
	defer func() {
		c.n = 0
		c.mu.Unlock()
	}()
	return c.n
}

// DoubleLock deadlocks on itself.
func DoubleLock(c *Counter) {
	c.mu.Lock()
	c.mu.Lock() // want "already held"
	c.mu.Unlock()
	c.mu.Unlock()
}

// RW pairs read locks with read unlocks.
type RW struct {
	mu sync.RWMutex
	v  int
}

// ReadLeak takes a read lock and never releases it.
func (r *RW) ReadLeak() int {
	r.mu.RLock() // want "not released"
	return r.v
}

// ReadOK is the correct form.
func (r *RW) ReadOK() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.v
}

// unlockOnly releases a lock its caller acquired (handoff); the analyzer
// exempts locks first seen being released.
func unlockOnly(c *Counter) {
	c.n++
	c.mu.Unlock()
}
