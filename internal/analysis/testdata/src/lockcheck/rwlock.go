// rwlock.go exercises the RWMutex-specific rules on the CFG dataflow core:
// RLock/RUnlock pairing across branches and the RLock→Lock upgrade
// deadlock (a writer blocks behind readers, and this reader never leaves).
package lockcheck

import "sync"

// Table guards a map with a read-write mutex.
type Table struct {
	mu   sync.RWMutex
	data map[string]int
}

// UpgradeDeadlock re-locks for write while its own read lock is held.
func (t *Table) UpgradeDeadlock(k string) {
	t.mu.RLock()
	if _, ok := t.data[k]; !ok {
		t.mu.Lock() // want "upgrading an RLock"
		t.data[k] = 1
		t.mu.Unlock()
	}
	t.mu.RUnlock()
}

// UpgradeOK releases the read lock before taking the write lock.
func (t *Table) UpgradeOK(k string) {
	t.mu.RLock()
	_, ok := t.data[k]
	t.mu.RUnlock()
	if !ok {
		t.mu.Lock()
		t.data[k] = 1
		t.mu.Unlock()
	}
}

// ReadLeakOnBranch releases the read lock on the hit path only.
func (t *Table) ReadLeakOnBranch(k string) int {
	t.mu.RLock() // want "not released"
	if v, ok := t.data[k]; ok {
		t.mu.RUnlock()
		return v
	}
	return 0
}

// BranchReadOK releases on every branch.
func (t *Table) BranchReadOK(k string) int {
	t.mu.RLock()
	if v, ok := t.data[k]; ok {
		t.mu.RUnlock()
		return v
	}
	t.mu.RUnlock()
	return 0
}

// WriteThenReadOK holds the write and read locks strictly in sequence.
func (t *Table) WriteThenReadOK(k string) int {
	t.mu.Lock()
	t.data[k]++
	t.mu.Unlock()
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.data[k]
}

// LoopReadOK takes and releases the read lock once per iteration; the
// back edge must not look like a leak.
func (t *Table) LoopReadOK(keys []string) int {
	sum := 0
	for _, k := range keys {
		t.mu.RLock()
		sum += t.data[k]
		t.mu.RUnlock()
	}
	return sum
}
