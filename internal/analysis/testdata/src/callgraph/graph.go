// Package callgraph is the call-graph builder fixture: one specimen per
// resolution mechanism — static calls, interface dispatch (CHA), function
// literals, closures bound to variables, method values, go/defer sites
// and a spawn helper. callgraph_test.go pins its Dump against a golden
// file, so additions here must regenerate testdata/callgraph.golden.
package callgraph

// Shape is implemented by Square and Circle; CHA resolves calls through
// it to both.
type Shape interface{ Area() float64 }

// Square is the first Shape implementation.
type Square struct{ S float64 }

// Area returns the square's area.
func (s Square) Area() float64 { return s.S * s.S }

// Circle is the second Shape implementation.
type Circle struct{ R float64 }

// Area returns the circle's area (π rounded down for the fixture).
func (c Circle) Area() float64 { return 3 * c.R * c.R }

// TotalArea dispatches through the interface.
func TotalArea(shapes []Shape) float64 {
	t := 0.0
	for _, s := range shapes {
		t += s.Area()
	}
	return t
}

// UseClosure binds a literal to a variable and calls through it.
func UseClosure() int {
	double := func(x int) int { return 2 * x }
	return double(21)
}

// UseMethodValue calls through a bound method value.
func UseMethodValue(s Square) float64 {
	f := s.Area
	return f()
}

// tick is a goroutine body.
func tick() {}

// cleanup is a defer target.
func cleanup() {}

// Spawn has one go site and one defer site.
func Spawn() {
	defer cleanup()
	go tick()
}

// launch spawns its parameter; SpawnedParams must mark index 0.
func launch(f func()) { go f() }

// UseLauncher hands tick to the spawn helper.
func UseLauncher() { launch(tick) }

// chain calls statically through two hops.
func chain() float64 { return middle() }

// middle is the intermediate hop.
func middle() float64 { return TotalArea(nil) }
