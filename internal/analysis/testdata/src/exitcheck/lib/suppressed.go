package lib

import "os"

// HardStop is an intentional process kill in a fixture; the directive
// documents it.
func HardStop() {
	//lint:ignore exitcheck fixture demonstrating an intentional direct exit
	os.Exit(2)
}
