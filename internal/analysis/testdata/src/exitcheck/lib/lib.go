// Package lib is a non-main fixture for the process-exit analyzer.
package lib

import (
	"errors"
	"log"
	"os"
)

// Bail exits directly from library code.
func Bail() {
	os.Exit(1) // want "skips deferred cleanup"
}

// Die uses the fatal logger family.
func Die(err error) {
	log.Fatal(err)             // want "exits the process"
	log.Fatalf("bad: %v", err) // want "exits the process"
	log.Fatalln(err)           // want "exits the process"
}

// Check validates n; its doc comment says nothing about blowing up.
func Check(n int) {
	if n < 0 {
		panic("negative") // want "document the invariant"
	}
}

// MustCheck panics if n is negative; documented, so exitcheck allows it.
func MustCheck(n int) {
	if n < 0 {
		panic("negative")
	}
}

// Validate returns an error instead; the non-fatal logger is fine.
func Validate(n int) error {
	if n < 0 {
		log.Printf("rejecting %d", n)
		return errors.New("negative")
	}
	return nil
}

// shadowed defines a local panic; the builtin is not involved.
func shadowed() {
	panic := func(string) {}
	panic("not the builtin")
}
