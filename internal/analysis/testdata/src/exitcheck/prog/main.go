// Command prog shows that package main is exempt from exitcheck.
package main

import (
	"log"
	"os"
)

func run() error { return nil }

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
	panic("mains may panic without a doc contract")
	os.Exit(0)
}
