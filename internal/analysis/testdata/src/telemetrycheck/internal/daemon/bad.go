// Package daemon is a fixture production package: it exercises every
// telemetrycheck violation class plus the sanctioned patterns.
package daemon

import (
	"expvar" // want "expvar bypasses the telemetry registry"
	"time"

	"repro/internal/analysis/testdata/src/telemetrycheck/internal/telemetry"
)

// hits demonstrates why expvar is banned: a second, unscraped registry.
var hits = expvar.NewInt("daemon_hits")

// Observe feeds wall-clock timestamps straight into telemetry calls — the
// package's time base must come from an injected Clock instead.
func Observe(tr *telemetry.Tracer, h *telemetry.Histogram, start time.Time) {
	tr.StartAt("req", float64(time.Now().UnixNano())/1e9) // want "time.Now fed into a telemetry call"
	h.Observe(time.Since(start).Seconds())                // want "time.Since fed into a telemetry call"
}

// Register exercises the metric-name check on every constructor form.
func Register(r *telemetry.Registry) {
	r.Counter("daemon-requests", "bad: dashes") // want "does not match the Prometheus charset"
	r.Counter("2nd_total", "bad: leading digit") // want "does not match the Prometheus charset"
	r.Counter("daemon_requests_total", "fine")
	r.Histogram("daemon:latency_seconds", "fine (colons allowed)", nil)
}

// ScrapeTime shows the FuncLit exemption: a GaugeFunc closure runs in the
// collector's wall-time context at scrape time, so a clock read inside it
// is legitimate and must not be flagged.
func ScrapeTime(r *telemetry.Registry, start time.Time) {
	r.GaugeFunc("daemon_uptime_seconds", "ok", func() float64 {
		return time.Since(start).Seconds()
	})
}

// Injected is the sanctioned pattern: the clock arrives as a dependency.
func Injected(r *telemetry.Registry, clock telemetry.Clock) *telemetry.Tracer {
	tr := telemetry.NewTracer(clock)
	tr.StartAt("boot", clock.Now())
	return tr
}
