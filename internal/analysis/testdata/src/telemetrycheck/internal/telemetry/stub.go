// Package telemetry is a fixture stub mirroring the real registry API; its
// import path ends in internal/telemetry, so telemetrycheck exempts the
// package itself and resolves calls against it in the sibling fixtures.
package telemetry

// Clock yields the current time in seconds on some time base.
type Clock interface{ Now() float64 }

// Counter is a stand-in metric handle.
type Counter struct{}

// Inc bumps the counter.
func (c *Counter) Inc() {}

// Histogram is a stand-in distribution handle.
type Histogram struct{}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {}

// Registry is a stand-in metric registry.
type Registry struct{}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }

// Histogram registers and returns a histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return &Histogram{}
}

// GaugeFunc registers a gauge evaluated at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {}

// Tracer is a stand-in span collector.
type Tracer struct{}

// StartAt opens a span at an explicit timestamp in seconds.
func (t *Tracer) StartAt(name string, at float64) {}

// NewTracer builds a tracer on the given clock.
func NewTracer(c Clock) *Tracer { return &Tracer{} }
