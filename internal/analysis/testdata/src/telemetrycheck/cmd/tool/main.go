// Command tool is a fixture binary: cmd/ packages wire wall-clocks into
// the telemetry plumbing by design, so telemetrycheck exempts them and
// nothing below is a finding.
package main

import (
	"time"

	"repro/internal/analysis/testdata/src/telemetrycheck/internal/telemetry"
)

func main() {
	r := &telemetry.Registry{}
	h := r.Histogram("tool_step_seconds", "ok", nil)
	start := time.Now()
	h.Observe(time.Since(start).Seconds())
}
