// bad.go holds the closecheck positives: response bodies, files,
// listeners and tickers acquired but not released on every path. The
// finding lands on the acquisition site.
package closecheck

import (
	"io"
	"net"
	"net/http"
	"os"
	"time"
)

// LeakBody never closes the response body.
func LeakBody(url string) ([]byte, error) {
	resp, err := http.Get(url) // want "not released on every path"
	if err != nil {
		return nil, err
	}
	return io.ReadAll(resp.Body)
}

// LeakFileOnBranch closes the file on the happy path only: the early
// return leaks it.
func LeakFileOnBranch(path string, skip bool) error {
	f, err := os.Open(path) // want "not released on every path"
	if err != nil {
		return err
	}
	if skip {
		return nil
	}
	f.Close()
	return nil
}

// LeakTicker starts a ticker that is never stopped; its goroutine and
// channel live for the process lifetime.
func LeakTicker(n int) int {
	t := time.NewTicker(time.Millisecond) // want "not released on every path"
	sum := 0
	for i := 0; i < n; i++ {
		<-t.C
		sum++
	}
	return sum
}

// LeakListener leaks the listener when the handshake probe fails.
func LeakListener(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr) // want "not released on every path"
	if err != nil {
		return nil, err
	}
	if addr == "" {
		return nil, nil
	}
	return ln, nil
}

// CloseOnlyOnError releases on the error branch but leaks on success.
func CloseOnlyOnError(path string, bad bool) error {
	f, err := os.Create(path) // want "not released on every path"
	if err != nil {
		return err
	}
	if bad {
		f.Close()
		return nil
	}
	return nil
}
