// ok.go holds the closecheck negatives: deferred releases, per-branch
// releases, ownership transfer by return or by a callee that closes,
// and release from a deferred closure.
package closecheck

import (
	"io"
	"net"
	"net/http"
	"os"
	"time"
)

// DeferClose is the canonical shape: check the error, defer the close.
func DeferClose(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// BranchClose releases explicitly on every path.
func BranchClose(path string, probe bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if probe {
		f.Close()
		return nil
	}
	f.Close()
	return nil
}

// TickerStop pairs the ticker with a deferred Stop.
func TickerStop(n int) int {
	t := time.NewTicker(time.Millisecond)
	defer t.Stop()
	sum := 0
	for i := 0; i < n; i++ {
		<-t.C
		sum++
	}
	return sum
}

// TransferByReturn hands the listener to the caller: the caller owns it.
func TransferByReturn(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return ln, nil
}

// consume closes the file it is given; callers passing a file here have
// transferred ownership.
func consume(f *os.File) error {
	defer f.Close()
	var buf [64]byte
	_, err := f.Read(buf[:])
	return err
}

// TransferToCallee passes the file to a closer resolved through the
// call graph.
func TransferToCallee(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	return consume(f)
}

// DeferredClosure releases inside a deferred function literal.
func DeferredClosure(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer func() {
		f.Close()
	}()
	var buf [64]byte
	_, err = f.Read(buf[:])
	return err
}

// NilGuard handles the documented Do contract where a nil body check
// precedes use.
func NilGuard(c *http.Client, req *http.Request) error {
	resp, err := c.Do(req)
	if err != nil {
		return err
	}
	if resp == nil {
		return nil
	}
	defer resp.Body.Close()
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}
