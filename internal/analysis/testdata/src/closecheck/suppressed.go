// suppressed.go proves the //lint:ignore round-trip for closecheck: the
// listener below intentionally lives for the process lifetime.
package closecheck

import "net"

// ProcessListener binds the main serving socket; the OS reclaims it at
// exit and closing it early would drop live connections.
func ProcessListener(addr string) error {
	//lint:ignore closecheck process-lifetime listener, closed by OS at exit
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	go serve(ln)
	return nil
}

func serve(ln net.Listener) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		c.Close()
	}
}
