// ok.go holds the ctxflow negatives: ctx first, derived contexts,
// context-carrying requests, select-guarded channel operations and
// fsync behind a cancellation check.
package ctxflow

import (
	"context"
	"net/http"
	"os"
	"time"
)

// CtxFirst keeps the context in front; no finding.
func CtxFirst(ctx context.Context, id int) {
	_ = ctx
	_ = id
}

// DerivedContext narrows the incoming context instead of replacing it.
func DerivedContext(ctx context.Context) {
	c, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	_ = c
}

// RootInMain is not request-scoped (no ctx or request parameter), so a
// fresh root is exactly right here.
func RootInMain() context.Context {
	return context.Background()
}

// RequestWithContext threads cancellation through to the transport.
func RequestWithContext(ctx context.Context, url string) error {
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	_ = req
	return err
}

// GuardedSend pairs the send with a Done case.
func GuardedSend(ctx context.Context, out chan int) {
	select {
	case out <- 1:
	case <-ctx.Done():
	}
}

// GuardedRecv pairs the receive with a Done case.
func GuardedRecv(ctx context.Context, in chan int) int {
	select {
	case v := <-in:
		return v
	case <-ctx.Done():
		return 0
	}
}

// DoneRecv receives from ctx.Done() itself — that IS the cancellation
// consult, not an uncancellable wait.
func DoneRecv(ctx context.Context) {
	<-ctx.Done()
}

// ConsultedSync checks cancellation before paying the sync cost.
func ConsultedSync(ctx context.Context, f *os.File) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return f.Sync()
}

// NoCtxSend has no context parameter: plain channel use is fine.
func NoCtxSend(out chan int) {
	out <- 1
}
