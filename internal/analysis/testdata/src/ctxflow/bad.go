// bad.go holds the ctxflow positives: misplaced ctx parameters, fresh
// context roots in request-scoped code, context-less HTTP requests,
// uncancellable channel waits and unconsulted fsyncs.
package ctxflow

import (
	"context"
	"net/http"
	"os"
)

// MisplacedCtx buries the context behind another parameter.
func MisplacedCtx(id int, ctx context.Context) { // want "must be the first parameter"
	_ = ctx
}

// FreshRoot severs cancellation inside a request-scoped function.
func FreshRoot(ctx context.Context) {
	c := context.Background() // want "severs cancellation"
	_ = c
	_ = ctx
}

// FreshTODO does the same with TODO, triggered by the *http.Request param.
func FreshTODO(w http.ResponseWriter, r *http.Request) {
	c := context.TODO() // want "severs cancellation"
	_ = c
	_ = w
}

// ContextlessRequest builds a request cancellation can never reach.
func ContextlessRequest(url string) error {
	req, err := http.NewRequest("GET", url, nil) // want "context-less request"
	_ = req
	return err
}

// BlockingSend parks on a channel with no Done escape hatch.
func BlockingSend(ctx context.Context, out chan int) {
	out <- 1 // want "blocking channel send"
	_ = ctx
}

// BlockingRecv parks on a receive the context cannot interrupt.
func BlockingRecv(ctx context.Context, in chan int) int {
	v := <-in // want "blocking channel receive"
	_ = ctx
	return v
}

// UnconsultedSync pays the fsync cost without checking cancellation.
func UnconsultedSync(ctx context.Context, f *os.File) error {
	return f.Sync() // want "fsync on the request path"
}
