// suppressed.go proves the //lint:ignore round-trip for ctxflow: the
// detach below is intentional and documented, so no finding survives.
package ctxflow

import "context"

// DetachedAudit forks audit logging off the request lifetime on purpose:
// the write must complete even when the caller gives up.
func DetachedAudit(ctx context.Context) context.Context {
	_ = ctx
	//lint:ignore ctxflow audit writes outlive the request by design
	return context.Background()
}
