// Package unitcheck is a fixture exercising the physical-unit annotation
// analyzer.
package unitcheck

// Sample mixes annotated and bare quantity fields.
type Sample struct {
	Freq     float64 // Hz
	Temp     float64 // want "declares no unit"
	Power    float64 // W
	Voltage  float64 // want "declares no unit"
	EnergyMJ float64 // millijoules, encoded in the name
	MeanIPS  float64 // want "declares no unit"
	Latency  float64 // seconds
	Count    int     // not a float quantity; ignored
	label    string  // unexported; ignored
}

// Temps carries a slice quantity without any annotation.
type Temps struct {
	CoreTemps []float64 // want "declares no unit"
}

// Scale is annotated through its doc comment instead of a trailing one.
type Scale struct {
	// TempDelta is the per-step rise in °C.
	TempDelta []float64
}

// SetFreq documents the unit of its parameter in the doc comment.
// The freq argument is in Hz.
func SetFreq(freq float64) {}

// SetFreqHz carries the unit in the parameter name itself.
func SetFreqHz(freqHz float64) {}

// SetTemp gives no hint anywhere.
func SetTemp(temp float64) {} // want "states a unit"

// Mix documents its parameters' units in the doc comment: both are in
// watts, so neither is flagged.
func Mix(power, voltage float64) {}

// Drive mixes a unit-bearing name with a bare quantity name.
func Drive(freqHz, temp float64) {} // want "states a unit"

// NormRatio is dimensionless by name and therefore exempt.
func NormRatio(freqRatio float64) {}

func setTempInternal(temp float64) {} // unexported; ignored
