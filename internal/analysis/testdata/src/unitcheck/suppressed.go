package unitcheck

// Opaque wraps a quantity whose unit genuinely depends on the caller.
type Opaque struct {
	//lint:ignore unitcheck unit is caller-defined, documented at the use sites
	Temp float64
}
