// Package other is NOT in the deterministic set (internal/other), so
// wall-clock reads and global rand are allowed here.
package other

import (
	"math/rand"
	"time"
)

// Allowed uses both freely; detrand must stay silent.
func Allowed() float64 {
	_ = time.Now()
	return rand.Float64()
}
