package sim

import "time"

// Wallclock is intentionally non-deterministic and documents why; the
// directive keeps detrand quiet.
func Wallclock() time.Time {
	//lint:ignore detrand fixture demonstrating an intentional wall-clock read
	return time.Now()
}

// Trailing demonstrates the same-line directive form.
func Trailing() time.Time {
	return time.Now() //lint:ignore detrand fixture trailing-comment suppression
}
