// Package sim is a fixture mimicking a deterministic package; its import
// path ends in internal/sim, so detrand applies.
package sim

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

// Bad exercises every detrand violation class.
func Bad() float64 {
	start := time.Now()        // want "reads the wall clock"
	_ = time.Since(start)      // want "reads the wall clock"
	x := rand.Float64()        // want "process-global RNG"
	x += float64(rand.Intn(8)) // want "process-global RNG"
	rand.Seed(42)              // want "process-global RNG"
	buf := make([]byte, 4)
	_, _ = crand.Read(buf) // want "non-deterministic"
	return x
}

// Good shows the sanctioned pattern: an explicit seeded generator.
func Good(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// Elapsed takes simulated time as input instead of reading a clock.
func Elapsed(now, start time.Duration) time.Duration { return now - start }
