package online

import (
	"math/rand"
	"time"
)

// Cycle is NOT the clock-boundary file, so the deterministic-package rules
// apply in full.
func Cycle() float64 {
	_ = time.Now().Unix() // want "reads the wall clock"
	return rand.Float64() // want "process-global RNG"
}

// CycleAt shows the sanctioned pattern: time and randomness arrive as
// explicit inputs.
func CycleAt(nowUnix int64, rng *rand.Rand) float64 {
	_ = nowUnix
	return rng.Float64()
}
