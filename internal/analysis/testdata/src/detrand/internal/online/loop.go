// Package online is a fixture mimicking internal/online, which is in the
// deterministic set. This file mirrors the package's designated
// clock-boundary file (DetrandExemptFiles), so its wall-clock reads must
// NOT be flagged.
package online

import "time"

// Tick is the sanctioned clock boundary: it reads the wall clock once and
// hands everything downstream an explicit timestamp.
func Tick() int64 {
	return time.Now().Unix()
}
