// suppressed.go proves the //lint:ignore round-trip: the spawn below
// leaks by goleak's rules but the directive drops the finding.
package goleak

// SpinByDesign runs for the process lifetime on purpose.
func SpinByDesign() {
	//lint:ignore goleak process-lifetime worker, reaped at exit
	go func() {
		for {
			work()
		}
	}()
}
