// ok.go holds the goleak negatives: goroutines with a provable exit
// path, plus the shapes the analyzer deliberately trusts (condition
// loops, ranges over ordinary channels).
package goleak

import "time"

// QuitLoop exits through a select case; no finding.
func QuitLoop(quit chan struct{}, in chan int) {
	go func() {
		for {
			select {
			case <-quit:
				return
			case v := <-in:
				_ = v
			}
		}
	}()
}

// TickerWithStop breaks out of the ticker range on a counter.
func TickerWithStop() {
	t := time.NewTicker(time.Second)
	go func() {
		n := 0
		for range t.C {
			n++
			if n > 10 {
				break
			}
		}
		t.Stop()
	}()
}

// RangeChannel ranges over an ordinary channel: the producer closes it,
// so the loop terminates — trusted, no finding.
func RangeChannel(in chan int) {
	go func() {
		for v := range in {
			_ = v
		}
	}()
}

// BoundedLoop is a plain counted loop.
func BoundedLoop() {
	go func() {
		for i := 0; i < 100; i++ {
			work()
		}
	}()
}

// PanicExit leaves the loop by panicking; counted as an exit.
func PanicExit(in chan int) {
	go func() {
		for {
			if v := <-in; v < 0 {
				panic("negative")
			}
		}
	}()
}

// LabeledBreak leaves a nested loop through a label.
func LabeledBreak(in chan int) {
	go func() {
	outer:
		for {
			for v := range in {
				if v == 0 {
					break outer
				}
			}
		}
	}()
}
