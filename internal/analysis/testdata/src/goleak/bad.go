// bad.go holds the goleak positives: goroutines whose bodies provably
// never exit — infinite loops without a way out, ranges over ticker
// channels (never closed by the runtime) and empty selects.
package goleak

import "time"

func work() {}

// SpinForever launches a literal with a bare infinite loop.
func SpinForever() {
	go func() { // want "never exits"
		for {
			work()
		}
	}()
}

// TickForever ranges over a ticker channel with no exit statement.
func TickForever() {
	t := time.NewTicker(time.Second)
	go func() { // want "ticker channel"
		for range t.C {
			work()
		}
	}()
}

// BlockForever parks a goroutine on an empty select.
func BlockForever() {
	go func() { // want "blocks forever"
		select {}
	}()
}

// spin is a named spin loop; the finding lands on the spawn site.
func spin() {
	for true {
		work()
	}
}

// SpawnNamed spawns the named infinite loop.
func SpawnNamed() {
	go spin() // want "never exits"
}

// launch is a spawn helper: goleak follows f through the call graph.
func launch(f func()) {
	go f()
}

// SpawnViaHelper hands a leaking worker to the helper; the finding lands
// on the argument.
func SpawnViaHelper() {
	launch(func() { // want "never exits"
		for {
			work()
		}
	})
}
