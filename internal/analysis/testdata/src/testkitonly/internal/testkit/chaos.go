// Package testkit is a fixture mimicking the fault-injection harness; its
// import path ends in internal/testkit, so the testkitonly rule exempts it
// (the harness may of course use itself).
package testkit

// Chaos is a stand-in for the real fault injector.
type Chaos struct {
	Seed int64
}

// NewChaos mirrors the harness constructor.
func NewChaos(seed int64) *Chaos { return &Chaos{Seed: seed} }
