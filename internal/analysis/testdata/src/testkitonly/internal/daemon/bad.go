// Package daemon is a fixture production package: importing the
// fault-injection harness from a non-test file is a finding.
package daemon

import (
	"repro/internal/analysis/testdata/src/testkitonly/internal/testkit" // want "fault injection must stay out of production binaries"
)

// Boot wires chaos into a production code path — exactly what the rule
// forbids.
func Boot() *testkit.Chaos { return testkit.NewChaos(1) }
