// Package bench is a fixture production package with no testkit import;
// the rule stays silent here.
package bench

// Run does ordinary production work.
func Run() int { return 42 }
