// hot.go holds the hotalloc positives and negatives: //hot functions are
// gated to zero heap allocations via the compiler's own escape analysis
// (-gcflags=-m), so the wants below track real `go build` output.
package hotalloc

// sink keeps escapes observable to the compiler.
var sink []float64

// ptrSink forces address-taken locals to the heap.
var ptrSink *int

// BadMake allocates a non-constant-size slice on the hot path.
//
//hot:fixture
func BadMake(n int) {
	buf := make([]float64, n) // want "allocates"
	for i := range buf {
		buf[i] = float64(i)
	}
	sink = buf
}

// BadMoved leaks the address of a local, moving it to the heap.
//
//hot:fixture
func BadMoved() {
	x := 42 // want "allocates"
	ptrSink = &x
}

// node is big enough that new(node) cannot stay on the stack once it
// escapes through the return.
type node struct{ next *node }

// BadNew returns a fresh heap object from the hot path.
//
//hot:fixture
func BadNew() *node {
	return new(node) // want "allocates"
}

// GoodArith is pure arithmetic; nothing escapes.
//
//hot:fixture
func GoodArith(a, b float64) float64 {
	return a*b + a/2
}

// GoodInPlace writes into a caller-owned buffer.
//
//hot:fixture
func GoodInPlace(dst []float64, v float64) {
	for i := range dst {
		dst[i] = v
	}
}

// GoodStackArray keeps a constant-size scratch array on the stack.
//
//hot:fixture
func GoodStackArray(v float64) float64 {
	var scratch [8]float64
	for i := range scratch {
		scratch[i] = v * float64(i)
	}
	s := 0.0
	for _, x := range scratch {
		s += x
	}
	return s
}

// ColdAlloc allocates freely: it carries no //hot directive, so the gate
// must stay silent.
func ColdAlloc(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}
