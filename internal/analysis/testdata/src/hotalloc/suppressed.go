// suppressed.go proves the //lint:ignore round-trip for hotalloc: the
// synthesized report position lands on the allocating line, so a
// directive there (or on the line above) drops the finding.
package hotalloc

// warmSink keeps the allocation observable.
var warmSink []byte

// WarmupOnce allocates deliberately: it runs once at startup before the
// hot loop begins, and the annotation documents the loop body only.
//
//hot:fixture
func WarmupOnce(n int) {
	//lint:ignore hotalloc one-time warmup allocation before the loop
	warmSink = make([]byte, n)
	for i := range warmSink {
		warmSink[i] = byte(i)
	}
}
