package analysis

import (
	"go/token"
	"strings"
)

// An ignoreDirective is one parsed //lint:ignore comment. It suppresses
// findings of the named rule (or every rule, for "all") on its own line
// and on the line directly below — so it works both trailing the offending
// statement and on a line of its own above it.
type ignoreDirective struct {
	rule      string
	reason    string
	file      string
	line      int
	pos       token.Position
	malformed bool
}

// collectIgnores scans every comment of the package for lint directives.
func (p *Package) collectIgnores() {
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				d := ignoreDirective{file: pos.Filename, line: pos.Line, pos: pos}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					d.malformed = true
				} else {
					d.rule = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				p.ignores = append(p.ignores, d)
			}
		}
	}
}

// ignoreIndex returns the index of a directive suppressing rule at pos,
// or -1. Malformed directives suppress nothing.
func (p *Package) ignoreIndex(rule string, pos token.Position) int {
	for i, d := range p.ignores {
		if d.malformed || d.file != pos.Filename {
			continue
		}
		if d.rule != rule && d.rule != "all" {
			continue
		}
		if d.line == pos.Line || d.line == pos.Line-1 {
			return i
		}
	}
	return -1
}
