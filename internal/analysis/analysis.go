// Package analysis is a stdlib-only static-analysis engine that enforces
// the repository's determinism, concurrency and physical-unit invariants.
//
// The reproduction's claims rest on properties that ordinary Go tooling
// does not check: identical seeds must yield identical imitation-learning
// traces (so wall-clock time and global RNG state must never leak into the
// simulation or training packages), the Eq. 1 DVFS arithmetic mixes
// frequencies, temperatures and powers (so every exported physical field
// must declare its unit), and the serving stack is concurrency-heavy (so
// mutexes must not be copied or leaked). This package machine-checks those
// conventions on every `make check`, the same way production stacks gate
// merges on bespoke lints next to vet and the race detector.
//
// The engine is built purely on go/parser and go/types with a source
// importer; it adds no module dependencies. (One analyzer, hotalloc, is
// the deliberate exception to the no-subprocess rule: it consults the real
// compiler's escape analysis via `go build -gcflags=-m`.) Interprocedural
// analyzers share a whole-program core — a module-wide call graph
// (callgraph.go, class-hierarchy analysis for interface calls, closure
// flow tracking) and a forward dataflow framework over per-function CFGs
// (cfg.go, dataflow.go). Ten analyzers encode the repo invariants:
//
//   - detrand:   no global math/rand, crypto/rand or wall-clock reads
//     (time.Now, time.Since) inside the deterministic packages; RNGs must
//     flow from an explicit seeded *rand.Rand.
//   - lockcheck: no value receivers or struct copies for types containing
//     sync.Mutex/sync.RWMutex, every Lock/RLock must be released on all
//     paths of the function that acquired it (directly or via defer), and
//     an RLock must not be upgraded to a Lock while still held.
//   - unitcheck: exported float64 struct fields and exported-function
//     parameters named like physical quantities (Freq, Temp, Power,
//     Voltage, Energy, IPS, Latency) must carry a unit annotation, as
//     internal/platform models (`Freq float64 // Hz`).
//   - exitcheck: no os.Exit/log.Fatal outside package main, and no panic
//     in library code unless the enclosing function documents it.
//   - testkitonly: the fault-injection harness internal/testkit may only
//     be imported from _test.go files or from testkit itself, so injected
//     chaos can never reach a production binary.
//   - telemetrycheck: outside internal/telemetry and cmd/, no expvar, no
//     time.Now/time.Since fed directly into telemetry calls (timestamps
//     flow through an injected telemetry.Clock), and metric names handed
//     to registry constructors must match the Prometheus charset.
//   - goleak:    every `go` statement must start a goroutine with a
//     provable exit path, resolved through the call graph (including
//     closures handed to spawn helpers).
//   - ctxflow:   context.Context parameters come first; request-scoped
//     code must not sever cancellation with context.Background()/TODO(),
//     must use http.NewRequestWithContext, and must consult ctx around
//     blocking channel operations and fsyncs.
//   - closecheck: resources with Close/Stop (response bodies, files,
//     listeners, tickers) are released on every path, including error and
//     failover paths; ownership transfers discharge the obligation.
//   - hotalloc:  //hot-annotated functions are gated to zero heap
//     allocations against the compiler's own escape analysis.
//
// A finding can be suppressed with a directive on its own line immediately
// above the offending line, or trailing the offending line:
//
//	//lint:ignore <rule> <reason>
//
// The reason is mandatory; a directive without one is itself a finding.
// See docs/ANALYSIS.md for the full rule catalogue and rationale.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// An Analyzer is one named invariant check. Run inspects a single package
// and reports findings through the Pass.
type Analyzer struct {
	// Name is the rule identifier used in diagnostics, enable/disable
	// flags and //lint:ignore directives.
	Name string
	// Doc is a one-paragraph description shown by `topil-lint -h`.
	Doc string
	// Run performs the check on one loaded package.
	Run func(*Pass)
	// NeedsProgram requests the whole-program view: when set, the driver
	// builds the module call graph once and exposes it as Pass.Prog.
	NeedsProgram bool
}

// All returns the full analyzer suite in deterministic order.
func All() []*Analyzer {
	return []*Analyzer{
		DetRand(), LockCheck(), UnitCheck(), ExitCheck(), TestkitOnly(), TelemetryCheck(),
		GoLeak(), CtxFlow(), CloseCheck(), HotAlloc(),
	}
}

// ByName resolves a rule name against the given suite, or nil.
func ByName(suite []*Analyzer, name string) *Analyzer {
	for _, a := range suite {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// A Pass carries one (analyzer, package) pairing and collects diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Prog is the whole-program view (all packages of this Run plus the
	// call graph); nil unless the analyzer sets NeedsProgram.
	Prog   *Program
	report func(Diagnostic)
}

// Reportf records a finding at pos. The position is resolved against the
// package's FileSet; findings suppressed by a //lint:ignore directive are
// dropped by the driver, not here.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Rule:     p.Analyzer.Name,
		Position: p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding with a stable, sortable position.
type Diagnostic struct {
	Rule     string         `json:"rule"`
	Position token.Position `json:"-"`
	Message  string         `json:"message"`

	// File, Line and Col mirror Position for JSON output.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// String formats the diagnostic in the conventional file:line:col style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// A Package is one loaded, parsed and (best-effort) type-checked package.
type Package struct {
	// Path is the import path ("repro/internal/sim"). For directories
	// outside the module root it is the cleaned directory path.
	Path string
	// Dir is the directory the files were read from.
	Dir string
	// Fset positions all files of this load.
	Fset *token.FileSet
	// Files holds the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package; it may be incomplete (but is
	// never nil) when TypeErrors is non-empty.
	Types *types.Package
	// Info carries the use/def/type maps filled during checking.
	Info *types.Info
	// TypeErrors collects type-checker complaints. Analyzers degrade to
	// syntactic checks for constructs that failed to type-check.
	TypeErrors []error

	ignores []ignoreDirective
}

// Run applies each analyzer to each package, drops suppressed findings,
// reports malformed or unused suppression directives, and returns the
// remaining diagnostics sorted by position then rule. Packages are
// analysed in parallel (one worker per CPU); the whole-program call graph
// is built once up front when any analyzer requests it.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	perPkg := runAll(pkgs, analyzers, nil)
	var diags []Diagnostic
	for _, d := range perPkg {
		diags = append(diags, d...)
	}
	finalize(diags)
	return diags
}

// runAll fans the per-package work out over the CPUs and returns raw
// (absolute-position) diagnostics per package. skip[i] marks packages the
// caller already has results for (cache hits) — those are left nil.
func runAll(pkgs []*Package, analyzers []*Analyzer, skip []bool) [][]Diagnostic {
	var prog *Program
	for _, a := range analyzers {
		if a.NeedsProgram {
			prog = BuildProgram(pkgs)
			break
		}
	}
	perPkg := make([][]Diagnostic, len(pkgs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers < 1 {
		workers = 1
	}
	var next int64 = -1
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(pkgs) {
					return
				}
				if skip != nil && skip[i] {
					continue
				}
				perPkg[i] = runPackage(pkgs[i], analyzers, prog)
			}
		}()
	}
	wg.Wait()
	return perPkg
}

// runPackage applies the suite to one package, resolving suppression
// directives. Positions are left absolute; finalize relativizes them.
func runPackage(pkg *Package, analyzers []*Analyzer, prog *Program) []Diagnostic {
	diags := []Diagnostic{} // non-nil: an empty result is a valid cache entry
	used := make([]bool, len(pkg.ignores))
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, Prog: prog}
		pass.report = func(d Diagnostic) {
			if i := pkg.ignoreIndex(d.Rule, d.Position); i >= 0 {
				used[i] = true
				return
			}
			diags = append(diags, d)
		}
		a.Run(pass)
	}
	for i, ig := range pkg.ignores {
		if ig.malformed {
			diags = append(diags, Diagnostic{
				Rule:     "badignore",
				Position: ig.pos,
				Message:  "//lint:ignore needs a rule name and a reason: //lint:ignore <rule> <reason>",
			})
		} else if !used[i] && enabled(analyzers, ig.rule) {
			diags = append(diags, Diagnostic{
				Rule:     "badignore",
				Position: ig.pos,
				Message:  fmt.Sprintf("//lint:ignore %s suppresses nothing here", ig.rule),
			})
		}
	}
	return diags
}

// finalize fills the JSON position mirror fields (relative to the working
// directory) and sorts diagnostics into the stable output order.
func finalize(diags []Diagnostic) {
	cwd, _ := os.Getwd()
	for i := range diags {
		diags[i].File = relativize(cwd, diags[i].Position.Filename)
		diags[i].Line = diags[i].Position.Line
		diags[i].Col = diags[i].Position.Column
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
}

// enabled reports whether rule is part of the active suite ("all" always
// is, so a blanket ignore never reads as unused).
func enabled(analyzers []*Analyzer, rule string) bool {
	if rule == "all" {
		return true
	}
	return ByName(analyzers, rule) != nil
}

// relativize shortens an absolute file name to be relative to base when
// the file lies beneath it; diagnostics stay readable and stable across
// checkouts.
func relativize(base, file string) string {
	if base == "" || !filepath.IsAbs(file) {
		return file
	}
	rel, err := filepath.Rel(base, file)
	if err != nil || strings.HasPrefix(rel, "..") {
		return file
	}
	return rel
}
