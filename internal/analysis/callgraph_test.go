package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadCallGraphFixture builds the whole-program view of the dedicated
// call-graph fixture module (testdata/src/callgraph).
func loadCallGraphFixture(t *testing.T) *Program {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("testdata/src/callgraph/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	return BuildProgram(pkgs)
}

// fix abbreviates the fixture's import path in test tables.
const fix = "repro/internal/analysis/testdata/src/callgraph"

// TestCallGraphDumpGolden pins the full resolved graph — one line per
// (caller, callee) edge — against testdata/callgraph.golden. Regenerate
// the golden by pasting Dump() output after a deliberate change.
func TestCallGraphDumpGolden(t *testing.T) {
	prog := loadCallGraphFixture(t)
	got := prog.Graph.Dump()
	want, err := os.ReadFile(filepath.Join("testdata", "callgraph.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("call graph dump mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestCallGraphEdges spells the golden out mechanism by mechanism, so a
// regression names the resolution path that broke rather than a diff.
func TestCallGraphEdges(t *testing.T) {
	prog := loadCallGraphFixture(t)
	cases := []struct {
		name       string
		caller     string
		callee     string // "" for an unresolved-only site ("?")
		goSite     bool
		deferSite  bool
		unresolved bool
	}{
		{name: "static call", caller: fix + ".chain", callee: fix + ".middle"},
		{name: "interface dispatch impl 1", caller: fix + ".TotalArea",
			callee: "(" + fix + ".Square).Area", unresolved: true},
		{name: "interface dispatch impl 2", caller: fix + ".TotalArea",
			callee: "(" + fix + ".Circle).Area", unresolved: true},
		{name: "closure bound to variable", caller: fix + ".UseClosure",
			callee: fix + ".UseClosure$1"},
		{name: "method value", caller: fix + ".UseMethodValue",
			callee: "(" + fix + ".Square).Area"},
		{name: "go site", caller: fix + ".Spawn", callee: fix + ".tick", goSite: true},
		{name: "defer site", caller: fix + ".Spawn", callee: fix + ".cleanup", deferSite: true},
		{name: "spawned parameter is opaque at the helper", caller: fix + ".launch",
			callee: "", goSite: true, unresolved: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			site := findSite(prog.Graph, tc.caller, tc.callee)
			if site == nil {
				t.Fatalf("no call site %s -> %q", tc.caller, tc.callee)
			}
			if site.Go != tc.goSite || site.Defer != tc.deferSite || site.Unresolved != tc.unresolved {
				t.Errorf("site %s -> %q: go=%v defer=%v unresolved=%v, want go=%v defer=%v unresolved=%v",
					tc.caller, tc.callee, site.Go, site.Defer, site.Unresolved,
					tc.goSite, tc.deferSite, tc.unresolved)
			}
		})
	}
}

// findSite locates the call site from caller to callee (by node name);
// callee "" matches a site with no resolved targets.
func findSite(cg *CallGraph, caller, callee string) *CallSite {
	for _, n := range cg.Nodes {
		if n.Name != caller {
			continue
		}
		for _, site := range n.Out {
			if callee == "" {
				if len(site.Callees) == 0 {
					return site
				}
				continue
			}
			for _, c := range site.Callees {
				if c.Name == callee {
					return site
				}
			}
		}
	}
	return nil
}

// TestSpawnedParams checks the interprocedural spawn-helper fixpoint:
// launch spawns its parameter 0, and nothing else spawns parameters.
func TestSpawnedParams(t *testing.T) {
	prog := loadCallGraphFixture(t)
	spawned := prog.Graph.SpawnedParams()
	var launchNode *FuncNode
	for _, n := range prog.Graph.Nodes {
		if n.Name == fix+".launch" {
			launchNode = n
		}
	}
	if launchNode == nil {
		t.Fatal("launch node not found")
	}
	if !spawned[launchNode][0] {
		t.Errorf("SpawnedParams()[launch] = %v, want parameter 0 marked", spawned[launchNode])
	}
	for fn, params := range spawned {
		if fn != launchNode && len(params) > 0 {
			t.Errorf("unexpected spawned params on %s: %v", fn.Name, params)
		}
	}
}

// TestSiteOf checks the call-expression index used by analyzers to
// resolve arbitrary calls (closecheck's ownership transfer).
func TestSiteOf(t *testing.T) {
	prog := loadCallGraphFixture(t)
	indexed := 0
	for _, n := range prog.Graph.Nodes {
		for _, site := range n.Out {
			if prog.Graph.SiteOf(site.Call) != site {
				t.Errorf("SiteOf does not round-trip for a site in %s", n.Name)
			}
			indexed++
		}
	}
	if indexed == 0 {
		t.Fatal("fixture produced no call sites")
	}
}

// TestDumpDeterministic guards the golden against map-order flakiness:
// two independent builds must render identically.
func TestDumpDeterministic(t *testing.T) {
	a := loadCallGraphFixture(t).Graph.Dump()
	b := loadCallGraphFixture(t).Graph.Dump()
	if a != b {
		t.Error("Dump() is not deterministic across builds")
	}
	if !strings.HasSuffix(a, "\n") {
		t.Error("Dump() output must be newline-terminated")
	}
}
