// Package perf implements the analytic performance model: how many
// instructions per second (IPS) an application phase achieves on a given
// core type, at a given frequency, with a given time share of the core.
//
// The model is a two-term CPI stack: the time per instruction is the sum of
// a core term 1/(IPC·f), which scales with frequency, and a memory term
// MPKI/1000 · Lmem, which does not. This reproduces the two effects the
// paper's policies exploit:
//
//   - applications benefit differently from the big cluster (per-cluster
//     IPC differs per application), and
//   - memory-bound applications are insensitive to DVFS (the memory term
//     dominates), e.g. canneal under powersave.
//
// The big cluster's larger caches additionally reduce the effective miss
// rate by a constant factor.
package perf

import (
	"repro/internal/platform"
	"repro/internal/workload"
)

// Model holds the performance-model parameters. The zero value is not
// usable; construct with Default().
type Model struct {
	// MemLatency is the effective per-miss stall time in seconds.
	MemLatency float64
	// BigMissScale is the multiplicative reduction of MPKI on the big
	// cluster due to its larger caches.
	BigMissScale float64
}

// Default returns the calibrated model (100 ns effective miss penalty,
// 40 % miss reduction on big).
func Default() Model {
	return Model{MemLatency: 100e-9, BigMissScale: 0.6}
}

// ipc returns the stall-free IPC of phase p on cluster kind k. The
// benchmark catalog characterizes big and LITTLE (the paper's platform);
// mid-cluster IPC is derived as 85 % of big — an A76-class core loses
// little single-thread performance against the big gear.
func ipc(p workload.Phase, k platform.ClusterKind) float64 {
	switch k {
	case platform.Big:
		return p.IPCBig
	case platform.Mid:
		return 0.85 * p.IPCBig
	default:
		return p.IPCLittle
	}
}

// missRate returns the effective misses per instruction of phase p on
// cluster kind k (big and mid caches reduce the LITTLE-referenced rate).
func (m Model) missRate(p workload.Phase, k platform.ClusterKind) float64 {
	mpi := p.MPKI / 1000
	switch k {
	case platform.Big:
		mpi *= m.BigMissScale
	case platform.Mid:
		mpi *= (1 + m.BigMissScale) / 2
	}
	return mpi
}

// TimePerInstr returns the seconds per instruction of phase p running alone
// on a core of kind k at frequency f (Hz).
//
//hot:per-app-per-tick-cpi-stack
func (m Model) TimePerInstr(p workload.Phase, k platform.ClusterKind, f float64) float64 {
	return 1/(ipc(p, k)*f) + m.missRate(p, k)*m.MemLatency
}

// IPS returns the instructions per second of phase p on a core of kind k at
// frequency f, given the fraction `share` in (0,1] of core time the
// application receives (time-sharing with co-located applications).
//
//hot:per-app-per-tick-cpi-stack
func (m Model) IPS(p workload.Phase, k platform.ClusterKind, f, share float64) float64 {
	if share <= 0 {
		return 0
	}
	return share / m.TimePerInstr(p, k, f)
}

// L2DPS returns the L2 data-cache accesses per second corresponding to the
// achieved IPS — the performance counter the policies observe.
//
//hot:per-app-per-tick-cpi-stack
func L2DPS(p workload.Phase, achievedIPS float64) float64 {
	return p.L2APKI / 1000 * achievedIPS
}

// CycleUtilization returns the fraction of active cycles doing work rather
// than stalling on memory, in (0,1]. It feeds the power model's activity
// factor: memory-stalled cycles switch less logic.
//
//hot:per-app-per-tick-cpi-stack
func (m Model) CycleUtilization(p workload.Phase, k platform.ClusterKind, f float64) float64 {
	core := 1 / (ipc(p, k) * f)
	return core / m.TimePerInstr(p, k, f)
}

// PeakIPS returns the maximum IPS the application can reach: alone on a big
// core at the platform's highest big-cluster VF level, in its fastest phase.
// The paper defines QoS targets as fractions of this quantity.
func (m Model) PeakIPS(plat *platform.Platform, spec workload.AppSpec) float64 {
	big, _ := plat.ClusterByKind(platform.Big)
	best := 0.0
	for _, p := range spec.Phases {
		if v := m.IPS(p, platform.Big, big.MaxFreq(), 1); v > best {
			best = v
		}
	}
	return best
}

// MinFreqFor returns the lowest frequency (Hz) from freqs (ascending) at
// which phase p reaches at least targetIPS with the given core share, or
// (0, false) if even the highest frequency falls short. This is the exact
// per-trace computation the oracle uses; the run-time policies instead use
// the linear-scaling estimate of Eq. (1).
func (m Model) MinFreqFor(p workload.Phase, k platform.ClusterKind,
	freqs []float64, share, targetIPS float64) (float64, bool) {
	for _, f := range freqs {
		if m.IPS(p, k, f, share) >= targetIPS {
			return f, true
		}
	}
	return 0, false
}
