package perf

import (
	"math/rand"
	"testing"

	"repro/internal/platform"
	"repro/internal/workload"
)

// TestCachedRewritesAreExact pins the algebraic rewrites the sim engine's
// per-app perf cache performs: caching TimePerInstr and L2APKI/1000 and
// folding them into the per-tick expressions must reproduce the direct
// model calls bit-for-bit (Go evaluates the product chains left to right in
// both forms, so no reassociation occurs).
func TestCachedRewritesAreExact(t *testing.T) {
	m := Default()
	rng := rand.New(rand.NewSource(17))
	kinds := []platform.ClusterKind{platform.Little, platform.Mid, platform.Big}
	specs := func() []workload.AppSpec {
		var out []workload.AppSpec
		for _, n := range workload.MixedPool() {
			s, _ := workload.ByName(n)
			out = append(out, s)
		}
		return out
	}()
	for i := 0; i < 10000; i++ {
		spec := specs[rng.Intn(len(specs))]
		ph := spec.Phases[rng.Intn(len(spec.Phases))]
		k := kinds[rng.Intn(len(kinds))]
		f := 0.5e9 + rng.Float64()*2e9
		share := 1 / float64(1+rng.Intn(6))
		scale := rng.Float64()
		avail := rng.Float64()

		tpi := m.TimePerInstr(ph, k, f)
		cachedIPS := share / tpi * scale * avail
		directIPS := m.IPS(ph, k, f, share) * scale * avail
		if cachedIPS != directIPS {
			t.Fatalf("%s k=%v f=%v share=%v: cached IPS %v != direct %v",
				spec.Name, k, f, share, cachedIPS, directIPS)
		}

		l2pi := ph.L2APKI / 1000
		if got, want := l2pi*cachedIPS, L2DPS(ph, directIPS); got != want {
			t.Fatalf("%s: cached L2DPS %v != direct %v", spec.Name, got, want)
		}
	}
}
