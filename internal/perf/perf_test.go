package perf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/platform"
	"repro/internal/workload"
)

func phaseOf(t *testing.T, name string) workload.Phase {
	t.Helper()
	spec, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown benchmark %q", name)
	}
	return spec.Phases[0]
}

func TestIPSMonotonicInFrequency(t *testing.T) {
	m := Default()
	for _, spec := range workload.Catalog() {
		for _, p := range spec.Phases {
			for _, k := range []platform.ClusterKind{platform.Little, platform.Big} {
				prev := 0.0
				for f := 0.5e9; f <= 2.4e9; f += 0.1e9 {
					v := m.IPS(p, k, f, 1)
					if v <= prev {
						t.Fatalf("%s: IPS not increasing with f on %v", spec.Name, k)
					}
					prev = v
				}
			}
		}
	}
}

func TestIPSScalesWithShare(t *testing.T) {
	m := Default()
	p := phaseOf(t, "adi")
	full := m.IPS(p, platform.Big, 1e9, 1)
	half := m.IPS(p, platform.Big, 1e9, 0.5)
	if diff := full/2 - half; diff > 1e-6*full || diff < -1e-6*full {
		t.Errorf("IPS(share=0.5) = %g, want %g", half, full/2)
	}
	if m.IPS(p, platform.Big, 1e9, 0) != 0 {
		t.Error("IPS(share=0) != 0")
	}
}

// TestAdiMotivationalAsymmetry checks the paper's motivational example:
// adi needs roughly the LITTLE cluster's top frequency but only a
// low big-cluster frequency to reach a QoS target of 30 % of its peak IPS.
func TestAdiMotivationalAsymmetry(t *testing.T) {
	m := Default()
	plat := platform.HiKey970()
	p := phaseOf(t, "adi")
	spec, _ := workload.ByName("adi")
	target := 0.3 * m.PeakIPS(plat, spec)

	little, _ := plat.ClusterByKind(platform.Little)
	big, _ := plat.ClusterByKind(platform.Big)
	littleFreqs := make([]float64, little.NumOPPs())
	for i := range littleFreqs {
		littleFreqs[i] = little.FreqAt(i)
	}
	bigFreqs := make([]float64, big.NumOPPs())
	for i := range bigFreqs {
		bigFreqs[i] = big.FreqAt(i)
	}

	fl, okL := m.MinFreqFor(p, platform.Little, littleFreqs, 1, target)
	fb, okB := m.MinFreqFor(p, platform.Big, bigFreqs, 1, target)
	if !okL || !okB {
		t.Fatalf("adi cannot reach 30%% QoS: little ok=%v big ok=%v", okL, okB)
	}
	// Paper: 1.8 GHz on LITTLE vs 0.7 GHz on big.
	if fl < 1.6e9 {
		t.Errorf("adi min LITTLE freq = %g, want near top of ladder", fl)
	}
	if fb > 1.1e9 {
		t.Errorf("adi min big freq = %g, want near bottom of ladder", fb)
	}
}

// TestSeidelPrefersLittle checks that seidel-2d reaches the same QoS target
// at a comparatively low LITTLE frequency (the paper maps it to LITTLE).
func TestSeidelPrefersLittle(t *testing.T) {
	m := Default()
	plat := platform.HiKey970()
	p := phaseOf(t, "seidel-2d")
	spec, _ := workload.ByName("seidel-2d")
	target := 0.3 * m.PeakIPS(plat, spec)

	little, _ := plat.ClusterByKind(platform.Little)
	freqs := make([]float64, little.NumOPPs())
	for i := range freqs {
		freqs[i] = little.FreqAt(i)
	}
	fl, ok := m.MinFreqFor(p, platform.Little, freqs, 1, target)
	if !ok {
		t.Fatal("seidel-2d cannot reach 30% QoS on LITTLE")
	}
	if fl > 1.3e9 {
		t.Errorf("seidel-2d min LITTLE freq = %g, want mid-ladder or below", fl)
	}
}

// TestCannealDVFSInsensitive checks the memory-bound application's weak
// frequency scaling (paper: canneal meets QoS even under powersave).
func TestCannealDVFSInsensitive(t *testing.T) {
	m := Default()
	p := phaseOf(t, "canneal")
	lo := m.IPS(p, platform.Big, 682e6, 1)
	hi := m.IPS(p, platform.Big, 2362e6, 1)
	if ratio := hi / lo; ratio > 2.2 {
		t.Errorf("canneal IPS ratio max/min freq = %.2f, want < 2.2 (memory bound)", ratio)
	}
	// A compute-bound app must scale much more strongly.
	sw := phaseOf(t, "swaptions")
	lo = m.IPS(sw, platform.Big, 682e6, 1)
	hi = m.IPS(sw, platform.Big, 2362e6, 1)
	if ratio := hi / lo; ratio < 3.0 {
		t.Errorf("swaptions IPS ratio = %.2f, want > 3 (compute bound)", ratio)
	}
}

func TestBigAlwaysFasterAtSameFreq(t *testing.T) {
	// With the catalog's IPCBig > IPCLittle and reduced miss rate, big
	// must dominate at equal frequency — the clusters differ in
	// efficiency, not raw speed.
	m := Default()
	for _, spec := range workload.Catalog() {
		for _, p := range spec.Phases {
			if m.IPS(p, platform.Big, 1e9, 1) <= m.IPS(p, platform.Little, 1e9, 1) {
				t.Errorf("%s: big not faster than LITTLE at 1 GHz", spec.Name)
			}
		}
	}
}

func TestMinFreqForProperty(t *testing.T) {
	m := Default()
	plat := platform.HiKey970()
	big, _ := plat.ClusterByKind(platform.Big)
	freqs := make([]float64, big.NumOPPs())
	for i := range freqs {
		freqs[i] = big.FreqAt(i)
	}
	specs := workload.Catalog()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := specs[r.Intn(len(specs))]
		p := spec.Phases[r.Intn(len(spec.Phases))]
		target := r.Float64() * 5e9
		fmin, ok := m.MinFreqFor(p, platform.Big, freqs, 1, target)
		if !ok {
			return m.IPS(p, platform.Big, freqs[len(freqs)-1], 1) < target
		}
		if m.IPS(p, platform.Big, fmin, 1) < target {
			return false // does not satisfy
		}
		idx := big.IndexOf(fmin)
		if idx > 0 && m.IPS(p, platform.Big, freqs[idx-1], 1) >= target {
			return false // not minimal
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCycleUtilizationBounds(t *testing.T) {
	m := Default()
	for _, spec := range workload.Catalog() {
		for _, p := range spec.Phases {
			for _, f := range []float64{509e6, 1.2e9, 2.362e9} {
				u := m.CycleUtilization(p, platform.Big, f)
				if u <= 0 || u > 1 {
					t.Errorf("%s: cycle utilization %g out of (0,1]", spec.Name, u)
				}
			}
		}
	}
	// Utilization falls with frequency for memory-bound apps (stall share grows).
	p := phaseOf(t, "canneal")
	if m.CycleUtilization(p, platform.Big, 2.362e9) >= m.CycleUtilization(p, platform.Big, 682e6) {
		t.Error("canneal: cycle utilization should drop at high frequency")
	}
}

func TestL2DPSProportionalToIPS(t *testing.T) {
	p := phaseOf(t, "fdtd-2d")
	if got, want := L2DPS(p, 1e9), p.L2APKI/1000*1e9; got != want {
		t.Errorf("L2DPS = %g, want %g", got, want)
	}
}

func TestPeakIPSUsesFastestPhase(t *testing.T) {
	m := Default()
	plat := platform.HiKey970()
	spec, _ := workload.ByName("dedup") // two phases with different IPS
	peak := m.PeakIPS(plat, spec)
	big, _ := plat.ClusterByKind(platform.Big)
	for _, p := range spec.Phases {
		if v := m.IPS(p, platform.Big, big.MaxFreq(), 1); v > peak+1 {
			t.Errorf("PeakIPS %g below phase IPS %g", peak, v)
		}
	}
	if peak <= 0 {
		t.Error("PeakIPS not positive")
	}
}
