package online

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/npu"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ReplayMetrics summarize one candidate evaluation over the replay window:
// the quantities the promotion gate and the rollback monitor compare.
type ReplayMetrics struct {
	// ViolationFrac is the fraction of applications that missed their QoS
	// target over the replay window.
	ViolationFrac float64 `json:"violationFrac"`
	// PeakTemp is the peak sensor temperature reached (°C).
	PeakTemp float64 `json:"peakTemp"`
}

// ReplayFunc scores a model over a deterministic replay window. The same
// seed must yield the same metrics for the same model — the gate compares
// candidate and incumbent under identical conditions.
type ReplayFunc func(m *nn.MLP, seed int64) (ReplayMetrics, error)

// SimReplay returns a ReplayFunc that runs the model as TOP-IL's backend
// over a seeded mixed workload for `duration` simulated seconds with
// `apps` concurrent applications, and reports the resulting QoS violation
// fraction and peak temperature. Deterministic per (model, seed).
func SimReplay(duration float64, apps int) ReplayFunc {
	if duration <= 0 {
		duration = 20
	}
	if apps <= 0 {
		apps = 2
	}
	return func(m *nn.MLP, seed int64) (rm ReplayMetrics, err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("online: replay panicked: %v", p)
			}
		}()
		if m == nil {
			return ReplayMetrics{}, fmt.Errorf("online: replaying nil model")
		}
		sc := sim.DefaultConfig(true, 25)
		e := sim.New(sc)
		pm := perf.Default()
		pool := workload.MixedPool()
		n := int64(len(pool))
		for i := 0; i < apps; i++ {
			idx := ((seed+int64(i))%n + n) % n
			spec, ok := workload.ByName(pool[idx])
			if !ok {
				return ReplayMetrics{}, fmt.Errorf("online: unknown replay benchmark")
			}
			spec.TotalInstr = 1e18
			e.AddJob(workload.Job{Spec: spec, QoS: 0.3 * pm.PeakIPS(sc.Platform, spec)})
		}
		mgr := core.New(npu.New(m), core.DefaultConfig())
		res := e.Run(mgr, duration)
		if len(res.Apps) == 0 {
			return ReplayMetrics{}, fmt.Errorf("online: replay admitted no applications")
		}
		return ReplayMetrics{
			ViolationFrac: float64(res.Violations) / float64(len(res.Apps)),
			PeakTemp:      res.PeakTemp,
		}, nil
	}
}
