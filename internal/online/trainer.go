package online

import (
	"fmt"

	"repro/internal/nn"
)

// TrainFunc retrains the policy on the aggregated dataset. incumbent is
// the currently active network (never mutated — clone for warm starts);
// seed makes the run reproducible. Implementations may panic: the manager
// converts panics into train failures.
type TrainFunc func(incumbent *nn.MLP, ds nn.Dataset, seed int64) (*nn.MLP, error)

// DefaultTrainConfig returns the online retraining hyper-parameters: a
// short warm-start schedule (the candidate starts from the incumbent's
// weights, so far fewer epochs than a from-scratch fit) with a gentle
// learning rate that refines rather than overwrites what the offline
// dataset taught.
func DefaultTrainConfig() nn.TrainConfig {
	return nn.TrainConfig{
		LR0:       2e-3,
		LRDecay:   0.97,
		MaxEpochs: 60,
		Patience:  12,
	}
}

// DefaultTrain returns a TrainFunc that warm-starts from the incumbent and
// fits the aggregate with a 15 % validation split for early stopping.
func DefaultTrain(cfg nn.TrainConfig) TrainFunc {
	return func(incumbent *nn.MLP, ds nn.Dataset, seed int64) (*nn.MLP, error) {
		if incumbent == nil {
			return nil, fmt.Errorf("online: no incumbent model to warm-start from")
		}
		if ds.Len() == 0 {
			return nil, fmt.Errorf("online: empty aggregated dataset")
		}
		m := incumbent.Clone()
		train, val := ds.Split(0.15, seed)
		if train.Len() == 0 || val.Len() == 0 {
			// Too small to hold out: validate on the training set (early
			// stopping then tracks the training loss).
			train, val = ds, ds
		}
		cfg.Seed = seed
		if _, err := m.Train(train, val, cfg); err != nil {
			return nil, err
		}
		return m, nil
	}
}
