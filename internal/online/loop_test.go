package online

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/nn"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestLoopDrivesFullCycleWithRollback(t *testing.T) {
	pub := newFakePublisher(nn.NewMLP([]int{3, 8, 8}, 1))
	replay := &scriptedReplay{metrics: ReplayMetrics{ViolationFrac: 0.1, PeakTemp: 60}}
	m := managerFixture(t, pub, replay.fn)
	m.gate.Window = 1

	recordN(t, m, 6, 0)
	var live atomic.Value
	live.Store([2]float64{0.1, 60})
	loop := StartLoop(LoopConfig{
		Interval: 2 * time.Millisecond,
		Manager:  m,
		Telemetry: func() (float64, float64, bool) {
			v := live.Load().([2]float64)
			return v[0], v[1], true
		},
	})
	defer loop.Close()

	// The ticker drains the recorded samples, trains and stages a shadow.
	waitFor(t, "candidate staged", func() bool {
		_, shadow := pub.state()
		return shadow == 2
	})
	// Feed agreeing shadow traffic; the next tick promotes.
	m.ObserveShadow(1, 2, rows(2, 3), rows(2, 3))
	waitFor(t, "promotion", func() bool {
		active, _ := pub.state()
		return active == 2
	})
	// Regressing live telemetry rolls back automatically.
	live.Store([2]float64{0.9, 60})
	waitFor(t, "rollback", func() bool {
		active, _ := pub.state()
		return active == 1
	})
	if st := m.Status(); st.Promotions != 1 || st.Rollbacks != 1 {
		t.Fatalf("loop lifecycle counters: %+v", st)
	}
}

func TestLoopSurvivesPanicsAndReportsErrors(t *testing.T) {
	pub := newFakePublisher(nn.NewMLP([]int{3, 8, 8}, 1))
	m := managerFixture(t, pub, (&scriptedReplay{}).fn)

	var trainCalls, errs atomic.Int64
	m.cfg.Train = func(incumbent *nn.MLP, ds nn.Dataset, seed int64) (*nn.MLP, error) {
		trainCalls.Add(1)
		panic("synthetic train panic")
	}
	recordN(t, m, 6, 0)
	loop := StartLoop(LoopConfig{
		Interval: 2 * time.Millisecond,
		Manager:  m,
		// A panicking telemetry probe must not kill the loop either.
		Telemetry: func() (float64, float64, bool) { panic("synthetic telemetry panic") },
		OnError:   func(error) { errs.Add(1) },
	})

	waitFor(t, "train attempt", func() bool { return trainCalls.Load() >= 1 })
	waitFor(t, "error surfaced", func() bool { return errs.Load() >= 1 })
	// Later ticks still run (the telemetry panic did not end the loop):
	// record more samples and watch another train attempt happen.
	before := trainCalls.Load()
	recordN(t, m, 6, 6)
	waitFor(t, "loop still ticking", func() bool { return trainCalls.Load() > before })
	loop.Close()

	st := m.Status()
	if st.TrainFailures == 0 {
		t.Fatalf("panicking train not surfaced: %+v", st)
	}
	if active, shadow := pub.state(); active != 1 || shadow != 0 {
		t.Fatalf("failed loop cycles touched the registry: v%d/v%d", active, shadow)
	}
	// Close is idempotent.
	loop.Close()
}

func TestLoopDefaultInterval(t *testing.T) {
	pub := newFakePublisher(nn.NewMLP([]int{3, 8, 8}, 1))
	m := managerFixture(t, pub, (&scriptedReplay{}).fn)
	loop := StartLoop(LoopConfig{Manager: m})
	if loop.cfg.Interval != 30*time.Second {
		t.Fatalf("default interval = %v", loop.cfg.Interval)
	}
	loop.Close()
}
