package online

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/nn"
)

// toyDataset builds a deterministic regression set mapping x -> one-hot.
func toyDataset(n, inDim, outDim int, seed int64) nn.Dataset {
	rng := rand.New(rand.NewSource(seed))
	var ds nn.Dataset
	for i := 0; i < n; i++ {
		x := make([]float64, inDim)
		for j := range x {
			x[j] = rng.Float64()
		}
		y := make([]float64, outDim)
		y[i%outDim] = 1
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, y)
	}
	return ds
}

func TestDefaultTrainWarmStartsWithoutMutatingIncumbent(t *testing.T) {
	cfg := DefaultTrainConfig()
	cfg.MaxEpochs = 5
	train := DefaultTrain(cfg)

	incumbent := nn.NewMLP([]int{4, 8, 3}, 2)
	probe := []float64{0.1, 0.2, 0.3, 0.4}
	before := append([]float64(nil), incumbent.Predict(probe)...)

	ds := toyDataset(40, 4, 3, 9)
	cand, err := train(incumbent, ds, 7)
	if err != nil {
		t.Fatal(err)
	}
	if cand == incumbent {
		t.Fatal("trainer returned the incumbent instance")
	}
	if after := incumbent.Predict(probe); !reflect.DeepEqual(before, after) {
		t.Fatalf("training mutated the incumbent: %v -> %v", before, after)
	}
	if got := cand.Predict(probe); len(got) != 3 {
		t.Fatalf("candidate output dim %d, want 3", len(got))
	}

	// Same (incumbent, dataset, seed) → identical candidate.
	c2, err := train(incumbent, ds, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cand.Predict(probe), c2.Predict(probe)) {
		t.Fatal("training not deterministic for a fixed seed")
	}
}

func TestDefaultTrainTinyDatasetFallsBackToSelfValidation(t *testing.T) {
	cfg := DefaultTrainConfig()
	cfg.MaxEpochs = 3
	train := DefaultTrain(cfg)
	incumbent := nn.NewMLP([]int{4, 8, 3}, 2)
	// Two examples: a 15% split leaves an empty side, so the trainer must
	// fall back to validating on the training set.
	if _, err := train(incumbent, toyDataset(2, 4, 3, 1), 3); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultTrainRejectsBadInputs(t *testing.T) {
	train := DefaultTrain(DefaultTrainConfig())
	if _, err := train(nil, toyDataset(4, 4, 3, 1), 1); err == nil {
		t.Fatal("trained from a nil incumbent")
	}
	if _, err := train(nn.NewMLP([]int{4, 8, 3}, 2), nn.Dataset{}, 1); err == nil {
		t.Fatal("trained on an empty dataset")
	}
}
