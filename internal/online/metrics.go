package online

import "repro/internal/telemetry"

// Metrics are the online_* families, labelled by model. Every counter is a
// telemetry handle, so /metrics and /v1/online read the same numbers.
type Metrics struct {
	Recorded      *telemetry.Counter // samples appended to the log
	Labeled       *telemetry.Counter // samples the oracle labeled
	Skipped       *telemetry.Counter // samples the labeler declined (no context / infeasible)
	LabelFailures *telemetry.Counter // oracle queries that errored or panicked
	TrainCycles   *telemetry.Counter // retrain attempts started
	TrainFailures *telemetry.Counter // retrains that errored, panicked, or failed to publish
	Publishes     *telemetry.Counter // candidate versions published
	Promotions    *telemetry.Counter // candidates swapped to active
	Rollbacks     *telemetry.Counter // post-promotion reversions
	Rejected      *telemetry.Counter // candidates the gate refused
	ShadowRows    *telemetry.Counter // rows compared candidate-vs-incumbent
	ShadowAgree   *telemetry.Counter // compared rows whose argmax actions agreed
	DatasetSize   *telemetry.Gauge   // aggregated examples currently held
}

// NewMetrics resolves the online_* family handles for one model label on
// reg (nil gets a private registry, so standalone managers work).
func NewMetrics(reg *telemetry.Registry, model string) *Metrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &Metrics{
		Recorded: reg.CounterVec("online_samples_recorded_total",
			"visited states appended to the sample log", "model").With(model),
		Labeled: reg.CounterVec("online_samples_labeled_total",
			"visited states the oracle labeled (DAgger queries answered)", "model").With(model),
		Skipped: reg.CounterVec("online_samples_skipped_total",
			"visited states the labeler declined (missing context or infeasible)", "model").With(model),
		LabelFailures: reg.CounterVec("online_label_failures_total",
			"oracle label queries that errored or panicked", "model").With(model),
		TrainCycles: reg.CounterVec("online_train_cycles_total",
			"background retrain attempts started", "model").With(model),
		TrainFailures: reg.CounterVec("online_train_failures_total",
			"background retrains that errored, panicked, or failed to publish", "model").With(model),
		Publishes: reg.CounterVec("online_publishes_total",
			"candidate model versions published to the registry", "model").With(model),
		Promotions: reg.CounterVec("online_promotions_total",
			"candidate versions promoted to active by the gate", "model").With(model),
		Rollbacks: reg.CounterVec("online_rollbacks_total",
			"post-promotion rollbacks to the prior version", "model").With(model),
		Rejected: reg.CounterVec("online_candidates_rejected_total",
			"candidate versions the promotion gate refused", "model").With(model),
		ShadowRows: reg.CounterVec("online_shadow_rows_total",
			"live rows scored by both the candidate and the incumbent", "model").With(model),
		ShadowAgree: reg.CounterVec("online_shadow_agree_total",
			"shadow-scored rows whose argmax actions agreed", "model").With(model),
		DatasetSize: reg.GaugeVec("online_dataset_size",
			"aggregated training examples currently held", "model").With(model),
	}
}
