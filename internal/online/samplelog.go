package online

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/journal"
)

// Sample log file layout inside a log directory:
//
//	samples.log    one "<crc32 hex> <sample json>\n" line per Append
//	samples.json   snapshot {"total": N, "samples": [...]}, rewritten by Compact
//
// The journal records every append; the retained reservoir is a pure
// function of (seed, the journaled Seq stream), so replaying snapshot +
// journal reconstructs the exact in-memory state. Appends are buffered —
// Sync flushes them to disk at cycle boundaries; a torn or corrupt tail is
// truncated to the last intact line on the next open, exactly like the
// cluster job journal (both ride internal/journal).
const (
	logName      = "samples.log"
	snapshotName = "samples.json"
)

// DefaultSampleCap bounds the retained reservoir.
const DefaultSampleCap = 4096

// DefaultCompactEvery is the journal length that triggers auto-compaction.
const DefaultCompactEvery = 8192

// logSnapshot is the compacted on-disk state.
type logSnapshot struct {
	Total   uint64   `json:"total"`
	Samples []Sample `json:"samples"`
}

// SampleLog is the bounded durable record of visited states. Retention is
// reservoir sampling (algorithm R) with a stateless twist: the decision
// for lifetime index s uses an RNG seeded by mix(seed, s), so it depends
// only on (seed, Seq) — no RNG state to serialize, and journal replay
// reproduces the reservoir exactly.
type SampleLog struct {
	dir  string
	cap  int
	seed int64

	mu           sync.Mutex
	f            *os.File
	closed       bool
	compactEvery int
	total        uint64 // lifetime appends == last assigned Seq
	snapTotal    uint64 // total as of the last compaction
	samples      []Sample
	tailLen      int // journal lines since the last compaction
}

// OpenSampleLog opens (creating if needed) the log in dir with the given
// reservoir capacity and seed, replaying snapshot and journal and
// truncating any torn journal tail. The same (cap, seed) must be used
// across reopens for the reservoir to stay consistent with its journal.
func OpenSampleLog(dir string, capacity int, seed int64) (*SampleLog, error) {
	if capacity <= 0 {
		capacity = DefaultSampleCap
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("online: sample log dir: %w", err)
	}
	l := &SampleLog{dir: dir, cap: capacity, seed: seed, compactEvery: DefaultCompactEvery}

	snapPath := filepath.Join(dir, snapshotName)
	if data, err := os.ReadFile(snapPath); err == nil {
		var snap logSnapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return nil, fmt.Errorf("online: corrupt sample snapshot %s: %w", snapPath, err)
		}
		l.total = snap.Total
		l.snapTotal = snap.Total
		l.samples = snap.Samples
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("online: reading sample snapshot: %w", err)
	}

	jPath := filepath.Join(dir, logName)
	data, err := os.ReadFile(jPath)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("online: reading sample journal: %w", err)
	}
	good := journal.Scan(data, func(payload []byte) bool {
		var s Sample
		if err := json.Unmarshal(payload, &s); err != nil {
			return false
		}
		if s.Seq == 0 {
			return false
		}
		// Journal lines already folded into the snapshot replay as no-ops.
		if s.Seq <= l.snapTotal {
			return true
		}
		l.applyLocked(s)
		l.tailLen++
		return true
	})
	if good < len(data) {
		if err := os.Truncate(jPath, int64(good)); err != nil {
			return nil, fmt.Errorf("online: truncating torn sample journal: %w", err)
		}
	}

	f, err := os.OpenFile(jPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("online: opening sample journal: %w", err)
	}
	l.f = f
	return l, nil
}

// reservoirSlot returns the replacement slot for the sample with lifetime
// index seq (1-based) in a reservoir of the given capacity, or -1 to drop
// it. Pure function of (seed, seq, capacity): algorithm R with the RNG
// reseeded per decision.
func reservoirSlot(seed int64, seq uint64, capacity int) int {
	j := rand.New(rand.NewSource(seed ^ splitmix(seq))).Int63n(int64(seq))
	if j < int64(capacity) {
		return int(j)
	}
	return -1
}

// splitmix finalizes seq into well-distributed seed bits (splitmix64).
func splitmix(x uint64) int64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return int64(x ^ (x >> 31))
}

// applyLocked folds one journaled sample into the reservoir.
func (l *SampleLog) applyLocked(s Sample) {
	if s.Seq > l.total {
		l.total = s.Seq
	}
	if len(l.samples) < l.cap {
		l.samples = append(l.samples, s)
		return
	}
	if slot := reservoirSlot(l.seed, s.Seq, l.cap); slot >= 0 {
		l.samples[slot] = s
	}
}

// Append assigns the next lifetime Seq to the sample, journals it
// (buffered — see Sync) and folds it into the reservoir. It returns the
// assigned Seq.
func (l *SampleLog) Append(s Sample) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("online: sample log is closed")
	}
	s.Seq = l.total + 1
	payload, err := json.Marshal(s)
	if err != nil {
		return 0, fmt.Errorf("online: encoding sample: %w", err)
	}
	if _, err := l.f.Write(journal.EncodeLine(nil, payload)); err != nil {
		return 0, fmt.Errorf("online: appending sample journal: %w", err)
	}
	l.applyLocked(s)
	l.tailLen++
	if l.compactEvery > 0 && l.tailLen >= l.compactEvery {
		// Journal stays intact if compaction fails; retried next crossing.
		_ = l.compactLocked()
	}
	return s.Seq, nil
}

// Sync flushes buffered appends to stable storage — the cycle-boundary
// durability point (per-sample fsync would throttle the sim hot path).
func (l *SampleLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	return l.f.Sync()
}

// SetCompactEvery adjusts the auto-compaction threshold; n <= 0 disables.
func (l *SampleLog) SetCompactEvery(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.compactEvery = n
}

// Compact folds the journal into an atomically installed snapshot and
// truncates the journal — bounded reopen cost for long-lived daemons.
func (l *SampleLog) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("online: sample log is closed")
	}
	return l.compactLocked()
}

// compactLocked does the work of Compact. Callers hold l.mu.
func (l *SampleLog) compactLocked() error {
	data, err := json.Marshal(logSnapshot{Total: l.total, Samples: l.samples})
	if err != nil {
		return fmt.Errorf("online: encoding sample snapshot: %w", err)
	}
	if err := journal.WriteFileAtomic(filepath.Join(l.dir, snapshotName), data); err != nil {
		return fmt.Errorf("online: installing sample snapshot: %w", err)
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("online: truncating sample journal: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("online: syncing truncated sample journal: %w", err)
	}
	l.snapTotal = l.total
	l.tailLen = 0
	return nil
}

// Total returns the lifetime append count (== the last assigned Seq).
func (l *SampleLog) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Len returns the number of retained samples.
func (l *SampleLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.samples)
}

// Cap returns the reservoir capacity.
func (l *SampleLog) Cap() int { return l.cap }

// Since returns copies of the retained samples with Seq > after, ascending
// by Seq — the trainer's per-cycle drain.
func (l *SampleLog) Since(after uint64) []Sample {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Sample
	for _, s := range l.samples {
		if s.Seq > after {
			out = append(out, s)
		}
	}
	// The reservoir replaces in place, so retained samples are not in Seq
	// order; restore it (insertion sort — drains are small and near-sorted).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Seq > out[j].Seq; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Close flushes and releases the journal file. Closing twice is fine.
func (l *SampleLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}
