package online

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func mkSample(i int) Sample {
	return Sample{
		Origin:       OriginSim,
		AoI:          "adi",
		Features:     []float64{float64(i), float64(2 * i)},
		Action:       i % 8,
		QoS:          1e9 + float64(i),
		ClusterFreqs: []float64{1.8e9, 2.4e9},
	}
}

func TestSampleLogReopenReproducesReservoir(t *testing.T) {
	const n, capacity, seed = 50, 8, 42

	dirA, dirB := t.TempDir(), t.TempDir()
	a, err := OpenSampleLog(dirA, capacity, seed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenSampleLog(dirB, capacity, seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := a.Append(mkSample(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Append(mkSample(i)); err != nil {
			t.Fatal(err)
		}
		// Close/reopen A every 13 appends: replay must reconstruct the
		// exact reservoir the uninterrupted log B holds.
		if i%13 == 12 {
			if err := a.Close(); err != nil {
				t.Fatal(err)
			}
			if a, err = OpenSampleLog(dirA, capacity, seed); err != nil {
				t.Fatalf("reopen after %d appends: %v", i+1, err)
			}
		}
	}
	if a.Total() != n || b.Total() != n {
		t.Fatalf("totals = %d, %d, want %d", a.Total(), b.Total(), n)
	}
	if got, want := a.Since(0), b.Since(0); !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened reservoir diverged:\n got %v\nwant %v", got, want)
	}
	if a.Len() != capacity {
		t.Fatalf("reservoir len = %d, want %d", a.Len(), capacity)
	}
	a.Close()
	b.Close()
}

func TestSampleLogTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSampleLog(dir, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(mkSample(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the journal mid-line, as a crash during an append would.
	path := filepath.Join(dir, logName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	l, err = OpenSampleLog(dir, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Total() != 4 || l.Len() != 4 {
		t.Fatalf("after torn tail: total %d len %d, want 4, 4", l.Total(), l.Len())
	}
	// The torn bytes must be gone so appends extend an intact journal.
	seq, err := l.Append(mkSample(99))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 5 {
		t.Fatalf("post-truncation Seq = %d, want 5", seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l, err = OpenSampleLog(dir, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	got := l.Since(0)
	if len(got) != 5 || got[4].Seq != 5 || got[4].Features[0] != 99 {
		t.Fatalf("reopen after repair lost data: %v", got)
	}
}

func TestSampleLogCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSampleLog(dir, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	l.SetCompactEvery(10)
	for i := 0; i < 25; i++ {
		if _, err := l.Append(mkSample(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Since(0)
	// 25 appends with threshold 10 → at least two auto-compactions; the
	// journal tail holds only the appends since the last one.
	fi, err := os.Stat(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		// Possible only if append 25 triggered compaction; threshold math
		// says otherwise.
		t.Fatalf("journal unexpectedly empty")
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("snapshot missing after auto-compaction: %v", err)
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	fi, err = os.Stat(filepath.Join(dir, logName))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Fatalf("journal not truncated by Compact: %d bytes", fi.Size())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, err = OpenSampleLog(dir, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Total() != 25 {
		t.Fatalf("total after compacted reopen = %d, want 25", l.Total())
	}
	if got := l.Since(0); !reflect.DeepEqual(got, before) {
		t.Fatalf("compaction changed the reservoir:\n got %v\nwant %v", got, before)
	}
	// Seq numbering continues across the snapshot boundary.
	if seq, err := l.Append(mkSample(25)); err != nil || seq != 26 {
		t.Fatalf("Append after compacted reopen = (%d, %v), want (26, nil)", seq, err)
	}
}

func TestSampleLogRejectsAppendAfterClose(t *testing.T) {
	l, err := OpenSampleLog(t.TempDir(), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := l.Append(mkSample(0)); err == nil {
		t.Fatal("Append after Close succeeded")
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync after Close: %v", err)
	}
}
