package online

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/nn"
)

// fakePublisher is an in-memory Publisher with full call observability.
type fakePublisher struct {
	mu      sync.Mutex
	models  map[int]*nn.MLP
	next    int
	active  int
	shadow  int
	swaps   []int
	clears  int
	pubErr  error
	swapErr error
}

func newFakePublisher(incumbent *nn.MLP) *fakePublisher {
	return &fakePublisher{models: map[int]*nn.MLP{1: incumbent}, next: 2, active: 1}
}

func (p *fakePublisher) Publish(m *nn.MLP, source string) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pubErr != nil {
		return 0, p.pubErr
	}
	v := p.next
	p.next++
	p.models[v] = m
	return v, nil
}

func (p *fakePublisher) Swap(version int) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.swapErr != nil {
		return 0, p.swapErr
	}
	if p.models[version] == nil {
		return 0, fmt.Errorf("fake: no version %d", version)
	}
	prev := p.active
	p.active = version
	p.swaps = append(p.swaps, version)
	if p.shadow == version {
		p.shadow = 0
	}
	return prev, nil
}

func (p *fakePublisher) SetShadow(version int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.shadow = version
	return nil
}

func (p *fakePublisher) ClearShadow() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.shadow = 0
	p.clears++
}

func (p *fakePublisher) ActiveVersion() (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active, nil
}

func (p *fakePublisher) ActiveModel() (*nn.MLP, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.models[p.active], nil
}

func (p *fakePublisher) state() (active, shadow int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active, p.shadow
}

// funcLabeler adapts a function to Labeler.
type funcLabeler func(s Sample) ([]float64, bool, error)

func (f funcLabeler) Label(s Sample) ([]float64, bool, error) { return f(s) }

// onehotLabeler labels every sim sample with a one-hot of its action.
func onehotLabeler(dim int) funcLabeler {
	return func(s Sample) ([]float64, bool, error) {
		if s.Origin != OriginSim {
			return nil, false, nil
		}
		y := make([]float64, dim)
		y[s.Action%dim] = 1
		return y, true, nil
	}
}

// fastTrain clones the incumbent without fitting — instant "retraining"
// for pipeline tests.
func fastTrain(incumbent *nn.MLP, ds nn.Dataset, seed int64) (*nn.MLP, error) {
	if incumbent == nil {
		return nil, fmt.Errorf("no incumbent")
	}
	return incumbent.Clone(), nil
}

// scriptedReplay returns per-model replay metrics from a mutable table.
type scriptedReplay struct {
	mu      sync.Mutex
	metrics ReplayMetrics
	err     error
	calls   int
}

func (r *scriptedReplay) fn(m *nn.MLP, seed int64) (ReplayMetrics, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls++
	return r.metrics, r.err
}

func managerFixture(t *testing.T, pub *fakePublisher, replay ReplayFunc) *Manager {
	t.Helper()
	log, err := OpenSampleLog(t.TempDir(), 256, 11)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	m, err := NewManager(ManagerConfig{
		Model:         "policy",
		Publisher:     pub,
		Labeler:       onehotLabeler(8),
		Log:           log,
		Seed:          11,
		MinNewSamples: 4,
		Train:         fastTrain,
		Replay:        replay,
		Gate:          GateConfig{Window: 4, MinAgreement: 0.5, MaxQoSDelta: 0.05, MaxTempDelta: 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func recordN(t *testing.T, m *Manager, n, from int) {
	t.Helper()
	for i := 0; i < n; i++ {
		s := mkSample(from + i)
		s.Features = []float64{float64(from + i), 1, 2}
		if err := m.Record(s); err != nil {
			t.Fatal(err)
		}
	}
}

// rows returns n identical rating rows whose argmax is action.
func rows(n, action int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		r := make([]float64, 8)
		r[action] = 1
		out[i] = r
	}
	return out
}

// TestManagerFullCycleAndRollback walks the complete continual-learning
// lifecycle: record → label → train → publish → shadow → promote, then an
// injected live regression forces an automatic rollback.
func TestManagerFullCycleAndRollback(t *testing.T) {
	incumbent := nn.NewMLP([]int{3, 8, 8}, 1)
	pub := newFakePublisher(incumbent)
	replay := &scriptedReplay{metrics: ReplayMetrics{ViolationFrac: 0.1, PeakTemp: 60}}
	m := managerFixture(t, pub, replay.fn)

	// Below MinNewSamples: no retrain.
	recordN(t, m, 3, 0)
	if err := m.RunCycle(100); err != nil {
		t.Fatal(err)
	}
	if _, shadow := pub.state(); shadow != 0 {
		t.Fatalf("retrained below MinNewSamples (shadow v%d)", shadow)
	}
	if st := m.Status(); st.SamplesLabeled != 3 || st.DatasetSize != 3 || st.TrainCycles != 0 {
		t.Fatalf("status after undersized cycle: %+v", st)
	}

	// Enough new samples: cycle trains, publishes v2, stages it as shadow.
	recordN(t, m, 5, 3)
	if err := m.RunCycle(200); err != nil {
		t.Fatal(err)
	}
	active, shadow := pub.state()
	if active != 1 || shadow != 2 {
		t.Fatalf("after cycle: active v%d shadow v%d, want v1/v2", active, shadow)
	}
	st := m.Status()
	if st.CandidateVersion != 2 || st.TrainCycles != 1 || st.ActiveVersion != 1 {
		t.Fatalf("status after training cycle: %+v", st)
	}
	if st.LastCycleUnix != 200 {
		t.Fatalf("lastCycleUnix = %d, want 200", st.LastCycleUnix)
	}

	// Window not yet full: no promotion.
	if ok, err := m.TryPromote(); err != nil || ok {
		t.Fatalf("TryPromote before window = (%v, %v)", ok, err)
	}
	// Stale shadow versions are ignored.
	m.ObserveShadow(1, 99, rows(10, 0), rows(10, 0))
	if st := m.Status(); st.ShadowComparisons != 0 {
		t.Fatalf("stale shadow batch counted: %+v", st)
	}
	// Agreeing live traffic fills the window.
	m.ObserveShadow(1, 2, rows(3, 4), rows(3, 4))
	m.ObserveShadow(1, 2, rows(2, 1), rows(2, 1))
	if st := m.Status(); st.ShadowComparisons != 5 || st.ShadowAgreement != 1.0 {
		t.Fatalf("shadow stats: %+v", st)
	}
	ok, err := m.TryPromote()
	if err != nil || !ok {
		t.Fatalf("TryPromote = (%v, %v), want promotion", ok, err)
	}
	active, shadow = pub.state()
	if active != 2 || shadow != 0 {
		t.Fatalf("after promotion: active v%d shadow v%d, want v2/none", active, shadow)
	}
	st = m.Status()
	if st.Promotions != 1 || st.CandidateVersion != 0 || st.PreviousVersion != 1 {
		t.Fatalf("status after promotion: %+v", st)
	}
	if replay.calls != 2 { // candidate + incumbent, same seed
		t.Fatalf("replay calls = %d, want 2", replay.calls)
	}

	// Healthy telemetry: no rollback.
	if rb, err := m.ReportLive(0.1, 60); err != nil || rb {
		t.Fatalf("ReportLive healthy = (%v, %v)", rb, err)
	}
	if active, _ = pub.state(); active != 2 {
		t.Fatalf("healthy telemetry moved active to v%d", active)
	}
	// Regression beyond the gate deltas: automatic rollback to v1.
	rb, err := m.ReportLive(0.5, 60)
	if err != nil || !rb {
		t.Fatalf("ReportLive regression = (%v, %v), want rollback", rb, err)
	}
	if active, _ = pub.state(); active != 1 {
		t.Fatalf("rollback landed on v%d, want v1", active)
	}
	if st := m.Status(); st.Rollbacks != 1 {
		t.Fatalf("rollback not counted: %+v", st)
	}
	// Rollback disarms the monitor: further regressions are inert.
	if rb, _ := m.ReportLive(0.9, 90); rb {
		t.Fatal("monitor still armed after rollback")
	}
}

// TestManagerRejectsOnDisagreement kills a candidate whose live shadow
// agreement is below the gate.
func TestManagerRejectsOnDisagreement(t *testing.T) {
	pub := newFakePublisher(nn.NewMLP([]int{3, 8, 8}, 1))
	replay := &scriptedReplay{}
	m := managerFixture(t, pub, replay.fn)

	recordN(t, m, 6, 0)
	if err := m.RunCycle(100); err != nil {
		t.Fatal(err)
	}
	m.ObserveShadow(1, 2, rows(5, 0), rows(5, 7)) // total disagreement
	if ok, err := m.TryPromote(); err != nil || ok {
		t.Fatalf("TryPromote = (%v, %v), want rejection", ok, err)
	}
	active, shadow := pub.state()
	if active != 1 || shadow != 0 || pub.clears != 1 {
		t.Fatalf("rejection state: active v%d shadow v%d clears %d", active, shadow, pub.clears)
	}
	if st := m.Status(); st.CandidatesRejected != 1 || st.Promotions != 0 {
		t.Fatalf("status after rejection: %+v", st)
	}
	if replay.calls != 0 {
		t.Fatalf("replay ran despite agreement rejection (%d calls)", replay.calls)
	}
}

// TestManagerRejectsOnReplayRegression kills a candidate that agrees on
// live traffic but regresses the simulated replay.
func TestManagerRejectsOnReplayRegression(t *testing.T) {
	pub := newFakePublisher(nn.NewMLP([]int{3, 8, 8}, 1))
	replay := &scriptedReplay{}
	m := managerFixture(t, pub, replay.fn)

	recordN(t, m, 6, 0)
	if err := m.RunCycle(100); err != nil {
		t.Fatal(err)
	}
	m.ObserveShadow(1, 2, rows(6, 2), rows(6, 2))
	// The candidate is replayed first, the incumbent second: script a
	// candidate that violates QoS far beyond the incumbent baseline.
	first := true
	m.cfg.Replay = func(mm *nn.MLP, seed int64) (ReplayMetrics, error) {
		if first {
			first = false
			return ReplayMetrics{ViolationFrac: 0.5, PeakTemp: 95}, nil
		}
		return ReplayMetrics{ViolationFrac: 0.1, PeakTemp: 60}, nil
	}
	if ok, err := m.TryPromote(); err != nil || ok {
		t.Fatalf("TryPromote = (%v, %v), want rejection", ok, err)
	}
	if active, _ := pub.state(); active != 1 {
		t.Fatalf("regressing candidate promoted (active v%d)", active)
	}
	if st := m.Status(); st.CandidatesRejected != 1 {
		t.Fatalf("status after replay rejection: %+v", st)
	}
}

// TestManagerTrainFailureNeverSwaps covers the satellite requirement: a
// failed or panicking retrain surfaces via online_train_failures and never
// publishes, stages or swaps anything.
func TestManagerTrainFailureNeverSwaps(t *testing.T) {
	pub := newFakePublisher(nn.NewMLP([]int{3, 8, 8}, 1))
	m := managerFixture(t, pub, (&scriptedReplay{}).fn)

	m.cfg.Train = func(incumbent *nn.MLP, ds nn.Dataset, seed int64) (*nn.MLP, error) {
		return nil, fmt.Errorf("synthetic training failure")
	}
	recordN(t, m, 6, 0)
	if err := m.RunCycle(100); err == nil {
		t.Fatal("RunCycle swallowed the training failure")
	}
	if active, shadow := pub.state(); active != 1 || shadow != 0 || len(pub.swaps) != 0 {
		t.Fatalf("failed retrain touched the registry: active v%d shadow v%d swaps %v",
			active, shadow, pub.swaps)
	}
	if st := m.Status(); st.TrainFailures != 1 {
		t.Fatalf("train failure not surfaced: %+v", st)
	}

	// A panicking TrainFunc is contained the same way.
	m.cfg.Train = func(incumbent *nn.MLP, ds nn.Dataset, seed int64) (*nn.MLP, error) {
		panic("synthetic training panic")
	}
	recordN(t, m, 6, 6)
	if err := m.RunCycle(200); err == nil {
		t.Fatal("RunCycle swallowed the training panic")
	}
	if st := m.Status(); st.TrainFailures != 2 {
		t.Fatalf("train panic not surfaced: %+v", st)
	}
	if active, shadow := pub.state(); active != 1 || shadow != 0 {
		t.Fatalf("panicking retrain touched the registry: v%d/v%d", active, shadow)
	}

	// Recovery: a later healthy cycle proceeds normally.
	m.cfg.Train = fastTrain
	recordN(t, m, 6, 12)
	if err := m.RunCycle(300); err != nil {
		t.Fatal(err)
	}
	if _, shadow := pub.state(); shadow != 2 {
		t.Fatalf("healthy cycle after failures did not stage a candidate (shadow v%d)", shadow)
	}
}

// TestManagerLabelFailuresAndSkips routes labeler errors and skips to the
// right counters without aborting the cycle.
func TestManagerLabelFailuresAndSkips(t *testing.T) {
	pub := newFakePublisher(nn.NewMLP([]int{3, 8, 8}, 1))
	m := managerFixture(t, pub, (&scriptedReplay{}).fn)
	m.cfg.Labeler = funcLabeler(func(s Sample) ([]float64, bool, error) {
		switch int(s.Features[0]) % 3 {
		case 0:
			return nil, false, fmt.Errorf("synthetic oracle error")
		case 1:
			return nil, false, nil // skip
		default:
			panic("synthetic labeler panic") // must count as failure
		}
	})
	recordN(t, m, 9, 0)
	if err := m.RunCycle(100); err != nil {
		t.Fatal(err)
	}
	st := m.Status()
	if st.LabelFailures != 6 || st.SamplesSkipped != 3 || st.SamplesLabeled != 0 {
		t.Fatalf("label accounting: %+v", st)
	}
	if st.DatasetSize != 0 || st.TrainCycles != 0 {
		t.Fatalf("unlabeled cycle trained: %+v", st)
	}
	// The drained window advances regardless: the same samples are not
	// re-labeled next cycle.
	if err := m.RunCycle(200); err != nil {
		t.Fatal(err)
	}
	if st := m.Status(); st.LabelFailures != 6 {
		t.Fatalf("samples re-labeled after drain: %+v", st)
	}
}

// TestManagerDatasetIdenticalAcrossWorkerCounts is the -j1 vs -j8 golden:
// the aggregated dataset must be byte-identical for any labeling
// parallelism.
func TestManagerDatasetIdenticalAcrossWorkerCounts(t *testing.T) {
	build := func(workers int) nn.Dataset {
		pub := newFakePublisher(nn.NewMLP([]int{3, 8, 8}, 1))
		log, err := OpenSampleLog(t.TempDir(), 64, 11)
		if err != nil {
			t.Fatal(err)
		}
		defer log.Close()
		m, err := NewManager(ManagerConfig{
			Model:         "policy",
			Publisher:     pub,
			Labeler:       onehotLabeler(8),
			Log:           log,
			Seed:          11,
			Workers:       workers,
			MinNewSamples: 1000, // never train; aggregation only
			DatasetCap:    40,   // force reservoir replacement
			Train:         fastTrain,
			Replay:        (&scriptedReplay{}).fn,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 120; i++ {
			s := mkSample(i)
			s.Features = []float64{float64(i), float64(i % 7), 3}
			if err := m.Record(s); err != nil {
				t.Fatal(err)
			}
			if i%37 == 36 {
				if err := m.RunCycle(int64(i)); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := m.RunCycle(999); err != nil {
			t.Fatal(err)
		}
		return m.Dataset()
	}

	j1 := build(1)
	for _, workers := range []int{2, 8} {
		jn := build(workers)
		if !reflect.DeepEqual(j1, jn) {
			t.Fatalf("dataset diverges between 1 and %d workers", workers)
		}
	}
	a, err := json.Marshal(j1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(build(8))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("dataset JSON not byte-identical across worker counts")
	}
}

func TestNewManagerValidation(t *testing.T) {
	log, err := OpenSampleLog(t.TempDir(), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	pub := newFakePublisher(nn.NewMLP([]int{3, 8, 8}, 1))
	lab := onehotLabeler(8)
	if _, err := NewManager(ManagerConfig{Labeler: lab, Log: log}); err == nil {
		t.Fatal("missing Publisher accepted")
	}
	if _, err := NewManager(ManagerConfig{Publisher: pub, Log: log}); err == nil {
		t.Fatal("missing Labeler accepted")
	}
	if _, err := NewManager(ManagerConfig{Publisher: pub, Labeler: lab}); err == nil {
		t.Fatal("missing Log accepted")
	}
	m, err := NewManager(ManagerConfig{Publisher: pub, Labeler: lab, Log: log})
	if err != nil {
		t.Fatal(err)
	}
	if m.cfg.Workers != 1 || m.cfg.MinNewSamples != 8 || m.cfg.DatasetCap != DefaultSampleCap {
		t.Fatalf("defaults not applied: %+v", m.cfg)
	}
	if m.gate.Window != 64 || m.gate.MinAgreement != 0.80 {
		t.Fatalf("gate defaults not applied: %+v", m.gate)
	}
}
