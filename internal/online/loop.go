package online

// This file is the package's only wall-clock adapter: everything else in
// internal/online is deterministic (nowUnix flows in as a parameter, all
// randomness is seeded). It is exempted by name in the detrand analyzer's
// deterministic set — keep time.Now / tickers confined here.

import (
	"sync"
	"time"
)

// LoopConfig configures the background training loop.
type LoopConfig struct {
	// Interval between DAgger cycles (default 30s).
	Interval time.Duration
	// Manager is the cycle driver. Required.
	Manager *Manager
	// Telemetry, when set, is polled each tick for live QoS/thermal
	// telemetry to feed the rollback monitor; ok=false skips the report.
	Telemetry func() (violationFrac, peakTemp float64, ok bool)
	// OnError, when set, receives cycle errors (for logging).
	OnError func(error)
}

// Loop drives Manager cycles on a wall-clock ticker.
type Loop struct {
	cfg  LoopConfig
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// StartLoop launches the background trainer goroutine. The goroutine is
// panic-isolated per tick: a panicking cycle is recorded as a train
// failure and the loop keeps ticking.
func StartLoop(cfg LoopConfig) *Loop {
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	l := &Loop{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	go l.run()
	return l
}

func (l *Loop) run() {
	defer close(l.done)
	t := time.NewTicker(l.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.tick()
		}
	}
}

// tick runs one cycle + promotion + rollback check, panic-isolated.
func (l *Loop) tick() {
	defer func() {
		if p := recover(); p != nil {
			l.cfg.Manager.trainFailure()
		}
	}()
	m := l.cfg.Manager
	// Cycle boundary is the durability point for buffered sample appends.
	_ = m.cfg.Log.Sync()
	if err := m.RunCycle(time.Now().Unix()); err != nil && l.cfg.OnError != nil {
		l.cfg.OnError(err)
	}
	if _, err := m.TryPromote(); err != nil && l.cfg.OnError != nil {
		l.cfg.OnError(err)
	}
	if l.cfg.Telemetry != nil {
		if vf, pt, ok := l.cfg.Telemetry(); ok {
			if _, err := m.ReportLive(vf, pt); err != nil && l.cfg.OnError != nil {
				l.cfg.OnError(err)
			}
		}
	}
}

// Close stops the loop and waits for the in-flight tick to finish.
func (l *Loop) Close() {
	l.once.Do(func() { close(l.stop) })
	<-l.done
}
