package online

import (
	"fmt"
	"sync"

	"repro/internal/nn"
)

// Publisher is the model registry surface the manager drives: publish a
// retrained candidate, stage it as shadow, atomically promote it, roll it
// back. internal/serve implements it over its versioned registry; tests
// implement it in-memory. The manager never imports serve — the dependency
// points the other way.
type Publisher interface {
	// Publish registers a new immutable version and returns its number.
	Publish(m *nn.MLP, source string) (int, error)
	// Swap atomically makes version active and returns the previous
	// active version.
	Swap(version int) (prev int, err error)
	// SetShadow stages version for live-traffic mirroring.
	SetShadow(version int) error
	// ClearShadow unstages any shadow version.
	ClearShadow()
	// ActiveVersion returns the currently active version.
	ActiveVersion() (int, error)
	// ActiveModel returns the currently active network (the warm-start
	// incumbent for retraining).
	ActiveModel() (*nn.MLP, error)
}

// ManagerConfig configures the continual-learning manager.
type ManagerConfig struct {
	// Model is the served model name (label on all online_* metrics).
	Model string
	// Publisher is the registry the manager publishes into. Required.
	Publisher Publisher
	// Labeler answers DAgger expert queries. Required.
	Labeler Labeler
	// Log is the durable visited-state record. Required.
	Log *SampleLog
	// Seed drives every stochastic choice (labeled-example reservoir,
	// train/val splits, replay scenarios).
	Seed int64
	// Workers bounds labeling parallelism per cycle (default 1). The
	// aggregated dataset is identical for any worker count.
	Workers int
	// MinNewSamples is the number of freshly labeled examples required
	// before a cycle retrains (default 8).
	MinNewSamples int
	// DatasetCap bounds the aggregated dataset (reservoir; default
	// DefaultSampleCap).
	DatasetCap int
	// Train retrains the policy (default DefaultTrain(DefaultTrainConfig())).
	Train TrainFunc
	// Replay scores candidate and incumbent for the promotion gate
	// (default SimReplay(20, 2)).
	Replay ReplayFunc
	// Gate is the promotion/rollback policy (unset fields take defaults).
	Gate GateConfig
	// Metrics receives the online_* series (default: a private registry).
	Metrics *Metrics
}

// candidateState tracks the currently shadow-staged candidate.
type candidateState struct {
	version     int
	model       *nn.MLP
	comparisons uint64
	agree       uint64
}

// Manager runs the DAgger loop: drain newly visited states, query the
// expert on them, aggregate, retrain off the request path, shadow-score
// the candidate on live traffic, and promote (or reject) it through the
// Publisher. All methods are safe for concurrent use; RunCycle and
// TryPromote are intended to be driven by a single loop goroutine.
type Manager struct {
	cfg     ManagerConfig
	gate    GateConfig
	metrics *Metrics

	mu           sync.Mutex
	lastSeq      uint64 // highest sample Seq folded into a cycle
	agg          nn.Dataset
	aggSeen      uint64 // lifetime labeled examples (reservoir index)
	cycle        int
	candidate    candidateState
	hasCandidate bool
	prevVersion  int // active version before the last promotion
	lastPromoted int // last version this manager promoted (0 = none)
	baseline     ReplayMetrics
	hasBaseline  bool
	lastCycle    int64 // unix seconds of the last completed cycle
}

// datasetSeedTag decorrelates the dataset reservoir from the sample-log
// reservoir when both derive from the same configured seed.
const datasetSeedTag = 0x6f6e6c696e65 // "online"

// NewManager validates the configuration and builds a manager.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.Publisher == nil {
		return nil, fmt.Errorf("online: ManagerConfig.Publisher is required")
	}
	if cfg.Labeler == nil {
		return nil, fmt.Errorf("online: ManagerConfig.Labeler is required")
	}
	if cfg.Log == nil {
		return nil, fmt.Errorf("online: ManagerConfig.Log is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MinNewSamples <= 0 {
		cfg.MinNewSamples = 8
	}
	if cfg.DatasetCap <= 0 {
		cfg.DatasetCap = DefaultSampleCap
	}
	if cfg.Train == nil {
		cfg.Train = DefaultTrain(DefaultTrainConfig())
	}
	if cfg.Replay == nil {
		cfg.Replay = SimReplay(20, 2)
	}
	m := &Manager{cfg: cfg, gate: cfg.Gate.withDefaults(), metrics: cfg.Metrics}
	if m.metrics == nil {
		m.metrics = NewMetrics(nil, cfg.Model)
	}
	return m, nil
}

// Record appends one visited state to the durable sample log.
func (m *Manager) Record(s Sample) error {
	if _, err := m.cfg.Log.Append(s); err != nil {
		return err
	}
	m.metrics.Recorded.Inc()
	return nil
}

// labelResult is one slot of a cycle's parallel labeling pass.
type labelResult struct {
	labels []float64
	ok     bool
	err    error
}

// RunCycle executes one DAgger iteration at the given wall-clock instant
// (passed in — the manager itself never reads the clock): drain samples
// recorded since the last cycle, label them via the expert, fold them into
// the aggregated dataset, and — once enough new examples accumulated —
// retrain, publish and stage the candidate as shadow. A failed retrain
// increments online_train_failures and leaves serving untouched.
func (m *Manager) RunCycle(nowUnix int64) error {
	m.mu.Lock()
	last := m.lastSeq
	m.mu.Unlock()
	batch := m.cfg.Log.Since(last)

	// Label in parallel; results land in per-sample slots so the merge
	// order — and therefore the aggregated dataset — is byte-identical
	// for any worker count.
	results := make([]labelResult, len(batch))
	if len(batch) > 0 {
		workers := m.cfg.Workers
		if workers > len(batch) {
			workers = len(batch)
		}
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					labels, ok, err := m.label(batch[i])
					results[i] = labelResult{labels: labels, ok: ok, err: err}
				}
			}()
		}
		for i := range batch {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	m.mu.Lock()
	m.lastCycle = nowUnix
	newLabeled := 0
	for i, r := range results {
		if s := batch[i]; s.Seq > m.lastSeq {
			m.lastSeq = s.Seq
		}
		switch {
		case r.err != nil:
			m.metrics.LabelFailures.Inc()
		case !r.ok:
			m.metrics.Skipped.Inc()
		default:
			m.addExampleLocked(batch[i].Features, r.labels)
			m.metrics.Labeled.Inc()
			newLabeled++
		}
	}
	m.metrics.DatasetSize.Set(float64(m.agg.Len()))
	if newLabeled < m.cfg.MinNewSamples || m.hasCandidate {
		// Not enough fresh signal, or a candidate is still under shadow
		// evaluation — train at most one candidate at a time.
		m.mu.Unlock()
		return nil
	}
	m.cycle++
	cycle := m.cycle
	// Snapshot the aggregate so training runs without the lock (rows are
	// immutable once inserted; the reservoir replaces whole rows, so the
	// copied headers stay coherent). Status and shadow scoring keep flowing
	// while the retrain grinds.
	ds := nn.Dataset{
		X: append([][]float64(nil), m.agg.X...),
		Y: append([][]float64(nil), m.agg.Y...),
	}
	m.mu.Unlock()

	m.metrics.TrainCycles.Inc()
	incumbent, err := m.cfg.Publisher.ActiveModel()
	if err != nil {
		m.metrics.TrainFailures.Inc()
		return fmt.Errorf("online: loading incumbent: %w", err)
	}
	cand, err := m.train(incumbent, ds, cycle)
	if err != nil {
		m.metrics.TrainFailures.Inc()
		return err
	}
	ver, err := m.cfg.Publisher.Publish(cand, fmt.Sprintf("online cycle %d", cycle))
	if err != nil {
		m.metrics.TrainFailures.Inc()
		return fmt.Errorf("online: publishing candidate: %w", err)
	}
	m.metrics.Publishes.Inc()
	if err := m.cfg.Publisher.SetShadow(ver); err != nil {
		m.metrics.TrainFailures.Inc()
		return fmt.Errorf("online: staging shadow: %w", err)
	}
	m.mu.Lock()
	m.candidate = candidateState{version: ver, model: cand}
	m.hasCandidate = true
	m.mu.Unlock()
	return nil
}

// label wraps the Labeler, converting panics into errors.
func (m *Manager) label(s Sample) (labels []float64, ok bool, err error) {
	defer func() {
		if p := recover(); p != nil {
			labels, ok = nil, false
			err = fmt.Errorf("online: labeler panicked: %v", p)
		}
	}()
	return m.cfg.Labeler.Label(s)
}

// train wraps the TrainFunc, converting panics into errors.
func (m *Manager) train(incumbent *nn.MLP, ds nn.Dataset, cycle int) (cand *nn.MLP, err error) {
	defer func() {
		if p := recover(); p != nil {
			cand, err = nil, fmt.Errorf("online: training panicked: %v", p)
		}
	}()
	cand, err = m.cfg.Train(incumbent, ds, m.cfg.Seed+int64(cycle))
	if err == nil && cand == nil {
		err = fmt.Errorf("online: TrainFunc returned no model")
	}
	return cand, err
}

// trainFailure records an asynchronous training-path failure (the loop's
// panic backstop).
func (m *Manager) trainFailure() { m.metrics.TrainFailures.Inc() }

// addExampleLocked folds one labeled example into the bounded aggregated
// dataset (reservoir over the lifetime labeled stream). Callers hold m.mu.
func (m *Manager) addExampleLocked(x, y []float64) {
	m.aggSeen++
	x = append([]float64(nil), x...)
	y = append([]float64(nil), y...)
	if m.agg.Len() < m.cfg.DatasetCap {
		m.agg.X = append(m.agg.X, x)
		m.agg.Y = append(m.agg.Y, y)
		return
	}
	if slot := reservoirSlot(m.cfg.Seed^datasetSeedTag, m.aggSeen, m.cfg.DatasetCap); slot >= 0 {
		m.agg.X[slot] = x
		m.agg.Y[slot] = y
	}
}

// ObserveShadow scores one mirrored batch: for every row, does the shadow
// candidate's argmax action agree with the incumbent's? Batches mirrored
// for a version other than the current candidate (stale in-flight batches
// around a promotion) are ignored.
func (m *Manager) ObserveShadow(activeVer, shadowVer int, active, shadow [][]float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.hasCandidate || shadowVer != m.candidate.version || len(active) != len(shadow) {
		return
	}
	for i := range active {
		m.candidate.comparisons++
		m.metrics.ShadowRows.Inc()
		if argmax(active[i]) == argmax(shadow[i]) {
			m.candidate.agree++
			m.metrics.ShadowAgree.Inc()
		}
	}
}

// argmax returns the index of the largest element (first on ties, -1 when
// empty) — the action a rating vector selects.
func argmax(v []float64) int {
	best := -1
	for i, x := range v {
		if best < 0 || x > v[best] {
			best = i
		}
	}
	return best
}

// TryPromote judges the current candidate once its shadow window is full:
// reject on low live-traffic agreement, otherwise replay candidate and
// incumbent under identical seeds and promote only if the candidate does
// not regress QoS violations or peak temperature beyond the gate deltas.
// Returns whether a promotion happened.
func (m *Manager) TryPromote() (bool, error) {
	m.mu.Lock()
	if !m.hasCandidate || m.candidate.comparisons < uint64(m.gate.Window) {
		m.mu.Unlock()
		return false, nil
	}
	cand := m.candidate
	agreement := float64(cand.agree) / float64(cand.comparisons)
	m.mu.Unlock()

	if agreement < m.gate.MinAgreement {
		m.rejectCandidate(cand.version)
		return false, nil
	}

	// Replay outside the lock: a simulated window takes real time and
	// ObserveShadow runs on the serving path.
	seed := m.cfg.Seed ^ splitmix(uint64(cand.version))
	candMetrics, err := m.cfg.Replay(cand.model, seed)
	if err != nil {
		m.rejectCandidate(cand.version)
		return false, fmt.Errorf("online: replaying candidate v%d: %w", cand.version, err)
	}
	incumbent, err := m.cfg.Publisher.ActiveModel()
	if err != nil {
		m.rejectCandidate(cand.version)
		return false, fmt.Errorf("online: loading incumbent for replay: %w", err)
	}
	incMetrics, err := m.cfg.Replay(incumbent, seed)
	if err != nil {
		m.rejectCandidate(cand.version)
		return false, fmt.Errorf("online: replaying incumbent: %w", err)
	}
	if candMetrics.ViolationFrac > incMetrics.ViolationFrac+m.gate.MaxQoSDelta ||
		candMetrics.PeakTemp > incMetrics.PeakTemp+m.gate.MaxTempDelta {
		m.rejectCandidate(cand.version)
		return false, nil
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.hasCandidate || m.candidate.version != cand.version {
		return false, nil
	}
	prev, err := m.cfg.Publisher.Swap(cand.version)
	if err != nil {
		return false, fmt.Errorf("online: promoting v%d: %w", cand.version, err)
	}
	m.prevVersion = prev
	m.lastPromoted = cand.version
	m.baseline = candMetrics
	m.hasBaseline = true
	m.hasCandidate = false
	m.candidate = candidateState{}
	m.metrics.Promotions.Inc()
	return true, nil
}

// rejectCandidate unstages and discards the candidate identified by version.
func (m *Manager) rejectCandidate(version int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.hasCandidate || m.candidate.version != version {
		return
	}
	m.cfg.Publisher.ClearShadow()
	m.hasCandidate = false
	m.candidate = candidateState{}
	m.metrics.Rejected.Inc()
}

// ReportLive feeds post-promotion telemetry (the live QoS-violation
// fraction and peak temperature in °C) into the rollback monitor: if the
// most recently promoted version is still active and either value
// regressed beyond the gate deltas relative to the promotion replay
// baseline, the manager swaps back to the pre-promotion version.
func (m *Manager) ReportLive(violationFrac, peakTemp float64) (rolledBack bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.lastPromoted == 0 || !m.hasBaseline {
		return false, nil
	}
	active, err := m.cfg.Publisher.ActiveVersion()
	if err != nil || active != m.lastPromoted {
		// Someone else swapped (manual rollback or a newer promotion path):
		// this baseline no longer describes the active model.
		m.lastPromoted = 0
		m.hasBaseline = false
		return false, err
	}
	if violationFrac <= m.baseline.ViolationFrac+m.gate.MaxQoSDelta &&
		peakTemp <= m.baseline.PeakTemp+m.gate.MaxTempDelta {
		return false, nil
	}
	if _, err := m.cfg.Publisher.Swap(m.prevVersion); err != nil {
		return false, fmt.Errorf("online: rolling back to v%d: %w", m.prevVersion, err)
	}
	m.metrics.Rollbacks.Inc()
	m.lastPromoted = 0
	m.hasBaseline = false
	return true, nil
}

// Status is the /v1/online wire surface.
type Status struct {
	Enabled            bool    `json:"enabled"`
	Model              string  `json:"model"`
	ActiveVersion      int     `json:"activeVersion"`
	CandidateVersion   int     `json:"candidateVersion"`
	PreviousVersion    int     `json:"previousVersion"`
	SamplesRecorded    uint64  `json:"samplesRecorded"`
	SamplesLabeled     uint64  `json:"samplesLabeled"`
	SamplesSkipped     uint64  `json:"samplesSkipped"`
	LabelFailures      uint64  `json:"labelFailures"`
	DatasetSize        int     `json:"datasetSize"`
	TrainCycles        uint64  `json:"trainCycles"`
	TrainFailures      uint64  `json:"trainFailures"`
	Promotions         uint64  `json:"promotions"`
	Rollbacks          uint64  `json:"rollbacks"`
	CandidatesRejected uint64  `json:"candidatesRejected"`
	ShadowComparisons  uint64  `json:"shadowComparisons"`
	ShadowAgreement    float64 `json:"shadowAgreement"`
	LastCycleUnix      int64   `json:"lastCycleUnix"`
}

// Status snapshots the manager for the /v1/online endpoint.
func (m *Manager) Status() Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Status{
		Enabled:            true,
		Model:              m.cfg.Model,
		PreviousVersion:    m.prevVersion,
		SamplesRecorded:    uint64(m.metrics.Recorded.Value()),
		SamplesLabeled:     uint64(m.metrics.Labeled.Value()),
		SamplesSkipped:     uint64(m.metrics.Skipped.Value()),
		LabelFailures:      uint64(m.metrics.LabelFailures.Value()),
		DatasetSize:        m.agg.Len(),
		TrainCycles:        uint64(m.metrics.TrainCycles.Value()),
		TrainFailures:      uint64(m.metrics.TrainFailures.Value()),
		Promotions:         uint64(m.metrics.Promotions.Value()),
		Rollbacks:          uint64(m.metrics.Rollbacks.Value()),
		CandidatesRejected: uint64(m.metrics.Rejected.Value()),
		LastCycleUnix:      m.lastCycle,
	}
	if m.hasCandidate {
		st.CandidateVersion = m.candidate.version
		st.ShadowComparisons = m.candidate.comparisons
		if m.candidate.comparisons > 0 {
			st.ShadowAgreement = float64(m.candidate.agree) / float64(m.candidate.comparisons)
		}
	}
	if v, err := m.cfg.Publisher.ActiveVersion(); err == nil {
		st.ActiveVersion = v
	}
	return st
}

// Dataset returns a deep copy of the aggregated dataset (test hook for the
// worker-count determinism golden).
func (m *Manager) Dataset() nn.Dataset {
	m.mu.Lock()
	defer m.mu.Unlock()
	var ds nn.Dataset
	for i := range m.agg.X {
		ds.X = append(ds.X, append([]float64(nil), m.agg.X[i]...))
		ds.Y = append(ds.Y, append([]float64(nil), m.agg.Y[i]...))
	}
	return ds
}
