package online

import (
	"testing"

	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/platform"
)

func TestSimReplayIsDeterministic(t *testing.T) {
	plat := platform.HiKey970()
	dim := features.Dim(plat.NumCores(), plat.NumClusters())
	m := nn.NewMLP([]int{dim, 16, plat.NumCores()}, 5)
	replay := SimReplay(3, 2)

	a, err := replay(m, 17)
	if err != nil {
		t.Fatal(err)
	}
	b, err := replay(m, 17)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("replay not deterministic: %+v vs %+v", a, b)
	}
	if a.PeakTemp <= 0 {
		t.Fatalf("implausible replay metrics: %+v", a)
	}
	if a.ViolationFrac < 0 || a.ViolationFrac > 1 {
		t.Fatalf("violation fraction %g outside [0, 1]", a.ViolationFrac)
	}

	// A different seed picks a different scenario (and negative seeds are
	// legal — the pool index must not go negative).
	if _, err := replay(m, -3); err != nil {
		t.Fatal(err)
	}
}

func TestSimReplayRejectsNilModel(t *testing.T) {
	replay := SimReplay(0, 0) // also exercises the duration/apps defaults
	if _, err := replay(nil, 1); err == nil {
		t.Fatal("replayed a nil model")
	}
}

func TestSimReplayContainsPanics(t *testing.T) {
	// A model with the wrong input dim makes the backend panic mid-sim;
	// the replay must surface that as an error, not crash the trainer.
	m := nn.NewMLP([]int{2, 4, 8}, 1)
	replay := SimReplay(2, 1)
	if _, err := replay(m, 1); err == nil {
		t.Fatal("dimension-mismatched replay returned no error")
	}
}
