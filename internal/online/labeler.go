package online

import (
	"fmt"
	"sync"

	"repro/internal/features"
	"repro/internal/oracle"
	"repro/internal/platform"
	"repro/internal/workload"
)

// Labeler answers DAgger expert queries: the soft labels the policy should
// have produced for one visited state. ok is false when the state carries
// nothing to learn (no scenario context, infeasible target, unknown
// benchmark) — a skip, not a failure.
type Labeler interface {
	Label(s Sample) (labels []float64, ok bool, err error)
}

// OracleLabeler queries internal/oracle on visited states: it rebuilds the
// (AoI, background) scenario from the sample, collects (and caches) the
// scenario's trace set, quantizes the visited QoS target and per-cluster
// VF requirements onto the oracle grid, and computes the Eq. (4) labels —
// the same implementation the offline dataset sweep uses.
//
// Trace collection is the expensive part (a warmup + measurement sim per
// grid point), so serving deployments run it on a quick-scale Config; the
// cache makes repeat visits to a scenario cheap.
type OracleLabeler struct {
	cfg oracle.Config

	mu       sync.Mutex
	cache    map[string]*oracle.TraceSet
	order    []string // FIFO eviction order
	maxCache int
}

// DefaultLabelCacheScenarios bounds the trace-set cache.
const DefaultLabelCacheScenarios = 32

// QuickLabelConfig returns an oracle Config scaled for online labeling:
// the coarse 3-level grid and short warmup/measure windows keep one
// uncached scenario query in the low seconds, at some label fidelity cost
// versus the offline DefaultConfig (override via ManagerConfig.Labeler for
// full-scale labeling).
func QuickLabelConfig() oracle.Config {
	cfg := oracle.DefaultConfig()
	cfg.LevelGrid = []int{0, 4, 8}
	cfg.WarmupSec = 10
	cfg.MeasureSec = 3
	cfg.Dt = 0.02
	return cfg
}

// NewOracleLabeler creates a labeler over the given oracle configuration.
func NewOracleLabeler(cfg oracle.Config) *OracleLabeler {
	return &OracleLabeler{
		cfg:      cfg,
		cache:    make(map[string]*oracle.TraceSet),
		maxCache: DefaultLabelCacheScenarios,
	}
}

// Label implements Labeler.
func (l *OracleLabeler) Label(s Sample) ([]float64, bool, error) {
	scn, sig, ok := l.scenarioFor(s)
	if !ok {
		return nil, false, nil
	}
	plat := platform.HiKey970()
	numCores, numClusters := plat.NumCores(), plat.NumClusters()
	if len(s.Features) != features.Dim(numCores, numClusters) ||
		len(s.ClusterFreqs) != numClusters || s.QoS <= 0 {
		return nil, false, nil
	}

	ts, err := l.traces(sig, scn)
	if err != nil {
		return nil, false, err
	}

	// Quantize the visited per-cluster VF requirements onto the oracle
	// grid: the recorded feature is required/current, the recorded
	// ClusterFreqs the current frequency — their product is the Eq. (2)
	// requirement in Hz.
	little, _ := plat.ClusterByKind(platform.Little)
	big, _ := plat.ClusterByKind(platform.Big)
	ratioOff := 3 + numCores
	li := oracle.GridPosFor(little, l.cfg.LevelGrid, s.Features[ratioOff+0]*s.ClusterFreqs[0])
	bi := oracle.GridPosFor(big, l.cfg.LevelGrid, s.Features[ratioOff+1]*s.ClusterFreqs[1])

	vl, ok, err := oracle.LabelVisited(ts, l.cfg, s.QoS, li, bi)
	if err != nil || !ok {
		return nil, false, err
	}
	return vl.Labels, true, nil
}

// scenarioFor rebuilds the oracle scenario a sample was visited in, plus a
// cache signature. ok is false when the sample carries no usable context:
// infer-origin states, unknown benchmarks, background collisions.
func (l *OracleLabeler) scenarioFor(s Sample) (oracle.Scenario, string, bool) {
	if s.Origin != OriginSim || s.AoI == "" {
		return oracle.Scenario{}, "", false
	}
	aoi, ok := workload.ByName(s.AoI)
	if !ok {
		return oracle.Scenario{}, "", false
	}
	plat := platform.HiKey970()
	scn := oracle.Scenario{AoI: aoi}
	seen := make(map[int]bool, len(s.Background))
	for _, b := range s.Background {
		spec, ok := workload.ByName(b.Name)
		if !ok || b.Core < 0 || b.Core >= plat.NumCores() || seen[b.Core] {
			return oracle.Scenario{}, "", false
		}
		seen[b.Core] = true
		scn.Background = append(scn.Background, oracle.BackgroundApp{
			Spec: spec, Core: platform.CoreID(b.Core),
		})
	}
	// Canonical signature: background sorted by core (insertion sort over
	// the handful of refs), so visit order does not split the cache.
	bg := scn.Background
	for i := 1; i < len(bg); i++ {
		for j := i; j > 0 && bg[j-1].Core > bg[j].Core; j-- {
			bg[j-1], bg[j] = bg[j], bg[j-1]
		}
	}
	if scn.Validate(plat.NumCores()) != nil {
		return oracle.Scenario{}, "", false
	}
	sig := s.AoI
	for _, b := range bg {
		sig += fmt.Sprintf("|%s@%d", b.Spec.Name, b.Core)
	}
	return scn, sig, true
}

// traces returns the scenario's trace set, collecting it on first use.
func (l *OracleLabeler) traces(sig string, scn oracle.Scenario) (*oracle.TraceSet, error) {
	l.mu.Lock()
	if ts := l.cache[sig]; ts != nil {
		l.mu.Unlock()
		return ts, nil
	}
	l.mu.Unlock()

	// Collect outside the lock; a duplicate concurrent collection is
	// wasted work but harmless (both results are identical).
	ts, err := oracle.CollectTraces(scn, l.cfg)
	if err != nil {
		return nil, fmt.Errorf("online: collecting traces for %s: %w", sig, err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if prev := l.cache[sig]; prev != nil {
		return prev, nil
	}
	if len(l.order) >= l.maxCache {
		delete(l.cache, l.order[0])
		l.order = l.order[1:]
	}
	l.cache[sig] = ts
	l.order = append(l.order, sig)
	return ts, nil
}
