package online

import (
	"reflect"
	"testing"

	"repro/internal/features"
	"repro/internal/oracle"
	"repro/internal/perf"
	"repro/internal/platform"
	"repro/internal/workload"
)

// tinyLabelConfig is QuickLabelConfig scaled down to test size.
func tinyLabelConfig() oracle.Config {
	cfg := QuickLabelConfig()
	cfg.LevelGrid = []int{0, 8}
	cfg.WarmupSec = 2
	cfg.MeasureSec = 1
	return cfg
}

// visitedSample builds a plausible sim-origin visited state for adi.
func visitedSample() Sample {
	plat := platform.HiKey970()
	nc, ncl := plat.NumCores(), plat.NumClusters()
	x := make([]float64, features.Dim(nc, ncl))
	x[0] = 0.8  // ips / 1e9
	x[1] = 0.05 // l2dps / 1e8
	x[2] = 1    // one-hot: core 0
	x[2+nc] = 0.4
	x[3+nc] = 0.6   // little required/current
	x[3+nc+1] = 0.5 // big required/current
	spec, _ := workload.ByName("adi")
	return Sample{
		Origin:       OriginSim,
		AoI:          "adi",
		Features:     x,
		Action:       0,
		QoS:          0.2 * perf.Default().PeakIPS(plat, spec),
		ClusterFreqs: []float64{1.8e9, 2.4e9},
	}
}

func TestOracleLabelerLabelsVisitedState(t *testing.T) {
	l := NewOracleLabeler(tinyLabelConfig())
	s := visitedSample()
	labels, ok, err := l.Label(s)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("labeler skipped a labelable visited state")
	}
	plat := platform.HiKey970()
	if len(labels) != plat.NumCores() {
		t.Fatalf("len(labels) = %d, want %d", len(labels), plat.NumCores())
	}
	for i, v := range labels {
		if v < 0 || v > 1 {
			t.Fatalf("labels[%d] = %g outside [0, 1]", i, v)
		}
	}
	// Second query hits the trace cache and must reproduce the labels.
	again, ok, err := l.Label(s)
	if err != nil || !ok {
		t.Fatalf("cached Label = (%v, %v)", ok, err)
	}
	if !reflect.DeepEqual(labels, again) {
		t.Fatalf("cached labels diverge: %v vs %v", labels, again)
	}
	if len(l.cache) != 1 || len(l.order) != 1 {
		t.Fatalf("cache holds %d trace sets, want 1", len(l.cache))
	}
}

func TestOracleLabelerSkipsUnlabelableSamples(t *testing.T) {
	l := NewOracleLabeler(tinyLabelConfig())
	base := visitedSample()

	cases := map[string]func(s *Sample){
		"infer origin":      func(s *Sample) { s.Origin = OriginInfer },
		"empty aoi":         func(s *Sample) { s.AoI = "" },
		"unknown benchmark": func(s *Sample) { s.AoI = "no-such-app" },
		"unknown background": func(s *Sample) {
			s.Background = []BackgroundRef{{Name: "no-such-app", Core: 1}}
		},
		"background core out of range": func(s *Sample) {
			s.Background = []BackgroundRef{{Name: "adi", Core: 99}}
		},
		"duplicate background core": func(s *Sample) {
			s.Background = []BackgroundRef{{Name: "adi", Core: 1}, {Name: "seidel-2d", Core: 1}}
		},
		"bad feature dim": func(s *Sample) { s.Features = s.Features[:5] },
		"bad freqs":       func(s *Sample) { s.ClusterFreqs = nil },
		"no qos":          func(s *Sample) { s.QoS = 0 },
	}
	for name, mutate := range cases {
		s := base
		s.Features = append([]float64(nil), base.Features...)
		mutate(&s)
		labels, ok, err := l.Label(s)
		if err != nil {
			t.Fatalf("%s: unexpected error %v", name, err)
		}
		if ok || labels != nil {
			t.Fatalf("%s: labeled an unlabelable sample", name)
		}
	}
	if len(l.cache) != 0 {
		t.Fatalf("skips populated the trace cache (%d entries)", len(l.cache))
	}
}

func TestOracleLabelerCanonicalSignature(t *testing.T) {
	l := NewOracleLabeler(tinyLabelConfig())
	s := visitedSample()
	s.Background = []BackgroundRef{{Name: "seidel-2d", Core: 5}, {Name: "adi", Core: 2}}
	_, sig1, ok := l.scenarioFor(s)
	if !ok {
		t.Fatal("scenario rejected")
	}
	s.Background = []BackgroundRef{{Name: "adi", Core: 2}, {Name: "seidel-2d", Core: 5}}
	_, sig2, ok := l.scenarioFor(s)
	if !ok {
		t.Fatal("scenario rejected")
	}
	if sig1 != sig2 {
		t.Fatalf("background order split the cache signature: %q vs %q", sig1, sig2)
	}
	if want := "adi|adi@2|seidel-2d@5"; sig1 != want {
		t.Fatalf("signature = %q, want %q", sig1, want)
	}
}

func TestOracleLabelerCacheEviction(t *testing.T) {
	l := NewOracleLabeler(tinyLabelConfig())
	l.maxCache = 2
	apps := []string{"adi", "seidel-2d", "jacobi-2d"}
	for _, app := range apps {
		s := visitedSample()
		s.AoI = app
		if _, ok, err := l.Label(s); err != nil || !ok {
			t.Fatalf("%s: Label = (%v, %v)", app, ok, err)
		}
	}
	if len(l.cache) != 2 || len(l.order) != 2 {
		t.Fatalf("cache size %d after eviction, want 2", len(l.cache))
	}
	if _, stillThere := l.cache["adi"]; stillThere {
		t.Fatal("FIFO eviction kept the oldest entry")
	}
}

func TestQuickLabelConfigIsCheaperThanDefault(t *testing.T) {
	q, d := QuickLabelConfig(), oracle.DefaultConfig()
	if len(q.LevelGrid) >= len(d.LevelGrid) {
		t.Fatalf("quick grid %v not coarser than default %v", q.LevelGrid, d.LevelGrid)
	}
	if q.WarmupSec >= d.WarmupSec || q.MeasureSec >= d.MeasureSec {
		t.Fatalf("quick windows (%g, %g) not shorter than default (%g, %g)",
			q.WarmupSec, q.MeasureSec, d.WarmupSec, d.MeasureSec)
	}
}
