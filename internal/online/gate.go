package online

// GateConfig is the auto-promotion gate: a candidate must first agree with
// the incumbent on live traffic (shadow scoring), then not regress the
// simulated QoS / peak-temperature replay. The deltas double as the
// post-promotion rollback thresholds for live telemetry.
type GateConfig struct {
	// Window is the minimum number of shadow-scored rows before the gate
	// judges a candidate.
	Window int
	// MinAgreement is the required fraction of shadow rows whose argmax
	// action matches the incumbent's. A continual learner should drift,
	// not lurch: mass disagreement on live states means the retrain went
	// somewhere the replay window cannot vouch for.
	MinAgreement float64
	// MaxQoSDelta is the tolerated increase in replayed QoS violation
	// fraction versus the incumbent's baseline.
	MaxQoSDelta float64
	// MaxTempDelta is the tolerated increase in replayed peak temperature
	// versus the incumbent's baseline (°C).
	MaxTempDelta float64
}

// DefaultGate returns the standard promotion gate.
func DefaultGate() GateConfig {
	return GateConfig{
		Window:       64,
		MinAgreement: 0.80,
		MaxQoSDelta:  0.0,
		MaxTempDelta: 0.5,
	}
}

// withDefaults fills unset fields.
func (g GateConfig) withDefaults() GateConfig {
	d := DefaultGate()
	if g.Window <= 0 {
		g.Window = d.Window
	}
	if g.MinAgreement == 0 {
		g.MinAgreement = d.MinAgreement
	}
	if g.MaxTempDelta == 0 {
		g.MaxTempDelta = d.MaxTempDelta
	}
	return g
}
