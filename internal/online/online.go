// Package online implements DAgger-style continual imitation learning for
// the serving stack: visited feature states are recorded to a bounded
// durable sample log, a background trainer queries the oracle for expert
// labels on those *visited* states (the DAgger correction — labels come
// from the expert, actions from the learner), merges them into an
// aggregated dataset and retrains the MLP off the request path. Candidate
// models are published to a versioned registry, scored in shadow against
// live traffic, auto-promoted through a gate on action agreement and
// simulated QoS / peak-temperature deltas, and auto-rolled-back when
// post-promotion telemetry regresses.
//
// The package is deterministic (seeded RNG everywhere, no wall-clock
// reads) except for loop.go, the wall-clock serve adapter that paces
// cycles in a real process.
package online

// Origin values for Sample.Origin.
const (
	// OriginSim marks states visited by the simulation job pool — these
	// carry full scenario context and are the DAgger labeling targets.
	OriginSim = "sim"
	// OriginInfer marks states submitted over the HTTP inference path.
	// They lack scenario context (no AoI identity, no background specs),
	// so the oracle cannot label them; they are recorded for rate
	// accounting and future replay but skipped by the labeler.
	OriginInfer = "infer"
)

// BackgroundRef identifies one background application pinned to a core at
// the time a state was visited — enough to rebuild the oracle scenario.
type BackgroundRef struct {
	Name string `json:"name"`
	Core int    `json:"core"`
}

// Sample is one visited state with the policy's chosen action: the DAgger
// unit of aggregation. Seq is the lifetime append index assigned by the
// SampleLog (1-based, monotonic), which makes reservoir decisions and
// journal replay exactly reproducible from (seed, Seq).
type Sample struct {
	Seq          uint64          `json:"seq"`
	Origin       string          `json:"origin"`
	AoI          string          `json:"aoi,omitempty"`   // benchmark name of the AoI
	Features     []float64       `json:"x"`               // feature vector handed to the policy
	Action       int             `json:"action"`          // core the policy's ratings argmax to
	QoS          float64         `json:"qos,omitempty"`   // AoI QoS target (instr/s)
	ClusterFreqs []float64       `json:"freqs,omitempty"` // per-cluster frequency at visit (Hz)
	Background   []BackgroundRef `json:"bg,omitempty"`
}
