package platform

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHiKey970Topology(t *testing.T) {
	p := HiKey970()
	if got := p.NumCores(); got != 8 {
		t.Fatalf("NumCores = %d, want 8", got)
	}
	if got := p.NumClusters(); got != 2 {
		t.Fatalf("NumClusters = %d, want 2", got)
	}
	for c := CoreID(0); c < 4; c++ {
		if p.KindOf(c) != Little {
			t.Errorf("core %d: kind = %v, want LITTLE", c, p.KindOf(c))
		}
	}
	for c := CoreID(4); c < 8; c++ {
		if p.KindOf(c) != Big {
			t.Errorf("core %d: kind = %v, want big", c, p.KindOf(c))
		}
	}
}

func TestHiKey970Frequencies(t *testing.T) {
	p := HiKey970()
	little, li := p.ClusterByKind(Little)
	big, bi := p.ClusterByKind(Big)
	if li != 0 || bi != 1 {
		t.Fatalf("cluster indices = %d,%d, want 0,1", li, bi)
	}
	if got := little.MaxFreq(); got != 1844e6 {
		t.Errorf("LITTLE max freq = %g, want 1.844 GHz", got)
	}
	if got := big.MaxFreq(); got != 2362e6 {
		t.Errorf("big max freq = %g, want 2.362 GHz", got)
	}
	if little.NumOPPs() != 9 || big.NumOPPs() != 9 {
		t.Errorf("OPP counts = %d,%d, want 9,9", little.NumOPPs(), big.NumOPPs())
	}
	// Frequencies used in the paper's illustrative examples must exist.
	for _, f := range []float64{509e6, 1402e6, 1844e6} {
		if little.IndexOf(f) < 0 {
			t.Errorf("LITTLE missing OPP at %g Hz", f)
		}
	}
	for _, f := range []float64{682e6, 1210e6, 1498e6} {
		if big.IndexOf(f) < 0 {
			t.Errorf("big missing OPP at %g Hz", f)
		}
	}
}

func TestVoltagesMonotonic(t *testing.T) {
	p := HiKey970()
	for ci, c := range p.Clusters {
		for i := 1; i < c.NumOPPs(); i++ {
			if c.VoltageAt(i) < c.VoltageAt(i-1) {
				t.Errorf("cluster %d: voltage not monotonic at level %d", ci, i)
			}
		}
	}
}

func TestMinIndexAtLeast(t *testing.T) {
	c := HiKey970().Clusters[0] // LITTLE
	tests := []struct {
		f    float64
		want int
	}{
		{0, 0},
		{509e6, 0},
		{510e6, 1},
		{1844e6, 8},
		{1845e6, 9}, // unreachable
		{3e9, 9},
	}
	for _, tt := range tests {
		if got := c.MinIndexAtLeast(tt.f); got != tt.want {
			t.Errorf("MinIndexAtLeast(%g) = %d, want %d", tt.f, got, tt.want)
		}
	}
}

func TestMinIndexAtLeastProperty(t *testing.T) {
	c := HiKey970().Clusters[1] // big
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		req := r.Float64() * 3e9
		idx := c.MinIndexAtLeast(req)
		if idx < c.NumOPPs() {
			// Level idx satisfies the request...
			if c.FreqAt(idx) < req-1e-3 {
				return false
			}
			// ...and is the lowest such level.
			if idx > 0 && c.FreqAt(idx-1) >= req-1e-3 {
				return false
			}
			return true
		}
		// Unreachable: even the max frequency is below the request.
		return c.MaxFreq() < req-1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestIndexOfRoundTrip(t *testing.T) {
	p := HiKey970()
	for ci, c := range p.Clusters {
		for i := range c.OPPs {
			if got := c.IndexOf(c.FreqAt(i)); got != i {
				t.Errorf("cluster %d: IndexOf(FreqAt(%d)) = %d", ci, i, got)
			}
		}
		if got := c.IndexOf(123e6); got != -1 {
			t.Errorf("cluster %d: IndexOf(non-OPP) = %d, want -1", ci, got)
		}
	}
}

func TestNewPanicsOnMalformedPlatform(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	opps := []OPP{{500e6, 0.7}, {1e9, 0.9}}
	mustPanic("duplicate core", func() {
		New([]*Cluster{{Kind: Little, Cores: []CoreID{0, 0}, OPPs: opps}})
	})
	mustPanic("gap in core IDs", func() {
		New([]*Cluster{{Kind: Little, Cores: []CoreID{0, 2}, OPPs: opps}})
	})
	mustPanic("no OPPs", func() {
		New([]*Cluster{{Kind: Little, Cores: []CoreID{0}}})
	})
	mustPanic("descending OPPs", func() {
		New([]*Cluster{{Kind: Little, Cores: []CoreID{0},
			OPPs: []OPP{{1e9, 0.9}, {500e6, 0.7}}}})
	})
}

func TestClusterKindString(t *testing.T) {
	if Little.String() != "LITTLE" || Big.String() != "big" {
		t.Errorf("kind strings = %q,%q", Little.String(), Big.String())
	}
	if ClusterKind(9).String() == "" {
		t.Error("unknown kind: empty string")
	}
}
