// Package platform models a heterogeneous clustered multi-core processor
// with per-cluster DVFS, mirroring the HiSilicon Kirin 970 SoC of the
// HiKey970 board used in the paper: four Arm Cortex-A53 cores (LITTLE
// cluster) and four Arm Cortex-A73 cores (big cluster), each cluster with
// its own operating-performance-point (OPP) ladder.
//
// The package is purely descriptive: it holds the static topology and OPP
// tables. Dynamic state (current VF levels, mappings) lives in the
// simulation engine.
package platform

import "fmt"

// ClusterKind identifies the microarchitectural class of a cluster.
type ClusterKind int

const (
	// Little is the energy-efficient in-order cluster (Cortex-A53/A55).
	Little ClusterKind = iota
	// Mid is the balanced out-of-order cluster of tri-gear (DynamIQ)
	// designs (Cortex-A76 class). The paper's platform has no mid
	// cluster, but its solution "is compatible with any number of
	// clusters"; this kind exercises that claim.
	Mid
	// Big is the high-performance out-of-order cluster (Cortex-A73/X1).
	Big
)

// String returns the conventional spelling.
func (k ClusterKind) String() string {
	switch k {
	case Little:
		return "LITTLE"
	case Mid:
		return "mid"
	case Big:
		return "big"
	default:
		return fmt.Sprintf("ClusterKind(%d)", int(k))
	}
}

// CoreID identifies a core globally on the chip (0..NumCores-1).
type CoreID int

// OPP is one operating performance point of a cluster: a frequency and the
// supply voltage required to sustain it.
type OPP struct {
	Freq    float64 // Hz
	Voltage float64 // V
}

// Cluster describes one voltage/frequency domain and the cores it contains.
// All cores of a cluster always run at the same OPP (per-cluster DVFS).
type Cluster struct {
	Kind  ClusterKind
	Cores []CoreID // global core IDs belonging to this cluster
	OPPs  []OPP    // ascending by frequency
}

// NumOPPs returns the number of VF levels of the cluster.
func (c *Cluster) NumOPPs() int { return len(c.OPPs) }

// MinFreq returns the lowest available frequency in Hz.
func (c *Cluster) MinFreq() float64 { return c.OPPs[0].Freq }

// MaxFreq returns the highest available frequency in Hz.
func (c *Cluster) MaxFreq() float64 { return c.OPPs[len(c.OPPs)-1].Freq }

// FreqAt returns the frequency of VF level idx in Hz.
func (c *Cluster) FreqAt(idx int) float64 { return c.OPPs[idx].Freq }

// VoltageAt returns the supply voltage of VF level idx in V.
func (c *Cluster) VoltageAt(idx int) float64 { return c.OPPs[idx].Voltage }

// IndexOf returns the VF level index whose frequency equals f (within one
// part in 1e6), or -1 if f is not an OPP of this cluster.
func (c *Cluster) IndexOf(f float64) int {
	for i, o := range c.OPPs {
		d := o.Freq - f
		if d < 0 {
			d = -d
		}
		if d <= o.Freq*1e-6 {
			return i
		}
	}
	return -1
}

// MinIndexAtLeast returns the lowest VF level index whose frequency is >= f.
// If f exceeds the maximum frequency, it returns NumOPPs() (one past the
// last level), signalling that no level satisfies the request.
func (c *Cluster) MinIndexAtLeast(f float64) int {
	for i, o := range c.OPPs {
		if o.Freq >= f-1e-3 { // 1 mHz slack against float noise
			return i
		}
	}
	return len(c.OPPs)
}

// Platform is a complete chip description: a fixed set of clusters and the
// mapping from global core IDs to clusters.
type Platform struct {
	Clusters    []*Cluster
	coreCluster []int // core ID -> index into Clusters
}

// New assembles a Platform from clusters. Core IDs must be dense, unique and
// start at zero; New panics otherwise because a malformed platform is a
// programming error, not a runtime condition.
func New(clusters []*Cluster) *Platform {
	n := 0
	for _, c := range clusters {
		n += len(c.Cores)
	}
	cc := make([]int, n)
	for i := range cc {
		cc[i] = -1
	}
	for ci, c := range clusters {
		if len(c.OPPs) == 0 {
			panic(fmt.Sprintf("platform: cluster %d has no OPPs", ci))
		}
		for i := 1; i < len(c.OPPs); i++ {
			if c.OPPs[i].Freq <= c.OPPs[i-1].Freq {
				panic(fmt.Sprintf("platform: cluster %d OPPs not ascending", ci))
			}
		}
		for _, core := range c.Cores {
			if int(core) < 0 || int(core) >= n {
				panic(fmt.Sprintf("platform: core ID %d out of range [0,%d)", core, n))
			}
			if cc[core] != -1 {
				panic(fmt.Sprintf("platform: core ID %d assigned to two clusters", core))
			}
			cc[core] = ci
		}
	}
	for id, ci := range cc {
		if ci == -1 {
			panic(fmt.Sprintf("platform: core ID %d not assigned to any cluster", id))
		}
	}
	return &Platform{Clusters: clusters, coreCluster: cc}
}

// NumCores returns the total number of cores on the chip.
func (p *Platform) NumCores() int { return len(p.coreCluster) }

// NumClusters returns the number of voltage/frequency domains.
func (p *Platform) NumClusters() int { return len(p.Clusters) }

// ClusterIndexOf returns the index (into Clusters) of the cluster that
// contains core c.
func (p *Platform) ClusterIndexOf(c CoreID) int { return p.coreCluster[c] }

// ClusterOf returns the cluster that contains core c.
func (p *Platform) ClusterOf(c CoreID) *Cluster { return p.Clusters[p.coreCluster[c]] }

// KindOf returns the microarchitectural kind of the cluster containing c.
func (p *Platform) KindOf(c CoreID) ClusterKind { return p.ClusterOf(c).Kind }

// ClusterByKind returns the first cluster of the given kind and its index,
// or (nil, -1) if the platform has no such cluster.
func (p *Platform) ClusterByKind(k ClusterKind) (*Cluster, int) {
	for i, c := range p.Clusters {
		if c.Kind == k {
			return c, i
		}
	}
	return nil, -1
}

// HiKey970 returns the platform model of the HiKey970 board: a Kirin 970
// with four Cortex-A53 (cores 0-3) and four Cortex-A73 (cores 4-7).
// Frequency ladders follow the board's cpufreq tables (the paper quotes the
// 1.84 GHz / 2.36 GHz maxima); voltages are a standard near-linear V-f map
// for the respective process corners.
func HiKey970() *Platform {
	little := &Cluster{
		Kind:  Little,
		Cores: []CoreID{0, 1, 2, 3},
		OPPs: []OPP{
			{509e6, 0.70}, {682e6, 0.73}, {829e6, 0.76}, {1018e6, 0.80},
			{1210e6, 0.84}, {1402e6, 0.88}, {1556e6, 0.92}, {1690e6, 0.96},
			{1844e6, 1.00},
		},
	}
	big := &Cluster{
		Kind:  Big,
		Cores: []CoreID{4, 5, 6, 7},
		OPPs: []OPP{
			{682e6, 0.70}, {1018e6, 0.75}, {1210e6, 0.79}, {1364e6, 0.83},
			{1498e6, 0.86}, {1652e6, 0.90}, {1863e6, 0.95}, {2093e6, 1.02},
			{2362e6, 1.10},
		},
	}
	return New([]*Cluster{little, big})
}

// TriCluster returns a DynamIQ-style three-gear platform: four LITTLE
// cores (0-3), two mid cores (4-5) and two big cores (6-7), each cluster
// its own DVFS domain. It exists to exercise the management policies'
// any-number-of-clusters generality; the paper's experiments all use
// HiKey970.
func TriCluster() *Platform {
	little := &Cluster{
		Kind:  Little,
		Cores: []CoreID{0, 1, 2, 3},
		OPPs: []OPP{
			{500e6, 0.70}, {800e6, 0.75}, {1100e6, 0.80}, {1400e6, 0.86},
			{1700e6, 0.93}, {2000e6, 1.00},
		},
	}
	mid := &Cluster{
		Kind:  Mid,
		Cores: []CoreID{4, 5},
		OPPs: []OPP{
			{600e6, 0.70}, {1000e6, 0.76}, {1400e6, 0.82}, {1800e6, 0.89},
			{2200e6, 0.97}, {2500e6, 1.05},
		},
	}
	big := &Cluster{
		Kind:  Big,
		Cores: []CoreID{6, 7},
		OPPs: []OPP{
			{700e6, 0.72}, {1100e6, 0.78}, {1500e6, 0.85}, {1900e6, 0.92},
			{2400e6, 1.00}, {2800e6, 1.10},
		},
	}
	return New([]*Cluster{little, mid, big})
}
