package npu

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/nn"
)

// probeInputs builds deterministic probe vectors for a model.
func probeInputs(dim, n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, dim)
		for j := range out[i] {
			out[i][j] = rng.NormFloat64()
		}
	}
	return out
}

// TestBackendConformance runs the shared contract check over both built-in
// backends (the serving layer runs it over its registry-backed backend).
func TestBackendConformance(t *testing.T) {
	m := nn.NewMLP([]int{21, 32, 8}, 3)
	probes := probeInputs(21, 6, 4)
	for _, b := range []Backend{New(m), NewCPU(m)} {
		if err := Conformance(b, m, probes); err != nil {
			t.Errorf("Conformance(%s): %v", b.Name(), err)
		}
	}
}

// TestConformanceRejectsWrongModel ensures the checker actually detects a
// backend computing with different parameters.
func TestConformanceRejectsWrongModel(t *testing.T) {
	m := nn.NewMLP([]int{4, 8, 2}, 5)
	other := nn.NewMLP([]int{4, 8, 2}, 6)
	if err := Conformance(New(other), m, probeInputs(4, 3, 7)); err == nil {
		t.Fatal("Conformance accepted a backend running a different model")
	}
}

// TestConcurrentInferAsync issues non-blocking inferences against one
// shared NPU from many goroutines — the fan-in pattern of the serving
// frontend — and verifies outputs and latency agreement. Run with -race.
func TestConcurrentInferAsync(t *testing.T) {
	m := nn.NewMLP([]int{21, 64, 8}, 8)
	dev := New(m)
	probes := probeInputs(21, 16, 9)
	want := m.PredictBatch(probes)

	const goroutines = 16
	const rounds = 20
	var wg sync.WaitGroup
	errCh := make(chan string, goroutines)
	fail := func(msg string) {
		select {
		case errCh <- msg:
		default:
		}
	}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				lo := (g + r) % len(probes)
				hi := lo + 1 + r%3
				if hi > len(probes) {
					hi = lo + 1
				}
				batch := probes[lo:hi]
				res := <-dev.InferAsync(batch)
				if res.Latency != dev.Latency(len(batch)) {
					fail("InferAsync latency disagrees with Latency")
					return
				}
				for i := range batch {
					for o := range want[lo+i] {
						if res.Outputs[i][o] != want[lo+i][o] {
							fail("InferAsync output diverged under concurrency")
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	if msg, ok := <-errCh; ok {
		t.Fatal(msg)
	}
}
