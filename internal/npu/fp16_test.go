package npu

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/nn"
)

func TestRoundFP16Exact(t *testing.T) {
	// Values exactly representable in FP16 round to themselves.
	for _, v := range []float64{0, 1, -1, 0.5, 0.25, 2, 1024, -0.125, 65504} {
		if got := RoundFP16(v); got != v {
			t.Errorf("RoundFP16(%g) = %g, want exact", v, got)
		}
	}
}

func TestRoundFP16Precision(t *testing.T) {
	cases := []struct {
		in     float64
		maxErr float64
	}{
		{0.1, 1e-4},
		{0.333333, 2e-4},
		{1.2345, 1e-3},
		{-0.87654, 5e-4},
		{100.123, 0.1},
	}
	for _, c := range cases {
		got := RoundFP16(c.in)
		if err := math.Abs(got - c.in); err > c.maxErr {
			t.Errorf("RoundFP16(%g) = %g (err %g > %g)", c.in, got, err, c.maxErr)
		}
	}
}

func TestRoundFP16Clamps(t *testing.T) {
	if got := RoundFP16(1e6); got != 65504 {
		t.Errorf("overflow: %g, want 65504", got)
	}
	if got := RoundFP16(-1e6); got != -65504 {
		t.Errorf("negative overflow: %g, want -65504", got)
	}
	if got := RoundFP16(1e-12); got != 0 {
		t.Errorf("underflow: %g, want 0", got)
	}
}

func TestRoundFP16Idempotent(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		if x > 1e5 {
			x = 1e5
		}
		if x < -1e5 {
			x = -1e5
		}
		once := RoundFP16(x)
		return RoundFP16(once) == once
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRoundFP16RelativeErrorBound(t *testing.T) {
	// For normal-range values, FP16 relative error is at most 2^-11.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		x := (rng.Float64()*2 - 1) * 100
		if math.Abs(x) < 1e-3 {
			continue
		}
		if rel := math.Abs(RoundFP16(x)-x) / math.Abs(x); rel > 1.0/2048 {
			t.Fatalf("RoundFP16(%g): relative error %g", x, rel)
		}
	}
}

func TestQuantizedModelWithinHysteresis(t *testing.T) {
	// The acceptance check of the paper's NPU deployment: FP16
	// quantization must not move ratings by anywhere near the run-time
	// hysteresis (0.2), so decisions are unchanged.
	m := nn.NewMLP(nn.PaperTopology(21, 8), 5)
	rng := rand.New(rand.NewSource(7))
	probes := make([][]float64, 64)
	for i := range probes {
		probes[i] = make([]float64, 21)
		for j := range probes[i] {
			probes[i][j] = rng.Float64() * 2
		}
	}
	maxDiff, err := ValidateQuantized(m, probes, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if maxDiff == 0 {
		t.Error("quantization changed nothing at all — emulation suspicious")
	}
	t.Logf("max FP16 output deviation: %g", maxDiff)
}

func TestValidateQuantizedDetectsViolations(t *testing.T) {
	m := nn.NewMLP(nn.PaperTopology(21, 8), 5)
	probes := [][]float64{make([]float64, 21)}
	probes[0][0] = 1
	if _, err := ValidateQuantized(m, probes, 0); err == nil {
		t.Error("zero tolerance accepted despite nonzero quantization error")
	}
}

func TestQuantizeFP16LeavesOriginal(t *testing.T) {
	m := nn.NewMLP([]int{4, 8, 2}, 1)
	x := []float64{0.3, -0.7, 1.1, 0.05}
	before := m.Predict(x)
	_ = QuantizeFP16(m)
	after := m.Predict(x)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("QuantizeFP16 mutated the host model")
		}
	}
}
