package npu

import (
	"testing"
	"time"

	"repro/internal/nn"
)

func model(t *testing.T) *nn.MLP {
	t.Helper()
	return nn.NewMLP(nn.PaperTopology(21, 8), 1)
}

func batch(n, dim int) [][]float64 {
	b := make([][]float64, n)
	for i := range b {
		b[i] = make([]float64, dim)
		for j := range b[i] {
			b[i][j] = float64(i*dim+j) * 0.01
		}
	}
	return b
}

func TestNPUMatchesHostModel(t *testing.T) {
	m := model(t)
	if err := Validate(New(m), m, batch(5, 21)); err != nil {
		t.Fatal(err)
	}
	if err := Validate(NewCPU(m), m, batch(5, 21)); err != nil {
		t.Fatal(err)
	}
}

func TestNPULatencyNearlyConstant(t *testing.T) {
	n := New(model(t))
	l1 := n.Latency(1)
	l16 := n.Latency(16)
	if l16 != l1 {
		t.Errorf("within one wave latency must be constant: %v vs %v", l1, l16)
	}
	l17 := n.Latency(17)
	if l17 <= l16 {
		t.Error("second wave must add cost")
	}
	// Even a full system's worth of apps stays close to the base cost —
	// the paper's Fig. 12 "constant overhead" claim.
	if ratio := float64(n.Latency(16)) / float64(n.Latency(1)); ratio > 1.05 {
		t.Errorf("latency ratio 16/1 = %.2f, want ~1", ratio)
	}
	if n.Latency(0) != 0 {
		t.Error("empty batch must be free")
	}
}

func TestCPULatencyLinear(t *testing.T) {
	c := NewCPU(model(t))
	l1 := c.Latency(1) - c.CallOverhead
	l8 := c.Latency(8) - c.CallOverhead
	ratio := float64(l8) / float64(l1)
	if ratio < 7.9 || ratio > 8.1 {
		t.Errorf("CPU latency ratio 8/1 = %.2f, want 8 (linear)", ratio)
	}
}

func TestNPUFasterThanCPUForBatches(t *testing.T) {
	m := model(t)
	n, c := New(m), NewCPU(m)
	// At batch 1 the NPU's driver overhead makes the CPU competitive —
	// the NPU's advantage is batching (one inference per running app).
	if n.Latency(1) <= c.Latency(1) {
		t.Errorf("at batch 1: NPU %v, CPU %v — driver overhead should dominate",
			n.Latency(1), c.Latency(1))
	}
	// CPU latency overtakes NPU latency as the batch grows; by a full
	// system (8+ parallel apps) the NPU must win.
	for _, b := range []int{8, 12, 16} {
		if n.Latency(b) >= c.Latency(b) {
			t.Errorf("at batch %d: NPU %v, CPU %v — NPU should win", b, n.Latency(b), c.Latency(b))
		}
	}
}

func TestInferAsyncDelivers(t *testing.T) {
	m := model(t)
	n := New(m)
	b := batch(4, 21)
	select {
	case res := <-n.InferAsync(b):
		if len(res.Outputs) != 4 {
			t.Fatalf("outputs = %d, want 4", len(res.Outputs))
		}
		if res.Latency != n.Latency(4) {
			t.Errorf("latency = %v, want %v", res.Latency, n.Latency(4))
		}
		want := m.PredictBatch(b)
		for i := range want {
			for o := range want[i] {
				if res.Outputs[i][o] != want[i][o] {
					t.Fatal("async outputs differ from host model")
				}
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("InferAsync never delivered")
	}
}

func TestValidateDetectsMismatch(t *testing.T) {
	a := nn.NewMLP([]int{21, 8, 8}, 1)
	b := nn.NewMLP([]int{21, 8, 8}, 2) // different weights
	if err := Validate(New(a), b, batch(3, 21)); err == nil {
		t.Error("Validate accepted mismatched models")
	}
}

func TestNilModelPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"npu": func() { New(nil) },
		"cpu": func() { NewCPU(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPaperOverheadCalibration(t *testing.T) {
	// The NPU inference cost must stay ~constant and in the ~1 ms range
	// across any realistic number of applications, so that the total
	// migration-policy overhead (inference plus bookkeeping) lands at the
	// paper's ~4.3 ms per invocation independent of app count.
	n := New(model(t))
	base := n.Latency(1)
	for _, apps := range []int{1, 4, 8, 16} {
		l := n.Latency(apps)
		if l < 500*time.Microsecond || l > 2*time.Millisecond {
			t.Errorf("NPU latency at %d apps = %v, want 0.5-2 ms", apps, l)
		}
		if float64(l) > 1.3*float64(base) {
			t.Errorf("NPU latency at %d apps = %v, want within 30%% of batch-1 %v",
				apps, l, base)
		}
	}
}
