package npu

import (
	"fmt"
	"math"

	"repro/internal/nn"
)

// The Kirin 970's NPU executes FP16. Deploying the migration model on it
// therefore rounds every weight and activation to half precision. This file
// emulates that quantization so the deployment can be validated offline:
// QuantizeFP16 produces the model the accelerator would effectively run,
// and ValidateQuantized bounds the rating error it introduces. For the
// paper's 21-input MLP with labels in [-1, 1], FP16's ~3 decimal digits are
// far below the run-time hysteresis, so quantization never changes a
// migration decision — the property the acceptance check asserts.

// RoundFP16 rounds a float64 to the nearest IEEE 754 half-precision value
// (ties to even), returned as float64. Values beyond the FP16 range clamp
// to ±65504; subnormals flush through the usual conversion.
func RoundFP16(x float64) float64 {
	return float64(fp16ToFloat(floatToFP16(float32(x))))
}

// floatToFP16 converts float32 to the raw bits of a float16.
func floatToFP16(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xff) - 127 + 15
	mant := bits & 0x7fffff

	switch {
	case exp >= 0x1f:
		// Overflow (or inf/NaN): clamp to max finite / keep inf semantics.
		if exp == 0x1f+112 && mant != 0 { // NaN in source
			return sign | 0x7e00
		}
		if int32(bits>>23&0xff) == 0xff {
			if mant != 0 {
				return sign | 0x7e00 // NaN
			}
			return sign | 0x7c00 // Inf
		}
		return sign | 0x7bff // clamp to 65504
	case exp <= 0:
		// Subnormal or underflow to zero.
		if exp < -10 {
			return sign
		}
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		rounded := (mant + half - 1 + ((mant >> shift) & 1)) >> shift
		return sign | uint16(rounded)
	default:
		// Normal: round mantissa to 10 bits, ties to even.
		half := uint32(0x1000)
		rounded := mant + half - 1 + ((mant >> 13) & 1)
		if rounded&0x800000 != 0 { // mantissa overflow bumps the exponent
			rounded = 0
			exp++
			if exp >= 0x1f {
				return sign | 0x7bff
			}
		}
		return sign | uint16(exp)<<10 | uint16(rounded>>13)
	}
}

// fp16ToFloat expands raw float16 bits to float32.
func fp16ToFloat(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)
	switch {
	case exp == 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case exp == 0x1f:
		return math.Float32frombits(sign | 0xff<<23 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}

// QuantizeFP16 returns a copy of the model with every weight and bias
// rounded to half precision — the parameters the NPU effectively executes.
func QuantizeFP16(m *nn.MLP) *nn.MLP {
	q := m.Clone()
	q.MapParams(RoundFP16)
	return q
}

// ValidateQuantized compares the FP16-quantized model against the FP32 host
// model on the probe inputs and returns the maximum absolute output
// difference. It errors if the difference exceeds tol — chosen below the
// migration hysteresis, so quantization cannot flip a decision.
func ValidateQuantized(m *nn.MLP, probes [][]float64, tol float64) (maxDiff float64, err error) {
	q := QuantizeFP16(m)
	for i, x := range probes {
		a, b := m.Predict(x), q.Predict(x)
		for o := range a {
			d := math.Abs(a[o] - b[o])
			if d > maxDiff {
				maxDiff = d
			}
			if d > tol {
				return maxDiff, fmt.Errorf(
					"npu: probe %d output %d: fp16 deviation %g exceeds %g", i, o, d, tol)
			}
		}
	}
	return maxDiff, nil
}
