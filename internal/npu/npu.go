// Package npu models the neural processing unit of the Kirin 970 SoC and
// its HiAI-DDK-style programming interface.
//
// The paper's key observation is architectural, not numerical: the NPU
// performs batched NN inference with high internal parallelism at a nearly
// batch-size-independent latency, via a non-blocking call from the
// management daemon, whereas CPU inference time grows linearly with the
// number of running applications (one AoI inference each). The latency
// model here reproduces exactly that shape (the paper's Fig. 12), while the
// computed results are bit-identical to the host network — Kirin 970's NPU
// runs FP16, but the paper's 21-input MLP is far from precision-limited.
package npu

import (
	"fmt"
	"time"

	"repro/internal/nn"
	"repro/internal/telemetry"
)

// Lazy telemetry handles: they bind to the process-default registry when a
// binary installs one (telemetry.Install) and cost a few nanoseconds with
// zero allocations otherwise, so the hot inference path carries them
// unconditionally.
var (
	npuInferences = telemetry.LazyCounter{Name: "npu_inferences_total",
		Help: "batched Infer invocations on the modelled NPU"}
	npuRows = telemetry.LazyCounter{Name: "npu_rows_total",
		Help: "rows inferred on the modelled NPU"}
	npuAsyncLatency = telemetry.LazyHistogram{Name: "npu_modeled_latency_seconds",
		Help:    "modelled device latency of async NPU invocations",
		Buckets: telemetry.ExpBuckets(100e-6, 2, 10)}
	cpuInferences = telemetry.LazyCounter{Name: "npu_cpu_inferences_total",
		Help: "batched Infer invocations on the modelled CPU backend"}
	cpuRows = telemetry.LazyCounter{Name: "npu_cpu_rows_total",
		Help: "rows inferred on the modelled CPU backend"}
)

// Backend performs batched NN inference and reports how long the real
// device would take. Implementations: NPU (accelerator), CPUBackend, and
// the serving layer's registry-backed device.
//
// Concurrency: implementations over a fixed model must be safe for
// concurrent Infer/Latency calls — nn.MLP forward passes are read-only, so
// NPU and CPUBackend are; custom backends must preserve this.
type Backend interface {
	Name() string
	// Infer runs one forward pass per row of batch.
	Infer(batch [][]float64) [][]float64
	// Latency returns the modelled wall-clock cost of Infer for the
	// given batch size on the real device.
	Latency(batchSize int) time.Duration
}

// Result is the outcome of a non-blocking inference call.
type Result struct {
	Outputs [][]float64
	Latency time.Duration
}

// NPU models the accelerator: a fixed driver/DMA overhead plus a per-wave
// compute cost, where a wave is a group of Lanes batch elements processed
// in parallel.
type NPU struct {
	model *nn.MLP
	// FixedOverhead is the per-invocation driver, DMA and synchronization
	// cost (dominates for small models like ours).
	FixedOverhead time.Duration
	// WaveCost is the compute time of one wave of Lanes parallel
	// inferences.
	WaveCost time.Duration
	// Lanes is the number of batch elements processed in parallel.
	Lanes int
}

// New creates an NPU executing the given model, with latency parameters
// calibrated to the paper's measurements: the migration policy (one batched
// inference plus bookkeeping) costs ≈4.3 ms per invocation regardless of
// the number of applications. It panics on a nil model.
func New(model *nn.MLP) *NPU {
	if model == nil {
		panic("npu: nil model")
	}
	return &NPU{
		model:         model,
		FixedOverhead: 900 * time.Microsecond,
		WaveCost:      100 * time.Microsecond,
		Lanes:         16,
	}
}

// Name implements Backend.
func (n *NPU) Name() string { return "npu" }

// Infer implements Backend.
func (n *NPU) Infer(batch [][]float64) [][]float64 {
	npuInferences.Inc()
	npuRows.Add(float64(len(batch)))
	return n.model.PredictBatch(batch)
}

// Latency implements Backend.
func (n *NPU) Latency(batchSize int) time.Duration {
	if batchSize <= 0 {
		return 0
	}
	waves := (batchSize + n.Lanes - 1) / n.Lanes
	return n.FixedOverhead + time.Duration(waves)*n.WaveCost
}

// InferAsync issues a non-blocking inference, mirroring the HiAI DDK call
// the paper's daemon uses: the returned channel delivers the outputs and
// the modelled device latency.
func (n *NPU) InferAsync(batch [][]float64) <-chan Result {
	ch := make(chan Result, 1)
	go func() {
		lat := n.Latency(len(batch))
		npuAsyncLatency.Observe(lat.Seconds())
		ch <- Result{Outputs: n.Infer(batch), Latency: lat}
	}()
	return ch
}

// CPUBackend models running the same inference on a CPU core: latency is
// linear in batch size and in the network's multiply-accumulate count.
type CPUBackend struct {
	model *nn.MLP
	// MACRate is the core's sustained multiply-accumulate throughput in
	// MACs per second.
	MACRate float64
	// CallOverhead is the per-invocation bookkeeping cost.
	CallOverhead time.Duration
	macs         int
}

// NewCPU creates a CPU inference backend. The rate models a plain FP32
// scalar implementation on a LITTLE core at a mid VF level (no NEON, cold
// caches between the 500 ms invocations). It panics on a nil model.
func NewCPU(model *nn.MLP) *CPUBackend {
	if model == nil {
		panic("npu: nil model")
	}
	macs := 0
	sizes := model.Sizes()
	for l := 0; l+1 < len(sizes); l++ {
		macs += sizes[l] * sizes[l+1]
	}
	return &CPUBackend{
		model:        model,
		MACRate:      1e8,
		CallOverhead: 50 * time.Microsecond,
		macs:         macs,
	}
}

// Name implements Backend.
func (c *CPUBackend) Name() string { return "cpu" }

// Infer implements Backend.
func (c *CPUBackend) Infer(batch [][]float64) [][]float64 {
	cpuInferences.Inc()
	cpuRows.Add(float64(len(batch)))
	return c.model.PredictBatch(batch)
}

// Latency implements Backend.
func (c *CPUBackend) Latency(batchSize int) time.Duration {
	if batchSize <= 0 {
		return 0
	}
	per := float64(c.macs) / c.MACRate // seconds per inference
	return c.CallOverhead + time.Duration(per*float64(batchSize)*float64(time.Second))
}

// Validate checks that a backend produces outputs identical to the host
// model for the given probe inputs — the acceptance test the paper's
// deployment would run against the HiAI-converted model.
func Validate(b Backend, model *nn.MLP, probes [][]float64) error {
	got := b.Infer(probes)
	for i, x := range probes {
		want := model.Predict(x)
		if len(got[i]) != len(want) {
			return fmt.Errorf("npu: probe %d: output dim %d, want %d", i, len(got[i]), len(want))
		}
		for o := range want {
			d := got[i][o] - want[o]
			if d > 1e-9 || d < -1e-9 {
				return fmt.Errorf("npu: probe %d output %d: %g, want %g", i, o, got[i][o], want[o])
			}
		}
	}
	return nil
}
