package npu

import (
	"fmt"
	"time"

	"repro/internal/nn"
)

// AsyncBackend is a Backend that also offers the non-blocking invocation of
// the HiAI DDK (NPU, and any serving-layer device that mirrors it).
type AsyncBackend interface {
	Backend
	InferAsync(batch [][]float64) <-chan Result
}

// Conformance checks the Backend contract for any implementation:
//
//   - Infer outputs are bit-identical to the host model's Predict (the
//     deployment acceptance test, as in Validate);
//   - Latency is 0 for non-positive batch sizes, positive for real ones,
//     and non-decreasing in batch size;
//   - if the backend is an AsyncBackend, InferAsync agrees with Infer and
//     reports Latency(len(batch)).
//
// probes must be non-empty rows of the model's input dimension.
func Conformance(b Backend, model *nn.MLP, probes [][]float64) error {
	if len(probes) == 0 {
		return fmt.Errorf("npu: conformance needs at least one probe")
	}
	if b.Name() == "" {
		return fmt.Errorf("npu: backend has an empty name")
	}
	if err := Validate(b, model, probes); err != nil {
		return fmt.Errorf("backend %q: %w", b.Name(), err)
	}

	// Latency shape.
	for _, n := range []int{0, -1} {
		if d := b.Latency(n); d != 0 {
			return fmt.Errorf("backend %q: Latency(%d) = %v, want 0", b.Name(), n, d)
		}
	}
	prev := time.Duration(0)
	for _, n := range []int{1, 2, len(probes), 16, 64} {
		d := b.Latency(n)
		if d <= 0 {
			return fmt.Errorf("backend %q: Latency(%d) = %v, want > 0", b.Name(), n, d)
		}
		if d < prev {
			return fmt.Errorf("backend %q: Latency(%d) = %v decreased below %v", b.Name(), n, d, prev)
		}
		prev = d
	}

	// Async agreement.
	if ab, ok := b.(AsyncBackend); ok {
		res := <-ab.InferAsync(probes)
		want := b.Infer(probes)
		if len(res.Outputs) != len(want) {
			return fmt.Errorf("backend %q: InferAsync returned %d outputs, want %d",
				b.Name(), len(res.Outputs), len(want))
		}
		for i := range want {
			if len(res.Outputs[i]) != len(want[i]) {
				return fmt.Errorf("backend %q: InferAsync output %d has dim %d, want %d",
					b.Name(), i, len(res.Outputs[i]), len(want[i]))
			}
			for o := range want[i] {
				if res.Outputs[i][o] != want[i][o] {
					return fmt.Errorf("backend %q: InferAsync output %d[%d] = %g, Infer gives %g",
						b.Name(), i, o, res.Outputs[i][o], want[i][o])
				}
			}
		}
		if res.Latency != b.Latency(len(probes)) {
			return fmt.Errorf("backend %q: InferAsync latency %v, Latency(%d) gives %v",
				b.Name(), res.Latency, len(probes), b.Latency(len(probes)))
		}
	}
	return nil
}
