package power

import (
	"testing"
	"testing/quick"

	"repro/internal/platform"
)

func TestDynamicScaling(t *testing.T) {
	m := Default()
	base := m.Dynamic(platform.Big, 1e9, 1.0, 1.0)
	if base <= 0 {
		t.Fatal("dynamic power not positive")
	}
	// P ∝ f.
	if got := m.Dynamic(platform.Big, 2e9, 1.0, 1.0); got != 2*base {
		t.Errorf("doubling f: %g, want %g", got, 2*base)
	}
	// P ∝ V².
	if got := m.Dynamic(platform.Big, 1e9, 2.0, 1.0); got != 4*base {
		t.Errorf("doubling V: %g, want %g", got, 4*base)
	}
	// P ∝ activity above the idle floor.
	if got := m.Dynamic(platform.Big, 1e9, 1.0, 0.5); got != 0.5*base {
		t.Errorf("half activity: %g, want %g", got, 0.5*base)
	}
}

func TestIdleFloor(t *testing.T) {
	m := Default()
	idle := m.Dynamic(platform.Big, 1e9, 1.0, 0)
	floor := m.Dynamic(platform.Big, 1e9, 1.0, m.Params[platform.Big].IdleFrac)
	if idle != floor {
		t.Errorf("idle power %g, want clamped to floor %g", idle, floor)
	}
	if idle <= 0 {
		t.Error("idle core must still draw clock-tree power")
	}
}

func TestBigDrawsMoreThanLittle(t *testing.T) {
	m := Default()
	b := m.Dynamic(platform.Big, 1e9, 0.8, 1)
	l := m.Dynamic(platform.Little, 1e9, 0.8, 1)
	if b <= 2*l {
		t.Errorf("big %g W vs LITTLE %g W: big should draw several times more", b, l)
	}
}

func TestCalibratedPeaks(t *testing.T) {
	m := Default()
	plat := platform.HiKey970()
	big, _ := plat.ClusterByKind(platform.Big)
	little, _ := plat.ClusterByKind(platform.Little)
	pb := m.Dynamic(platform.Big, big.MaxFreq(), big.VoltageAt(big.NumOPPs()-1), 1)
	pl := m.Dynamic(platform.Little, little.MaxFreq(), little.VoltageAt(little.NumOPPs()-1), 1)
	if pb < 2.5 || pb > 4.5 {
		t.Errorf("big peak dynamic = %.2f W, want 2.5-4.5 (A73 class)", pb)
	}
	if pl < 0.4 || pl > 1.0 {
		t.Errorf("LITTLE peak dynamic = %.2f W, want 0.4-1.0 (A53 class)", pl)
	}
}

func TestLeakageGrowsWithTemperature(t *testing.T) {
	m := Default()
	cold := m.Leakage(platform.Big, 1.0, 25)
	hot := m.Leakage(platform.Big, 1.0, 85)
	if hot <= cold {
		t.Errorf("leakage at 85°C (%g) not above 25°C (%g)", hot, cold)
	}
	// Linear coefficient: 60°C above reference at 1.2%/°C → +72 %.
	want := cold * (1 + 0.012*60)
	if diff := hot - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("leakage at 85°C = %g, want %g", hot, want)
	}
}

func TestLeakageFloor(t *testing.T) {
	m := Default()
	// Far below reference temperature the clamp keeps leakage positive.
	if got := m.Leakage(platform.Big, 1.0, -200); got <= 0 {
		t.Errorf("leakage clamped to %g, want > 0", got)
	}
}

func TestCoreIsSumOfParts(t *testing.T) {
	m := Default()
	f, v, act, temp := 1.5e9, 0.9, 0.7, 55.0
	want := m.Dynamic(platform.Little, f, v, act) + m.Leakage(platform.Little, v, temp)
	if got := m.Core(platform.Little, f, v, act, temp); got != want {
		t.Errorf("Core = %g, want %g", got, want)
	}
}

func TestPowerNonNegativeProperty(t *testing.T) {
	m := Default()
	f := func(fGHz, v, act, temp float64) bool {
		fr := clamp(fGHz, 0.1, 3) * 1e9
		vv := clamp(v, 0.5, 1.3)
		a := clamp(act, 0, 1)
		tc := clamp(temp, -40, 125)
		for _, k := range []platform.ClusterKind{platform.Little, platform.Big} {
			if m.Core(k, fr, vv, a, tc) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func clamp(x, lo, hi float64) float64 {
	if x != x { // NaN
		return lo
	}
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
