// Package power implements the per-core power model that drives the thermal
// simulation.
//
// Per-core power is the sum of dynamic switching power, proportional to
// C_eff · V² · f scaled by an activity factor, and leakage power, which
// grows with supply voltage and with temperature. The HiKey970 exposes no
// power sensors (a central premise of the paper: policies cannot observe
// power), so this model is used exclusively by the simulation substrate —
// never by a management policy.
package power

import "repro/internal/platform"

// ClusterParams holds the power parameters of one cluster type.
type ClusterParams struct {
	// CEff is the effective switched capacitance of one core at full
	// activity, in farads.
	CEff float64
	// LeakCoeff is the leakage conductance coefficient: leakage at
	// reference temperature is LeakCoeff · V, in W/V.
	LeakCoeff float64
	// IdleFrac is the fraction of full-activity dynamic power an idle
	// (clock-gated but not power-gated) core consumes.
	IdleFrac float64
}

// Model holds per-cluster power parameters and leakage temperature scaling.
type Model struct {
	Params map[platform.ClusterKind]ClusterParams
	// LeakTempCoeff is the relative leakage increase per °C above TRef.
	LeakTempCoeff float64
	// TRef is the leakage reference temperature in °C.
	TRef float64
	// Uncore is the constant rest-of-SoC power (memory controller,
	// interconnect) in W, attributed to the package node.
	Uncore float64
}

// Default returns the calibrated power model. With these parameters a fully
// active big core at the top OPP (2.362 GHz, 1.10 V) draws ≈3.4 W dynamic,
// a LITTLE core at its top OPP (1.844 GHz, 1.00 V) ≈0.65 W — in line with
// published Cortex-A73/A53 smartphone figures.
func Default() Model {
	return Model{
		Params: map[platform.ClusterKind]ClusterParams{
			platform.Little: {CEff: 0.35e-9, LeakCoeff: 0.05, IdleFrac: 0.03},
			platform.Mid:    {CEff: 0.80e-9, LeakCoeff: 0.10, IdleFrac: 0.03},
			platform.Big:    {CEff: 1.20e-9, LeakCoeff: 0.15, IdleFrac: 0.03},
		},
		LeakTempCoeff: 0.012,
		TRef:          25,
		Uncore:        0.5,
	}
}

// Dynamic returns the dynamic power in W of a core of kind k at frequency f
// (Hz) and voltage v, with activity in [0,1]. Activity combines the time
// share the core spends executing and the fraction of non-stalled cycles.
func (m Model) Dynamic(k platform.ClusterKind, f, v, activity float64) float64 {
	p := m.Params[k]
	if activity < p.IdleFrac {
		activity = p.IdleFrac // clock tree keeps switching on an idle core
	}
	return p.CEff * v * v * f * activity
}

// Leakage returns the static power in W of a core of kind k at voltage v
// and die temperature tempC (°C). Leakage grows linearly with temperature,
// creating the positive feedback loop that makes thermal management harder
// at high temperatures.
func (m Model) Leakage(k platform.ClusterKind, v, tempC float64) float64 {
	p := m.Params[k]
	scale := 1 + m.LeakTempCoeff*(tempC-m.TRef)
	if scale < 0.5 {
		scale = 0.5 // leakage never vanishes
	}
	return p.LeakCoeff * v * scale
}

// Core returns the total power of one core.
func (m Model) Core(k platform.ClusterKind, f, v, activity, tempC float64) float64 {
	return m.Dynamic(k, f, v, activity) + m.Leakage(k, v, tempC)
}

// CoreEval is a compiled per-(kind, frequency, voltage) core-power
// evaluator: the parameter lookups and the VF-dependent coefficient
// products are hoisted out of the per-tick path. Power produces bit-for-bit
// the same float64 as Model.Core for the compiled operating point — the
// coefficients are formed with the identical left-associated products the
// direct formulas evaluate — so callers may cache evaluators between DVFS
// changes without perturbing simulation results.
type CoreEval struct {
	dynCoeff float64 // W at activity 1: CEff·v·v·f
	idleFrac float64 // activity floor (clock tree keeps switching)
	leakV    float64 // W at reference temperature: LeakCoeff·v
	ltc      float64 // relative leakage increase per °C
	tRef     float64 // leakage reference temperature (°C)
}

// Compile builds the evaluator for a core of kind k at frequency f (Hz) and
// voltage v.
func (m Model) Compile(k platform.ClusterKind, f, v float64) CoreEval {
	p := m.Params[k]
	return CoreEval{
		dynCoeff: p.CEff * v * v * f,
		idleFrac: p.IdleFrac,
		leakV:    p.LeakCoeff * v,
		ltc:      m.LeakTempCoeff,
		tRef:     m.TRef,
	}
}

// Power returns the total core power in W for the compiled operating point,
// given the activity factor in [0,1] and the die temperature in °C.
//
//hot:per-core-per-tick-power
func (ev CoreEval) Power(activity, tempC float64) float64 {
	if activity < ev.idleFrac {
		activity = ev.idleFrac
	}
	scale := 1 + ev.ltc*(tempC-ev.tRef)
	if scale < 0.5 {
		scale = 0.5
	}
	return ev.dynCoeff*activity + ev.leakV*scale
}
