package power

import (
	"math/rand"
	"testing"

	"repro/internal/platform"
)

// TestCoreEvalMatchesModel pins the compiled evaluator's contract: for any
// operating point, CoreEval.Power returns bit-for-bit the float64 that
// Model.Core computes — the engine caches evaluators between DVFS changes
// on the strength of this equality.
func TestCoreEvalMatchesModel(t *testing.T) {
	m := Default()
	rng := rand.New(rand.NewSource(42))
	kinds := []platform.ClusterKind{platform.Little, platform.Mid, platform.Big}
	for i := 0; i < 10000; i++ {
		k := kinds[rng.Intn(len(kinds))]
		f := 0.5e9 + rng.Float64()*2.5e9
		v := 0.6 + rng.Float64()*0.6
		ev := m.Compile(k, f, v)
		activity := rng.Float64() * 1.2 // occasionally above 1, below idle floor
		if rng.Intn(4) == 0 {
			activity = rng.Float64() * 0.05 // exercise the idle clamp
		}
		temp := -40 + rng.Float64()*160 // includes the leakage floor region
		got := ev.Power(activity, temp)
		want := m.Core(k, f, v, activity, temp)
		if got != want {
			t.Fatalf("kind %v f=%v v=%v a=%v T=%v: CoreEval %v != Model.Core %v",
				k, f, v, activity, temp, got, want)
		}
	}
}
