package stats

import (
	"fmt"
	"strings"
)

// Terminal visualization helpers: the paper communicates its evaluation as
// figures; these render the same series as ASCII bars/sparklines so the
// experiment reports stay readable without a plotting stack.

var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders xs as a unicode sparkline, scaling min..max onto eight
// levels. Constant series render mid-level; empty series render "".
func Sparkline(xs []float64) string {
	if len(xs) == 0 {
		return ""
	}
	lo, hi := Min(xs), Max(xs)
	var b strings.Builder
	for _, x := range xs {
		idx := len(sparkLevels) / 2
		if hi > lo {
			idx = int((x - lo) / (hi - lo) * float64(len(sparkLevels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// BarChart renders labeled horizontal bars scaled to width characters,
// annotated with the formatted value. It panics when labels and values
// differ in length.
func BarChart(labels []string, values []float64, width int, format string) string {
	if len(labels) != len(values) {
		panic("stats: BarChart label/value length mismatch")
	}
	if len(values) == 0 {
		return ""
	}
	if width <= 0 {
		width = 40
	}
	hi := Max(values)
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	for i, v := range values {
		n := 0
		if hi > 0 {
			n = int(v / hi * float64(width))
		}
		if v > 0 && n == 0 {
			n = 1
		}
		fmt.Fprintf(&b, "%-*s %s%s %s\n", labelW, labels[i],
			strings.Repeat("█", n), strings.Repeat("·", width-n),
			fmt.Sprintf(format, v))
	}
	return b.String()
}
