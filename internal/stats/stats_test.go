package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %g, want 5", got)
	}
	// Sample std of this classic set is ~2.138.
	if got := Std(xs); math.Abs(got-2.138) > 0.01 {
		t.Errorf("Std = %g, want ~2.138", got)
	}
	if Mean(nil) != 0 || Std(nil) != 0 || Std([]float64{1}) != 0 {
		t.Error("degenerate inputs not handled")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %g/%g", Min(xs), Max(xs))
	}
	for _, f := range []func([]float64) float64{Min, Max} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("empty slice: expected panic")
				}
			}()
			f(nil)
		}()
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{10, 12, 14})
	if s.Mean != 12 {
		t.Errorf("mean = %g", s.Mean)
	}
	if got := s.String(); got != "12.0±2.0" {
		t.Errorf("String = %q", got)
	}
}

func TestMeanBetweenMinMaxProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		return m >= Min(clean)-1e-6 && m <= Max(clean)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("technique", "temp", "violations")
	tab.AddRow("TOP-IL", "38.2", "0.3")
	tab.AddRowf("%.1f", "GTS/ondemand", 55.25, 0.1)
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "technique") || !strings.Contains(lines[1], "---") {
		t.Errorf("header/rule malformed:\n%s", out)
	}
	if !strings.Contains(lines[3], "55.2") {
		t.Errorf("AddRowf float formatting missing:\n%s", out)
	}
	// Columns aligned: every data line has the same prefix width for col 2.
	idx0 := strings.Index(lines[2], "38.2")
	idx1 := strings.Index(lines[3], "55.2")
	if idx0 != idx1 {
		t.Errorf("columns misaligned: %d vs %d\n%s", idx0, idx1, out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tab := NewTable("a", "b")
	tab.AddRow("x")
	tab.AddRow("y", "z", "extra")
	out := tab.String()
	if !strings.Contains(out, "extra") {
		t.Errorf("wide row lost:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty series: %q", got)
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline runes = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("sparkline endpoints: %q", s)
	}
	// Constant series: mid level, no panic.
	c := []rune(Sparkline([]float64{5, 5, 5}))
	if len(c) != 3 || c[0] != c[2] {
		t.Errorf("constant sparkline: %q", string(c))
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart([]string{"TOP-IL", "ondemand"}, []float64{31, 45}, 20, "%.0f°C")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "31°C") || !strings.Contains(lines[1], "45°C") {
		t.Errorf("values missing:\n%s", out)
	}
	// The larger value fills the full width.
	if !strings.Contains(lines[1], strings.Repeat("█", 20)) {
		t.Errorf("max bar not full width:\n%s", out)
	}
	// Zero-length input and mismatch.
	if BarChart(nil, nil, 10, "%g") != "" {
		t.Error("empty chart not empty")
	}
	defer func() {
		if recover() == nil {
			t.Error("mismatched lengths: expected panic")
		}
	}()
	BarChart([]string{"a"}, []float64{1, 2}, 10, "%g")
}
