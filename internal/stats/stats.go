// Package stats provides the small statistical and text-reporting helpers
// used by the experiment harness: mean/stddev aggregation across repeated
// runs (the paper reports mean and standard deviation over three models
// trained with different seeds) and aligned text tables for experiment
// output.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the sample standard deviation of xs (0 for fewer than two
// values).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// MeanStd returns both moments.
func MeanStd(xs []float64) (mean, std float64) {
	return Mean(xs), Std(xs)
}

// Min returns the minimum of xs; it panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs; it panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary is a mean ± std pair with a compact printer.
type Summary struct {
	Mean float64
	Std  float64
}

// Summarize aggregates xs into a Summary.
func Summarize(xs []float64) Summary {
	m, s := MeanStd(xs)
	return Summary{Mean: m, Std: s}
}

// String formats as "12.3±0.4".
func (s Summary) String() string {
	return fmt.Sprintf("%.1f±%.1f", s.Mean, s.Std)
}

// Table renders rows as an aligned text table; the first row is the header,
// separated by a rule.
type Table struct {
	rows [][]string
}

// NewTable creates a table with the given header.
func NewTable(header ...string) *Table {
	t := &Table{}
	t.rows = append(t.rows, header)
	return t
}

// AddRow appends a row; cells beyond the header width are kept (the table
// grows), missing cells render empty.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row of formatted cells: each argument is rendered with
// %v unless it is a float64, which uses the given float format.
func (t *Table) AddRowf(floatFormat string, cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf(floatFormat, v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(row...)
}

// String renders the table.
func (t *Table) String() string {
	width := 0
	for _, r := range t.rows {
		if len(r) > width {
			width = len(r)
		}
	}
	colW := make([]int, width)
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > colW[i] {
				colW[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < width; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", colW[i]-len(c)))
		}
		b.WriteString("\n")
	}
	writeRow(t.rows[0])
	total := 0
	for _, w := range colW {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(width-1)))
	b.WriteString("\n")
	for _, r := range t.rows[1:] {
		writeRow(r)
	}
	return b.String()
}
