// Package validate runs calibration self-checks over the simulation
// substrate: the physical invariants every platform model must satisfy for
// the management-policy comparison to be meaningful. The checks encode the
// platform properties the paper's arguments rely on (e.g. per-application
// big-vs-LITTLE asymmetry, DVFS-insensitive memory-bound applications,
// fan-dependent cooling). cmd/topil-validate prints a report; the test
// suite asserts all checks pass for the shipped models.
package validate

import (
	"fmt"

	"repro/internal/perf"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// Result is the outcome of one check.
type Result struct {
	Name   string
	OK     bool
	Detail string
}

// All runs every check against the default HiKey970 models and catalog.
func All() []Result {
	var out []Result
	run := func(name string, f func() error) {
		r := Result{Name: name, OK: true, Detail: "ok"}
		if err := f(); err != nil {
			r.OK = false
			r.Detail = err.Error()
		}
		out = append(out, r)
	}
	run("platform/opp-ladders", checkPlatform)
	run("perf/frequency-monotonic", checkPerfMonotonic)
	run("perf/big-dominates-at-equal-freq", checkBigDominates)
	run("perf/memory-bound-flatness", checkMemoryBound)
	run("perf/big-little-asymmetry-spread", checkAsymmetrySpread)
	run("power/ranges", checkPowerRanges)
	run("power/leakage-temperature-feedback", checkLeakage)
	run("thermal/fan-ordering", checkFanOrdering)
	run("thermal/steady-state-bounds", checkThermalBounds)
	run("thermal/spatial-coupling", checkSpatialCoupling)
	run("sim/instruction-conservation", checkConservation)
	run("sim/determinism", checkDeterminism)
	return out
}

// Failed returns the subset of failed results.
func Failed(rs []Result) []Result {
	var out []Result
	for _, r := range rs {
		if !r.OK {
			out = append(out, r)
		}
	}
	return out
}

func checkPlatform() error {
	p := platform.HiKey970()
	if p.NumCores() != 8 || p.NumClusters() != 2 {
		return fmt.Errorf("topology %d cores / %d clusters", p.NumCores(), p.NumClusters())
	}
	for ci, c := range p.Clusters {
		for i := 1; i < c.NumOPPs(); i++ {
			if c.FreqAt(i) <= c.FreqAt(i-1) || c.VoltageAt(i) < c.VoltageAt(i-1) {
				return fmt.Errorf("cluster %d: OPP ladder not monotone at %d", ci, i)
			}
		}
	}
	return nil
}

func checkPerfMonotonic() error {
	m := perf.Default()
	for _, spec := range workload.Catalog() {
		for _, ph := range spec.Phases {
			prev := 0.0
			for f := 0.5e9; f <= 2.4e9; f += 0.05e9 {
				v := m.IPS(ph, platform.Big, f, 1)
				if v <= prev {
					return fmt.Errorf("%s: IPS not increasing at %g Hz", spec.Name, f)
				}
				prev = v
			}
		}
	}
	return nil
}

func checkBigDominates() error {
	m := perf.Default()
	for _, spec := range workload.Catalog() {
		for i, ph := range spec.Phases {
			if m.IPS(ph, platform.Big, 1.2e9, 1) <= m.IPS(ph, platform.Little, 1.2e9, 1) {
				return fmt.Errorf("%s phase %d: big not faster at equal frequency", spec.Name, i)
			}
		}
	}
	return nil
}

func checkMemoryBound() error {
	m := perf.Default()
	spec, _ := workload.ByName("canneal")
	lo := m.IPS(spec.Phases[0], platform.Big, 682e6, 1)
	hi := m.IPS(spec.Phases[0], platform.Big, 2362e6, 1)
	if hi/lo > 2.2 {
		return fmt.Errorf("canneal frequency sensitivity %0.2f, want < 2.2", hi/lo)
	}
	return nil
}

// checkAsymmetrySpread verifies the catalog spans a meaningful range of
// big-vs-LITTLE benefit — the diversity the migration policy exploits.
func checkAsymmetrySpread() error {
	m := perf.Default()
	minR, maxR := 1e9, 0.0
	for _, spec := range workload.Catalog() {
		r := m.IPS(spec.Phases[0], platform.Big, 1.2e9, 1) /
			m.IPS(spec.Phases[0], platform.Little, 1.2e9, 1)
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
	}
	if maxR-minR < 0.5 {
		return fmt.Errorf("big/LITTLE speedup spread %0.2f-%0.2f too narrow", minR, maxR)
	}
	return nil
}

func checkPowerRanges() error {
	pm := power.Default()
	p := platform.HiKey970()
	big, _ := p.ClusterByKind(platform.Big)
	little, _ := p.ClusterByKind(platform.Little)
	pb := pm.Dynamic(platform.Big, big.MaxFreq(), big.VoltageAt(big.NumOPPs()-1), 1)
	pl := pm.Dynamic(platform.Little, little.MaxFreq(), little.VoltageAt(little.NumOPPs()-1), 1)
	if pb < 2 || pb > 5 {
		return fmt.Errorf("big peak %0.2f W outside [2,5]", pb)
	}
	if pl < 0.3 || pl > 1.2 {
		return fmt.Errorf("LITTLE peak %0.2f W outside [0.3,1.2]", pl)
	}
	return nil
}

func checkLeakage() error {
	pm := power.Default()
	if pm.Leakage(platform.Big, 1.0, 85) <= pm.Leakage(platform.Big, 1.0, 25) {
		return fmt.Errorf("leakage not increasing with temperature")
	}
	return nil
}

func checkFanOrdering() error {
	p := make([]float64, 9)
	p[5], p[6] = 2.5, 2.5
	fan := thermal.HiKey970Network(true, 25).SteadyState(p)
	noFan := thermal.HiKey970Network(false, 25).SteadyState(p)
	for i := range fan {
		if noFan[i] < fan[i] {
			return fmt.Errorf("node %d cooler without fan", i)
		}
	}
	return nil
}

func checkThermalBounds() error {
	p := make([]float64, 9)
	for i := 0; i < 8; i++ {
		p[i] = 3.5
	}
	p[8] = 1
	ss := thermal.HiKey970Network(false, 25).SteadyState(p)
	for i, v := range ss {
		if v < 25 || v > 400 {
			return fmt.Errorf("node %d steady state %0.1f implausible", i, v)
		}
	}
	return nil
}

func checkSpatialCoupling() error {
	n := thermal.HiKey970Network(true, 25)
	p := make([]float64, 9)
	p[4] = 3
	ss := n.SteadyState(p)
	if ss[5] <= ss[0] {
		return fmt.Errorf("neighbour coupling weaker than distant coupling")
	}
	return nil
}

func checkConservation() error {
	cfg := sim.DefaultConfig(true, 25)
	e := sim.New(cfg)
	spec, _ := workload.ByName("syr2k")
	spec.TotalInstr = 2e9
	e.AddJob(workload.Job{Spec: spec, QoS: 0})
	res := e.Run(&pin{}, 10)
	a := res.Apps[0]
	if !a.Finished {
		return fmt.Errorf("app did not finish")
	}
	got := a.MeanIPS * a.ActiveSecs
	if diff := got - 2e9; diff > 2e7 || diff < -2e7 {
		return fmt.Errorf("executed %g instructions, want 2e9", got)
	}
	return nil
}

func checkDeterminism() error {
	runOnce := func() (float64, int) {
		cfg := sim.DefaultConfig(true, 25)
		cfg.Seed = 9
		e := sim.New(cfg)
		pm := perf.Default()
		gen := workload.NewGenerator(9, workload.MixedPool(), func(s workload.AppSpec) float64 {
			return pm.PeakIPS(cfg.Platform, s)
		}, 0.2, 0.7, 0.01)
		e.AddJobs(gen.Generate(5, 0.5))
		r := e.Run(&pin{}, 15)
		return r.AvgTemp, r.Violations
	}
	t1, v1 := runOnce()
	t2, v2 := runOnce()
	if t1 != t2 || v1 != v2 {
		return fmt.Errorf("two identical runs diverged")
	}
	return nil
}

// pin is a trivial manager pinning both clusters at max.
type pin struct{ env *sim.Env }

func (m *pin) Name() string        { return "validate-pin" }
func (m *pin) Attach(env *sim.Env) { m.env = env }
func (m *pin) Tick(now float64) {
	for ci := 0; ci < m.env.Platform().NumClusters(); ci++ {
		m.env.SetClusterFreqIndex(ci, 99)
	}
}
