package validate

import "testing"

// TestAllChecksPass runs every calibration check as its own subtest, so a
// failure names the check directly and adding a check never breaks the
// test (no hard-coded count).
func TestAllChecksPass(t *testing.T) {
	results := All()
	if len(results) == 0 {
		t.Fatal("All() returned no checks")
	}
	seen := map[string]bool{}
	for _, r := range results {
		r := r
		if r.Name == "" {
			t.Errorf("check with empty name: %+v", r)
			continue
		}
		if seen[r.Name] {
			t.Errorf("duplicate check name %q", r.Name)
		}
		seen[r.Name] = true
		t.Run(r.Name, func(t *testing.T) {
			if !r.OK {
				t.Errorf("%s: %s", r.Name, r.Detail)
			}
		})
	}
	if failed := Failed(results); len(failed) != 0 {
		t.Errorf("Failed() reports %d failures", len(failed))
	}
}

func TestFailedFilters(t *testing.T) {
	rs := []Result{
		{Name: "a", OK: true},
		{Name: "b", OK: false, Detail: "boom"},
		{Name: "c", OK: true},
	}
	f := Failed(rs)
	if len(f) != 1 || f[0].Name != "b" {
		t.Errorf("Failed = %+v", f)
	}
}
