package validate

import "testing"

func TestAllChecksPass(t *testing.T) {
	results := All()
	if len(results) != 12 {
		t.Fatalf("checks = %d, want 12", len(results))
	}
	for _, r := range results {
		if !r.OK {
			t.Errorf("%s: %s", r.Name, r.Detail)
		}
	}
	if failed := Failed(results); len(failed) != 0 {
		t.Errorf("Failed() reports %d failures", len(failed))
	}
}

func TestFailedFilters(t *testing.T) {
	rs := []Result{
		{Name: "a", OK: true},
		{Name: "b", OK: false, Detail: "boom"},
		{Name: "c", OK: true},
	}
	f := Failed(rs)
	if len(f) != 1 || f[0].Name != "b" {
		t.Errorf("Failed = %+v", f)
	}
}
