package sim

import "repro/internal/platform"

// AppResult summarizes one application instance after a simulation.
type AppResult struct {
	Name       string
	QoS        float64 // target IPS
	MeanIPS    float64 // achieved IPS over the active period
	Finished   bool
	Violated   bool // MeanIPS below the QoS target
	ActiveSecs float64
	Core       platform.CoreID // final mapping
}

// Result is the outcome of a simulation run.
type Result struct {
	Duration float64

	AvgTemp  float64 // °C, time average of the sensor temperature
	PeakTemp float64 // °C

	Apps       []AppResult
	Violations int // number of applications violating their QoS target

	// CPUTime[cluster][level] is the busy core-time (core-seconds) spent
	// at each VF level — the paper's Fig. 10 breakdown.
	CPUTime [][]float64

	Migrations      int
	ThrottleSeconds float64
	OverheadSeconds float64

	AvgUtil  float64 // mean fraction of busy cores
	PeakUtil float64

	// EnergyJ[cluster] is the integrated core energy per cluster in
	// joules; UncoreEnergyJ covers the rest-of-SoC power. Energy is a
	// simulator-side metric (the real board has no power sensors — no
	// policy may read it), reported for analyses that relate temperature
	// optimization to the energy optimization of prior work.
	EnergyJ       []float64
	UncoreEnergyJ float64
}

// TotalEnergyJ returns the total integrated energy in joules.
func (r *Result) TotalEnergyJ() float64 {
	sum := r.UncoreEnergyJ
	for _, e := range r.EnergyJ {
		sum += e
	}
	return sum
}

// TotalCPUTime returns the total busy core-seconds.
func (r *Result) TotalCPUTime() float64 {
	sum := 0.0
	for _, lv := range r.CPUTime {
		for _, v := range lv {
			sum += v
		}
	}
	return sum
}

// ViolationFrac returns the fraction of applications that violated QoS.
func (r *Result) ViolationFrac() float64 {
	if len(r.Apps) == 0 {
		return 0
	}
	return float64(r.Violations) / float64(len(r.Apps))
}

// qosTolerance is the relative slack below the QoS target still counted as
// meeting it (sensor/counter granularity).
const qosTolerance = 0.02

// collector accumulates metrics during a run.
type collector struct {
	plat *platform.Platform

	tempTimeInt float64 // ∫ sensor dt
	peakTemp    float64
	timeAcc     float64

	cpuTime [][]float64

	utilTimeInt float64
	peakUtil    float64

	migrations      int
	throttleSeconds float64
	overheadCharged float64

	energyJ       []float64
	uncoreEnergyJ float64
}

func newCollector(p *platform.Platform) *collector {
	ct := make([][]float64, p.NumClusters())
	for ci, c := range p.Clusters {
		ct[ci] = make([]float64, c.NumOPPs())
	}
	return &collector{
		plat:     p,
		cpuTime:  ct,
		energyJ:  make([]float64, p.NumClusters()),
		peakTemp: -1e9,
	}
}

// sample is called once per tick after integration.
func (m *collector) sample(e *Engine, dt float64) {
	m.timeAcc += dt
	m.tempTimeInt += e.sensorT * dt
	if e.sensorT > m.peakTemp {
		m.peakTemp = e.sensorT
	}

	// powerCnt is this tick's runnable count per core, produced by execute
	// and shared with integrate — the sampler does not rescan membership.
	busy := 0
	for c := range e.byCore {
		if e.powerCnt[c] > 0 {
			busy++
			ci := e.clusterOf[c]
			m.cpuTime[ci][e.effFreqIdx(ci)] += dt
		}
	}
	util := float64(busy) / float64(len(e.byCore))
	m.utilTimeInt += util * dt
	if util > m.peakUtil {
		m.peakUtil = util
	}

	// Energy: integrate the per-node power of this tick.
	for c := 0; c < e.cfg.Platform.NumCores(); c++ {
		m.energyJ[e.clusterOf[c]] += e.corePower[c] * dt
	}
	m.uncoreEnergyJ += e.cfg.Power.Uncore * dt
}

// result assembles the final Result.
func (m *collector) result(e *Engine) *Result {
	r := &Result{
		Duration:        m.timeAcc,
		PeakTemp:        m.peakTemp,
		Migrations:      m.migrations,
		ThrottleSeconds: m.throttleSeconds,
		OverheadSeconds: m.overheadCharged,
		PeakUtil:        m.peakUtil,
	}
	if m.timeAcc > 0 {
		r.AvgTemp = m.tempTimeInt / m.timeAcc
		r.AvgUtil = m.utilTimeInt / m.timeAcc
	}
	r.CPUTime = make([][]float64, len(m.cpuTime))
	for ci := range m.cpuTime {
		r.CPUTime[ci] = append([]float64(nil), m.cpuTime[ci]...)
	}
	r.EnergyJ = append([]float64(nil), m.energyJ...)
	r.UncoreEnergyJ = m.uncoreEnergyJ
	for _, a := range e.apps {
		if !a.arrived {
			continue
		}
		active := e.now - a.start
		if a.done {
			active = a.end - a.start
		}
		mean := a.meanIPS(e.now)
		res := AppResult{
			Name:       a.job.Spec.Name,
			QoS:        a.job.QoS,
			MeanIPS:    mean,
			Finished:   a.done,
			Violated:   mean < a.job.QoS*(1-qosTolerance),
			ActiveSecs: active,
			Core:       a.core,
		}
		if res.Violated {
			r.Violations++
		}
		r.Apps = append(r.Apps, res)
	}
	return r
}
