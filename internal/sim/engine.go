// Package sim implements the discrete-time simulation engine that stands in
// for the HiKey970 board: it executes application models on cores with
// Linux-like time sharing, integrates the power and thermal models, samples
// the on-board temperature sensor at 20 Hz, applies DTM throttling, and
// exposes to management policies exactly the observables and knobs the real
// platform offers (perf counters, utilization, affinity, userspace DVFS).
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/perf"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/telemetry"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// AppID identifies a running application instance within one simulation.
type AppID int

// Manager is a run-time resource-management policy. The engine calls Tick
// every Config.ManagerPeriod simulated seconds; the manager reads sensors
// and actuates knobs through the Env it was attached to.
type Manager interface {
	Name() string
	// Attach is called once before the simulation starts.
	Attach(env *Env)
	// Tick is called periodically with the current simulated time.
	Tick(now float64)
}

// Placer is an optional Manager extension: if implemented, the engine asks
// the manager where to place a newly arrived application. Otherwise the
// engine uses a Linux-CFS-like default (least-loaded core).
type Placer interface {
	Place(job workload.Job) platform.CoreID
}

// DTMConfig configures dynamic thermal management (the vendor throttling
// that the paper's training setup avoids by using a fan).
type DTMConfig struct {
	Enable   bool
	TripC    float64 // throttle above this sensor temperature
	ReleaseC float64 // stop limiting below this temperature
	Period   float64 // seconds between DTM decisions
}

// Config assembles a simulation.
type Config struct {
	Platform *platform.Platform
	Thermal  *thermal.Network
	Power    power.Model
	Perf     perf.Model

	Dt            float64 // simulation tick, default 10 ms
	ManagerPeriod float64 // manager tick, default 50 ms
	SensorPeriod  float64 // temperature sensor sampling, default 50 ms (20 Hz)
	SensorNoise   float64 // stddev of sensor noise in °C, default 0
	Seed          int64

	DTM DTMConfig

	// Migration cost model: an application stalls for
	// PenaltyBase + PenaltyPerMPKI·MPKI seconds after each migration
	// (cold caches; memory-intensive applications suffer more).
	PenaltyBase    float64
	PenaltyPerMPKI float64

	// WindowTicks is the length of the perf-counter averaging window in
	// ticks (default 10, i.e. 100 ms).
	WindowTicks int

	// ThermalKernel selects the thermal integration kernel. The zero value
	// keeps whatever the network is configured with (the collapsed float64
	// propagator by default); set thermal.KernelFloat32 for the reduced-
	// precision variant (gate with the testkit tolerance diff) or
	// thermal.KernelReference for the naive Euler stepper used as the
	// differential-test baseline.
	ThermalKernel thermal.Kernel

	// Telemetry optionally receives the engine's sim_* metric families.
	// Nil (the default) leaves every counter a nil-receiver no-op, so
	// deterministic runs pay nothing.
	Telemetry *telemetry.Registry
	// Tracer optionally records sim-time spans (run, app lifetimes, DTM
	// throttle windows, migration instants). The engine installs its own
	// tick clock on it, so timestamps are simulated seconds and the span
	// stream is byte-identical across runs and worker counts.
	Tracer *telemetry.Tracer
	// PhaseClock optionally enables per-tick phase timings
	// (sim_phase_seconds). The sim package may not read the wall clock
	// itself — the detrand rule keeps it deterministic — so profiling
	// callers inject one (telemetry.NewWallClock). The clock feeds only
	// the Telemetry registry, never the simulation.
	PhaseClock telemetry.Clock
}

// DefaultConfig returns a ready-to-run configuration for the HiKey970 with
// the given cooling setup and ambient temperature.
func DefaultConfig(fan bool, tAmb float64) Config {
	return Config{
		Platform:      platform.HiKey970(),
		Thermal:       thermal.HiKey970Network(fan, tAmb),
		Power:         power.Default(),
		Perf:          perf.Default(),
		Dt:            0.01,
		ManagerPeriod: 0.05,
		SensorPeriod:  0.05,
		// Mobile SoCs throttle at 65-75 °C junction temperature; with
		// this trip point GTS/ondemand hits DTM under passive cooling at
		// high load (the paper's observation) while the fan keeps every
		// policy below it, as in the paper's training setup.
		DTM:            DTMConfig{Enable: true, TripC: 65, ReleaseC: 60, Period: 0.05},
		PenaltyBase:    0.002,
		PenaltyPerMPKI: 0.0007,
		WindowTicks:    10,
	}
}

// appState is the engine-internal state of one application instance.
type appState struct {
	id   AppID
	job  workload.Job
	core platform.CoreID

	arrived  bool
	done     bool
	executed float64 // instructions
	start    float64 // arrival time (== job.Arrival)
	end      float64 // completion time, valid if done

	stallUntil float64 // migration cold-cache stall deadline

	// rolling perf-counter window (instantaneous IPS/L2DPS per tick)
	winIPS  []float64
	winL2D  []float64
	winNext int
	winLen  int

	// Per-app perf-model cache: the phase-derived CPI-stack terms at the
	// app's current (core kind, effective frequency). Valid while pcEpoch
	// matches Engine.perfEpoch and executed < pcEnd (a conservative phase-
	// span bound, see workload.PhaseSpanAt); refreshPerfCache re-derives
	// every term from the ground-truth model, so cached and uncached paths
	// are bit-identical.
	pcEpoch int64
	pcEnd   float64 // instructions; refresh at or before the phase boundary
	pcTpi   float64 // s/instr: perf.TimePerInstr of the cached phase
	pcCu    float64 // cycle utilization of the cached phase
	pcL2pi  float64 // L2 accesses per instruction (L2APKI/1000)

	instrTotal float64 // lifetime instructions (for mean IPS)

	span *telemetry.Span // open lifetime span when tracing, else nil
}

func (a *appState) meanIPS(now float64) float64 {
	active := now - a.start
	if a.done {
		active = a.end - a.start
	}
	if active <= 0 {
		return 0
	}
	return a.instrTotal / active
}

func (a *appState) windowIPS() float64 { return winAvg(a.winIPS, a.winLen) }
func (a *appState) windowL2D() float64 { return winAvg(a.winL2D, a.winLen) }

func winAvg(w []float64, n int) float64 {
	if n == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += w[i]
	}
	return sum / float64(n)
}

func (a *appState) pushWindow(ips, l2d float64) {
	a.winIPS[a.winNext] = ips
	a.winL2D[a.winNext] = l2d
	a.winNext = (a.winNext + 1) % len(a.winIPS)
	if a.winLen < len(a.winIPS) {
		a.winLen++
	}
}

// Engine is one simulation instance. Create with New, add jobs, then Run.
type Engine struct {
	cfg  Config
	rng  *rand.Rand
	env  *Env
	mets *collector

	// pending[pendHead:] holds the not-yet-arrived jobs sorted by arrival.
	// Consumed entries are zeroed and skipped via the head index (never
	// resliced away), so long job traces neither pin finished jobs live nor
	// lose the front of the backing array; the prefix is compacted once it
	// dominates the slice.
	pending  []workload.Job
	pendHead int

	apps   []*appState // all instances, arrived or done
	byCore [][]AppID   // running app IDs per core

	freqIdx []int // current VF level per cluster
	dtmCap  []int // max VF level allowed by DTM per cluster
	tripped bool

	// The clock is an integer tick counter: now = tick·Dt, and the
	// manager/sensor/DTM cadences are tick multiples. Accumulating floats
	// (now += dt) drifts over long runs — after hours of simulated time the
	// 500 ms epochs fall off the paper's schedule and runs stop being
	// bit-reproducible across different Run() call patterns.
	tick         int64
	now          float64 // tick·Dt, cached for the float-time consumers
	managerEvery int64   // manager period in ticks
	sensorEvery  int64   // sensor period in ticks
	dtmEvery     int64   // DTM period in ticks
	managerFires int64   // lifetime fire counts (tick-clock regression tests)
	sensorFires  int64
	dtmFires     int64

	sensorT      float64 // last sensor sample (°C)
	overheadDebt float64 // seconds of management overhead to charge to core 0

	corePower []float64 // scratch: power per thermal node
	coreUtil  [][]float64
	coreUtilN int
	utilNext  int

	// Incrementally maintained per-core structures: byCore holds exactly
	// the live (arrived, unfinished) apps of each core, liveCnt mirrors its
	// lengths for placement, maxStall is a high-water mark over the pending
	// migration-stall deadlines (when it has passed, every app on the core
	// is runnable and the per-tick stall scan is skipped), and powerCnt is
	// the post-completion runnable count execute hands to integrate and the
	// metrics sampler so neither rescans membership.
	clusterOf []int     // core -> cluster index (static topology)
	liveCnt   []int     // live apps per core (== len(byCore[c]))
	maxStall  []float64 // upper bound on stallUntil over apps of the core
	powerCnt  []int     // runnable apps per core as of this tick's execute

	// perfEpoch invalidates the per-app perf caches and the compiled power
	// evaluators: it bumps whenever an effective VF level may have changed
	// (userspace DVFS requests, DTM cap moves).
	perfEpoch    int64
	powEval      []power.CoreEval // per-cluster compiled evaluators
	powEvalEpoch int64

	tel   engineMetrics // nil-safe handles; no-ops without Config.Telemetry
	trace engineTrace   // sim-time spans; no-ops without Config.Tracer
}

// ticksOf converts a period in seconds to a whole number of Dt ticks
// (nearest, at least one): periods are configured as multiples of Dt, so
// rounding only absorbs float noise in the division.
func ticksOf(period, dt float64) int64 {
	t := int64(math.Round(period / dt))
	if t < 1 {
		t = 1
	}
	return t
}

// New creates an engine. The thermal network in cfg must have at least one
// node per core (core i -> node i); extra nodes (package) receive the
// uncore power on the last node. It panics on a malformed Config (missing
// platform or thermal network, non-positive periods, undersized network):
// configurations are built in code, so these are programming errors.
func New(cfg Config) *Engine {
	if cfg.Platform == nil || cfg.Thermal == nil {
		panic("sim: Config requires Platform and Thermal")
	}
	if cfg.Dt <= 0 || cfg.ManagerPeriod <= 0 || cfg.SensorPeriod <= 0 {
		panic("sim: non-positive period in Config")
	}
	if len(cfg.Thermal.Nodes) < cfg.Platform.NumCores() {
		panic("sim: thermal network smaller than core count")
	}
	if cfg.WindowTicks <= 0 {
		cfg.WindowTicks = 10
	}
	if cfg.ThermalKernel != thermal.KernelPropagator {
		cfg.Thermal.SetKernel(cfg.ThermalKernel)
	}
	e := &Engine{
		cfg:          cfg,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		freqIdx:      make([]int, cfg.Platform.NumClusters()),
		dtmCap:       make([]int, cfg.Platform.NumClusters()),
		byCore:       make([][]AppID, cfg.Platform.NumCores()),
		corePower:    make([]float64, len(cfg.Thermal.Nodes)),
		clusterOf:    make([]int, cfg.Platform.NumCores()),
		liveCnt:      make([]int, cfg.Platform.NumCores()),
		maxStall:     make([]float64, cfg.Platform.NumCores()),
		powerCnt:     make([]int, cfg.Platform.NumCores()),
		powEval:      make([]power.CoreEval, cfg.Platform.NumClusters()),
		powEvalEpoch: -1,
		sensorT:      cfg.Thermal.Max(),
		managerEvery: ticksOf(cfg.ManagerPeriod, cfg.Dt),
		sensorEvery:  ticksOf(cfg.SensorPeriod, cfg.Dt),
		dtmEvery:     1,
	}
	for c := 0; c < cfg.Platform.NumCores(); c++ {
		e.clusterOf[c] = cfg.Platform.ClusterIndexOf(platform.CoreID(c))
	}
	if cfg.DTM.Enable {
		e.dtmEvery = ticksOf(cfg.DTM.Period, cfg.Dt)
	}
	for ci, c := range cfg.Platform.Clusters {
		e.freqIdx[ci] = 0
		e.dtmCap[ci] = c.NumOPPs() - 1
	}
	e.coreUtilN = cfg.WindowTicks
	e.coreUtil = make([][]float64, cfg.Platform.NumCores())
	for i := range e.coreUtil {
		e.coreUtil[i] = make([]float64, e.coreUtilN)
	}
	e.mets = newCollector(cfg.Platform)
	e.env = &Env{engine: e}
	e.tel = newEngineMetrics(cfg.Telemetry)
	e.trace = engineTrace{tracer: cfg.Tracer}
	// Spans recorded through cfg.Tracer carry simulated seconds: the
	// tracer's clock is this engine's tick clock from here on.
	cfg.Tracer.SetClock(telemetry.ClockFunc(func() float64 { return e.now }))
	return e
}

// AddJob schedules an application instance for arrival. It panics on a
// job whose spec fails validation; specs come from the workload tables or
// generator, so an invalid one indicates corrupted construction code.
func (e *Engine) AddJob(job workload.Job) {
	if err := job.Spec.Validate(); err != nil {
		panic("sim: invalid job: " + err.Error())
	}
	if e.pendHead == len(e.pending) {
		// Queue fully drained: restart at the front of the backing array.
		e.pending = e.pending[:0]
		e.pendHead = 0
	}
	e.pending = append(e.pending, job)
	live := e.pending[e.pendHead:]
	sort.SliceStable(live, func(i, j int) bool {
		return live[i].Arrival < live[j].Arrival
	})
}

// AddJobs schedules multiple jobs.
func (e *Engine) AddJobs(jobs []workload.Job) {
	for _, j := range jobs {
		e.AddJob(j)
	}
}

// Env returns the policy-facing environment (also useful in tests).
func (e *Engine) Env() *Env { return e.env }

// Done reports whether every scheduled application has arrived and
// finished.
func (e *Engine) Done() bool {
	if e.pendHead < len(e.pending) {
		return false
	}
	for _, a := range e.apps {
		if !a.done {
			return false
		}
	}
	return true
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Run simulates `duration` seconds under the given manager (nil = no
// management: frequencies stay wherever they are). It can be called
// repeatedly to extend a simulation.
func (e *Engine) Run(m Manager, duration float64) *Result {
	return e.RunUntil(m, duration, nil)
}

// RunUntil simulates until `duration` seconds have elapsed or stop()
// returns true (checked once per tick). stop may be nil.
func (e *Engine) RunUntil(m Manager, duration float64, stop func() bool) *Result {
	if m != nil {
		m.Attach(e.env)
	}
	e.trace.traceRunStart(e, m)
	end := e.tick + int64(math.Ceil(duration/e.cfg.Dt-1e-9))
	for e.tick < end {
		if m != nil && e.tick%e.managerEvery == 0 {
			e.managerFires++
			e.tel.managerTicks.Inc()
			m.Tick(e.now)
		}
		e.step(m)
		if stop != nil && stop() {
			break
		}
	}
	e.trace.traceRunEnd(e)
	return e.mets.result(e)
}

// step advances the simulation by one tick. With Config.PhaseClock set,
// the wall-clock cost of each phase feeds sim_phase_seconds; the clock is
// never read otherwise, keeping the default path deterministic and free.
func (e *Engine) step(m Manager) {
	dt := e.cfg.Dt
	var mark float64
	timed := e.cfg.PhaseClock != nil
	if timed {
		mark = e.cfg.PhaseClock.Now()
	}

	// 1. Arrivals.
	for e.pendHead < len(e.pending) && e.pending[e.pendHead].Arrival <= e.now+1e-9 {
		job := e.pending[e.pendHead]
		e.pending[e.pendHead] = workload.Job{} // release the spec's slices
		e.pendHead++
		e.admit(job, m)
	}
	if e.pendHead > 64 && e.pendHead*2 >= len(e.pending) {
		n := copy(e.pending, e.pending[e.pendHead:])
		for i := n; i < len(e.pending); i++ {
			e.pending[i] = workload.Job{}
		}
		e.pending = e.pending[:n]
		e.pendHead = 0
	}

	// 2. Execute applications with per-core time sharing.
	e.execute(dt)
	if timed {
		mark = e.phaseMark(e.tel.phaseExecute, mark)
	}

	// 3. Power and thermal integration.
	e.integrate(dt)
	if timed {
		mark = e.phaseMark(e.tel.phaseThermal, mark)
	}

	// 4. Sensor sampling (20 Hz).
	if e.tick%e.sensorEvery == 0 {
		e.sensorFires++
		e.tel.sensorSamples.Inc()
		e.sensorT = e.readSensor()
		e.tel.sensorTemp.Set(e.sensorT)
	}
	if timed {
		mark = e.phaseMark(e.tel.phaseSensor, mark)
	}

	// 5. DTM.
	if e.cfg.DTM.Enable && e.tick%e.dtmEvery == 0 {
		e.dtmFires++
		e.tel.dtmDecisions.Inc()
		e.dtmStep()
	}
	if timed {
		e.phaseMark(e.tel.phaseDTM, mark)
	}

	e.mets.sample(e, dt)
	e.tick++
	e.now = float64(e.tick) * dt
}

// phaseMark observes the time since the previous mark into h and returns
// the new mark.
func (e *Engine) phaseMark(h *telemetry.Histogram, prev float64) float64 {
	now := e.cfg.PhaseClock.Now()
	h.Observe(now - prev)
	return now
}

// admit places a newly arrived job on a core and registers it. It panics
// if a Placer returns an out-of-range core: mappings outside the platform
// would silently corrupt the per-core bookkeeping.
func (e *Engine) admit(job workload.Job, m Manager) {
	var core platform.CoreID
	if p, ok := m.(Placer); ok {
		core = p.Place(job)
		if int(core) < 0 || int(core) >= e.cfg.Platform.NumCores() {
			panic(fmt.Sprintf("sim: placer returned invalid core %d", core))
		}
	} else {
		core = e.leastLoadedCore()
	}
	a := &appState{
		id:      AppID(len(e.apps)),
		job:     job,
		core:    core,
		start:   e.now,
		winIPS:  make([]float64, e.cfg.WindowTicks),
		winL2D:  make([]float64, e.cfg.WindowTicks),
		pcEpoch: -1,
	}
	a.arrived = true
	e.apps = append(e.apps, a)
	e.byCore[core] = append(e.byCore[core], a.id)
	e.liveCnt[core]++
	e.tel.arrivals.Inc()
	e.tel.appsRunning.Add(1)
	e.trace.traceAdmit(e, a)
}

// leastLoadedCore mimics CFS initial placement: the core with the fewest
// live applications, lowest ID on ties. It reads the incrementally
// maintained counts; TestPlacementMatchesScanReference pins its decisions
// against a scan over the per-core membership lists.
func (e *Engine) leastLoadedCore() platform.CoreID {
	best, bestN := platform.CoreID(0), e.liveCnt[0]
	for c := 1; c < len(e.liveCnt); c++ {
		if e.liveCnt[c] < bestN {
			best, bestN = platform.CoreID(c), e.liveCnt[c]
		}
	}
	return best
}

// execute advances every running application by dt seconds of core time.
func (e *Engine) execute(dt float64) {
	// Management overhead consumes time on core 0 (the paper's
	// implementation is single-threaded).
	core0Scale := 1.0
	if e.overheadDebt > 0 {
		used := e.overheadDebt
		if used > dt {
			used = dt
		}
		core0Scale = 1 - used/dt
		e.overheadDebt -= used
		e.mets.overheadCharged += used
	}

	tickEnd := e.now + dt
	for c := range e.byCore {
		ids := e.byCore[c]
		if len(ids) == 0 {
			e.pushCoreUtil(c, 0)
			e.powerCnt[c] = 0
			continue
		}
		// Runnable = live and not stalled by migration for the whole tick
		// (partially stalled apps run for the remainder). byCore holds
		// exactly the live apps, so unless a stall deadline is still
		// pending — the per-core high-water mark has not passed — the
		// count needs no scan at all.
		runnableN := len(ids)
		if e.maxStall[c] >= tickEnd {
			runnableN = 0
			for _, id := range ids {
				if e.apps[id].stallUntil < tickEnd {
					runnableN++
				}
			}
		}
		share := 0.0
		if runnableN > 0 {
			share = 1 / float64(runnableN)
		}
		scale := 1.0
		if c == 0 {
			scale = core0Scale
		}
		util := 0.0
		if runnableN > 0 {
			util = scale
		}
		e.pushCoreUtil(c, util)

		// Completions are deferred to a single in-place compaction below so
		// the loop iterates byCore[c] directly, without the defensive
		// snapshot copy the old mutate-while-iterating removal needed.
		nDone := 0
		for _, id := range ids {
			a := e.apps[id]
			if a.stallUntil >= tickEnd {
				a.pushWindow(0, 0)
				continue
			}
			// avail is the stall-free fraction of this tick (cold-cache
			// penalties are shorter than a tick, so they must not be
			// rounded up to whole ticks).
			avail := 1.0
			if a.stallUntil > e.now {
				avail = (e.now + dt - a.stallUntil) / dt
			}
			if a.pcEpoch != e.perfEpoch || a.executed >= a.pcEnd {
				e.refreshPerfCache(a)
			}
			ips := share / a.pcTpi * scale * avail
			instr := ips * dt
			if a.executed+instr >= a.job.Spec.TotalInstr {
				// Completion within this tick.
				remain := a.job.Spec.TotalInstr - a.executed
				frac := remain / instr
				instr = remain
				a.done = true
				a.end = e.now + frac*dt
				nDone++
				e.tel.completions.Inc()
				e.tel.appsRunning.Add(-1)
				e.trace.traceComplete(a)
			}
			a.executed += instr
			a.instrTotal += instr
			a.pushWindow(ips, a.pcL2pi*ips)
		}
		if nDone > 0 {
			out := ids[:0]
			for _, id := range ids {
				if !e.apps[id].done {
					out = append(out, id)
				}
			}
			e.byCore[c] = out
			e.liveCnt[c] -= nDone
		}
		e.powerCnt[c] = runnableN - nDone
	}
}

// refreshPerfCache re-derives an app's cached CPI-stack terms from the
// ground truth (PhaseAt via PhaseSpanAt, plus the perf model at the app's
// current cluster and effective frequency). Every cached value is exactly
// the float64 the uncached per-tick path would compute — the cache only
// removes redundant recomputation, never changes results.
func (e *Engine) refreshPerfCache(a *appState) {
	ph, end := a.job.Spec.PhaseSpanAt(a.executed)
	cid := e.clusterOf[a.core]
	cluster := e.cfg.Platform.Clusters[cid]
	f := cluster.FreqAt(e.effFreqIdx(cid))
	a.pcTpi = e.cfg.Perf.TimePerInstr(ph, cluster.Kind, f)
	a.pcCu = e.cfg.Perf.CycleUtilization(ph, cluster.Kind, f)
	a.pcL2pi = ph.L2APKI / 1000
	a.pcEnd = end
	a.pcEpoch = e.perfEpoch
}

func (e *Engine) pushCoreUtil(c int, u float64) {
	e.coreUtil[c][e.utilNext%e.coreUtilN] = u
}

// integrate computes per-node power and steps the thermal network. The
// fused pass reads the pre-step temperatures straight out of the kernel's
// state (TempsView) for the leakage feedback — no intermediate copy — and
// reuses the runnable counts execute just produced instead of rescanning
// the per-core membership.
func (e *Engine) integrate(dt float64) {
	if e.powEvalEpoch != e.perfEpoch {
		for ci, cluster := range e.cfg.Platform.Clusters {
			idx := e.effFreqIdx(ci)
			e.powEval[ci] = e.cfg.Power.Compile(cluster.Kind,
				cluster.FreqAt(idx), cluster.VoltageAt(idx))
		}
		e.powEvalEpoch = e.perfEpoch
	}
	temps := e.cfg.Thermal.TempsView() // consumed before Step mutates it
	tickEnd := e.now + dt
	numCores := e.cfg.Platform.NumCores()
	for c := 0; c < numCores; c++ {
		activity := 0.0
		if n := e.powerCnt[c]; n > 0 {
			share := 1 / float64(n)
			for _, id := range e.byCore[c] {
				a := e.apps[id]
				if a.stallUntil >= tickEnd {
					continue
				}
				if a.pcEpoch != e.perfEpoch || a.executed >= a.pcEnd {
					e.refreshPerfCache(a)
				}
				activity += share * a.pcCu
			}
		}
		e.corePower[c] = e.powEval[e.clusterOf[c]].Power(activity, temps[c])
	}
	for i := numCores; i < len(e.corePower); i++ {
		e.corePower[i] = 0
	}
	// Uncore power goes to the last thermal node (package).
	e.corePower[len(e.corePower)-1] += e.cfg.Power.Uncore
	e.cfg.Thermal.Step(e.corePower, dt)
	e.utilNext++
}

// readSensor returns the on-board sensor reading: the hottest core
// temperature plus optional measurement noise. It reads the post-step
// temperatures directly from the kernel's buffer.
func (e *Engine) readSensor() float64 {
	temps := e.cfg.Thermal.TempsView()
	m := temps[0]
	for c := 1; c < e.cfg.Platform.NumCores(); c++ {
		if v := temps[c]; v > m {
			m = v
		}
	}
	if e.cfg.SensorNoise > 0 {
		m += e.rng.NormFloat64() * e.cfg.SensorNoise
	}
	return m
}

// dtmStep lowers the per-cluster VF cap while the sensor exceeds the trip
// temperature and releases it gradually below the release temperature.
func (e *Engine) dtmStep() {
	switch {
	case e.sensorT > e.cfg.DTM.TripC:
		e.tripped = true
		for ci := range e.dtmCap {
			if e.dtmCap[ci] > 0 {
				e.dtmCap[ci]--
				e.perfEpoch++
			}
		}
	case e.sensorT < e.cfg.DTM.ReleaseC:
		e.tripped = false
		for ci, c := range e.cfg.Platform.Clusters {
			if e.dtmCap[ci] < c.NumOPPs()-1 {
				e.dtmCap[ci]++
				e.perfEpoch++
			}
		}
	}
	if e.tripped {
		e.mets.throttleSeconds += e.cfg.DTM.Period
		e.tel.throttleSeconds.Add(e.cfg.DTM.Period)
	}
	e.trace.traceDTM(e, e.tripped)
}

// effFreqIdx returns the requested VF level clamped by the DTM cap.
func (e *Engine) effFreqIdx(ci int) int {
	idx := e.freqIdx[ci]
	if idx > e.dtmCap[ci] {
		idx = e.dtmCap[ci]
	}
	return idx
}

func (e *Engine) removeFromCore(id AppID, core platform.CoreID) {
	ids := e.byCore[core]
	for i, v := range ids {
		if v == id {
			e.byCore[core] = append(ids[:i], ids[i+1:]...)
			return
		}
	}
}

// migrate moves a running application to another core, applying the
// cold-cache stall penalty.
func (e *Engine) migrate(id AppID, core platform.CoreID) error {
	if int(id) < 0 || int(id) >= len(e.apps) {
		return fmt.Errorf("sim: unknown app %d", id)
	}
	a := e.apps[id]
	if a.done {
		return fmt.Errorf("sim: app %d already finished", id)
	}
	if int(core) < 0 || int(core) >= e.cfg.Platform.NumCores() {
		return fmt.Errorf("sim: invalid core %d", core)
	}
	if core == a.core {
		return nil // no-op, no penalty
	}
	e.removeFromCore(id, a.core)
	e.liveCnt[a.core]--
	a.core = core
	a.pcEpoch = -1 // cluster kind / frequency changed under the app
	e.byCore[core] = append(e.byCore[core], id)
	e.liveCnt[core]++
	ph := a.job.Spec.PhaseAt(a.executed)
	a.stallUntil = e.now + e.cfg.PenaltyBase + e.cfg.PenaltyPerMPKI*ph.MPKI
	if a.stallUntil > e.maxStall[core] {
		e.maxStall[core] = a.stallUntil
	}
	e.mets.migrations++
	e.tel.migrations.Inc()
	e.trace.traceMigrate(e, id, int(core))
	return nil
}
