package sim

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/platform"
	"repro/internal/telemetry"
)

// TestEngineCountersMatchInternalState runs a managed workload with a
// registry attached and cross-checks every sim_* counter against the
// engine's own bookkeeping.
func TestEngineCountersMatchInternalState(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := DefaultConfig(true, 25)
	cfg.Telemetry = reg
	e := New(cfg)
	e.AddJob(job(t, "adi", 1e8, 0, 1e9))
	e.AddJob(job(t, "canneal", 1e8, 0.1, 1e18))
	e.Run(&fixedManager{little: 8, big: 8}, 3)

	env := e.Env()
	apps := env.Apps()
	if len(apps) != 1 {
		t.Fatalf("running apps = %d, want 1 (canneal)", len(apps))
	}
	to := platform.CoreID(7)
	if apps[0].Core == to {
		to = platform.CoreID(6)
	}
	if err := env.Migrate(apps[0].ID, to); err != nil {
		t.Fatal(err)
	}
	e.Run(&fixedManager{little: 8, big: 8}, 1)

	counter := func(name string) float64 {
		t.Helper()
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(sb.String(), "\n") {
			if strings.HasPrefix(line, name+" ") {
				v, err := strconv.ParseFloat(line[len(name)+1:], 64)
				if err != nil {
					t.Fatalf("parse %q: %v", line, err)
				}
				return v
			}
		}
		t.Fatalf("series %q not exported", name)
		return 0
	}

	checks := []struct {
		name string
		want float64
	}{
		{"sim_manager_ticks_total", float64(e.managerFires)},
		{"sim_sensor_samples_total", float64(e.sensorFires)},
		{"sim_dtm_decisions_total", float64(e.dtmFires)},
		{"sim_app_arrivals_total", 2},
		{"sim_app_completions_total", 1},
		{"sim_migrations_total", 1},
		{"sim_apps_running", 1},
	}
	for _, c := range checks {
		if got := counter(c.name); got != c.want {
			t.Errorf("%s = %g, want %g", c.name, got, c.want)
		}
	}
	if counter("sim_dvfs_changes_total") == 0 {
		t.Error("fixedManager sets VF levels in Attach; dvfs changes must be counted")
	}
	if counter("sim_sensor_temp_celsius") < 20 {
		t.Error("sensor temperature gauge not updated")
	}
}

// TestDVFSCounterOnlyCountsChanges checks redundant SetClusterFreqIndex
// calls (the common governor pattern: re-request every tick) do not
// inflate sim_dvfs_changes_total.
func TestDVFSCounterOnlyCountsChanges(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := DefaultConfig(true, 25)
	cfg.Telemetry = reg
	e := New(cfg)
	env := e.Env()
	env.SetClusterFreqIndex(0, 3)
	env.SetClusterFreqIndex(0, 3) // redundant
	env.SetClusterFreqIndex(0, 99) // clamps to max, a change
	env.SetClusterFreqIndex(0, 99) // clamped and redundant

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "sim_dvfs_changes_total 2") {
		t.Fatalf("want exactly 2 DVFS changes:\n%s", sb.String())
	}
}

// TestThrottleCounterTracksDTM reuses the DTM trip scenario and checks
// the telemetry counter agrees with the Result.
func TestThrottleCounterTracksDTM(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := DefaultConfig(false, 25)
	cfg.Telemetry = reg
	e := New(cfg)
	for i := 0; i < 4; i++ {
		e.AddJob(job(t, "swaptions", 1e8, 0, 1e18))
	}
	res := e.Run(&spreadBigManager{}, 300)
	if res.ThrottleSeconds == 0 {
		t.Fatal("scenario did not trip DTM")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "sim_throttle_seconds_total") {
		t.Fatalf("throttle counter missing:\n%s", out)
	}
	var got float64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "sim_throttle_seconds_total ") {
			f, err := strconv.ParseFloat(strings.TrimPrefix(line, "sim_throttle_seconds_total "), 64)
			if err != nil {
				t.Fatal(err)
			}
			got = f
		}
	}
	if diff := got - res.ThrottleSeconds; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("telemetry throttle %g != result %g", got, res.ThrottleSeconds)
	}
}

// TestSimTimeTraceDeterministic runs the same scenario twice with fresh
// tracers and demands byte-identical Chrome output: sim-time spans carry
// simulated seconds, so nothing about the host may leak in.
func TestSimTimeTraceDeterministic(t *testing.T) {
	render := func() string {
		tr := telemetry.NewTracer(nil)
		cfg := DefaultConfig(true, 25)
		cfg.Tracer = tr
		e := New(cfg)
		e.AddJob(job(t, "adi", 1e8, 0, 4e9))
		e.AddJob(job(t, "canneal", 1e8, 0.05, 1e18))
		e.Run(&fixedManager{little: 8, big: 8}, 2)

		set := telemetry.NewTraceSet()
		out := set.Tracer("sim")
		spans, _ := tr.Spans()
		for _, s := range spans {
			sp := out.StartAt(s.Name, s.Start)
			sp.EndAt(s.Start + s.Dur)
		}
		var sb strings.Builder
		if err := set.WriteChrome(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("sim-time trace differs between identical runs")
	}
	for _, want := range []string{`"run/fixed"`, `"app/adi#0"`, `"app/canneal#1"`} {
		if !strings.Contains(a, want) {
			t.Errorf("trace missing span %s:\n%s", want, a)
		}
	}
}

// TestTraceSpansCarrySimTime checks a span's bounds are simulated
// seconds: the adi app completes around 1 s of sim time regardless of
// how fast the host executed the run.
func TestTraceSpansCarrySimTime(t *testing.T) {
	tr := telemetry.NewTracer(nil)
	cfg := DefaultConfig(true, 25)
	cfg.Tracer = tr
	e := New(cfg)
	e.AddJob(job(t, "adi", 1e8, 0, 4e9))
	e.Run(&fixedManager{little: 8, big: 8}, 10)

	spans, _ := tr.Spans()
	var app, run *telemetry.SpanRecord
	for i := range spans {
		switch spans[i].Name {
		case "app/adi#0":
			app = &spans[i]
		case "run/fixed":
			run = &spans[i]
		}
	}
	if app == nil || run == nil {
		t.Fatalf("missing spans: %+v", spans)
	}
	if app.Start != 0 {
		t.Errorf("app start = %g sim-seconds, want 0", app.Start)
	}
	// Initial placement is least-loaded (a LITTLE core): ~3 sim-seconds
	// for 4e9 instructions — far from any plausible wall-clock duration.
	if app.Dur < 0.5 || app.Dur > 8 {
		t.Errorf("app duration = %g sim-seconds, want a few", app.Dur)
	}
	if run.Dur < 9.9 || run.Dur > 10.1 {
		t.Errorf("run duration = %g sim-seconds, want 10", run.Dur)
	}
}

// TestThrottleWindowSpans checks DTM trip windows appear as spans.
func TestThrottleWindowSpans(t *testing.T) {
	tr := telemetry.NewTracer(nil)
	cfg := DefaultConfig(false, 25)
	cfg.Tracer = tr
	e := New(cfg)
	for i := 0; i < 4; i++ {
		e.AddJob(job(t, "swaptions", 1e8, 0, 1e18))
	}
	res := e.Run(&spreadBigManager{}, 300)
	if res.ThrottleSeconds == 0 {
		t.Fatal("scenario did not trip DTM")
	}
	spans, _ := tr.Spans()
	var total float64
	for _, s := range spans {
		if s.Name == "dtm/throttle" {
			total += s.Dur
		}
	}
	if total == 0 {
		t.Fatal("no dtm/throttle spans recorded")
	}
	// Span coverage and the throttle-seconds counter measure the same
	// windows, modulo one DTM period of edge rounding per window.
	if total < res.ThrottleSeconds/2 || total > res.ThrottleSeconds*2 {
		t.Errorf("throttle span total %g vs counter %g", total, res.ThrottleSeconds)
	}
}

// TestPhaseClockFeedsPhaseHistograms injects a synthetic phase clock and
// checks per-phase timings land in sim_phase_seconds.
func TestPhaseClockFeedsPhaseHistograms(t *testing.T) {
	reg := telemetry.NewRegistry()
	var fake float64
	cfg := DefaultConfig(true, 25)
	cfg.Telemetry = reg
	cfg.PhaseClock = telemetry.ClockFunc(func() float64 {
		fake += 1e-6 // each phase appears to cost 1 µs
		return fake
	})
	e := New(cfg)
	e.AddJob(job(t, "adi", 1e8, 0, 4e9))
	e.Run(&fixedManager{little: 8, big: 8}, 0.5)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, phase := range []string{"execute", "thermal", "sensor", "dtm"} {
		if !strings.Contains(out, `sim_phase_seconds_count{phase="`+phase+`"}`) {
			t.Errorf("phase %q not timed:\n%s", phase, out)
		}
	}
	// Every observation is exactly 1 µs; the count sits with it in the
	// first bucket at or above 1e-6.
	if !strings.Contains(out, `sim_phase_seconds_sum{phase="execute"}`) {
		t.Error("execute phase sum missing")
	}
}

// TestNoTelemetryIsNoOp checks the default configuration (no registry,
// no tracer, no phase clock) still runs and records nothing — the
// nil-handle path.
func TestNoTelemetryIsNoOp(t *testing.T) {
	cfg := DefaultConfig(true, 25)
	e := New(cfg)
	e.AddJob(job(t, "adi", 1e8, 0, 4e9))
	res := e.Run(&fixedManager{little: 8, big: 8}, 10)
	if !res.Apps[0].Finished {
		t.Fatal("run broken without telemetry")
	}
	if e.tel != (engineMetrics{}) {
		t.Error("engine resolved metrics without a registry")
	}
	if e.trace.tracer != nil {
		t.Error("engine holds a tracer without one configured")
	}
}
