package sim

import (
	"math/rand"
	"testing"

	"repro/internal/platform"
	"repro/internal/workload"
)

// scanLeastLoaded is the old scan-based placement reference: the core with
// the fewest members in the per-core lists, lowest ID on ties.
func scanLeastLoaded(e *Engine) platform.CoreID {
	best, bestN := platform.CoreID(0), len(e.byCore[0])+1
	for c := range e.byCore {
		if n := len(e.byCore[c]); n < bestN {
			best, bestN = platform.CoreID(c), n
		}
	}
	return best
}

// TestPlacementMatchesScanReference drives a chaotic workload (random
// migrations, completions, arrivals) and checks after every tick that the
// incrementally maintained per-core counts agree with the membership lists
// and that leastLoadedCore picks exactly the core the scan-based reference
// would.
func TestPlacementMatchesScanReference(t *testing.T) {
	cfg := DefaultConfig(true, 25)
	cfg.Seed = 11
	e := New(cfg)
	e.AddJobs(chaosJobs(11, 24, 2e9, 8e9))
	m := &chaosManager{rng: rand.New(rand.NewSource(7))}

	ticks := 0
	e.RunUntil(m, 20, func() bool {
		ticks++
		for c := range e.byCore {
			if e.liveCnt[c] != len(e.byCore[c]) {
				t.Fatalf("tick %d core %d: liveCnt %d != len(byCore) %d",
					ticks, c, e.liveCnt[c], len(e.byCore[c]))
			}
			for _, id := range e.byCore[c] {
				a := e.apps[id]
				if a.done {
					t.Fatalf("tick %d core %d: done app %d still listed", ticks, c, id)
				}
				if a.stallUntil > e.maxStall[c] {
					t.Fatalf("tick %d core %d: stall deadline %v above watermark %v",
						ticks, c, a.stallUntil, e.maxStall[c])
				}
			}
		}
		if got, want := e.leastLoadedCore(), scanLeastLoaded(e); got != want {
			t.Fatalf("tick %d: leastLoadedCore = %d, scan reference = %d", ticks, got, want)
		}
		return false
	})
	if ticks == 0 {
		t.Fatal("simulation made no progress")
	}
}

// TestRunnableCountMatchesScan replays the scan the old integrate pass did
// (membership filtered by done/stall) against the powerCnt value execute
// hands over, across a workload with migrations and stalls in flight.
func TestRunnableCountMatchesScan(t *testing.T) {
	cfg := DefaultConfig(false, 25) // passive cooling: DTM cap changes too
	cfg.Seed = 3
	e := New(cfg)
	e.AddJobs(chaosJobs(3, 16, 1e9, 6e9))
	m := &chaosManager{rng: rand.New(rand.NewSource(5))}

	e.RunUntil(m, 15, func() bool {
		// After a step, e.tick has advanced past the tick that produced
		// powerCnt; rebuild that tick's stall cutoff with the exact
		// arithmetic execute used (float64(tick)·Dt + Dt).
		tickStart := float64(e.tick-1) * e.cfg.Dt
		tickEnd := tickStart + e.cfg.Dt
		for c := range e.byCore {
			n := 0
			for _, id := range e.byCore[c] {
				a := e.apps[id]
				if !a.done && a.stallUntil < tickEnd {
					n++
				}
			}
			if e.powerCnt[c] != n {
				t.Fatalf("t=%v core %d: powerCnt %d, scan %d", tickStart, c, e.powerCnt[c], n)
			}
		}
		return false
	})
}

// TestEngineTickDoesNotAllocate pins the alloc-free steady-state tick: with
// arrivals drained and telemetry off, stepping the engine must not touch
// the heap (the old path allocated a per-core membership snapshot plus a
// runnable list every tick).
func TestEngineTickDoesNotAllocate(t *testing.T) {
	cfg := DefaultConfig(true, 25)
	e := New(cfg)
	pool := workload.MixedPool()
	for i := 0; i < 12; i++ {
		spec, _ := workload.ByName(pool[i%len(pool)])
		spec.TotalInstr = 1e13 // never completes within the test
		e.AddJob(workload.Job{Spec: spec, QoS: 1e9, Arrival: 0})
	}
	e.Run(nil, 1.0) // arrivals, cache warm-up, thermal propagator build

	allocs := testing.AllocsPerRun(200, func() { e.step(nil) })
	if allocs != 0 {
		t.Fatalf("engine tick allocates %.1f times per step, want 0", allocs)
	}
}
