package sim

import (
	"repro/internal/platform"
)

// AppView is the policy-visible state of one running application: exactly
// what the paper's user-space daemon can read via the perf API and /proc.
type AppView struct {
	ID         AppID
	Name       string  // process name (benchmarks are identifiable in /proc)
	QoS        float64 // user-defined QoS target (IPS)
	Core       platform.CoreID
	IPS        float64 // windowed instructions per second (perf counter)
	L2DPS      float64 // windowed L2D accesses per second (perf counter)
	SinceStart float64 // seconds since arrival
}

// Env is the interface between management policies and the platform. It
// deliberately exposes only run-time observables that exist on the real
// board — in particular, no power readings and no simulator internals.
type Env struct {
	engine *Engine
}

// Platform returns the static chip description.
func (v *Env) Platform() *platform.Platform { return v.engine.cfg.Platform }

// Now returns the current time in seconds.
func (v *Env) Now() float64 { return v.engine.now }

// Apps returns a view of all currently running (arrived, unfinished)
// applications, ordered by ID.
func (v *Env) Apps() []AppView {
	return v.AppsInto(nil)
}

// AppsInto is Apps appending into dst[:0], so a policy that keeps the
// returned slice between calls stops allocating once it has grown to the
// peak application count. The views are ordered by ID, as in Apps.
func (v *Env) AppsInto(dst []AppView) []AppView {
	e := v.engine
	dst = dst[:0]
	for _, a := range e.apps {
		if !a.arrived || a.done {
			continue
		}
		dst = append(dst, AppView{
			ID:         a.id,
			Name:       a.job.Spec.Name,
			QoS:        a.job.QoS,
			Core:       a.core,
			IPS:        a.windowIPS(),
			L2DPS:      a.windowL2D(),
			SinceStart: e.now - a.start,
		})
	}
	return dst
}

// NumRunning returns the number of running applications.
func (v *Env) NumRunning() int {
	n := 0
	for _, a := range v.engine.apps {
		if a.arrived && !a.done {
			n++
		}
	}
	return n
}

// CoreUtil returns the busy fraction of core c over the perf window.
func (v *Env) CoreUtil(c platform.CoreID) float64 {
	e := v.engine
	n := e.utilNext
	if n > e.coreUtilN {
		n = e.coreUtilN
	}
	if n == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += e.coreUtil[c][i]
	}
	return sum / float64(n)
}

// CoreOccupied reports whether any application is currently mapped to c.
func (v *Env) CoreOccupied(c platform.CoreID) bool {
	return len(v.engine.byCore[c]) > 0
}

// AppsOnCore returns the IDs of running applications mapped to core c.
func (v *Env) AppsOnCore(c platform.CoreID) []AppID {
	return append([]AppID(nil), v.engine.byCore[c]...)
}

// Temp returns the latest 20 Hz sample of the on-board thermal sensor (°C).
func (v *Env) Temp() float64 { return v.engine.sensorT }

// ClusterFreqIndex returns the VF level currently requested for cluster ci
// (the effective level may be lower under DTM throttling, which is opaque
// to user space, as on the real board).
func (v *Env) ClusterFreqIndex(ci int) int { return v.engine.freqIdx[ci] }

// ClusterFreq returns the currently requested frequency of cluster ci in Hz.
func (v *Env) ClusterFreq(ci int) float64 {
	return v.engine.cfg.Platform.Clusters[ci].FreqAt(v.engine.freqIdx[ci])
}

// SetClusterFreqIndex requests VF level idx for cluster ci via the
// userspace governor. Out-of-range levels are clamped.
func (v *Env) SetClusterFreqIndex(ci, idx int) {
	c := v.engine.cfg.Platform.Clusters[ci]
	if idx < 0 {
		idx = 0
	}
	if idx >= c.NumOPPs() {
		idx = c.NumOPPs() - 1
	}
	if v.engine.freqIdx[ci] != idx {
		v.engine.tel.dvfsChanges.Inc()
		v.engine.perfEpoch++ // per-app perf caches must re-read the new level
	}
	v.engine.freqIdx[ci] = idx
}

// Migrate moves application id to the given core using the affinity
// mechanism. Migrating to the current core is a no-op.
func (v *Env) Migrate(id AppID, core platform.CoreID) error {
	return v.engine.migrate(id, core)
}

// ChargeOverhead accounts `seconds` of management computation, which the
// engine deducts from core 0's capacity (the paper's daemon is a
// single-threaded user-space process).
func (v *Env) ChargeOverhead(seconds float64) {
	if seconds > 0 {
		v.engine.overheadDebt += seconds
	}
}
